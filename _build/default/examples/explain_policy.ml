(* End-to-end explanation (§5 + §8): learn an automaton for the paper's
   previously undocumented New1 policy (Skylake/Kaby Lake L2) from a
   simulated cache, synthesize a human-readable program for it, and print
   the program — reproducing the Figure 5a description.

   Run with:  dune exec examples/explain_policy.exe *)

let explain name =
  let policy = Cq_policy.Zoo.make_exn ~name ~assoc:4 in
  Fmt.pr "=== %s (associativity 4) ===@." name;
  Fmt.pr "learning from a simulated cache...@.";
  let report = Cq_core.Learn.learn_simulated ~identify:false policy in
  Fmt.pr "learned %d states in %a@." report.Cq_core.Learn.states
    Cq_util.Clock.pp_duration report.Cq_core.Learn.seconds;
  Fmt.pr "synthesizing an explanation...@.";
  let r = Cq_synth.Search.synthesize ~deadline:120.0 report.Cq_core.Learn.machine in
  match r.Cq_synth.Search.outcome with
  | Cq_synth.Search.Found prog ->
      Fmt.pr "%s template, %a, %d candidates:@.@.%a@."
        r.Cq_synth.Search.template Cq_util.Clock.pp_duration
        r.Cq_synth.Search.seconds r.Cq_synth.Search.candidates_tried
        Cq_synth.Rules.pp prog;
      (* The synthesized program is itself a policy: check it against the
         learned automaton (the paper's correctness lifting). *)
      let ok =
        Cq_automata.Mealy.equivalent report.Cq_core.Learn.machine
          (Cq_policy.Policy.to_mealy (Cq_synth.Rules.to_policy prog))
      in
      Fmt.pr "bisimulation check: %s@.@." (if ok then "exact" else "MISMATCH")
  | Cq_synth.Search.Not_expressible ->
      Fmt.pr "not expressible in the template@.@."
  | Cq_synth.Search.Timeout -> Fmt.pr "timeout@.@."

let () =
  explain "New1";
  explain "MRU"
