(* A tour of MemBlockLang (§4.1 / Appendix A).

   Shows how MBL expressions expand into sets of concrete queries, and what
   a simulated Skylake L1 cache set answers for each — including the
   eviction-probing query of Example 4.1 and the thrashing probe of
   Appendix B.

   Run with:  dune exec examples/mbl_playground.exe *)

let show_expansion assoc input =
  Fmt.pr "  %-22s (assoc %d) expands to:@." input assoc;
  List.iter
    (fun q -> Fmt.pr "    %s@." (Cq_mbl.Expand.query_to_string q))
    (Cq_mbl.Expand.expand_string ~assoc input);
  Fmt.pr "@."

let () =
  Fmt.pr "--- Macro expansion ---------------------------------------@.";
  show_expansion 4 "@ X _?";
  (* Example 4.1: fill, miss, probe who was evicted *)
  show_expansion 4 "(A B C D)[E F]";
  show_expansion 2 "(A B C)3";
  show_expansion 4 "{A B, C} D?";
  show_expansion 4 "@ M a M?";

  (* the Appendix B thrashing probe *)
  Fmt.pr "--- Against a simulated Skylake L1 set --------------------@.";
  let machine =
    Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise
      Cq_hwsim.Cpu_model.skylake
  in
  let backend =
    Cq_cachequery.Backend.create machine
      { Cq_cachequery.Backend.level = Cq_hwsim.Cpu_model.L1; slice = 0; set = 3 }
  in
  let threshold, _, _ = Cq_cachequery.Backend.calibrate backend in
  Fmt.pr "calibrated hit/miss threshold: %d cycles@." threshold;
  let frontend = Cq_cachequery.Frontend.create backend in
  List.iter
    (fun input ->
      Fmt.pr "@.query: %s@." input;
      List.iter
        (fun (q, rs) ->
          Fmt.pr "  %-28s -> %s@."
            (Cq_mbl.Expand.query_to_string q)
            (String.concat " "
               (List.map
                  (fun r ->
                    if Cq_cache.Cache_set.result_is_hit r then "Hit" else "Miss")
                  rs)))
        (Cq_cachequery.Frontend.run_mbl frontend input))
    [
      "@ (@)?" (* fill then reprobe: all hits *);
      "@ X _?" (* who does X evict? (PLRU: way 0 = block A) *);
      "@ X? X?" (* a fresh block misses, then hits *);
      "(A B)4 C D E F G H I _?" (* pin A/B by re-touching, then probe *);
    ]
