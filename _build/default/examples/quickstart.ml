(* Quickstart: the toy pipeline of Figure 1.

   We build a software-simulated 2-way cache running LRU, expose it as a
   cache oracle, learn its replacement policy with Polca + L*, and print
   the learned automaton — which is exactly the 2-state LRU Mealy machine
   of Example 2.2.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* Figure 1c: ask the cache directly, in abstract blocks. *)
  let policy = Cq_policy.Lru.make 2 in
  let oracle = Cq_cache.Oracle.of_policy policy in
  let show_trace blocks =
    let results = oracle.Cq_cache.Oracle.query blocks in
    Fmt.pr "  %-12s -> %s@."
      (String.concat " " (List.map Cq_cache.Block.to_string blocks))
      (String.concat " "
         (List.map
            (fun r -> if Cq_cache.Cache_set.result_is_hit r then "Hit" else "Miss")
            results))
  in
  Fmt.pr "A 2-way LRU cache set, queried with block traces (cf. Figure 1):@.";
  let b = Cq_cache.Block.of_index in
  show_trace [ b 0; b 1; b 2; b 0 ];
  (* A B C A *)
  show_trace [ b 0; b 1; b 2; b 1 ];
  (* A B C B *)
  Fmt.pr "@.";

  (* Figure 1a/1b: learn the policy behind the cache. *)
  Fmt.pr "Learning the replacement policy with Polca + L*...@.";
  let report = Cq_core.Learn.learn_simulated policy in
  Fmt.pr "%a@.@." Cq_core.Learn.pp_report report;

  (* The learned automaton, in full. *)
  Fmt.pr "Learned Mealy machine:@.";
  Cq_automata.Mealy.pp
    ~pp_input:(fun ppf i ->
      Cq_policy.Types.pp_input ppf (Cq_policy.Types.input_of_int ~assoc:2 i))
    ~pp_output:Cq_policy.Types.pp_output Fmt.stdout report.Cq_core.Learn.machine;
  Fmt.pr "@.";

  (* And its DOT rendering, ready for graphviz. *)
  Fmt.pr "DOT:@.%s@."
    (Cq_automata.Mealy.to_dot
       ~input_label:(Cq_policy.Types.input_label ~assoc:2)
       ~output_label:Cq_policy.Types.output_label report.Cq_core.Learn.machine)
