examples/mbl_playground.mli:
