examples/leader_sets.ml: Cq_core Cq_hwsim Fmt List String
