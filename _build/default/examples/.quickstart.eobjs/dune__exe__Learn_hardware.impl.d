examples/learn_hardware.ml: Cq_core Cq_hwsim Fmt
