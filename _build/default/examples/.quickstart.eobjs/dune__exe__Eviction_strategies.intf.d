examples/eviction_strategies.mli:
