examples/mbl_playground.ml: Cq_cache Cq_cachequery Cq_hwsim Cq_mbl Fmt List String
