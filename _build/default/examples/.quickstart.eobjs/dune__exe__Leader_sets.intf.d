examples/leader_sets.mli:
