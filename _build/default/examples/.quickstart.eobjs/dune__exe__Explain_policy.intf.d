examples/explain_policy.mli:
