examples/eviction_strategies.ml: Cq_cachequery Cq_core Cq_hwsim Cq_policy Cq_util Fmt List String
