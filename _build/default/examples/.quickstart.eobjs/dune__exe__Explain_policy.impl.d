examples/explain_policy.ml: Cq_automata Cq_core Cq_policy Cq_synth Cq_util Fmt
