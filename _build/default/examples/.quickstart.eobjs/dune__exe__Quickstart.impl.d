examples/quickstart.ml: Cq_automata Cq_cache Cq_core Cq_policy Fmt List String
