examples/quickstart.mli:
