examples/learn_hardware.mli:
