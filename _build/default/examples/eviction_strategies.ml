(* Security applications of learned policy models (the paper's §10):

   1. Optimal eviction strategies: given a policy automaton, compute the
      provably shortest attacker access pattern that evicts a victim line
      — what Rowhammer.js had to find by testing thousands of candidates.
   2. nanoBench-style fingerprinting: identify a cache's policy by random
      testing against a candidate pool, without learning.

   Run with:  dune exec examples/eviction_strategies.exe *)

let () =
  Fmt.pr "--- Optimal eviction strategies (associativity 4) ---------------@.";
  List.iter
    (fun name ->
      match Cq_policy.Zoo.make ~name ~assoc:4 with
      | Error _ -> ()
      | Ok policy ->
          Fmt.pr "@.%s:@." name;
          List.iter
            (fun row ->
              Fmt.pr "  evict line %d:  " row.Cq_core.Eviction.line;
              (match row.Cq_core.Eviction.from_init with
              | Some s -> Fmt.pr "from reset: %a" (Cq_core.Eviction.pp_strategy ~assoc:4) s
              | None -> Fmt.pr "from reset: (impossible)");
              (match row.Cq_core.Eviction.from_any with
              | Some s -> Fmt.pr "@.                 from any state: %d steps" s.Cq_core.Eviction.length
              | None -> Fmt.pr "@.                 from any state: (impossible)");
              Fmt.pr "@.")
            (Cq_core.Eviction.analyze_policy policy))
    [ "LRU"; "FIFO"; "PLRU"; "LIP"; "New1"; "New2" ];

  Fmt.pr "@.--- Eviction rates of a naive strategy ---------------------------@.";
  (* How often does "just cause n misses" evict line 0?  The classic attack
     pattern, scored exactly instead of empirically. *)
  List.iter
    (fun name ->
      let m = Cq_policy.Policy.to_mealy (Cq_policy.Zoo.make_exn ~name ~assoc:4) in
      let rate k = Cq_core.Eviction.eviction_rate ~target:0 m (List.init k (fun _ -> 4)) in
      Fmt.pr "  %-9s misses->eviction rate: 4: %.2f  6: %.2f  8: %.2f@." name
        (rate 4) (rate 6) (rate 8))
    [ "LRU"; "PLRU"; "MRU"; "LIP"; "SRRIP-HP"; "New1"; "New2" ];

  Fmt.pr "@.--- nanoBench-style fingerprinting --------------------------------@.";
  (* Identify the simulated Skylake L1 policy by random testing — seconds
     instead of the minutes a full learning run takes, but only for
     policies already in the pool, without guarantees, and only where the
     reset sequence fully resets the policy state (it does not on L2,
     whose age bits survive Flush+Refill — there, only learning works). *)
  let machine =
    Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise
      Cq_hwsim.Cpu_model.skylake
  in
  let be =
    Cq_cachequery.Backend.create machine
      { Cq_cachequery.Backend.level = Cq_hwsim.Cpu_model.L1; slice = 0; set = 5 }
  in
  ignore (Cq_cachequery.Backend.calibrate be);
  let fe = Cq_cachequery.Frontend.create be in
  let v, dt =
    Cq_util.Clock.time (fun () ->
        Cq_core.Fingerprint.identify ~sequences:250
          (Cq_cachequery.Frontend.oracle fe))
  in
  Fmt.pr "Skylake L1 fingerprint: survivors = [%s] after %d sequences (%d \
          accesses, %.2f s)@."
    (String.concat "; " v.Cq_core.Fingerprint.survivors)
    v.Cq_core.Fingerprint.sequences v.Cq_core.Fingerprint.accesses dt
