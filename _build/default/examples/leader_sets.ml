(* Detecting adaptive policies and leader sets (Appendix B).

   Modern Intel L3 caches dedicate a few leader sets to fixed replacement
   policies and let the remaining follower sets switch between them by set
   dueling.  This example scans the first 80 sets of slice 0 of a simulated
   i5-6500 (Skylake) L3 with thrashing probes, drives the duel in both
   directions, classifies each set, and checks the detected vulnerable
   leaders against the paper's index formula
   (((set & 0x3e0) >> 5) ^ (set & 0x1f) = 0 and set & 0x2 = 0).

   Run with:  dune exec examples/leader_sets.exe *)

let () =
  let model = Cq_hwsim.Cpu_model.skylake in
  let machine = Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise model in
  (* CAT keeps the per-set scans cheap, as in the paper's L3 experiments. *)
  Cq_hwsim.Machine.set_cat_ways machine 4;
  let sets = List.init 80 (fun i -> i) in
  Fmt.pr "scanning %d sets of %s L3 slice 0...@." (List.length sets)
    model.Cq_hwsim.Cpu_model.name;
  let results = Cq_core.Leader_sets.scan machine sets in
  List.iter
    (fun r ->
      if r.Cq_core.Leader_sets.classification <> Cq_core.Leader_sets.Follower
      then
        Fmt.pr "  set %4d: %s (signatures %s)@." r.Cq_core.Leader_sets.set
          (Cq_core.Leader_sets.classification_to_string
             r.Cq_core.Leader_sets.classification)
          (String.concat "/"
             (List.map string_of_int r.Cq_core.Leader_sets.signatures)))
    results;
  let followers =
    List.length
      (List.filter
         (fun r ->
           r.Cq_core.Leader_sets.classification = Cq_core.Leader_sets.Follower)
         results)
  in
  Fmt.pr "  (%d follower sets not shown)@." followers;
  let detected, expected = Cq_core.Leader_sets.check_against_model model results in
  Fmt.pr "detected vulnerable leaders: %s@."
    (String.concat " " (List.map string_of_int detected));
  Fmt.pr "index formula predicts:      %s@."
    (String.concat " " (List.map string_of_int expected));
  Fmt.pr "formula match: %b@." (detected = expected)
