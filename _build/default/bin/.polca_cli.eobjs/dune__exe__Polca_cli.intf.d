bin/polca_cli.mli:
