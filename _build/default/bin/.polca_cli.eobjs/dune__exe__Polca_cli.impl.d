bin/polca_cli.ml: Arg Cmd Cmdliner Cq_automata Cq_core Cq_hwsim Cq_policy Fmt Option Out_channel Printf String Term
