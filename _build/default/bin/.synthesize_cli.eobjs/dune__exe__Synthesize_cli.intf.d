bin/synthesize_cli.mli:
