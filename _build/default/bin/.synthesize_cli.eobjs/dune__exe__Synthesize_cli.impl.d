bin/synthesize_cli.ml: Arg Cmd Cmdliner Cq_automata Cq_core Cq_policy Cq_synth Cq_util Fmt Term
