bin/cachequery_cli.mli:
