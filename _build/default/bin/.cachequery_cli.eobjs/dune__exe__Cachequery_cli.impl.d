bin/cachequery_cli.ml: Arg Cmd Cmdliner Cq_cache Cq_cachequery Cq_hwsim Cq_mbl In_channel Int64 List Option Printf String Term
