(* Tests for the security applications built on learned models:
   - Eviction: optimal eviction strategies (the paper's §10 motivation);
   - Fingerprint: nanoBench-style random-testing identification. *)

module Ev = Cq_core.Eviction
module Fp = Cq_core.Fingerprint
module Mealy = Cq_automata.Mealy

(* --- Eviction strategies -------------------------------------------------- *)

let test_lru_shortest () =
  (* LRU assoc 4, initial recency [0;1;2;3]: line 3 is LRU, evicted by one
     miss; line 0 is MRU and needs 4 misses (or touches demoting it). *)
  let m = Cq_policy.Policy.to_mealy (Cq_policy.Lru.make 4) in
  (match Ev.shortest ~target:3 m (Mealy.init m) with
  | Some s ->
      Alcotest.(check int) "LRU line 3: one miss" 1 s.Ev.length;
      Alcotest.(check int) "a single Evct" 1 s.Ev.misses
  | None -> Alcotest.fail "no strategy for line 3");
  match Ev.shortest ~target:0 m (Mealy.init m) with
  | Some s ->
      (* Line 0 (MRU) requires 4 misses under pure-miss strategies, but
         the attacker cannot speed that up with touches. *)
      Alcotest.(check int) "LRU line 0: four steps" 4 s.Ev.length
  | None -> Alcotest.fail "no strategy for line 0"

let test_strategy_really_evicts () =
  (* Replaying the strategy on the machine must end with Evct -> target. *)
  let check_policy name =
    let policy = Cq_policy.Zoo.make_exn ~name ~assoc:4 in
    let m = Cq_policy.Policy.to_mealy policy in
    List.iter
      (fun target ->
        match Ev.shortest ~target m (Mealy.init m) with
        | None -> Alcotest.fail (name ^ ": no eviction strategy")
        | Some s ->
            let outputs = Mealy.run m s.Ev.word in
            Alcotest.(check bool)
              (Printf.sprintf "%s target %d: last step evicts" name target)
              true
              (match List.rev outputs with
              | Some v :: _ -> v = target
              | _ -> false))
      [ 0; 1; 2; 3 ]
  in
  List.iter check_policy [ "LRU"; "FIFO"; "PLRU"; "MRU"; "SRRIP-HP"; "New1"; "New2" ]

let test_strategy_avoids_target_line () =
  let m = Cq_policy.Policy.to_mealy (Cq_policy.Newpol.make_new1 4) in
  List.iter
    (fun target ->
      match Ev.shortest ~target m (Mealy.init m) with
      | None -> Alcotest.fail "no strategy"
      | Some s ->
          Alcotest.(check bool) "never touches the victim line" false
            (List.mem target s.Ev.word))
    [ 0; 1; 2; 3 ]

let test_universal_strategy () =
  let m = Cq_policy.Policy.to_mealy (Cq_policy.Mru.make 4) in
  match Ev.universal ~target:2 m with
  | None -> Alcotest.fail "no universal strategy for MRU"
  | Some s ->
      Alcotest.(check (float 1e-9)) "evicts from every state" 1.0
        (Ev.eviction_rate ~target:2 m s.Ev.word)

let test_eviction_rate () =
  let m = Cq_policy.Policy.to_mealy (Cq_policy.Lru.make 2) in
  (* One miss evicts the LRU line: from one of the two states that is
     line 0, from the other line 1 -> rate 0.5 for each target. *)
  Alcotest.(check (float 1e-9)) "single miss, half the states" 0.5
    (Ev.eviction_rate ~target:0 m [ 2 ]);
  (* Two misses evict both lines from every state. *)
  Alcotest.(check (float 1e-9)) "two misses, all states" 1.0
    (Ev.eviction_rate ~target:0 m [ 2; 2 ])

let test_analyze_policy () =
  let rows = Ev.analyze_policy (Cq_policy.Lru.make 4) in
  Alcotest.(check int) "one row per line" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "init strategy exists" true (r.Ev.from_init <> None);
      Alcotest.(check bool) "universal strategy exists" true (r.Ev.from_any <> None))
    rows

let test_lip_unevictable_without_reuse () =
  (* Under LIP, a line that is MRU stays safe from pure misses: misses churn
     the LRU position only.  The BFS must still find touch-based routes; but
     the *initial* MRU line (line 0 in recency order) can only be demoted by
     touching other lines.  Check the strategy exists and uses accesses. *)
  let m = Cq_policy.Policy.to_mealy (Cq_policy.Lip.make 4) in
  match Ev.shortest ~target:0 m (Mealy.init m) with
  | None -> Alcotest.fail "no LIP strategy"
  | Some s ->
      Alcotest.(check bool) "needs attacker accesses" true (s.Ev.accesses > 0)

(* --- qcheck: strategies from random states ------------------------------- *)

let prop_shortest_is_sound =
  QCheck.Test.make ~name:"shortest strategies evict from their start state"
    ~count:100
    QCheck.(pair (int_range 0 3) (QCheck.make QCheck.Gen.(list_size (0 -- 10) (0 -- 4))))
    (fun (target, prefix) ->
      let m = Cq_policy.Policy.to_mealy (Cq_policy.Newpol.make_new2 4) in
      let state = Mealy.state_after m prefix in
      match Ev.shortest ~target m state with
      | None -> false (* New2 can always evict *)
      | Some s -> (
          match List.rev (Mealy.run_from m state s.Ev.word) with
          | Some v :: _ -> v = target
          | _ -> false))

(* --- Fingerprinting -------------------------------------------------------- *)

let test_fingerprint_simulated () =
  List.iter
    (fun name ->
      let policy = Cq_policy.Zoo.make_exn ~name ~assoc:4 in
      let v = Fp.identify (Cq_cache.Oracle.of_policy policy) in
      Alcotest.(check bool)
        (name ^ " survives its own fingerprint")
        true
        (List.mem name v.Fp.survivors))
    [ "LRU"; "FIFO"; "PLRU"; "MRU"; "SRRIP-HP"; "SRRIP-FP"; "New1"; "New2" ]

let test_fingerprint_separates () =
  (* With enough sequences, New1 is told apart from SRRIP-HP (its nearest
     relative per §8). *)
  let v = Fp.identify ~sequences:400 (Cq_cache.Oracle.of_policy (Cq_policy.Newpol.make_new1 4)) in
  Alcotest.(check bool) "SRRIP-HP eliminated" false (List.mem "SRRIP-HP" v.Fp.survivors);
  Alcotest.(check bool) "New2 eliminated" false (List.mem "New2" v.Fp.survivors)

let test_fingerprint_unknown_policy () =
  (* A policy outside the pool leaves no survivors. *)
  let weird =
    Cq_policy.Policy.v ~name:"sticky" ~assoc:4 ~init:()
      ~step:(fun () -> function
        | Cq_policy.Types.Line _ -> ((), None)
        | Cq_policy.Types.Evct -> ((), Some 1))
      ()
  in
  let v = Fp.identify ~sequences:300 (Cq_cache.Oracle.of_policy weird) in
  Alcotest.(check (list string)) "no survivors" [] v.Fp.survivors

let test_fingerprint_on_hardware () =
  (* Fingerprinting through the CacheQuery stack on the toy CPU's L1. *)
  let machine = Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise Cq_hwsim.Cpu_model.toy in
  let be =
    Cq_cachequery.Backend.create machine
      { Cq_cachequery.Backend.level = Cq_hwsim.Cpu_model.L1; slice = 0; set = 2 }
  in
  ignore (Cq_cachequery.Backend.calibrate be);
  let fe = Cq_cachequery.Frontend.create be in
  let v = Fp.identify ~sequences:120 (Cq_cachequery.Frontend.oracle fe) in
  Alcotest.(check bool) "PLRU survives" true (List.mem "PLRU" v.Fp.survivors)

let suite =
  ( "eviction+fingerprint",
    [
      Alcotest.test_case "LRU shortest strategies" `Quick test_lru_shortest;
      Alcotest.test_case "strategies really evict" `Quick test_strategy_really_evicts;
      Alcotest.test_case "strategies avoid the victim" `Quick test_strategy_avoids_target_line;
      Alcotest.test_case "universal strategy (MRU)" `Quick test_universal_strategy;
      Alcotest.test_case "eviction rate" `Quick test_eviction_rate;
      Alcotest.test_case "analyze_policy" `Quick test_analyze_policy;
      Alcotest.test_case "LIP needs accesses" `Quick test_lip_unevictable_without_reuse;
      QCheck_alcotest.to_alcotest prop_shortest_is_sound;
      Alcotest.test_case "fingerprint: self-identification" `Quick test_fingerprint_simulated;
      Alcotest.test_case "fingerprint: separation" `Quick test_fingerprint_separates;
      Alcotest.test_case "fingerprint: unknown policy" `Quick test_fingerprint_unknown_policy;
      Alcotest.test_case "fingerprint: via CacheQuery" `Quick test_fingerprint_on_hardware;
    ] )
