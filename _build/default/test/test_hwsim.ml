(* Tests for cq_hwsim: address mapping, hierarchy behaviour, inclusivity,
   flushes, CAT, prefetchers, timing, adaptive sets and set dueling. *)

module M = Cq_hwsim.Machine
module CM = Cq_hwsim.Cpu_model

let quiet model = M.create ~noise:M.quiet_noise model

let test_set_mapping () =
  let m = quiet CM.skylake in
  (* L1 has 64 sets of 64-byte lines: set = addr[6..11]. *)
  Alcotest.(check (pair int int)) "L1 set of 0" (0, 0) (M.map_addr m CM.L1 0);
  Alcotest.(check (pair int int)) "L1 set of 64" (0, 1) (M.map_addr m CM.L1 64);
  Alcotest.(check (pair int int)) "L1 wraps" (0, 0) (M.map_addr m CM.L1 (64 * 64));
  (* L2: 1024 sets. *)
  Alcotest.(check (pair int int)) "L2 set" (0, 63) (M.map_addr m CM.L2 (63 * 64))

let test_slice_hash_range () =
  let m = quiet CM.skylake in
  for i = 0 to 999 do
    let slice, _ = M.map_addr m CM.L3 (i * 64) in
    Alcotest.(check bool) "slice in range" true (slice >= 0 && slice < 8)
  done;
  (* The hash spreads across slices. *)
  let slices =
    List.sort_uniq compare
      (List.init 256 (fun i -> fst (M.map_addr m CM.L3 (i * 64))))
  in
  Alcotest.(check bool) "several slices used" true (List.length slices >= 4)

let test_congruent_addresses () =
  let m = quiet CM.skylake in
  let addrs = M.congruent_addresses m CM.L3 ~slice:3 ~set:17 8 in
  Alcotest.(check int) "count" 8 (List.length addrs);
  List.iter
    (fun a ->
      Alcotest.(check (pair int int)) "congruent" (3, 17) (M.map_addr m CM.L3 a))
    addrs;
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare addrs))

let test_hierarchy_hit_levels () =
  let m = quiet CM.skylake in
  M.set_prefetchers m false;
  let addr = 4096 in
  let miss = M.load m addr in
  let hit = M.load m addr in
  Alcotest.(check bool) "first load is slow (memory)" true (miss > 100);
  Alcotest.(check int) "second load is an L1 hit" CM.skylake.CM.l1.CM.hit_latency hit

let test_clflush () =
  let m = quiet CM.skylake in
  M.set_prefetchers m false;
  let addr = 8192 in
  ignore (M.load m addr);
  M.clflush m addr;
  Alcotest.(check bool) "flushed load misses" true (M.load m addr > 100)

let test_wbinvd () =
  let m = quiet CM.skylake in
  M.set_prefetchers m false;
  ignore (M.load m 0);
  ignore (M.load m 64);
  M.wbinvd m;
  Alcotest.(check bool) "all flushed" true (M.load m 0 > 100 && M.load m 64 > 100)

let test_inclusive_back_invalidation () =
  (* Evicting a line from L3 must remove it from L1/L2: load L3-assoc+1
     blocks of one L3 set; the first one must then miss everywhere. *)
  let m = quiet CM.toy in
  M.set_prefetchers m false;
  let addrs = M.congruent_addresses m CM.L3 ~slice:0 ~set:1 5 in
  (* toy L3: 4 ways *)
  List.iter (fun a -> ignore (M.load m a)) addrs;
  (* The 5th load evicted one of the first four from L3 and, inclusively,
     from L1/L2: its reload must be slow again. *)
  let evicted =
    List.exists (fun a -> M.load m a > 100) (List.filteri (fun i _ -> i < 4) addrs)
  in
  Alcotest.(check bool) "some early line re-misses" true evicted

let test_latency_ordering () =
  let model = CM.skylake in
  Alcotest.(check bool) "L1 < L2 < L3 < mem" true
    (model.CM.l1.CM.hit_latency < model.CM.l2.CM.hit_latency
    && model.CM.l2.CM.hit_latency < model.CM.l3.CM.hit_latency
    && model.CM.l3.CM.hit_latency < model.CM.memory_latency)

let test_cat () =
  let m = quiet CM.skylake in
  Alcotest.(check int) "full assoc" 12 (M.effective_assoc m CM.L3);
  M.set_cat_ways m 4;
  Alcotest.(check int) "reduced" 4 (M.effective_assoc m CM.L3);
  M.reset_cat m;
  Alcotest.(check int) "restored" 12 (M.effective_assoc m CM.L3);
  Alcotest.check_raises "haswell has no CAT" (Failure "i7-4790 does not support CAT")
    (fun () -> M.set_cat_ways (quiet CM.haswell) 4)

let test_prefetcher_buddy () =
  let m = quiet CM.skylake in
  M.set_prefetchers m true;
  let addr = 1 lsl 20 in
  ignore (M.load m addr);
  (* The buddy line (128-byte pair) was pulled into L2: loading it is not a
     memory access. *)
  let buddy = addr lxor 64 in
  Alcotest.(check bool) "buddy prefetched" true (M.load m buddy < 100);
  (* Without prefetchers, a fresh pair's buddy misses. *)
  let m2 = quiet CM.skylake in
  M.set_prefetchers m2 false;
  ignore (M.load m2 addr);
  Alcotest.(check bool) "no prefetch" true (M.load m2 buddy > 100)

let test_noise_quiet_deterministic () =
  let run () =
    let m = M.create ~seed:99L ~noise:M.quiet_noise CM.skylake in
    M.set_prefetchers m false;
    List.init 50 (fun i -> M.load m ((i * 320) land 0xFFFF))
  in
  Alcotest.(check (list int)) "same seed, same latencies" (run ()) (run ())

let test_noise_jitter () =
  let m = M.create ~noise:M.default_noise CM.skylake in
  M.set_prefetchers m false;
  ignore (M.load m 0);
  let hits = List.init 50 (fun _ -> M.load m 0) in
  Alcotest.(check bool) "jitter varies latencies" true
    (List.length (List.sort_uniq compare hits) > 1);
  Alcotest.(check bool) "latencies stay positive" true (List.for_all (fun c -> c >= 1) hits)

let test_leader_set_kinds () =
  let m = quiet CM.skylake in
  (* Touch sets to instantiate them, then check kinds via Cache_level. *)
  let level3 addr = ignore (M.load m addr) in
  List.iter (fun set ->
      List.iter level3 (M.congruent_addresses m CM.L3 ~slice:0 ~set 1))
    [ 0; 2; 33; 62 ];
  (* set 0 and 33 satisfy the vulnerable-leader formula; 62 the resistant
     one; 2 neither. *)
  Alcotest.(check bool) "formula: set 0 leader-A" true (CM.skl_leader_a ~slice:0 ~set:0);
  Alcotest.(check bool) "formula: set 33 leader-A" true (CM.skl_leader_a ~slice:0 ~set:33);
  Alcotest.(check bool) "formula: set 2 not leader" false
    (CM.skl_leader_a ~slice:0 ~set:2 || CM.skl_leader_b ~slice:0 ~set:2);
  Alcotest.(check bool) "formula: set 62 leader-B" true (CM.skl_leader_b ~slice:0 ~set:62)

let test_haswell_leader_ranges () =
  Alcotest.(check bool) "512 vulnerable" true (CM.hsw_leader_a ~slice:0 ~set:512);
  Alcotest.(check bool) "575 vulnerable" true (CM.hsw_leader_a ~slice:0 ~set:575);
  Alcotest.(check bool) "576 not" false (CM.hsw_leader_a ~slice:0 ~set:576);
  Alcotest.(check bool) "768 resistant" true (CM.hsw_leader_b ~slice:0 ~set:768);
  Alcotest.(check bool) "only slice 0" false (CM.hsw_leader_a ~slice:1 ~set:512)

let test_by_name () =
  Alcotest.(check bool) "skylake by codename" true
    (match CM.by_name "Skylake" with Some m -> m.CM.name = "i5-6500" | None -> false);
  Alcotest.(check bool) "by model number" true
    (match CM.by_name "i7-8550U" with Some m -> m.CM.codename = "Kaby Lake" | None -> false);
  Alcotest.(check bool) "unknown" true (CM.by_name "pentium" = None)

(* --- qcheck --------------------------------------------------------------- *)

let prop_map_addr_line_granularity =
  QCheck.Test.make ~name:"all bytes of a line map to the same set" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun line ->
      let m = quiet CM.skylake in
      let base = line * 64 in
      List.for_all
        (fun level ->
          M.map_addr m level base = M.map_addr m level (base + 63))
        CM.all_levels)

let prop_same_seed_same_behaviour =
  QCheck.Test.make ~name:"hierarchy is deterministic per seed" ~count:50
    QCheck.(list_of_size QCheck.Gen.(1 -- 30) (int_range 0 100_000))
    (fun lines ->
      let run () =
        let m = M.create ~seed:5L ~noise:M.quiet_noise CM.toy in
        M.set_prefetchers m false;
        List.map (fun l -> M.load m (l * 64)) lines
      in
      run () = run ())

let suite =
  ( "hwsim",
    [
      Alcotest.test_case "set mapping" `Quick test_set_mapping;
      Alcotest.test_case "slice hash" `Quick test_slice_hash_range;
      Alcotest.test_case "congruent addresses" `Quick test_congruent_addresses;
      Alcotest.test_case "hierarchy hit levels" `Quick test_hierarchy_hit_levels;
      Alcotest.test_case "clflush" `Quick test_clflush;
      Alcotest.test_case "wbinvd" `Quick test_wbinvd;
      Alcotest.test_case "inclusive back-invalidation" `Quick test_inclusive_back_invalidation;
      Alcotest.test_case "latency ordering" `Quick test_latency_ordering;
      Alcotest.test_case "CAT" `Quick test_cat;
      Alcotest.test_case "prefetcher buddy" `Quick test_prefetcher_buddy;
      Alcotest.test_case "quiet noise deterministic" `Quick test_noise_quiet_deterministic;
      Alcotest.test_case "jitter" `Quick test_noise_jitter;
      Alcotest.test_case "leader formulas (Skylake)" `Quick test_leader_set_kinds;
      Alcotest.test_case "leader ranges (Haswell)" `Quick test_haswell_leader_ranges;
      Alcotest.test_case "by_name" `Quick test_by_name;
      QCheck_alcotest.to_alcotest prop_map_addr_line_granularity;
      QCheck_alcotest.to_alcotest prop_same_seed_same_behaviour;
    ] )
