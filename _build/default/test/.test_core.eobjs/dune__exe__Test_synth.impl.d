test/test_synth.ml: Alcotest Array Cq_automata Cq_policy Cq_synth List QCheck QCheck_alcotest String
