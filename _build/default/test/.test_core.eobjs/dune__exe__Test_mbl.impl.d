test/test_mbl.ml: Alcotest Cq_cache Cq_mbl List Printf QCheck QCheck_alcotest
