test/test_cache.ml: Alcotest Array Cq_cache Cq_policy Cq_util List QCheck QCheck_alcotest
