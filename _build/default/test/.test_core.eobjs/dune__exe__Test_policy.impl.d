test/test_policy.ml: Alcotest Cq_policy Fun List Printf QCheck QCheck_alcotest
