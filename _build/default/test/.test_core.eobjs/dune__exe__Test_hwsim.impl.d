test/test_hwsim.ml: Alcotest Cq_hwsim List QCheck QCheck_alcotest
