test/test_util.ml: Alcotest Array Cq_util Float Gen Hashtbl List QCheck QCheck_alcotest
