test/test_polca.ml: Alcotest Cq_automata Cq_cache Cq_core Cq_learner Cq_policy List Printf QCheck QCheck_alcotest
