test/test_mealy.ml: Alcotest Array Cq_automata Fun List QCheck QCheck_alcotest String
