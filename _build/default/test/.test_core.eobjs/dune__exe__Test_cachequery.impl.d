test/test_cachequery.ml: Alcotest Array Cq_cache Cq_cachequery Cq_core Cq_hwsim Cq_mbl Fun List Option Printf
