test/test_eviction.ml: Alcotest Cq_automata Cq_cache Cq_cachequery Cq_core Cq_hwsim Cq_policy List Printf QCheck QCheck_alcotest
