test/test_learner.ml: Alcotest Array Cq_automata Cq_learner Cq_policy Cq_util List Printf QCheck QCheck_alcotest
