(* Tests for cq_synth: rule semantics, the Figure 5 programs, the exact
   bisimulation check, CEGIS screening, and template coverage (Table 5's
   Simple/Extended split and PLRU's inexpressibility). *)

module R = Cq_synth.Rules
module S = Cq_synth.Search

let new1_prog =
  {
    R.init = [| 3; 3; 3; 0 |];
    promote = { p_self = [ (R.Always, R.Const 0) ]; p_others = None };
    evict = R.First_with_age 3;
    insert = { i_self = R.Const 1; i_others = None };
    normalize = { n_touched = R.N_aging { except_touched = true }; n_pre_miss = R.N_nop };
  }

let new2_prog =
  {
    R.init = [| 3; 3; 3; 3 |];
    promote =
      { p_self = [ (R.Eq 1, R.Const 0); (R.Gt 1, R.Const 1) ]; p_others = None };
    evict = R.First_with_age 3;
    insert = { i_self = R.Const 1; i_others = None };
    normalize = { n_touched = R.N_aging { except_touched = false }; n_pre_miss = R.N_nop };
  }

let test_promote_semantics () =
  let p = { R.p_self = [ (R.Eq 1, R.Const 0); (R.Gt 1, R.Const 1) ]; p_others = None } in
  Alcotest.(check (array int)) "age 1 -> 0" [| 0; 2; 3; 3 |]
    (R.apply_promote p [| 1; 2; 3; 3 |] 0);
  Alcotest.(check (array int)) "age 3 -> 1" [| 1; 2; 1; 3 |]
    (R.apply_promote p [| 1; 2; 3; 3 |] 2);
  Alcotest.(check (array int)) "age 0 unchanged" [| 1; 2; 3; 0 |]
    (R.apply_promote p [| 1; 2; 3; 0 |] 3)

let test_promote_others_read_original () =
  (* LRU-style: others with smaller age than the touched line increment;
     the condition reads the original state. *)
  let p =
    { R.p_self = [ (R.Always, R.Const 0) ]; p_others = Some (R.O_lt_self, R.Inc) }
  in
  Alcotest.(check (array int)) "LRU promote" [| 1; 2; 0 |]
    (R.apply_promote p [| 0; 1; 2 |] 2)

let test_evict_semantics () =
  Alcotest.(check int) "first with age" 1 (R.apply_evict (R.First_with_age 3) [| 0; 3; 3 |]);
  Alcotest.(check int) "first max" 2 (R.apply_evict R.First_max [| 0; 1; 2 |]);
  Alcotest.(check int) "first min" 0 (R.apply_evict R.First_min [| 0; 1; 2 |]);
  Alcotest.check_raises "stuck when absent" R.Stuck (fun () ->
      ignore (R.apply_evict (R.First_with_age 3) [| 0; 1; 2 |]))

let test_normalize_aging () =
  let aging = R.N_aging { except_touched = false } in
  Alcotest.(check (array int)) "ages until a 3 exists" [| 2; 3 |]
    (R.apply_norm_action aging [| 1; 2 |] ~touched:None);
  Alcotest.(check (array int)) "no-op when a 3 exists" [| 0; 3 |]
    (R.apply_norm_action aging [| 0; 3 |] ~touched:None);
  let except = R.N_aging { except_touched = true } in
  Alcotest.(check (array int)) "touched line spared" [| 0; 3; 3 |]
    (R.apply_norm_action except [| 0; 1; 1 |] ~touched:(Some 0))

let test_normalize_reset_full () =
  let reset = R.N_reset_full { full = 1; reset_to = 0 } in
  Alcotest.(check (array int)) "resets others when full" [| 0; 1; 0 |]
    (R.apply_norm_action reset [| 1; 1; 1 |] ~touched:(Some 1));
  Alcotest.(check (array int)) "no-op otherwise" [| 1; 0; 1 |]
    (R.apply_norm_action reset [| 1; 0; 1 |] ~touched:(Some 1))

let test_figure5_new1_matches_policy () =
  let prog_policy = R.to_policy new1_prog in
  let reference = Cq_policy.Newpol.make_new1 4 in
  Alcotest.(check bool) "Figure 5a = Newpol.make_new1" true
    (Cq_policy.Policy.equivalent prog_policy reference)

let test_figure5_new2_matches_policy () =
  let prog_policy = R.to_policy new2_prog in
  let reference = Cq_policy.Newpol.make_new2 4 in
  Alcotest.(check bool) "Figure 5b = Newpol.make_new2" true
    (Cq_policy.Policy.equivalent prog_policy reference)

let test_check_exact () =
  let m = Cq_policy.Policy.to_mealy (Cq_policy.Newpol.make_new1 4) in
  Alcotest.(check (option (list int))) "correct program passes" None
    (S.check_exact m new1_prog);
  (match S.check_exact m new2_prog with
  | Some w ->
      (* The counterexample really distinguishes them. *)
      let p2 = R.to_policy new2_prog in
      Alcotest.(check bool) "cex is real" false
        (Cq_automata.Mealy.run m w
        = Cq_automata.Mealy.run (Cq_policy.Policy.to_mealy p2) w)
  | None -> Alcotest.fail "New2 program accepted for New1 machine")

let test_stuck_program_rejected () =
  let stuck_prog = { new1_prog with R.evict = R.First_with_age 2 } in
  let m = Cq_policy.Policy.to_mealy (Cq_policy.Newpol.make_new1 4) in
  Alcotest.(check bool) "non-total program rejected" true
    (S.check_exact m stuck_prog <> None)

let synthesize name ~deadline =
  let m = Cq_policy.Policy.to_mealy (Cq_policy.Zoo.make_exn ~name ~assoc:4) in
  (m, S.synthesize ~deadline m)

let test_table5_simple_policies () =
  List.iter
    (fun name ->
      let m, r = synthesize name ~deadline:60.0 in
      match r.S.outcome with
      | S.Found prog ->
          Alcotest.(check string) (name ^ " uses Simple") "Simple" r.S.template;
          Alcotest.(check bool) (name ^ " validates") true
            (Cq_automata.Mealy.equivalent m
               (Cq_policy.Policy.to_mealy (R.to_policy prog)))
      | _ -> Alcotest.fail (name ^ " did not synthesize"))
    [ "FIFO"; "LRU"; "LIP" ]

let test_table5_extended_policies () =
  List.iter
    (fun name ->
      let m, r = synthesize name ~deadline:120.0 in
      match r.S.outcome with
      | S.Found prog ->
          Alcotest.(check string) (name ^ " uses Extended") "Extended" r.S.template;
          Alcotest.(check bool) (name ^ " validates") true
            (Cq_automata.Mealy.equivalent m
               (Cq_policy.Policy.to_mealy (R.to_policy prog)))
      | _ -> Alcotest.fail (name ^ " did not synthesize"))
    [ "MRU"; "New1" ]

let test_mru_needs_extended () =
  let m = Cq_policy.Policy.to_mealy (Cq_policy.Zoo.make_exn ~name:"MRU" ~assoc:4) in
  match (S.synthesize_with ~extended:false ~deadline:30.0 m).S.outcome with
  | S.Not_expressible -> ()
  | S.Found _ -> Alcotest.fail "MRU should not fit the Simple template"
  | S.Timeout -> Alcotest.fail "Simple search should exhaust quickly"

let test_plru_not_expressible () =
  (* PLRU's tree state has no per-line age encoding: the search must not
     find anything (we only run the cheap Simple phase to keep the test
     fast; the full search times out as in Table 5). *)
  let m = Cq_policy.Policy.to_mealy (Cq_policy.Zoo.make_exn ~name:"PLRU" ~assoc:4) in
  match (S.synthesize_with ~extended:false ~deadline:30.0 m).S.outcome with
  | S.Not_expressible -> ()
  | S.Found _ -> Alcotest.fail "PLRU found in Simple template?!"
  | S.Timeout -> Alcotest.fail "Simple search should exhaust quickly"

let test_pp_program () =
  let s = R.to_string new1_prog in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prints init" true (contains "s0 = {3,3,3,0}");
  Alcotest.(check bool) "prints eviction" true (contains "leftmost line with age 3");
  Alcotest.(check bool) "prints insertion" true (contains "state[idx] = 1")

(* --- qcheck --------------------------------------------------------------- *)

let arb_prog =
  let gen =
    QCheck.Gen.(
      let* init = list_size (return 3) (0 -- 3) in
      let* evict = oneofl [ R.First_with_age 3; R.First_max; R.First_min ] in
      let* ins = oneofl [ R.Const 0; R.Const 1; R.Const 3; R.Keep ] in
      let* promote = oneofl [ R.Const 0; R.Dec; R.Keep ] in
      let* aging =
        oneofl
          [ R.N_nop; R.N_aging { except_touched = false }; R.N_aging { except_touched = true } ]
      in
      return
        {
          R.init = Array.of_list init;
          promote = { p_self = [ (R.Always, promote) ]; p_others = None };
          evict;
          insert = { i_self = ins; i_others = None };
          normalize = { n_touched = aging; n_pre_miss = R.N_nop };
        })
  in
  QCheck.make gen

let prop_to_policy_well_formed =
  (* Programs whose eviction is total yield well-formed policies. *)
  QCheck.Test.make ~name:"program policies satisfy Definition 2.1" ~count:300
    (QCheck.pair arb_prog (QCheck.make QCheck.Gen.(list_size (1 -- 12) (0 -- 3))))
    (fun (prog, word) ->
      let policy = R.to_policy prog in
      let inputs =
        List.map (fun i -> Cq_policy.Types.input_of_int ~assoc:3 i) word
      in
      match Cq_policy.Policy.run policy inputs with
      | outputs ->
          List.for_all2
            (fun input output ->
              match (input, output) with
              | Cq_policy.Types.Evct, Some v -> v >= 0 && v < 3
              | Cq_policy.Types.Line _, None -> true
              | _ -> false)
            inputs outputs
      | exception R.Stuck -> true (* non-total candidate: fine, pruned in search *))

let prop_check_exact_sound =
  (* If check_exact accepts, the program's policy is trace-equivalent. *)
  QCheck.Test.make ~name:"check_exact acceptance implies equivalence" ~count:100
    arb_prog (fun prog ->
      let m = Cq_policy.Policy.to_mealy (Cq_policy.Newpol.make_new2 3) in
      match S.check_exact m prog with
      | Some _ -> true
      | None ->
          Cq_automata.Mealy.equivalent m
            (Cq_policy.Policy.to_mealy (R.to_policy prog)))

let suite =
  ( "synth",
    [
      Alcotest.test_case "promote semantics" `Quick test_promote_semantics;
      Alcotest.test_case "promote others (LRU)" `Quick test_promote_others_read_original;
      Alcotest.test_case "evict semantics" `Quick test_evict_semantics;
      Alcotest.test_case "normalize aging" `Quick test_normalize_aging;
      Alcotest.test_case "normalize reset-full" `Quick test_normalize_reset_full;
      Alcotest.test_case "Figure 5a (New1)" `Quick test_figure5_new1_matches_policy;
      Alcotest.test_case "Figure 5b (New2)" `Quick test_figure5_new2_matches_policy;
      Alcotest.test_case "check_exact" `Quick test_check_exact;
      Alcotest.test_case "stuck programs rejected" `Quick test_stuck_program_rejected;
      Alcotest.test_case "Table 5: Simple policies" `Quick test_table5_simple_policies;
      Alcotest.test_case "Table 5: Extended policies" `Quick test_table5_extended_policies;
      Alcotest.test_case "MRU needs Extended" `Quick test_mru_needs_extended;
      Alcotest.test_case "PLRU not expressible" `Quick test_plru_not_expressible;
      Alcotest.test_case "program pretty-printing" `Quick test_pp_program;
      QCheck_alcotest.to_alcotest prop_to_policy_well_formed;
      QCheck_alcotest.to_alcotest prop_check_exact_sound;
    ] )
