(* Tests for Polca (Algorithm 1) and the end-to-end learning loop:
   Theorem 3.1 (membership correctness), line/block translation, eviction
   discovery, nondeterminism detection, and Corollary 3.4 on small
   policies. *)

module Polca = Cq_core.Polca
module Learn = Cq_core.Learn
module T = Cq_policy.Types

let polca_for policy = Polca.create (Cq_cache.Oracle.of_policy policy)

(* Polca's outputs must match the policy machine's outputs on any word:
   that is exactly the abstraction Polca implements. *)
let check_word policy word =
  let polca = polca_for policy in
  let truth = Cq_policy.Policy.to_mealy policy in
  Polca.run polca word = Cq_automata.Mealy.run truth word

let test_outputs_match_lru () =
  let word = [ 4; 0; 4; 4; 1; 2; 4; 0; 4 ] in
  Alcotest.(check bool) "LRU-4" true (check_word (Cq_policy.Lru.make 4) word)

let test_outputs_match_new1 () =
  let word = [ 4; 4; 0; 4; 3; 4; 1; 4; 4; 2 ] in
  Alcotest.(check bool) "New1-4" true (check_word (Cq_policy.Newpol.make_new1 4) word)

let test_member_theorem_3_1 () =
  (* Positive traces are accepted, corrupted ones rejected. *)
  let policy = Cq_policy.Fifo.make 3 in
  let polca = polca_for policy in
  let good =
    [ (T.Evct, Some 0); (T.Line 1, None); (T.Evct, Some 1); (T.Evct, Some 2) ]
  in
  Alcotest.(check bool) "trace in semantics" true (Polca.member polca good);
  let bad = [ (T.Evct, Some 0); (T.Evct, Some 0) ] in
  Alcotest.(check bool) "wrong victim rejected" false (Polca.member polca bad);
  let bad2 = [ (T.Line 0, Some 1) ] in
  Alcotest.(check bool) "hit with victim rejected" false (Polca.member polca bad2)

let test_fresh_blocks_deterministic () =
  (* The same policy word maps to the same block trace (fresh blocks are
     drawn deterministically), so repeated runs agree. *)
  let polca = polca_for (Cq_policy.Mru.make 4) in
  let word = [ 4; 4; 1; 4; 0; 4 ] in
  Alcotest.(check bool) "repeatable" true (Polca.run polca word = Polca.run polca word)

let test_nondeterminism_detected () =
  (* An oracle that lies about the initial content makes tracked blocks
     miss; check_hits must catch it. *)
  let policy = Cq_policy.Lru.make 2 in
  let base = Cq_cache.Oracle.of_policy policy in
  let lying =
    { base with Cq_cache.Oracle.initial_content = [| Cq_cache.Block.of_index 7; Cq_cache.Block.of_index 8 |] }
  in
  let polca = Polca.create ~check_hits:true lying in
  match Polca.run polca [ 0 ] with
  | _ -> Alcotest.fail "expected Non_deterministic"
  | exception Polca.Non_deterministic _ -> ()

let test_moracle_n_inputs () =
  let polca = polca_for (Cq_policy.Lru.make 4) in
  Alcotest.(check int) "assoc+1 inputs" 5 (Polca.moracle polca).Cq_learner.Moracle.n_inputs

(* --- End-to-end learning (Corollary 3.4 in the small) -------------------- *)

let test_learn_simulated_exact () =
  List.iter
    (fun (name, assoc) ->
      let policy = Cq_policy.Zoo.make_exn ~name ~assoc in
      let report = Learn.learn_simulated ~identify:false policy in
      Alcotest.(check bool)
        (Printf.sprintf "%s-%d learned exactly" name assoc)
        true
        (Learn.verify_against report policy))
    [ ("FIFO", 4); ("LRU", 3); ("PLRU", 4); ("MRU", 4); ("LIP", 3); ("SRRIP-HP", 2); ("New1", 3) ]

let test_learn_identifies () =
  let report = Learn.learn_simulated (Cq_policy.Zoo.make_exn ~name:"New2" ~assoc:4) in
  Alcotest.(check (list string)) "New2 identified" [ "New2" ] report.Learn.identified

let test_learn_with_random_walk () =
  let policy = Cq_policy.Zoo.make_exn ~name:"MRU" ~assoc:4 in
  let report =
    Learn.learn_simulated ~identify:false
      ~equivalence:(Learn.Random_walk { max_tests = 20_000; max_len = 30; seed = 5 })
      policy
  in
  Alcotest.(check bool) "random-walk equivalence also learns MRU-4" true
    (Learn.verify_against report policy)

let test_check_hits_ablation () =
  (* Disabling the redundant hit probes must not change the result on a
     well-behaved cache. *)
  let policy = Cq_policy.Zoo.make_exn ~name:"LRU" ~assoc:3 in
  let with_probes = Learn.learn_simulated ~identify:false ~check_hits:true policy in
  let without = Learn.learn_simulated ~identify:false ~check_hits:false policy in
  Alcotest.(check bool) "same machine" true
    (Cq_automata.Mealy.equivalent with_probes.Learn.machine without.Learn.machine);
  Alcotest.(check bool) "fewer cache queries without probes" true
    (without.Learn.cache_queries < with_probes.Learn.cache_queries)

(* --- qcheck --------------------------------------------------------------- *)

let arb_word assoc =
  QCheck.make QCheck.Gen.(list_size (1 -- 15) (0 -- assoc))

(* Machines and Polca instances are built once; only words vary. *)
let polca_fixtures =
  List.filter_map
    (fun name ->
      match Cq_policy.Zoo.make ~name ~assoc:4 with
      | Error _ -> None
      | Ok policy ->
          Some (name, polca_for policy, Cq_policy.Policy.to_mealy policy))
    Cq_policy.Zoo.names

let prop_polca_equals_policy_semantics =
  QCheck.Test.make ~name:"Polca output = policy machine output (all policies)"
    ~count:100 (arb_word 4) (fun word ->
      List.for_all
        (fun (_, polca, truth) ->
          Polca.run polca word = Cq_automata.Mealy.run truth word)
        polca_fixtures)

let prop_member_positive =
  QCheck.Test.make ~name:"Theorem 3.1: generated traces are members"
    ~count:200 (arb_word 3) (fun word ->
      let policy = Cq_policy.Newpol.make_new2 3 in
      let truth = Cq_policy.Policy.to_mealy policy in
      let outputs = Cq_automata.Mealy.run truth word in
      let trace =
        List.map2 (fun i o -> (T.input_of_int ~assoc:3 i, o)) word outputs
      in
      Polca.member (polca_for policy) trace)

let prop_member_negative =
  QCheck.Test.make ~name:"Theorem 3.1: corrupted traces are rejected"
    ~count:200
    QCheck.(pair (arb_word 3) small_int)
    (fun (word, pos) ->
      QCheck.assume (word <> []);
      let policy = Cq_policy.Mru.make 3 in
      let truth = Cq_policy.Policy.to_mealy policy in
      let outputs = Cq_automata.Mealy.run truth word in
      let pos = pos mod List.length word in
      (* Corrupt one output. *)
      let corrupted =
        List.mapi
          (fun i o ->
            if i = pos then
              match o with
              | None -> Some 0
              | Some v -> Some ((v + 1) mod 3)
            else o)
          outputs
      in
      QCheck.assume (corrupted <> outputs);
      let trace =
        List.map2 (fun i o -> (T.input_of_int ~assoc:3 i, o)) word corrupted
      in
      not (Polca.member (polca_for policy) trace))

let suite =
  ( "polca",
    [
      Alcotest.test_case "outputs match (LRU)" `Quick test_outputs_match_lru;
      Alcotest.test_case "outputs match (New1)" `Quick test_outputs_match_new1;
      Alcotest.test_case "Theorem 3.1 membership" `Quick test_member_theorem_3_1;
      Alcotest.test_case "fresh blocks deterministic" `Quick test_fresh_blocks_deterministic;
      Alcotest.test_case "nondeterminism detected" `Quick test_nondeterminism_detected;
      Alcotest.test_case "moracle alphabet" `Quick test_moracle_n_inputs;
      Alcotest.test_case "learning is exact (small zoo)" `Quick test_learn_simulated_exact;
      Alcotest.test_case "learning identifies New2" `Quick test_learn_identifies;
      Alcotest.test_case "random-walk equivalence" `Quick test_learn_with_random_walk;
      Alcotest.test_case "check_hits ablation" `Quick test_check_hits_ablation;
      QCheck_alcotest.to_alcotest prop_polca_equals_policy_semantics;
      QCheck_alcotest.to_alcotest prop_member_positive;
      QCheck_alcotest.to_alcotest prop_member_negative;
    ] )
