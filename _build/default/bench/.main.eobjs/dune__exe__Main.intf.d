bench/main.mli:
