bench/paper_data.ml:
