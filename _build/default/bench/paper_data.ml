(* Reference numbers from the paper, used to print side-by-side
   "ours vs. paper" rows in the benchmark harness.

   Table 2: learning from software-simulated caches (states, time).
   Table 4: learning from hardware.
   Table 5: synthesis templates and times.
   §7.2:    cost-of-learning measurements. *)

(* (policy, associativity, states, paper time as printed) *)
let table2 : (string * int * int * string) list =
  [
    ("FIFO", 2, 2, "0h 0m 0.14s");
    ("FIFO", 4, 4, "(interm.)");
    ("FIFO", 6, 6, "(interm.)");
    ("FIFO", 8, 8, "(interm.)");
    ("FIFO", 10, 10, "(interm.)");
    ("FIFO", 12, 12, "(interm.)");
    ("FIFO", 14, 14, "(interm.)");
    ("FIFO", 16, 16, "0h 0m 0.38s");
    ("LRU", 2, 2, "0h 0m 0.10s");
    ("LRU", 4, 24, "0h 0m 0.22s");
    ("LRU", 6, 720, "0h 0m 32.70s");
    ("PLRU", 2, 2, "0.10s");
    ("PLRU", 4, 8, "0.22s");
    ("PLRU", 8, 128, "1.46s");
    ("PLRU", 16, 32768, "34h 18m 25s");
    ("MRU", 2, 2, "0h 0m 0.10s");
    ("MRU", 4, 14, "0h 0m 0.16s");
    ("MRU", 6, 62, "0h 0m 0.61s");
    ("MRU", 8, 254, "0h 0m 8.82s");
    ("MRU", 10, 1022, "0h 5m 58s");
    ("MRU", 12, 4094, "3h 59m 20s");
    ("LIP", 2, 2, "0h 0m 0.10s");
    ("LIP", 4, 24, "0h 0m 0.26s");
    ("LIP", 6, 720, "0h 0m 31.97s");
    ("SRRIP-HP", 2, 12, "0h 0m 0.16s");
    ("SRRIP-HP", 4, 178, "0h 0m 1.46s");
    ("SRRIP-HP", 6, 2762, "0h 9m 38s");
    ("SRRIP-FP", 2, 16, "0h 0m 0.19s");
    ("SRRIP-FP", 4, 256, "0h 0m 7.27s");
    ("SRRIP-FP", 6, 4096, "2h 30m 51s");
  ]

(* Table 4 rows: cpu, level, assoc (with CAT where applicable), states,
   policy, reset sequence — as reported by the paper. *)
type t4_row = {
  cpu : string;
  level : string;
  assoc : int;
  cat : bool;
  states : int option; (* None = the paper could not learn it *)
  policy : string;
  reset : string;
}

let table4 : t4_row list =
  [
    { cpu = "i7-4790"; level = "L1"; assoc = 8; cat = false; states = Some 128; policy = "PLRU"; reset = "@ @" };
    { cpu = "i7-4790"; level = "L2"; assoc = 8; cat = false; states = Some 128; policy = "PLRU"; reset = "F+R" };
    { cpu = "i7-4790"; level = "L3"; assoc = 16; cat = false; states = None; policy = "-"; reset = "-" };
    { cpu = "i5-6500"; level = "L1"; assoc = 8; cat = false; states = Some 128; policy = "PLRU"; reset = "F+R" };
    { cpu = "i5-6500"; level = "L2"; assoc = 4; cat = false; states = Some 160; policy = "New1"; reset = "D C B A @" };
    { cpu = "i5-6500"; level = "L3"; assoc = 4; cat = true; states = Some 175; policy = "New2"; reset = "F+R" };
    { cpu = "i7-8550U"; level = "L1"; assoc = 8; cat = false; states = Some 128; policy = "PLRU"; reset = "F+R" };
    { cpu = "i7-8550U"; level = "L2"; assoc = 4; cat = false; states = Some 160; policy = "New1"; reset = "D C B A @" };
    { cpu = "i7-8550U"; level = "L3"; assoc = 4; cat = true; states = Some 175; policy = "New2"; reset = "F+R" };
  ]

(* Table 5: policy, states, template, paper time. *)
let table5 : (string * int * string option * string) list =
  [
    ("FIFO", 4, Some "Simple", "0h 0m 0.18s");
    ("LRU", 24, Some "Simple", "0h 0m 0.81s");
    ("PLRU", 8, None, "-");
    ("LIP", 24, Some "Simple", "0h 0m 4.36s");
    ("MRU", 14, Some "Extended", "0h 0m 39.80s");
    ("SRRIP-HP", 178, Some "Extended", "105h 28m 30s");
    ("SRRIP-FP", 256, Some "Extended", "48h 30m 25s");
    ("New1", 160, Some "Extended", "9h 36m 9s");
    ("New2", 175, Some "Extended", "26h 4m 22s");
  ]

(* §7.2 cost of learning: PLRU assoc 8 from a software simulator vs. via
   CacheQuery with a warm query cache; single-query latency per level. *)
let cost_sim_seconds = 1.46
let cost_warm_cache_seconds = 2247.0
let cost_overhead_factor = 1500.0
let cost_query_ms = [ ("L1", 16.0); ("L2", 11.0); ("L3", 20.0) ]
