(** Active learning of Mealy machines: L* (Angluin/Niese) with
    Rivest–Schapire counterexample processing — the role LearnLib plays in
    the paper (§3.1/§3.4). *)

type 'o result = {
  machine : 'o Cq_automata.Mealy.t;
  rounds : int;  (** equivalence queries issued *)
  suffixes_added : int;  (** distinguishing suffixes added to E *)
}

exception Diverged of string
(** The observation table could not be stabilised: the system under
    learning is nondeterministic, the equivalence oracle returned a
    spurious counterexample, or the state budget was exhausted. *)

val learn :
  ?max_states:int ->
  oracle:'o Moracle.t ->
  find_cex:('o Cq_automata.Mealy.t -> int list option) ->
  unit ->
  'o result
(** Learn the machine behind [oracle].  [find_cex] is the equivalence
    oracle (e.g. {!Equivalence.w_method}); learning terminates when it
    returns [None].  [max_states] (default 1,000,000) bounds the number of
    discovered states. *)
