lib/learner/moracle.ml: Cq_automata Hashtbl List
