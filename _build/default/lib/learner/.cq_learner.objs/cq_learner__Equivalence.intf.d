lib/learner/equivalence.mli: Cq_automata Cq_util Moracle Seq
