lib/learner/moracle.mli: Cq_automata
