lib/learner/lstar.mli: Cq_automata Moracle
