lib/learner/lstar.ml: Array Cq_automata Cq_util Hashtbl List Moracle
