lib/learner/equivalence.ml: Array Cq_automata Cq_util Fun Hashtbl List Moracle Option Seq
