(* Membership oracle for Mealy-machine learning: answers *output queries*,
   i.e. maps an input word to the output word produced from the (fixed)
   initial state of the system under learning.

   This is the interface between the L* learner and Polca: Polca implements
   [query] by translating policy inputs into cache probes (Algorithm 1). *)

type 'o t = {
  n_inputs : int;
  query : int list -> 'o list;
}

type stats = {
  mutable queries : int;      (* queries reaching the underlying system *)
  mutable symbols : int;      (* total input symbols of those queries *)
  mutable cache_hits : int;   (* queries answered by the prefix cache *)
}

let fresh_stats () = { queries = 0; symbols = 0; cache_hits = 0 }

let counting stats t =
  {
    t with
    query =
      (fun w ->
        stats.queries <- stats.queries + 1;
        stats.symbols <- stats.symbols + List.length w;
        t.query w);
  }

(* Prefix-tree cache.  Output queries are prefix-closed (the outputs of a
   prefix are a prefix of the outputs), so a trie lets us answer any query
   whose whole path is known, and to extend partial knowledge cheaply. *)
module Trie = struct
  type 'o node = {
    mutable out : 'o option; (* output on the edge leading here *)
    children : (int, 'o node) Hashtbl.t;
  }

  let create () = { out = None; children = Hashtbl.create 4 }

  let rec lookup node = function
    | [] -> Some []
    | i :: rest -> (
        match Hashtbl.find_opt node.children i with
        | None -> None
        | Some child -> (
            match child.out with
            | None -> None
            | Some o -> (
                match lookup child rest with
                | None -> None
                | Some os -> Some (o :: os))))

  let insert node word outputs =
    let rec go node word outputs =
      match (word, outputs) with
      | [], [] -> ()
      | i :: wrest, o :: orest ->
          let child =
            match Hashtbl.find_opt node.children i with
            | Some c -> c
            | None ->
                let c = create () in
                Hashtbl.add node.children i c;
                c
          in
          (match child.out with
          | None -> child.out <- Some o
          | Some o' ->
              if o' <> o then
                failwith
                  "Moracle: inconsistent outputs for the same input word \
                   (the system under learning is nondeterministic)");
          go child wrest orest
      | _ -> invalid_arg "Moracle.Trie.insert: length mismatch"
    in
    go node word outputs
end

let cached ?stats t =
  let root = Trie.create () in
  {
    t with
    query =
      (fun w ->
        match Trie.lookup root w with
        | Some outputs ->
            (match stats with
            | Some s -> s.cache_hits <- s.cache_hits + 1
            | None -> ());
            outputs
        | None ->
            let outputs = t.query w in
            if List.length outputs <> List.length w then
              failwith "Moracle: output word length mismatch";
            Trie.insert root w outputs;
            outputs);
  }

(* Oracle backed by an explicit Mealy machine — ground truth in tests and
   the "perfect teacher" ablation. *)
let of_mealy m =
  { n_inputs = Cq_automata.Mealy.n_inputs m; query = Cq_automata.Mealy.run m }
