(* Bimodal Insertion Policy [Qureshi et al., ISCA'07].  BIP behaves like LIP
   but inserts at the MRU position for a small fraction of the misses.  The
   original proposal throttles with a random source; to stay inside the
   paper's deterministic-policy model we use the standard deterministic
   variant with a modulo-[throttle] miss counter: every [throttle]-th miss
   inserts at MRU.  The counter is part of the control state. *)

let make ?(throttle = 4) assoc =
  if throttle < 1 then invalid_arg "Bip.make: throttle must be >= 1";
  Policy.v
    ~name:(Printf.sprintf "BIP(1/%d)" throttle)
    ~assoc
    ~init:(Lru.init_order assoc, 0)
    ~step:(fun (order, count) -> function
      | Types.Line i -> ((Lru.promote i order, count), None)
      | Types.Evct ->
          let victim = Lru.last order in
          let mru_insert = count = throttle - 1 in
          let order' = if mru_insert then Lru.promote victim order else order in
          ((order', (count + 1) mod throttle), Some victim))
    ~describe:
      "LIP that promotes the incoming block to MRU on every k-th miss \
       (deterministic bimodal throttle)."
    ()
