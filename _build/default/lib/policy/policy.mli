(** Replacement policies as Mealy machines (Definition 2.1 of the paper).

    A policy packages an existential control-state type with a pure step
    function.  States must be immutable and structurally comparable, which
    is what allows [to_mealy] to enumerate the reachable state space. *)

type t =
  | Policy : {
      name : string;
      assoc : int;
      init : 's;
      step : 's -> Types.input -> 's * Types.output;
      describe : string;
    }
      -> t

val v :
  ?describe:string ->
  name:string ->
  assoc:int ->
  init:'s ->
  step:('s -> Types.input -> 's * Types.output) ->
  unit ->
  t
(** Package a policy.  The step function's outputs are checked against
    Definition 2.1 at every use: [Evct] must name a line, line accesses
    must output ⊥. *)

val name : t -> string
val assoc : t -> int
val describe : t -> string

val run : t -> Types.input list -> Types.output list
(** Output word from the initial control state (checked). *)

val to_mealy : ?max_states:int -> t -> Types.output Cq_automata.Mealy.t
(** Explicit automaton of the reachable control states.  Fails
    ([Failure _]) beyond [max_states] (default 2,000,000). *)

val n_reachable_states : ?max_states:int -> t -> int
val n_minimal_states : ?max_states:int -> t -> int
(** Reachable states after Mealy minimization — the numbers Table 2 of the
    paper reports. *)

val equivalent : t -> t -> bool
(** Trace equivalence of two policies of the same associativity. *)

val advance : t -> Types.input list -> t
(** Policy with its initial state advanced through an input word. *)

val warmed : t -> t
(** [advance p (Evct^assoc)]: the control state after an initial cache
    fill through evictions. *)

val victim_after : t -> Types.input list -> int
(** The line an [Evct] would free after the given warm-up word. *)
