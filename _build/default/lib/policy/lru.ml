(* Least Recently Used.  The control state is the recency order of the
   lines: a permutation of [0 .. n-1] with the most recently used line at
   the head.  n! control states. *)

let promote line order = line :: List.filter (fun l -> l <> line) order

let init_order assoc = List.init assoc (fun i -> i)

let rec last = function
  | [] -> invalid_arg "Lru.last: empty order"
  | [ x ] -> x
  | _ :: tl -> last tl

let make assoc =
  Policy.v ~name:"LRU" ~assoc ~init:(init_order assoc)
    ~step:(fun order -> function
      | Types.Line i -> (promote i order, None)
      | Types.Evct ->
          let victim = last order in
          (* The incoming block lands in the victim's line and becomes the
             most recently used. *)
          (promote victim order, Some victim))
    ~describe:"Evict the least recently used line; promote on hit and insert."
    ()
