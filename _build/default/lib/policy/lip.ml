(* LRU Insertion Policy [Qureshi et al., ISCA'07]: identical to LRU except
   that incoming blocks are inserted in the LRU position instead of the MRU
   position, so a block must be re-referenced to be retained.  Same control
   state space as LRU (n! recency orders). *)

let make assoc =
  Policy.v ~name:"LIP" ~assoc ~init:(Lru.init_order assoc)
    ~step:(fun order -> function
      | Types.Line i -> (Lru.promote i order, None)
      | Types.Evct ->
          (* Evict the LRU line; the incoming block stays in the LRU
             position, hence the recency order is unchanged. *)
          (order, Some (Lru.last order)))
    ~describe:
      "LRU with LRU-position insertion: blocks are promoted only on a hit."
    ()
