(* First In First Out: evicts lines in round-robin insertion order; hits do
   not modify the control state.  Reachable control states: exactly the
   associativity (one per position of the round-robin pointer). *)

let make assoc =
  Policy.v ~name:"FIFO" ~assoc ~init:0
    ~step:(fun ptr -> function
      | Types.Line _ -> (ptr, None)
      | Types.Evct -> ((ptr + 1) mod assoc, Some ptr))
    ~describe:"Evict lines in insertion order (round-robin); hits are ignored."
    ()
