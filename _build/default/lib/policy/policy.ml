(* Replacement policies as Mealy machines (Definition 2.1).

   A policy is packaged with an existential state type: concrete
   implementations keep whatever control state they like (permutation lists
   for LRU, tree bits for PLRU, age vectors for RRIP-family policies), as
   long as states are immutable and structurally comparable, which lets us
   enumerate the reachable state space into an explicit automaton. *)

type t =
  | Policy : {
      name : string;
      assoc : int;
      init : 's;
      step : 's -> Types.input -> 's * Types.output;
      describe : string;
    }
      -> t

let v ?(describe = "") ~name ~assoc ~init ~step () =
  if assoc < 1 then invalid_arg "Policy.v: associativity must be >= 1";
  Policy { name; assoc; init; step; describe }

let name (Policy p) = p.name
let assoc (Policy p) = p.assoc
let describe (Policy p) = p.describe

(* Check the well-formedness conditions (a)/(b) of Definition 2.1 on a
   single step: Evct must name a line, Line accesses must output ⊥. *)
let checked_step ~assoc step s input =
  let s', out = step s input in
  (match (input, out) with
  | Types.Evct, Some i when i >= 0 && i < assoc -> ()
  | Types.Evct, _ -> invalid_arg "Policy: Evct must output a line index"
  | Types.Line _, None -> ()
  | Types.Line _, Some _ -> invalid_arg "Policy: Line access must output ⊥");
  (s', out)

let run (Policy p) inputs =
  let state = ref p.init in
  List.map
    (fun input ->
      let s', out = checked_step ~assoc:p.assoc p.step !state input in
      state := s';
      out)
    inputs

let to_mealy ?(max_states = 2_000_000) (Policy p) =
  let n_inputs = Types.n_inputs ~assoc:p.assoc in
  Cq_automata.Mealy.of_fun ~init:p.init ~n_inputs
    ~step:(fun s i ->
      checked_step ~assoc:p.assoc p.step s (Types.input_of_int ~assoc:p.assoc i))
    ~max_states

let n_reachable_states ?max_states p =
  Cq_automata.Mealy.n_states (to_mealy ?max_states p)

let n_minimal_states ?max_states p =
  Cq_automata.Mealy.n_states (Cq_automata.Mealy.minimize (to_mealy ?max_states p))

let equivalent a b =
  assoc a = assoc b && Cq_automata.Mealy.equivalent (to_mealy a) (to_mealy b)

(* Advance the initial state through an input word.  [warmed p] advances
   through associativity-many [Evct] inputs: this is the control state after
   the initial cache fill, which is where Polca-based learning starts (the
   oracle needs a full cache).  State counts in Table 2 refer to the machine
   reachable from this warmed-up state. *)
let advance (Policy p) inputs =
  let init =
    List.fold_left
      (fun s input -> fst (checked_step ~assoc:p.assoc p.step s input))
      p.init inputs
  in
  Policy { p with init }

let warmed p = advance p (List.init (assoc p) (fun _ -> Types.Evct))

(* The victim a policy chooses from its initial state after a given warm-up
   input word; handy in tests. *)
let victim_after (Policy p) inputs =
  let state =
    List.fold_left (fun s input -> fst (p.step s input)) p.init inputs
  in
  match p.step state Types.Evct with
  | _, Some i -> i
  | _, None -> invalid_arg "Policy.victim_after: policy returned ⊥ on Evct"
