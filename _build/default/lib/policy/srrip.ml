(* Static Re-reference Interval Prediction [Jaleel et al., ISCA'10].

   Each line carries an M-bit re-reference prediction value (an "age" in
   0 .. 2^M - 1; the paper's experiments use M = 2, i.e. 4 ages).  On a
   miss, ages are incremented until some line holds the maximum age; the
   leftmost such line is evicted and the incoming block is inserted with
   age max-1 ("long re-reference interval").  The two variants differ in
   the promotion rule:

   - Hit Priority (HP): a hit sets the line's age to 0;
   - Frequency Priority (FP): a hit decrements the line's age.

   BRRIP (bimodal RRIP) mostly inserts with the maximum age and only every
   k-th miss with max-1; as with BIP we use the deterministic counter
   variant. *)

type variant = Hit_priority | Frequency_priority

let variant_name = function
  | Hit_priority -> "SRRIP-HP"
  | Frequency_priority -> "SRRIP-FP"

let init_ages ~assoc ~max_age = List.init assoc (fun _ -> max_age)

(* Increment every age until some line reaches [max_age].  Each round adds
   one to all ages, so at most [max_age] rounds are needed. *)
let rec normalize ~max_age ages =
  if List.exists (fun a -> a = max_age) ages then ages
  else normalize ~max_age (List.map (fun a -> a + 1) ages)

let victim ~max_age ages =
  let rec go i = function
    | [] -> invalid_arg "Srrip.victim: no line with maximum age"
    | a :: _ when a = max_age -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 ages

let set_age ages i v = List.mapi (fun j a -> if j = i then v else a) ages

let promote variant ~max_age:_ ages i =
  match variant with
  | Hit_priority -> set_age ages i 0
  | Frequency_priority -> set_age ages i (max 0 (List.nth ages i - 1))

let make ?(ages = 4) variant assoc =
  if ages < 2 then invalid_arg "Srrip.make: need at least 2 ages";
  let max_age = ages - 1 in
  Policy.v
    ~name:(variant_name variant)
    ~assoc
    ~init:(init_ages ~assoc ~max_age)
    ~step:(fun st -> function
      | Types.Line i -> (promote variant ~max_age st i, None)
      | Types.Evct ->
          (* SRRIP normalizes only before a miss (cf. §8 of the paper). *)
          let st = normalize ~max_age st in
          let v = victim ~max_age st in
          (set_age st v (max_age - 1), Some v))
    ~describe:
      (Printf.sprintf
         "%s with %d ages: miss evicts the leftmost line of maximum age \
          (aging all lines first if needed), inserts with age %d; hits %s."
         (variant_name variant) ages (max_age - 1)
         (match variant with
         | Hit_priority -> "reset the age to 0"
         | Frequency_priority -> "decrement the age"))
    ()

let make_brrip ?(ages = 4) ?(throttle = 4) assoc =
  if ages < 2 then invalid_arg "Srrip.make_brrip: need at least 2 ages";
  if throttle < 1 then invalid_arg "Srrip.make_brrip: throttle must be >= 1";
  let max_age = ages - 1 in
  Policy.v
    ~name:(Printf.sprintf "BRRIP(1/%d)" throttle)
    ~assoc
    ~init:(init_ages ~assoc ~max_age, 0)
    ~step:(fun (st, count) -> function
      | Types.Line i -> ((promote Hit_priority ~max_age st i, count), None)
      | Types.Evct ->
          let st = normalize ~max_age st in
          let v = victim ~max_age st in
          let insert_age = if count = throttle - 1 then max_age - 1 else max_age in
          ((set_age st v insert_age, (count + 1) mod throttle), Some v))
    ~describe:
      "Bimodal RRIP: inserts with the maximum age except on every k-th miss \
       (deterministic throttle); hits reset the age."
    ()
