(* Tree-based Pseudo-LRU [Handy 1993], the policy of Intel L1 caches (and
   Haswell's L2).  The control state is one bit per internal node of a
   complete binary tree over the lines; each bit points towards the
   pseudo-least-recently-used subtree.  2^(n-1) control states.

   Node numbering is heap style: root is node 1, node [v] has children
   [2v] (left) and [2v+1] (right); leaves [n .. 2n-1] are lines
   [0 .. n-1].  Bit for node [v] is stored at position [v - 1] of the
   mask.  Bit = 0 means "the pseudo-LRU line is in the left subtree". *)

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec loop acc m = if m <= 1 then acc else loop (acc + 1) (m / 2) in
  loop 0 n

let bit mask v = (mask lsr (v - 1)) land 1
let set_bit mask v b =
  if b = 1 then mask lor (1 lsl (v - 1)) else mask land lnot (1 lsl (v - 1))

(* Walk from root towards the pseudo-LRU leaf. *)
let victim ~assoc mask =
  let rec go v = if v >= assoc then v - assoc else go ((2 * v) + bit mask v) in
  go 1

(* Point every bit on the path to leaf [i] away from it. *)
let touch ~assoc mask i =
  let levels = log2 assoc in
  let rec go mask v k =
    if k < 0 then mask
    else
      let dir = (i lsr k) land 1 in
      let mask = set_bit mask v (1 - dir) in
      go mask ((2 * v) + dir) (k - 1)
  in
  go mask 1 (levels - 1)

let make assoc =
  if not (is_power_of_two assoc) then
    invalid_arg "Plru.make: associativity must be a power of two";
  if assoc = 1 then
    Policy.v ~name:"PLRU" ~assoc ~init:0
      ~step:(fun s -> function Types.Line _ -> (s, None) | Types.Evct -> (s, Some 0))
      ()
  else
    Policy.v ~name:"PLRU" ~assoc ~init:0
      ~step:(fun mask -> function
        | Types.Line i -> (touch ~assoc mask i, None)
        | Types.Evct ->
            let v = victim ~assoc mask in
            (touch ~assoc mask v, Some v))
      ~describe:
        "Tree-based pseudo-LRU: one bit per tree node pointing at the \
         pseudo-LRU subtree; accesses flip the path away from the line."
      ()
