(* Bit-PLRU, called "MRU" in the paper after the Malamy et al. patent
   [US5353425A]: one MRU-bit per line.  Touching a line sets its bit; when
   all bits would be set, every other bit is cleared.  The victim is the
   leftmost line whose bit is clear.

   The reachable, behaviourally distinct control states are the masks with
   at least one set and one clear bit: 2^n - 2 states, matching Table 2
   (14 for n=4, 62 for n=6, ...).  The initial state marks line 0 as most
   recently used: the all-zero mask is a transient state that no access
   sequence can revisit, and the reference simulators of the paper start
   inside the recurrent class (Table 2 reports 2^n - 2, not 2^n - 1). *)

let all_ones assoc = (1 lsl assoc) - 1

let touch ~assoc mask i =
  let mask = mask lor (1 lsl i) in
  if mask = all_ones assoc then 1 lsl i else mask

let victim ~assoc mask =
  let rec go i =
    if i >= assoc then invalid_arg "Mru.victim: all MRU bits set"
    else if (mask lsr i) land 1 = 0 then i
    else go (i + 1)
  in
  go 0

let make assoc =
  Policy.v ~name:"MRU" ~assoc ~init:1
    ~step:(fun mask -> function
      | Types.Line i -> (touch ~assoc mask i, None)
      | Types.Evct ->
          let v = victim ~assoc mask in
          (touch ~assoc mask v, Some v))
    ~describe:
      "Bit-PLRU: per-line MRU bits; evict the leftmost line with a clear \
       bit; clear all other bits when the last one is set."
    ()
