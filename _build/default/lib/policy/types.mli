(** Input/output alphabets of replacement policies (Table 1 of the paper).

    For automata learning the input alphabet is flattened to
    [0 .. assoc]: inputs [0 .. assoc-1] are [Line i], input [assoc] is
    [Evct]. *)

type input = Line of int | Evct

type output = int option
(** [None] is the paper's ⊥ (on line accesses); [Some i] is the evicted
    line index (on [Evct]). *)

val input_to_int : assoc:int -> input -> int
val input_of_int : assoc:int -> int -> input
val n_inputs : assoc:int -> int

val pp_input : Format.formatter -> input -> unit
val pp_output : Format.formatter -> output -> unit

val input_label : assoc:int -> int -> string
(** Label of a flattened input ("Ln(i)" or "Evct"), for DOT export. *)

val output_label : output -> string

val equal_input : input -> input -> bool
val equal_output : output -> output -> bool
