(* The two previously undocumented Intel policies uncovered by the paper
   (§7/§8 and Appendix C), as synthesized by Sketch in Figure 5:

   - New1 (Skylake / Kaby Lake L2): SRRIP-HP-like, but normalization runs
     after *both* hits and misses and skips the just-touched line; incoming
     blocks are inserted with age 1 and the initial state is {3,3,3,0}.

   - New2 (Skylake / Kaby Lake L3 leader sets): like New1, but promotion
     moves a line of age 1 to age 0 and any older line only to age 1, and
     normalization ages *every* line (including the touched one); initial
     state {3,3,3,3}.

   Both maintain the invariant that some line has age 3 after every step,
   so eviction (leftmost line of age 3) never needs a fallback.  We
   generalise the paper's associativity-4 definitions to arbitrary
   associativity >= 2 by keeping the 2-bit ages. *)

let max_age = 3

let rec normalize_except pos ages =
  if List.exists (fun a -> a = max_age) ages then ages
  else
    normalize_except pos
      (List.mapi (fun i a -> if i = pos then a else a + 1) ages)

let rec normalize_all ages =
  if List.exists (fun a -> a = max_age) ages then ages
  else normalize_all (List.map (fun a -> a + 1) ages)

let victim ages =
  let rec go i = function
    | [] -> invalid_arg "Newpol.victim: no line with age 3"
    | a :: _ when a = max_age -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 ages

let set_age ages i v = List.mapi (fun j a -> if j = i then v else a) ages

let make_new1 assoc =
  if assoc < 2 then invalid_arg "Newpol.make_new1: associativity must be >= 2";
  let init = List.init assoc (fun i -> if i = assoc - 1 then 0 else max_age) in
  Policy.v ~name:"New1" ~assoc ~init
    ~step:(fun ages -> function
      | Types.Line i ->
          let ages = set_age ages i 0 in
          (normalize_except i ages, None)
      | Types.Evct ->
          let v = victim ages in
          let ages = set_age ages v 1 in
          (normalize_except v ages, Some v))
    ~describe:
      "Skylake/Kaby Lake L2: promote to age 0; evict leftmost age-3 line; \
       insert with age 1; after every access, age all other lines until \
       some line has age 3."
    ()

let promote_new2 ages i =
  let a = List.nth ages i in
  if a = 1 then set_age ages i 0 else if a > 1 then set_age ages i 1 else ages

let make_new2 assoc =
  if assoc < 2 then invalid_arg "Newpol.make_new2: associativity must be >= 2";
  let init = List.init assoc (fun _ -> max_age) in
  Policy.v ~name:"New2" ~assoc ~init
    ~step:(fun ages -> function
      | Types.Line i ->
          let ages = promote_new2 ages i in
          (normalize_all ages, None)
      | Types.Evct ->
          let v = victim ages in
          let ages = set_age ages v 1 in
          (normalize_all ages, Some v))
    ~describe:
      "Skylake/Kaby Lake L3 leader sets: two-step promotion (age 1 -> 0, \
       older -> 1); evict leftmost age-3 line; insert with age 1; age all \
       lines until some line has age 3."
    ()
