(* Input/output alphabets of replacement policies (Table 1 in the paper).

   A policy of associativity [n] consumes inputs [Line i] (the i-th cache
   line was touched) and [Evct] (a line must be freed), and emits either
   [None] (the paper's ⊥) or [Some i] (line [i] is to be evicted).  For
   automata learning the input alphabet is flattened to [0 .. n]: inputs
   [0 .. n-1] are [Line i] and input [n] is [Evct]. *)

type input = Line of int | Evct

type output = int option
(* [None] is the paper's ⊥ (on line accesses); [Some i] is the evicted line
   index (on [Evct]). *)

let input_to_int ~assoc = function
  | Line i ->
      if i < 0 || i >= assoc then invalid_arg "Types.input_to_int: line out of range";
      i
  | Evct -> assoc

let input_of_int ~assoc i =
  if i < 0 || i > assoc then invalid_arg "Types.input_of_int: out of range"
  else if i = assoc then Evct
  else Line i

let n_inputs ~assoc = assoc + 1

let pp_input ppf = function
  | Line i -> Fmt.pf ppf "Ln(%d)" i
  | Evct -> Fmt.string ppf "Evct"

let pp_output ppf = function
  | None -> Fmt.string ppf "_" (* ⊥ *)
  | Some i -> Fmt.int ppf i

let input_label ~assoc i =
  if i = assoc then "Evct" else Printf.sprintf "Ln(%d)" i

let output_label = function None -> "_" | Some i -> string_of_int i

let equal_input (a : input) (b : input) = a = b
let equal_output (a : output) (b : output) = a = b
