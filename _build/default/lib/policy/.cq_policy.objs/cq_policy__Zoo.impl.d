lib/policy/zoo.ml: Array Bip Cq_automata Fifo Lip List Lru Mru Newpol Plru Policy Printf Srrip String Types
