lib/policy/types.ml: Fmt Printf
