lib/policy/lip.ml: Lru Policy Types
