lib/policy/zoo.mli: Cq_automata Policy Types
