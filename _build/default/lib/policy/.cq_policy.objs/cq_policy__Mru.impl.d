lib/policy/mru.ml: Policy Types
