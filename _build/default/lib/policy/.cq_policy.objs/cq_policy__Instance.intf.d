lib/policy/instance.mli: Policy Types
