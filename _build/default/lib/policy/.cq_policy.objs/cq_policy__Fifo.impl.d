lib/policy/fifo.ml: Policy Types
