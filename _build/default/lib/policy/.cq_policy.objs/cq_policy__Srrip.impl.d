lib/policy/srrip.ml: List Policy Printf Types
