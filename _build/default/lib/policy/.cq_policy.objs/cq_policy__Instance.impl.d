lib/policy/instance.ml: Policy Types
