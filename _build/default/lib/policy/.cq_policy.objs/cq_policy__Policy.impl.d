lib/policy/policy.ml: Cq_automata List Types
