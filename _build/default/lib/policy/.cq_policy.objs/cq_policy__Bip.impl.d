lib/policy/bip.ml: Lru Policy Printf Types
