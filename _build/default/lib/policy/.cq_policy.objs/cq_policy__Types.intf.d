lib/policy/types.mli: Format
