lib/policy/policy.mli: Cq_automata Types
