lib/policy/plru.ml: Policy Types
