lib/policy/newpol.ml: List Policy Types
