lib/policy/lru.ml: List Policy Types
