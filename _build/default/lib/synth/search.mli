(** Template-based synthesis of policy explanations (§5/§8 of the paper).

    Where the paper hands the constraint φP to Sketch, we search the same
    generator grammars enumeratively: candidates are screened against a
    growing test suite of traces of the learned machine (CEGIS) and
    validated by an exact bisimulation check, which *decides*
    ⟦P⟧ = ⟦Prg⟧ — so a returned program is correct by construction. *)

type outcome =
  | Found of Rules.program
  | Not_expressible  (** the search space was exhausted *)
  | Timeout

type report = {
  outcome : outcome;
  template : string;  (** "Simple" or "Extended" (Table 5's column) *)
  candidates_tried : int;
  seconds : float;
}

val check_exact :
  Cq_policy.Types.output Cq_automata.Mealy.t -> Rules.program -> int list option
(** Bisimulation between a learned machine and a candidate program:
    [None] on equivalence, or a distinguishing input word.  Programs whose
    eviction gets stuck on a reachable state are rejected with the word
    that reaches the stuck state. *)

val synthesize_with :
  ?with_others:bool ->
  extended:bool ->
  ?deadline:float ->
  Cq_policy.Types.output Cq_automata.Mealy.t ->
  report
(** One search phase over a fixed template.  [extended:false] is the
    paper's Simple template (normalization fixed to the identity);
    [with_others:false] drops cross-line promotion updates (an
    intermediate phase — every Extended-template policy in the paper's
    evaluation lives there). *)

val synthesize :
  ?deadline:float -> Cq_policy.Types.output Cq_automata.Mealy.t -> report
(** The paper's workflow (§8.1): Simple template first, then the Extended
    one (in two phases).  [deadline] is in seconds, and spans the whole
    search. *)
