(* The explanation template of §5: replacement policies as small programs
   over per-line ages, structured into promotion, eviction, insertion and
   normalization rules (the vocabulary of the hardware community, cf.
   RRIP [Jaleel et al.]).

   A control state is an age vector (one age in [0 .. max_age] per line).
   The template's two entry points are

     hit  : state -> line -> state                 (promote; normalize)
     miss : state -> state * line   (normalize(pre); evict; insert; normalize)

   exactly as in the paper's program template.  The normalization rule
   receives the touched line (or none, before eviction), so a synthesized
   normalization can act differently before a miss than after an access —
   that distinction separates SRRIP (ages only before a miss) from New1 and
   New2 (age after every access). *)

let max_age = 3

(* --- Expressions -------------------------------------------------------- *)

(* Conditions over the touched line's age. *)
type cond = Always | Eq of int | Gt of int | Lt of int

(* Conditions over another line's age, possibly relative to the touched
   line's (original) age — the paper's boolExpr(state[pos], state[i]). *)
type cond2 =
  | O_always
  | O_eq of int
  | O_lt_self (* state[i] < state[pos] *)
  | O_gt_self
  | O_ne_self

(* Age updates; Dec saturates at 0, Inc at max_age. *)
type upd = Const of int | Keep | Inc | Dec

let eval_cond c age =
  match c with
  | Always -> true
  | Eq k -> age = k
  | Gt k -> age > k
  | Lt k -> age < k

let eval_cond2 c ~self ~other =
  match c with
  | O_always -> true
  | O_eq k -> other = k
  | O_lt_self -> other < self
  | O_gt_self -> other > self
  | O_ne_self -> other <> self

let eval_upd u age =
  match u with
  | Const k -> k
  | Keep -> age
  | Inc -> min max_age (age + 1)
  | Dec -> max 0 (age - 1)

(* --- Rules -------------------------------------------------------------- *)

(* Promotion: a small decision list on the accessed line's age, plus an
   optional conditional update of every other line (conditions read the
   *original* state, as in the paper's generator). *)
type promote = {
  p_self : (cond * upd) list; (* first matching branch applies *)
  p_others : (cond2 * upd) option;
}

(* Eviction: which line to free. *)
type evict =
  | First_with_age of int (* leftmost line with this age *)
  | First_max (* leftmost line with the maximal age *)
  | First_min

(* Insertion: the evicted line's new age, plus an optional update of the
   other lines (what rotates the FIFO/LRU ranks). *)
type insert = {
  i_self : upd;
  i_others : (cond2 * upd) option;
}

(* Normalization actions. *)
type norm_action =
  | N_nop
  | N_aging of { except_touched : bool }
      (* while no line has age max_age: increment every line (except the
         touched one when [except_touched]) *)
  | N_reset_full of { full : int; reset_to : int }
      (* if every line has age [full]: set all lines except the touched one
         to [reset_to] (bit-PLRU-style) *)

(* Site-sensitive normalization: the template passes the touched line after
   a hit or an insertion, and "no line" before eviction. *)
type normalize = {
  n_touched : norm_action; (* after promote / after insert *)
  n_pre_miss : norm_action; (* before evict (touched line = none) *)
}

type program = {
  init : int array;
  promote : promote;
  evict : evict;
  insert : insert;
  normalize : normalize;
}

(* --- Semantics ---------------------------------------------------------- *)

exception Stuck (* eviction found no line; the candidate is not total *)

let apply_promote p state pos =
  let self = state.(pos) in
  let final = Array.copy state in
  (match List.find_opt (fun (c, _) -> eval_cond c self) p.p_self with
  | Some (_, u) -> final.(pos) <- eval_upd u self
  | None -> ());
  (match p.p_others with
  | None -> ()
  | Some (c, u) ->
      Array.iteri
        (fun i age ->
          if i <> pos && eval_cond2 c ~self ~other:age then
            final.(i) <- eval_upd u age)
        state);
  final

let apply_evict e state =
  let n = Array.length state in
  let target =
    match e with
    | First_with_age k -> Some k
    | First_max ->
        let m = Array.fold_left max 0 state in
        Some m
    | First_min ->
        let m = Array.fold_left min max_int state in
        Some m
  in
  match target with
  | None -> raise Stuck
  | Some k ->
      let rec go i =
        if i >= n then raise Stuck
        else if state.(i) = k then i
        else go (i + 1)
      in
      go 0

let apply_insert ins state victim =
  let self = state.(victim) in
  let final = Array.copy state in
  final.(victim) <- eval_upd ins.i_self self;
  (match ins.i_others with
  | None -> ()
  | Some (c, u) ->
      Array.iteri
        (fun i age ->
          if i <> victim && eval_cond2 c ~self ~other:age then
            final.(i) <- eval_upd u age)
        state);
  final

let apply_norm_action action state ~touched =
  match action with
  | N_nop -> state
  | N_aging { except_touched } ->
      let final = Array.copy state in
      let except = if except_touched then touched else None in
      let has_max () = Array.exists (fun a -> a = max_age) final in
      (* Bounded by max_age rounds: each round raises every aged line. *)
      let rounds = ref 0 in
      while (not (has_max ())) && !rounds <= max_age + 1 do
        Array.iteri
          (fun i a -> if Some i <> except then final.(i) <- min max_age (a + 1))
          (Array.copy final);
        incr rounds
      done;
      if not (has_max ()) then raise Stuck else final
  | N_reset_full { full; reset_to } ->
      if Array.for_all (fun a -> a = full) state then
        Array.mapi
          (fun i a -> if Some i = touched then a else reset_to)
          state
      else state

(* The template's entry points. *)
let hit prog state pos =
  let state = apply_promote prog.promote state pos in
  apply_norm_action prog.normalize.n_touched state ~touched:(Some pos)

let miss prog state =
  let state = apply_norm_action prog.normalize.n_pre_miss state ~touched:None in
  let victim = apply_evict prog.evict state in
  let state = apply_insert prog.insert state victim in
  let state =
    apply_norm_action prog.normalize.n_touched state ~touched:(Some victim)
  in
  (state, victim)

(* A program as a policy (Definition 2.1), for validation and reuse. *)
let to_policy ?(name = "synthesized") prog =
  let assoc = Array.length prog.init in
  Cq_policy.Policy.v ~name ~assoc
    ~init:(Array.to_list prog.init)
    ~step:(fun ages input ->
      let state = Array.of_list ages in
      match input with
      | Cq_policy.Types.Line i -> (Array.to_list (hit prog state i), None)
      | Cq_policy.Types.Evct ->
          let state', victim = miss prog state in
          (Array.to_list state', Some victim))
    ()

(* --- Pretty-printing (Figure 5 style) ----------------------------------- *)

let cond_to_string = function
  | Always -> "true"
  | Eq k -> Printf.sprintf "state[pos] == %d" k
  | Gt k -> Printf.sprintf "state[pos] > %d" k
  | Lt k -> Printf.sprintf "state[pos] < %d" k

let cond2_to_string = function
  | O_always -> "true"
  | O_eq k -> Printf.sprintf "state[i] == %d" k
  | O_lt_self -> "state[i] < state[pos]"
  | O_gt_self -> "state[i] > state[pos]"
  | O_ne_self -> "state[i] != state[pos]"

let upd_to_string target = function
  | Const k -> Printf.sprintf "%s = %d" target k
  | Keep -> Printf.sprintf "%s unchanged" target
  | Inc -> Printf.sprintf "%s = min(%d, %s + 1)" target max_age target
  | Dec -> Printf.sprintf "%s = max(0, %s - 1)" target target

let norm_to_string site = function
  | N_nop -> Printf.sprintf "// %s: no normalization" site
  | N_aging { except_touched } ->
      Printf.sprintf
        "// %s: while no line has age %d, increase all ages by 1%s" site
        max_age
        (if except_touched then " except the touched line" else "")
  | N_reset_full { full; reset_to } ->
      Printf.sprintf
        "// %s: if all lines have age %d, set all except the touched line \
         to %d"
        site full reset_to

let pp ppf prog =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "int[%d] s0 = {%s};\n\n" (Array.length prog.init)
       (String.concat ","
          (Array.to_list (Array.map string_of_int prog.init))));
  Buffer.add_string buf "hit(state, pos):\n";
  List.iter
    (fun (c, u) ->
      Buffer.add_string buf
        (Printf.sprintf "  if (%s) %s   // promotion\n" (cond_to_string c)
           (upd_to_string "state[pos]" u)))
    prog.promote.p_self;
  (match prog.promote.p_others with
  | None -> ()
  | Some (c, u) ->
      Buffer.add_string buf
        (Printf.sprintf "  for i != pos: if (%s) %s\n" (cond2_to_string c)
           (upd_to_string "state[i]" u)));
  Buffer.add_string buf
    ("  " ^ norm_to_string "normalize" prog.normalize.n_touched ^ "\n\n");
  Buffer.add_string buf "miss(state):\n";
  Buffer.add_string buf
    ("  " ^ norm_to_string "pre-normalize" prog.normalize.n_pre_miss ^ "\n");
  Buffer.add_string buf
    (match prog.evict with
    | First_with_age k ->
        Printf.sprintf "  idx = leftmost line with age %d   // eviction\n" k
    | First_max -> "  idx = leftmost line with maximal age   // eviction\n"
    | First_min -> "  idx = leftmost line with minimal age   // eviction\n");
  Buffer.add_string buf
    (Printf.sprintf "  %s   // insertion\n" (upd_to_string "state[idx]" prog.insert.i_self));
  (match prog.insert.i_others with
  | None -> ()
  | Some (c, u) ->
      Buffer.add_string buf
        (Printf.sprintf "  for i != idx: if (%s) %s\n"
           (cond2_to_string (match c with O_lt_self -> O_lt_self | x -> x))
           (upd_to_string "state[i]" u)));
  Buffer.add_string buf
    ("  " ^ norm_to_string "normalize" prog.normalize.n_touched ^ "\n");
  Buffer.add_string buf "  return (state, idx)\n";
  Fmt.string ppf (Buffer.contents buf)

let to_string prog = Fmt.str "%a" pp prog
