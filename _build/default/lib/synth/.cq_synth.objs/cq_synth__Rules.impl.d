lib/synth/rules.ml: Array Buffer Cq_policy Fmt List Printf String
