lib/synth/search.mli: Cq_automata Cq_policy Rules
