lib/synth/search.ml: Array Cq_automata Cq_util Hashtbl List Rules
