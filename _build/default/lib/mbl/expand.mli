(** Expansion of MBL expressions into sets of concrete queries — the formal
    semantics of Appendix A of the paper. *)

type element = { block : Cq_cache.Block.t; tag : Ast.tag option }

type query = element list
(** A sequence of memory operations: block plus optional tag
    ([?] profile, [!] flush). *)

exception Expansion_error of string

val expand : ?max_queries:int -> assoc:int -> Ast.t -> query list
(** Expand at the given associativity.  Raises [Expansion_error] when the
    result would exceed [max_queries] (default 65536) or the expression is
    ill-tagged. *)

val expand_string : ?max_queries:int -> assoc:int -> string -> query list
(** Parse ([Parser.parse]) and expand. *)

val pp_element : Format.formatter -> element -> unit
val pp_query : Format.formatter -> query -> unit
val query_to_string : query -> string

val blocks : query -> Cq_cache.Block.t list
(** Blocks in access order, tags stripped. *)

val profiled_indices : query -> int list
(** Positions of the ['?']-tagged accesses. *)
