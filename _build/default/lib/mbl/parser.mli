(** Hand-written lexer and recursive-descent parser for MemBlockLang.

    Grammar (ASCII rendering of §4.1):
    {v
    expr    ::= seq
    seq     ::= item+                       (juxtaposition = concatenation)
    item    ::= atom postfix*
    postfix ::= '?' | '!' | INT | '^' INT | '[' expr ']'
    atom    ::= IDENT | '@' | '_' | '(' expr ')' | '{' expr (',' expr)* '}'
    v}
    An extension bracket ['[ ... ]'] applies to everything parsed so far in
    the current sequence, matching the paper's ['@ X _?'] examples. *)

exception Parse_error of string

val parse : string -> Ast.t
(** Raises [Parse_error] on malformed input. *)

val parse_result : string -> (Ast.t, string) result
