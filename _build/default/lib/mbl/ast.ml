(* Abstract syntax of MemBlockLang (§4.1, Appendix A).

   Concrete syntax notes (the paper's notation, ASCII-ised):
   - concatenation (the paper's ∘) is juxtaposition: [A B C];
   - the expansion macro [@] and wildcard [_] are literal;
   - tags are postfix [?] (profile) and [!] (flush);
   - the power operator is a postfix integer: [(A B C)3];
   - extension is a postfix bracket: [(A B C D)[E F]];
   - sets are brace-enclosed, comma-separated: [{A B, C}]. *)

type tag = Profile | Flush

type t =
  | Block of string (* a named block, resolved at expansion time *)
  | Seq of t list (* juxtaposition: query-set concatenation product *)
  | Set of t list (* {q1, ..., ql} *)
  | At (* '@' — associativity-many blocks in order *)
  | Wildcard (* '_' — associativity-many single-block queries *)
  | Tagged of t * tag (* (s)? or (s)! *)
  | Extend of t * t (* s1[s2] *)
  | Power of t * int (* (s)^k *)

let rec pp ppf = function
  | Block name -> Fmt.string ppf name
  | Seq items -> Fmt.(list ~sep:(any " ") pp_atom) ppf items
  | Set items -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp) items
  | At -> Fmt.string ppf "@"
  | Wildcard -> Fmt.string ppf "_"
  | Tagged (e, Profile) -> Fmt.pf ppf "%a?" pp_atom e
  | Tagged (e, Flush) -> Fmt.pf ppf "%a!" pp_atom e
  | Extend (e1, e2) -> Fmt.pf ppf "%a[%a]" pp_atom e1 pp e2
  | Power (e, k) -> Fmt.pf ppf "%a%d" pp_atom e k

and pp_atom ppf e =
  match e with
  (* Power must be parenthesized as a base: 'D2' followed by another power
     would otherwise print as 'D22' and re-parse as D^22. *)
  | Seq _ | Extend _ | Power _ -> Fmt.pf ppf "(%a)" pp e
  | _ -> pp ppf e

let to_string e = Fmt.str "%a" pp e
