lib/mbl/expand.mli: Ast Cq_cache Format
