lib/mbl/parser.ml: Ast Format List String
