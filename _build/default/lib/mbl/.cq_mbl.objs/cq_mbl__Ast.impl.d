lib/mbl/ast.ml: Fmt
