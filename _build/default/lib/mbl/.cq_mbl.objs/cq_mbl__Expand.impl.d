lib/mbl/expand.ml: Ast Cq_cache Fmt Format List Parser
