lib/mbl/parser.mli: Ast
