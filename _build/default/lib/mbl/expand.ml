(* Expansion of MBL expressions into sets of concrete queries — the formal
   semantics of Appendix A.

   A query is a sequence of memory operations: a block plus an optional tag
   ('?' profile, '!' flush).  Expansion is compositional; the size of the
   result is guarded by [max_queries] since concatenation and power multiply
   query counts. *)

type element = { block : Cq_cache.Block.t; tag : Ast.tag option }
type query = element list

exception Expansion_error of string

let error fmt = Format.kasprintf (fun msg -> raise (Expansion_error msg)) fmt

(* Block-name resolution.  Uppercase names are spreadsheet-style indices
   (A=0, B=1, ..., Z=25, AA=26, ...), matching the order the '@' and '_'
   macros draw from.  Lowercase names denote an auxiliary pool of blocks
   guaranteed disjoint from any realistic '@' expansion (offset 100000);
   Appendix B's thrashing query '@ M a M?' uses such a block. *)
let resolve name =
  match Cq_cache.Block.of_string name with
  | b -> b
  | exception Invalid_argument _ -> error "bad block name %S" name

let untagged block = { block; tag = None }

let rec expand_expr ~assoc ~max_queries (e : Ast.t) : query list =
  let guard qs =
    if List.length qs > max_queries then
      error "expansion exceeds %d queries" max_queries
    else qs
  in
  match e with
  | Ast.Block name -> [ [ untagged (resolve name) ] ]
  | Ast.At -> [ List.map untagged (Cq_cache.Block.first assoc) ]
  | Ast.Wildcard ->
      List.map (fun b -> [ untagged b ]) (Cq_cache.Block.first assoc)
  | Ast.Seq items ->
      List.fold_left
        (fun acc item ->
          let qs = expand_expr ~assoc ~max_queries item in
          guard
            (List.concat_map (fun q1 -> List.map (fun q2 -> q1 @ q2) qs) acc))
        [ [] ] items
  | Ast.Set items ->
      guard (List.concat_map (expand_expr ~assoc ~max_queries) items)
  | Ast.Tagged (inner, tag) ->
      let qs = expand_expr ~assoc ~max_queries inner in
      List.map
        (List.map (fun el ->
             match el.tag with
             | None -> { el with tag = Some tag }
             | Some _ -> error "tag applied to an already-tagged query"))
        qs
  | Ast.Extend (base, ext) ->
      let base_qs = expand_expr ~assoc ~max_queries base in
      let ext_qs = expand_expr ~assoc ~max_queries ext in
      (* Collect the distinct blocks of the extension, in order of first
         appearance, then extend every base query with each of them. *)
      let blocks =
        List.fold_left
          (fun acc q ->
            List.fold_left
              (fun acc el ->
                if List.exists (Cq_cache.Block.equal el.block) acc then acc
                else el.block :: acc)
              acc q)
          [] ext_qs
        |> List.rev
      in
      guard
        (List.concat_map
           (fun q -> List.map (fun b -> q @ [ untagged b ]) blocks)
           base_qs)
  | Ast.Power (inner, k) ->
      if k < 0 then error "negative power"
      else
        expand_expr ~assoc ~max_queries
          (Ast.Seq (List.init k (fun _ -> inner)))

let expand ?(max_queries = 65536) ~assoc e =
  if assoc < 1 then invalid_arg "Expand.expand: associativity must be >= 1";
  expand_expr ~assoc ~max_queries e

let expand_string ?max_queries ~assoc input =
  expand ?max_queries ~assoc (Parser.parse input)

(* Pretty-printing of expanded queries, for the REPL and for tests. *)
let pp_element ppf el =
  Cq_cache.Block.pp ppf el.block;
  match el.tag with
  | None -> ()
  | Some Ast.Profile -> Fmt.string ppf "?"
  | Some Ast.Flush -> Fmt.string ppf "!"

let pp_query ppf q = Fmt.(list ~sep:(any " ") pp_element) ppf q

let query_to_string q = Fmt.str "%a" pp_query q

(* Blocks of a query in access order (tags stripped). *)
let blocks q = List.map (fun el -> el.block) q

(* Indices (within the query) of profiled accesses. *)
let profiled_indices q =
  List.mapi (fun i el -> (i, el.tag)) q
  |> List.filter_map (fun (i, tag) -> if tag = Some Ast.Profile then Some i else None)
