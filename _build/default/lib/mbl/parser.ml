(* Hand-written lexer and recursive-descent parser for MemBlockLang.

   The language is small enough that a generated parser would be overkill
   (and menhir is not available in this environment).  Grammar:

     expr    ::= seq
     seq     ::= item+                        (juxtaposition = concatenation)
     item    ::= atom postfix*
     postfix ::= '?' | '!' | INT | '^' INT | '[' expr ']'
     atom    ::= IDENT | '@' | '_' | '(' expr ')'
               | '{' expr (',' expr)* '}' | '[' expr ']'

   A leading '[ ... ]' (extension of the empty query) denotes the set of
   single-block queries over the bracketed expression's blocks. *)

type token =
  | IDENT of string
  | INT of int
  | AT
  | UNDERSCORE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | QUESTION
  | BANG
  | CARET
  | EOF

exception Parse_error of string

let error fmt = Format.kasprintf (fun msg -> raise (Parse_error msg)) fmt

let is_letter c = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let pos = ref 0 in
  let emit t = tokens := t :: !tokens in
  while !pos < n do
    let c = input.[!pos] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '@' -> emit AT; incr pos
    | '_' -> emit UNDERSCORE; incr pos
    | '(' -> emit LPAREN; incr pos
    | ')' -> emit RPAREN; incr pos
    | '{' -> emit LBRACE; incr pos
    | '}' -> emit RBRACE; incr pos
    | '[' -> emit LBRACKET; incr pos
    | ']' -> emit RBRACKET; incr pos
    | ',' -> emit COMMA; incr pos
    | '?' -> emit QUESTION; incr pos
    | '!' -> emit BANG; incr pos
    | '^' -> emit CARET; incr pos
    | c when is_letter c ->
        let start = !pos in
        while !pos < n && is_letter input.[!pos] do incr pos done;
        emit (IDENT (String.sub input start (!pos - start)))
    | c when is_digit c ->
        let start = !pos in
        while !pos < n && is_digit input.[!pos] do incr pos done;
        emit (INT (int_of_string (String.sub input start (!pos - start))))
    | c -> error "unexpected character %C" c)
  done;
  emit EOF;
  List.rev !tokens

type state = { mutable tokens : token list }

let peek st = match st.tokens with [] -> EOF | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: tl -> st.tokens <- tl

let expect st t name =
  if peek st = t then advance st else error "expected %s" name

let rec parse_expr st = parse_seq st

and parse_seq st =
  (* Left fold over juxtaposed items.  An extension bracket '[ ... ]'
     applies to everything parsed so far in the sequence (cf. the paper's
     '@ X _?' expanding to '(A B C D) o X o [A B C D]?'). *)
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | LBRACKET ->
        advance st;
        let inner = parse_expr st in
        expect st RBRACKET "']'";
        let base =
          match List.rev !acc with
          | [] -> Ast.Seq []
          | [ x ] -> x
          | xs -> Ast.Seq xs
        in
        let ext = parse_postfix st (Ast.Extend (base, inner)) in
        acc := [ ext ]
    | IDENT _ | AT | UNDERSCORE | LPAREN | LBRACE ->
        let item = parse_postfix st (parse_atom st) in
        acc := item :: !acc
    | _ -> continue := false
  done;
  match List.rev !acc with
  | [] -> error "empty expression"
  | [ x ] -> x
  | xs -> Ast.Seq xs

and parse_atom st =
  match peek st with
  | IDENT name -> advance st; Ast.Block name
  | AT -> advance st; Ast.At
  | UNDERSCORE -> advance st; Ast.Wildcard
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN "')'";
      e
  | LBRACE ->
      advance st;
      let rec elements acc =
        let e = parse_expr st in
        match peek st with
        | COMMA -> advance st; elements (e :: acc)
        | _ -> List.rev (e :: acc)
      in
      let es = elements [] in
      expect st RBRACE "'}'";
      Ast.Set es
  | t ->
      error "unexpected token %s"
        (match t with
        | EOF -> "end of input"
        | RPAREN -> "')'"
        | RBRACE -> "'}'"
        | RBRACKET -> "']'"
        | COMMA -> "','"
        | QUESTION -> "'?'"
        | BANG -> "'!'"
        | CARET -> "'^'"
        | INT k -> string_of_int k
        | _ -> "?")

and parse_postfix st e =
  match peek st with
  | QUESTION -> advance st; parse_postfix st (Ast.Tagged (e, Ast.Profile))
  | BANG -> advance st; parse_postfix st (Ast.Tagged (e, Ast.Flush))
  | INT k -> advance st; parse_postfix st (Ast.Power (e, k))
  | CARET -> (
      advance st;
      match peek st with
      | INT k -> advance st; parse_postfix st (Ast.Power (e, k))
      | _ -> error "expected an integer after '^'")
  | _ -> e

let parse input =
  let st = { tokens = tokenize input } in
  let e = parse_expr st in
  (match peek st with
  | EOF -> ()
  | _ -> error "trailing input after expression");
  e

let parse_result input =
  match parse input with
  | e -> Ok e
  | exception Parse_error msg -> Error msg
