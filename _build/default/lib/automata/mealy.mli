(** Deterministic Mealy machines over a dense integer input alphabet.

    Replacement policies (Definition 2.1 in the paper) are Mealy machines
    with inputs [{Ln(0), ..., Ln(n-1), Evct}]; the automata produced by the
    learner and consumed by the synthesiser all use this representation.
    States and inputs are integers ([0 ..]); outputs are polymorphic. *)

type 'o t

val make :
  init:int -> n_inputs:int -> next:int array array -> out:'o array array -> 'o t
(** [make ~init ~n_inputs ~next ~out] builds a machine from explicit tables.
    Raises [Invalid_argument] on malformed tables. *)

val n_states : 'o t -> int
val n_inputs : 'o t -> int
val init : 'o t -> int

val step : 'o t -> int -> int -> int * 'o
(** [step t s i] is the successor state and output for input [i] in state
    [s]. Raises [Invalid_argument] when [i] is out of range. *)

val next_state : 'o t -> int -> int -> int
val output : 'o t -> int -> int -> 'o

val run : 'o t -> int list -> 'o list
(** Output word for an input word from the initial state. *)

val run_from : 'o t -> int -> int list -> 'o list
val state_after : 'o t -> int list -> int

val of_fun :
  init:'s -> n_inputs:int -> step:('s -> int -> 's * 'o) -> max_states:int -> 'o t
(** Explicit reachable-state enumeration of an implicit machine. States of
    the implicit machine must be immutable and structurally comparable.
    The result numbers states in BFS order from the initial state. Fails if
    more than [max_states] states are reachable. *)

val minimize : 'o t -> 'o t
(** Minimal trace-equivalent machine, restricted to reachable states and
    numbered in BFS order (hence canonical for a given behaviour). *)

val find_counterexample :
  ?from_a:int option -> ?from_b:int option -> 'o t -> 'o t -> int list option
(** Shortest input word on which the two machines produce different outputs,
    or [None] when trace-equivalent. *)

val equivalent : 'o t -> 'o t -> bool
val canonicalize : 'o t -> 'o t
val isomorphic : 'o t -> 'o t -> bool

val access_sequences : 'o t -> int list option array
(** For each state, a shortest input word reaching it from the initial state
    ([None] for unreachable states). *)

val pp :
  ?pp_input:(Format.formatter -> int -> unit) ->
  pp_output:(Format.formatter -> 'o -> unit) ->
  Format.formatter ->
  'o t ->
  unit

val to_dot :
  ?name:string ->
  input_label:(int -> string) ->
  output_label:('o -> string) ->
  'o t ->
  string
