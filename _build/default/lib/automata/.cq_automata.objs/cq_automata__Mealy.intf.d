lib/automata/mealy.mli: Format
