lib/automata/mealy.ml: Array Buffer Cq_util Fmt Hashtbl List Option Printf Queue
