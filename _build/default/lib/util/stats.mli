(** Streaming statistics and simple thresholding used by timing calibration
    and the benchmark harness. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Sample variance (Bessel-corrected); [0.] for fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
val of_list : float list -> t

val median : float list -> float
val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0, 100], linear interpolation. *)

val otsu_threshold : int list -> int option
(** Bimodal split of an integer sample (e.g. load latencies in cycles):
    returns [Some thr] such that values [<= thr] belong to the lower class
    (cache hits) and values [> thr] to the upper class (misses); [None] when
    the sample is degenerate. *)
