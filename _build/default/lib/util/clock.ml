(* Wall-clock timing helpers and the paper's "H h M m S s" duration format
   (cf. Table 2 / Table 5). *)

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)

let pp_duration ppf seconds =
  if seconds < 0.0 then Fmt.string ppf "-"
  else begin
    let h = int_of_float (seconds /. 3600.0) in
    let rem = seconds -. (float_of_int h *. 3600.0) in
    let m = int_of_float (rem /. 60.0) in
    let s = rem -. (float_of_int m *. 60.0) in
    Fmt.pf ppf "%d h %d m %.2f s" h m s
  end

let to_string seconds = Fmt.str "%a" pp_duration seconds
