(* Streaming statistics (Welford's online algorithm) plus small helpers used
   by the timing calibration in CacheQuery and by the benchmark harness. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then nan else t.min
let max_value t = if t.n = 0 then nan else t.max

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let median xs =
  match xs with
  | [] -> nan
  | _ ->
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let n = Array.length arr in
      if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let percentile xs p =
  match xs with
  | [] -> nan
  | _ ->
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let n = Array.length arr in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = int_of_float (ceil rank) in
      if lo = hi then arr.(lo)
      else
        let frac = rank -. float_of_int lo in
        arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))

(* Otsu-style threshold between two latency populations: picks the cut that
   maximises between-class variance over an integer histogram.  Used by the
   CacheQuery backend to separate hit cycles from miss cycles without knowing
   either distribution in advance. *)
let otsu_threshold samples =
  match samples with
  | [] | [ _ ] -> None
  | _ ->
      let lo = List.fold_left min max_int samples in
      let hi = List.fold_left max min_int samples in
      if lo = hi then None
      else begin
        let bins = hi - lo + 1 in
        let hist = Array.make bins 0 in
        List.iter (fun s -> hist.(s - lo) <- hist.(s - lo) + 1) samples;
        let total = List.length samples in
        let sum_all =
          Array.to_list hist
          |> List.mapi (fun i c -> float_of_int (i * c))
          |> List.fold_left ( +. ) 0.0
        in
        let best = ref None in
        let best_score = ref neg_infinity in
        let w0 = ref 0 and sum0 = ref 0.0 in
        for i = 0 to bins - 2 do
          w0 := !w0 + hist.(i);
          sum0 := !sum0 +. float_of_int (i * hist.(i));
          let w1 = total - !w0 in
          if !w0 > 0 && w1 > 0 then begin
            let mu0 = !sum0 /. float_of_int !w0 in
            let mu1 = (sum_all -. !sum0) /. float_of_int w1 in
            let score = float_of_int !w0 *. float_of_int w1 *. ((mu0 -. mu1) ** 2.0) in
            if score > !best_score then begin
              best_score := score;
              best := Some (lo + i)
            end
          end
        done;
        (* Threshold is the upper edge of the chosen bin: values <= thr are
           class 0 (hits), values > thr are class 1 (misses). *)
        !best
      end
