lib/util/deep.ml: Hashtbl
