lib/util/clock.ml: Fmt Unix
