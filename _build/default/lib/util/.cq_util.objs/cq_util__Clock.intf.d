lib/util/clock.mli: Format
