lib/util/prng.mli:
