lib/util/stats.mli:
