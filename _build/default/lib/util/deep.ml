(* Deep-hash key packing for polymorphic hash tables.

   [Hashtbl.hash] only samples a bounded prefix (about 10 meaningful words)
   of a structured key.  Most hot keys in this code base are *lists with
   long shared prefixes* — block traces, Evct^k access words, observation
   rows — so the default hash collapses them into a single bucket and hash
   tables degrade to linked-list scans.

   [pack k] pairs the key with a deep hash (sampling up to 512 nodes);
   polymorphic hashing of the pair then distributes on the precomputed
   integer while equality remains structural.  Use [pack] on every key of
   tables whose keys are traces or rows. *)

type 'a t = int * 'a

let hash_depth = 512

let pack (k : 'a) : 'a t = (Hashtbl.hash_param hash_depth hash_depth k, k)

let unpack ((_, k) : 'a t) : 'a = k
