(** Wall-clock timing and duration formatting in the paper's
    ["H h M m S s"] style. *)

val now : unit -> float
(** Seconds since the epoch. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds. *)

val pp_duration : Format.formatter -> float -> unit
val to_string : float -> string
