lib/hwsim/cpu_model.ml: Cq_policy Fmt List String
