lib/hwsim/cache_level.ml: Array Cpu_model Cq_policy Cq_util Hashtbl Option
