lib/hwsim/machine.ml: Array Cache_level Cpu_model Cq_util Float List Printf
