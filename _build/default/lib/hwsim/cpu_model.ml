(* Models of the three processors analysed in the paper (Table 3), together
   with the microarchitectural details the paper reverse-engineered:
   per-level replacement policies, adaptive-L3 leader-set selection
   (Appendix B), reset behaviour, CAT support, and load latencies.

   These models are the "silicon" our CacheQuery implementation talks to;
   they are the ground truth the learning pipeline must rediscover. *)

type level = L1 | L2 | L3

let level_to_string = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3"
let pp_level ppf l = Fmt.string ppf (level_to_string l)
let all_levels = [ L1; L2; L3 ]

(* How the sets of a level choose their replacement policy. *)
type set_policy =
  | Fixed of (int -> Cq_policy.Policy.t)
      (* every set runs this policy (given the effective associativity) *)
  | Adaptive of {
      leader_a : slice:int -> set:int -> bool;
          (* "thrash-vulnerable" fixed-policy leader sets *)
      leader_b : slice:int -> set:int -> bool;
          (* "thrash-resistant" fixed-policy leader sets *)
      policy_a : int -> Cq_policy.Policy.t;
      policy_b : int -> Cq_policy.Policy.t;
      noisy_b : bool;
          (* Haswell's resistant leaders look nondeterministic (Appendix B):
             when set, leader-B fills randomly re-touch the inserted way *)
    }

type level_spec = {
  assoc : int;
  slices : int;
  sets_per_slice : int;
  hit_latency : int; (* cycles for a hit served by this level *)
  policy : set_policy;
  fill_touches_policy : bool;
      (* whether installing a block into an *invalid* way updates the
         replacement state as if the way had been accessed.  When false,
         Flush+Refill does not reset the policy state and a custom reset
         sequence is needed — this is what forces the '@ @' reset on
         Haswell L1 and the 'D C B A @' reset on Skylake/Kaby Lake L2
         (Table 4). *)
}

type t = {
  name : string;
  codename : string;
  line_size : int;
  l1 : level_spec;
  l2 : level_spec;
  l3 : level_spec;
  memory_latency : int;
  supports_cat : bool;
  slice_masks : int array; (* XOR-fold masks; one per slice-index bit *)
}

let spec t = function L1 -> t.l1 | L2 -> t.l2 | L3 -> t.l3

(* Slice-hash masks in the spirit of Maurice et al. (RAID'15): slice bit j
   is the parity of (physical address AND mask j). *)
let mask_2slices = [| 0x1b5f575440 |]
let mask_4slices = [| 0x1b5f575440; 0x2eb5faa880 |]
let mask_8slices = [| 0x1b5f575440; 0x2eb5faa880; 0x3cccc93100 |]

(* Appendix B, Skylake / Kaby Lake leader-set selection:
   vulnerable: ((set & 0x3e0) >> 5) xor (set & 0x1f) = 0x00 and set & 0x2 = 0
   resistant:  ((set & 0x3e0) >> 5) xor (set & 0x1f) = 0x1f and set & 0x2 = 2
   (leaders appear in every slice). *)
let skl_fold set = ((set land 0x3e0) lsr 5) lxor (set land 0x1f)
let skl_leader_a ~slice:_ ~set = skl_fold set = 0x00 && set land 0x2 = 0
let skl_leader_b ~slice:_ ~set = skl_fold set = 0x1f && set land 0x2 = 0x2

(* Appendix B, Haswell: leaders live only in slice 0;
   vulnerable sets 512-575 ((set & 0x7c0) >> 6 = 0x8),
   resistant sets 768-831 ((set & 0x7c0) >> 6 = 0xc). *)
let hsw_leader_a ~slice ~set = slice = 0 && (set land 0x7c0) lsr 6 = 0x8
let hsw_leader_b ~slice ~set = slice = 0 && (set land 0x7c0) lsr 6 = 0xc

let plru assoc = Cq_policy.Plru.make assoc
let new1 assoc = Cq_policy.Newpol.make_new1 assoc
let new2 assoc = Cq_policy.Newpol.make_new2 assoc

(* The thrash-resistant leader policy.  The paper could not learn Intel's
   (it hides behind nondeterminism on Haswell and adaptivity elsewhere);
   we model it as LIP — the canonical thrash-resistant insertion policy
   from the set-dueling literature [Qureshi et al.] — which retains the
   working set under any sweep, giving leader-B sets a stable signature. *)
let resistant assoc = Cq_policy.Lip.make assoc

let haswell =
  {
    name = "i7-4790";
    codename = "Haswell";
    line_size = 64;
    l1 =
      {
        assoc = 8;
        slices = 1;
        sets_per_slice = 64;
        hit_latency = 4;
        policy = Fixed plru;
        (* Haswell L1 fills do not refresh the PLRU bits, so Flush+Refill
           does not reset the control state; '@ @' does (Table 4). *)
        fill_touches_policy = false;
      };
    l2 =
      {
        assoc = 8;
        slices = 1;
        sets_per_slice = 512;
        hit_latency = 12;
        policy = Fixed plru;
        fill_touches_policy = true;
      };
    l3 =
      {
        assoc = 16;
        slices = 4;
        sets_per_slice = 2048;
        hit_latency = 42;
        policy =
          Adaptive
            {
              leader_a = hsw_leader_a;
              leader_b = hsw_leader_b;
              policy_a = new2;
              policy_b = resistant;
              noisy_b = true;
            };
        fill_touches_policy = true;
      };
    memory_latency = 230;
    supports_cat = false;
    slice_masks = mask_4slices;
  }

let skylake =
  {
    name = "i5-6500";
    codename = "Skylake";
    line_size = 64;
    l1 =
      {
        assoc = 8;
        slices = 1;
        sets_per_slice = 64;
        hit_latency = 4;
        policy = Fixed plru;
        fill_touches_policy = true;
      };
    l2 =
      {
        assoc = 4;
        slices = 1;
        sets_per_slice = 1024;
        hit_latency = 12;
        policy = Fixed new1;
        (* New1's age bits are not refreshed by fills of invalid ways:
           Flush+Refill leaves them stale, hence the 'D C B A @' reset. *)
        fill_touches_policy = false;
      };
    l3 =
      {
        assoc = 12;
        slices = 8;
        sets_per_slice = 1024;
        hit_latency = 40;
        policy =
          Adaptive
            {
              leader_a = skl_leader_a;
              leader_b = skl_leader_b;
              policy_a = new2;
              policy_b = resistant;
              noisy_b = false;
            };
        fill_touches_policy = true;
      };
    memory_latency = 220;
    supports_cat = true;
    slice_masks = mask_8slices;
  }

let kaby_lake =
  {
    skylake with
    name = "i7-8550U";
    codename = "Kaby Lake";
    l3 = { skylake.l3 with assoc = 16 };
  }

(* A miniature CPU for tests: tiny caches with the same structural features
   (three levels, slices, an adaptive L3 with leader sets, CAT) so that the
   whole pipeline — calibration, filtering, reset discovery, learning —
   runs in milliseconds. *)
let toy =
  {
    name = "toy-1000";
    codename = "Toy";
    line_size = 64;
    l1 =
      {
        assoc = 2;
        slices = 1;
        sets_per_slice = 8;
        hit_latency = 4;
        policy = Fixed plru;
        fill_touches_policy = true;
      };
    l2 =
      {
        assoc = 2;
        slices = 1;
        sets_per_slice = 16;
        hit_latency = 12;
        policy = Fixed new1;
        fill_touches_policy = false;
      };
    l3 =
      {
        assoc = 4;
        slices = 2;
        sets_per_slice = 32;
        hit_latency = 40;
        policy =
          Adaptive
            {
              (* PLRU as the thrash-vulnerable leader policy keeps the
                 toy's L3 learnable in milliseconds (8 control states);
                 the real CPUs' New2 leaders are exercised by the Table 4
                 benchmark. *)
              leader_a = (fun ~slice:_ ~set -> set mod 8 = 0);
              leader_b = (fun ~slice:_ ~set -> set mod 8 = 4);
              policy_a = plru;
              policy_b = resistant;
              noisy_b = false;
            };
        fill_touches_policy = true;
      };
    memory_latency = 200;
    supports_cat = true;
    slice_masks = mask_2slices;
  }

let all = [ haswell; skylake; kaby_lake ]

let by_name name =
  List.find_opt
    (fun t ->
      String.lowercase_ascii t.name = String.lowercase_ascii name
      || String.lowercase_ascii t.codename = String.lowercase_ascii name)
    all

(* Table 3, for the benchmark harness. *)
let pp_specs ppf t =
  Fmt.pf ppf "@[<v>%s (%s)@," t.name t.codename;
  List.iter
    (fun level ->
      let s = spec t level in
      Fmt.pf ppf "  %a: assoc %d, %d slice(s), %d sets per slice@," pp_level
        level s.assoc s.slices s.sets_per_slice)
    all_levels;
  Fmt.pf ppf "@]"
