(* The CacheQuery backend — the role played by the paper's Linux kernel
   module.  Given a target cache set (level, slice, set index) on a
   simulated machine, it:

   - selects congruent physical addresses and maps abstract blocks to them
     (the paper's per-level memory pools);
   - keeps higher cache levels out of the way by accessing non-interfering
     eviction sets after every load (cache filtering, §4.3);
   - executes queries as sequences of timed loads / clflushes and
     classifies each profiled load as a hit or miss at the target level via
     a calibrated latency threshold;
   - disables prefetchers and runs in a low-noise configuration, with
     repetition and majority voting left to the frontend. *)

type target = {
  level : Cq_hwsim.Cpu_model.level;
  slice : int;
  set : int;
}

type t = {
  machine : Cq_hwsim.Machine.t;
  target : target;
  (* block -> physical address, lazily extended *)
  block_addr : (Cq_cache.Block.t, int) Hashtbl.t;
  mutable pool : int list; (* unassigned congruent addresses *)
  mutable pool_cursor : int; (* line index where enumeration resumes *)
  mutable threshold : int; (* latency <= threshold ==> hit at target level *)
  (* Addresses used to evict the target blocks from levels above the
     target; chosen congruent at the higher level but non-interfering at
     the target level and below. *)
  filter_sets : (Cq_hwsim.Cpu_model.level * int list) list;
  (* Sweep that evicts a block from the target level itself (same target
     set, non-interfering below); used by calibration to observe
     "miss at target, hit at next level" latencies.  Empty for L3, where
     a plain flush yields the memory-latency miss population. *)
  calib_sweep : int list;
  mutable calib_dirty : bool; (* calibration touched the target set *)
  mutable timed_loads : int;
  mutable filter_loads : int;
}

let machine t = t.machine
let target t = t.target
let threshold t = t.threshold
let timed_loads t = t.timed_loads
let filter_loads t = t.filter_loads

let line_size t = (Cq_hwsim.Machine.model t.machine).Cq_hwsim.Cpu_model.line_size

(* Levels strictly above (closer to the core than) the target level. *)
let levels_above = function
  | Cq_hwsim.Cpu_model.L1 -> []
  | Cq_hwsim.Cpu_model.L2 -> [ Cq_hwsim.Cpu_model.L1 ]
  | Cq_hwsim.Cpu_model.L3 -> [ Cq_hwsim.Cpu_model.L1; Cq_hwsim.Cpu_model.L2 ]

(* Build, for each level above the target, an eviction set: addresses that
   are congruent with the target's image at that level but map to a
   *different* set at the target level (and, for L1 filtering under an L3
   target, also a different L2 set), so that accessing them cannot disturb
   the state under measurement.  Their own L3 sets are also kept distinct
   from the target's to avoid inclusive back-invalidation. *)
let build_filter_sets machine (target : target) =
  let sample_addr =
    List.hd
      (Cq_hwsim.Machine.congruent_addresses machine target.level
         ~slice:target.slice ~set:target.set 1)
  in
  List.map
    (fun above ->
      let a_slice, a_set = Cq_hwsim.Machine.map_addr machine above sample_addr in
      let spec =
        Cq_hwsim.Cpu_model.spec (Cq_hwsim.Machine.model machine) above
      in
      let non_interfering addr =
        let t_slice, t_set =
          Cq_hwsim.Machine.map_addr machine target.level addr
        in
        not (t_slice = target.slice && t_set = target.set)
        &&
        (* never fight the inclusive L3 set of the target's blocks *)
        match target.level with
        | Cq_hwsim.Cpu_model.L3 -> true
        | _ ->
            let l3_slice, l3_set =
              Cq_hwsim.Machine.map_addr machine Cq_hwsim.Cpu_model.L3 addr
            in
            let t3_slice, t3_set =
              Cq_hwsim.Machine.map_addr machine Cq_hwsim.Cpu_model.L3 sample_addr
            in
            not (l3_slice = t3_slice && l3_set = t3_set)
      in
      (* Twice the associativity thrashes any of the deterministic policies
         we model out of the level. *)
      let addrs =
        Cq_hwsim.Machine.congruent_addresses machine above ~slice:a_slice
          ~set:a_set ~filter:non_interfering
          (2 * spec.Cq_hwsim.Cpu_model.assoc)
      in
      (above, addrs))
    (levels_above target.level)

(* Addresses in the *target* set itself whose L3 (or L2) images differ from
   the sample's, so sweeping them evicts a block from the target level
   without perturbing deeper levels' copies of it. *)
let build_calib_sweep machine (target : target) =
  let model = Cq_hwsim.Machine.model machine in
  let spec = Cq_hwsim.Cpu_model.spec model target.level in
  match target.level with
  | Cq_hwsim.Cpu_model.L3 -> []
  | (Cq_hwsim.Cpu_model.L1 | Cq_hwsim.Cpu_model.L2) as level ->
      let sample =
        List.hd
          (Cq_hwsim.Machine.congruent_addresses machine level
             ~slice:target.slice ~set:target.set 1)
      in
      let next =
        match level with
        | Cq_hwsim.Cpu_model.L1 -> Cq_hwsim.Cpu_model.L2
        | _ -> Cq_hwsim.Cpu_model.L3
      in
      let next_slice, next_set = Cq_hwsim.Machine.map_addr machine next sample in
      let l3_slice, l3_set =
        Cq_hwsim.Machine.map_addr machine Cq_hwsim.Cpu_model.L3 sample
      in
      let filter addr =
        let ns, nt = Cq_hwsim.Machine.map_addr machine next addr in
        let ts, tt =
          Cq_hwsim.Machine.map_addr machine Cq_hwsim.Cpu_model.L3 addr
        in
        (not (ns = next_slice && nt = next_set))
        && not (ts = l3_slice && tt = l3_set)
      in
      Cq_hwsim.Machine.congruent_addresses machine level ~slice:target.slice
        ~set:target.set ~filter
        (2 * spec.Cq_hwsim.Cpu_model.assoc)

let default_threshold machine level =
  let model = Cq_hwsim.Machine.model machine in
  match level with
  | Cq_hwsim.Cpu_model.L1 ->
      (model.Cq_hwsim.Cpu_model.l1.hit_latency
      + model.Cq_hwsim.Cpu_model.l2.hit_latency)
      / 2
  | Cq_hwsim.Cpu_model.L2 ->
      (model.Cq_hwsim.Cpu_model.l2.hit_latency
      + model.Cq_hwsim.Cpu_model.l3.hit_latency)
      / 2
  | Cq_hwsim.Cpu_model.L3 ->
      (model.Cq_hwsim.Cpu_model.l3.hit_latency
      + model.Cq_hwsim.Cpu_model.memory_latency)
      / 2

let create ?(disable_prefetchers = true) machine (target : target) =
  let model = Cq_hwsim.Machine.model machine in
  let spec = Cq_hwsim.Cpu_model.spec model target.level in
  if target.slice < 0 || target.slice >= spec.Cq_hwsim.Cpu_model.slices then
    invalid_arg "Backend.create: slice out of range";
  if target.set < 0 || target.set >= spec.Cq_hwsim.Cpu_model.sets_per_slice then
    invalid_arg "Backend.create: set out of range";
  if disable_prefetchers then Cq_hwsim.Machine.set_prefetchers machine false;
  {
    machine;
    target;
    block_addr = Hashtbl.create 64;
    pool = [];
    pool_cursor = 0;
    (* model-derived default; refined by [calibrate] *)
    threshold = default_threshold machine target.level;
    filter_sets = build_filter_sets machine target;
    calib_sweep = build_calib_sweep machine target;
    calib_dirty = false;
    timed_loads = 0;
    filter_loads = 0;
  }

(* Address of a block, allocating a fresh congruent address on first use. *)
let rec addr_of_block t block =
  match Hashtbl.find_opt t.block_addr block with
  | Some a -> a
  | None -> (
      match t.pool with
      | a :: rest ->
          t.pool <- rest;
          Hashtbl.add t.block_addr block a;
          a
      | [] ->
          (* The calibration sweep draws from the same congruent stream;
             block addresses must never alias it, or sweeping would touch
             the blocks under measurement. *)
          let not_in_sweep a = not (List.mem a t.calib_sweep) in
          let fresh =
            Cq_hwsim.Machine.congruent_addresses t.machine t.target.level
              ~slice:t.target.slice ~set:t.target.set ~start:t.pool_cursor
              ~filter:not_in_sweep 32
          in
          (match List.rev fresh with
          | last :: _ ->
              (* Resume enumeration just past the last stride step used. *)
              let model = Cq_hwsim.Machine.model t.machine in
              let spec = Cq_hwsim.Cpu_model.spec model t.target.level in
              let stride = spec.Cq_hwsim.Cpu_model.sets_per_slice * line_size t in
              t.pool_cursor <- ((last - (t.target.set * line_size t)) / stride) + 1
          | [] -> ());
          t.pool <- fresh;
          addr_of_block t block)

(* Cache filtering: push the just-accessed data out of the levels above the
   target by sweeping the pre-computed non-interfering eviction sets. *)
let filter_higher_levels t =
  List.iter
    (fun (_, addrs) ->
      List.iter
        (fun a ->
          t.filter_loads <- t.filter_loads + 1;
          ignore (Cq_hwsim.Machine.load t.machine a))
        addrs)
    t.filter_sets

(* One timed, filtered load of a block; returns the measured cycles. *)
let timed_load t block =
  let addr = addr_of_block t block in
  (* For L2/L3 targets the block must not be served by a higher level. *)
  let cycles = Cq_hwsim.Machine.load t.machine addr in
  t.timed_loads <- t.timed_loads + 1;
  filter_higher_levels t;
  cycles

let classify t cycles = if cycles <= t.threshold then Cq_cache.Cache_set.Hit else Cq_cache.Cache_set.Miss

let flush_block t block =
  let addr = addr_of_block t block in
  Cq_hwsim.Machine.clflush t.machine addr

(* Flush every address this backend has ever directed at the target set —
   assigned block addresses, the unassigned remainder of the pool, and the
   calibration sweep.  This is the building block of the Flush+Refill
   reset: afterwards the target set holds no valid line. *)
let flush_all_known t =
  Hashtbl.iter (fun _ addr -> Cq_hwsim.Machine.clflush t.machine addr) t.block_addr;
  (* The unassigned pool has never been accessed, so it cannot be cached.
     The calibration sweep only needs flushing once after calibration. *)
  if t.calib_dirty then begin
    List.iter (Cq_hwsim.Machine.clflush t.machine) t.calib_sweep;
    t.calib_dirty <- false
  end

(* Execute one concrete query (an expanded MBL query): perform each
   operation in order and report hit/miss for the profiled ones. *)
let run_query t (q : Cq_mbl.Expand.query) =
  List.filter_map
    (fun (el : Cq_mbl.Expand.element) ->
      match el.tag with
      | Some Cq_mbl.Ast.Flush ->
          flush_block t el.block;
          None
      | Some Cq_mbl.Ast.Profile ->
          let cycles = timed_load t el.block in
          Some (classify t cycles)
      | None ->
          ignore (timed_load t el.block);
          None)
    q

(* As [run_query], but also returns raw cycle counts of profiled loads
   (used by the §7.2 cost experiment and by calibration diagnostics). *)
let run_query_timed t (q : Cq_mbl.Expand.query) =
  List.filter_map
    (fun (el : Cq_mbl.Expand.element) ->
      match el.tag with
      | Some Cq_mbl.Ast.Flush ->
          flush_block t el.block;
          None
      | Some Cq_mbl.Ast.Profile ->
          let cycles = timed_load t el.block in
          Some (classify t cycles, cycles)
      | None ->
          ignore (timed_load t el.block);
          None)
    q

(* Calibration: build latency samples for "hit at target level" and "served
   by the next level" and place the threshold between the two populations
   (Otsu).  Uses scratch blocks far away from the learning alphabet. *)
let calibrate ?(samples = 64) t =
  t.calib_dirty <- true;
  let scratch i = Cq_cache.Block.aux (90_000 + i) in
  let hit_samples = ref [] and miss_samples = ref [] in
  for i = 0 to samples - 1 do
    let b = scratch i in
    (* First touch: fills the whole hierarchy. *)
    ignore (timed_load t b);
    (* Second touch after filtering: served by the target level. *)
    let hit_cycles = timed_load t b in
    hit_samples := hit_cycles :: !hit_samples;
    (* Evict from the target level only (keeping the next level's copy),
       or flush entirely when the target is the last level: the re-touch
       then samples the closest "miss" population the learner will see. *)
    (match t.calib_sweep with
    | [] -> flush_block t b
    | sweep ->
        List.iter (fun a -> ignore (Cq_hwsim.Machine.load t.machine a)) sweep;
        List.iter
          (fun a -> ignore (Cq_hwsim.Machine.load t.machine a))
          (List.rev sweep));
    let miss_cycles = timed_load t b in
    miss_samples := miss_cycles :: !miss_samples
  done;
  (* Medians are robust against interrupt/TLB-style outlier spikes, which
     would otherwise dominate a variance-based split like Otsu's. *)
  let med xs = Cq_util.Stats.median (List.map float_of_int xs) in
  let hit_med = med !hit_samples and miss_med = med !miss_samples in
  if miss_med > hit_med +. 1.0 then
    t.threshold <- int_of_float (Float.round ((hit_med +. miss_med) /. 2.0));
  (* else: populations indistinguishable; keep the model-derived default *)
  (t.threshold, !hit_samples, !miss_samples)
