(** The CacheQuery frontend (§4.2 of the paper): MBL expansion, reset
    sequences, repetition with majority voting, the LevelDB-style query
    memo, and the cache-oracle view that Polca consumes. *)

type reset =
  | No_reset
  | Flush_refill  (** clflush everything, then access ['@'] *)
  | Sequence of Cq_mbl.Ast.t  (** e.g. [@ @] or [D C B A @] *)
  | Flush_then of Cq_mbl.Ast.t  (** clflush everything, then the sequence *)

val reset_to_string : reset -> string

type t

val create : ?reset:reset -> ?repetitions:int -> Backend.t -> t
val backend : t -> Backend.t

val assoc : t -> int
(** Effective associativity of the target level (CAT-aware). *)

val stats : t -> Cq_cache.Oracle.stats
val set_reset : t -> reset -> unit
val reset_sequence : t -> reset
val set_repetitions : t -> int -> unit
val set_memo : t -> bool -> unit
val clear_memo : t -> unit

val expand : t -> string -> Cq_mbl.Expand.query list
(** Parse and expand an MBL expression at the target's associativity. *)

val run_mbl :
  t -> string -> (Cq_mbl.Expand.query * Cq_cache.Cache_set.result list) list
(** Run an MBL expression: each expanded query executes from reset (with
    majority voting over [repetitions]); profiled accesses' outcomes are
    returned. *)

val oracle : t -> Cq_cache.Oracle.t
(** The cache oracle Polca talks to: every access profiled, queries
    memoized. *)
