lib/cachequery/backend.ml: Cq_cache Cq_hwsim Cq_mbl Cq_util Float Hashtbl List
