lib/cachequery/backend.mli: Cq_cache Cq_hwsim Cq_mbl
