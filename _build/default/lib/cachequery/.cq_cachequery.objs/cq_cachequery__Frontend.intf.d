lib/cachequery/frontend.mli: Backend Cq_cache Cq_mbl
