lib/cachequery/frontend.ml: Array Backend Cq_cache Cq_hwsim Cq_mbl Cq_util Hashtbl List
