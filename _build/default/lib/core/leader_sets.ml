(* Appendix B: detecting adaptive policies and leader sets.

   Modern L3 caches dedicate a few "leader" sets to fixed policies and let
   the remaining "follower" sets switch between those policies based on a
   set-dueling counter (PSEL).  We reproduce the paper's methodology:

   1. Probe every scanned set with a thrashing query (working set larger
      than the associativity) and record how many of the original blocks
      survive — the set's *thrash signature*.
   2. Drive the duel in both directions: thrash one signature-group of sets
      (their misses saturate PSEL one way), re-probe; then thrash the other
      group, re-probe.
   3. Sets whose signature never changes are fixed (leaders): vulnerable
      leaders always lose their working set, resistant leaders keep part of
      it.  Sets that flip are followers.

   The detected vulnerable-leader indices can then be compared against the
   paper's index formulas (they are baked into the CPU models, so on the
   simulated CPUs the match is exact). *)

type classification =
  | Fixed_vulnerable (* leader: always thrashes (paper: policy New2) *)
  | Fixed_resistant (* leader: survives thrashing *)
  | Follower (* signature follows PSEL *)

let classification_to_string = function
  | Fixed_vulnerable -> "fixed (thrash-vulnerable)"
  | Fixed_resistant -> "fixed (thrash-resistant)"
  | Follower -> "follower (adaptive)"

type scan_result = {
  slice : int;
  set : int;
  signatures : int list; (* surviving blocks per probe round *)
  classification : classification;
}

(* Thrash probe: fill the set with '@', sweep 2x associativity fresh
   blocks through it, then re-probe the '@' blocks.  Returns how many of
   them survived (hit). *)
let thrash_probe frontend =
  let assoc = Cq_cachequery.Frontend.assoc frontend in
  let at_blocks = Cq_cache.Block.first assoc in
  let sweep = List.init (2 * assoc) (fun i -> Cq_cache.Block.of_index (assoc + i)) in
  let oracle = Cq_cachequery.Frontend.oracle frontend in
  Cq_cachequery.Frontend.set_memo frontend false;
  let results = oracle.Cq_cache.Oracle.query (at_blocks @ sweep @ at_blocks) in
  Cq_cachequery.Frontend.set_memo frontend true;
  let tail = List.filteri (fun i _ -> i >= assoc + (2 * assoc)) results in
  List.fold_left
    (fun acc r -> if Cq_cache.Cache_set.result_is_hit r then acc + 1 else acc)
    0 tail

(* Repeated thrashing of a set, used to push PSEL. *)
let pound frontend rounds =
  for _ = 1 to rounds do
    ignore (thrash_probe frontend)
  done

let scan ?(slice = 0) ?(pound_rounds = 40) machine sets =
  let frontends =
    List.map
      (fun set ->
        let backend =
          Cq_cachequery.Backend.create machine
            { Cq_cachequery.Backend.level = Cq_hwsim.Cpu_model.L3; slice; set }
        in
        ignore (Cq_cachequery.Backend.calibrate backend);
        (set, Cq_cachequery.Frontend.create backend))
      sets
  in
  (* Round 0: baseline signature. *)
  let sig0 = List.map (fun (set, fe) -> (set, thrash_probe fe)) frontends in
  (* Partition by baseline signature: the low group thrashes (loses most
     blocks), the high group survives. *)
  let vulnerable_like (_, s) = s = 0 in
  let group_v = List.filter vulnerable_like sig0 |> List.map fst in
  let group_r = List.filter (fun x -> not (vulnerable_like x)) sig0 |> List.map fst in
  let fe_of set = List.assoc set frontends in
  (* Phase 1: pound the vulnerable-like group (misses in vulnerable leaders
     push PSEL towards the resistant policy); re-probe everything. *)
  List.iter (fun set -> pound (fe_of set) pound_rounds) group_v;
  let sig1 = List.map (fun (set, fe) -> (set, thrash_probe fe)) frontends in
  (* Phase 2: pound the resistant-like group; re-probe. *)
  List.iter (fun set -> pound (fe_of set) pound_rounds) group_r;
  let sig2 = List.map (fun (set, fe) -> (set, thrash_probe fe)) frontends in
  List.map
    (fun (set, _) ->
      let s0 = List.assoc set sig0
      and s1 = List.assoc set sig1
      and s2 = List.assoc set sig2 in
      let classification =
        if s0 = s1 && s1 = s2 then
          if s0 = 0 then Fixed_vulnerable else Fixed_resistant
        else Follower
      in
      { slice; set; signatures = [ s0; s1; s2 ]; classification })
    (List.map (fun (s, f) -> (s, f)) frontends)

(* Compare detected vulnerable leaders with the model's ground-truth
   formula; returns (detected, expected). *)
let check_against_model model ?(slice = 0) results =
  let detected =
    List.filter_map
      (fun r ->
        if r.classification = Fixed_vulnerable then Some r.set else None)
      results
  in
  let expected =
    match model.Cq_hwsim.Cpu_model.l3.Cq_hwsim.Cpu_model.policy with
    | Cq_hwsim.Cpu_model.Fixed _ -> []
    | Cq_hwsim.Cpu_model.Adaptive { leader_a; _ } ->
        List.filter
          (fun r -> leader_a ~slice ~set:r)
          (List.map (fun r -> r.set) results)
  in
  (detected, expected)
