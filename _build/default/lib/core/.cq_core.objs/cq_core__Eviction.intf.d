lib/core/eviction.mli: Cq_automata Cq_policy Format
