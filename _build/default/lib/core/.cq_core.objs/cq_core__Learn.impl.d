lib/core/learn.ml: Cq_automata Cq_cache Cq_learner Cq_policy Cq_util Fmt Polca String
