lib/core/polca.ml: Array Cq_cache Cq_learner Cq_policy List
