lib/core/reset.mli: Cq_cachequery Cq_util
