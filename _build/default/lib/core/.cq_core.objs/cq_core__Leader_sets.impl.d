lib/core/leader_sets.ml: Cq_cache Cq_cachequery Cq_hwsim List
