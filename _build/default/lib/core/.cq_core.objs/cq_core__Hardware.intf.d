lib/core/hardware.mli: Cq_cachequery Cq_hwsim Format Learn
