lib/core/leader_sets.mli: Cq_cachequery Cq_hwsim
