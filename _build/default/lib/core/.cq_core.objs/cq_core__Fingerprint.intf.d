lib/core/fingerprint.mli: Cq_cache
