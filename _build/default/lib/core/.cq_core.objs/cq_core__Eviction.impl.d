lib/core/eviction.ml: Cq_automata Cq_policy Fmt Fun Hashtbl List Option Printf Queue String
