lib/core/reset.ml: Cq_cache Cq_cachequery Cq_mbl Cq_util List
