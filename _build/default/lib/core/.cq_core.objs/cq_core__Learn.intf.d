lib/core/learn.mli: Cq_automata Cq_cache Cq_policy Format
