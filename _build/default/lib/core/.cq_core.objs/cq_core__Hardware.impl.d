lib/core/hardware.ml: Cq_cachequery Cq_hwsim Cq_learner Cq_util Fmt Learn List Polca Reset String
