lib/core/polca.mli: Cq_cache Cq_learner Cq_policy
