lib/core/fingerprint.ml: Cq_cache Cq_policy Cq_util List
