(* Polca (Algorithm 1): a membership oracle for the replacement policy,
   built on top of a cache oracle.

   The policy alphabet talks about cache *lines* (Ln(i), Evct); the cache
   only accepts *blocks*.  Polca translates between the two by tracking the
   cache content cc: Ln(i) maps to the block currently stored in line i;
   Evct maps to a fresh block never used before.  A miss's victim line is
   recovered by [find_evicted]: replay the block trace extended with each
   previously-cached block and see which one now misses.

   The resulting oracle answers *output queries* (input word over the
   policy alphabet -> output word), which is exactly what the Mealy-machine
   learner consumes; Theorem 3.1's trace-membership oracle is the
   derived [member] function. *)

type t = {
  cache : Cq_cache.Oracle.t;
  check_hits : bool;
      (* Algorithm 1 probes the cache even for Ln(i) inputs whose result is
         a foregone conclusion (the block is present by construction).
         Those probes detect nondeterminism — e.g. a broken reset sequence
         — at the cost of extra queries; disabling them is the ablation
         discussed in the EXPERIMENTS notes. *)
}

exception Non_deterministic of string

let create ?(check_hits = true) cache = { cache; check_hits }

let assoc t = t.cache.Cq_cache.Oracle.assoc

let n_inputs t = Cq_policy.Types.n_inputs ~assoc:(assoc t)

(* Outcome of the last access of a block trace. *)
let probe_last t blocks =
  match List.rev (t.cache.Cq_cache.Oracle.query blocks) with
  | last :: _ -> last
  | [] -> invalid_arg "Polca.probe_last: empty query"

(* Which line was evicted by the last block of [trace]?  Probe the trace
   extended with each currently-tracked block; the one that misses is the
   victim (Algorithm 1's findEvicted). *)
let find_evicted t trace cc =
  let n = Array.length cc in
  let rec go i =
    if i >= n then
      raise
        (Non_deterministic
           "find_evicted: no tracked block misses after an observed miss")
    else
      match probe_last t (List.rev (cc.(i) :: trace)) with
      | Cq_cache.Cache_set.Miss -> i
      | Cq_cache.Cache_set.Hit -> go (i + 1)
  in
  go 0

(* Answer an output query: the policy outputs along [word] (a word over the
   flattened input alphabet: 0..n-1 = Ln(i), n = Evct). *)
let run t word =
  let n = assoc t in
  let cc = Array.copy t.cache.Cq_cache.Oracle.initial_content in
  (* Fresh blocks for Evct inputs, disjoint from cc0 and deterministic for
     a given query (so the query memo works). *)
  let next_fresh = ref n in
  let trace = ref [] (* reversed block trace so far *) in
  let outputs =
    List.map
      (fun input ->
        match Cq_policy.Types.input_of_int ~assoc:n input with
        | Cq_policy.Types.Line i ->
            let b = cc.(i) in
            trace := b :: !trace;
            if t.check_hits then begin
              match probe_last t (List.rev !trace) with
              | Cq_cache.Cache_set.Hit -> ()
              | Cq_cache.Cache_set.Miss ->
                  raise
                    (Non_deterministic
                       "tracked block missed: reset sequence or cache \
                        interface is unsound")
            end;
            None
        | Cq_policy.Types.Evct ->
            let b = Cq_cache.Block.of_index !next_fresh in
            incr next_fresh;
            trace := b :: !trace;
            (match probe_last t (List.rev !trace) with
            | Cq_cache.Cache_set.Miss -> ()
            | Cq_cache.Cache_set.Hit ->
                raise
                  (Non_deterministic
                     "fresh block hit: cache interface is unsound"));
            let victim = find_evicted t !trace cc in
            cc.(victim) <- b;
            Some victim)
      word
  in
  outputs

(* The membership oracle consumed by the learner. *)
let moracle t = { Cq_learner.Moracle.n_inputs = n_inputs t; query = run t }

(* Theorem 3.1: trace membership.  [member t tr] holds iff the input/output
   trace [tr] belongs to the policy's trace semantics. *)
let member t tr =
  let inputs =
    List.map (fun (i, _) -> Cq_policy.Types.input_to_int ~assoc:(assoc t) i) tr
  in
  let expected = List.map snd tr in
  match run t inputs with
  | outputs -> outputs = expected
  | exception Non_deterministic _ -> false
