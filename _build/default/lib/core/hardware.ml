(* Case study §7: learning replacement policies from (simulated) hardware.

   This driver reproduces the Table 4 workflow for one cache set:
   build a CacheQuery backend on the target set, calibrate the latency
   threshold, discover a reset sequence, learn through Polca + L*, and
   identify the resulting automaton against the policy zoo. *)

type outcome =
  | Learned of {
      report : Learn.report;
      reset : Cq_cachequery.Frontend.reset;
      threshold : int;
    }
  | Failed of { reason : string; reset : Cq_cachequery.Frontend.reset option }

type run = {
  cpu : string;
  level : Cq_hwsim.Cpu_model.level;
  slice : int;
  set : int;
  assoc : int; (* effective associativity (CAT-reduced if requested) *)
  cat : bool;
  outcome : outcome;
}

let pp_outcome ppf = function
  | Learned { report; reset; threshold } ->
      Fmt.pf ppf "learned %d states (reset %s, threshold %dc): %s" report.Learn.states
        (Cq_cachequery.Frontend.reset_to_string reset)
        threshold
        (match report.Learn.identified with
        | [] -> "previously undocumented policy"
        | l -> String.concat ", " l)
  | Failed { reason; _ } -> Fmt.pf ppf "failed: %s" reason

let learn_set ?(seed = 42) ?cat_ways ?(slice = 0) ?(set = 0) ?(repetitions = 1)
    ?equivalence ?check_hits ?(max_states = 100_000) ?(reset_trials = 24)
    machine level =
  let model = Cq_hwsim.Machine.model machine in
  (match cat_ways with
  | Some ways -> Cq_hwsim.Machine.set_cat_ways machine ways
  | None -> ());
  let backend =
    Cq_cachequery.Backend.create machine
      { Cq_cachequery.Backend.level; slice; set }
  in
  let threshold, _, _ = Cq_cachequery.Backend.calibrate backend in
  let frontend = Cq_cachequery.Frontend.create ~repetitions backend in
  let assoc = Cq_cachequery.Frontend.assoc frontend in
  let prng = Cq_util.Prng.of_int seed in
  let outcome =
    match Reset.find ~trials:reset_trials ~prng frontend with
    | None ->
        Failed
          {
            reason =
              "no deterministic reset sequence found (non-deterministic set \
               behaviour)";
            reset = None;
          }
    | Some reset -> (
        let oracle = Cq_cachequery.Frontend.oracle frontend in
        match
          Learn.learn_from_cache ?equivalence ?check_hits ~memoize:false
            ~max_states oracle
        with
        | report -> Learned { report; reset; threshold }
        | exception Cq_learner.Lstar.Diverged msg ->
            Failed { reason = "learning diverged: " ^ msg; reset = Some reset }
        | exception Polca.Non_deterministic msg ->
            Failed { reason = "non-deterministic responses: " ^ msg; reset = Some reset })
  in
  {
    cpu = model.Cq_hwsim.Cpu_model.name;
    level;
    slice;
    set;
    assoc;
    cat = cat_ways <> None;
    outcome;
  }

(* Leader-A sets of a CPU's L3 (the learnable ones), per the Appendix B
   index formulas baked into the CPU model. *)
let l3_leader_sets ?(slice = 0) model =
  let spec = model.Cq_hwsim.Cpu_model.l3 in
  match spec.Cq_hwsim.Cpu_model.policy with
  | Cq_hwsim.Cpu_model.Fixed _ -> []
  | Cq_hwsim.Cpu_model.Adaptive { leader_a; _ } ->
      List.filter
        (fun set -> leader_a ~slice ~set)
        (List.init spec.Cq_hwsim.Cpu_model.sets_per_slice (fun i -> i))
