(* The end-to-end learning loop (§3.4): Polca as membership oracle, L* as
   learner, W-method conformance testing (depth k) as equivalence oracle.

   Corollary 3.4 holds by construction: if learning returns policy P', then
   the policy under learning is trace-equivalent to P' or has more than
   |P'| + k states. *)

type equivalence =
  | W_method of int (* depth k of the conformance suite *)
  | Wp_method of int (* the paper's configuration: smaller suites, same guarantee *)
  | Random_walk of { max_tests : int; max_len : int; seed : int }

let default_equivalence = Wp_method 1

type report = {
  machine : Cq_policy.Types.output Cq_automata.Mealy.t;
  states : int;
  seconds : float;
  rounds : int; (* equivalence queries issued *)
  suffixes : int; (* distinguishing suffixes added by Rivest–Schapire *)
  member_queries : int; (* membership queries reaching Polca *)
  member_symbols : int;
  cache_queries : int; (* block-trace queries reaching the cache oracle *)
  cache_accesses : int; (* total block accesses of those queries *)
  identified : string list; (* known policies equivalent to the result *)
}

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>states: %d@,time: %a@,equivalence rounds: %d@,suffixes added: \
     %d@,membership queries: %d (%d symbols)@,cache queries: %d (%d block \
     accesses)@,identified as: %s@]"
    r.states Cq_util.Clock.pp_duration r.seconds r.rounds r.suffixes
    r.member_queries r.member_symbols r.cache_queries r.cache_accesses
    (match r.identified with [] -> "(unknown policy)" | l -> String.concat ", " l)

(* Learn the replacement policy behind a cache oracle. *)
let learn_from_cache ?(equivalence = default_equivalence) ?(check_hits = true)
    ?(memoize = true) ?(max_states = 1_000_000) ?(identify = true) cache =
  let cache_stats = Cq_cache.Oracle.fresh_stats () in
  let cache = Cq_cache.Oracle.counting cache_stats cache in
  let cache = if memoize then Cq_cache.Oracle.memoized ~stats:cache_stats cache else cache in
  let polca = Polca.create ~check_hits cache in
  let mstats = Cq_learner.Moracle.fresh_stats () in
  let oracle =
    Polca.moracle polca
    |> Cq_learner.Moracle.counting mstats
    |> Cq_learner.Moracle.cached ~stats:mstats
  in
  let find_cex =
    match equivalence with
    | W_method depth -> Cq_learner.Equivalence.w_method ~depth oracle
    | Wp_method depth -> Cq_learner.Equivalence.wp_method ~depth oracle
    | Random_walk { max_tests; max_len; seed } ->
        Cq_learner.Equivalence.random_walk
          ~prng:(Cq_util.Prng.of_int seed)
          ~max_tests ~max_len oracle
  in
  let (result : _ Cq_learner.Lstar.result), seconds =
    Cq_util.Clock.time (fun () ->
        Cq_learner.Lstar.learn ~max_states ~oracle ~find_cex ())
  in
  {
    machine = result.machine;
    states = Cq_automata.Mealy.n_states result.machine;
    seconds;
    rounds = result.rounds;
    suffixes = result.suffixes_added;
    member_queries = mstats.Cq_learner.Moracle.queries;
    member_symbols = mstats.Cq_learner.Moracle.symbols;
    cache_queries = cache_stats.Cq_cache.Oracle.queries;
    cache_accesses = cache_stats.Cq_cache.Oracle.block_accesses;
    identified = (if identify then Cq_policy.Zoo.identify result.machine else []);
  }

(* Case study §6: learn a policy from a software-simulated cache. *)
let learn_simulated ?equivalence ?check_hits ?max_states ?identify policy =
  learn_from_cache ?equivalence ?check_hits ?max_states ?identify
    (Cq_cache.Oracle.of_policy policy)

(* Sanity check used in tests and experiments: the learned machine must be
   trace-equivalent to the (warm-started) ground-truth policy machine. *)
let verify_against report policy =
  Cq_automata.Mealy.equivalent report.machine (Cq_policy.Policy.to_mealy policy)
