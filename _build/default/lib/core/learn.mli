(** The end-to-end learning loop (§3.4 of the paper): Polca as membership
    oracle, L* as learner, W-method conformance testing as equivalence
    oracle.

    Corollary 3.4 holds by construction: if learning a cache C(P, cc0, n)
    returns P', then ⟦P⟧ = ⟦P'⟧ or P has more than |P'| + k states. *)

type equivalence =
  | W_method of int  (** conformance-suite depth k *)
  | Wp_method of int  (** Wp-method, depth k: same guarantee, smaller suite *)
  | Random_walk of { max_tests : int; max_len : int; seed : int }

val default_equivalence : equivalence
(** [Wp_method 1], the paper's configuration (§3.4). *)

type report = {
  machine : Cq_policy.Types.output Cq_automata.Mealy.t;
  states : int;
  seconds : float;
  rounds : int;
  suffixes : int;
  member_queries : int;
  member_symbols : int;
  cache_queries : int;
  cache_accesses : int;
  identified : string list;
      (** known policies trace-equivalent to the result (up to reset state
          and line permutation) *)
}

val pp_report : Format.formatter -> report -> unit

val learn_from_cache :
  ?equivalence:equivalence ->
  ?check_hits:bool ->
  ?memoize:bool ->
  ?max_states:int ->
  ?identify:bool ->
  Cq_cache.Oracle.t ->
  report
(** Learn the replacement policy behind a cache oracle.  [memoize] (default
    true) interposes a query memo — disable it when the oracle already
    memoizes (the CacheQuery frontend does).  May raise
    {!Cq_learner.Lstar.Diverged} or {!Polca.Non_deterministic}. *)

val learn_simulated :
  ?equivalence:equivalence ->
  ?check_hits:bool ->
  ?max_states:int ->
  ?identify:bool ->
  Cq_policy.Policy.t ->
  report
(** Case study §6: learn a policy from a software-simulated cache. *)

val verify_against : report -> Cq_policy.Policy.t -> bool
(** Is the learned machine trace-equivalent to the policy's ground truth? *)
