(** Random-testing policy identification in the style of Abel & Reineke's
    nanoBench, discussed in the paper's related work: run random block
    sequences against the cache under test and eliminate every candidate
    from a pool of simulated policies that disagrees.

    Fast, but pool-only and guarantee-free (cf. the learning pipeline's
    Corollary 3.4) — and it requires a reset that fully re-establishes the
    policy's control state, which e.g. Skylake L2's Flush+Refill does not;
    the [ablations] benchmark quantifies the trade-off. *)

type verdict = {
  survivors : string list;  (** candidates consistent with every run *)
  sequences : int;
  accesses : int;
}

val identify :
  ?sequences:int -> ?max_len:int -> ?seed:int -> Cq_cache.Oracle.t -> verdict
(** Fingerprint the cache behind the oracle against the policy zoo (each
    candidate tried from its raw and warmed initial state).  Stops early
    when no candidate survives. *)
