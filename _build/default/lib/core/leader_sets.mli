(** Appendix B: detecting adaptive policies and leader sets by thrashing
    probes and set-dueling manipulation.

    Protocol: measure each set's thrash signature (how much of a working
    set survives a sweep of 2x-associativity fresh blocks), drive the PSEL
    duel in both directions by pounding each signature group, and
    re-measure: sets whose signature never moves are fixed (leaders),
    the rest are followers. *)

type classification =
  | Fixed_vulnerable  (** leader running the thrash-vulnerable policy (New2) *)
  | Fixed_resistant  (** leader running the thrash-resistant policy *)
  | Follower  (** adaptive: follows the PSEL duel *)

val classification_to_string : classification -> string

type scan_result = {
  slice : int;
  set : int;
  signatures : int list;  (** surviving blocks per probe round *)
  classification : classification;
}

val thrash_probe : Cq_cachequery.Frontend.t -> int
(** Fill with ['@'], sweep 2x associativity fresh blocks, re-probe: the
    number of original blocks that survived. *)

val scan :
  ?slice:int -> ?pound_rounds:int -> Cq_hwsim.Machine.t -> int list -> scan_result list
(** Classify the given L3 set indices of [slice]. *)

val check_against_model :
  Cq_hwsim.Cpu_model.t -> ?slice:int -> scan_result list -> int list * int list
(** [(detected, expected)]: detected vulnerable leaders vs. the model's
    ground-truth index formula, over the scanned sets. *)
