(* Random-testing policy identification, in the style of Abel & Reineke's
   nanoBench (discussed in the paper's related work): instead of *learning*
   the policy, generate random block sequences, run them against the cache
   under test, and eliminate every candidate from a pool of simulated
   policies that disagrees.

   As the paper notes, this is less general than learning (it can only
   recognise policies already in the pool) and carries no correctness
   guarantee (a finite set of random sequences may fail to separate two
   candidates), but it is drastically cheaper — the ablation in the
   benchmark harness quantifies the trade-off.

   Candidates are tried both from their raw initial state and warmed
   through an initial fill, because the cache under test answers from
   whatever state its reset sequence establishes. *)

type verdict = {
  survivors : string list; (* candidate policies consistent with all runs *)
  sequences : int;
  accesses : int;
}

(* Random block trace over the first [assoc + spread] blocks. *)
let random_trace prng ~assoc ~len =
  List.init len (fun _ ->
      Cq_cache.Block.of_index (Cq_util.Prng.int prng (assoc + 3)))

let candidate_oracles ~assoc =
  List.concat_map
    (fun name ->
      match Cq_policy.Zoo.make ~name ~assoc with
      | Error _ -> []
      | Ok p ->
          [
            (name, Cq_cache.Oracle.of_policy p);
            (name, Cq_cache.Oracle.of_policy (Cq_policy.Policy.warmed p));
          ])
    Cq_policy.Zoo.names

let identify ?(sequences = 200) ?(max_len = 24) ?(seed = 7)
    (cache : Cq_cache.Oracle.t) =
  let assoc = cache.Cq_cache.Oracle.assoc in
  let prng = Cq_util.Prng.of_int seed in
  let candidates = ref (candidate_oracles ~assoc) in
  let accesses = ref 0 in
  let runs = ref 0 in
  while !runs < sequences && !candidates <> [] do
    let len = 2 + Cq_util.Prng.int prng (max_len - 2) in
    let trace = random_trace prng ~assoc ~len in
    accesses := !accesses + len;
    let reference = cache.Cq_cache.Oracle.query trace in
    candidates :=
      List.filter
        (fun (_, oracle) -> oracle.Cq_cache.Oracle.query trace = reference)
        !candidates;
    incr runs
  done;
  {
    survivors = List.sort_uniq compare (List.map fst !candidates);
    sequences = !runs;
    accesses = !accesses;
  }
