(** Optimal eviction strategies computed from learned policy models — the
    security application the paper's §10 motivates (Rowhammer.js had to
    *test* thousands of candidate strategies; with the policy automaton
    they can be computed exactly).

    The attacker shares a cache set with a victim block in line [target];
    it may touch its own lines ([Ln(i)], [i <> target]) and insert fresh
    blocks ([Evct]), and wants the policy to evict line [target]. *)

type strategy = {
  word : int list;  (** over the flattened policy alphabet *)
  length : int;
  accesses : int;  (** [Ln] inputs *)
  misses : int;  (** [Evct] inputs *)
}

val pp_strategy : assoc:int -> Format.formatter -> strategy -> unit

val shortest :
  target:int -> Cq_policy.Types.output Cq_automata.Mealy.t -> int -> strategy option
(** [shortest ~target m state]: the provably shortest attacker word from
    control state [state] whose final [Evct] evicts [target] (BFS);
    [None] if the target is never evictable. *)

val universal :
  target:int -> Cq_policy.Types.output Cq_automata.Mealy.t -> strategy option
(** One word that evicts [target] from *every* control state (the attacker
    usually does not know the state). *)

val eviction_rate :
  target:int -> Cq_policy.Types.output Cq_automata.Mealy.t -> int list -> float
(** Fraction of control states from which the word evicts the target —
    the "eviction rate" of the attack literature, computed exactly. *)

type summary = {
  line : int;
  from_init : strategy option;
  from_any : strategy option;
}

val analyze_policy : Cq_policy.Policy.t -> summary list
(** Per-line strategies for a policy (one row per cache line). *)
