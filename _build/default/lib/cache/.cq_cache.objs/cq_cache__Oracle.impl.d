lib/cache/oracle.ml: Block Cache_set Cq_util Hashtbl List
