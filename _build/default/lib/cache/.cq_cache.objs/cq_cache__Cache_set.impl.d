lib/cache/cache_set.ml: Array Block Cq_policy Fmt List
