lib/cache/block.mli: Format
