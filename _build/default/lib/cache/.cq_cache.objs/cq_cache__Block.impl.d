lib/cache/block.ml: Char Fmt List Printf String
