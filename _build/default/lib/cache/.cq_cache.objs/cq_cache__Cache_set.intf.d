lib/cache/cache_set.mli: Block Cq_policy Format
