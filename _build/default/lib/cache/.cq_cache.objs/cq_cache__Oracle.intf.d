lib/cache/oracle.mli: Block Cache_set Cq_policy Cq_util
