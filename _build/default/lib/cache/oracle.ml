(* The cache-semantics oracle consumed by Polca (the paper's ⟦C⟧).

   A query is a sequence of block accesses executed from the cache's fixed
   initial configuration; the oracle returns the hit/miss outcome of every
   access.  Both the software-simulated cache (§6) and CacheQuery over
   hardware (§7) implement this interface, which is exactly what makes
   Polca agnostic to where the cache lives. *)

type t = {
  assoc : int;
  initial_content : Block.t array; (* cc0, known to Polca *)
  query : Block.t list -> Cache_set.result list;
}

type stats = {
  mutable queries : int;        (* oracle queries issued *)
  mutable block_accesses : int; (* total blocks across all queries *)
  mutable memo_hits : int;      (* queries answered from the memo table *)
}

let fresh_stats () = { queries = 0; block_accesses = 0; memo_hits = 0 }

let of_cache_set set =
  {
    assoc = Cache_set.assoc set;
    initial_content = Cache_set.initial_content set;
    query = Cache_set.run_from_reset set;
  }

let of_policy ?initial_content policy =
  of_cache_set (Cache_set.create ?initial_content policy)

let counting stats t =
  {
    t with
    query =
      (fun blocks ->
        stats.queries <- stats.queries + 1;
        stats.block_accesses <- stats.block_accesses + List.length blocks;
        t.query blocks);
  }

(* Memoization table over whole queries — the role LevelDB plays in the
   CacheQuery frontend.  Sound because queries always start from the reset
   state, so equal block sequences yield equal results. *)
let memoized ?stats t =
  (* Keys are block traces with long shared prefixes: pack them with a deep
     hash or the table degenerates into one bucket. *)
  let table : (Block.t list Cq_util.Deep.t, Cache_set.result list) Hashtbl.t =
    Hashtbl.create 4096
  in
  {
    t with
    query =
      (fun blocks ->
        let key = Cq_util.Deep.pack blocks in
        match Hashtbl.find_opt table key with
        | Some r ->
            (match stats with
            | Some s -> s.memo_hits <- s.memo_hits + 1
            | None -> ());
            r
        | None ->
            let r = t.query blocks in
            Hashtbl.add table key r;
            r);
  }

(* Artificial misclassification noise: each individual hit/miss outcome is
   flipped with probability [p].  Used to stress-test the majority-vote
   denoising in CacheQuery and the failure modes discussed in §9. *)
let noisy ~prng ~p t =
  {
    t with
    query =
      (fun blocks ->
        List.map
          (fun r ->
            if Cq_util.Prng.bool prng p then
              match r with Cache_set.Hit -> Cache_set.Miss | Cache_set.Miss -> Cache_set.Hit
            else r)
          (t.query blocks));
  }

(* Majority vote over [reps] repetitions of the query — the denoising the
   CacheQuery backend applies when executing generated code several times. *)
let majority ~reps t =
  if reps < 1 then invalid_arg "Oracle.majority: reps must be >= 1";
  {
    t with
    query =
      (fun blocks ->
        let runs = List.init reps (fun _ -> t.query blocks) in
        match runs with
        | [] -> assert false
        | first :: _ ->
            List.mapi
              (fun i _ ->
                let hits =
                  List.fold_left
                    (fun acc run ->
                      if Cache_set.result_is_hit (List.nth run i) then acc + 1
                      else acc)
                    0 runs
                in
                if 2 * hits > reps then Cache_set.Hit else Cache_set.Miss)
              first);
  }
