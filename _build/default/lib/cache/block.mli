(** Abstract memory blocks, rendered in the paper's A, B, C ... notation. *)

type t = private int

val equal : t -> t -> bool
val compare : t -> t -> int

val of_index : int -> t
(** [of_index 0] is block A, [of_index 1] is B, ... *)

val aux : int -> t
(** [aux i] is the i-th auxiliary block (rendered lowercase); auxiliary
    blocks are disjoint from any realistic ['@'] expansion. *)

val index : t -> int
val is_aux : t -> bool

val to_string : t -> string
(** Spreadsheet-column rendering: A..Z, AA, AB, ... *)

val of_string : string -> t
(** Inverse of [to_string]. Raises [Invalid_argument] on malformed names. *)

val pp : Format.formatter -> t -> unit

val first : int -> t list
(** The first [n] blocks in order (what the MBL macro ['@'] expands to). *)
