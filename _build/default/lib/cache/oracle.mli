(** The cache-semantics oracle consumed by Polca (the paper's ⟦C⟧).

    A query is a block trace executed from the cache's fixed initial
    configuration; the oracle returns the outcome of every access.  The
    software-simulated cache (§6 of the paper) and CacheQuery over
    hardware (§7) both implement this interface. *)

type t = {
  assoc : int;
  initial_content : Block.t array;  (** cc0, known to Polca *)
  query : Block.t list -> Cache_set.result list;
}

type stats = {
  mutable queries : int;
  mutable block_accesses : int;
  mutable memo_hits : int;
}

val fresh_stats : unit -> stats

val of_cache_set : Cache_set.t -> t
val of_policy : ?initial_content:Block.t array -> Cq_policy.Policy.t -> t

val counting : stats -> t -> t
(** Count queries and accesses into [stats]. *)

val memoized : ?stats:stats -> t -> t
(** Memoize whole queries (the role LevelDB plays in the paper's frontend).
    Sound because every query starts from the reset state. *)

val noisy : prng:Cq_util.Prng.t -> p:float -> t -> t
(** Flip each individual outcome with probability [p] (fault injection). *)

val majority : reps:int -> t -> t
(** Majority vote over [reps] repetitions of each query. *)
