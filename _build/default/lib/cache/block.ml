(* Abstract memory blocks.  The paper ranges over a potentially infinite,
   ordered set of blocks written A, B, C, ...; we represent them as dense
   non-negative integers and render them in spreadsheet-column style
   (A .. Z, AA, AB, ...), which matches the MBL notation.

   A second, disjoint pool of "auxiliary" blocks (indices >= [aux_offset])
   renders in lowercase (a, b, ..., aa, ...).  MBL uses these for blocks
   that must never collide with the '@' expansion regardless of the
   associativity — e.g. the thrashing probe in Appendix B's '@ M a M?'. *)

type t = int

let aux_offset = 100_000

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b

let of_index i =
  if i < 0 then invalid_arg "Block.of_index: negative index";
  i

let aux i =
  if i < 0 then invalid_arg "Block.aux: negative index";
  aux_offset + i

let index b = b
let is_aux b = b >= aux_offset

let spreadsheet ~base b =
  let rec go acc b =
    let acc = String.make 1 (Char.chr (Char.code base + (b mod 26))) ^ acc in
    if b < 26 then acc else go acc ((b / 26) - 1)
  in
  go "" b

let to_string b =
  if is_aux b then spreadsheet ~base:'a' (b - aux_offset)
  else spreadsheet ~base:'A' b

let decode ~base s =
  let value = ref 0 in
  String.iter
    (fun c ->
      if c < base || Char.code c > Char.code base + 25 then
        invalid_arg (Printf.sprintf "Block.of_string: bad character %C" c);
      value := (!value * 26) + (Char.code c - Char.code base) + 1)
    s;
  !value - 1

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Block.of_string: empty name";
  if s.[0] >= 'a' && s.[0] <= 'z' then aux (decode ~base:'a' s)
  else of_index (decode ~base:'A' s)

let pp ppf b = Fmt.string ppf (to_string b)

(* The canonical first [n] blocks: what the MBL macro '@' expands to. *)
let first n = List.init n of_index
