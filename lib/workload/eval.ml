(* Policy × trace evaluation harness: replay subjects over traces and
   tabulate hit rates against the Belady-OPT bound.  Shared by
   bench -- workload and the cq-workload CLI so their tables agree. *)

module Mealy = Cq_automata.Mealy
module Policy = Cq_policy.Policy

type row = {
  subject : string;
  trace : string;
  accesses : int;
  hits : int;
  rate : float;
  opt_hits : int;
  opt_rate : float;
}

let row_of ~subject ~assoc ?initial (tr : Trace.t) (o : Replay.outcome) =
  let opt = Opt.replay ~assoc ?initial tr.Trace.blocks in
  {
    subject;
    trace = tr.Trace.label;
    accesses = Array.length tr.Trace.blocks;
    hits = o.Replay.hits;
    rate = Replay.hit_rate o;
    opt_hits = opt.Replay.hits;
    opt_rate = Replay.hit_rate opt;
  }

let policies ?initial ?fill_touch subjects traces =
  List.concat_map
    (fun (subject, p) ->
      let assoc = Policy.assoc p in
      List.map
        (fun tr ->
          let o = Replay.policy ?initial ?fill_touch p tr.Trace.blocks in
          row_of ~subject ~assoc ?initial tr o)
        traces)
    subjects

let machines ?initial ?fill_touch subjects traces =
  List.concat_map
    (fun (subject, c) ->
      let assoc = Mealy.compiled_n_inputs c - 1 in
      List.map
        (fun tr ->
          let o = Replay.compiled ?initial ?fill_touch c tr.Trace.blocks in
          row_of ~subject ~assoc ?initial tr o)
        traces)
    subjects

let pp_table ppf rows =
  let subj_w =
    List.fold_left (fun w r -> max w (String.length r.subject)) 7 rows
  in
  let trace_w =
    List.fold_left (fun w r -> max w (String.length r.trace)) 5 rows
  in
  Format.fprintf ppf "%-*s  %-*s  %10s  %10s  %7s  %7s  %7s@."
    subj_w "subject" trace_w "trace" "accesses" "hits" "hit%" "OPT%" "gap";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-*s  %-*s  %10d  %10d  %7.3f  %7.3f  %7.3f@."
        subj_w r.subject trace_w r.trace r.accesses r.hits (100.0 *. r.rate)
        (100.0 *. r.opt_rate)
        (100.0 *. (r.opt_rate -. r.rate)))
    rows

let pp_attribution ?(top = 10) ppf (a : Replay.attribution) =
  let rows = Replay.top_miss_states a top in
  Format.fprintf ppf "%6s  %10s  %10s  %7s@." "state" "misses" "hits"
    "miss%";
  List.iter
    (fun (s, m, h) ->
      let tot = m + h in
      let pct = if tot = 0 then 0.0 else 100.0 *. float_of_int m /. float_of_int tot in
      Format.fprintf ppf "%6d  %10d  %10d  %7.3f@." s m h pct)
    rows;
  Format.fprintf ppf "victim ways:";
  Array.iteri
    (fun w n -> Format.fprintf ppf " %d:%d" w n)
    a.Replay.victims;
  Format.fprintf ppf "@."
