(* Synthetic single-set access traces.  Every generator draws from
   Cq_util.Prng, so the trace is a pure function of its spec string and CI
   can regenerate expectations from specs alone. *)

module Prng = Cq_util.Prng

type t = {
  label : string;
  spec : string;
  universe : int;
  blocks : int array;
}

let check_pos name v = if v <= 0 then invalid_arg ("Trace: " ^ name ^ " must be positive")

(* Zipf via a precomputed CDF and binary search: weight of block b is
   1/(b+1)^alpha, so low ids are hot — the skewed-reuse shape of SPEC-like
   workloads. *)
let zipf ~n ~alpha ~len ~seed =
  check_pos "n" n;
  check_pos "len" len;
  if alpha < 0.0 then invalid_arg "Trace.zipf: alpha must be non-negative";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for b = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (b + 1) ** alpha));
    cdf.(b) <- !total
  done;
  let prng = Prng.of_int seed in
  let sample () =
    let u = Prng.float prng *. !total in
    (* first index with cdf.(i) >= u *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let blocks = Array.init len (fun _ -> sample ()) in
  {
    label = Printf.sprintf "zipf(n=%d,a=%.2f)" n alpha;
    spec = Printf.sprintf "zipf:n=%d,alpha=%g,len=%d,seed=%d" n alpha len seed;
    universe = n;
    blocks;
  }

let uniform ~n ~len ~seed =
  check_pos "n" n;
  check_pos "len" len;
  let prng = Prng.of_int seed in
  let blocks = Array.init len (fun _ -> Prng.int prng n) in
  {
    label = Printf.sprintf "uniform(n=%d)" n;
    spec = Printf.sprintf "uniform:n=%d,len=%d,seed=%d" n len seed;
    universe = n;
    blocks;
  }

let sequential ~n ~len =
  check_pos "n" n;
  check_pos "len" len;
  let blocks = Array.init len (fun i -> i mod n) in
  {
    label = Printf.sprintf "seq(n=%d)" n;
    spec = Printf.sprintf "seq:n=%d,len=%d" n len;
    universe = n;
    blocks;
  }

let strided ~n ~stride ~len =
  check_pos "n" n;
  check_pos "stride" stride;
  check_pos "len" len;
  let blocks = Array.init len (fun i -> i * stride mod n) in
  {
    label = Printf.sprintf "stride(n=%d,s=%d)" n stride;
    spec = Printf.sprintf "stride:n=%d,stride=%d,len=%d" n stride len;
    universe = n;
    blocks;
  }

let anti_lru ~ws ~len =
  check_pos "ws" ws;
  check_pos "len" len;
  let blocks = Array.init len (fun i -> i mod ws) in
  {
    label = Printf.sprintf "anti-lru(ws=%d)" ws;
    spec = Printf.sprintf "anti:ws=%d,len=%d" ws len;
    universe = ws;
    blocks;
  }

(* --- spec grammar ------------------------------------------------------

   One shell-safe token describes a trace:

     zipf:n=64,alpha=1.2,len=10000,seed=1 | uniform:... | seq:... |
     stride:... | anti:ws=9,len=10000

   mirroring Faults.of_spec so CLI flags, CI and benches share one
   vocabulary. *)

let spec_syntax =
  "zipf:n=N,alpha=F,len=N,seed=N | uniform:n=N,len=N,seed=N | \
   seq:n=N,len=N | stride:n=N,stride=N,len=N | anti:ws=N,len=N \
   (all keys optional)"

let of_spec ?assoc spec =
  let name, rest =
    match String.index_opt spec ':' with
    | None -> (spec, "")
    | Some i ->
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1) )
  in
  let kvs =
    if rest = "" then Ok []
    else
      let parts = String.split_on_char ',' rest in
      let parse_kv kv =
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
        | Some j ->
            Ok
              ( String.sub kv 0 j,
                String.sub kv (j + 1) (String.length kv - j - 1) )
      in
      List.fold_left
        (fun acc kv ->
          Result.bind acc (fun l ->
              Result.map (fun p -> p :: l) (parse_kv kv)))
        (Ok []) parts
  in
  match kvs with
  | Error _ as e -> e
  | Ok kvs -> (
      let known keys =
        let rec bad = function
          | [] -> None
          | (k, _) :: tl -> if List.mem k keys then bad tl else Some k
        in
        match bad kvs with
        | None -> Ok ()
        | Some k ->
            Error
              (Printf.sprintf "unknown key %S for %S (%s)" k name spec_syntax)
      in
      let int_key key default =
        match List.assoc_opt key kvs with
        | None -> Ok default
        | Some v -> (
            match int_of_string_opt v with
            | Some n -> Ok n
            | None -> Error (Printf.sprintf "%s=%S is not an integer" key v))
      in
      let float_key key default =
        match List.assoc_opt key kvs with
        | None -> Ok default
        | Some v -> (
            match float_of_string_opt v with
            | Some f -> Ok f
            | None -> Error (Printf.sprintf "%s=%S is not a number" key v))
      in
      let ( let* ) = Result.bind in
      match name with
      | "zipf" ->
          let* () = known [ "n"; "alpha"; "len"; "seed" ] in
          let* n = int_key "n" 64 in
          let* alpha = float_key "alpha" 1.2 in
          let* len = int_key "len" 10_000 in
          let* seed = int_key "seed" 1 in
          Ok (zipf ~n ~alpha ~len ~seed)
      | "uniform" ->
          let* () = known [ "n"; "len"; "seed" ] in
          let* n = int_key "n" 64 in
          let* len = int_key "len" 10_000 in
          let* seed = int_key "seed" 1 in
          Ok (uniform ~n ~len ~seed)
      | "seq" ->
          let* () = known [ "n"; "len" ] in
          let* n = int_key "n" 16 in
          let* len = int_key "len" 10_000 in
          Ok (sequential ~n ~len)
      | "stride" ->
          let* () = known [ "n"; "stride"; "len" ] in
          let* n = int_key "n" 64 in
          let* stride = int_key "stride" 3 in
          let* len = int_key "len" 10_000 in
          Ok (strided ~n ~stride ~len)
      | "anti" ->
          let* () = known [ "ws"; "len" ] in
          let default_ws = match assoc with Some a -> a + 1 | None -> 9 in
          let* ws = int_key "ws" default_ws in
          let* len = int_key "len" 10_000 in
          Ok (anti_lru ~ws ~len)
      | _ ->
          Error
            (Printf.sprintf "unknown trace kind %S (%s)" name spec_syntax))

let of_spec_exn ?assoc spec =
  match of_spec ?assoc spec with
  | Ok t -> t
  | Error msg -> invalid_arg ("Trace.of_spec: " ^ msg)
