(* Belady's OPT.

   Classic two-pass formulation: a backward scan precomputes, for every
   access position, the index of the block's next use (len = never); the
   forward simulation then keeps each resident way's next-use index and
   evicts the way whose value is largest, lowest way on ties.  Blocks
   resident initially but never accessed carry next-use = never and are
   evicted first — exactly what clairvoyance dictates. *)

let never = max_int

let replay ~assoc ?initial blocks =
  if assoc < 1 then invalid_arg "Opt.replay: assoc must be positive";
  let len = Array.length blocks in
  let tags =
    match initial with
    | None -> Array.init assoc (fun w -> w)
    | Some init ->
        if Array.length init > assoc then
          invalid_arg "Opt.replay: initial content larger than assoc";
        Array.init assoc (fun w ->
            if w < Array.length init then init.(w) else -1)
  in
  let max_tag = Array.fold_left max (-1) tags in
  let max_blk = Array.fold_left max max_tag blocks in
  Array.iter
    (fun b -> if b < 0 then invalid_arg "Opt.replay: negative block id")
    blocks;
  (* next_use.(j): index of the next access to blocks.(j) after j. *)
  let next_use = Array.make (max len 1) never in
  let last_seen = Array.make (max_blk + 1) never in
  for j = len - 1 downto 0 do
    let b = blocks.(j) in
    next_use.(j) <- last_seen.(b);
    last_seen.(b) <- j
  done;
  (* After the backward pass, last_seen.(b) is b's first occurrence — the
     next-use of an initially-resident block. *)
  let way_of = Array.make (max_blk + 1) (-1) in
  let way_next = Array.make assoc never in
  Array.iteri
    (fun w tag ->
      if tag >= 0 then begin
        way_of.(tag) <- w;
        way_next.(w) <- last_seen.(tag)
      end)
    tags;
  let stream = Bytes.make len '\000' in
  for j = 0 to len - 1 do
    let b = blocks.(j) in
    let w = way_of.(b) in
    if w >= 0 then begin
      way_next.(w) <- next_use.(j);
      Bytes.unsafe_set stream j '\001'
    end
    else begin
      (* Miss: lowest invalid way first, else the way with the farthest
         next use (lowest index on ties — deterministic). *)
      let victim = ref (-1) in
      (try
         for v = 0 to assoc - 1 do
           if tags.(v) < 0 then begin
             victim := v;
             raise Exit
           end
         done
       with Exit -> ());
      if !victim < 0 then begin
        let best = ref 0 in
        for v = 1 to assoc - 1 do
          if way_next.(v) > way_next.(!best) then best := v
        done;
        victim := !best
      end;
      let v = !victim in
      let old = tags.(v) in
      if old >= 0 then way_of.(old) <- -1;
      tags.(v) <- b;
      way_of.(b) <- v;
      way_next.(v) <- next_use.(j)
    end
  done;
  Replay.outcome_of_stream stream

let hit_rate ~assoc ?initial blocks =
  Replay.hit_rate (replay ~assoc ?initial blocks)
