(** Policy × trace evaluation harness shared by [bench -- workload] and
    the [cq-workload] CLI: replay a set of subjects over a set of traces
    and tabulate hit rates against the Belady-OPT bound. *)

type row = {
  subject : string;  (** policy or machine name *)
  trace : string;  (** trace label *)
  accesses : int;
  hits : int;
  rate : float;
  opt_hits : int;
  opt_rate : float;  (** Belady-OPT on the same trace and initial content *)
}

val policies :
  ?initial:int array ->
  ?fill_touch:bool ->
  (string * Cq_policy.Policy.t) list ->
  Trace.t list ->
  row list
(** Replay every policy over every trace (policy-instance path). *)

val machines :
  ?initial:int array ->
  ?fill_touch:bool ->
  (string * Cq_policy.Types.output Cq_automata.Mealy.compiled) list ->
  Trace.t list ->
  row list
(** Replay every compiled machine over every trace (fast path). *)

val pp_table : Format.formatter -> row list -> unit
(** Aligned table: subject, trace, accesses, hits, hit%, OPT%, gap. *)

val pp_attribution :
  ?top:int -> Format.formatter -> Replay.attribution -> unit
(** The miss-attribution table: the states absorbing the most misses,
    with per-state hit counts and the victim-way histogram. *)
