(** Synthetic single-set access traces.

    A trace is a sequence of block ids over a bounded universe, aimed at
    one cache set: the replayer maps ids to ways (or to congruent
    addresses, for hwsim).  Every generator is driven by {!Cq_util.Prng},
    so a trace is a pure function of its spec string — CI and the
    property tests regenerate traces from specs alone. *)

type t = {
  label : string;  (** human-readable name, e.g. ["zipf(n=64,α=1.2)"] *)
  spec : string;  (** canonical spec; [of_spec spec] rebuilds the trace *)
  universe : int;  (** block ids lie in [0, universe) *)
  blocks : int array;
}

(** {2 Generators} *)

val zipf : n:int -> alpha:float -> len:int -> seed:int -> t
(** Zipf-distributed ids over [n] blocks: block [b] drawn with
    probability proportional to [1 /. (b+1) ** alpha].  The skewed-reuse
    shape of SPEC-like workloads. *)

val uniform : n:int -> len:int -> seed:int -> t
(** Uniform ids over [n] blocks — the recency-free baseline. *)

val sequential : n:int -> len:int -> t
(** Cyclic scan [0, 1, ..., n-1, 0, ...]: a streaming workload.  With
    [n > assoc] it defeats every recency-based policy. *)

val strided : n:int -> stride:int -> len:int -> t
(** Strided scan [(i * stride) mod n]: the SPEC-like regular-array
    pattern. *)

val anti_lru : ws:int -> len:int -> t
(** The adversarial anti-LRU loop: a cyclic working set of [ws] blocks.
    With [ws = assoc + 1], LRU misses on every access while OPT keeps
    [ws - assoc] misses per lap. *)

(** {2 Spec grammar}

    One shell-safe token describes a trace:

    {v
    zipf:n=64,alpha=1.2,len=10000,seed=1
    uniform:n=64,len=10000,seed=1
    seq:n=16,len=10000
    stride:n=64,stride=3,len=10000
    anti:ws=9,len=10000
    v}

    Every key is optional; unspecified keys take the defaults above.
    [anti] without [ws] defaults to [assoc + 1] when [of_spec] is given
    the target associativity (else [9]). *)

val of_spec : ?assoc:int -> string -> (t, string) result
(** Parse and generate.  [Error] carries a human-readable diagnostic. *)

val of_spec_exn : ?assoc:int -> string -> t

val spec_syntax : string
(** One-line grammar summary for [--help] texts. *)
