(** Trace replay through policies and learned automata.

    All replayers simulate one cache set with the semantics of
    [Cache_set.access] / [Cache_level.fill]: a hit touches the governing
    automaton with [Line w]; a miss fills the lowest-index invalid way
    first (touching the automaton only under [fill_touch], hwsim's
    [fill_touches_policy]) and evicts through the automaton only once the
    set is full.  Default initial content is blocks [0 .. assoc-1] in
    ways [0 .. assoc-1] ([Cache_set.create]); pass [~initial:[||]] for a
    cold set.  The three paths — concrete policy, explicit Mealy machine
    ([Mealy.step]), compiled machine ({!Cq_automata.Mealy.stepper}) —
    must produce byte-identical hit/miss streams; the differential tests
    hold them to that. *)

type outcome = {
  hits : int;
  misses : int;
  stream : Bytes.t;  (** one byte per access; [1] = hit *)
}

val outcome_of_stream : Bytes.t -> outcome
val hit_rate : outcome -> float
(** [hits / accesses]; [0.] for an empty trace. *)

val policy :
  ?initial:int array ->
  ?fill_touch:bool ->
  Cq_policy.Policy.t ->
  int array ->
  outcome
(** Replay through a fresh {!Cq_policy.Instance} of the policy. *)

val machine :
  ?initial:int array ->
  ?fill_touch:bool ->
  Cq_policy.Types.output Cq_automata.Mealy.t ->
  int array ->
  outcome
(** Replay through an explicit machine via [Mealy.step] — the slow
    reference the compiled path is diffed against. *)

(** {2 Compiled replay and miss attribution} *)

type attribution = {
  attr_states : int;
  state_hits : int array;  (** hits observed in each automaton state *)
  state_misses : int array;
      (** misses charged to the automaton state the set was in when the
          miss occurred (before the eviction/fill step) *)
  victims : int array;  (** evictions that landed on each way *)
}

val attribution : Cq_policy.Types.output Cq_automata.Mealy.compiled -> attribution
(** A zeroed accumulator sized for the machine.  Pass the same record to
    several {!compiled} calls to aggregate across traces. *)

val compiled :
  ?initial:int array ->
  ?fill_touch:bool ->
  ?attr:attribution ->
  Cq_policy.Types.output Cq_automata.Mealy.compiled ->
  int array ->
  outcome
(** The fast path: allocation-free per access (streaming stepper over the
    compiled tables, int tags, no boxing).  When [attr] is given, each
    access also charges the current automaton state's hit/miss counter
    and the victim way's eviction counter. *)

val top_miss_states : attribution -> int -> (int * int * int) list
(** [(state, misses, hits)] rows of the [n] states absorbing the most
    misses, descending (ties by state id). *)
