(** Belady's OPT: the offline-optimal replacement baseline.

    OPT evicts the resident block whose next use lies farthest in the
    future.  Among demand-fill caches that evict exactly one block per
    miss, no policy has fewer misses on a given trace (Belady 1966) —
    the property test holds every zoo policy to that bound.  The
    implementation is deterministic: ties break toward the lowest way,
    so the same trace always yields the same stream. *)

val replay : assoc:int -> ?initial:int array -> int array -> Replay.outcome
(** [replay ~assoc blocks] simulates OPT on one set.  [initial] follows
    {!Replay}: default blocks [0 .. assoc-1] in ways [0 .. assoc-1],
    [[||]] for a cold set (cold misses fill the lowest invalid way, as
    everywhere else).  O(len × assoc) time, O(len + universe) space. *)

val hit_rate : assoc:int -> ?initial:int array -> int array -> float
