(* Trace replay through policies and learned automata.

   One cache set, [Cache_set.access] / [Cache_level.fill] semantics.  The
   three paths (concrete policy, explicit Mealy machine, compiled
   machine) share the set-bookkeeping shape so their hit/miss streams are
   byte-identical by construction; the differential tests in
   test_workload keep them that way. *)

module Mealy = Cq_automata.Mealy
module Types = Cq_policy.Types
module Policy = Cq_policy.Policy
module Instance = Cq_policy.Instance

type outcome = { hits : int; misses : int; stream : Bytes.t }

let outcome_of_stream stream =
  let hits = ref 0 in
  Bytes.iter (fun c -> if c = '\001' then incr hits) stream;
  { hits = !hits; misses = Bytes.length stream - !hits; stream }

let hit_rate o =
  let n = o.hits + o.misses in
  if n = 0 then 0.0 else float_of_int o.hits /. float_of_int n

(* Shared set bookkeeping: resident tags per way plus an O(1) reverse map
   block -> way (-1 when absent). *)
let init_set ~assoc ~initial blocks =
  let tags =
    match initial with
    | None -> Array.init assoc (fun w -> w)
    | Some init ->
        if Array.length init > assoc then
          invalid_arg "Replay: initial content larger than assoc";
        Array.init assoc (fun w ->
            if w < Array.length init then init.(w) else -1)
  in
  let max_tag = Array.fold_left max (-1) tags in
  let max_blk = Array.fold_left max max_tag blocks in
  Array.iter
    (fun b -> if b < 0 then invalid_arg "Replay: negative block id")
    blocks;
  let way_of = Array.make (max_blk + 1) (-1) in
  Array.iteri (fun w tag -> if tag >= 0 then way_of.(tag) <- w) tags;
  (tags, way_of)

let lowest_invalid tags assoc =
  let invalid = ref (-1) in
  (try
     for v = 0 to assoc - 1 do
       if tags.(v) < 0 then begin
         invalid := v;
         raise Exit
       end
     done
   with Exit -> ());
  !invalid

let policy ?initial ?fill_touch p blocks =
  let inst = Instance.create p in
  outcome_of_stream (Instance.replay inst ?initial ?fill_touch blocks)

(* Explicit-machine replay via Mealy.step: the slow reference path the
   compiled replayer is diffed against. *)
let machine ?initial ?(fill_touch = true) m blocks =
  let assoc = Mealy.n_inputs m - 1 in
  if assoc < 1 then invalid_arg "Replay.machine: machine has no Evct input";
  let tags, way_of = init_set ~assoc ~initial blocks in
  let evct = assoc in
  let state = ref (Mealy.init m) in
  let n = Array.length blocks in
  let stream = Bytes.make n '\000' in
  for j = 0 to n - 1 do
    let b = blocks.(j) in
    let w = way_of.(b) in
    if w >= 0 then begin
      let s', _ = Mealy.step m !state w in
      state := s';
      Bytes.unsafe_set stream j '\001'
    end
    else begin
      let inv = lowest_invalid tags assoc in
      let victim =
        if inv >= 0 then begin
          if fill_touch then begin
            let s', _ = Mealy.step m !state inv in
            state := s'
          end;
          inv
        end
        else
          let s', out = Mealy.step m !state evct in
          state := s';
          match out with
          | Some v ->
              if v < 0 || v >= assoc then
                invalid_arg "Replay.machine: victim out of range";
              v
          | None -> invalid_arg "Replay.machine: machine emitted ⊥ on Evct"
      in
      let old = tags.(victim) in
      if old >= 0 then way_of.(old) <- -1;
      tags.(victim) <- b;
      way_of.(b) <- victim
    end
  done;
  outcome_of_stream stream

(* --- compiled replay and miss attribution ----------------------------- *)

type attribution = {
  attr_states : int;
  state_hits : int array;
  state_misses : int array;
  victims : int array;
}

let attribution c =
  let n = Mealy.compiled_n_states c in
  let assoc = Mealy.compiled_n_inputs c - 1 in
  {
    attr_states = n;
    state_hits = Array.make n 0;
    state_misses = Array.make n 0;
    victims = Array.make (max assoc 1) 0;
  }

(* cq-lint: hot-loop — one iteration per trace access; the throughput
   gate in bench -- workload holds this walk to >= 1M accesses/sec, so
   per-access allocation is a bug. *)
let compiled ?initial ?(fill_touch = true) ?attr c blocks =
  let assoc = Mealy.compiled_n_inputs c - 1 in
  if assoc < 1 then invalid_arg "Replay.compiled: machine has no Evct input";
  (match attr with
  | Some a when a.attr_states <> Mealy.compiled_n_states c ->
      invalid_arg "Replay.compiled: attribution sized for another machine"
  | _ -> ());
  let tags, way_of = init_set ~assoc ~initial blocks in
  let evct = assoc in
  let st = Mealy.stepper c in
  let n = Array.length blocks in
  let stream = Bytes.make n '\000' in
  for j = 0 to n - 1 do
    let b = Array.unsafe_get blocks j in
    let w = Array.unsafe_get way_of b in
    let s = Mealy.stepper_state st in
    if w >= 0 then begin
      ignore (Mealy.stepper_step st w);
      Bytes.unsafe_set stream j '\001';
      match attr with
      | Some a -> Array.unsafe_set a.state_hits s (Array.unsafe_get a.state_hits s + 1)
      | None -> ()
    end
    else begin
      let inv = lowest_invalid tags assoc in
      let victim =
        if inv >= 0 then begin
          if fill_touch then ignore (Mealy.stepper_step st inv);
          inv
        end
        else
          match Mealy.stepper_step st evct with
          | Some v ->
              if v < 0 || v >= assoc then
                invalid_arg "Replay.compiled: victim out of range";
              v
          | None -> invalid_arg "Replay.compiled: machine emitted ⊥ on Evct"
      in
      (match attr with
      | Some a ->
          Array.unsafe_set a.state_misses s (Array.unsafe_get a.state_misses s + 1);
          Array.unsafe_set a.victims victim (Array.unsafe_get a.victims victim + 1)
      | None -> ());
      let old = tags.(victim) in
      if old >= 0 then way_of.(old) <- -1;
      tags.(victim) <- b;
      way_of.(b) <- victim
    end
  done;
  outcome_of_stream stream
(* cq-lint: end hot-loop *)

let top_miss_states a n =
  let rows = ref [] in
  for s = a.attr_states - 1 downto 0 do
    if a.state_misses.(s) > 0 || a.state_hits.(s) > 0 then
      rows := (s, a.state_misses.(s), a.state_hits.(s)) :: !rows
  done;
  let cmp (s1, m1, _) (s2, m2, _) =
    if m1 <> m2 then compare m2 m1 else compare s1 s2
  in
  let sorted = List.sort cmp !rows in
  List.filteri (fun i _ -> i < n) sorted
