(** Atomic whole-file replacement (write temp sibling + fsync + rename) and
    tolerant reads.  Used for learning-session snapshots and benchmark
    result files, which must never be observable half-written. *)

type stage = Create | Write | Fsync | Rename

val stage_to_string : stage -> string

exception Write_error of { path : string; stage : stage; reason : string }
(** The one failure shape of {!write}: which stage failed and the errno
    text.  The temp sibling has been unlinked by the time it is raised. *)

val write : path:string -> string -> unit
(** Replace [path] with [content] atomically: readers observe either the
    previous complete file or the new one.  Any I/O failure — including
    fsync, which is not swallowed — raises {!Write_error} with the temp
    sibling removed.

    Exception: when the ["atomic_file.rename"] fault site is armed (see
    {!Faults}), a simulated crash between the durable temp write and the
    rename raises {!Faults.Injected} and deliberately leaves the temp
    file behind, exactly as a real crash would. *)

val read_opt : path:string -> string option
(** Whole-file read; [None] when the file is missing or unreadable (a
    previous run was interrupted before producing it). *)

val read_exn : path:string -> string
(** As {!read_opt} but raises [Failure] when unreadable. *)
