(** Atomic whole-file replacement (write temp sibling + fsync + rename) and
    tolerant reads.  Used for learning-session snapshots and benchmark
    result files, which must never be observable half-written. *)

val write : path:string -> string -> unit
(** Replace [path] with [content] atomically: readers observe either the
    previous complete file or the new one.  The temp sibling
    ([path ^ ".tmp"]) is removed on failure. *)

val read_opt : path:string -> string option
(** Whole-file read; [None] when the file is missing or unreadable (a
    previous run was interrupted before producing it). *)

val read_exn : path:string -> string
(** As {!read_opt} but raises [Failure] when unreadable. *)
