(* A typed metrics registry: counters, gauges, and fixed log-scale-bucket
   histograms, addressed by name.

   This replaces the ad-hoc stats records that used to live in the cache
   oracle, the membership oracle, the CacheQuery frontend/backend and the
   domain pool: those records now hold registry-backed handles, so every
   legacy report field *is* a view over a named metric and one registry
   snapshot shows the whole pipeline's traffic at once.

   Counters are [Atomic.t]-backed: pool workers increment shared counters
   from several domains (context poisonings, salvage retries), and a plain
   [mutable int] would silently lose updates under that race.  Gauges and
   histograms are only ever touched from the coordinating domain, so they
   stay plain mutable state.

   Registration is idempotent by name: asking twice for the same counter
   returns the same handle (that is what lets several pipeline layers
   share one registry), but asking for an existing name with a different
   metric kind — or a histogram with a different bucket shape — is a
   programming error and raises [Invalid_argument]. *)

type counter = { c_name : string; v : int Atomic.t }

type gauge = { g_name : string; mutable g : float }

(* Log-scale buckets: bucket 0 holds values <= [start]; bucket i holds
   values in (start * base^(i-1), start * base^i]; the last bucket is
   unbounded above.  Fixed shape, so histograms merge bucket-wise. *)
type histogram = {
  h_name : string;
  h_start : float;
  h_base : float;
  counts : int array;
  mutable h_sum : float;
  mutable h_count : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let counter t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Counter c) -> c
      | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Metrics: %S is already registered with a different kind \
                (wanted counter)"
               name)
      | None ->
          let c = { c_name = name; v = Atomic.make 0 } in
          Hashtbl.add t.tbl name (Counter c); (* cq-lint: allow hashtbl-add: find_opt miss *)
          c)

let gauge t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Gauge g) -> g
      | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Metrics: %S is already registered with a different kind \
                (wanted gauge)"
               name)
      | None ->
          let g = { g_name = name; g = 0. } in
          Hashtbl.add t.tbl name (Gauge g); (* cq-lint: allow hashtbl-add: find_opt miss *)
          g)

let default_buckets = 32

let histogram ?(buckets = default_buckets) ?(base = 2.0) ?(start = 1.0) t name =
  if buckets < 2 then invalid_arg "Metrics.histogram: buckets must be >= 2";
  if base <= 1.0 then invalid_arg "Metrics.histogram: base must be > 1";
  if start <= 0.0 then invalid_arg "Metrics.histogram: start must be > 0";
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Histogram h) ->
          if
            Array.length h.counts <> buckets
            || h.h_base <> base || h.h_start <> start
          then
            invalid_arg
              (Printf.sprintf
                 "Metrics: histogram %S re-registered with a different \
                  bucket shape"
                 name)
          else h
      | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Metrics: %S is already registered with a different kind \
                (wanted histogram)"
               name)
      | None ->
          let h =
            {
              h_name = name;
              h_start = start;
              h_base = base;
              counts = Array.make buckets 0;
              h_sum = 0.;
              h_count = 0;
            }
          in
          Hashtbl.add t.tbl name (Histogram h); (* cq-lint: allow hashtbl-add: find_opt miss *)
          h)

(* --- counters --------------------------------------------------------- *)

let add c n = ignore (Atomic.fetch_and_add c.v n)
let incr c = add c 1
let value c = Atomic.get c.v
let counter_name c = c.c_name

(* --- gauges ----------------------------------------------------------- *)

let set g x = g.g <- x
let gauge_value g = g.g
let gauge_name g = g.g_name

(* --- histograms ------------------------------------------------------- *)

(* Index of the bucket receiving [x].  Values at exactly an upper bound
   land in that bucket (half-open on the left); non-positive values and
   NaN land in bucket 0 rather than being dropped, so [h_count] always
   equals the number of [observe] calls. *)
let bucket_index h x =
  if not (x > h.h_start) then 0
  else
    let i = int_of_float (ceil (log (x /. h.h_start) /. log h.h_base)) in
    (* fp round-off near an exact boundary can land one bucket high *)
    let i =
      if i > 0 && x <= h.h_start *. (h.h_base ** float_of_int (i - 1)) then
        i - 1
      else i
    in
    min (Array.length h.counts - 1) (max 1 i)

let observe h x =
  let i = bucket_index h x in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_sum <- h.h_sum +. x;
  h.h_count <- h.h_count + 1

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_name h = h.h_name
let bucket_counts h = Array.copy h.counts

(* Upper bound of bucket [i]; the last bucket has none. *)
let bucket_upper_bound h i =
  if i < 0 || i >= Array.length h.counts then
    invalid_arg "Metrics.bucket_upper_bound: index out of range"
  else if i = Array.length h.counts - 1 then None
  else Some (h.h_start *. (h.h_base ** float_of_int i))

let merge_histogram ~into src =
  if
    Array.length into.counts <> Array.length src.counts
    || into.h_base <> src.h_base || into.h_start <> src.h_start
  then invalid_arg "Metrics.merge_histogram: bucket shapes differ";
  Array.iteri (fun i n -> into.counts.(i) <- into.counts.(i) + n) src.counts;
  into.h_sum <- into.h_sum +. src.h_sum;
  into.h_count <- into.h_count + src.h_count

(* --- snapshot and export ---------------------------------------------- *)

type histogram_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_buckets : (float option * int) array; (* (upper bound, count) *)
}

type value_snapshot =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_snapshot

let snapshot t =
  let items =
    with_lock t (fun () ->
        Hashtbl.fold
          (fun name m acc ->
            let v =
              match m with
              | Counter c -> Counter_value (value c)
              | Gauge g -> Gauge_value g.g
              | Histogram h ->
                  Histogram_value
                    {
                      hs_count = h.h_count;
                      hs_sum = h.h_sum;
                      hs_buckets =
                        Array.mapi
                          (fun i n -> (bucket_upper_bound h i, n))
                          h.counts;
                    }
            in
            (name, v) :: acc)
          t.tbl [])
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) items

(* --- JSON (hand-rolled; the repo carries no JSON dependency) ----------- *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* JSON has no NaN/Infinity literals. *)
let json_float x =
  if Float.is_nan x then "0"
  else if x = Float.infinity then "1e308"
  else if x = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%.17g" x

let add_json_value buf = function
  | Counter_value n -> Buffer.add_string buf (string_of_int n)
  | Gauge_value x -> Buffer.add_string buf (json_float x)
  | Histogram_value h ->
      Buffer.add_string buf
        (Printf.sprintf "{\"count\":%d,\"sum\":%s,\"buckets\":[" h.hs_count
           (json_float h.hs_sum));
      Array.iteri
        (fun i (ub, n) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (match ub with
            | Some ub -> Printf.sprintf "{\"le\":%s,\"n\":%d}" (json_float ub) n
            | None -> Printf.sprintf "{\"le\":null,\"n\":%d}" n))
        h.hs_buckets;
      Buffer.add_string buf "]}"

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "  ";
      Buffer.add_string buf (json_string name);
      Buffer.add_string buf ": ";
      add_json_value buf v)
    (snapshot t);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let write_json ~path t = Atomic_file.write ~path (to_json t)
