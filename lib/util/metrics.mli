(** A typed metrics registry: counters, gauges, and fixed log-scale-bucket
    histograms, addressed by name.

    One registry can be shared across every pipeline layer (backend,
    frontend, Polca, the learner, the domain pool): registration is
    idempotent by name, so a layer asking for an already-registered
    metric receives the existing handle.  Asking for an existing name
    with a different metric kind — or a histogram with a different
    bucket shape — raises [Invalid_argument].

    Counters are atomic (pool workers increment shared counters from
    several domains); gauges and histograms are single-domain mutable
    state. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Register (or look up) the counter [name]. *)

val gauge : t -> string -> gauge

val histogram :
  ?buckets:int -> ?base:float -> ?start:float -> t -> string -> histogram
(** Register (or look up) a histogram with [buckets] (default 32)
    log-scale buckets: bucket 0 holds values [<= start] (default 1.0),
    bucket [i] holds values in [(start*base^(i-1), start*base^i]]
    (default base 2.0), and the last bucket is unbounded above. *)

(** {2 Counters} *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

(** {2 Gauges} *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

(** {2 Histograms} *)

val observe : histogram -> float -> unit
(** Record one observation.  Non-positive and NaN values land in bucket 0
    (never dropped), so [hist_count] always equals the number of calls. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_name : histogram -> string

val bucket_counts : histogram -> int array

val bucket_upper_bound : histogram -> int -> float option
(** Upper bound of bucket [i]; [None] for the (unbounded) last bucket.
    Raises [Invalid_argument] when [i] is out of range. *)

val merge_histogram : into:histogram -> histogram -> unit
(** Bucket-wise merge.  Raises [Invalid_argument] when the shapes
    (bucket count, base, start) differ. *)

(** {2 Snapshot and export} *)

type histogram_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_buckets : (float option * int) array;  (** (upper bound, count) *)
}

type value_snapshot =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_snapshot

val snapshot : t -> (string * value_snapshot) list
(** Every registered metric with its current value, sorted by name. *)

val to_json : t -> string
(** The registry as one JSON object (hand-rolled; the repo carries no
    JSON dependency), keys sorted. *)

val write_json : path:string -> t -> unit
(** [to_json] through {!Atomic_file.write}. *)

val json_string : string -> string
(** Quote and escape [s] as a JSON string literal (shared with the
    trace exporters). *)

val json_float : float -> string
(** Render a float as a JSON number ([nan]/[inf] are clamped: JSON has
    no literals for them). *)
