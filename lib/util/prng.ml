(* Deterministic pseudo-random number generation based on splitmix64.

   Everything in this repository that needs randomness (timing jitter in the
   hardware simulator, random-walk equivalence testing, property-based test
   generators with fixed seeds) goes through this module so that whole
   experiments are reproducible from a single seed. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let of_int seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits62 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits62 t in
    let v = r mod bound in
    if r - v > (max_int lsr 1) - bound then go () else v
  in
  go ()

let float t =
  (* 53 uniform bits mapped to [0, 1). *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int r /. 9007199254740992.0

let bool t p = float t < p

(* Box-Muller; one value per call is plenty for jitter modelling. *)
let gaussian t ~mu ~sigma =
  let u1 = max (float t) 1e-12 in
  let u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let split t = create (next_int64 t)

(* Capture the current stream position; the returned thunk rewinds to it.
   Used by the hardware simulator's state checkpoints. *)
let checkpoint t =
  let saved = t.state in
  fun () -> t.state <- saved

let shuffle_in_place t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t lst =
  match lst with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth lst (int t (List.length lst))
