/* Free-space probe for the daemon's health verb.  The snapshot spill
   logic wants to report disk headroom before a multi-hour learn starts
   writing snapshots, and OCaml's stdlib has no statvfs binding.  Uses
   f_bavail (blocks available to unprivileged callers), not f_bfree:
   the daemon does not run as root, so root-reserved blocks are not
   headroom it can use. */

#include <errno.h>
#include <string.h>
#include <sys/statvfs.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

CAMLprim value cq_disk_free_bytes(value vpath)
{
  CAMLparam1(vpath);
  struct statvfs st;
  char path[4096];
  int rc;
  size_t len = caml_string_length(vpath);
  if (len >= sizeof(path))
    caml_invalid_argument("Disk.free_bytes: path too long");
  memcpy(path, String_val(vpath), len);
  path[len] = '\0';
  caml_release_runtime_system();
  rc = statvfs(path, &st);
  caml_acquire_runtime_system();
  if (rc != 0)
    caml_failwith("statvfs");
  CAMLreturn(caml_copy_int64((int64_t)st.f_bavail * (int64_t)st.f_frsize));
}
