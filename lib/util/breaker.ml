(* Circuit breaker.

   The daemon sits in front of a hardware backend that can go bad as a
   unit — a wedged interference channel, a noise storm — in which case
   every queued learn would burn its full retry budget discovering the
   same outage, and the gate queue collapses under work that cannot
   succeed.  The breaker converts that into fast, typed rejection:
   after [failure_threshold] consecutive failures it opens, callers get
   an immediate "degraded" answer instead of a slot in a doomed queue,
   and after [cooldown] a single probe call is let through (half-open)
   to test whether the backend healed.

   The clock is injectable (monotonic seconds) so tests drive the
   cooldown with a fake clock instead of sleeping. *)

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type t = {
  m : Mutex.t;
  clock : unit -> float;
  failure_threshold : int;
  cooldown : float;
  mutable st : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable probing : bool; (* a half-open probe is in flight *)
  mutable trips : int;
  mutable rejections : int;
}

let create ?(clock = Clock.mono) ?(failure_threshold = 5) ?(cooldown = 2.0) ()
    =
  if failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold must be >= 1";
  if cooldown < 0.0 then invalid_arg "Breaker.create: cooldown must be >= 0";
  {
    m = Mutex.create ();
    clock;
    failure_threshold;
    cooldown;
    st = Closed;
    consecutive_failures = 0;
    opened_at = 0.0;
    probing = false;
    trips = 0;
    rejections = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let state t = locked t (fun () -> t.st)

let allow t =
  locked t (fun () ->
      match t.st with
      | Closed -> true
      | Open ->
          if t.clock () -. t.opened_at >= t.cooldown then begin
            (* Cooldown elapsed: admit exactly one probe. *)
            t.st <- Half_open;
            t.probing <- true;
            true
          end
          else begin
            t.rejections <- t.rejections + 1;
            false
          end
      | Half_open ->
          if t.probing then begin
            (* Someone else holds the probe slot; keep shedding. *)
            t.rejections <- t.rejections + 1;
            false
          end
          else begin
            t.probing <- true;
            true
          end)

let success t =
  locked t (fun () ->
      t.consecutive_failures <- 0;
      t.probing <- false;
      t.st <- Closed)

let failure t =
  locked t (fun () ->
      match t.st with
      | Half_open ->
          (* The probe failed: back to open, restart the cooldown. *)
          t.probing <- false;
          t.st <- Open;
          t.opened_at <- t.clock ()
      | Open -> ()
      | Closed ->
          t.consecutive_failures <- t.consecutive_failures + 1;
          if t.consecutive_failures >= t.failure_threshold then begin
            t.st <- Open;
            t.opened_at <- t.clock ();
            t.trips <- t.trips + 1
          end)

(* The call finished without saying anything about backend health (it was
   cancelled, or failed for reasons the backend cannot answer for):
   release a held half-open probe slot so the next caller can probe. *)
let abandon t = locked t (fun () -> t.probing <- false)

let trips t = locked t (fun () -> t.trips)
let rejections t = locked t (fun () -> t.rejections)

let reset t =
  locked t (fun () ->
      t.st <- Closed;
      t.consecutive_failures <- 0;
      t.probing <- false)
