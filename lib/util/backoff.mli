(** Bounded retry with jittered-exponential backoff.

    One loop for the stack's three retry sites: the Hardware
    supervisor's transient retries, the Pool's sequential retry rounds
    (both use {!immediate} — retrying a local simulator gains nothing by
    waiting), and the service client's reconnect loop (decorrelated
    jitter, so a daemon restart doesn't synchronise every client into a
    retry storm).  Delays come from a seeded PRNG and go through an
    injectable [sleep], so tests assert the exact schedule with a
    recording clock. *)

type jitter =
  | No_jitter  (** pure exponential: [base * multiplier^k], capped *)
  | Full  (** uniform in [0, exponential], capped *)
  | Decorrelated  (** AWS-style: uniform in [base, 3 * previous], capped *)

type policy = {
  base : float;
  cap : float;
  multiplier : float;
  jitter : jitter;
}

val policy :
  ?base:float ->
  ?cap:float ->
  ?multiplier:float ->
  ?jitter:jitter ->
  unit ->
  policy
(** Defaults: [base = 0.05], [cap = 5.0], [multiplier = 2.0],
    [jitter = Decorrelated].  Raises [Invalid_argument] on a negative
    base, a cap below base, or a multiplier below 1. *)

val default : policy

val immediate : policy
(** Zero-delay policy: the retry structure without the sleeping. *)

(** {2 Delay sequences} *)

type t

val start : ?seed:int -> policy -> t
val next : t -> float
(** The next delay in seconds, advancing the sequence. *)

val reset : t -> unit
(** Restart the sequence from scratch — attempt counter, decorrelated
    state, and the PRNG stream: after [reset] the delays replay exactly
    as they did from {!start}. *)

(** {2 The retry loop} *)

val retry :
  ?sleep:(float -> unit) ->
  ?on_wait:(attempt:int -> delay:float -> unit) ->
  ?seed:int ->
  policy:policy ->
  attempts:int ->
  init:'s ->
  (attempt:int -> 's -> [ `Done of 'a | `Retry of 's ]) ->
  ('a, 's) result
(** Run [f ~attempt state] up to [attempts] times (1-based), sleeping a
    policy delay between attempts.  [`Retry s'] carries state into the
    next attempt (a resume snapshot, an error to report); [Error s] is
    the final carried state when attempts are exhausted.  [sleep]
    defaults to [Unix.sleepf]; zero delays skip it entirely.  [on_wait]
    observes each scheduled delay (retry counters, logging). *)
