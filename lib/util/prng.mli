(** Deterministic splitmix64 pseudo-random number generator.

    All stochastic behaviour in the repository (simulator timing jitter,
    random-walk equivalence testing, workload generation) is driven by this
    generator so that experiments replay exactly from a seed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] when
    [bound <= 0]. Unbiased (rejection sampling). *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** One draw from a normal distribution (Box–Muller). *)

val split : t -> t
(** Derive an independent generator (for parallel subsystems). *)

val checkpoint : t -> unit -> unit
(** [checkpoint t] captures the current stream position; calling the
    returned thunk rewinds [t] to it (simulator state snapshots). *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)
