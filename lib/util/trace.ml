(* Structured tracing: cheap hierarchical spans over the whole pipeline
   (learn → polca → frontend → backend), recorded into a bounded in-memory
   ring buffer and exported as JSONL or Chrome trace_event JSON (loadable
   in chrome://tracing and Perfetto).

   Disabled is the default, and the disabled path is a strict no-op: one
   read of a bool flag, no allocation.  Hot paths that want to attach
   arguments guard on [enabled ()] before building the argument list, so
   a run without tracing pays nothing — the engine benchmark asserts its
   access counts are identical with the module compiled in.

   The sink is global rather than threaded through every layer: spans are
   diagnostics, not results, and a per-layer handle would force every
   constructor in the pipeline to grow a parameter.  Recording takes a
   mutex — pool workers trace from their own domains — and span depth is
   tracked per domain (DLS), so nesting is correct under the domain pool.

   Timestamps come from [Unix.gettimeofday] (microseconds): the stdlib
   exposes no monotonic clock and the util library stays free of
   third-party dependencies.  Within a trace that clock is monotonic
   enough for profiling; spans additionally carry their nesting depth, so
   ordering never depends on timer resolution. *)

type kind = Span | Instant | Counter_sample

type event = {
  kind : kind;
  name : string;
  cat : string;
  ts_us : float; (* start time, microseconds *)
  dur_us : float; (* 0 for instants and counter samples *)
  tid : int; (* domain id *)
  depth : int; (* span nesting depth at record time *)
  args : (string * string) list;
  value : float; (* Counter_sample only *)
}

type sink = {
  buf : event option array;
  mutable head : int; (* next write position *)
  mutable stored : int; (* events currently in the ring *)
  mutable dropped : int; (* events overwritten after overflow *)
  mutable total : int; (* events ever recorded *)
  lock : Mutex.t;
}

let enabled_flag = ref false
let sink : sink option ref = ref None

let default_capacity = 65_536

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.enable: capacity must be >= 1";
  sink :=
    Some
      {
        buf = Array.make capacity None;
        head = 0;
        stored = 0;
        dropped = 0;
        total = 0;
        lock = Mutex.create ();
      };
  enabled_flag := true

let disable () =
  enabled_flag := false;
  sink := None

let enabled () = !enabled_flag

let now_us () = Clock.now () *. 1e6

(* Per-domain span nesting depth.  Only touched when tracing is enabled. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let record ev =
  match !sink with
  | None -> ()
  | Some s ->
      Mutex.lock s.lock;
      let cap = Array.length s.buf in
      if s.stored = cap then s.dropped <- s.dropped + 1
      else s.stored <- s.stored + 1;
      s.buf.(s.head) <- Some ev;
      s.head <- (s.head + 1) mod cap;
      s.total <- s.total + 1;
      Mutex.unlock s.lock

let domain_id () = (Domain.self () :> int)

let with_span ?(cat = "") ?(args = []) name f =
  if not !enabled_flag then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        depth := d;
        record
          {
            kind = Span;
            name;
            cat;
            ts_us = t0;
            dur_us = now_us () -. t0;
            tid = domain_id ();
            depth = d;
            args;
            value = 0.;
          })
      f
  end

let instant ?(cat = "") ?(args = []) name =
  if !enabled_flag then
    record
      {
        kind = Instant;
        name;
        cat;
        ts_us = now_us ();
        dur_us = 0.;
        tid = domain_id ();
        depth = !(Domain.DLS.get depth_key);
        args;
        value = 0.;
      }

let counter ?(cat = "") name value =
  if !enabled_flag then
    record
      {
        kind = Counter_sample;
        name;
        cat;
        ts_us = now_us ();
        dur_us = 0.;
        tid = domain_id ();
        depth = !(Domain.DLS.get depth_key);
        args = [];
        value;
      }

(* Ring contents in insertion order (oldest surviving event first). *)
let events () =
  match !sink with
  | None -> []
  | Some s ->
      Mutex.lock s.lock;
      let cap = Array.length s.buf in
      let start = (s.head - s.stored + cap) mod cap in
      let out = ref [] in
      for i = s.stored - 1 downto 0 do
        match s.buf.((start + i) mod cap) with
        | Some ev -> out := ev :: !out
        | None -> ()
      done;
      Mutex.unlock s.lock;
      !out

let recorded () = match !sink with None -> 0 | Some s -> s.total
let dropped () = match !sink with None -> 0 | Some s -> s.dropped

let clear () =
  match !sink with
  | None -> ()
  | Some s ->
      Mutex.lock s.lock;
      Array.fill s.buf 0 (Array.length s.buf) None;
      s.head <- 0;
      s.stored <- 0;
      s.dropped <- 0;
      s.total <- 0;
      Mutex.unlock s.lock

(* --- exporters -------------------------------------------------------- *)

let add_args_json buf args =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Metrics.json_string k);
      Buffer.add_char buf ':';
      Buffer.add_string buf (Metrics.json_string v))
    args;
  Buffer.add_char buf '}'

(* One event as a Chrome trace_event object.  Spans are complete events
   (ph "X"), instants ph "i" (thread scope), counter samples ph "C". *)
let add_event_json buf ev =
  Buffer.add_string buf "{\"name\":";
  Buffer.add_string buf (Metrics.json_string ev.name);
  Buffer.add_string buf ",\"cat\":";
  Buffer.add_string buf
    (Metrics.json_string (if ev.cat = "" then "cq" else ev.cat));
  (match ev.kind with
  | Span ->
      Buffer.add_string buf ",\"ph\":\"X\",\"dur\":";
      Buffer.add_string buf (Metrics.json_float ev.dur_us)
  | Instant -> Buffer.add_string buf ",\"ph\":\"i\",\"s\":\"t\""
  | Counter_sample -> Buffer.add_string buf ",\"ph\":\"C\"");
  Buffer.add_string buf ",\"ts\":";
  Buffer.add_string buf (Metrics.json_float ev.ts_us);
  Buffer.add_string buf ",\"pid\":1,\"tid\":";
  Buffer.add_string buf (string_of_int ev.tid);
  (match ev.kind with
  | Counter_sample ->
      Buffer.add_string buf ",\"args\":{\"value\":";
      Buffer.add_string buf (Metrics.json_float ev.value);
      Buffer.add_char buf '}'
  | Span | Instant ->
      Buffer.add_string buf ",\"args\":";
      add_args_json buf (("depth", string_of_int ev.depth) :: ev.args));
  Buffer.add_char buf '}'

let to_chrome_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_event_json buf ev)
    (events ());
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let to_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      add_event_json buf ev;
      Buffer.add_char buf '\n')
    (events ());
  Buffer.contents buf

let export_chrome ~path () = Atomic_file.write ~path (to_chrome_json ())
let export_jsonl ~path () = Atomic_file.write ~path (to_jsonl ())
