(* Timing helpers and the paper's "H h M m S s" duration format
   (cf. Table 2 / Table 5).

   Two clocks, two jobs:
   - [now] is wall time, for timestamps humans and trace viewers correlate
     with the outside world (snapshot metadata, trace events).
   - [mono] is CLOCK_MONOTONIC, for durations and deadlines.  Wall time
     steps (NTP, date(1)); a stepped wall clock fires or starves every
     deadline at once — fatal for the long-running daemon.  Monotonic time
     only ever moves forward, at ~1 s/s. *)

(* cq-lint: allow wall-clock: the designated wall-clock read, timestamps only *)
let wall () = Unix.gettimeofday ()

(* Tests mock an NTP step by skewing the wall clock; the monotonic clock
   (and therefore every deadline) must not notice. *)
let test_skew = ref 0.0
let set_wall_skew_for_tests s = test_skew := s
let now () = wall () +. !test_skew

external mono : unit -> float = "cq_clock_monotonic"

let time f =
  let t0 = mono () in
  let result = f () in
  (result, mono () -. t0)

(* Deadlines: every layer that bounds work by time (Synth's search, the
   learning supervisor, reset discovery, the daemon's session budgets)
   shares this one representation, so "remaining budget" arithmetic and
   expiry checks are written once.  The absolute instant is monotonic. *)

type deadline = { at : float option (* absolute monotonic seconds *) }

let no_deadline = { at = None }

let after seconds =
  if seconds < 0.0 then invalid_arg "Clock.after: negative deadline";
  if seconds = infinity then no_deadline else { at = Some (mono () +. seconds) }

let deadline_of = function None -> no_deadline | Some s -> after s

let expired d = match d.at with None -> false | Some at -> mono () > at

let remaining d =
  match d.at with
  | None -> None
  | Some at -> Some (Float.max 0.0 (at -. mono ()))

let remaining_or d default =
  match remaining d with None -> default | Some s -> s

let pp_duration ppf seconds =
  if seconds < 0.0 then Fmt.string ppf "-"
  else if seconds >= 9e15 then
    (* Beyond Int64 centisecond range; carry cannot matter at this
       magnitude. *)
    Fmt.pf ppf "%.0f s" seconds
  else begin
    (* Round to the printed precision (centiseconds) *before* splitting
       off hours and minutes: truncating first shows 3599.999 s as
       "0 h 59 m 60.00 s" instead of "1 h 0 m 0.00 s". *)
    let cs = Int64.of_float (Float.round (seconds *. 100.0)) in
    let h = Int64.div cs 360_000L and rem = Int64.rem cs 360_000L in
    let m = Int64.div rem 6_000L and s = Int64.rem rem 6_000L in
    Fmt.pf ppf "%Ld h %Ld m %.2f s" h m (Int64.to_float s /. 100.0)
  end

let to_string seconds = Fmt.str "%a" pp_duration seconds
