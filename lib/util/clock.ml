(* Wall-clock timing helpers and the paper's "H h M m S s" duration format
   (cf. Table 2 / Table 5). *)

(* cq-lint: allow wall-clock: this is the designated read everyone else routes through *)
let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)

(* Deadlines: every layer that bounds wall-clock work (Synth's search, the
   learning supervisor, reset discovery) shares this one representation, so
   "remaining budget" arithmetic and expiry checks are written once. *)

type deadline = { at : float option (* absolute epoch seconds *) }

let no_deadline = { at = None }

let after seconds =
  if seconds < 0.0 then invalid_arg "Clock.after: negative deadline";
  if seconds = infinity then no_deadline else { at = Some (now () +. seconds) }

let deadline_of = function None -> no_deadline | Some s -> after s

let expired d = match d.at with None -> false | Some at -> now () > at

let remaining d =
  match d.at with None -> None | Some at -> Some (Float.max 0.0 (at -. now ()))

let remaining_or d default =
  match remaining d with None -> default | Some s -> s

let pp_duration ppf seconds =
  if seconds < 0.0 then Fmt.string ppf "-"
  else begin
    let h = int_of_float (seconds /. 3600.0) in
    let rem = seconds -. (float_of_int h *. 3600.0) in
    let m = int_of_float (rem /. 60.0) in
    let s = rem -. (float_of_int m *. 60.0) in
    Fmt.pf ppf "%d h %d m %.2f s" h m s
  end

let to_string seconds = Fmt.str "%a" pp_duration seconds
