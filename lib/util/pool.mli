(** A pool of worker domains for fanning independent queries across cores.

    Each worker owns a private context built by a factory thunk, so no
    mutable state is shared between domains.  Deterministic workloads
    produce the same results as sequential execution (asserted by the
    engine tests). *)

type 'ctx t

val create : ?size:int -> factory:(unit -> 'ctx) -> unit -> 'ctx t
(** [create ~factory ()] builds a pool whose workers each obtain their own
    context via [factory].  Contexts are built lazily, one per worker
    slot, and reused across {!map} calls — a worker oracle keeps its memo
    caches warm from one round to the next.  [size] defaults to
    [Domain.recommended_domain_count ()]; it must be [>= 1].  A pool of
    size 1 runs everything in the calling domain. *)

val size : 'ctx t -> int

val map : 'ctx t -> ('ctx -> 'a -> 'b) -> 'a array -> 'b array
(** [map t f items] applies [f ctx item] to every item, fanning the work
    across [min (size t) (Array.length items)] domains.  Result order
    matches item order.  If any application raises, the first exception is
    re-raised in the calling domain after all workers have stopped. *)

val map_list : 'ctx t -> ('ctx -> 'a -> 'b) -> 'a list -> 'b list
