(** A pool of worker domains for fanning independent queries across cores.

    Each worker owns a private context built by a factory thunk, so no
    mutable state is shared between domains.  Deterministic workloads
    produce the same results as sequential execution (asserted by the
    engine tests).

    The pool degrades gracefully: a task that raises poisons only its
    worker's context (dropped and rebuilt from the factory), completed
    results are salvaged, and failed tasks are retried — first by the
    surviving workers' drain, then sequentially in the calling domain.
    Only a task that fails every attempt aborts the batch. *)

exception Worker_lost of string
(** A task failed its initial attempt and every bounded retry; the message
    carries the task index, attempt count, and the last exception.  This
    is the [Worker_lost] leg of the learning supervisor's failure
    taxonomy. *)

type stats = {
  worker_restarts : Metrics.counter;
      (** poisoned contexts dropped (and lazily rebuilt) after a task
          exception *)
  task_retries : Metrics.counter;  (** task re-executions after failures *)
  salvaged : Metrics.counter;
      (** completed results kept from batches that also saw failures
          (previously all were discarded) *)
  sequential_fallbacks : Metrics.counter;
      (** retry passes executed sequentially in the calling domain *)
  tasks : Metrics.counter;
      (** tasks completed — reconciled once per task, never per attempt:
          a retried salvaged slot does not count its task twice *)
}

val fresh_stats : ?registry:Metrics.t -> ?prefix:string -> unit -> stats
(** Stats backed by named counters (["<prefix>.worker_restarts"], ...,
    default prefix ["pool"]) in [registry] (default: a fresh private
    registry). *)

type 'ctx t

val create :
  ?size:int ->
  ?task_retries:int ->
  ?stats:stats ->
  factory:(unit -> 'ctx) ->
  unit ->
  'ctx t
(** [create ~factory ()] builds a pool whose workers each obtain their own
    context via [factory].  Contexts are built lazily, one per worker
    slot, and reused across {!map} calls — a worker oracle keeps its memo
    caches warm from one round to the next.  [size] defaults to
    [Domain.recommended_domain_count ()]; it must be [>= 1].  A pool of
    size 1 runs everything in the calling domain.  [task_retries]
    (default 2) bounds the sequential retry rounds for failed tasks;
    [stats] receives the restart/retry accounting. *)

val size : 'ctx t -> int
val stats : 'ctx t -> stats

val map : 'ctx t -> ('ctx -> 'a -> 'b) -> 'a array -> 'b array
(** [map t f items] applies [f ctx item] to every item, fanning the work
    across [min (size t) (Array.length items)] domains.  Result order
    matches item order.  A task that raises is retried (bounded) on a
    rebuilt context while completed results are kept; if it still fails
    after every retry, {!Worker_lost} is raised in the calling domain
    after all workers have stopped. *)

val map_list : 'ctx t -> ('ctx -> 'a -> 'b) -> 'a list -> 'b list
