(** Deterministic, seeded fault injection.

    A registry maps named injection sites to firing schedules.  Call
    sites ask {!fire} ("should this activation fault?") and act on
    [true] — raise [ENOSPC], tear a frame, kill a worker — so a chaos
    run is a pure function of (seed, schedule) and replays exactly.

    {2 Site catalog}

    The sites currently wired through the stack (see DESIGN.md, "Fault
    model & resilience", for the authoritative table):

    - ["atomic_file.write"] — [ENOSPC] while writing the temp sibling
    - ["atomic_file.fsync"] — [EIO] at fsync
    - ["atomic_file.rename"] — simulated crash between temp write and
      rename (the temp file is left behind, as a real crash would)
    - ["frame.write.torn"] — a frame write emits a prefix then fails
    - ["frame.read.stall"] — a bounded stall before reading a payload
    - ["pool.task"] — a pool worker's task raises mid-run
    - ["service.worker.kill"] — a daemon learn worker dies at a probe
    - ["hw.noise.burst"] — a noise burst injected at a backend probe *)

exception Injected of { site : string; detail : string }
(** Raised by {!inject} (and by call sites that have nothing more
    specific to raise) when a site fires. *)

type mode =
  | Nth of int  (** fire exactly on the k-th hit (1-based) *)
  | Every of int  (** fire on every k-th hit *)
  | First of int  (** fire on hits 1..k *)
  | Prob of float  (** fire per hit with probability p, seeded *)
  | Reach of int
      (** fire once, the first time the external measure [n] passed to
          {!fire} reaches k (hits without [~n] never fire) *)

val mode_to_string : mode -> string

type t

val create : ?seed:int -> unit -> t
(** A fresh registry, all sites disarmed.  Each armed site derives its
    own PRNG stream from [seed] and the site name, so arming one site
    never perturbs another's schedule. *)

val arm : t -> ?limit:int -> site:string -> mode -> unit
(** Arm (or re-arm, resetting counters) a site.  [limit] bounds the
    total number of fires.  Raises [Invalid_argument] on a non-positive
    count or a probability outside [0, 1]. *)

val disarm : t -> site:string -> unit

val fire : ?n:int -> t -> string -> bool
(** Record a hit on [site]; [true] when the schedule says this hit
    faults.  [n] is the external measure consulted by [Reach].
    Disarmed sites never fire.  Thread-safe. *)

val inject : ?n:int -> ?detail:string -> t -> string -> unit
(** [fire] and raise {!Injected} when it fires. *)

val hits : t -> string -> int
val fires : t -> string -> int

val counts : t -> (string * int * int) list
(** Every armed site as [(site, hits, fires)], sorted. *)

val total_fires : t -> int

(** {2 Ambient registry}

    Deep seams (the atomic-file writer, the frame codec) cannot thread a
    registry parameter through every caller; they consult the
    process-wide ambient registry.  [None] — the default and the
    production state — makes the check a single load. *)

val set_ambient : t option -> unit
val ambient : unit -> t option
val ambient_fire : ?n:int -> string -> bool
val ambient_inject : ?n:int -> ?detail:string -> string -> unit

val with_ambient : t -> (unit -> 'a) -> 'a
(** Scoped activation: install [t], run, restore the previous registry
    (even on exceptions). *)

(** {2 Schedule specs} *)

val spec_syntax : string

val of_spec : ?seed:int -> string -> (t, string) result
(** Parse a schedule like
    ["atomic_file.fsync:nth=2;frame.write.torn:p=0.05,limit=3"] into an
    armed registry ({!spec_syntax}). *)
