(* Atomic file replacement: write to a sibling temp file, fsync, rename.

   Snapshots of multi-hour learning campaigns and benchmark result files
   must never be observable half-written — a crash between [open] and the
   final [write] would otherwise destroy the previous good copy along with
   the new one.  POSIX [rename] over the destination is atomic, so readers
   see either the old complete file or the new complete file, never a
   torn one. *)

let write ~path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     flush oc;
     (* Push the bytes to stable storage before the rename makes them the
        authoritative copy; a metadata-only crash window would otherwise
        leave a zero-length "snapshot". *)
     (try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ())
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let read_opt ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> Some content
  | exception Sys_error _ -> None

let read_exn ~path =
  match read_opt ~path with
  | Some content -> content
  | None -> failwith (Printf.sprintf "Atomic_file.read_exn: cannot read %s" path)
