(* Atomic file replacement: write to a sibling temp file, fsync, rename.

   Snapshots of multi-hour learning campaigns and benchmark result files
   must never be observable half-written — a crash between [open] and the
   final [write] would otherwise destroy the previous good copy along with
   the new one.  POSIX [rename] over the destination is atomic, so readers
   see either the old complete file or the new complete file, never a
   torn one.

   Failure contract: any I/O failure surfaces as the typed {!Write_error}
   (stage + errno text) with the temp sibling unlinked, so a full disk
   degrades a snapshot instead of littering the state dir with [*.tmp]
   files and killing the learn with a raw [Unix_error].  The fsync
   outcome is part of that contract — a snapshot that never reached
   stable storage must not be reported as written.

   Fault sites (armed via [Faults], inert otherwise):
   - "atomic_file.write"  — ENOSPC while writing the temp sibling
   - "atomic_file.fsync"  — EIO at fsync
   - "atomic_file.rename" — simulated crash between the durable temp
     write and the rename: the temp file is deliberately left behind
     (as a real crash would leave it) and [Faults.Injected] escapes. *)

type stage = Create | Write | Fsync | Rename

let stage_to_string = function
  | Create -> "create"
  | Write -> "write"
  | Fsync -> "fsync"
  | Rename -> "rename"

exception Write_error of { path : string; stage : stage; reason : string }

let () =
  Printexc.register_printer (function
    | Write_error { path; stage; reason } ->
        Some
          (Printf.sprintf "Atomic_file.Write_error(%s at %s: %s)" path
             (stage_to_string stage) reason)
    | _ -> None)

let write ~path content =
  let tmp = path ^ ".tmp" in
  let typed stage reason = raise (Write_error { path; stage; reason }) in
  let oc =
    try open_out_bin tmp with Sys_error reason -> typed Create reason
  in
  let cleanup () =
    close_out_noerr oc;
    try Sys.remove tmp with Sys_error _ -> ()
  in
  (try
     if Faults.ambient_fire "atomic_file.write" then
       raise (Unix.Unix_error (Unix.ENOSPC, "write", tmp));
     output_string oc content;
     flush oc;
     (* Push the bytes to stable storage before the rename makes them the
        authoritative copy; a metadata-only crash window would otherwise
        leave a zero-length "snapshot". *)
     if Faults.ambient_fire "atomic_file.fsync" then
       raise (Unix.Unix_error (Unix.EIO, "fsync", tmp));
     Unix.fsync (Unix.descr_of_out_channel oc)
   with
  | Sys_error reason ->
      cleanup ();
      typed Write reason
  | Unix.Unix_error (e, op, _) ->
      cleanup ();
      typed (if op = "fsync" then Fsync else Write) (Unix.error_message e));
  (try close_out oc
   with Sys_error reason ->
     (try Sys.remove tmp with Sys_error _ -> ());
     typed Write reason);
  (* The crash-simulation point: the temp sibling is durable, the rename
     has not happened.  A real crash here leaves the tmp file; so do we. *)
  Faults.ambient_inject ~detail:"crash between tmp write and rename"
    "atomic_file.rename";
  try Sys.rename tmp path
  with Sys_error reason ->
    (try Sys.remove tmp with Sys_error _ -> ());
    typed Rename reason

let read_opt ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> Some content
  | exception Sys_error _ -> None

let read_exn ~path =
  match read_opt ~path with
  | Some content -> content
  | None -> failwith (Printf.sprintf "Atomic_file.read_exn: cannot read %s" path)
