(** Circuit breaker around a backend that fails as a unit.

    After [failure_threshold] consecutive failures the breaker trips to
    {!Open}: {!allow} answers [false] immediately (load shedding), the
    caller should reply with a typed "degraded" error.  After [cooldown]
    seconds a single probe call is admitted ({!Half_open}); its outcome
    — reported via {!success}/{!failure} — closes or re-opens the
    breaker.  All operations are thread-safe. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type t

val create :
  ?clock:(unit -> float) ->
  ?failure_threshold:int ->
  ?cooldown:float ->
  unit ->
  t
(** [clock] is a monotonic-seconds source (default {!Clock.mono});
    inject a fake one in tests to drive the cooldown without sleeping.
    Defaults: [failure_threshold = 5], [cooldown = 2.0]. *)

val state : t -> state

val allow : t -> bool
(** May a call proceed?  [false] means shed it now.  In the open state,
    the first call after the cooldown elapses is admitted as the
    half-open probe; concurrent callers keep being shed until the probe
    reports. *)

val success : t -> unit
(** Report a successful call: closes the breaker, resets counters. *)

val failure : t -> unit
(** Report a failed call: counts toward the threshold when closed;
    re-opens and restarts the cooldown when half-open. *)

val abandon : t -> unit
(** Report that a call finished without evidence either way (cancelled,
    or failed for reasons the backend cannot answer for): frees a held
    half-open probe slot without changing state. *)

val trips : t -> int
(** Closed→open transitions since creation. *)

val rejections : t -> int
(** Calls shed by {!allow}. *)

val reset : t -> unit
(** Force-close, clearing failure counts (stats are kept). *)
