(** Structured tracing: hierarchical spans recorded into a bounded ring
    buffer, exported as JSONL or Chrome [trace_event] JSON (loadable in
    [chrome://tracing] and Perfetto).

    Tracing is globally off by default, and the disabled path is a strict
    no-op — one bool read, no allocation.  Call sites that build argument
    lists guard on {!enabled} first, so hot paths pay nothing without a
    sink.  Recording is domain-safe (pool workers trace concurrently)
    and span nesting depth is tracked per domain. *)

type kind = Span | Instant | Counter_sample

type event = {
  kind : kind;
  name : string;
  cat : string;
  ts_us : float;  (** start time, microseconds (gettimeofday epoch) *)
  dur_us : float;  (** 0 for instants and counter samples *)
  tid : int;  (** recording domain's id *)
  depth : int;  (** span nesting depth at record time *)
  args : (string * string) list;
  value : float;  (** [Counter_sample] only *)
}

val enable : ?capacity:int -> unit -> unit
(** Install a fresh sink with a ring buffer of [capacity] events
    (default 65536, oldest events overwritten on overflow) and turn
    tracing on. *)

val disable : unit -> unit
val enabled : unit -> bool

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording a span covering its execution.
    The span is recorded (at the depth where it started) even when [f]
    raises.  When tracing is disabled this is exactly [f ()]. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
val counter : ?cat:string -> string -> float -> unit

val events : unit -> event list
(** Ring contents, oldest surviving event first.  [[]] when disabled. *)

val recorded : unit -> int
(** Events ever recorded into the current sink (including overwritten
    ones); 0 when disabled. *)

val dropped : unit -> int
(** Events overwritten after ring overflow; 0 when disabled. *)

val clear : unit -> unit

val to_chrome_json : unit -> string
(** The ring as one Chrome [trace_event] JSON array: spans as complete
    events (ph ["X"]), instants ph ["i"], counter samples ph ["C"]. *)

val to_jsonl : unit -> string
(** The ring as one JSON object per line (same objects as
    {!to_chrome_json}). *)

val export_chrome : path:string -> unit -> unit
val export_jsonl : path:string -> unit -> unit
