(* Signal-aware shutdown for the CLIs and the daemon.

   The observability exports (--trace / --metrics) hang off [at_exit];
   plain [exit] runs them, but a SIGINT/SIGTERM default disposition kills
   the process without unwinding — the files are simply lost.  The CLIs
   install [exit_on_signals] so an interrupted run still flushes; the
   daemon installs [notify_on_signals] instead and drives its own
   graceful path (stop accepting, snapshot live sessions, flush, exit). *)

(* Shell convention: 128 + the *system* signal number.  OCaml's Sys.sig*
   values are runtime-internal and negative, so map the two we handle
   explicitly. *)
let exit_code_of_signal signo =
  if signo = Sys.sigint then 130
  else if signo = Sys.sigterm then 143
  else if signo = Sys.sighup then 129
  else 128

let install signals handler =
  List.iter
    (fun signo ->
      try Sys.set_signal signo (Sys.Signal_handle handler)
      with Invalid_argument _ | Sys_error _ ->
        (* Unsupported on this platform: nothing to flush-proof. *)
        ())
    signals

let default_signals = [ Sys.sigint; Sys.sigterm ]

let exit_on_signals ?(signals = default_signals) () =
  install signals (fun signo -> exit (exit_code_of_signal signo))

let notify_on_signals ?(signals = default_signals) f = install signals f
