(** Disk headroom (statvfs binding). *)

val free_bytes : string -> int64 option
(** Bytes available to an unprivileged writer on the filesystem holding
    [path]; [None] when the path does not exist or statvfs fails. *)
