(* Deterministic fault injection.

   The resilience layer's whole claim — any injected fault either heals
   transparently or fails typed and resumable — is only testable if the
   faults themselves are reproducible.  This registry names every
   injection point in the stack (a "site": the atomic-file fsync, a frame
   write, a learn worker's probe) and drives each from a schedule plus a
   seeded PRNG, so a chaos run is a pure function of (seed, schedule) and
   a failure found in CI replays exactly on a laptop.

   Call sites are passive: they ask [fire t site] ("should this
   activation fault?") and act on [true] — raise ENOSPC, tear the frame,
   kill the worker.  A site that is not armed costs one Hashtbl probe;
   the ambient check for a disabled registry costs one load.  Sites fire
   independently; each derives its PRNG from the registry seed and its
   own name, so arming an extra site never perturbs another site's
   schedule. *)

exception Injected of { site : string; detail : string }

let () =
  Printexc.register_printer (function
    | Injected { site; detail } ->
        Some (Printf.sprintf "Faults.Injected(%s: %s)" site detail)
    | _ -> None)

type mode =
  | Nth of int
  | Every of int
  | First of int
  | Prob of float
  | Reach of int

let mode_to_string = function
  | Nth k -> Printf.sprintf "nth=%d" k
  | Every k -> Printf.sprintf "every=%d" k
  | First k -> Printf.sprintf "first=%d" k
  | Prob p -> Printf.sprintf "p=%g" p
  | Reach k -> Printf.sprintf "reach=%d" k

type site_state = {
  mode : mode;
  limit : int option;
  prng : Prng.t;
  mutable hits : int;
  mutable fires : int;
}

type t = {
  m : Mutex.t;
  seed : int;
  sites : (string, site_state) Hashtbl.t;
}

let create ?(seed = 0) () =
  { m = Mutex.create (); seed; sites = Hashtbl.create 8 }

let validate_mode = function
  | Nth k | Every k | First k | Reach k ->
      if k < 1 then invalid_arg "Faults.arm: schedule count must be >= 1"
  | Prob p ->
      if not (p >= 0.0 && p <= 1.0) then
        invalid_arg "Faults.arm: probability must be in [0, 1]"

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let arm t ?limit ~site mode =
  validate_mode mode;
  (match limit with
  | Some l when l < 0 -> invalid_arg "Faults.arm: limit must be >= 0"
  | _ -> ());
  locked t (fun () ->
      Hashtbl.replace t.sites site
        {
          mode;
          limit;
          (* Site-local stream: independent of arming order and of what
             other sites consumed. *)
          prng = Prng.of_int (t.seed lxor Hashtbl.hash site);
          hits = 0;
          fires = 0;
        })

let disarm t ~site = locked t (fun () -> Hashtbl.remove t.sites site)

let fire ?n t site =
  locked t (fun () ->
      match Hashtbl.find_opt t.sites site with
      | None -> false
      | Some s ->
          s.hits <- s.hits + 1;
          let within_limit =
            match s.limit with None -> true | Some l -> s.fires < l
          in
          let due =
            match s.mode with
            | Nth k -> s.hits = k
            | Every k -> s.hits mod k = 0
            | First k -> s.hits <= k
            | Prob p -> Prng.bool s.prng p
            | Reach k -> (
                (* Threshold on an external measure (a query count): fire
                   once, the first time the measure reaches k. *)
                match n with
                | Some n -> n >= k && s.fires = 0
                | None -> false)
          in
          if due && within_limit then begin
            s.fires <- s.fires + 1;
            true
          end
          else false)

let inject ?n ?(detail = "injected fault") t site =
  if fire ?n t site then raise (Injected { site; detail })

let hits t site =
  locked t (fun () ->
      match Hashtbl.find_opt t.sites site with None -> 0 | Some s -> s.hits)

let fires t site =
  locked t (fun () ->
      match Hashtbl.find_opt t.sites site with None -> 0 | Some s -> s.fires)

let counts t =
  locked t (fun () ->
      Hashtbl.fold (fun site s acc -> (site, s.hits, s.fires) :: acc) t.sites []
      |> List.sort compare)

let total_fires t =
  List.fold_left (fun acc (_, _, f) -> acc + f) 0 (counts t)

(* --- the ambient registry ------------------------------------------------

   Deep seams (Atomic_file, the frame codec) cannot thread a registry
   parameter through every caller; they consult the process-wide ambient
   registry instead.  [None] (the default, and the production state) makes
   every ambient check a single load-and-compare. *)

let ambient_reg : t option ref = ref None

let set_ambient r = ambient_reg := r
let ambient () = !ambient_reg

let ambient_fire ?n site =
  match !ambient_reg with None -> false | Some t -> fire ?n t site

let ambient_inject ?n ?detail site =
  match !ambient_reg with None -> () | Some t -> inject ?n ?detail t site

let with_ambient t f =
  let prev = !ambient_reg in
  ambient_reg := Some t;
  Fun.protect ~finally:(fun () -> ambient_reg := prev) f

(* --- schedule specs ------------------------------------------------------

   One line of shell-safe text describes a whole chaos schedule, so CI
   jobs and the daemon's --faults flag can arm the registry without code:

     site:nth=K | site:every=K | site:first=K | site:p=F | site:reach=K

   with an optional [,limit=N] per clause; clauses joined by [;]. *)

let spec_syntax =
  "SITE:nth=K|every=K|first=K|p=F|reach=K[,limit=N] clauses joined by ';'"

let of_spec ?seed spec =
  let t = create ?seed () in
  let clause c =
    match String.index_opt c ':' with
    | None -> Error (Printf.sprintf "clause %S lacks a ':' (%s)" c spec_syntax)
    | Some i -> (
        let site = String.sub c 0 i in
        let rest = String.sub c (i + 1) (String.length c - i - 1) in
        if site = "" then Error (Printf.sprintf "clause %S names no site" c)
        else
          let parts = String.split_on_char ',' rest in
          let parse_kv kv =
            match String.index_opt kv '=' with
            | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
            | Some j ->
                Ok
                  ( String.sub kv 0 j,
                    String.sub kv (j + 1) (String.length kv - j - 1) )
          in
          let rec fold mode limit = function
            | [] -> (
                match mode with
                | Some m -> Ok (m, limit)
                | None ->
                    Error (Printf.sprintf "clause %S has no schedule" c))
            | kv :: tl -> (
                match parse_kv kv with
                | Error _ as e -> e
                | Ok (k, v) -> (
                    let int_v () =
                      match int_of_string_opt v with
                      | Some n -> Ok n
                      | None -> Error (Printf.sprintf "%S is not an integer" v)
                    in
                    match k with
                    | "nth" ->
                        Result.bind (int_v ()) (fun n ->
                            fold (Some (Nth n)) limit tl)
                    | "every" ->
                        Result.bind (int_v ()) (fun n ->
                            fold (Some (Every n)) limit tl)
                    | "first" ->
                        Result.bind (int_v ()) (fun n ->
                            fold (Some (First n)) limit tl)
                    | "reach" ->
                        Result.bind (int_v ()) (fun n ->
                            fold (Some (Reach n)) limit tl)
                    | "p" -> (
                        match float_of_string_opt v with
                        | Some p -> fold (Some (Prob p)) limit tl
                        | None ->
                            Error (Printf.sprintf "%S is not a float" v))
                    | "limit" ->
                        Result.bind (int_v ()) (fun n -> fold mode (Some n) tl)
                    | k -> Error (Printf.sprintf "unknown key %S" k)))
          in
          match fold None None parts with
          | Error _ as e -> e
          | Ok (mode, limit) -> (
              match validate_mode mode with
              | () ->
                  arm t ?limit ~site mode;
                  Ok ()
              | exception Invalid_argument msg -> Error msg))
  in
  let clauses =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let rec go = function
    | [] -> Ok t
    | c :: tl -> ( match clause c with Ok () -> go tl | Error _ as e -> e)
  in
  go clauses
