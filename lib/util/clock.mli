(** Wall-clock timing and duration formatting in the paper's
    ["H h M m S s"] style. *)

val now : unit -> float
(** Seconds since the epoch. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds. *)

type deadline
(** A wall-clock deadline (possibly absent).  The single representation
    every bounded phase shares — Synth's search, the learning supervisor's
    per-phase limits, reset discovery. *)

val no_deadline : deadline

val after : float -> deadline
(** [after s] expires [s] seconds from now.  [after infinity] is
    {!no_deadline}; negative spans raise [Invalid_argument]. *)

val deadline_of : float option -> deadline
(** [None] -> {!no_deadline}, [Some s] -> [after s]. *)

val expired : deadline -> bool

val remaining : deadline -> float option
(** Seconds left (clamped at 0), or [None] for {!no_deadline}. *)

val remaining_or : deadline -> float -> float
(** {!remaining} with a default for the unbounded case. *)

val pp_duration : Format.formatter -> float -> unit
val to_string : float -> string
