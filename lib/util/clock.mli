(** Wall-clock timestamps, monotonic durations and deadlines, and the
    paper's ["H h M m S s"] duration format. *)

val now : unit -> float
(** Seconds since the epoch (wall clock).  For timestamps only — trace
    events, snapshot metadata.  Deadlines and elapsed-time measurement use
    {!mono}: the wall clock steps under NTP, which would fire or starve
    every deadline at once. *)

val mono : unit -> float
(** [CLOCK_MONOTONIC] seconds.  The epoch is arbitrary (boot time on
    Linux): values are only meaningful as differences.  Never steps. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds
    (measured on {!mono}). *)

type deadline
(** A deadline (possibly absent), anchored to the monotonic clock.  The
    single representation every bounded phase shares — Synth's search, the
    learning supervisor's per-phase limits, reset discovery, the service
    daemon's session budgets. *)

val no_deadline : deadline

val after : float -> deadline
(** [after s] expires [s] monotonic seconds from now.  [after infinity] is
    {!no_deadline}; negative spans raise [Invalid_argument]. *)

val deadline_of : float option -> deadline
(** [None] -> {!no_deadline}, [Some s] -> [after s]. *)

val expired : deadline -> bool

val remaining : deadline -> float option
(** Seconds left (clamped at 0), or [None] for {!no_deadline}. *)

val remaining_or : deadline -> float -> float
(** {!remaining} with a default for the unbounded case. *)

val pp_duration : Format.formatter -> float -> unit
(** Rounds to centiseconds before splitting off hours and minutes, so
    3599.999 prints as ["1 h 0 m 0.00 s"], never ["0 h 59 m 60.00 s"]. *)

val to_string : float -> string

val set_wall_skew_for_tests : float -> unit
(** Add [s] seconds to every subsequent {!now} reading — a mocked NTP
    step.  Tests use this to assert that deadlines (monotonic) ignore
    wall-clock steps.  Affects {!now} only. *)
