/* Monotonic clock for deadlines.  Unix.gettimeofday is wall time: an NTP
   step (or a sysadmin's date(1)) fires or starves every deadline built on
   it, which a long-running daemon cannot tolerate.  CLOCK_MONOTONIC never
   steps; its epoch is arbitrary, so values are only good for differences
   and deadlines, never for timestamps. */

#include <time.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/fail.h>

CAMLprim value cq_clock_monotonic(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    caml_failwith("clock_gettime(CLOCK_MONOTONIC)");
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec / 1e9);
}
