(** Signal-aware shutdown: keep the [at_exit]-registered observability
    exports (trace, metrics) from being lost to an unhandled
    SIGINT/SIGTERM. *)

val default_signals : int list
(** [Sys.sigint; Sys.sigterm]. *)

val exit_code_of_signal : int -> int
(** The shell convention, 128 + system signal number: SIGINT → 130,
    SIGTERM → 143, SIGHUP → 129; 128 for anything else. *)

val exit_on_signals : ?signals:int list -> unit -> unit
(** Install handlers that call [exit (exit_code_of_signal s)] — running
    every [at_exit] hook, so trace/metrics files are flushed — instead of
    the default disposition (die without unwinding).  One-shot CLIs use
    this. *)

val notify_on_signals : ?signals:int list -> (int -> unit) -> unit
(** Install [f] as the handler for [signals].  Long-running servers use
    this to run their own graceful path (stop accepting, snapshot live
    sessions) before exiting; the handler runs at the runtime's next safe
    point in the main thread. *)
