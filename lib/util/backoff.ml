(* One retry loop for the whole stack.

   Three places used to hand-roll this: the Hardware supervisor's
   transient-retry recursion, the Pool's sequential retry rounds, and
   (new in the resilience layer) the service client's reconnect loop.
   Each had its own attempt bookkeeping and none agreed on delays.  This
   module owns the shape — bounded attempts, a delay policy with
   jittered-exponential growth, deterministic when seeded — and lets the
   call site keep only its domain logic (what to run, what state to
   carry between attempts).

   Delays are computed from a seeded PRNG and slept through an injectable
   [sleep], so tests retry with a recording clock instead of real time:
   the schedule a production client would sleep is asserted exactly. *)

type jitter = No_jitter | Full | Decorrelated

type policy = {
  base : float;
  cap : float;
  multiplier : float;
  jitter : jitter;
}

let policy ?(base = 0.05) ?(cap = 5.0) ?(multiplier = 2.0)
    ?(jitter = Decorrelated) () =
  if base < 0.0 then invalid_arg "Backoff.policy: base must be >= 0";
  if cap < base then invalid_arg "Backoff.policy: cap must be >= base";
  if multiplier < 1.0 then
    invalid_arg "Backoff.policy: multiplier must be >= 1";
  { base; cap; multiplier; jitter }

let default = policy ()

(* Zero-delay policy: retry immediately.  The Hardware supervisor and the
   Pool's retry rounds run against a local simulator where waiting buys
   nothing; they want the loop structure, not the sleeping. *)
let immediate = policy ~base:0.0 ~cap:0.0 ~jitter:No_jitter ()

type t = {
  p : policy;
  seed : int;
  mutable prng : Prng.t;
  mutable attempt : int;
  mutable prev : float; (* last delay, feeds decorrelated jitter *)
}

let start ?(seed = 0) p =
  { p; seed; prng = Prng.of_int seed; attempt = 0; prev = p.base }

let next t =
  let { base; cap; multiplier; jitter } = t.p in
  t.attempt <- t.attempt + 1;
  let delay =
    if base = 0.0 then 0.0
    else
      match jitter with
      | No_jitter ->
          Float.min cap
            (base *. Float.pow multiplier (float_of_int (t.attempt - 1)))
      | Full ->
          let top =
            Float.min cap
              (base *. Float.pow multiplier (float_of_int (t.attempt - 1)))
          in
          Prng.float t.prng *. top
      | Decorrelated ->
          (* AWS-style: uniform in [base, 3 * previous], capped.  Spreads
             concurrent reconnectors apart instead of synchronising them
             into retry storms. *)
          let top = Float.max base (3.0 *. t.prev) in
          Float.min cap (base +. (Prng.float t.prng *. (top -. base)))
  in
  t.prev <- delay;
  delay

(* Restart the whole sequence, PRNG stream included: a reset schedule is
   byte-for-byte the original one, so recovery behaviour after a healed
   outage stays reproducible from the seed. *)
let reset t =
  t.attempt <- 0;
  t.prev <- t.p.base;
  t.prng <- Prng.of_int t.seed

let retry ?(sleep = Unix.sleepf) ?on_wait ?seed ~policy ~attempts ~init f =
  if attempts < 1 then invalid_arg "Backoff.retry: attempts must be >= 1";
  let seq = start ?seed policy in
  let rec go attempt state =
    match f ~attempt state with
    | `Done v -> Ok v
    | `Retry state ->
        if attempt >= attempts then Error state
        else begin
          let delay = next seq in
          (match on_wait with
          | Some g -> g ~attempt ~delay
          | None -> ());
          if delay > 0.0 then sleep delay;
          go (attempt + 1) state
        end
  in
  go 1 init
