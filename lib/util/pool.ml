(* A pool of worker domains for fanning out independent queries.

   Every worker owns a private context built by a user-supplied factory
   thunk (an oracle, a simulated machine, ...), so no mutable state is
   shared between domains: the only cross-domain traffic is the task
   index counter, the result slots (each written by exactly one worker)
   and the first-error slot.  Policies are deterministic, so running the
   same tasks through a pool must produce the same results as running
   them sequentially; tests assert exactly that.

   Domains are spawned per [map] call rather than kept alive: the unit of
   work here (a chunk of conformance tests, a batch of membership
   queries) is orders of magnitude more expensive than a Domain.spawn.
   Contexts, however, ARE kept alive: each worker slot lazily builds its
   context on first use and reuses it across [map] calls, so a worker
   oracle's memo and prefix caches stay warm from one equivalence round to
   the next.  A slot is touched by exactly one domain per call, and calls
   are separated by joins, so the reuse is race-free. *)

type 'ctx t = {
  size : int;
  factory : unit -> 'ctx;
  ctxs : 'ctx option array; (* per-slot contexts, built on first use *)
}

let create ?size ~factory () =
  let size =
    match size with
    | Some n ->
        if n < 1 then invalid_arg "Pool.create: size must be >= 1";
        n
    | None -> Domain.recommended_domain_count ()
  in
  { size; factory; ctxs = Array.make size None }

let ctx_for t slot =
  match t.ctxs.(slot) with
  | Some ctx -> ctx
  | None ->
      let ctx = t.factory () in
      t.ctxs.(slot) <- Some ctx;
      ctx

let size t = t.size

let map t f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let workers = min t.size n in
    if workers <= 1 then begin
      let ctx = ctx_for t 0 in
      Array.map (f ctx) items
    end
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let error = Atomic.make None in
      let worker slot () =
        let ctx = ctx_for t slot in
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            match f ctx items.(i) with
            | r -> results.(i) <- Some r
            | exception e ->
                (* Remember the first failure and drain the queue so the
                   other workers stop picking up new tasks. *)
                ignore (Atomic.compare_and_set error None (Some e));
                Atomic.set next n;
                continue := false
        done
      in
      let spawned =
        List.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1)))
      in
      worker 0 ();
      List.iter Domain.join spawned;
      match Atomic.get error with
      | Some e -> raise e
      | None ->
          Array.map
            (function
              | Some r -> r
              | None ->
                  (* Only reachable when another task failed; handled above. *)
                  assert false)
            results
    end
  end

let map_list t f items = Array.to_list (map t f (Array.of_list items))
