(* A pool of worker domains for fanning out independent queries.

   Every worker owns a private context built by a user-supplied factory
   thunk (an oracle, a simulated machine, ...), so no mutable state is
   shared between domains: the only cross-domain traffic is the task
   index counter, the result slots (each written by exactly one worker)
   and the per-task failure slots.  Policies are deterministic, so running
   the same tasks through a pool must produce the same results as running
   them sequentially; tests assert exactly that.

   Domains are spawned per [map] call rather than kept alive: the unit of
   work here (a chunk of conformance tests, a batch of membership
   queries) is orders of magnitude more expensive than a Domain.spawn.
   Contexts, however, ARE kept alive: each worker slot lazily builds its
   context on first use and reuses it across [map] calls, so a worker
   oracle's memo and prefix caches stay warm from one equivalence round to
   the next.  A slot is touched by exactly one domain per call, and calls
   are separated by joins, so the reuse is race-free.

   Failure handling (graceful degradation): a task that raises no longer
   drains the queue and discards every completed result.  Instead the
   worker records the failure, drops its context — the exception may have
   left it half-mutated, and reusing a poisoned context would corrupt
   later answers — rebuilds a fresh one, and keeps claiming tasks.  A
   worker that keeps failing stops claiming (its share is drained by the
   others).  After the parallel pass, failed tasks are retried (bounded by
   [task_retries]) sequentially in the calling domain on a rebuilt
   context — the fallback when worker domains keep dying.  Only a task
   that fails every attempt raises, as {!Worker_lost}. *)

exception Worker_lost of string

(* Registry-backed accounting: each field is a named counter, so a report
   field and its metrics-registry counterpart are the same cell.  Counters
   are atomic because [poison] and task completion run inside worker
   domains. *)
type stats = {
  worker_restarts : Metrics.counter;
      (* contexts dropped after a task exception (poisoned) and rebuilt *)
  task_retries : Metrics.counter; (* task re-executions after a failed attempt *)
  salvaged : Metrics.counter;
      (* results completed in a batch that also saw failures *)
  sequential_fallbacks : Metrics.counter;
      (* retry passes executed in the calling domain *)
  tasks : Metrics.counter;
      (* tasks *completed*.  Deliberately not per-attempt: a salvaged
         slot's retry re-executes the same logical task, and counting
         each attempt would double-count it — attempts are what
         [task_retries] measures.  The increment therefore sits on the
         success path of [run_task], which runs at most once per task. *)
}

let fresh_stats ?registry ?(prefix = "pool") () =
  let r = match registry with Some r -> r | None -> Metrics.create () in
  let c field = Metrics.counter r (prefix ^ "." ^ field) in
  {
    worker_restarts = c "worker_restarts";
    task_retries = c "task_retries";
    salvaged = c "salvaged";
    sequential_fallbacks = c "sequential_fallbacks";
    tasks = c "tasks";
  }

(* A worker that failed this many tasks within one [map] call stops
   claiming: its environment (a wedged device, an exhausted resource) is
   presumed broken beyond what a fresh context repairs, and the remaining
   tasks drain through the healthy workers or the sequential fallback. *)
let max_worker_failures = 3

type 'ctx t = {
  size : int;
  factory : unit -> 'ctx;
  ctxs : 'ctx option array; (* per-slot contexts, built on first use *)
  task_retries : int;
  stats : stats;
}

let create ?size ?(task_retries = 2) ?stats ~factory () =
  let size =
    match size with
    | Some n ->
        if n < 1 then invalid_arg "Pool.create: size must be >= 1";
        n
    | None -> Domain.recommended_domain_count ()
  in
  if task_retries < 0 then invalid_arg "Pool.create: task_retries must be >= 0";
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  { size; factory; ctxs = Array.make size None; task_retries; stats }

let ctx_for t slot =
  match t.ctxs.(slot) with
  | Some ctx -> ctx
  | None ->
      let ctx = t.factory () in
      t.ctxs.(slot) <- Some ctx;
      ctx

(* The context in [slot] was live while a task raised: drop it so the next
   use rebuilds from the factory instead of reusing half-mutated state. *)
let poison t slot =
  t.ctxs.(slot) <- None;
  Metrics.incr t.stats.worker_restarts

let size t = t.size
let stats t = t.stats

let map_run t f items n =
  begin
    let workers = min t.size n in
    let results = Array.make n None in
    let failures = Array.make n None in
    (* cq-lint: allow domain-shared-state: calling domain only; workers signal via the failed_flag Atomic *)
    let any_failure = ref false in
    let run_task slot i =
      match
        (* Chaos seam: an armed "pool.task" site makes this task raise as
           if the user function had — exercising the poison / salvage /
           sequential-fallback machinery below on demand. *)
        Faults.ambient_inject ~detail:"pool worker task fault" "pool.task";
        f (ctx_for t slot) items.(i)
      with
      | r ->
          (* Reconcile once per task, not per attempt: a retry of a
             salvaged slot must not count the task again.  A task's
             success path runs at most once (a completed task is never
             re-claimed or re-retried), so this increment cannot
             double-fire. *)
          Metrics.incr t.stats.tasks;
          results.(i) <- Some r;
          failures.(i) <- None
      | exception e ->
          failures.(i) <- Some e;
          poison t slot
    in
    if workers <= 1 then
      for i = 0 to n - 1 do
        run_task 0 i;
        if failures.(i) <> None then any_failure := true
      done
    else begin
      let next = Atomic.make 0 in
      let failed_flag = Atomic.make false in
      let worker slot () =
        Trace.with_span ~cat:"pool" "pool.worker" @@ fun () ->
        (* cq-lint: allow domain-shared-state: worker-local, never shared *)
        let my_failures = ref 0 in
        (* cq-lint: allow domain-shared-state: worker-local, never shared *)
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else begin
            run_task slot i;
            if failures.(i) <> None then begin
              Atomic.set failed_flag true;
              incr my_failures;
              (* A worker that keeps dying stops claiming; the healthy
                 workers (and the sequential fallback) drain the rest. *)
              if !my_failures >= max_worker_failures then continue := false
            end
          end
        done
      in
      let spawned =
        List.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1)))
      in
      worker 0 ();
      List.iter Domain.join spawned;
      any_failure := Atomic.get failed_flag;
      (* Every worker may have bailed early with tasks still unclaimed;
         pick up the stragglers in the calling domain. *)
      for i = 0 to n - 1 do
        if results.(i) = None && failures.(i) = None then begin
          run_task 0 i;
          if failures.(i) <> None then any_failure := true
        end
      done
    end;
    if !any_failure then begin
      Metrics.add t.stats.salvaged
        (Array.fold_left (fun a r -> if r <> None then a + 1 else a) 0 results);
      (* Bounded retry rounds, sequentially in the calling domain on a
         rebuilt context: the degraded mode when workers keep dying.  One
         [Backoff] attempt per round; [immediate] because the context was
         already rebuilt — there is nothing to wait out. *)
      let still_failing () = Array.exists (fun e -> e <> None) failures in
      (if t.task_retries > 0 && still_failing () then
         let outcome =
           Backoff.retry ~policy:Backoff.immediate ~attempts:t.task_retries
             ~init:()
             (fun ~attempt:_ () ->
               Metrics.incr t.stats.sequential_fallbacks;
               for i = 0 to n - 1 do
                 if failures.(i) <> None then begin
                   Metrics.incr t.stats.task_retries;
                   run_task 0 i
                 end
               done;
               if still_failing () then `Retry () else `Done ())
         in
         ignore (outcome : (unit, unit) result));
      match
        Array.to_seq failures
        |> Seq.zip (Seq.ints 0)
        |> Seq.find_map (fun (i, e) -> Option.map (fun e -> (i, e)) e)
      with
      | Some (i, e) ->
          raise
            (Worker_lost
               (Printf.sprintf "task %d failed after %d attempts: %s" i
                  (1 + t.task_retries) (Printexc.to_string e)))
      | None -> ()
    end;
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* no failure recorded -> result present *))
      results
  end

let map t f items =
  let n = Array.length items in
  if n = 0 then [||]
  else if Trace.enabled () then
    Trace.with_span ~cat:"pool"
      ~args:
        [
          ("tasks", string_of_int n);
          ("workers", string_of_int (min t.size n));
        ]
      "pool.map"
      (fun () -> map_run t f items n)
  else map_run t f items n

let map_list t f items = Array.to_list (map t f (Array.of_list items))
