(* Disk headroom, for the daemon's health verb and the snapshot spill
   decision.  A learn that will write snapshots for hours should be able
   to say up front — and report over the wire — whether the state dir
   has room for them. *)

external free_bytes_exn : string -> int64 = "cq_disk_free_bytes"

let free_bytes path =
  match free_bytes_exn path with
  | bytes -> Some bytes
  | exception (Failure _ | Invalid_argument _) -> None
