(* An abstract interpreter for MBL expressions that predicts expansion
   without performing it.

   The whole point of this module is *exactness*: it mirrors
   [Cq_mbl.Expand.expand_expr] constructor by constructor, including the
   placement of the [max_queries] guard (applied to the accumulator after
   every [Seq] item, once per [Set]/[Extend], never on bare atoms) and the
   evaluation order of subterms (a [Power (e, 0)] never evaluates [e]; a
   [Seq] keeps evaluating items after the accumulator collapses to zero
   queries).  Each AST node is summarised by a small exact state —
   cardinality, element counts, footprint, taggedness — from which every
   quantity the expander's error paths depend on can be read off.

   The counts use saturating arithmetic: cardinalities beyond [max_queries]
   are rejected anyway, and access counts beyond [max_int] only arise from
   programs no one can run. *)

module Ast = Cq_mbl.Ast
module Block = Cq_cache.Block
module BSet = Set.Make (Block)

type code =
  | Bad_block_name of string
  | Double_tag
  | Negative_power of int
  | Cardinality_overflow of { bound : int; at_least : int }
  | Excess_blocks of { distinct : int; capacity : int }

type diagnostic = { code : code; path : int list }

let pp_code ppf = function
  | Bad_block_name name -> Fmt.pf ppf "bad block name %S" name
  | Double_tag -> Fmt.string ppf "tag applied to an already-tagged query"
  | Negative_power k -> Fmt.pf ppf "negative power %d" k
  | Cardinality_overflow { bound; at_least } ->
      Fmt.pf ppf "expansion exceeds %d queries (reaches at least %d)" bound
        at_least
  | Excess_blocks { distinct; capacity } ->
      Fmt.pf ppf "%d distinct blocks exceed the capacity of %d" distinct
        capacity

let pp_path ppf = function
  | [] -> Fmt.string ppf "at the root"
  | path -> Fmt.pf ppf "at subterm %a" Fmt.(list ~sep:(any ".") int) path

let pp_diagnostic ppf d = Fmt.pf ppf "%a %a" pp_code d.code pp_path d.path
let diagnostic_to_string d = Fmt.str "%a" pp_diagnostic d

type summary = {
  cardinality : int;
  total_accesses : int;
  profiled_accesses : int;
  max_query_len : int;
  footprint : Block.t list;
  main_blocks : int;
  aux_blocks : int;
  associativity_pressure : float;
}

let pp_summary ppf s =
  Fmt.pf ppf
    "%d queries, %d accesses (%d profiled), longest query %d, %d blocks (%d \
     main + %d aux), pressure %.2f"
    s.cardinality s.total_accesses s.profiled_accesses s.max_query_len
    (List.length s.footprint) s.main_blocks s.aux_blocks
    s.associativity_pressure

(* --- The abstract domain ---------------------------------------------- *)

(* Saturating non-negative arithmetic. *)
let sadd a b =
  let s = a + b in
  if s < 0 then max_int else s

let smul a b = if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

type state = {
  card : int;  (* exact number of queries *)
  elems : int;  (* total elements over all queries (saturating) *)
  profiled : int;  (* how many carry the '?' tag (saturating) *)
  max_len : int;  (* longest query (saturating) *)
  has_tag : bool;  (* some query contains a tagged element *)
  fp : BSet.t;  (* distinct blocks over all queries *)
}

(* Invariant: [card = 0] implies every other component is zero/empty/false
   (no queries means no elements, tags or blocks). *)
let zero =
  { card = 0; elems = 0; profiled = 0; max_len = 0; has_tag = false; fp = BSet.empty }

(* The state of [[ [] ]] — one empty query, the [Seq] fold identity. *)
let one = { zero with card = 1 }

(* Concatenation product: every query of [a] prefixes every query of [b]. *)
let seq_product a b =
  if a.card = 0 || b.card = 0 then zero
  else
    {
      card = smul a.card b.card;
      elems = sadd (smul b.card a.elems) (smul a.card b.elems);
      profiled = sadd (smul b.card a.profiled) (smul a.card b.profiled);
      max_len = sadd a.max_len b.max_len;
      has_tag = a.has_tag || b.has_tag;
      fp = BSet.union a.fp b.fp;
    }

(* Query-set union (list concatenation, for [Set]). *)
let set_sum a b =
  {
    card = sadd a.card b.card;
    elems = sadd a.elems b.elems;
    profiled = sadd a.profiled b.profiled;
    max_len = max a.max_len b.max_len;
    has_tag = a.has_tag || b.has_tag;
    fp = BSet.union a.fp b.fp;
  }

exception Reject of diagnostic

let reject ~path code = raise (Reject { code; path = List.rev path })

(* Mirror of [Expand.expand_expr]'s [guard]: rejects when the query set at
   this node would exceed [max_queries]. *)
let guard ~max_queries ~path st =
  if st.card > max_queries then
    reject ~path (Cardinality_overflow { bound = max_queries; at_least = st.card })
  else st

let rec eval ~assoc ~max_queries ~path (e : Ast.t) : state =
  match e with
  | Ast.Block name -> (
      match Block.of_string name with
      | b ->
          { card = 1; elems = 1; profiled = 0; max_len = 1; has_tag = false;
            fp = BSet.singleton b }
      | exception Invalid_argument _ -> reject ~path (Bad_block_name name))
  | Ast.At ->
      (* One query of [assoc] blocks; never guarded by the expander. *)
      { card = 1; elems = assoc; profiled = 0; max_len = assoc;
        has_tag = false; fp = BSet.of_list (Block.first assoc) }
  | Ast.Wildcard ->
      (* [assoc] single-block queries; never guarded by the expander. *)
      { card = assoc; elems = assoc; profiled = 0; max_len = 1;
        has_tag = false; fp = BSet.of_list (Block.first assoc) }
  | Ast.Seq items ->
      (* The expander folds with the guard on the accumulator after every
         item, and keeps evaluating items even once the accumulator is
         empty — so must we, to surface the same errors. *)
      let _, st =
        List.fold_left
          (fun (i, acc) item ->
            let st = eval ~assoc ~max_queries ~path:(i :: path) item in
            (i + 1, guard ~max_queries ~path (seq_product acc st)))
          (0, one) items
      in
      st
  | Ast.Set items ->
      let _, st =
        List.fold_left
          (fun (i, acc) item ->
            let st = eval ~assoc ~max_queries ~path:(i :: path) item in
            (i + 1, set_sum acc st))
          (0, zero) items
      in
      guard ~max_queries ~path st
  | Ast.Tagged (inner, tag) ->
      let st = eval ~assoc ~max_queries ~path:(0 :: path) inner in
      if st.has_tag then reject ~path Double_tag
      else
        let tagged = st.elems > 0 in
        let profiled = match tag with Ast.Profile -> st.elems | Ast.Flush -> 0 in
        { st with profiled; has_tag = tagged }
  | Ast.Extend (base, ext) ->
      let b = eval ~assoc ~max_queries ~path:(0 :: path) base in
      let x = eval ~assoc ~max_queries ~path:(1 :: path) ext in
      (* The expander appends each distinct block of the extension's
         expansion — exactly the extension's footprint — untagged. *)
      let n = BSet.cardinal x.fp in
      let st =
        if b.card = 0 || n = 0 then zero
        else
          {
            card = smul b.card n;
            elems = sadd (smul n b.elems) (smul b.card n);
            profiled = smul n b.profiled;
            max_len = sadd b.max_len 1;
            has_tag = b.has_tag;
            fp = BSet.union b.fp x.fp;
          }
      in
      guard ~max_queries ~path st
  | Ast.Power (inner, k) ->
      if k < 0 then reject ~path (Negative_power k)
      else if k = 0 then one (* [Seq []]: the inner term is never evaluated *)
      else
        let st = eval ~assoc ~max_queries ~path:(0 :: path) inner in
        (* [Seq] of [k] copies of [inner], guard after each step.  The
           accumulator's cardinality is [st.card ^ i]: constant for
           cardinalities 0 and 1 (closed form below keeps huge [k] cheap),
           and geometric otherwise, so the loop trips the guard within
           [log2 max_queries] steps. *)
        if st.card = 0 then zero
        else if st.card = 1 then
          guard ~max_queries ~path
            {
              st with
              elems = smul k st.elems;
              profiled = smul k st.profiled;
              max_len = smul k st.max_len;
            }
        else begin
          let acc = ref one in
          for _ = 1 to k do
            acc := guard ~max_queries ~path (seq_product !acc st)
          done;
          !acc
        end

(* --- Checking ---------------------------------------------------------- *)

let bump registry name =
  match registry with
  | None -> ()
  | Some r -> Cq_util.Metrics.incr (Cq_util.Metrics.counter r name)

let summarize ~assoc st =
  let footprint = BSet.elements st.fp in
  let aux_blocks = List.length (List.filter Block.is_aux footprint) in
  let main_blocks = List.length footprint - aux_blocks in
  {
    cardinality = st.card;
    total_accesses = st.elems;
    profiled_accesses = st.profiled;
    max_query_len = st.max_len;
    footprint;
    main_blocks;
    aux_blocks;
    associativity_pressure = float_of_int main_blocks /. float_of_int assoc;
  }

let check ?(max_queries = 65536) ?capacity ?registry ~assoc e =
  if assoc < 1 then invalid_arg "Mbl_check.check: associativity must be >= 1";
  Cq_util.Trace.with_span ~cat:"analysis" "analysis.mbl_check" (fun () ->
      bump registry "analysis.mbl.checked";
      match eval ~assoc ~max_queries ~path:[] e with
      | st -> (
          let s = summarize ~assoc st in
          match capacity with
          | Some capacity when s.main_blocks > capacity ->
              bump registry "analysis.mbl.rejected";
              Error
                { code = Excess_blocks { distinct = s.main_blocks; capacity };
                  path = [] }
          | _ -> Ok s)
      | exception Reject d ->
          bump registry "analysis.mbl.rejected";
          Error d)

let check_string ?max_queries ?capacity ?registry ~assoc input =
  check ?max_queries ?capacity ?registry ~assoc (Cq_mbl.Parser.parse input)

(* --- Simplification ---------------------------------------------------- *)

(* Rewrites that preserve the expanded query list *exactly* (same queries,
   same order).  Concatenation products expand in lexicographic
   accumulator-major order, so splicing nested [Seq]s (and [Set]s) is
   order-preserving; [Power (e, k)] is [Seq] of [k] copies by definition.

   Guards are another matter: flattening merges guard structure, and in a
   program containing a zero-cardinality subterm an intermediate product
   can exceed [max_queries] even though the original program never does
   (the zero annihilates it before its guard).  [simplify] therefore only
   rewrites programs [check] accepts, and re-checks the result: any rewrite
   that would flip the verdict is discarded. *)

let rec rewrite (e : Ast.t) : Ast.t =
  match e with
  | Ast.Block _ | Ast.At | Ast.Wildcard -> e
  | Ast.Tagged (inner, tag) -> Ast.Tagged (rewrite inner, tag)
  | Ast.Extend (base, ext) -> Ast.Extend (rewrite base, rewrite ext)
  | Ast.Power (_, 0) -> Ast.Seq [] (* by definition; inner never evaluated *)
  | Ast.Power (inner, k) -> (
      match rewrite inner with
      | Ast.Power (e', j) when j > 0 && j <= max_int / k ->
          Ast.Power (e', j * k)
      | inner' -> if k = 1 then inner' else Ast.Power (inner', k))
  | Ast.Seq items -> (
      let items =
        List.concat_map
          (fun item ->
            match rewrite item with Ast.Seq xs -> xs | x -> [ x ])
          items
      in
      match items with [ x ] -> x | xs -> Ast.Seq xs)
  | Ast.Set items -> (
      let items =
        List.concat_map
          (fun item ->
            match rewrite item with Ast.Set xs -> xs | x -> [ x ])
          items
      in
      match items with [ x ] -> x | xs -> Ast.Set xs)

let simplify ?max_queries ~assoc e =
  match check ?max_queries ~assoc e with
  | Error _ -> e (* rejected programs pass through untouched *)
  | Ok _ -> (
      let e' = rewrite e in
      (* Paranoia: a rewrite must never flip the verdict. *)
      match check ?max_queries ~assoc e' with Ok _ -> e' | Error _ -> e)
