(** A model checker for learned replacement-policy automata.

    A machine claiming to be a replacement policy over associativity [n]
    (Definition 2.1) must satisfy structural axioms that Wp-conformance
    against the producing oracle cannot establish on its own:

    - {b alphabet}: exactly [n + 1] inputs ([Ln(0) .. Ln(n-1), Evct]);
    - {b hit consistency}: a line access never evicts (output [None] on
      every [Ln(i)]), and [Evct] always evicts a valid line (output
      [Some l] with [0 <= l < n]);
    - {b reachability}: every state is reachable from the initial state;
    - {b minimality}: no two states are trace-equivalent;
    - {b symmetry}: the policy does not hard-wire line roles.  Checked in
      two tiers.  {e Strict}: conjugating by each adjacent transposition
      [(i, i+1)] of line indices yields a machine trace-equivalent to the
      original from {e some} control state (the transposition generators
      suffice: conjugation is a group homomorphism) — LRU, MRU, LIP and
      the RRIP family are strict.  Some genuinely symmetric policies fail
      the strict test because their learned component bakes in the line
      ordering the reset established: FIFO's round-robin pointer and
      PLRU's tree pairing have conjugates that are the {e same policy
      under a different reset ordering} but overlap no state of the
      learned machine.  {e Up to reset order}: for those, the sound
      necessary condition is that every line is evicted in some reachable
      state; a machine with a permanently resident line (e.g. a
      constant-victim automaton) fails it under every reset ordering and
      is reported [Asymmetric].

    Every policy in the zoo satisfies all five; a learned automaton that
    does not was corrupted by noise, a bad reset sequence, or interference
    (the class of failures §6.3 of the paper diagnoses by hand). *)

type violation =
  | Bad_alphabet of { n_inputs : int; expected : int }
  | Line_evicts of { state : int; line : int; evicted : int }
      (** A hit on [Ln(line)] in [state] reports an eviction. *)
  | Evct_no_eviction of { state : int }
      (** [Evct] in [state] outputs [None]. *)
  | Evct_out_of_range of { state : int; line : int }
      (** [Evct] in [state] evicts a line index [>= assoc]. *)
  | Unreachable of { states : int }
      (** [states] states are unreachable from the initial state. *)
  | Not_minimal of { states : int; minimal : int }
      (** The machine has [states] states but is trace-equivalent to one
          with [minimal < states]. *)
  | Asymmetric of { line : int }
      (** No reachable state ever evicts [line]: the machine privileges a
          subset of the lines in a way no reset ordering can explain. *)

(** Outcome of the symmetry pass (see the module comment). *)
type symmetry_level =
  | Strict  (** every adjacent-transposition conjugate matches *)
  | Up_to_reset_order
      (** strict conjugation fails, but every line is evicted in some
          reachable state (FIFO, PLRU) *)
  | Broken  (** some line is never evicted; [Asymmetric] is reported *)
  | Not_checked
      (** pass skipped: disabled, [assoc < 2], or more than
          [max_symmetry_states] states *)

type report = {
  assoc : int;
  states : int;
  symmetry : symmetry_level;
  violations : violation list;
}

val ok : report -> bool

val symmetry_checked : report -> bool
(** Whether the symmetry pass ran ([symmetry <> Not_checked]).  It is
    skipped above [max_symmetry_states] (the some-start-state equivalence
    search is cubic in states). *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

val check :
  ?symmetry:bool ->
  ?max_symmetry_states:int ->
  ?symmetry_witness:(int * int * int list) list ->
  ?registry:Cq_util.Metrics.t ->
  assoc:int ->
  Cq_policy.Types.output Cq_automata.Mealy.t ->
  report
(** [check ~assoc m] runs every axiom check.  [?symmetry] (default [true])
    and [?max_symmetry_states] (default [512]) bound the symmetry pass;
    when it is skipped, the report carries [symmetry = Not_checked].

    [?symmetry_witness] is the merge witness of a quotient-learned
    machine (see {!Cq_learner.Quotient.stats}): each [(s, s0, perm)]
    triple claims state [s] behaves as state [s0] conjugated by [perm]
    (a line permutation, length [assoc]).  Each triple is re-validated
    with one anchored product walk against the [perm]-relabeled machine
    — O(states * inputs) instead of the cubic some-start-state search —
    so internal symmetry stays checkable past [max_symmetry_states],
    where the evictability scan then supplies the tier verdict (below
    the bound the full brute-force tiers still run, the walks are
    cheap).  A failing triple discards the witness and falls back to the
    brute-force tiers; at most 64 triples are checked.

    A wrong alphabet short-circuits the per-state checks (they would be
    meaningless), so a [Bad_alphabet] report carries that violation
    alone. *)

val diagnose :
  assoc:int -> Cq_policy.Types.output Cq_automata.Mealy.t -> string option
(** A one-line structural diagnosis of a hypothesis automaton, or [None]
    when it passes every axiom.  Used to annotate
    [Polca.Non_deterministic] failures: if the current hypothesis already
    violates policy axioms, the nondeterminism is structural (bad reset
    placement, interference), not transient noise. *)
