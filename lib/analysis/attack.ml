(* Static security analysis of learned replacement-policy automata.

   Everything here is search and fixpoint over the policy automaton —
   no randomness, no wall clock — so equal machines produce equal
   reports, and the reports are validated dynamically by replaying the
   synthesized words as concrete block traces (see [concretize]):
   through the three Cq_workload.Replay paths and through a hwsim
   machine built around the policy ([verify], [verify_hwsim]).

   The analysis starts from the *primed* configuration: a cold set
   filled with attacker blocks 0..assoc-1 (block w in way w), the
   automaton in the state those fills establish (fills touch the policy,
   hwsim's fill_touches_policy).  That makes the primed state the shared
   anchor of the searches, the leakage experiments and the replays. *)

module Mealy = Cq_automata.Mealy
module Types = Cq_policy.Types
module Policy = Cq_policy.Policy
module Replay = Cq_workload.Replay

type strategy = { word : int list; length : int; accesses : int; misses : int }
type eviction = { target : int; strategy : strategy }

type stealthy = {
  starget : int;
  setup : int list;
  body : int list;
  repeatable : bool;
}

type leakage = {
  probe_classes : int;
  evicted_information : float;
  absorbed_noise : int;
  reachable_states : int;
  observation_classes : int;
  residual_information : float;
}

type report = {
  name : string;
  assoc : int;
  states : int;
  evictions : eviction list;
  eviction_set_size : int;
  eviction_length : int;
  stealthies : stealthy list;
  stealthy : stealthy option;
  leakage : leakage;
}

let strategy_of_word assoc word =
  {
    word;
    length = List.length word;
    accesses = List.length (List.filter (fun i -> i < assoc) word);
    misses = List.length (List.filter (fun i -> i = assoc) word);
  }

let pp_strategy ~assoc ppf s =
  Fmt.pf ppf "%s  (%d accesses, %d misses)"
    (String.concat " "
       (List.map
          (fun i -> if i = assoc then "miss" else Printf.sprintf "Ln(%d)" i)
          s.word))
    s.accesses s.misses

let assoc_of m =
  let a = Mealy.n_inputs m - 1 in
  if a < 1 then invalid_arg "Attack: machine has no Evct input";
  a

(* The state a cold fill of blocks 0..assoc-1 establishes. *)
let primed_state m =
  let assoc = assoc_of m in
  let s = ref (Mealy.init m) in
  for w = 0 to assoc - 1 do
    s := Mealy.next_state m !s w
  done;
  !s

let evct_output m s =
  let assoc = assoc_of m in
  match Mealy.output m s assoc with
  | Some v when v >= 0 && v < assoc -> v
  | Some _ -> invalid_arg "Attack: Evct output out of range"
  | None -> invalid_arg "Attack: machine emits ⊥ on Evct"

(* --- eviction synthesis ------------------------------------------------ *)

(* Shortest eviction word under the PRIME+PROBE model: the attacker never
   touches the victim's line; cost is lexicographic (fresh blocks
   spent, then word length), so the result's miss count *is* the minimal
   eviction-set size from the primed state.  Dijkstra over the automaton
   with edge costs (0,1) for Ln and (1,1) for Evct. *)
module Pq = Set.Make (struct
  type t = int * int * int (* misses, length, state *)

  let compare = compare
end)

let shortest_eviction m ~target =
  let assoc = assoc_of m in
  if target < 0 || target >= assoc then
    invalid_arg "Attack: target out of range";
  let n = Mealy.n_states m in
  let inf = max_int in
  let dist_m = Array.make n inf and dist_l = Array.make n inf in
  let pred = Array.make n (-1, -1) (* state, input *) in
  let start = primed_state m in
  dist_m.(start) <- 0;
  dist_l.(start) <- 0;
  let pq = ref (Pq.singleton (0, 0, start)) in
  let best = ref None (* (misses, length, final state before Evct) *) in
  let better (m1, l1) (m2, l2) = m1 < m2 || (m1 = m2 && l1 < l2) in
  while not (Pq.is_empty !pq) do
    let ((dm, dl, s) as node) = Pq.min_elt !pq in
    pq := Pq.remove node !pq;
    if dm = dist_m.(s) && dl = dist_l.(s) then begin
      (* Close the word with Evct from here if that evicts the target. *)
      if evct_output m s = target then begin
        let cand = (dm + 1, dl + 1) in
        match !best with
        | Some (bm, bl, _) when not (better cand (bm, bl)) -> ()
        | _ -> best := Some (fst cand, snd cand, s)
      end;
      for i = 0 to assoc do
        if i <> target then begin
          let cost_m = if i = assoc then 1 else 0 in
          (* An Evct that evicts the target mid-word would be a shorter
             closing move, already handled above; other Evcts are plain
             edges. *)
          if not (i = assoc && evct_output m s = target) then begin
            let s' = Mealy.next_state m s i in
            let dm' = dm + cost_m and dl' = dl + 1 in
            if better (dm', dl') (dist_m.(s'), dist_l.(s')) then begin
              dist_m.(s') <- dm';
              dist_l.(s') <- dl';
              pred.(s') <- (s, i);
              pq := Pq.add (dm', dl', s') !pq
            end
          end
        end
      done
    end
  done;
  match !best with
  | None -> None
  | Some (_, _, last) ->
      let rec walk s acc =
        if s = start && dist_l.(s) = 0 then acc
        else
          let p, i = pred.(s) in
          walk p (i :: acc)
      in
      let word = walk last [] @ [ assoc ] in
      Some { target; strategy = strategy_of_word assoc word }

(* --- stealthy (RELOAD+REFRESH) synthesis -------------------------------- *)

(* Search the product of the automaton with (seen a miss?, reloaded the
   target?) flags for the shortest controlling word that never evicts
   the target line.  Preference order: a repeatable cycle (body returns
   the automaton to its entry state, so the hit/miss pattern sustains
   forever), else a one-shot word from the primed state. *)
let find_stealthy ?(max_anchors = 512) m ~target =
  let assoc = assoc_of m in
  let n = Mealy.n_states m in
  let evct = assoc in
  let safe s i = not (i = evct && evct_output m s = target) in
  let start = primed_state m in
  (* Setup BFS over safe edges: shortest safe word from the primed state
     to every state. *)
  let setup_pred = Array.make n (-1, -1) in
  let setup_dist = Array.make n (-1) in
  let order = Queue.create () in
  let bfs_order = ref [] in
  setup_dist.(start) <- 0;
  Queue.add start order;
  while not (Queue.is_empty order) do
    let s = Queue.take order in
    bfs_order := s :: !bfs_order;
    for i = 0 to assoc do
      if safe s i then begin
        let s' = Mealy.next_state m s i in
        if setup_dist.(s') < 0 then begin
          setup_dist.(s') <- setup_dist.(s) + 1;
          setup_pred.(s') <- (s, i);
          Queue.add s' order
        end
      end
    done
  done;
  let anchors = List.rev !bfs_order in
  let setup_word a =
    let rec back s acc =
      if setup_dist.(s) = 0 then acc
      else
        let p, i = setup_pred.(s) in
        back p (i :: acc)
    in
    back a []
  in
  (* Flagged BFS from an anchor: shortest safe word hitting both flags
     and ending at [stop] (the anchor for cycles, any state for the
     one-shot fallback).  [max_depth] bounds the search: once a
     repeatable candidate is known, bodies that cannot beat it are never
     explored, which keeps the per-anchor cost shallow. *)
  let flagged_bfs ?max_depth from ~stop =
    let size = 4 * n in
    let dist = Array.make size (-1) in
    let pred = Array.make size (-1, -1) in
    let node s fe fr = (s * 4) + (fe * 2) + fr in
    let q = Queue.create () in
    let s0 = node from 0 0 in
    dist.(s0) <- 0;
    Queue.add s0 q;
    let goal = ref (-1) in
    let deep u =
      match max_depth with None -> false | Some d -> dist.(u) >= d
    in
    while !goal < 0 && not (Queue.is_empty q) do
      let u = Queue.take q in
      let s = u / 4 and fe = u / 2 land 1 and fr = u land 1 in
      if not (deep u) then
        for i = 0 to assoc do
          if !goal < 0 && safe s i then begin
            let s' = Mealy.next_state m s i in
            let fe' = if i = evct then 1 else fe in
            let fr' = if i = target then 1 else fr in
            let v = node s' fe' fr' in
            if dist.(v) < 0 then begin
              dist.(v) <- dist.(u) + 1;
              pred.(v) <- (u, i);
              if fe' = 1 && fr' = 1
                 && (match stop with None -> true | Some a -> s' = a)
              then goal := v
              else Queue.add v q
            end
          end
        done
    done;
    if !goal < 0 then None
    else begin
      let rec back v acc =
        if dist.(v) = 0 then acc
        else
          let u, i = pred.(v) in
          back u (i :: acc)
      in
      Some (back !goal [])
    end
  in
  (* Repeatable: scan anchors in BFS order; setup lengths are
     nondecreasing, so stop once even a 2-input body cannot beat the
     best total.  After the first cycle is found, only a bounded number
     of further anchors is tried (each with a depth-bounded BFS): the
     result is a short deterministic cycle, not a certified-minimal
     one. *)
  let best = ref None (* total, setup, body *) in
  let tried = ref 0 in
  let after_best = ref 0 in
  (try
     List.iter
       (fun a ->
         incr tried;
         if !tried > max_anchors then raise Exit;
         (match !best with
         | Some (total, _, _) when setup_dist.(a) + 2 >= total -> raise Exit
         | Some _ ->
             incr after_best;
             if !after_best > 16 then raise Exit
         | None -> ());
         let max_depth =
           Option.map (fun (t, _, _) -> t - setup_dist.(a) - 1) !best
         in
         match flagged_bfs ?max_depth a ~stop:(Some a) with
         | None -> ()
         | Some body ->
             let total = setup_dist.(a) + List.length body in
             (match !best with
             | Some (t, _, _) when t <= total -> ()
             | _ -> best := Some (total, setup_word a, body)))
       anchors
   with Exit -> ());
  match !best with
  | Some (_, setup, body) ->
      Some { starget = target; setup; body; repeatable = true }
  | None -> (
      match flagged_bfs start ~stop:None with
      | Some body ->
          Some { starget = target; setup = []; body; repeatable = false }
      | None -> None)

(* --- leakage ------------------------------------------------------------ *)

(* The bounded probing experiment: prime, let the victim perform v
   conflicting accesses, probe own blocks once in order, observe only
   own hits/misses.  Replay-faithful set bookkeeping (lowest invalid way
   fills; full-set misses evict through the automaton). *)
let probe_vector m v =
  let assoc = assoc_of m in
  let content = Array.init assoc Fun.id in
  let state = ref (primed_state m) in
  let fresh = ref assoc in
  let step_evct () =
    let victim = evct_output m !state in
    state := Mealy.next_state m !state assoc;
    content.(victim) <- !fresh;
    incr fresh
  in
  for _ = 1 to v do
    step_evct ()
  done;
  let vec = Bytes.make assoc '0' in
  (* Probe newest-primed first: the classic anti-thrashing order.  An
     ascending probe on LRU self-evicts — the refill of block 0 evicts
     block 1 just before its probe — collapsing every v >= 1 to the same
     all-miss vector; descending, the probe only refills behind itself
     and the miss count equals the victim intensity. *)
  for b = assoc - 1 downto 0 do
    let way = ref (-1) in
    Array.iteri (fun w blk -> if blk = b then way := w) content;
    if !way >= 0 then begin
      Bytes.set vec b '1';
      state := Mealy.next_state m !state !way
    end
    else begin
      (* The probe refills its own block. *)
      let victim = evct_output m !state in
      state := Mealy.next_state m !state assoc;
      content.(victim) <- b
    end
  done;
  Bytes.to_string vec

(* Observation-partition fixpoint over the states reachable from the
   primed state: refine by (output row, successor class row) until
   stable.  On a minimized machine this recovers the discrete partition;
   on a raw learned machine it measures behavioural redundancy. *)
let observation_partition m =
  let n = Mealy.n_states m in
  let k = Mealy.n_inputs m in
  let reach = Array.make n false in
  let q = Queue.create () in
  let start = primed_state m in
  reach.(start) <- true;
  Queue.add start q;
  let n_reach = ref 0 in
  while not (Queue.is_empty q) do
    let s = Queue.take q in
    incr n_reach;
    for i = 0 to k - 1 do
      let s' = Mealy.next_state m s i in
      if not reach.(s') then begin
        reach.(s') <- true;
        Queue.add s' q
      end
    done
  done;
  let cls = Array.make n 0 in
  let n_classes = ref 1 in
  let changed = ref true in
  while !changed do
    changed := false;
    let sigs = Hashtbl.create 97 in
    let next_id = ref 0 in
    let fresh = Array.make n 0 in
    for s = 0 to n - 1 do
      if reach.(s) then begin
        let signature =
          ( cls.(s),
            List.init k (fun i ->
                (Mealy.output m s i, cls.(Mealy.next_state m s i))) )
        in
        let id =
          match Hashtbl.find_opt sigs signature with
          | Some id -> id
          | None ->
              let id = !next_id in
              incr next_id;
              Hashtbl.replace sigs signature id;
              id
        in
        fresh.(s) <- id
      end
    done;
    if !next_id <> !n_classes then begin
      changed := true;
      n_classes := !next_id
    end;
    Array.blit fresh 0 cls 0 n
  done;
  (!n_reach, !n_classes, cls)

let log2 x = log x /. log 2.0

let leakage_of m =
  let assoc = assoc_of m in
  let vectors = List.init (assoc + 1) (fun v -> probe_vector m v) in
  let distinct = List.sort_uniq compare vectors in
  let probe_classes = List.length distinct in
  let reachable_states, observation_classes, cls = observation_partition m in
  (* Control-state residue: classes among the states 0..assoc victim
     accesses can reach — what an unbounded observer of the automaton
     state itself could recover. *)
  let victim_states =
    let s = ref (primed_state m) in
    List.init (assoc + 1) (fun v ->
        if v > 0 then s := Mealy.next_state m !s assoc;
        cls.(!s))
  in
  let residual_classes = List.length (List.sort_uniq compare victim_states) in
  {
    probe_classes;
    evicted_information = log2 (float_of_int probe_classes);
    absorbed_noise = assoc + 1 - probe_classes;
    reachable_states;
    observation_classes;
    residual_information = log2 (float_of_int residual_classes);
  }

(* --- the analysis entry points ------------------------------------------ *)

let analyze ?(name = "machine") m =
  let assoc = assoc_of m in
  let evictions =
    List.filter_map (fun t -> shortest_eviction m ~target:t) (List.init assoc Fun.id)
  in
  let eviction_set_size =
    List.fold_left (fun acc e -> max acc e.strategy.misses) 0 evictions
  in
  let eviction_length =
    List.fold_left (fun acc e -> max acc e.strategy.length) 0 evictions
  in
  let stealthies =
    List.filter_map (fun t -> find_stealthy m ~target:t) (List.init assoc Fun.id)
  in
  let stealthy =
    let score st =
      ( (if st.repeatable then 0 else 1),
        List.length st.setup + List.length st.body,
        st.starget )
    in
    match stealthies with
    | [] -> None
    | l -> Some (List.hd (List.sort (fun a b -> compare (score a) (score b)) l))
  in
  {
    name;
    assoc;
    states = Mealy.n_states m;
    evictions;
    eviction_set_size;
    eviction_length;
    stealthies;
    stealthy;
    leakage = leakage_of m;
  }

let analyze_policy p =
  analyze ~name:(Policy.name p) (Policy.to_mealy p)

(* --- dynamic validation ------------------------------------------------- *)

type concrete = { blocks : int array; predicted : Bytes.t }

let concretize ?probe m word =
  let assoc = assoc_of m in
  let content = Array.init assoc Fun.id in
  let state = ref (Mealy.init m) in
  let fresh = ref assoc in
  let blocks = ref [] and predicted = ref [] in
  let push b hit =
    blocks := b :: !blocks;
    predicted := (if hit then '\001' else '\000') :: !predicted
  in
  (* Priming: cold fills of blocks 0..assoc-1 touch ways 0..assoc-1. *)
  for w = 0 to assoc - 1 do
    push w false;
    state := Mealy.next_state m !state w
  done;
  List.iter
    (fun i ->
      if i < assoc then begin
        push content.(i) true;
        state := Mealy.next_state m !state i
      end
      else begin
        let b = !fresh in
        incr fresh;
        push b false;
        let victim = evct_output m !state in
        state := Mealy.next_state m !state assoc;
        content.(victim) <- b
      end)
    word;
  (match probe with
  | None -> ()
  | Some (`Evicted t) -> push t false
  | Some (`Resident t) -> push t true);
  {
    blocks = Array.of_list (List.rev !blocks);
    predicted = Bytes.of_string (String.init (List.length !predicted)
                                   (let arr = Array.of_list (List.rev !predicted) in
                                    fun i -> arr.(i)));
  }

let stealthy_word st =
  st.setup @ (if st.repeatable then st.body @ st.body @ st.body else st.body)

let check_stream label expected actual =
  if Bytes.equal expected actual then Ok ()
  else
    Error
      (Printf.sprintf "%s: predicted %S, replayed %S" label
         (Bytes.to_string expected) (Bytes.to_string actual))

let fold_results l =
  List.fold_left
    (fun acc r -> match acc with Error _ -> acc | Ok () -> r)
    (Ok ()) l

(* Every strategy of a report as (label, probe, word). *)
let report_words r =
  List.map
    (fun e ->
      ( Printf.sprintf "%s eviction of line %d" r.name e.target,
        `Evicted e.target,
        e.strategy.word ))
    r.evictions
  @ List.map
      (fun st ->
        ( Printf.sprintf "%s stealthy sequence for line %d%s" r.name st.starget
            (if st.repeatable then " (x3)" else ""),
          `Resident st.starget,
          stealthy_word st ))
      r.stealthies

let verify p r =
  let m = Policy.to_mealy p in
  let c = Mealy.compile m in
  fold_results
    (List.concat_map
       (fun (label, probe, word) ->
         let conc = concretize ~probe m word in
         let via name outcome =
           check_stream (label ^ " via " ^ name) conc.predicted
             outcome.Replay.stream
         in
         [
           via "Replay.policy"
             (Replay.policy ~initial:[||] ~fill_touch:true p conc.blocks);
           via "Replay.machine"
             (Replay.machine ~initial:[||] ~fill_touch:true m conc.blocks);
           via "Replay.compiled"
             (Replay.compiled ~initial:[||] ~fill_touch:true c conc.blocks);
         ])
       (report_words r))

let hw_model p =
  let assoc = Policy.assoc p in
  let lvl a sets hit pol =
    {
      Cq_hwsim.Cpu_model.assoc = a;
      slices = 1;
      sets_per_slice = sets;
      hit_latency = hit;
      policy = Cq_hwsim.Cpu_model.Fixed pol;
      fill_touches_policy = true;
    }
  in
  {
    Cq_hwsim.Cpu_model.name = "cq-attack probe";
    codename = "attack";
    line_size = 64;
    l1 = lvl assoc 2 4 (fun _ -> p);
    l2 = lvl 16 128 12 Cq_policy.Lru.make;
    l3 = lvl 16 512 40 Cq_policy.Lru.make;
    memory_latency = 200;
    supports_cat = false;
    slice_masks = [||];
  }

let verify_hwsim p r =
  let m = Policy.to_mealy p in
  let model = hw_model p in
  fold_results
    (List.map
       (fun (label, probe, word) ->
         let conc = concretize ~probe m word in
         let hw =
           Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise model
         in
         Cq_hwsim.Machine.set_prefetchers hw false;
         let stream =
           Cq_hwsim.Machine.replay_set hw Cq_hwsim.Cpu_model.L1 ~slice:0
             ~set:0 conc.blocks
         in
         check_stream (label ^ " via hwsim") conc.predicted stream)
       (report_words r))

(* --- rendering ---------------------------------------------------------- *)

let js = Cq_util.Metrics.json_string

let word_json w = "[" ^ String.concat ", " (List.map string_of_int w) ^ "]"

let stealthy_json ~assoc st =
  let misses = List.filter (fun i -> i = assoc) (st.setup @ st.body) in
  Printf.sprintf
    "{\"target\": %d, \"setup_length\": %d, \"body_length\": %d, \
     \"misses\": %d, \"repeatable\": %b, \"setup\": %s, \"body\": %s}"
    st.starget (List.length st.setup) (List.length st.body)
    (List.length misses) st.repeatable (word_json st.setup)
    (word_json st.body)

let report_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"policy\": %s,\n  \"assoc\": %d,\n  \"states\": %d,\n"
       (js r.name) r.assoc r.states);
  Buffer.add_string b
    (Printf.sprintf
       "  \"eviction_set_size\": %d,\n  \"eviction_length\": %d,\n"
       r.eviction_set_size r.eviction_length);
  Buffer.add_string b "  \"evictions\": [";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"target\": %d, \"length\": %d, \"accesses\": %d, \"misses\": \
            %d, \"word\": %s}"
           e.target e.strategy.length e.strategy.accesses e.strategy.misses
           (word_json e.strategy.word)))
    r.evictions;
  Buffer.add_string b "],\n";
  (match r.stealthy with
  | None -> Buffer.add_string b "  \"stealthy\": null,\n"
  | Some st ->
      Buffer.add_string b
        (Printf.sprintf "  \"stealthy\": %s,\n"
           (stealthy_json ~assoc:r.assoc st)));
  let l = r.leakage in
  Buffer.add_string b
    (Printf.sprintf
       "  \"leakage\": {\"probe_classes\": %d, \"evicted_information\": %.6f, \
        \"absorbed_noise\": %d, \"reachable_states\": %d, \
        \"observation_classes\": %d, \"residual_information\": %.6f}\n}\n"
       l.probe_classes l.evicted_information l.absorbed_noise
       l.reachable_states l.observation_classes l.residual_information);
  Buffer.contents b

let pp_stealthy ~assoc ppf st =
  let word w =
    String.concat " "
      (List.map
         (fun i -> if i = assoc then "miss" else Printf.sprintf "Ln(%d)" i)
         w)
  in
  Fmt.pf ppf "target %d: %s[%s]%s" st.starget
    (match st.setup with [] -> "" | s -> word s ^ " | ")
    (word st.body)
    (if st.repeatable then " (repeatable)" else " (one-shot)")

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s (assoc %d, %d states)@," r.name r.assoc r.states;
  Fmt.pf ppf "  eviction set size %d, longest strategy %d@,"
    r.eviction_set_size r.eviction_length;
  List.iter
    (fun e ->
      Fmt.pf ppf "  evict line %d: %a@," e.target
        (pp_strategy ~assoc:r.assoc) e.strategy)
    r.evictions;
  (match r.stealthy with
  | None -> Fmt.pf ppf "  no stealthy sequence@,"
  | Some st -> Fmt.pf ppf "  stealthy %a@," (pp_stealthy ~assoc:r.assoc) st);
  let l = r.leakage in
  Fmt.pf ppf
    "  leakage: %.2f bits evicted (%d classes), %d noise levels absorbed, \
     %.2f bits residual (%d/%d states)@]"
    l.evicted_information l.probe_classes l.absorbed_noise
    l.residual_information l.observation_classes l.reachable_states

let pp_table ppf reports =
  let sorted =
    List.sort
      (fun a b ->
        match
          compare b.leakage.evicted_information a.leakage.evicted_information
        with
        | 0 -> (
            match compare a.eviction_set_size b.eviction_set_size with
            | 0 -> compare a.name b.name
            | c -> c)
        | c -> c)
      reports
  in
  Fmt.pf ppf "@[<v>%-10s %5s %7s %6s %6s %8s %6s %8s %8s@," "policy" "assoc"
    "states" "evset" "evlen" "stealth" "leak" "absorbed" "residual";
  List.iter
    (fun r ->
      let stealth =
        match r.stealthy with
        | None -> "-"
        | Some st ->
            Printf.sprintf "%d%s"
              (List.length st.setup + List.length st.body)
              (if st.repeatable then "R" else "!")
      in
      Fmt.pf ppf "%-10s %5d %7d %6d %6d %8s %6.2f %8d %8.2f@," r.name r.assoc
        r.states r.eviction_set_size r.eviction_length stealth
        r.leakage.evicted_information r.leakage.absorbed_noise
        r.leakage.residual_information)
    sorted;
  Fmt.pf ppf "@]"

(* --- DOT input ---------------------------------------------------------- *)

let machine_of_dot text =
  (* Infer the associativity from the largest Ln(i) label so "Evct" can
     be mapped to its dense index. *)
  let max_ln = ref (-1) in
  let len = String.length text in
  let rec scan i =
    if i + 3 < len then begin
      if String.sub text i 3 = "Ln(" then begin
        let j = ref (i + 3) in
        while !j < len && text.[!j] <> ')' do
          incr j
        done;
        (match int_of_string_opt (String.sub text (i + 3) (!j - i - 3)) with
        | Some k -> max_ln := max !max_ln k
        | None -> ());
        scan (!j + 1)
      end
      else scan (i + 1)
    end
  in
  scan 0;
  if !max_ln < 0 then Error "no Ln(i) edge labels found"
  else
    let assoc = !max_ln + 1 in
    Mealy.of_dot
      ~input_of_label:(fun l ->
        let l = String.trim l in
        if l = "Evct" then Some assoc
        else if String.length l > 4 && String.sub l 0 3 = "Ln(" then
          int_of_string_opt (String.sub l 3 (String.length l - 4))
        else None)
      ~output_of_label:(fun l ->
        let l = String.trim l in
        if l = "_" then Some None
        else Option.map (fun i -> Some i) (int_of_string_opt l))
      text
