(* Model checking of replacement-policy automata against the structural
   axioms of Definition 2.1.  See the .mli for the axiom list.

   Everything here is a whole-machine pass over explicit transition
   tables, so the costs are: O(states * inputs) for the IO-shape and
   reachability checks, O(states^2 * inputs) for minimality, and
   O(states^3 * inputs) per transposition for symmetry (a
   some-start-state equivalence per candidate start).  The symmetry pass
   is therefore bounded by [max_symmetry_states]. *)

module Mealy = Cq_automata.Mealy

type violation =
  | Bad_alphabet of { n_inputs : int; expected : int }
  | Line_evicts of { state : int; line : int; evicted : int }
  | Evct_no_eviction of { state : int }
  | Evct_out_of_range of { state : int; line : int }
  | Unreachable of { states : int }
  | Not_minimal of { states : int; minimal : int }
  | Asymmetric of { line : int }

type symmetry_level = Strict | Up_to_reset_order | Broken | Not_checked

type report = {
  assoc : int;
  states : int;
  symmetry : symmetry_level;
  violations : violation list;
}

let symmetry_checked r = r.symmetry <> Not_checked

let ok r = r.violations = []

let pp_violation ppf = function
  | Bad_alphabet { n_inputs; expected } ->
      Fmt.pf ppf "alphabet has %d inputs, expected %d" n_inputs expected
  | Line_evicts { state; line; evicted } ->
      Fmt.pf ppf "Ln(%d) in state %d evicts line %d (hits must not evict)"
        line state evicted
  | Evct_no_eviction { state } ->
      Fmt.pf ppf "Evct in state %d evicts nothing" state
  | Evct_out_of_range { state; line } ->
      Fmt.pf ppf "Evct in state %d evicts out-of-range line %d" state line
  | Unreachable { states } ->
      Fmt.pf ppf "%d state(s) unreachable from the initial state" states
  | Not_minimal { states; minimal } ->
      Fmt.pf ppf "not minimal: %d states, equivalent to %d" states minimal
  | Asymmetric { line } ->
      Fmt.pf ppf
        "no reachable state ever evicts line %d (a hard-wired victim set)"
        line

let symmetry_note = function
  | Strict -> ""
  | Up_to_reset_order -> "; symmetric up to reset ordering"
  | Broken -> "" (* the Asymmetric violations say it *)
  | Not_checked -> "; symmetry not checked"

let pp_report ppf r =
  match r.violations with
  | [] ->
      Fmt.pf ppf "policy axioms hold (%d states, associativity %d%s)" r.states
        r.assoc (symmetry_note r.symmetry)
  | vs ->
      let shown, rest =
        if List.length vs <= 5 then (vs, 0)
        else (List.filteri (fun i _ -> i < 5) vs, List.length vs - 5)
      in
      Fmt.pf ppf "%d axiom violation(s): %a%s" (List.length vs)
        Fmt.(list ~sep:(any "; ") pp_violation)
        shown
        (if rest = 0 then "" else Fmt.str "; ... %d more" rest)

let report_to_string r = Fmt.str "%a" pp_report r

let bump ?(n = 1) registry name =
  match registry with
  | None -> ()
  | Some r -> Cq_util.Metrics.add (Cq_util.Metrics.counter r name) n

let transposition assoc i =
  List.init assoc (fun j -> if j = i then i + 1 else if j = i + 1 then i else j)

(* A quotient-learned machine carries merge witnesses: each (s, s0, perm)
   claims that state [s] behaves as state [s0] conjugated by [perm] —
   res_m(s) = perm . res_m(s0) . perm^-1.  Conjugating the whole machine
   by perm^-1 ([Zoo.relabel_lines] with that permutation) turns the claim
   into plain trace equivalence between two anchored start states, so
   each triple costs one product walk — O(states * inputs) — instead of
   the cubic some-start-state search. *)
let witness_triple_holds assoc m (s, s0, perm) =
  let n = Mealy.n_states m in
  s >= 0 && s < n && s0 >= 0 && s0 < n
  && List.length perm = assoc
  && List.for_all (fun i -> i >= 0 && i < assoc) perm
  &&
  let inverse = Array.make assoc 0 in
  List.iteri (fun j i -> inverse.(i) <- j) perm;
  let relabeled =
    Cq_policy.Zoo.relabel_lines assoc (Array.to_list inverse) m
  in
  Cq_automata.Mealy.find_counterexample ~from_a:(Some s) ~from_b:(Some s0) m
    relabeled
  = None

(* Bound the validation work: the witness is a (bounded) sample of the
   machine's merges anyway, so checking a prefix keeps the cost linear in
   [max_witness_triples] rather than in the orbit closure. *)
let max_witness_triples = 64

let check ?(symmetry = true) ?(max_symmetry_states = 512) ?symmetry_witness
    ?registry ~assoc m =
  if assoc < 1 then
    invalid_arg "Automaton_check.check: associativity must be >= 1";
  Cq_util.Trace.with_span ~cat:"analysis" "analysis.automaton_check"
    ~args:[ ("states", string_of_int (Mealy.n_states m)) ]
    (fun () ->
      bump registry "analysis.automaton.checked";
      let states = Mealy.n_states m in
      let expected = assoc + 1 in
      let finish symmetry violations =
        bump ~n:(List.length violations) registry
          "analysis.automaton.violations";
        { assoc; states; symmetry; violations }
      in
      if Mealy.n_inputs m <> expected then
        (* The per-state checks all assume the {Ln(i), Evct} encoding; with
           the wrong alphabet they would be noise. *)
        finish Not_checked
          [ Bad_alphabet { n_inputs = Mealy.n_inputs m; expected } ]
      else begin
        let violations = ref [] in
        let add v = violations := v :: !violations in
        (* Hit consistency: output shape per (state, input). *)
        for s = 0 to states - 1 do
          (match Mealy.output m s assoc with
          | None -> add (Evct_no_eviction { state = s })
          | Some l when l < 0 || l >= assoc ->
              add (Evct_out_of_range { state = s; line = l })
          | Some _ -> ());
          for i = 0 to assoc - 1 do
            match Mealy.output m s i with
            | None -> ()
            | Some l -> add (Line_evicts { state = s; line = i; evicted = l })
          done
        done;
        (* Conjugation and the evictability scan both assume outputs are
           well-shaped; on an IO violation the symmetry pass is skipped
           rather than run on garbage. *)
        let io_ok = !violations = [] in
        (* Reachability. *)
        let access = Mealy.access_sequences m in
        let unreachable =
          Array.fold_left
            (fun n seq -> if seq = None then n + 1 else n)
            0 access
        in
        if unreachable > 0 then add (Unreachable { states = unreachable });
        (* Minimality. *)
        let minimal = Mealy.n_states (Mealy.minimize m) in
        if minimal < states then add (Not_minimal { states; minimal });
        (* Line-permutation symmetry.  Tier 1 (strict): conjugating by
           every adjacent transposition yields a machine trace-equivalent
           to the original from some control state (the transposition
           generators suffice: conjugation is a group homomorphism).
           LRU, MRU, LIP and the RRIP family are strict.

           Strictness is sufficient but not necessary: a learned machine
           only contains the states reachable from the reset state, and
           some policies bake the reset's line ordering into that
           component.  FIFO's minimal automaton is a round-robin pointer
           whose (0 1)-conjugate evicts in the order 1,0,2,3 — a cycle no
           FIFO state produces; PLRU's tree pairs lines, so a swap across
           subtrees escapes the component.  Physically both are conjugates
           of the same policy learned under a different reset ordering.

           Tier 2 (up to reset order): when strict conjugation fails, the
           sound necessary condition is that no line is a hard-wired
           non-victim — every line must be evicted in some reachable
           state.  Strictness implies this (the evicted-line set of a
           nonempty, swap-invariant machine is full), and a machine that
           fails it really does privilege a line (e.g. a constant-victim
           automaton), which no renaming of the reset can explain. *)
        let evictability_scan () =
          let evicted = Array.make assoc false in
          Array.iteri
            (fun s seq ->
              if seq <> None then
                match Mealy.output m s assoc with
                | Some l when l >= 0 && l < assoc -> evicted.(l) <- true
                | _ -> ())
            access;
          let missing = ref [] in
          for l = assoc - 1 downto 0 do
            if not evicted.(l) then missing := l :: !missing
          done;
          match !missing with
          | [] -> Up_to_reset_order
          | lines ->
              List.iter (fun line -> add (Asymmetric { line })) lines;
              Broken
        in
        let brute_force () =
          if states > max_symmetry_states then Not_checked
          else if
            let strict_swap i =
              let perm = transposition assoc i in
              let relabeled = Cq_policy.Zoo.relabel_lines assoc perm m in
              Cq_policy.Zoo.matches_from_some_state m relabeled
            in
            List.for_all strict_swap (List.init (assoc - 1) Fun.id)
          then Strict
          else evictability_scan ()
        in
        let sym =
          if not (symmetry && io_ok && assoc >= 2) then Not_checked
          else
            (* A symmetry witness from the quotient learner replaces the
               cubic some-start-state search with one anchored product
               walk per merge triple, so the machine's internal symmetry
               stays checkable even past [max_symmetry_states] — there
               the evictability scan supplies the tier verdict. *)
            match symmetry_witness with
            | Some (_ :: _ as witness) ->
                let sample =
                  List.filteri (fun i _ -> i < max_witness_triples) witness
                in
                if List.for_all (witness_triple_holds assoc m) sample then
                  if states <= max_symmetry_states then brute_force ()
                  else evictability_scan ()
                else
                  (* A merge the quotient claimed to have verified does
                     not hold of the learned machine: something corrupted
                     the run, so fall back to the full brute-force tiers
                     rather than trust the witness. *)
                  brute_force ()
            | _ -> brute_force ()
        in
        finish sym (List.rev !violations)
      end)

let diagnose ~assoc m =
  let r = check ~assoc m in
  if ok r then None else Some (report_to_string r)
