(* Self-analysis: lexical hazard patterns over the repo's own sources.

   The matcher works on a *stripped* copy of each file — comments, string
   literals, char literals and quoted-string literals blanked out, line
   structure preserved — produced by a small OCaml lexer below.  That
   keeps the rules dumb (substring tests per line) without false
   positives from documentation.  Suppressions are ordinary comments
   ([cq-lint: allow <rule>] on the offending line or the one above), so
   they survive in the raw text the stripper erased and double as
   documentation of why the pattern is safe at that site. *)

type finding = {
  file : string;
  line : int;
  rule : string;
  excerpt : string;
  message : string;
}

let rules =
  [
    ( "hashtbl-add",
      "Hashtbl.add silently stacks bindings; use Hashtbl.replace unless \
       shadowing is intended" );
    ( "wall-clock",
      "direct wall-clock read; route through Cq_util.Clock so deadlines \
       and drift share one clock" );
    ( "marshal-unvalidated",
      "Marshal.from_* without Digest validation anywhere in the file; \
       stale bytes segfault" );
    ( "domain-shared-state",
      "mutable state in a Domain.spawn-ing file; share via Atomic or \
       document the single-writer discipline" );
    ( "hot-loop-alloc",
      "allocation in a hot-loop region (List combinator or closure); \
       hoist it out of the loop or audit it with an allow" );
    ( "stray-artifact",
      "scratch/snapshot artifact in the source tree; runtime state \
       (wl-scratch-* dirs, *.snap session snapshots) must stay out of \
       version control" );
  ]

(* --- Stripping --------------------------------------------------------- *)

(* Blank out comments (nested, and the strings nested inside them), string
   literals, quoted-string literals ({id|...|id}) and char literals,
   preserving newlines so line numbers survive. *)
let strip src =
  let n = String.length src in
  let buf = Bytes.of_string src in
  let blank i = if Bytes.get buf i <> '\n' then Bytes.set buf i ' ' in
  let blank_range i j =
    for k = i to min j (n - 1) do
      blank k
    done
  in
  let rec code i =
    if i >= n then ()
    else
      match src.[i] with
      | '(' when i + 1 < n && src.[i + 1] = '*' ->
          blank_range i (i + 1);
          comment 1 (i + 2)
      | '"' -> string `Code (i + 1)
      | '{' -> (
          (* {id|...|id} quoted strings. *)
          let j = ref (i + 1) in
          while
            !j < n
            && (match src.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
          do
            incr j
          done;
          if !j < n && src.[!j] = '|' then begin
            let id = String.sub src (i + 1) (!j - i - 1) in
            let close = "|" ^ id ^ "}" in
            quoted close (!j + 1) (i + 1)
          end
          else code (i + 1))
      | '\'' ->
          if i + 1 < n && src.[i + 1] = '\\' then begin
            (* escaped char literal: find the closing quote *)
            let j = ref (i + 2) in
            while !j < n && !j <= i + 6 && src.[!j] <> '\'' do
              incr j
            done;
            if !j < n && src.[!j] = '\'' then begin
              blank_range i !j;
              code (!j + 1)
            end
            else code (i + 1)
          end
          else if i + 2 < n && src.[i + 2] = '\'' then begin
            blank_range i (i + 2);
            code (i + 3)
          end
          else code (i + 1) (* type variable or post-identifier quote *)
      | _ -> code (i + 1)
  and comment depth i =
    if i >= n then ()
    else
      match src.[i] with
      | '(' when i + 1 < n && src.[i + 1] = '*' ->
          blank_range i (i + 1);
          comment (depth + 1) (i + 2)
      | '*' when i + 1 < n && src.[i + 1] = ')' ->
          blank_range i (i + 1);
          if depth = 1 then code (i + 2) else comment (depth - 1) (i + 2)
      | '"' ->
          blank i;
          string (`Comment depth) (i + 1)
      | _ ->
          blank i;
          comment depth (i + 1)
  and string ret i =
    if i >= n then ()
    else
      match src.[i] with
      | '\\' ->
          blank i;
          if i + 1 < n then blank (i + 1);
          string ret (i + 2)
      | '"' -> (
          match ret with
          | `Code -> code (i + 1)
          | `Comment d ->
              blank i;
              comment d (i + 1))
      | _ ->
          blank i;
          string ret (i + 1)
  and quoted close i start =
    (* scan for [close], blanking the body *)
    let cn = String.length close in
    let rec find i =
      if i + cn > n then blank_range start (n - 1)
      else if String.sub src i cn = close then begin
        blank_range start (i - 1);
        code (i + cn)
      end
      else find (i + 1)
    in
    find i
  in
  code 0;
  Bytes.to_string buf

(* --- Matching ---------------------------------------------------------- *)

let is_ident_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* Does [line] contain [needle] not followed by an identifier character?
   (So "Hashtbl.add" does not match "Hashtbl.add_seq".) *)
let contains_token line needle =
  let nl = String.length line and nn = String.length needle in
  let rec at i =
    if i + nn > nl then false
    else if
      String.sub line i nn = needle
      && (i + nn >= nl || not (is_ident_char line.[i + nn]))
    then true
    else at (i + 1)
  in
  at 0

let contains_sub line needle =
  let nl = String.length line and nn = String.length needle in
  let rec at i =
    if i + nn > nl then false
    else if String.sub line i nn = needle then true
    else at (i + 1)
  in
  at 0

let split_lines s = String.split_on_char '\n' s

let find_sub line needle =
  let nl = String.length line and nn = String.length needle in
  let rec at i =
    if i + nn > nl then None
    else if String.sub line i nn = needle then Some i
    else at (i + 1)
  in
  at 0

(* [cq-lint: allow <rule>: reason] in the raw text of the finding's line
   or the line above.  A bare [allow <rule>] with no stated reason does
   NOT suppress (tightened after the Hashtbl.add dedup sweep): every
   surviving suppression must document why the pattern is safe at that
   site, so allows cannot accrete as unexplained noise. *)
let allowed raw_lines line rule =
  let marker = "cq-lint: allow " ^ rule in
  let reasoned l =
    match find_sub l marker with
    | None -> false
    | Some i ->
        let j = i + String.length marker in
        if j < String.length l && is_ident_char l.[j] then
          (* A longer rule name ("hashtbl-addendum"): not this rule. *)
          false
        else begin
          (* A reason = at least one letter or digit after the rule name,
             before the comment closes. *)
          let rest = String.sub l j (String.length l - j) in
          let stop =
            match find_sub rest "*)" with
            | Some k -> k
            | None -> String.length rest
          in
          let rec scan k =
            k < stop
            && (match rest.[k] with
               | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' -> true
               | _ -> scan (k + 1))
          in
          scan 0
        end
  in
  let check idx =
    idx >= 1 && idx <= Array.length raw_lines && reasoned raw_lines.(idx - 1)
  in
  check line || check (line - 1)

let message_of rule = List.assoc rule rules

(* Hot-loop regions are declared in the raw text (the markers are
   comments, so the stripper erases them): a standalone comment line
   with the prefixed "hot-loop" marker opens a region, the prefixed
   "end hot-loop" marker closes it (the exact strings are in the code
   below — writing them out in this comment would mark this file).
   Inside a region every List combinator and closure allocation is a
   finding unless audited with an allow — the point is not that such
   code is wrong, but that allocation on a marked path must be a
   decision someone wrote a justification for.

   A marker only counts when its stripped line is blank, i.e. the
   marker sits in a comment with no code beside it.  That keeps string
   literals that merely *mention* the marker (this linter's own source,
   its tests) from opening phantom regions. *)
let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') s

let hot_regions raw_lines stripped_lines =
  let n = Array.length raw_lines in
  let hot = Array.make n false in
  let in_region = ref false in
  for i = 0 to n - 1 do
    let marker m =
      contains_sub raw_lines.(i) m && is_blank stripped_lines.(i)
    in
    if marker "cq-lint: end hot-loop" then in_region := false
    else if marker "cq-lint: hot-loop" then in_region := true
    else hot.(i) <- !in_region
  done;
  hot

let lint_source ~file src =
  let stripped = Array.of_list (split_lines (strip src)) in
  let raw = Array.of_list (split_lines src) in
  let hot = hot_regions raw stripped in
  let findings = ref [] in
  let emit line rule =
    if not (allowed raw line rule) then
      findings :=
        {
          file;
          line;
          rule;
          excerpt = String.trim raw.(line - 1);
          message = message_of rule;
        }
        :: !findings
  in
  let spawns_domains = ref false in
  let has_digest = ref false in
  Array.iter
    (fun l ->
      if contains_token l "Domain.spawn" then spawns_domains := true;
      if contains_sub l "Digest." then has_digest := true)
    stripped;
  Array.iteri
    (fun i l ->
      let line = i + 1 in
      if contains_token l "Hashtbl.add" then emit line "hashtbl-add";
      if contains_token l "Unix.gettimeofday" || contains_token l "Sys.time"
      then emit line "wall-clock";
      if contains_sub l "Marshal.from_" && not !has_digest then
        emit line "marshal-unvalidated";
      if
        !spawns_domains
        && (contains_sub l "= ref " || contains_sub l "= ref("
           || contains_token l "Hashtbl.create")
      then emit line "domain-shared-state";
      if hot.(i) && (contains_sub l "List." || contains_token l "fun") then
        emit line "hot-loop-alloc")
    stripped;
  List.rev !findings

let lint_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | src -> lint_source ~file:path src
  | exception Sys_error _ -> []

let is_ml path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

(* Scratch state that PR 9's test run accidentally committed: daemon
   state dirs and learning-session snapshots.  They are runtime
   artifacts, not sources, so their mere presence under a linted path is
   a finding — there is no allow (the fix is deletion, and a binary
   snapshot cannot carry an annotation anyway). *)
let is_stray_name base =
  Filename.check_suffix base ".snap"
  || String.length base >= 11
     && String.sub base 0 11 = "wl-scratch-"

let stray_finding path =
  {
    file = path;
    line = 1;
    rule = "stray-artifact";
    excerpt = Filename.basename path;
    message = message_of "stray-artifact";
  }

let rec walk path ((mls, strays) as acc) =
  if Sys.is_directory path then
    let acc =
      if is_stray_name (Filename.basename path) then
        (mls, stray_finding path :: strays)
      else acc
    in
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry = "_build" then acc
        else walk (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if is_stray_name (Filename.basename path) then
    (mls, stray_finding path :: strays)
  else if is_ml path then (path :: mls, strays)
  else acc

let lint_paths paths =
  let mls, strays =
    List.fold_left (fun acc p -> walk p acc) ([], []) paths
  in
  let files = List.rev mls in
  let findings = strays @ List.concat_map lint_file files in
  List.sort
    (fun a b ->
      match compare a.file b.file with 0 -> compare a.line b.line | c -> c)
    findings

let pp_finding ppf f =
  Fmt.pf ppf "%s:%d: [%s] %s@,    %s" f.file f.line f.rule f.message f.excerpt

let report_json findings =
  let js = Cq_util.Metrics.json_string in
  let one f =
    Printf.sprintf
      "{\"file\": %s, \"line\": %d, \"rule\": %s, \"message\": %s, \
       \"excerpt\": %s}"
      (js f.file) f.line (js f.rule) (js f.message) (js f.excerpt)
  in
  "[\n  " ^ String.concat ",\n  " (List.map one findings) ^ "\n]\n"
