(** Static security analysis of learned replacement-policy automata.

    The paper's security discussion (§10) and the follow-up literature
    (RELOAD+REFRESH; Cañones/Köpf/Reineke, "Security Analysis of Cache
    Replacement Policies") motivate exactly this pass: once the policy
    automaton is known, eviction strategies, stealthy hit/miss-controlling
    sequences and leakage bounds are {e derivable} rather than found by
    blind testing.

    {2 Setting}

    One cache set of associativity [a], governed by a learned Mealy
    machine over inputs [Ln(0) .. Ln(a-1), Evct] and outputs [⊥ / evicted
    line].  The analysis starts from the {e primed} configuration: a cold
    set filled with the attacker's blocks [0 .. a-1] (block [w] in way
    [w]), the automaton in the state those fills establish.  Every
    synthesized word is therefore directly replayable — and is replayed,
    by {!verify} and {!verify_hwsim} — as a concrete block trace whose
    hit/miss stream must match the prediction byte for byte.

    {2 Threat models}

    - {e Eviction} (PRIME+PROBE): the victim's block sits in line
      [target]; the attacker may touch its own resident lines and insert
      fresh blocks, but never accesses the victim's line.  {!shortest}
      minimizes first the number of fresh blocks (the eviction-set size),
      then the sequence length.
    - {e Stealth} (RELOAD+REFRESH): the victim's line is shared read-only
      memory, so the attacker {e may} access it (the reload); the
      constraint is that no insertion ever evicts it.  {!find_stealthy}
      searches the product of the automaton with the
      target-line-resident flag for the shortest controlling word —
      preferring a {e repeatable} cycle (the automaton returns to the
      cycle's entry state, so the pattern sustains forever), falling
      back to a one-shot word for policies, like FIFO, that admit no
      refresh cycle.
    - {e Leakage}: a bounded attacker primes the set, the victim performs
      [v] conflicting accesses, the attacker probes its blocks once in
      order and observes only its own hits and misses.  The number of
      distinguishable probe vectors over [v = 0 .. a] gives the evicted
      information (bits); the collapsed levels are the absorbed noise.
      A partition-refinement fixpoint over the reachable states gives the
      unbounded-adversary ceiling ({!leakage.residual_information}). *)

type strategy = {
  word : int list;  (** over the flattened alphabet; [assoc] = Evct *)
  length : int;
  accesses : int;  (** [Ln] inputs: touches of resident attacker lines *)
  misses : int;  (** [Evct] inputs: fresh-block insertions *)
}

type eviction = {
  target : int;
  strategy : strategy;  (** its last input is the evicting [Evct] *)
}

type stealthy = {
  starget : int;  (** the protected (victim) line *)
  setup : int list;  (** primed state -> cycle entry; may be [[]] *)
  body : int list;
      (** >= 1 controlled miss and >= 1 reload of the target, never
          evicting it *)
  repeatable : bool;
      (** [body] returns the automaton to the cycle entry state, so it
          can run forever without ever evicting the target *)
}

type leakage = {
  probe_classes : int;
      (** distinct probe vectors over victim intensities [0 .. assoc] *)
  evicted_information : float;  (** [log2 probe_classes], bits *)
  absorbed_noise : int;
      (** [(assoc + 1) - probe_classes]: victim intensities the policy
          renders indistinguishable to the probing attacker *)
  reachable_states : int;  (** states reachable from the primed state *)
  observation_classes : int;
      (** partition-refinement fixpoint classes over reachable states *)
  residual_information : float;
      (** unbounded-adversary bits: log2 of the number of observation
          classes among the states one victim access can reach *)
}

type report = {
  name : string;
  assoc : int;
  states : int;
  evictions : eviction list;  (** one per evictable target line *)
  eviction_set_size : int;
      (** worst case over targets of [strategy.misses] — the number of
          distinct fresh blocks the attacker must provision *)
  eviction_length : int;  (** worst case over targets of [strategy.length] *)
  stealthies : stealthy list;  (** one per target admitting stealth *)
  stealthy : stealthy option;
      (** the headline: repeatable preferred, then shortest *)
  leakage : leakage;
}

val pp_strategy : assoc:int -> Format.formatter -> strategy -> unit

val shortest_eviction :
  Cq_policy.Types.output Cq_automata.Mealy.t -> target:int -> eviction option
(** Shortest eviction word for one target line under the PRIME+PROBE
    model (the attacker never touches the target), minimizing fresh
    blocks first, then length — Dijkstra from the primed state.  [None]
    when the policy never evicts that line without the attacker touching
    it. *)

val find_stealthy :
  ?max_anchors:int ->
  Cq_policy.Types.output Cq_automata.Mealy.t ->
  target:int ->
  stealthy option
(** A short stealthy controlling sequence for one target line (see
    {!stealthy}) — deterministic, found by bounded best-first search
    over cycle entries in BFS order, but not certified minimal.
    [max_anchors] caps the cycle-entry candidates scanned (default
    512); a one-shot result does not claim no cycle exists beyond the
    cap. *)

val analyze :
  ?name:string -> Cq_policy.Types.output Cq_automata.Mealy.t -> report
(** Analyze a policy automaton (alphabet [Ln(0..a-1), Evct]).  Purely
    deterministic: equal machines yield equal reports.  Raises
    [Invalid_argument] on machines that emit ⊥ on [Evct] (no such
    machine passes the learner's hit-consistency check). *)

val analyze_policy : Cq_policy.Policy.t -> report
(** [analyze (Policy.to_mealy p)] with the policy's name. *)

(** {2 Dynamic validation} *)

type concrete = {
  blocks : int array;
      (** priming fills [0 .. assoc-1], then the strategy's accesses *)
  predicted : Bytes.t;  (** one byte per access, [1] = hit *)
}

val concretize :
  ?probe:[ `Evicted of int | `Resident of int ] ->
  Cq_policy.Types.output Cq_automata.Mealy.t ->
  int list ->
  concrete
(** Lower an input word to a block trace from a cold set: the priming
    fills, then [Ln(i)] becomes an access to way [i]'s current resident
    (a hit) and [Evct] an access to a fresh block (a miss).  [probe]
    appends one access to the target line's original block, predicted to
    miss (after an eviction) or hit (under stealth) — turning the
    semantic claim into one more byte the replay must reproduce. *)

val verify : Cq_policy.Policy.t -> report -> (unit, string) result
(** Replay every synthesized strategy of [report] through
    {!Cq_workload.Replay.policy}, {!Cq_workload.Replay.machine} and
    {!Cq_workload.Replay.compiled} (cold start, fills touching the
    policy) and compare each stream against the prediction byte for
    byte.  The error names the first diverging strategy. *)

val hw_model : Cq_policy.Policy.t -> Cq_hwsim.Cpu_model.t
(** A single-slice CPU model whose L1 runs the given policy at its
    associativity, with capacity headroom below so inclusive
    back-invalidation never touches the analyzed set. *)

val verify_hwsim : Cq_policy.Policy.t -> report -> (unit, string) result
(** As {!verify}, but the streams come from a quiet, prefetcher-less
    {!Cq_hwsim.Machine} replaying the concrete traces against
    {!hw_model} — the synthesized attacks must work on the simulated
    silicon, not just on the abstract automaton. *)

(** {2 Report rendering} *)

val report_json : report -> string
val pp_report : Format.formatter -> report -> unit

val pp_table : Format.formatter -> report list -> unit
(** One row per report, ranked most-leaky first (evicted information
    descending, then eviction-set size ascending, then name). *)

val machine_of_dot :
  string -> (Cq_policy.Types.output Cq_automata.Mealy.t, string) result
(** Parse a policy automaton from the DOT text [polca --dot] emits
    (labels ["Ln(i)" / "Evct"] and ["_" / line index]). *)
