(** A small lint pass over this repository's own OCaml sources, looking
    for hazard patterns the project has already been bitten by:

    - [hashtbl-add]: [Hashtbl.add] where [Hashtbl.replace] is almost
      always meant — [add] silently stacks bindings, which turned the
      frontend's query memo into a leak until PR 2 fixed it;
    - [wall-clock]: direct [Unix.gettimeofday] / [Sys.time] reads outside
      [Cq_util.Clock] — deadlines and drift detection must share one
      clock so they can be reasoned about (and faked) together;
    - [marshal-unvalidated]: a file that [Marshal.from_*]s untrusted
      bytes without any [Digest] validation in sight — snapshots are
      re-read across versions, and a stale marshal segfaults;
    - [domain-shared-state]: [ref] cells and [Hashtbl.create] in files
      that [Domain.spawn] — shared mutable state across domains belongs
      behind [Atomic] (or a clear single-writer discipline);
    - [hot-loop-alloc]: List combinators and [fun] closures inside a
      hot-loop region — bracketed by standalone ["hot-loop"] /
      ["end hot-loop"] marker comments with the usual [cq-lint:]
      prefix (spelled out in {!Lint.hot_regions}; repeating the exact
      text here would mark this very file).  The compiled-evaluator
      paths in [Cq_automata.Mealy] are marked: they run once per
      conformance-suite word, so an allocation there multiplies by
      millions.  Allocation in a marked region is not forbidden — it
      must carry a written justification
      ([cq-lint: allow hot-loop-alloc — ...]), making every such site
      an audited decision rather than an accident;
    - [stray-artifact]: scratch/snapshot runtime state ([wl-scratch-*]
      directories, [*.snap] learning-session snapshots) sitting under a
      linted path — PR 9 accidentally committed one; the fix is
      deletion (plus [.gitignore]), so this rule has no allow.

    Matching is over comment- and string-stripped source text, so
    mentioning a pattern in a docstring (as this one just did, four
    times) is fine.  A finding is suppressed by an annotation on the same
    line or the line above:

    {[ (* cq-lint: allow hashtbl-add — fresh key, guarded by mem above *) ]}

    The rule name must follow [cq-lint: allow], and a free-form
    justification must follow the rule name — a bare
    [cq-lint: allow <rule>] with no stated reason does not suppress
    (writing the reason is the point). *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  rule : string;
  excerpt : string;  (** the offending source line, trimmed *)
  message : string;
}

val rules : (string * string) list
(** Rule names with one-line descriptions. *)

val lint_file : string -> finding list
(** Lint one [.ml]/[.mli] file (read from disk).  Files that cannot be
    read yield no findings. *)

val lint_source : file:string -> string -> finding list
(** Lint source text directly ([file] is used for reporting only). *)

val lint_paths : string list -> finding list
(** Lint every [.ml]/[.mli] under the given files/directories
    (directories are walked recursively, skipping [_build] and
    dot-directories), sorted by file then line.  Non-source files are
    not read, but scratch/snapshot artifacts encountered during the
    walk are reported under [stray-artifact]. *)

val pp_finding : Format.formatter -> finding -> unit

val report_json : finding list -> string
(** The findings as a JSON array (hand-rolled, like the metrics
    exporter). *)
