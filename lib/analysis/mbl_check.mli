(** Static analysis of MBL expressions: an abstract interpreter that
    predicts what {!Cq_mbl.Expand.expand} would do without running it.

    The analysis is exact, not approximate: it mirrors the expansion
    semantics (including the placement of the [max_queries] guard and the
    evaluation order of subterms) constructor by constructor, so

    - [check] returns [Ok summary] iff expansion succeeds, and then
      [summary.cardinality] is exactly the number of queries expansion
      would produce;
    - [check] returns [Error diagnostic] iff expansion raises
      [Expansion_error] (or would exhaust memory trying), and the
      diagnostic names the reason and the offending subterm.

    This is what lets the frontend reject a pathological program in
    microseconds instead of materialising (a prefix of) a 65536-query
    expansion first.  The differential properties in [test/test_analysis.ml]
    and [test/test_mbl.ml] hold the checker to this contract against the
    real expander. *)

(** {1 Diagnostics} *)

type code =
  | Bad_block_name of string
      (** A block name [Cq_cache.Block.of_string] rejects. *)
  | Double_tag
      (** A [?]/[!] tag applied to a subterm that already produces tagged
          accesses ("tag applied to an already-tagged query"). *)
  | Negative_power of int  (** [(s)k] with [k < 0]. *)
  | Cardinality_overflow of { bound : int; at_least : int }
      (** Expansion is guaranteed to trip the [max_queries] guard: some
          intermediate query set reaches [at_least > bound] queries. *)
  | Excess_blocks of { distinct : int; capacity : int }
      (** Only with [?capacity]: the program touches more distinct
          non-auxiliary blocks than the given capacity.  Not an expansion
          error — thrashing queries do this deliberately — so it is
          opt-in. *)

type diagnostic = {
  code : code;
  path : int list;
      (** Child-index path from the root to the offending subterm
          ([[]] is the root; for [Seq]/[Set] the index is the item
          position, for [Extend] base is [0] and extension [1], for
          [Tagged]/[Power] the child is [0]). *)
}

val pp_code : Format.formatter -> code -> unit
val pp_diagnostic : Format.formatter -> diagnostic -> unit

val diagnostic_to_string : diagnostic -> string

(** {1 The summary computed for accepted programs} *)

type summary = {
  cardinality : int;  (** Exact number of queries expansion produces. *)
  total_accesses : int;
      (** Total memory accesses across all queries (saturating). *)
  profiled_accesses : int;
      (** How many of those carry the [?] profile tag (saturating). *)
  max_query_len : int;  (** Length of the longest query (saturating). *)
  footprint : Cq_cache.Block.t list;
      (** Distinct blocks touched by any query, sorted. *)
  main_blocks : int;  (** Non-auxiliary blocks in the footprint. *)
  aux_blocks : int;  (** Auxiliary (lowercase) blocks in the footprint. *)
  associativity_pressure : float;
      (** [main_blocks /. assoc]: > 1.0 means the program cannot fit its
          working set in one cache set and will evict. *)
}

val pp_summary : Format.formatter -> summary -> unit

(** {1 Checking} *)

val check :
  ?max_queries:int ->
  ?capacity:int ->
  ?registry:Cq_util.Metrics.t ->
  assoc:int ->
  Cq_mbl.Ast.t ->
  (summary, diagnostic) result
(** [check ~assoc e] analyses [e] exactly as
    [Cq_mbl.Expand.expand ?max_queries ~assoc e] would expand it
    (default [max_queries] 65536, matching the expander).  [?capacity]
    additionally enables the [Excess_blocks] policy check.  Raises
    [Invalid_argument] when [assoc < 1], like the expander. *)

val check_string :
  ?max_queries:int ->
  ?capacity:int ->
  ?registry:Cq_util.Metrics.t ->
  assoc:int ->
  string ->
  (summary, diagnostic) result
(** [check] after {!Cq_mbl.Parser.parse}.  Raises [Parser.Parse_error] on
    syntax errors, like [Expand.expand_string]. *)

(** {1 Simplification} *)

val simplify : ?max_queries:int -> assoc:int -> Cq_mbl.Ast.t -> Cq_mbl.Ast.t
(** A semantics-preserving rewrite: flattens nested [Seq]/[Set], drops
    empty-sequence items, collapses singleton wrappers and trivial powers
    ([(e)0], [(e)1], [((e)j)k]).  The contract — verified by differential
    tests — is that the result expands to the {e identical} query list
    (same queries, same order) and fails iff the original fails:

    - if [check] rejects the program, [simplify] returns it unchanged
      (error behaviour trivially preserved);
    - if the rewritten program would change acceptance (possible when a
      zero-cardinality subterm masked a guard overflow), the rewrite is
      discarded and the original returned. *)
