(* A running instance of a policy: mutable wrapper around the pure Mealy
   step function, with reset and snapshot/restore.  Cache simulators keep
   one instance per cache set. *)

type t =
  | Instance : {
      policy : Policy.t;
      init : 's;
      mutable state : 's;
      step_fn : 's -> Types.input -> 's * Types.output;
      mutable saved : 's option;
    }
      -> t

let create (Policy.Policy p as policy) =
  Instance { policy; init = p.init; state = p.init; step_fn = p.step; saved = None }

let policy (Instance i) = i.policy
let assoc (Instance i) = Policy.assoc i.policy

let step (Instance i) input =
  let s', out = i.step_fn i.state input in
  i.state <- s';
  out

let reset (Instance i) = i.state <- i.init

let save (Instance i) = i.saved <- Some i.state

let restore (Instance i) =
  match i.saved with
  | None -> invalid_arg "Instance.restore: no saved state"
  | Some s -> i.state <- s

(* Unlike the single [save]/[restore] slot, checkpoints nest arbitrarily
   (the batch executor's DFS restores branch points in stack order).
   Policy states are immutable values, so capturing the value suffices. *)
let checkpoint (Instance i) =
  let s = i.state in
  fun () -> i.state <- s

(* Convenience wrappers used by the cache-set logic. *)
let touch t line = ignore (step t (Types.Line line))

let evict t =
  match step t Types.Evct with
  | Some victim -> victim
  | None -> invalid_arg "Instance.evict: policy returned ⊥ on Evct"

(* Batch replay: drive a whole block-id trace through one simulated cache
   set governed by this instance, returning the hit/miss stream (one byte
   per access, 1 = hit).  Semantics match [Cache_set.access] for a full
   set and [Cache_level.fill] for cold ways: a miss fills the
   lowest-index invalid way first (touching the policy only when
   [fill_touch]), and evicts through the policy only once the set is
   full.  The default [initial] content is blocks [0 .. assoc-1] in ways
   [0 .. assoc-1] — exactly [Cache_set.create]. *)
let replay t ?initial ?(fill_touch = true) blocks =
  let assoc = assoc t in
  let tags =
    match initial with
    | None -> Array.init assoc (fun w -> w)
    | Some init ->
        if Array.length init > assoc then
          invalid_arg "Instance.replay: initial content larger than assoc";
        Array.init assoc (fun w ->
            if w < Array.length init then init.(w) else -1)
  in
  (* O(1) membership: way_of.(block) is the resident way or -1. *)
  let max_tag = Array.fold_left max (-1) tags in
  let max_blk = Array.fold_left max max_tag blocks in
  Array.iter
    (fun b -> if b < 0 then invalid_arg "Instance.replay: negative block id")
    blocks;
  let way_of = Array.make (max_blk + 1) (-1) in
  Array.iteri (fun w tag -> if tag >= 0 then way_of.(tag) <- w) tags;
  let n = Array.length blocks in
  let stream = Bytes.make n '\000' in
  for j = 0 to n - 1 do
    let b = Array.unsafe_get blocks j in
    let w = Array.unsafe_get way_of b in
    if w >= 0 then begin
      (* Hit: the policy observes the touched line. *)
      ignore (step t (Types.Line w));
      Bytes.unsafe_set stream j '\001'
    end
    else begin
      (* Miss: fill an invalid way if one exists, else evict. *)
      let invalid = ref (-1) in
      (try
         for v = 0 to assoc - 1 do
           if tags.(v) < 0 then begin
             invalid := v;
             raise Exit
           end
         done
       with Exit -> ());
      let victim =
        if !invalid >= 0 then begin
          if fill_touch then touch t !invalid;
          !invalid
        end
        else evict t
      in
      let old = tags.(victim) in
      if old >= 0 then way_of.(old) <- -1;
      tags.(victim) <- b;
      way_of.(b) <- victim
    end
  done;
  stream
