(* A running instance of a policy: mutable wrapper around the pure Mealy
   step function, with reset and snapshot/restore.  Cache simulators keep
   one instance per cache set. *)

type t =
  | Instance : {
      policy : Policy.t;
      init : 's;
      mutable state : 's;
      step_fn : 's -> Types.input -> 's * Types.output;
      mutable saved : 's option;
    }
      -> t

let create (Policy.Policy p as policy) =
  Instance { policy; init = p.init; state = p.init; step_fn = p.step; saved = None }

let policy (Instance i) = i.policy
let assoc (Instance i) = Policy.assoc i.policy

let step (Instance i) input =
  let s', out = i.step_fn i.state input in
  i.state <- s';
  out

let reset (Instance i) = i.state <- i.init

let save (Instance i) = i.saved <- Some i.state

let restore (Instance i) =
  match i.saved with
  | None -> invalid_arg "Instance.restore: no saved state"
  | Some s -> i.state <- s

(* Unlike the single [save]/[restore] slot, checkpoints nest arbitrarily
   (the batch executor's DFS restores branch points in stack order).
   Policy states are immutable values, so capturing the value suffices. *)
let checkpoint (Instance i) =
  let s = i.state in
  fun () -> i.state <- s

(* Convenience wrappers used by the cache-set logic. *)
let touch t line = ignore (step t (Types.Line line))

let evict t =
  match step t Types.Evct with
  | Some victim -> victim
  | None -> invalid_arg "Instance.evict: policy returned ⊥ on Evct"
