(** The policy zoo: every concrete replacement policy by name, plus
    identification of learned automata against them. *)

type entry = {
  name : string;
  make : int -> Policy.t;
  valid_assoc : int -> bool;
}

val entries : entry list
val names : string list
val find : string -> entry option

val scaling_targets : (string * string * int) list
(** Named associativity-scaling targets [(label, policy, assoc)] for the
    quotient-learning benchmark: PLRU and New1 (the policies an assoc-8
    budget cannot crack at L2/L3 widths) plus LRU / FIFO controls, at 12
    and 16 ways. *)

val make : name:string -> assoc:int -> (Policy.t, string) result
val make_exn : name:string -> assoc:int -> Policy.t

val permutations : 'a list -> 'a list list
(** All permutations (identification helper; exponential). *)

val relabel_lines :
  int -> int list -> Types.output Cq_automata.Mealy.t -> Types.output Cq_automata.Mealy.t
(** Conjugate a policy machine by a permutation of the line indices:
    [relabel_lines assoc perm m] behaves on [Ln(j)] as [m] does on
    [Ln(perm(j))], with output lines renamed accordingly. *)

val matches_from_some_state :
  'o Cq_automata.Mealy.t -> 'o Cq_automata.Mealy.t -> bool
(** Does the second machine match the first started from *some* control
    state? *)

val identify :
  ?extra:Policy.t list ->
  ?max_perm_assoc:int ->
  Types.output Cq_automata.Mealy.t ->
  string list
(** Names of all known policies trace-equivalent to the machine, up to the
    observation artefacts of hardware learning: an arbitrary starting
    control state, and (for associativity [<= max_perm_assoc], default 5) an
    arbitrary permutation of the line indices introduced by the reset
    sequence's placement. *)
