(** A running instance of a policy: a mutable wrapper around the pure step
    function.  Cache simulators keep one instance per cache set. *)

type t

val create : Policy.t -> t
val policy : t -> Policy.t
val assoc : t -> int

val step : t -> Types.input -> Types.output
(** Advance the instance by one input, returning the output. *)

val reset : t -> unit
(** Return to the policy's initial control state. *)

val save : t -> unit
val restore : t -> unit
(** Snapshot / restore the current control state (single slot). *)

val checkpoint : t -> unit -> unit
(** Capture the current control state; the returned thunk restores it.
    Checkpoints nest (unlike the single [save] slot). *)

val touch : t -> int -> unit
(** [step] with [Line i], discarding the (⊥) output. *)

val evict : t -> int
(** [step] with [Evct], returning the victim line. *)

val replay : t -> ?initial:int array -> ?fill_touch:bool -> int array -> Bytes.t
(** [replay t blocks] drives a whole block-id trace through one simulated
    cache set governed by this instance (starting from its current control
    state), returning the hit/miss stream — one byte per access, [1] on a
    hit.  A hit touches the policy with [Line w]; a miss fills the
    lowest-index invalid way first (touching the policy only when
    [fill_touch], default [true], mirroring hwsim's
    [fill_touches_policy]) and evicts through the policy only once the
    set is full.  [initial] places blocks in ways [0 ..] (default blocks
    [0 .. assoc-1], the [Cache_set.create] content; pass [[||]] for a
    cold set).  Block ids must be non-negative. *)
