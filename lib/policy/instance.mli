(** A running instance of a policy: a mutable wrapper around the pure step
    function.  Cache simulators keep one instance per cache set. *)

type t

val create : Policy.t -> t
val policy : t -> Policy.t
val assoc : t -> int

val step : t -> Types.input -> Types.output
(** Advance the instance by one input, returning the output. *)

val reset : t -> unit
(** Return to the policy's initial control state. *)

val save : t -> unit
val restore : t -> unit
(** Snapshot / restore the current control state (single slot). *)

val checkpoint : t -> unit -> unit
(** Capture the current control state; the returned thunk restores it.
    Checkpoints nest (unlike the single [save] slot). *)

val touch : t -> int -> unit
(** [step] with [Line i], discarding the (⊥) output. *)

val evict : t -> int
(** [step] with [Evct], returning the victim line. *)
