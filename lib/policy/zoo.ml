(* Registry of all concrete policies, keyed by name.  Used by the CLIs, by
   the Table 2 / Table 5 benchmark sweeps, and by policy identification
   (matching a learned automaton against known policies, which is how the
   paper recognised PLRU in L1 and labelled New1/New2 as undocumented). *)

type entry = {
  name : string;
  make : int -> Policy.t; (* associativity -> policy *)
  valid_assoc : int -> bool;
}

let entries : entry list =
  [
    { name = "FIFO"; make = Fifo.make; valid_assoc = (fun n -> n >= 1) };
    { name = "LRU"; make = Lru.make; valid_assoc = (fun n -> n >= 1) };
    { name = "PLRU"; make = Plru.make; valid_assoc = (fun n -> n >= 1) };
    { name = "MRU"; make = Mru.make; valid_assoc = (fun n -> n >= 2) };
    { name = "LIP"; make = Lip.make; valid_assoc = (fun n -> n >= 1) };
    { name = "BIP"; make = (fun n -> Bip.make n); valid_assoc = (fun n -> n >= 1) };
    {
      name = "SRRIP-HP";
      make = Srrip.make Srrip.Hit_priority;
      valid_assoc = (fun n -> n >= 1);
    };
    {
      name = "SRRIP-FP";
      make = Srrip.make Srrip.Frequency_priority;
      valid_assoc = (fun n -> n >= 1);
    };
    { name = "BRRIP"; make = (fun n -> Srrip.make_brrip n); valid_assoc = (fun n -> n >= 1) };
    { name = "New1"; make = Newpol.make_new1; valid_assoc = (fun n -> n >= 2) };
    { name = "New2"; make = Newpol.make_new2; valid_assoc = (fun n -> n >= 2) };
  ]

let names = List.map (fun e -> e.name) entries

(* The associativity-scaling targets of the quotient-learning benchmark
   ([bench -- assoc]): the two policies the paper's assoc-8 budget could
   not crack at L2/L3 widths, plus fully-symmetric (LRU) and asymmetric
   (FIFO) controls, at 12 and 16 ways. *)
let scaling_targets =
  List.concat_map
    (fun assoc ->
      List.map
        (fun name -> (Printf.sprintf "%s-%d" name assoc, name, assoc))
        [ "PLRU"; "New1"; "LRU"; "FIFO" ])
    [ 12; 16 ]

let find name = List.find_opt (fun e -> String.equal e.name name) entries

let make ~name ~assoc =
  match find name with
  | None -> Error (Printf.sprintf "unknown policy %S (known: %s)" name (String.concat ", " names))
  | Some e ->
      if e.valid_assoc assoc then Ok (e.make assoc)
      else Error (Printf.sprintf "policy %s does not support associativity %d" name assoc)

let make_exn ~name ~assoc =
  match make ~name ~assoc with Ok p -> p | Error msg -> invalid_arg msg

(* Identify an automaton: return the names of all known policies that are
   trace-equivalent to it *up to the observation artefacts of hardware
   learning*:

   - the learner starts from the state the reset sequence establishes, so
     the reference may match from any of its control states;
   - the reset sequence may place the initial blocks in permuted lines
     (e.g. 'D C B A @' reverses them), so the learned machine may be the
     reference conjugated by a permutation of the line indices.

   State counts differ across the zoo (they are the paper's Table 2
   values), so the minimal-state prefilter eliminates almost every
   candidate before the expensive search. *)

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x ->
          List.map
            (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y <> x) xs)))
        xs

(* Conjugate machine [m] (alphabet Ln(0..n-1), Evct) by line permutation
   [perm]: input Ln(j) of the result behaves as Ln(perm(j)) of [m], and
   output line [i] is renamed to the j with perm(j) = i. *)
let relabel_lines assoc perm (m : Types.output Cq_automata.Mealy.t) =
  let inverse = Array.make assoc 0 in
  List.iteri (fun j i -> inverse.(i) <- j) perm;
  let perm = Array.of_list perm in
  let n = Cq_automata.Mealy.n_states m in
  let k = Cq_automata.Mealy.n_inputs m in
  let map_in j = if j = assoc then assoc else perm.(j) in
  let map_out = function None -> None | Some i -> Some inverse.(i) in
  let next =
    Array.init n (fun s -> Array.init k (fun j -> Cq_automata.Mealy.next_state m s (map_in j)))
  in
  let out =
    Array.init n (fun s ->
        Array.init k (fun j -> map_out (Cq_automata.Mealy.output m s (map_in j))))
  in
  Cq_automata.Mealy.make ~init:(Cq_automata.Mealy.init m) ~n_inputs:k ~next ~out

(* Does [m] match [reference] started from *some* control state? *)
let matches_from_some_state reference m =
  let n = Cq_automata.Mealy.n_states reference in
  let rec go s =
    s < n
    && (Cq_automata.Mealy.find_counterexample ~from_a:(Some s) reference m = None
       || go (s + 1))
  in
  go 0

let identify ?(extra = []) ?(max_perm_assoc = 5) (m : Types.output Cq_automata.Mealy.t) =
  let assoc = Cq_automata.Mealy.n_inputs m - 1 in
  let m = Cq_automata.Mealy.minimize m in
  let m_states = Cq_automata.Mealy.n_states m in
  let candidates =
    List.filter_map
      (fun e -> if e.valid_assoc assoc then Some (e.make assoc) else None)
      entries
    @ extra
  in
  let perms =
    let identity = List.init assoc (fun i -> i) in
    if assoc <= max_perm_assoc then permutations identity else [ identity ]
  in
  List.filter_map
    (fun p ->
      (* Candidates far bigger than the learned machine cannot match; bound
         the reference enumeration so that giants (SRRIP-FP at assoc 8 has
         4^8 states) are rejected cheaply.  The slack accommodates
         transient reference states that a reset state cannot reach. *)
      let budget = max (4 * m_states) (m_states + 64) in
      match Policy.to_mealy ~max_states:budget p with
      | exception Failure _ -> None
      | reference ->
      let reference = Cq_automata.Mealy.minimize reference in
      (* A machine learned from a reset state can reach at most as many
         states as the full reference (transient reference states may be
         unreachable from the reset state, e.g. SRRIP's initial ages). *)
      if Cq_automata.Mealy.n_states reference < m_states then None
      else if
        List.exists
          (fun perm -> matches_from_some_state reference (relabel_lines assoc perm m))
          perms
      then Some (Policy.name p)
      else None)
    candidates
