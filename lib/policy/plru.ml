(* Tree-based Pseudo-LRU [Handy 1993], the policy of Intel L1 caches (and
   Haswell's L2).  The control state is one bit per internal node of a
   binary tree over the lines; each bit points towards the
   pseudo-least-recently-used subtree.  2^(n-1) control states.

   The tree over [n] leaves splits ceil(n/2) left / floor(n/2) right,
   recursively — for a power-of-two [n] this is the complete binary tree
   of the classic formulation (identical traces from the all-zero initial
   state), and it extends PLRU to every associativity, matching how
   odd-way hardware (e.g. 12- and 10-way L2s) trees its ways.

   Internal nodes carry preorder ids; the bit for node [v] is stored at
   position [v] of the mask.  Bit = 0 means "the pseudo-LRU line is in
   the left subtree". *)

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* The static tree for one associativity: children per internal node
   (>= 0: internal node id, < 0: line [-v - 1]) and, per line, the
   root-to-leaf path as (node id, direction) steps. *)
type tree = {
  left : int array;
  right : int array;
  paths : (int * int) list array;
}

let build assoc =
  let internal = max 1 (assoc - 1) in
  let left = Array.make internal 0 in
  let right = Array.make internal 0 in
  let next = ref 0 in
  let rec go lo hi =
    if hi - lo = 1 then -lo - 1
    else begin
      let id = !next in
      incr next;
      let mid = lo + ((hi - lo + 1) / 2) in
      let l = go lo mid in
      let r = go mid hi in
      left.(id) <- l;
      right.(id) <- r;
      id
    end
  in
  ignore (go 0 assoc);
  let paths = Array.make assoc [] in
  let rec walk node acc =
    if node < 0 then paths.(-node - 1) <- List.rev acc
    else begin
      walk left.(node) ((node, 0) :: acc);
      walk right.(node) ((node, 1) :: acc)
    end
  in
  if assoc > 1 then walk 0 [];
  { left; right; paths }

let bit mask v = (mask lsr v) land 1

(* Walk from the root towards the pseudo-LRU leaf. *)
let victim tree mask =
  let rec go node =
    if node < 0 then -node - 1
    else go (if bit mask node = 0 then tree.left.(node) else tree.right.(node))
  in
  go 0

(* Point every bit on the path to leaf [i] away from it. *)
let touch tree mask i =
  List.fold_left
    (fun mask (node, dir) ->
      if dir = 0 then mask lor (1 lsl node) else mask land lnot (1 lsl node))
    mask tree.paths.(i)

let make assoc =
  if assoc < 1 then invalid_arg "Plru.make: associativity must be >= 1";
  if assoc = 1 then
    Policy.v ~name:"PLRU" ~assoc ~init:0
      ~step:(fun s -> function Types.Line _ -> (s, None) | Types.Evct -> (s, Some 0))
      ()
  else begin
    let tree = build assoc in
    Policy.v ~name:"PLRU" ~assoc ~init:0
      ~step:(fun mask -> function
        | Types.Line i -> (touch tree mask i, None)
        | Types.Evct ->
            let v = victim tree mask in
            (touch tree mask v, Some v))
      ~describe:
        "Tree-based pseudo-LRU: one bit per tree node pointing at the \
         pseudo-LRU subtree; accesses flip the path away from the line.  \
         Non-power-of-two associativities use the ceil/floor split tree."
      ()
  end
