(** Models of the three processors analysed in the paper (Table 3),
    together with the microarchitectural details the paper
    reverse-engineered: per-level replacement policies, adaptive-L3
    leader-set selection (Appendix B), reset behaviour, CAT support and
    load latencies.

    These models are the "silicon" our CacheQuery implementation talks
    to; they are the ground truth the learning pipeline must
    rediscover. *)

type level = L1 | L2 | L3

val level_to_string : level -> string
val pp_level : Format.formatter -> level -> unit
val all_levels : level list

(** How the sets of a level choose their replacement policy. *)
type set_policy =
  | Fixed of (int -> Cq_policy.Policy.t)
      (** every set runs this policy (given the effective associativity) *)
  | Adaptive of {
      leader_a : slice:int -> set:int -> bool;
          (** "thrash-vulnerable" fixed-policy leader sets *)
      leader_b : slice:int -> set:int -> bool;
          (** "thrash-resistant" fixed-policy leader sets *)
      policy_a : int -> Cq_policy.Policy.t;
      policy_b : int -> Cq_policy.Policy.t;
      noisy_b : bool;
          (** Haswell's resistant leaders look nondeterministic
              (Appendix B): when set, leader-B fills randomly re-touch
              the inserted way *)
    }

type level_spec = {
  assoc : int;
  slices : int;
  sets_per_slice : int;
  hit_latency : int;  (** cycles for a hit served by this level *)
  policy : set_policy;
  fill_touches_policy : bool;
      (** whether installing a block into an {e invalid} way updates the
          replacement state as if the way had been accessed.  When false,
          Flush+Refill does not reset the policy state and a custom reset
          sequence is needed — this is what forces the ['@ @'] reset on
          Haswell L1 and the ['D C B A @'] reset on Skylake/Kaby Lake L2
          (Table 4). *)
}

type t = {
  name : string;
  codename : string;
  line_size : int;
  l1 : level_spec;
  l2 : level_spec;
  l3 : level_spec;
  memory_latency : int;
  supports_cat : bool;
  slice_masks : int array;  (** XOR-fold masks; one per slice-index bit *)
}

val spec : t -> level -> level_spec

(** {1 Appendix B leader-set selection formulas}

    Exposed so tests and set-enumeration code can evaluate them directly
    (they also sit inside the models' [Adaptive] specs). *)

val skl_leader_a : slice:int -> set:int -> bool
val skl_leader_b : slice:int -> set:int -> bool
val hsw_leader_a : slice:int -> set:int -> bool
val hsw_leader_b : slice:int -> set:int -> bool

val haswell : t  (** i7-4790 *)

val skylake : t  (** i5-6500 *)

val kaby_lake : t  (** i7-8550U *)

val toy : t
(** A miniature CPU for tests: tiny caches with the same structural
    features (three levels, slices, an adaptive L3 with leader sets,
    CAT) so the whole pipeline runs in milliseconds. *)

val all : t list
(** The paper's three CPUs ([toy] is deliberately excluded). *)

val by_name : string -> t option
(** Case-insensitive lookup by [name] or [codename], over {!all}. *)

val pp_specs : Format.formatter -> t -> unit
(** Table 3, for the benchmark harness. *)
