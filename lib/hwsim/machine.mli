(** The simulated silicon CPU: an inclusive three-level cache hierarchy
    with slicing, set indexing, adaptive L3 set-dueling, hardware
    prefetchers, Intel CAT way masking, and a cycle-accounting timing
    model with configurable measurement noise.

    This is the substitution target for the paper's physical i7-4790 /
    i5-6500 / i7-8550U machines: the CacheQuery backend only ever
    observes load latencies, clflush/wbinvd, and the ability to pick
    addresses, all of which this module provides. *)

type noise_config = {
  jitter_sigma : float;  (** per-load gaussian jitter, cycles *)
  outlier_prob : float;  (** probability of an interrupt/TLB-style spike *)
  outlier_cycles : int;  (** magnitude of a spike *)
  burst_prob : float;  (** probability per load that a noise burst starts *)
  burst_len : int;  (** loads a burst lasts once started *)
  burst_cycles : int;  (** extra cycles per load during a burst *)
  drift_rate : float;  (** slow common-mode latency drift, cycles/load *)
}

val quiet_noise : noise_config
(** No noise at all: deterministic latencies. *)

val default_noise : noise_config
(** Realistic stationary noise: gaussian jitter plus rare outlier
    spikes. *)

val burst_noise : noise_config
(** {!default_noise} plus interrupt-storm-style bursts: for a short run
    of loads every latency is inflated enough to flip hit
    classifications — transient, unlike structural nondeterminism. *)

val drift_noise : noise_config
(** {!default_noise} plus DVFS/thermal-style drift: all latencies creep
    upward as the run progresses, so a threshold calibrated once
    eventually sits inside the hit population. *)

type t

val create : ?seed:int64 -> ?noise:noise_config -> Cpu_model.t -> t

val model : t -> Cpu_model.t
val set_noise : t -> noise_config -> unit
val prefetchers_enabled : t -> bool
val set_prefetchers : t -> bool -> unit

val loads : t -> int
(** Total loads issued — a work counter, deliberately not rewound by
    {!checkpoint} (latency drift keys on it). *)

val effective_assoc : t -> Cpu_model.level -> int
(** The level's associativity as the attacker sees it (CAT-reduced for
    the L3 after {!set_cat_ways}). *)

val map_addr : t -> Cpu_model.level -> int -> int * int
(** [(slice, set)] a physical address maps to at a given level. *)

val congruent_addresses :
  ?filter:(int -> bool) ->
  ?start:int ->
  t ->
  Cpu_model.level ->
  slice:int ->
  set:int ->
  int ->
  int list
(** Enumerate [n] distinct line-aligned physical addresses congruent
    with the given (slice, set) at the level, optionally [filter]ed;
    [start] skips the first [start] stride steps.  Raises [Failure] if
    the synthetic physical address space is exhausted first. *)

val set_cat_ways : t -> int -> unit
(** Virtually reduce the L3 associativity via Intel CAT.  Re-partitioning
    drops the cached content of the masked region (modelled as a fresh
    L3).  Raises [Failure] on CPUs without CAT support,
    [Invalid_argument] on a bad way count. *)

val reset_cat : t -> unit
(** Undo {!set_cat_ways} (again dropping the L3 content). *)

val load_raw : t -> int -> [ `L1 | `L2 | `L3 | `Memory ]
(** Load without timing: returns the level that served the access. *)

val load : t -> int -> int
(** Timed load: the measured latency in cycles, as rdtsc-style profiling
    would observe it — base latency of the serving level plus jitter,
    outlier spikes, burst inflation and drift per the active
    {!noise_config}. *)

val checkpoint : ?rewind_noise:bool -> t -> unit -> unit
(** Checkpoint the full architectural state (all three levels, the
    set-dueling counter, prefetcher and noise state); the returned thunk
    restores it.  This is the primitive behind prefix-sharing batch
    execution.  [rewind_noise:false] restores the architectural state
    but leaves the noise stream where it is, so re-executing the same
    access draws an {e independent} measurement — exactly what
    re-measuring a disputed load on silicon does (the voting layer uses
    this). *)

val clflush : t -> int -> unit
(** Evict the address's line from every level. *)

val wbinvd : t -> unit
(** Drop all cached content everywhere (replacement metadata stays, as
    on real hardware). *)

val replay_set :
  ?universe:int ->
  t ->
  Cpu_model.level ->
  slice:int ->
  set:int ->
  int array ->
  Bytes.t
(** [replay_set t level ~slice ~set blocks] drives a block-id trace
    through one set of the level and returns the hit/miss stream — one
    byte per access, [1] when the access was served at [level] or closer
    to the core.  Block id [b] maps to the [b]-th address congruent with
    the set ([universe] fixes the id range; default the trace's max + 1).
    Disable prefetchers first for faithful single-set semantics. *)

(** {1 Introspection (tests, diagnostics)} *)

val peek_set : t -> Cpu_model.level -> slice:int -> set:int -> int option array
(** The tags of one set (a copy). *)

val psel : t -> int
(** The set-dueling selector counter. *)
