(* One level of the simulated cache hierarchy: a lazily-allocated collection
   of cache sets, each holding tag content (line addresses) plus one or two
   replacement-policy instances.

   Adaptive levels (the L3s, cf. Appendix B) distinguish three set kinds:
   leader-A sets run the "thrash-vulnerable" fixed policy, leader-B sets the
   "thrash-resistant" one, and follower sets track *both* policy instances
   and take the victim from whichever the global PSEL counter currently
   selects.  Leader-B sets can additionally be noisy (Haswell), re-touching
   freshly installed ways at random, which makes them nondeterministic and
   — as in the paper — unlearnable. *)

type set_kind = Plain | Leader_a | Leader_b | Follower

let set_kind_to_string = function
  | Plain -> "plain"
  | Leader_a -> "leader-A"
  | Leader_b -> "leader-B"
  | Follower -> "follower"

type set_state = {
  content : int option array; (* line address per way; None = invalid *)
  inst_a : Cq_policy.Instance.t;
  inst_b : Cq_policy.Instance.t option; (* only for follower sets *)
  kind : set_kind;
}

type t = {
  level : Cpu_model.level;
  spec : Cpu_model.level_spec;
  effective_assoc : int; (* = spec.assoc unless reduced via CAT *)
  sets : (int, set_state) Hashtbl.t;
  prng : Cq_util.Prng.t;
  mutable fills : int;
  mutable evictions : int;
}

let create ?(effective_assoc = -1) ~prng level (spec : Cpu_model.level_spec) =
  let effective_assoc = if effective_assoc < 0 then spec.assoc else effective_assoc in
  if effective_assoc < 1 || effective_assoc > spec.assoc then
    invalid_arg "Cache_level.create: bad effective associativity";
  {
    level;
    spec;
    effective_assoc;
    sets = Hashtbl.create 997;
    prng;
    fills = 0;
    evictions = 0;
  }

let effective_assoc t = t.effective_assoc
let level t = t.level
let spec t = t.spec

let key t ~slice ~set = (slice * t.spec.sets_per_slice) + set

let kind_of t ~slice ~set =
  match t.spec.policy with
  | Cpu_model.Fixed _ -> Plain
  | Cpu_model.Adaptive a ->
      if a.leader_a ~slice ~set then Leader_a
      else if a.leader_b ~slice ~set then Leader_b
      else Follower

let new_set t ~slice ~set =
  let assoc = t.effective_assoc in
  let kind = kind_of t ~slice ~set in
  let inst_a, inst_b =
    match t.spec.policy with
    | Cpu_model.Fixed make -> (Cq_policy.Instance.create (make assoc), None)
    | Cpu_model.Adaptive a -> (
        match kind with
        | Leader_a -> (Cq_policy.Instance.create (a.policy_a assoc), None)
        | Leader_b -> (Cq_policy.Instance.create (a.policy_b assoc), None)
        | Follower | Plain ->
            ( Cq_policy.Instance.create (a.policy_a assoc),
              Some (Cq_policy.Instance.create (a.policy_b assoc)) ))
  in
  { content = Array.make assoc None; inst_a; inst_b; kind }

let get_set t ~slice ~set =
  let k = key t ~slice ~set in
  match Hashtbl.find_opt t.sets k with
  | Some s -> s
  | None ->
      let s = new_set t ~slice ~set in
      Hashtbl.add t.sets k s; (* cq-lint: allow hashtbl-add: find_opt miss *)
      s

let kind t ~slice ~set = (get_set t ~slice ~set).kind

let find t ~slice ~set ~line =
  let st = get_set t ~slice ~set in
  let found = ref None in
  Array.iteri
    (fun way b -> if !found = None && b = Some line then found := Some way)
    st.content;
  !found

let touch_instances st way =
  Cq_policy.Instance.touch st.inst_a way;
  Option.iter (fun i -> Cq_policy.Instance.touch i way) st.inst_b

let hit t ~slice ~set ~way =
  let st = get_set t ~slice ~set in
  touch_instances st way

let noisy_b t =
  match t.spec.policy with
  | Cpu_model.Adaptive { noisy_b; _ } -> noisy_b
  | Cpu_model.Fixed _ -> false

(* Install [line]; [use_b] selects the secondary policy's victim in follower
   sets (driven by the machine's PSEL counter).  Returns the evicted line,
   if any, so the machine can maintain inclusivity. *)
let fill t ~slice ~set ~line ~use_b =
  let st = get_set t ~slice ~set in
  t.fills <- t.fills + 1;
  let invalid_way =
    let found = ref None in
    Array.iteri (fun w b -> if !found = None && b = None then found := Some w) st.content;
    !found
  in
  match invalid_way with
  | Some way ->
      st.content.(way) <- Some line;
      if t.spec.fill_touches_policy then touch_instances st way;
      None
  | None ->
      t.evictions <- t.evictions + 1;
      let victim_a = Cq_policy.Instance.evict st.inst_a in
      let victim_b = Option.map Cq_policy.Instance.evict st.inst_b in
      let victim =
        match (use_b, victim_b) with true, Some v -> v | _ -> victim_a
      in
      let evicted = st.content.(victim) in
      st.content.(victim) <- Some line;
      (* Haswell's thrash-resistant leader sets behave nondeterministically:
         model this as a random extra touch of the installed way. *)
      if st.kind = Leader_b && noisy_b t && Cq_util.Prng.bool t.prng 0.25 then
        touch_instances st victim;
      evicted

let invalidate t ~slice ~set ~line =
  match Hashtbl.find_opt t.sets (key t ~slice ~set) with
  | None -> ()
  | Some st ->
      Array.iteri
        (fun way b -> if b = Some line then st.content.(way) <- None)
        st.content

(* wbinvd: drop all cached content.  Replacement state is *not* reset —
   real hardware leaves the (now stale) replacement metadata in place. *)
let flush_content t =
  Hashtbl.iter
    (fun _ st -> Array.iteri (fun w _ -> st.content.(w) <- None) st.content)
    t.sets

(* Checkpoint the whole level: tag content, both policy instances and the
   counters of every allocated set, plus the level PRNG position.  The
   restore thunk also *drops* sets allocated after the checkpoint — they
   reappear lazily in their pristine state, which is exactly the state
   they had when the checkpoint was taken (never touched).  Used by the
   machine-level snapshots behind prefix-sharing batch execution. *)
let checkpoint t =
  let saved =
    Hashtbl.fold
      (fun key st acc ->
        ( key,
          st,
          Array.copy st.content,
          Cq_policy.Instance.checkpoint st.inst_a,
          Option.map Cq_policy.Instance.checkpoint st.inst_b )
        :: acc)
      t.sets []
  in
  let fills = t.fills and evictions = t.evictions in
  let restore_prng = Cq_util.Prng.checkpoint t.prng in
  fun () ->
    Hashtbl.reset t.sets;
    List.iter
      (fun (key, st, content, restore_a, restore_b) ->
        Array.blit content 0 st.content 0 (Array.length content);
        restore_a ();
        Option.iter (fun r -> r ()) restore_b;
        (* cq-lint: allow hashtbl-add: the table was reset just above *)
        Hashtbl.add t.sets key st)
      saved;
    t.fills <- fills;
    t.evictions <- evictions;
    restore_prng ()

(* Test-only introspection. *)
let peek_content t ~slice ~set = Array.copy (get_set t ~slice ~set).content
let fills t = t.fills
let evictions t = t.evictions
