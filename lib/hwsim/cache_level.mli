(** One level of the simulated cache hierarchy: a lazily-allocated
    collection of cache sets, each holding tag content (line addresses)
    plus one or two replacement-policy instances.

    Adaptive levels (the L3s, cf. Appendix B of the paper) distinguish
    three set kinds: leader-A sets run the "thrash-vulnerable" fixed
    policy, leader-B sets the "thrash-resistant" one, and follower sets
    track {e both} policy instances and take the victim from whichever
    the machine's global PSEL counter currently selects. *)

type set_kind = Plain | Leader_a | Leader_b | Follower

val set_kind_to_string : set_kind -> string

type t

val create :
  ?effective_assoc:int ->
  prng:Cq_util.Prng.t ->
  Cpu_model.level ->
  Cpu_model.level_spec ->
  t
(** [effective_assoc] reduces the associativity below the spec's (Intel
    CAT way masking); default is the spec's.  Raises [Invalid_argument]
    outside [1 .. spec.assoc].  [prng] drives the nondeterministic
    leader-B behaviour (Haswell), nothing else. *)

val effective_assoc : t -> int
val level : t -> Cpu_model.level
val spec : t -> Cpu_model.level_spec

val kind : t -> slice:int -> set:int -> set_kind

val find : t -> slice:int -> set:int -> line:int -> int option
(** The way holding [line], if cached. *)

val hit : t -> slice:int -> set:int -> way:int -> unit
(** Touch the replacement state (both instances, in follower sets) for a
    hit on [way]. *)

val fill : t -> slice:int -> set:int -> line:int -> use_b:bool -> int option
(** Install [line], filling an invalid way if one exists, otherwise
    evicting the policy's victim; [use_b] selects the secondary policy's
    victim in follower sets (driven by the machine's PSEL counter).
    Returns the evicted line, if any, so the machine can maintain
    inclusivity. *)

val invalidate : t -> slice:int -> set:int -> line:int -> unit
(** clflush semantics: drop [line] wherever it sits in the set. *)

val flush_content : t -> unit
(** wbinvd semantics: drop all cached content.  Replacement state is
    {e not} reset — real hardware leaves the (now stale) replacement
    metadata in place. *)

val checkpoint : t -> unit -> unit
(** Checkpoint the whole level (tag content, policy instances, counters,
    PRNG position); the returned thunk restores it, dropping sets
    allocated after the checkpoint (they reappear lazily, pristine —
    exactly the state they had when the checkpoint was taken). *)

(** {1 Introspection (tests, diagnostics)} *)

val peek_content : t -> slice:int -> set:int -> int option array
val fills : t -> int
val evictions : t -> int
