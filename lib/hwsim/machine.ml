(* The simulated silicon CPU: an inclusive three-level cache hierarchy with
   slicing, set indexing, adaptive L3 set-dueling, hardware prefetchers,
   Intel CAT way masking, and a cycle-accounting timing model with
   configurable measurement noise.

   This is the substitution target for the paper's physical i7-4790 /
   i5-6500 / i7-8550U machines: the CacheQuery backend only ever observes
   load latencies, clflush/wbinvd, and the ability to pick addresses, all
   of which this module provides. *)

type noise_config = {
  jitter_sigma : float; (* per-load gaussian jitter, cycles *)
  outlier_prob : float; (* probability of an interrupt/TLB-style spike *)
  outlier_cycles : int; (* magnitude of a spike *)
  (* Fault injection for the noise-robustness layer: *)
  burst_prob : float; (* probability per load that a noise burst starts *)
  burst_len : int; (* loads a burst lasts once started *)
  burst_cycles : int; (* extra cycles added to every load during a burst *)
  drift_rate : float; (* slow common-mode latency drift, cycles per load *)
}

let quiet_noise =
  {
    jitter_sigma = 0.0;
    outlier_prob = 0.0;
    outlier_cycles = 0;
    burst_prob = 0.0;
    burst_len = 0;
    burst_cycles = 0;
    drift_rate = 0.0;
  }

let default_noise =
  { quiet_noise with jitter_sigma = 1.5; outlier_prob = 0.002; outlier_cycles = 250 }

(* Interrupt-storm-style bursts on top of the default noise: for a short
   run of loads, every latency is inflated by an amount large enough to
   flip hit classifications — transient, unlike structural nondeterminism. *)
let burst_noise =
  { default_noise with burst_prob = 0.0004; burst_len = 8; burst_cycles = 180 }

(* DVFS/thermal-style drift on top of the default noise: all latencies
   creep upward as the run progresses, so a threshold calibrated once
   eventually sits inside the hit population. *)
let drift_noise = { default_noise with drift_rate = 0.0002 }

type t = {
  model : Cpu_model.t;
  prng : Cq_util.Prng.t;
  noise : noise_config ref;
  mutable l1 : Cache_level.t;
  mutable l2 : Cache_level.t;
  mutable l3 : Cache_level.t;
  mutable psel : int; (* set-dueling counter, 0 .. psel_max *)
  mutable prefetchers : bool;
  mutable loads : int;
  mutable last_line : int; (* for the adjacent-line prefetcher *)
  mutable burst_remaining : int; (* loads left in the active noise burst *)
}

let psel_max = 1023
let psel_threshold = 512

let create ?(seed = 0xC0FFEEL) ?(noise = quiet_noise) model =
  let prng = Cq_util.Prng.create seed in
  {
    model;
    prng;
    noise = ref noise;
    l1 = Cache_level.create ~prng:(Cq_util.Prng.split prng) Cpu_model.L1 model.Cpu_model.l1;
    l2 = Cache_level.create ~prng:(Cq_util.Prng.split prng) Cpu_model.L2 model.Cpu_model.l2;
    l3 = Cache_level.create ~prng:(Cq_util.Prng.split prng) Cpu_model.L3 model.Cpu_model.l3;
    psel = psel_max / 2;
    prefetchers = true;
    loads = 0;
    last_line = -1;
    burst_remaining = 0;
  }

let model t = t.model
let set_noise t noise = t.noise := noise
let prefetchers_enabled t = t.prefetchers
let set_prefetchers t enabled = t.prefetchers <- enabled
let loads t = t.loads

let level_cache t = function
  | Cpu_model.L1 -> t.l1
  | Cpu_model.L2 -> t.l2
  | Cpu_model.L3 -> t.l3

let effective_assoc t level = Cache_level.effective_assoc (level_cache t level)

(* --- Address mapping ------------------------------------------------- *)

let line_of_addr t addr = addr / t.model.Cpu_model.line_size

let parity64 x =
  let x = x lxor (x lsr 32) in
  let x = x lxor (x lsr 16) in
  let x = x lxor (x lsr 8) in
  let x = x lxor (x lsr 4) in
  let x = x lxor (x lsr 2) in
  let x = x lxor (x lsr 1) in
  x land 1

let slice_of_addr t addr =
  let spec = t.model.Cpu_model.l3 in
  if spec.slices = 1 then 0
  else
    let bits = int_of_float (Float.round (Float.log2 (float_of_int spec.slices))) in
    let s = ref 0 in
    for j = 0 to bits - 1 do
      let mask = t.model.Cpu_model.slice_masks.(j) in
      s := !s lor (parity64 (addr land mask) lsl j)
    done;
    !s

(* (slice, set) a physical address maps to at a given level. *)
let map_addr t level addr =
  let spec = Cpu_model.spec t.model level in
  let line = line_of_addr t addr in
  match level with
  | Cpu_model.L1 | Cpu_model.L2 -> (0, line land (spec.sets_per_slice - 1))
  | Cpu_model.L3 -> (slice_of_addr t addr, line land (spec.sets_per_slice - 1))

(* Enumerate distinct physical addresses congruent with the given (slice,
   set) at [level], optionally filtered.  Addresses are line-aligned; the
   walk strides by the set period (set-index bits repeat every
   [sets_per_slice] lines), so only the slice hash and the filter are
   tested per candidate.  [start] skips the first [start] stride steps. *)
let congruent_addresses ?(filter = fun _ -> true) ?(start = 0) t level ~slice ~set n =
  let line_size = t.model.Cpu_model.line_size in
  let spec = Cpu_model.spec t.model level in
  let stride = spec.Cpu_model.sets_per_slice * line_size in
  let result = ref [] in
  let count = ref 0 in
  let addr = ref ((set * line_size) + (start * stride)) in
  let limit = 1 lsl 38 (* 256 GiB of synthetic physical space *) in
  while !count < n && !addr < limit do
    let s, ss = map_addr t level !addr in
    assert (ss = set);
    if s = slice && filter !addr then begin
      result := !addr :: !result;
      incr count
    end;
    addr := !addr + stride
  done;
  if !count < n then failwith "Machine.congruent_addresses: address space exhausted";
  List.rev !result

(* --- CAT (way masking) ------------------------------------------------ *)

let set_cat_ways t ways =
  if not t.model.Cpu_model.supports_cat then
    failwith (Printf.sprintf "%s does not support CAT" t.model.Cpu_model.name);
  if ways < 1 || ways > t.model.Cpu_model.l3.assoc then
    invalid_arg "Machine.set_cat_ways: bad way count";
  (* Re-partitioning the L3 drops the cached content of the masked region;
     modelled as a fresh L3 with reduced effective associativity. *)
  t.l3 <-
    Cache_level.create
      ~effective_assoc:ways
      ~prng:(Cq_util.Prng.split t.prng)
      Cpu_model.L3 t.model.Cpu_model.l3

let reset_cat t =
  t.l3 <-
    Cache_level.create ~prng:(Cq_util.Prng.split t.prng) Cpu_model.L3
      t.model.Cpu_model.l3

(* --- Set dueling ------------------------------------------------------- *)

let record_l3_miss t ~slice ~set =
  match Cache_level.kind t.l3 ~slice ~set with
  | Cache_level.Leader_a -> t.psel <- min psel_max (t.psel + 1)
  | Cache_level.Leader_b -> t.psel <- max 0 (t.psel - 1)
  | _ -> ()

let follower_uses_b t = t.psel >= psel_threshold

(* --- The load path ----------------------------------------------------- *)

let fill_level t level ~line =
  let cache = level_cache t level in
  let addr = line * t.model.Cpu_model.line_size in
  let slice, set = map_addr t level addr in
  let use_b =
    match level with Cpu_model.L3 -> follower_uses_b t | _ -> false
  in
  if level = Cpu_model.L3 then record_l3_miss t ~slice ~set;
  let evicted = Cache_level.fill cache ~slice ~set ~line ~use_b in
  (* Inclusive L3: evicting a line from L3 back-invalidates it everywhere. *)
  (match (level, evicted) with
  | Cpu_model.L3, Some ev ->
      let ev_addr = ev * t.model.Cpu_model.line_size in
      List.iter
        (fun l ->
          let sl, st = map_addr t l ev_addr in
          Cache_level.invalidate (level_cache t l) ~slice:sl ~set:st ~line:ev)
        [ Cpu_model.L1; Cpu_model.L2 ]
  | _ -> ());
  evicted

let probe_level t level ~line =
  let addr = line * t.model.Cpu_model.line_size in
  let slice, set = map_addr t level addr in
  (Cache_level.find (level_cache t level) ~slice ~set ~line, slice, set)

(* Load without timing: returns the level that served the access. *)
let load_raw t addr =
  t.loads <- t.loads + 1;
  let line = line_of_addr t addr in
  let served =
    match probe_level t Cpu_model.L1 ~line with
    | Some way, slice, set ->
        Cache_level.hit t.l1 ~slice ~set ~way;
        `L1
    | None, _, _ -> (
        match probe_level t Cpu_model.L2 ~line with
        | Some way, slice, set ->
            Cache_level.hit t.l2 ~slice ~set ~way;
            ignore (fill_level t Cpu_model.L1 ~line);
            `L2
        | None, _, _ -> (
            match probe_level t Cpu_model.L3 ~line with
            | Some way, slice, set ->
                Cache_level.hit t.l3 ~slice ~set ~way;
                ignore (fill_level t Cpu_model.L2 ~line);
                ignore (fill_level t Cpu_model.L1 ~line);
                `L3
            | None, _, _ ->
                ignore (fill_level t Cpu_model.L3 ~line);
                ignore (fill_level t Cpu_model.L2 ~line);
                ignore (fill_level t Cpu_model.L1 ~line);
                `Memory))
  in
  (* Adjacent-line prefetcher: on an L2-or-beyond access, the buddy line of
     the 128-byte pair is pulled into L2.  Disabled by CacheQuery. *)
  (if t.prefetchers && served <> `L1 then
     let buddy = line lxor 1 in
     let buddy_addr = buddy * t.model.Cpu_model.line_size in
     let in_l2, _, _ = probe_level t Cpu_model.L2 ~line:buddy in
     if in_l2 = None then begin
       let in_l3, _, _ = probe_level t Cpu_model.L3 ~line:buddy in
       if in_l3 = None then ignore (fill_level t Cpu_model.L3 ~line:buddy);
       ignore (fill_level t Cpu_model.L2 ~line:buddy);
       ignore buddy_addr
     end);
  t.last_line <- line;
  served

let base_latency t = function
  | `L1 -> t.model.Cpu_model.l1.hit_latency
  | `L2 -> t.model.Cpu_model.l2.hit_latency
  | `L3 -> t.model.Cpu_model.l3.hit_latency
  | `Memory -> t.model.Cpu_model.memory_latency

(* Timed load: returns the measured latency in cycles, as rdtsc-style
   profiling would observe it.  On top of the per-load jitter and outlier
   spikes, noise bursts inflate a short run of consecutive loads, and
   drift adds a slowly growing common-mode offset (a function of the
   [loads] work counter, so it behaves like wall-clock thermal drift and
   is deliberately not rewound by checkpoints). *)
let load t addr =
  let served = load_raw t addr in
  let noise = !(t.noise) in
  let jitter =
    if noise.jitter_sigma <= 0.0 then 0
    else
      int_of_float
        (Float.round (Cq_util.Prng.gaussian t.prng ~mu:0.0 ~sigma:noise.jitter_sigma))
  in
  let outlier =
    if noise.outlier_prob > 0.0 && Cq_util.Prng.bool t.prng noise.outlier_prob then
      noise.outlier_cycles
    else 0
  in
  let burst =
    if t.burst_remaining > 0 then begin
      t.burst_remaining <- t.burst_remaining - 1;
      noise.burst_cycles
    end
    else if noise.burst_prob > 0.0 && Cq_util.Prng.bool t.prng noise.burst_prob
    then begin
      t.burst_remaining <- max 0 (noise.burst_len - 1);
      noise.burst_cycles
    end
    else 0
  in
  let drift =
    if noise.drift_rate <= 0.0 then 0
    else int_of_float (noise.drift_rate *. float_of_int t.loads)
  in
  max 1 (base_latency t served + jitter + outlier + burst + drift)

(* Checkpoint the full architectural state: all three levels (content,
   replacement metadata, lazily-allocated set population), the set-dueling
   counter, the prefetcher state and the noise state (PRNG position and
   the active burst).  The [loads] counter is deliberately *not* rewound —
   it counts work performed, which is what the engine benchmark measures
   (and what latency drift keys on).  This is the primitive that lets the
   CacheQuery frontend execute query batches with prefix sharing.

   [rewind_noise:false] restores the architectural state but leaves the
   noise stream where it is, so re-executing the same access draws an
   *independent* measurement — exactly what re-measuring a disputed load
   on silicon does.  The voting layer uses this; batch executors keep the
   default so batched and sequential runs replay identical noise. *)
let checkpoint ?(rewind_noise = true) t =
  let l1 = t.l1 and l2 = t.l2 and l3 = t.l3 in
  let restore_l1 = Cache_level.checkpoint l1 in
  let restore_l2 = Cache_level.checkpoint l2 in
  let restore_l3 = Cache_level.checkpoint l3 in
  let psel = t.psel and prefetchers = t.prefetchers and last_line = t.last_line in
  let restore_prng = Cq_util.Prng.checkpoint t.prng in
  let burst_remaining = t.burst_remaining in
  fun () ->
    t.l1 <- l1;
    t.l2 <- l2;
    t.l3 <- l3;
    restore_l1 ();
    restore_l2 ();
    restore_l3 ();
    t.psel <- psel;
    t.prefetchers <- prefetchers;
    t.last_line <- last_line;
    if rewind_noise then begin
      restore_prng ();
      t.burst_remaining <- burst_remaining
    end

let clflush t addr =
  let line = line_of_addr t addr in
  List.iter
    (fun level ->
      let slice, set = map_addr t level addr in
      Cache_level.invalidate (level_cache t level) ~slice ~set ~line)
    Cpu_model.all_levels

let wbinvd t =
  List.iter
    (fun level -> Cache_level.flush_content (level_cache t level))
    Cpu_model.all_levels

(* Batch replay: drive a block-id trace through one (slice, set) of a
   level, classifying each access by the level that served it.  Block id
   [b] maps to the [b]-th address congruent with the set; a hit is an
   access served at [level] or closer to the core.  This is the
   hwsim-as-load-source entry point the workload engine's differential
   tests drive. *)
let replay_set ?universe t level ~slice ~set blocks =
  let n_blocks =
    match universe with
    | Some n -> n
    | None -> 1 + Array.fold_left max (-1) blocks
  in
  Array.iter
    (fun b ->
      if b < 0 || b >= n_blocks then
        invalid_arg "Machine.replay_set: block id out of range")
    blocks;
  let addrs =
    Array.of_list (congruent_addresses t level ~slice ~set n_blocks)
  in
  let n = Array.length blocks in
  let stream = Bytes.make n '\000' in
  let hit served =
    match (level, served) with
    | Cpu_model.L1, `L1 -> true
    | Cpu_model.L2, (`L1 | `L2) -> true
    | Cpu_model.L3, (`L1 | `L2 | `L3) -> true
    | _ -> false
  in
  for j = 0 to n - 1 do
    let served = load_raw t addrs.(Array.unsafe_get blocks j) in
    if hit served then Bytes.unsafe_set stream j '\001'
  done;
  stream

(* Test-only introspection into a set's tags. *)
let peek_set t level ~slice ~set =
  Cache_level.peek_content (level_cache t level) ~slice ~set

(* Set-dueling introspection (tests/diagnostics). *)
let psel t = t.psel
