(** Case study §7: learning replacement policies from (simulated) hardware.

    One call drives the full Table 4 workflow for a cache set: backend
    construction, latency calibration, reset-sequence discovery, learning
    through Polca + L*, and identification against the policy zoo. *)

type outcome =
  | Learned of {
      report : Learn.report;
      reset : Cq_cachequery.Frontend.reset;
      threshold : int;
    }
  | Partial of {
      failure : Learn.failure;
      hypothesis : Cq_policy.Types.output Cq_automata.Mealy.t option;
          (** last hypothesis submitted to the equivalence oracle *)
      snapshot : string option;  (** resume from here to continue the run *)
      reset : Cq_cachequery.Frontend.reset option;
      member_queries : int;
      seconds : float;
    }
      (** The supervised run could not complete (diverged, out of budget,
          or lost its workers) but salvaged its progress. *)
  | Failed of { reason : string; reset : Cq_cachequery.Frontend.reset option }

type run = {
  cpu : string;
  level : Cq_hwsim.Cpu_model.level;
  slice : int;
  set : int;
  assoc : int;  (** effective associativity (CAT-reduced if requested) *)
  cat : bool;
  outcome : outcome;
  timed_loads : int;
      (** physical timed loads issued by the whole workflow (calibration,
          reset discovery, learning, vote re-measurements) *)
  recalibrations : int;  (** drift-triggered threshold recalibrations *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val learn_set :
  ?seed:int ->
  ?cat_ways:int ->
  ?slice:int ->
  ?set:int ->
  ?repetitions:int ->
  ?voting:Cq_cachequery.Frontend.voting ->
  ?retries:int ->
  ?equivalence:Learn.equivalence ->
  ?check_hits:bool ->
  ?max_states:int ->
  ?validate:bool ->
  ?quotient:bool ->
  ?reset_trials:int ->
  ?metrics:Cq_util.Metrics.t ->
  ?snapshot:Learn.snapshot_policy ->
  ?resume:string ->
  ?deadline:float ->
  ?query_budget:int ->
  ?probe:(int -> unit) ->
  ?supervise_retries:int ->
  Cq_hwsim.Machine.t ->
  Cq_hwsim.Cpu_model.level ->
  run
(** Learn the policy of one cache set.  [cat_ways] virtually reduces the L3
    associativity via Intel CAT (fails on CPUs without CAT support).
    Failure modes mirror the paper's: no deterministic reset sequence
    (nondeterministic sets), diverging observations, state budget
    exhausted.  [metrics] is one registry spanning the whole stack
    (backend, frontend, learning loop); default is a private registry
    reachable through the report's [metrics] field.

    [voting] (overrides [repetitions]) selects the frontend's majority
    voting discipline.  [retries] (default 3) bounds the retry loop around
    {!Polca.Non_deterministic}; on each retry the frontend memo is cleared
    (the corrupted answer may be memoized) and voting escalates to the
    next adaptive cap, so transiently flipped words are absorbed while
    structural nondeterminism still fails.

    [validate] (default false) model-checks the learned automaton against
    the policy axioms before accepting it (see {!Learn.learn_from_cache});
    a rejected automaton ([Invalid]) is retried like a [Transient]
    failure, with escalated voting — it was built from flipped
    measurements, which better voting can repair.

    Supervision: [deadline] (seconds) is one wall clock for the whole
    workflow — reset discovery and learning draw it down together —
    and [query_budget] bounds the hardware queries; either tripping turns
    the run into a [Partial] outcome instead of an open-ended hang.
    [snapshot] makes the session durable (see {!Learn.snapshot_policy});
    [resume] continues a crashed run from its snapshot, restoring the
    crashed run's PRNG seed and calibration state so the resumed run
    re-derives the same reset sequence, classifies latencies identically
    and produces the {e identical} automaton.  [probe] is called with the
    current hardware-query count before each top-level oracle call (see
    {!Learn.learn_from_cache}) — the service daemon's scheduling,
    cancellation and fault-injection hook.  A [Transient] failure is
    retried up to [supervise_retries] (default 2) times with escalated
    voting, each attempt resuming from the latest snapshot; the other
    failure classes surface immediately as [Partial]. *)

val run :
  ?seed:int ->
  ?cat_ways:int ->
  ?slice:int ->
  ?set:int ->
  ?repetitions:int ->
  ?voting:Cq_cachequery.Frontend.voting ->
  ?retries:int ->
  ?equivalence:Learn.equivalence ->
  ?check_hits:bool ->
  ?max_states:int ->
  ?validate:bool ->
  ?quotient:bool ->
  ?reset_trials:int ->
  ?metrics:Cq_util.Metrics.t ->
  ?snapshot:Learn.snapshot_policy ->
  ?resume:string ->
  ?deadline:float ->
  ?query_budget:int ->
  ?probe:(int -> unit) ->
  ?supervise_retries:int ->
  Cq_hwsim.Machine.t ->
  Cq_hwsim.Cpu_model.level ->
  run
(** Alias of {!learn_set}. *)

val l3_leader_sets : ?slice:int -> Cq_hwsim.Cpu_model.t -> int list
(** The vulnerable-leader set indices of a CPU's L3 per the Appendix B
    formulas (the learnable L3 sets); empty for non-adaptive L3s. *)
