(** Case study §7: learning replacement policies from (simulated) hardware.

    One call drives the full Table 4 workflow for a cache set: backend
    construction, latency calibration, reset-sequence discovery, learning
    through Polca + L*, and identification against the policy zoo. *)

type outcome =
  | Learned of {
      report : Learn.report;
      reset : Cq_cachequery.Frontend.reset;
      threshold : int;
    }
  | Failed of { reason : string; reset : Cq_cachequery.Frontend.reset option }

type run = {
  cpu : string;
  level : Cq_hwsim.Cpu_model.level;
  slice : int;
  set : int;
  assoc : int;  (** effective associativity (CAT-reduced if requested) *)
  cat : bool;
  outcome : outcome;
  timed_loads : int;
      (** physical timed loads issued by the whole workflow (calibration,
          reset discovery, learning, vote re-measurements) *)
  recalibrations : int;  (** drift-triggered threshold recalibrations *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val learn_set :
  ?seed:int ->
  ?cat_ways:int ->
  ?slice:int ->
  ?set:int ->
  ?repetitions:int ->
  ?voting:Cq_cachequery.Frontend.voting ->
  ?retries:int ->
  ?equivalence:Learn.equivalence ->
  ?check_hits:bool ->
  ?max_states:int ->
  ?reset_trials:int ->
  Cq_hwsim.Machine.t ->
  Cq_hwsim.Cpu_model.level ->
  run
(** Learn the policy of one cache set.  [cat_ways] virtually reduces the L3
    associativity via Intel CAT (fails on CPUs without CAT support).
    Failure modes mirror the paper's: no deterministic reset sequence
    (nondeterministic sets), diverging observations, state budget
    exhausted.

    [voting] (overrides [repetitions]) selects the frontend's majority
    voting discipline.  [retries] (default 3) bounds the retry loop around
    {!Polca.Non_deterministic}; on each retry the frontend memo is cleared
    (the corrupted answer may be memoized) and voting escalates to the
    next adaptive cap, so transiently flipped words are absorbed while
    structural nondeterminism still fails. *)

val l3_leader_sets : ?slice:int -> Cq_hwsim.Cpu_model.t -> int list
(** The vulnerable-leader set indices of a CPU's L3 per the Appendix B
    formulas (the learnable L3 sets); empty for non-adaptive L3s. *)
