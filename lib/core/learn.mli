(** The end-to-end learning loop (§3.4 of the paper): Polca as membership
    oracle, L* as learner, W-method conformance testing as equivalence
    oracle.

    Corollary 3.4 holds by construction: if learning a cache C(P, cc0, n)
    returns P', then ⟦P⟧ = ⟦P'⟧ or P has more than |P'| + k states. *)

type equivalence =
  | W_method of int  (** conformance-suite depth k *)
  | Wp_method of int  (** Wp-method, depth k: same guarantee, smaller suite *)
  | Random_walk of { max_tests : int; max_len : int; seed : int }

val default_equivalence : equivalence
(** [Wp_method 1], the paper's configuration (§3.4). *)

type engine =
  | Sequential
      (** one query at a time, reset-and-replay, short-circuit findEvicted
          — the baseline of the engine benchmark *)
  | Batched
      (** closure waves and findEvicted fan-outs reach the cache as
          prefix-shared batches (the default) *)
  | Parallel of { domains : int }
      (** [Batched] plus conformance testing fanned across worker domains;
          requires [cache_factory] *)

val default_engine : engine
(** [Batched]. *)

val engine_to_string : engine -> string

type report = {
  machine : Cq_policy.Types.output Cq_automata.Mealy.t;
  states : int;
  seconds : float;
  rounds : int;
  suffixes : int;
  member_queries : int;
  member_symbols : int;
  cache_queries : int;
  cache_accesses : int;  (** logical block accesses (pre prefix-sharing) *)
  cache_batches : int;  (** query batches reaching the cache oracle *)
  accesses_saved : int;  (** block accesses avoided by prefix sharing *)
  memo_overflows : int;  (** bounded-memo clears (see [max_memo_entries]) *)
  row_cache_overflows : int;  (** bounded L* row-cache clears *)
  domains : int;  (** worker domains used by the equivalence oracle *)
  identified : string list;
      (** known policies trace-equivalent to the result (up to reset state
          and line permutation) *)
  timed_loads : int;
      (** physical timed loads including vote re-measurements (0 for quiet
          software oracles without a [device_stats] record) *)
  vote_runs : int;  (** extra executions spent on majority voting *)
  transient_flips : int;
      (** [Polca.Non_deterministic] words absorbed by the retry layer *)
  retry_attempts : int;  (** word re-executions the retry layer issued *)
}

val pp_report : Format.formatter -> report -> unit

val learn_from_cache :
  ?equivalence:equivalence ->
  ?engine:engine ->
  ?cache_factory:(unit -> Cq_cache.Oracle.t) ->
  ?check_hits:bool ->
  ?memoize:bool ->
  ?max_memo_entries:int ->
  ?max_row_cache:int ->
  ?max_states:int ->
  ?identify:bool ->
  ?retries:int ->
  ?on_retry:(int -> unit) ->
  ?device_stats:Cq_cache.Oracle.stats ->
  Cq_cache.Oracle.t ->
  report
(** Learn the replacement policy behind a cache oracle.  [memoize] (default
    true) interposes a query memo — disable it when the oracle already
    memoizes (the CacheQuery frontend does).  [engine] selects the query
    engine (default {!Batched}); [Parallel] additionally needs
    [cache_factory], a thunk producing a fresh, independent oracle for
    each worker domain (raises [Invalid_argument] otherwise).
    [max_memo_entries] / [max_row_cache] bound the query memo and the L*
    row cache with clear-on-overflow semantics; overflows are reported.

    [retries] / [on_retry] plumb the bounded {!Polca.Non_deterministic}
    retry layer (see {!Polca.create}).  [device_stats] is the device
    layer's own stats record (e.g. {!Cq_cachequery.Frontend.stats}), whose
    timed-load / vote counters bypass the learning-side wrappers; their
    deltas over the run are folded into the report.

    May raise {!Cq_learner.Lstar.Diverged} or {!Polca.Non_deterministic}. *)

val learn_simulated :
  ?equivalence:equivalence ->
  ?engine:engine ->
  ?check_hits:bool ->
  ?max_memo_entries:int ->
  ?max_row_cache:int ->
  ?max_states:int ->
  ?identify:bool ->
  Cq_policy.Policy.t ->
  report
(** Case study §6: learn a policy from a software-simulated cache.  The
    simulated oracle is reproducible, so the [Parallel] engine's
    per-domain factory is supplied automatically. *)

val verify_against : report -> Cq_policy.Policy.t -> bool
(** Is the learned machine trace-equivalent to the policy's ground truth? *)
