(** The end-to-end learning loop (§3.4 of the paper): Polca as membership
    oracle, L* as learner, W-method conformance testing as equivalence
    oracle.

    Corollary 3.4 holds by construction: if learning a cache C(P, cc0, n)
    returns P', then ⟦P⟧ = ⟦P'⟧ or P has more than |P'| + k states. *)

type equivalence =
  | W_method of int  (** conformance-suite depth k *)
  | Wp_method of int  (** Wp-method, depth k: same guarantee, smaller suite *)
  | Random_walk of { max_tests : int; max_len : int; seed : int }

val default_equivalence : equivalence
(** [Wp_method 1], the paper's configuration (§3.4). *)

type engine =
  | Sequential
      (** one query at a time, reset-and-replay, short-circuit findEvicted
          — the baseline of the engine benchmark *)
  | Batched
      (** closure waves and findEvicted fan-outs reach the cache as
          prefix-shared batches (the default) *)
  | Parallel of { domains : int }
      (** [Batched] plus conformance testing fanned across worker domains;
          requires [cache_factory] *)

val default_engine : engine
(** [Batched]. *)

val engine_to_string : engine -> string

type snapshot_policy = {
  path : string;  (** snapshot file, written atomically *)
  every_queries : int;  (** write after this many new hardware queries *)
  every_seconds : float;  (** ... or after this much wall clock *)
  spill : string option;
      (** fallback path tried when writing [path] fails typed — a
          different filesystem keeps snapshots flowing through a
          full/failing state dir *)
  on_degraded : (string -> unit) option;
      (** observer called with a diagnostic whenever a snapshot write
          fails typed (before the spill is tried): a snapshot failure
          degrades the session, it never kills the learn *)
}
(** Snapshot cadence for durable sessions: a write happens whenever either
    trigger trips, always between top-level oracle queries (when the
    prefix trie is consistent). *)

val snapshot_policy :
  ?every_queries:int ->
  ?every_seconds:float ->
  ?spill:string ->
  ?on_degraded:(string -> unit) ->
  string ->
  snapshot_policy
(** [snapshot_policy path] with defaults [every_queries = 500],
    [every_seconds = 30.], no spill, no observer. *)

type failure =
  | Transient of string
      (** noise-induced ({!Polca.Non_deterministic} /
          {!Cq_learner.Moracle.Inconsistent}); a retry with escalated
          voting can succeed *)
  | Diverged of Cq_learner.Lstar.divergence
      (** the observation table never stabilised *)
  | Budget_exhausted of string
      (** the wall-clock deadline or the query budget tripped *)
  | Worker_lost of string  (** a pooled task failed every bounded retry *)
  | Invalid of string
      (** the learned automaton violates the policy axioms — the
          [~validate] model-checker gate rejected it; like [Transient],
          a retry with escalated voting can succeed *)

val pp_failure : Format.formatter -> failure -> unit

val failure_exit_code : failure -> int
(** Distinct non-zero exit codes for scripted campaigns:
    [Transient] → 10, [Diverged] → 11, [Budget_exhausted] → 12,
    [Worker_lost] → 13, [Invalid] → 14. *)

exception Out_of_budget of string
(** Raised (from inside the oracle stack) when the deadline or query
    budget trips; {!run} classifies it as [Budget_exhausted]. *)

exception Invalid_automaton of string
(** Raised by the post-learning validation gate ([~validate]) when the
    learned machine violates the policy axioms
    (see {!Cq_analysis.Automaton_check}); {!run} classifies it as
    [Invalid]. *)

type report = {
  machine : Cq_policy.Types.output Cq_automata.Mealy.t;
  states : int;
  seconds : float;
  rounds : int;
  suffixes : int;
  member_queries : int;
  member_symbols : int;
  cache_queries : int;
  cache_accesses : int;  (** logical block accesses (pre prefix-sharing) *)
  cache_batches : int;  (** query batches reaching the cache oracle *)
  accesses_saved : int;  (** block accesses avoided by prefix sharing *)
  memo_overflows : int;  (** bounded-memo clears (see [max_memo_entries]) *)
  row_cache_overflows : int;  (** bounded L* row-cache clears *)
  domains : int;  (** worker domains used by the equivalence oracle *)
  worker_restarts : int;
      (** pooled worker contexts poisoned (and rebuilt) after task
          exceptions — 0 on a healthy run *)
  identified : string list;
      (** known policies trace-equivalent to the result (up to reset state
          and line permutation) *)
  quotient : Cq_learner.Quotient.stats option;
      (** symmetry-quotient merge statistics — representative/state
          counts (the collapse factor), alias edges, verification
          queries, and the merge witness — when [~quotient] was set;
          [None] when quotient learning was off *)
  timed_loads : int;
      (** physical timed loads including vote re-measurements (0 for quiet
          software oracles without a [device_stats] record) *)
  vote_runs : int;  (** extra executions spent on majority voting *)
  transient_flips : int;
      (** [Polca.Non_deterministic] words absorbed by the retry layer *)
  retry_attempts : int;  (** word re-executions the retry layer issued *)
  validation : Cq_analysis.Automaton_check.report option;
      (** the post-learning model-checker verdict when [~validate] ran
          (always a passing report here — violations abort the run with
          {!Invalid_automaton} / [Invalid]); [None] otherwise *)
  metrics : Cq_util.Metrics.t;
      (** the run's full metrics registry ("oracle.", "member.", "pool.",
          "learn." series; plus the device layer's "frontend." /
          "backend." series when the caller shared one registry across
          the stack).  The scalar fields above are views over it, frozen
          at completion. *)
}

val pp_report : Format.formatter -> report -> unit

type partial = {
  failure : failure;
  hypothesis : Cq_policy.Types.output Cq_automata.Mealy.t option;
      (** the last hypothesis submitted to the equivalence oracle *)
  snapshot : string option;
      (** path of the snapshot written on the way down, if any — a
          follow-up run resumes from it instead of starting over *)
  member_queries : int;  (** hardware queries spent before failing *)
  seconds : float;
}
(** What a supervised run salvaged when it could not complete. *)

type outcome = Complete of report | Partial of partial

val learn_from_cache :
  ?equivalence:equivalence ->
  ?engine:engine ->
  ?cache_factory:(unit -> Cq_cache.Oracle.t) ->
  ?check_hits:bool ->
  ?memoize:bool ->
  ?max_memo_entries:int ->
  ?max_row_cache:int ->
  ?max_states:int ->
  ?identify:bool ->
  ?validate:bool ->
  ?quotient:bool ->
  ?retries:int ->
  ?on_retry:(int -> unit) ->
  ?device_stats:Cq_cache.Oracle.stats ->
  ?metrics:Cq_util.Metrics.t ->
  ?snapshot:snapshot_policy ->
  ?resume:string ->
  ?snapshot_meta:(unit -> Session.meta) ->
  ?deadline:Cq_util.Clock.deadline ->
  ?query_budget:int ->
  ?probe:(int -> unit) ->
  Cq_cache.Oracle.t ->
  report
(** Learn the replacement policy behind a cache oracle.  [memoize] (default
    true) interposes a query memo — disable it when the oracle already
    memoizes (the CacheQuery frontend does).  [engine] selects the query
    engine (default {!Batched}); [Parallel] additionally needs
    [cache_factory], a thunk producing a fresh, independent oracle for
    each worker domain (raises [Invalid_argument] otherwise).
    [max_memo_entries] / [max_row_cache] bound the query memo and the L*
    row cache with clear-on-overflow semantics; overflows are reported.

    [validate] (default false) model-checks the learned machine against
    the policy axioms ({!Cq_analysis.Automaton_check}: hit consistency,
    reachability, minimality, line-permutation symmetry) before reporting
    success — Wp conformance against the producing oracle cannot catch a
    systematic measurement artefact, the axioms can.  A violation raises
    {!Invalid_automaton} here (classified as [Invalid] by {!run}); the
    passing verdict lands in [report.validation].

    [quotient] (default false) switches the learner to symmetry-quotient
    mode ({!Cq_learner.Quotient}, {!Cq_learner.Lstar.learn}'s [quotient]
    parameter): the observation table merges states whose rows are
    verified line-relabelings of an existing representative's —
    collapsing the up-to-assoc! symmetric copies of each state into one
    — and conformance testing runs a focused suite (full phases on
    representative states, frame spot-checks on aliased ones).  When
    [validate] also runs, the merge witness is passed to the model
    checker, which re-validates each surviving merge with an anchored
    product walk (see {!Cq_analysis.Automaton_check.check}).

    [retries] / [on_retry] plumb the bounded {!Polca.Non_deterministic}
    retry layer (see {!Polca.create}).  [device_stats] is the device
    layer's own stats record (e.g. {!Cq_cachequery.Frontend.stats}), whose
    timed-load / vote counters bypass the learning-side wrappers; their
    deltas over the run are folded into the report.

    Durability: [snapshot] writes the session state ({!Session.snapshot})
    to disk on the given cadence, and once more on any failure; [resume]
    preloads the prefix trie and observation table from a snapshot, after
    which the learner replays deterministically — previously answered
    queries cost nothing and the final automaton is identical to a
    crash-free run's.  [snapshot_meta] supplies the run metadata embedded
    in each snapshot (label, seed, calibration); [deadline] and
    [query_budget] bound the run ({!Out_of_budget} past the limit;
    budgeted queries are the {e hardware} queries, so a resumed replay is
    free).  [probe] is called with the current hardware-query count
    before each top-level oracle call — fault-injection hooks (tests, the
    recovery benchmark) raise from it to simulate a crash.

    May raise {!Cq_learner.Lstar.Diverged}, {!Polca.Non_deterministic},
    {!Cq_util.Pool.Worker_lost}, {!Out_of_budget} or {!Session.Corrupt};
    {!run} is the non-raising variant. *)

val run :
  ?equivalence:equivalence ->
  ?engine:engine ->
  ?cache_factory:(unit -> Cq_cache.Oracle.t) ->
  ?check_hits:bool ->
  ?memoize:bool ->
  ?max_memo_entries:int ->
  ?max_row_cache:int ->
  ?max_states:int ->
  ?identify:bool ->
  ?validate:bool ->
  ?quotient:bool ->
  ?retries:int ->
  ?on_retry:(int -> unit) ->
  ?device_stats:Cq_cache.Oracle.stats ->
  ?metrics:Cq_util.Metrics.t ->
  ?snapshot:snapshot_policy ->
  ?resume:string ->
  ?snapshot_meta:(unit -> Session.meta) ->
  ?deadline:Cq_util.Clock.deadline ->
  ?query_budget:int ->
  ?probe:(int -> unit) ->
  Cq_cache.Oracle.t ->
  outcome
(** As {!learn_from_cache}, but failures in the taxonomy come back as
    [Partial] (with the last hypothesis and the failure-time snapshot)
    instead of exceptions.  Exceptions outside the taxonomy — programming
    errors, a corrupt [resume] file — still raise. *)

val learn_simulated :
  ?equivalence:equivalence ->
  ?engine:engine ->
  ?check_hits:bool ->
  ?max_memo_entries:int ->
  ?max_row_cache:int ->
  ?max_states:int ->
  ?identify:bool ->
  ?validate:bool ->
  ?quotient:bool ->
  ?metrics:Cq_util.Metrics.t ->
  ?snapshot:snapshot_policy ->
  ?resume:string ->
  ?deadline:Cq_util.Clock.deadline ->
  ?query_budget:int ->
  ?probe:(int -> unit) ->
  Cq_policy.Policy.t ->
  report
(** Case study §6: learn a policy from a software-simulated cache.  The
    simulated oracle is reproducible, so the [Parallel] engine's
    per-domain factory is supplied automatically. *)

val run_simulated :
  ?equivalence:equivalence ->
  ?engine:engine ->
  ?check_hits:bool ->
  ?max_memo_entries:int ->
  ?max_row_cache:int ->
  ?max_states:int ->
  ?identify:bool ->
  ?validate:bool ->
  ?quotient:bool ->
  ?metrics:Cq_util.Metrics.t ->
  ?snapshot:snapshot_policy ->
  ?resume:string ->
  ?deadline:Cq_util.Clock.deadline ->
  ?query_budget:int ->
  ?probe:(int -> unit) ->
  Cq_policy.Policy.t ->
  outcome
(** As {!learn_simulated}, through the supervised {!run} API. *)

val verify_against : report -> Cq_policy.Policy.t -> bool
(** Is the learned machine trace-equivalent to the policy's ground truth? *)
