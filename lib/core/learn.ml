(* The end-to-end learning loop (§3.4): Polca as membership oracle, L* as
   learner, W-method conformance testing (depth k) as equivalence oracle.

   Corollary 3.4 holds by construction: if learning returns policy P', then
   the policy under learning is trace-equivalent to P' or has more than
   |P'| + k states. *)

type equivalence =
  | W_method of int (* depth k of the conformance suite *)
  | Wp_method of int (* the paper's configuration: smaller suites, same guarantee *)
  | Random_walk of { max_tests : int; max_len : int; seed : int }

let default_equivalence = Wp_method 1

(* Query-engine selection:
   - [Sequential]: one query at a time, reset-and-replay, the sequential
     short-circuit findEvicted scan — the seed's behaviour, kept as the
     baseline for the engine benchmark and the determinism tests.
   - [Batched] (default): closure waves and findEvicted fan-outs go to the
     cache as prefix-shared batches (trie executor over snapshot/restore).
   - [Parallel]: [Batched] plus conformance testing fanned across
     [domains] worker domains, each owning a private oracle stack built
     from [cache_factory]. *)
type engine = Sequential | Batched | Parallel of { domains : int }

let default_engine = Batched

let engine_to_string = function
  | Sequential -> "sequential"
  | Batched -> "batched"
  | Parallel { domains } -> Printf.sprintf "parallel:%d" domains

(* Snapshot cadence for durable sessions: write at most every
   [every_queries] hardware queries AND at least every [every_seconds]
   seconds of wall clock (whichever trips first).

   A snapshot write that fails typed (Atomic_file.Write_error, or an
   injected crash) must degrade the session, never kill the learn — the
   snapshot is an optimisation of the failure path, and aborting hours of
   hardware queries because the *backup* could not be written inverts its
   purpose.  [on_degraded] observes the failure; [spill] names a fallback
   path (ideally another filesystem) tried before giving up on this
   cadence tick. *)
type snapshot_policy = {
  path : string;
  every_queries : int;
  every_seconds : float;
  spill : string option;
  on_degraded : (string -> unit) option;
}

let snapshot_policy ?(every_queries = 500) ?(every_seconds = 30.) ?spill
    ?on_degraded path =
  if every_queries < 1 then
    invalid_arg "Learn.snapshot_policy: every_queries must be >= 1";
  if every_seconds <= 0. then
    invalid_arg "Learn.snapshot_policy: every_seconds must be > 0";
  { path; every_queries; every_seconds; spill; on_degraded }

(* The supervisor's failure taxonomy.  Everything a learning run can die
   of maps onto one of these; anything else is a programming error and
   propagates as the raw exception. *)
type failure =
  | Transient of string
      (* noise-induced: Polca.Non_deterministic / Moracle.Inconsistent;
         a retry (with escalated voting) can succeed *)
  | Diverged of Cq_learner.Lstar.divergence (* the table never stabilised *)
  | Budget_exhausted of string (* wall-clock deadline or query budget *)
  | Worker_lost of string (* a pooled task failed every retry *)
  | Invalid of string
      (* the learned automaton violates the policy axioms (the ~validate
         gate); like Transient, a retry with escalated voting can succeed *)

let pp_failure ppf = function
  | Transient m -> Fmt.pf ppf "transient: %s" m
  | Diverged d -> Fmt.pf ppf "diverged: %a" Cq_learner.Lstar.pp_divergence d
  | Budget_exhausted m -> Fmt.pf ppf "budget exhausted: %s" m
  | Worker_lost m -> Fmt.pf ppf "worker lost: %s" m
  | Invalid m -> Fmt.pf ppf "invalid automaton: %s" m

(* Distinct non-zero exit codes, so scripted campaigns can branch on the
   failure class without parsing stderr. *)
let failure_exit_code = function
  | Transient _ -> 10
  | Diverged _ -> 11
  | Budget_exhausted _ -> 12
  | Worker_lost _ -> 13
  | Invalid _ -> 14

exception Out_of_budget of string
(* raised inside the oracle stack when the deadline or query budget trips;
   classified as [Budget_exhausted] by [run] *)

exception Invalid_automaton of string
(* raised by the post-learning validation gate ([~validate]) when the
   learned machine violates the policy axioms; classified as [Invalid] *)

type report = {
  machine : Cq_policy.Types.output Cq_automata.Mealy.t;
  states : int;
  seconds : float;
  rounds : int; (* equivalence queries issued *)
  suffixes : int; (* distinguishing suffixes added by Rivest–Schapire *)
  member_queries : int; (* membership queries reaching Polca *)
  member_symbols : int;
  cache_queries : int; (* block-trace queries reaching the cache oracle *)
  cache_accesses : int; (* total block accesses of those queries *)
  cache_batches : int; (* query batches reaching the cache oracle *)
  accesses_saved : int; (* block accesses avoided by prefix sharing *)
  memo_overflows : int; (* times the bounded query memo was cleared *)
  row_cache_overflows : int; (* times the bounded L* row cache was cleared *)
  domains : int; (* worker domains used by the equivalence oracle *)
  worker_restarts : int; (* pooled worker contexts poisoned and rebuilt *)
  identified : string list; (* known policies equivalent to the result *)
  quotient : Cq_learner.Quotient.stats option;
      (* symmetry-quotient merge statistics (state collapse, alias count,
         verification queries), when requested ([~quotient]) *)
  (* Noise-layer accounting (0 for quiet software oracles): *)
  timed_loads : int; (* physical timed loads, incl. vote re-measurements *)
  vote_runs : int; (* extra executions spent on majority voting *)
  transient_flips : int; (* Non_deterministic words absorbed by retry *)
  retry_attempts : int; (* word re-executions the retry layer issued *)
  validation : Cq_analysis.Automaton_check.report option;
      (* the post-learning model-checker verdict, when [~validate] ran
         (always a passing report here: violations abort the run) *)
  metrics : Cq_util.Metrics.t;
      (* the run's full metrics registry; the scalar fields above are
         views over it (frozen at completion) *)
}

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>states: %d@,time: %a@,equivalence rounds: %d@,suffixes added: \
     %d@,membership queries: %d (%d symbols)@,cache queries: %d (%d block \
     accesses)@,cache batches: %d (%d accesses saved)@,domains: \
     %d@,identified as: %s@]"
    r.states Cq_util.Clock.pp_duration r.seconds r.rounds r.suffixes
    r.member_queries r.member_symbols r.cache_queries r.cache_accesses
    r.cache_batches r.accesses_saved r.domains
    (match r.identified with [] -> "(unknown policy)" | l -> String.concat ", " l);
  (match r.quotient with
  | Some q -> Fmt.pf ppf "@,quotient: %a" Cq_learner.Quotient.pp q
  | None -> ());
  if r.vote_runs > 0 || r.retry_attempts > 0 || r.timed_loads > 0 then
    Fmt.pf ppf
      "@,timed loads: %d@,vote re-runs: %d@,retries: %d (%d transient flips \
       absorbed)"
      r.timed_loads r.vote_runs r.retry_attempts r.transient_flips;
  if r.worker_restarts > 0 then
    Fmt.pf ppf "@,worker restarts: %d" r.worker_restarts

(* What a supervised run salvaged when it could not complete: the failure
   class, the last hypothesis submitted to the equivalence oracle, and the
   snapshot a follow-up run can resume from. *)
type partial = {
  failure : failure;
  hypothesis : Cq_policy.Types.output Cq_automata.Mealy.t option;
  snapshot : string option;
  member_queries : int;
  seconds : float;
}

type outcome = Complete of report | Partial of partial

let default_meta () = Session.make_meta ~queries:0 ()

(* Learn the replacement policy behind a cache oracle.  [learn_core] is
   the one implementation; [learn_from_cache] re-raises the original
   exception on failure (the historical API), [run] classifies it into
   the failure taxonomy and returns a [Partial] instead. *)
let learn_core ?(equivalence = default_equivalence)
    ?(engine = default_engine) ?cache_factory ?(check_hits = true)
    ?(memoize = true) ?max_memo_entries ?max_row_cache
    ?(max_states = 1_000_000) ?(identify = true) ?(validate = false)
    ?(quotient = false)
    ?(retries = 0) ?on_retry ?device_stats ?metrics ?snapshot ?resume
    ?snapshot_meta ?(deadline = Cq_util.Clock.no_deadline) ?query_budget
    ?probe cache =
  (* One registry for the whole run: the learn-level oracle wrappers
     ("oracle.", "member.", "pool.", "learn." prefixes) all register here.
     Callers pass the same registry to Backend/Frontend.create so the
     device layer's "backend."/"frontend." series land alongside. *)
  let registry =
    match metrics with Some r -> r | None -> Cq_util.Metrics.create ()
  in
  let snapshot_write_h =
    Cq_util.Metrics.histogram ~buckets:32 ~start:1e-6 registry
      "learn.snapshot_write_seconds"
  and snapshot_replay_h =
    Cq_util.Metrics.histogram ~buckets:32 ~start:1e-6 registry
      "learn.snapshot_replay_seconds"
  in
  (* [device_stats]: the device layer's own stats record (the CacheQuery
     frontend's), whose voting/timed-load counters are invisible to the
     wrappers below; its deltas over the learning run are folded into the
     report. *)
  let dev_snapshot () =
    match device_stats with
    | None -> (0, 0)
    | Some d ->
        ( Cq_util.Metrics.value d.Cq_cache.Oracle.timed_loads,
          Cq_util.Metrics.value d.Cq_cache.Oracle.vote_runs )
  in
  let dev_loads0, dev_votes0 = dev_snapshot () in
  let t0 = Cq_util.Clock.mono () in
  (* Resume: load the snapshot up front so a damaged file fails fast,
     before any hardware traffic. *)
  let resumed : Cq_policy.Types.output Session.snapshot option =
    Option.map
      (fun path ->
        Cq_util.Trace.with_span ~cat:"learn" "learn.resume.load" @@ fun () ->
        let snap, seconds =
          Cq_util.Clock.time (fun () -> Session.load ~path)
        in
        Cq_util.Metrics.observe snapshot_replay_h seconds;
        snap)
      resume
  in
  let pool_stats = Cq_util.Pool.fresh_stats ~registry () in
  let batch_probes = match engine with Sequential -> false | _ -> true in
  let cache =
    match engine with
    | Sequential -> Cq_cache.Oracle.sequential cache
    | Batched | Parallel _ -> cache
  in
  let cache_stats = Cq_cache.Oracle.fresh_stats ~registry () in
  let cache = Cq_cache.Oracle.counting cache_stats cache in
  let cache =
    if memoize then
      Cq_cache.Oracle.memoized ~stats:cache_stats ?max_entries:max_memo_entries
        cache
    else cache
  in
  let polca =
    Polca.create ~check_hits ~batch_probes ~retries ?backoff:on_retry
      ~stats:cache_stats cache
  in
  let mstats = Cq_learner.Moracle.fresh_stats ~registry () in
  let cached_oracle, handle =
    Polca.moracle polca
    |> Cq_learner.Moracle.counting mstats
    |> Cq_learner.Moracle.cached_session ~stats:mstats ~conflict_retries:retries
  in
  (* Preload the prefix trie from the snapshot: every query the crashed
     run ever answered is now served locally, so the deterministic learner
     replays to the crash point at zero hardware cost and then continues —
     reaching the identical automaton a crash-free run would have. *)
  (match resumed with
  | Some snap ->
      let (), seconds =
        Cq_util.Clock.time (fun () ->
            handle.Cq_learner.Moracle.preload snap.Session.knowledge)
      in
      Cq_util.Metrics.observe snapshot_replay_h seconds
  | None -> ());
  let seed_rows =
    Option.bind resumed (fun snap ->
        Option.map
          (fun t -> t.Cq_learner.Lstar.rows)
          snap.Session.table)
  in
  (* Durability and supervision hooks around the cached oracle: [guard]
     runs before each top-level query (crash probe, deadline, budget);
     [maybe_snapshot] after it, when the trie is consistent.  Queries
     served by the trie never reach the hardware, so [mstats.queries] —
     the budget currency — only counts real traffic. *)
  let table_getter = ref None in
  let last_hypothesis = ref None in
  let snapshot_path_written = ref None in
  let last_snap_queries = ref 0 in
  let last_snap_time = ref t0 in
  let hw_queries () = Cq_util.Metrics.value mstats.Cq_learner.Moracle.queries in
  let write_snapshot () =
    match snapshot with
    | None -> ()
    | Some p ->
        Cq_util.Trace.with_span ~cat:"learn" "learn.snapshot.write"
        @@ fun () ->
        let meta =
          let m =
            match snapshot_meta with
            | Some f -> f ()
            | None -> default_meta ()
          in
          { m with Session.queries = hw_queries () }
        in
        let snap =
          {
            Session.meta;
            knowledge = handle.Cq_learner.Moracle.export ();
            table = Option.map (fun g -> g ()) !table_getter;
          }
        in
        let save path =
          let (), seconds =
            Cq_util.Clock.time (fun () -> Session.save ~path snap)
          in
          Cq_util.Metrics.observe snapshot_write_h seconds;
          snapshot_path_written := Some path
        in
        (* Bump the cadence trackers before attempting the write: a dead
           disk must not turn every subsequent query into a write
           attempt. *)
        last_snap_queries := hw_queries ();
        last_snap_time := Cq_util.Clock.mono ();
        (* A snapshot failure degrades the session, it never kills the
           learn: notify the observer, reroute to the spill path, carry
           on.  Only the typed shapes are absorbed — anything else is a
           programming error and propagates. *)
        (try save p.path
         with
        | ( Cq_util.Atomic_file.Write_error _ | Cq_util.Faults.Injected _ ) as e
        ->
          (match p.on_degraded with
          | Some f -> ( try f (Printexc.to_string e) with _ -> ())
          | None -> ());
          (match p.spill with
          | None -> ()
          | Some sp -> (
              try save sp
              with
              | Cq_util.Atomic_file.Write_error _ | Cq_util.Faults.Injected _
              ->
                ())))
  in
  let guard () =
    (match probe with
    | Some f -> f (hw_queries ())
    | None -> ());
    if Cq_util.Clock.expired deadline then
      raise
        (Out_of_budget
           (Printf.sprintf "wall-clock deadline exceeded after %d hardware \
                            queries"
              (hw_queries ())));
    match query_budget with
    | Some b when hw_queries () >= b ->
        raise
          (Out_of_budget (Printf.sprintf "query budget of %d exhausted" b))
    | _ -> ()
  in
  let maybe_snapshot () =
    match snapshot with
    | None -> ()
    | Some p ->
        if
          hw_queries () - !last_snap_queries >= p.every_queries
          || Cq_util.Clock.mono () -. !last_snap_time >= p.every_seconds
        then write_snapshot ()
  in
  let guarded oracle =
    {
      oracle with
      Cq_learner.Moracle.query =
        (fun w ->
          guard ();
          let r = oracle.Cq_learner.Moracle.query w in
          maybe_snapshot ();
          r);
      query_batch =
        (fun ws ->
          guard ();
          let r = oracle.Cq_learner.Moracle.query_batch ws in
          maybe_snapshot ();
          r);
    }
  in
  let domains =
    match engine with Parallel { domains } -> max 1 domains | _ -> 1
  in
  (* A worker's private oracle stack: its own cache (from the factory), its
     own memo and prefix cache — no mutable state shared across domains.
     Queries are independent restarts from the reset state, so a fresh
     stack answers exactly like the main one. *)
  let worker_oracle () =
    match cache_factory with
    | None -> invalid_arg "Learn: Parallel engine requires ~cache_factory"
    | Some factory ->
        let cache = factory () in
        let cache =
          if memoize then
            Cq_cache.Oracle.memoized ?max_entries:max_memo_entries cache
          else cache
        in
        Polca.moracle (Polca.create ~check_hits ~batch_probes:true cache)
        |> Cq_learner.Moracle.cached
  in
  (* The latest hypothesis' rep/alias decomposition, published by the
     quotient learner so the conformance suite can focus on representative
     states (aliased states only get a frame spot-check). *)
  let qview = ref None in
  let make_find_cex oracle =
    let mk_pool () =
      if Option.is_none cache_factory then
        invalid_arg "Learn: Parallel engine requires ~cache_factory";
      Cq_util.Pool.create ~size:domains ~stats:pool_stats
        ~factory:worker_oracle ()
    in
    let quotient_conformance = quotient && Polca.assoc polca >= 2 in
    let find_cex =
      match (equivalence, engine) with
      | Random_walk { max_tests; max_len; seed }, _ ->
          Cq_learner.Equivalence.random_walk
            ~prng:(Cq_util.Prng.of_int seed)
            ~max_tests ~max_len oracle
      | (W_method depth | Wp_method depth), _ when quotient_conformance -> (
          let assoc = Polca.assoc polca in
          let sweep = List.init assoc (fun _ -> assoc) in
          let is_rep s =
            match !qview with
            | None -> true
            | Some v ->
                s < Array.length v.Cq_learner.Lstar.is_rep_state
                && v.Cq_learner.Lstar.is_rep_state.(s)
          in
          match engine with
          | Parallel _ when domains > 1 ->
              Cq_learner.Equivalence.pooled
                ~suite:
                  (Cq_learner.Equivalence.wp_quotient_suite ~depth ~is_rep
                     ~sweep)
                (mk_pool ())
          | _ ->
              Cq_learner.Equivalence.wp_quotient ~depth ~is_rep ~sweep oracle)
      | W_method depth, Parallel _ when domains > 1 ->
          Cq_learner.Equivalence.w_method_pooled ~depth (mk_pool ())
      | Wp_method depth, Parallel _ when domains > 1 ->
          Cq_learner.Equivalence.wp_method_pooled ~depth (mk_pool ())
      | W_method depth, _ -> Cq_learner.Equivalence.w_method ~depth oracle
      | Wp_method depth, _ -> Cq_learner.Equivalence.wp_method ~depth oracle
    in
    (* Counterexample verification (noise hardening): a transient measurement
       flip during conformance testing fabricates a counterexample the
       learner cannot process (no genuine distinguishing suffix exists).
       Re-execute the candidate fresh — repairing the prefix cache in
       passing — and only hand the learner a disagreement that
       reproduces; a spurious one costs a bounded re-run of the (mostly
       cached) suite. *)
    let refresh_word = handle.Cq_learner.Moracle.refresh in
    if retries = 0 then find_cex
    else fun h ->
      let rec verified budget =
        match find_cex h with
        | None -> None
        | Some w ->
            if refresh_word w <> Cq_automata.Mealy.run h w then Some w
            else if budget = 0 then None
            else verified (budget - 1)
      in
      verified retries
  in
  let finish ?validation (result : _ Cq_learner.Lstar.result) seconds =
    let v = Cq_util.Metrics.value in
    {
      machine = result.machine;
      states = Cq_automata.Mealy.n_states result.machine;
      seconds;
      rounds = result.rounds;
      suffixes = result.suffixes_added;
      member_queries = v mstats.Cq_learner.Moracle.queries;
      member_symbols = v mstats.Cq_learner.Moracle.symbols;
      cache_queries = v cache_stats.Cq_cache.Oracle.queries;
      cache_accesses = v cache_stats.Cq_cache.Oracle.block_accesses;
      cache_batches = v cache_stats.Cq_cache.Oracle.batches;
      accesses_saved = v cache_stats.Cq_cache.Oracle.accesses_saved;
      memo_overflows = v cache_stats.Cq_cache.Oracle.memo_overflows;
      row_cache_overflows = result.row_cache_overflows;
      domains;
      worker_restarts = v pool_stats.Cq_util.Pool.worker_restarts;
      identified =
        (if identify then Cq_policy.Zoo.identify result.machine else []);
      quotient = result.Cq_learner.Lstar.quotient;
      timed_loads =
        (let dev_loads, _ = dev_snapshot () in
         v cache_stats.Cq_cache.Oracle.timed_loads + (dev_loads - dev_loads0));
      vote_runs =
        (let _, dev_votes = dev_snapshot () in
         v cache_stats.Cq_cache.Oracle.vote_runs + (dev_votes - dev_votes0));
      transient_flips =
        v cache_stats.Cq_cache.Oracle.transient_flips
        + v mstats.Cq_learner.Moracle.conflicts;
      retry_attempts = v cache_stats.Cq_cache.Oracle.retry_attempts;
      validation;
      metrics = registry;
    }
  in
  match
    Cq_util.Clock.time (fun () ->
        Cq_util.Trace.with_span ~cat:"learn" "learn.run" @@ fun () ->
        let oracle = guarded cached_oracle in
        let find_cex = make_find_cex oracle in
        (* Equivalence queries are rare (one per hypothesis), so the span
           wrapper costs nothing measurable even when tracing is off. *)
        let find_cex h =
          Cq_util.Trace.with_span ~cat:"learn" "learn.equivalence" (fun () ->
              find_cex h)
        in
        (* Quotient mode hands the learner the line-relabeling action: the
           observation table merges states that are verified relabelings
           of each other and the hypothesis is the unfolding of the
           quotient machine — see Lstar/Quotient.  The published view
           focuses the conformance suite above on representative
           states. *)
        let qaction =
          if quotient && Polca.assoc polca >= 2 then
            Some (Cq_learner.Quotient.policy_action ~assoc:(Polca.assoc polca))
          else None
        in
        Cq_learner.Lstar.learn ~max_states ?max_row_cache ?seed_rows
          ~expose_table:(fun g -> table_getter := Some g)
          ~on_hypothesis:(fun h -> last_hypothesis := Some h)
          ?quotient:qaction
          ~on_quotient_view:(fun v -> qview := Some v)
          ~oracle ~find_cex ())
  with
  | result, seconds -> (
      (* Post-learning validation gate: model-check the learned machine
         against the policy axioms (hit consistency, reachability,
         minimality, line-permutation symmetry) before reporting success.
         Wp conformance against the producing oracle cannot catch a
         systematic measurement artefact; the axioms can. *)
      let validation =
        if validate && Cq_automata.Mealy.n_inputs result.machine >= 2 then
          let assoc = Cq_automata.Mealy.n_inputs result.machine - 1 in
          (* A quotient-learned machine carries the merge witness — state
             [s] behaves as state [s0] conjugated by a permutation — so
             the checker validates symmetry with anchored product walks
             instead of the brute-force relabeled-copy search. *)
          let symmetry_witness =
            match result.Cq_learner.Lstar.quotient with
            | Some st when st.Cq_learner.Quotient.witness <> [] ->
                Some st.Cq_learner.Quotient.witness
            | _ -> None
          in
          Some
            (Cq_analysis.Automaton_check.check ~registry ~assoc
               ?symmetry_witness result.machine)
        else None
      in
      match validation with
      | Some v when not (Cq_analysis.Automaton_check.ok v) ->
          let msg = Cq_analysis.Automaton_check.report_to_string v in
          (try write_snapshot () with _ -> ());
          Error
            ( Invalid_automaton msg,
              {
                failure = Invalid msg;
                hypothesis = Some result.machine;
                snapshot = !snapshot_path_written;
                member_queries = hw_queries ();
                seconds;
              } )
      | validation -> Ok (finish ?validation result seconds))
  | exception e -> (
      let seconds = Cq_util.Clock.mono () -. t0 in
      (* Preserve whatever was learned: the failure path writes a final
         snapshot, so a follow-up run resumes instead of starting over.
         A failing write must not mask the original failure. *)
      (try write_snapshot () with _ -> ());
      let failure =
        match e with
        | Cq_learner.Lstar.Diverged d -> Some (Diverged d)
        | Polca.Non_deterministic m ->
            (* Structured diagnosis: if the hypothesis the learner was
               working from already violates the policy axioms, the
               nondeterminism is structural (interference, a bad reset
               placement), not a transient measurement flip — say so. *)
            let diagnosis =
              match !last_hypothesis with
              | Some h when Cq_automata.Mealy.n_inputs h >= 2 -> (
                  let assoc = Cq_automata.Mealy.n_inputs h - 1 in
                  match Cq_analysis.Automaton_check.diagnose ~assoc h with
                  | Some d ->
                      "; current hypothesis already violates policy axioms \
                       (" ^ d ^ ")"
                  | None -> "")
              | _ -> ""
            in
            Some (Transient ("non-deterministic responses: " ^ m ^ diagnosis))
        | Cq_learner.Moracle.Inconsistent m ->
            Some (Transient ("non-deterministic responses: " ^ m))
        | Cq_util.Pool.Worker_lost m -> Some (Worker_lost m)
        | Out_of_budget m -> Some (Budget_exhausted m)
        | _ -> None
      in
      match failure with
      | None -> raise e (* outside the taxonomy: a programming error *)
      | Some failure ->
          Error
            ( e,
              {
                failure;
                hypothesis = !last_hypothesis;
                snapshot = !snapshot_path_written;
                member_queries = hw_queries ();
                seconds;
              } ))

let learn_from_cache ?equivalence ?engine ?cache_factory ?check_hits ?memoize
    ?max_memo_entries ?max_row_cache ?max_states ?identify ?validate ?quotient ?retries ?on_retry ?device_stats
    ?metrics ?snapshot ?resume ?snapshot_meta ?deadline ?query_budget ?probe
    cache =
  match
    learn_core ?equivalence ?engine ?cache_factory ?check_hits ?memoize
      ?max_memo_entries ?max_row_cache ?max_states ?identify ?validate
      ?quotient ?retries ?on_retry
      ?device_stats ?metrics ?snapshot ?resume ?snapshot_meta ?deadline
      ?query_budget ?probe cache
  with
  | Ok report -> report
  | Error (e, _) -> raise e

let run ?equivalence ?engine ?cache_factory ?check_hits ?memoize
    ?max_memo_entries ?max_row_cache ?max_states ?identify ?validate ?quotient ?retries ?on_retry ?device_stats
    ?metrics ?snapshot ?resume ?snapshot_meta ?deadline ?query_budget ?probe
    cache =
  match
    learn_core ?equivalence ?engine ?cache_factory ?check_hits ?memoize
      ?max_memo_entries ?max_row_cache ?max_states ?identify ?validate
      ?quotient ?retries ?on_retry
      ?device_stats ?metrics ?snapshot ?resume ?snapshot_meta ?deadline
      ?query_budget ?probe cache
  with
  | Ok report -> Complete report
  | Error (_, partial) -> Partial partial

(* Case study §6: learn a policy from a software-simulated cache.  The
   simulated oracle is trivially reproducible, so the Parallel engine's
   per-domain factory comes for free. *)
let learn_simulated ?equivalence ?engine ?check_hits ?max_memo_entries
    ?max_row_cache ?max_states ?identify ?validate ?quotient ?metrics ?snapshot ?resume ?deadline ?query_budget
    ?probe policy =
  learn_from_cache ?equivalence ?engine
    ~cache_factory:(fun () -> Cq_cache.Oracle.of_policy policy)
    ?check_hits ?max_memo_entries ?max_row_cache ?max_states ?identify
    ?validate ?quotient ?metrics
    ?snapshot ?resume ?deadline ?query_budget ?probe
    (Cq_cache.Oracle.of_policy policy)

(* As [learn_simulated] but through the supervised [run] API. *)
let run_simulated ?equivalence ?engine ?check_hits ?max_memo_entries
    ?max_row_cache ?max_states ?identify ?validate ?quotient ?metrics ?snapshot ?resume ?deadline ?query_budget
    ?probe policy =
  run ?equivalence ?engine
    ~cache_factory:(fun () -> Cq_cache.Oracle.of_policy policy)
    ?check_hits ?max_memo_entries ?max_row_cache ?max_states ?identify
    ?validate ?quotient ?metrics
    ?snapshot ?resume ?deadline ?query_budget ?probe
    (Cq_cache.Oracle.of_policy policy)

(* Sanity check used in tests and experiments: the learned machine must be
   trace-equivalent to the (warm-started) ground-truth policy machine. *)
let verify_against report policy =
  Cq_automata.Mealy.equivalent report.machine (Cq_policy.Policy.to_mealy policy)
