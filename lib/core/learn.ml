(* The end-to-end learning loop (§3.4): Polca as membership oracle, L* as
   learner, W-method conformance testing (depth k) as equivalence oracle.

   Corollary 3.4 holds by construction: if learning returns policy P', then
   the policy under learning is trace-equivalent to P' or has more than
   |P'| + k states. *)

type equivalence =
  | W_method of int (* depth k of the conformance suite *)
  | Wp_method of int (* the paper's configuration: smaller suites, same guarantee *)
  | Random_walk of { max_tests : int; max_len : int; seed : int }

let default_equivalence = Wp_method 1

(* Query-engine selection:
   - [Sequential]: one query at a time, reset-and-replay, the sequential
     short-circuit findEvicted scan — the seed's behaviour, kept as the
     baseline for the engine benchmark and the determinism tests.
   - [Batched] (default): closure waves and findEvicted fan-outs go to the
     cache as prefix-shared batches (trie executor over snapshot/restore).
   - [Parallel]: [Batched] plus conformance testing fanned across
     [domains] worker domains, each owning a private oracle stack built
     from [cache_factory]. *)
type engine = Sequential | Batched | Parallel of { domains : int }

let default_engine = Batched

let engine_to_string = function
  | Sequential -> "sequential"
  | Batched -> "batched"
  | Parallel { domains } -> Printf.sprintf "parallel:%d" domains

type report = {
  machine : Cq_policy.Types.output Cq_automata.Mealy.t;
  states : int;
  seconds : float;
  rounds : int; (* equivalence queries issued *)
  suffixes : int; (* distinguishing suffixes added by Rivest–Schapire *)
  member_queries : int; (* membership queries reaching Polca *)
  member_symbols : int;
  cache_queries : int; (* block-trace queries reaching the cache oracle *)
  cache_accesses : int; (* total block accesses of those queries *)
  cache_batches : int; (* query batches reaching the cache oracle *)
  accesses_saved : int; (* block accesses avoided by prefix sharing *)
  memo_overflows : int; (* times the bounded query memo was cleared *)
  row_cache_overflows : int; (* times the bounded L* row cache was cleared *)
  domains : int; (* worker domains used by the equivalence oracle *)
  identified : string list; (* known policies equivalent to the result *)
  (* Noise-layer accounting (0 for quiet software oracles): *)
  timed_loads : int; (* physical timed loads, incl. vote re-measurements *)
  vote_runs : int; (* extra executions spent on majority voting *)
  transient_flips : int; (* Non_deterministic words absorbed by retry *)
  retry_attempts : int; (* word re-executions the retry layer issued *)
}

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>states: %d@,time: %a@,equivalence rounds: %d@,suffixes added: \
     %d@,membership queries: %d (%d symbols)@,cache queries: %d (%d block \
     accesses)@,cache batches: %d (%d accesses saved)@,domains: \
     %d@,identified as: %s@]"
    r.states Cq_util.Clock.pp_duration r.seconds r.rounds r.suffixes
    r.member_queries r.member_symbols r.cache_queries r.cache_accesses
    r.cache_batches r.accesses_saved r.domains
    (match r.identified with [] -> "(unknown policy)" | l -> String.concat ", " l);
  if r.vote_runs > 0 || r.retry_attempts > 0 || r.timed_loads > 0 then
    Fmt.pf ppf
      "@,timed loads: %d@,vote re-runs: %d@,retries: %d (%d transient flips \
       absorbed)"
      r.timed_loads r.vote_runs r.retry_attempts r.transient_flips

(* Learn the replacement policy behind a cache oracle. *)
let learn_from_cache ?(equivalence = default_equivalence)
    ?(engine = default_engine) ?cache_factory ?(check_hits = true)
    ?(memoize = true) ?max_memo_entries ?max_row_cache
    ?(max_states = 1_000_000) ?(identify = true) ?(retries = 0) ?on_retry
    ?device_stats cache =
  (* [device_stats]: the device layer's own stats record (the CacheQuery
     frontend's), whose voting/timed-load counters are invisible to the
     wrappers below; its deltas over the learning run are folded into the
     report. *)
  let dev_snapshot () =
    match device_stats with
    | None -> (0, 0)
    | Some d ->
        (d.Cq_cache.Oracle.timed_loads, d.Cq_cache.Oracle.vote_runs)
  in
  let dev_loads0, dev_votes0 = dev_snapshot () in
  let batch_probes = match engine with Sequential -> false | _ -> true in
  let cache =
    match engine with
    | Sequential -> Cq_cache.Oracle.sequential cache
    | Batched | Parallel _ -> cache
  in
  let cache_stats = Cq_cache.Oracle.fresh_stats () in
  let cache = Cq_cache.Oracle.counting cache_stats cache in
  let cache =
    if memoize then
      Cq_cache.Oracle.memoized ~stats:cache_stats ?max_entries:max_memo_entries
        cache
    else cache
  in
  let polca =
    Polca.create ~check_hits ~batch_probes ~retries ?backoff:on_retry
      ~stats:cache_stats cache
  in
  let mstats = Cq_learner.Moracle.fresh_stats () in
  let oracle, refresh_word =
    Polca.moracle polca
    |> Cq_learner.Moracle.counting mstats
    |> Cq_learner.Moracle.cached_refresh ~stats:mstats ~conflict_retries:retries
  in
  let domains =
    match engine with Parallel { domains } -> max 1 domains | _ -> 1
  in
  (* A worker's private oracle stack: its own cache (from the factory), its
     own memo and prefix cache — no mutable state shared across domains.
     Queries are independent restarts from the reset state, so a fresh
     stack answers exactly like the main one. *)
  let worker_oracle () =
    match cache_factory with
    | None -> invalid_arg "Learn: Parallel engine requires ~cache_factory"
    | Some factory ->
        let cache = factory () in
        let cache =
          if memoize then
            Cq_cache.Oracle.memoized ?max_entries:max_memo_entries cache
          else cache
        in
        Polca.moracle (Polca.create ~check_hits ~batch_probes:true cache)
        |> Cq_learner.Moracle.cached
  in
  let find_cex =
    match (equivalence, engine) with
    | W_method depth, Parallel _ when domains > 1 ->
        if Option.is_none cache_factory then
          invalid_arg "Learn: Parallel engine requires ~cache_factory";
        let pool = Cq_util.Pool.create ~size:domains ~factory:worker_oracle () in
        Cq_learner.Equivalence.w_method_pooled ~depth pool
    | Wp_method depth, Parallel _ when domains > 1 ->
        if Option.is_none cache_factory then
          invalid_arg "Learn: Parallel engine requires ~cache_factory";
        let pool = Cq_util.Pool.create ~size:domains ~factory:worker_oracle () in
        Cq_learner.Equivalence.wp_method_pooled ~depth pool
    | W_method depth, _ -> Cq_learner.Equivalence.w_method ~depth oracle
    | Wp_method depth, _ -> Cq_learner.Equivalence.wp_method ~depth oracle
    | Random_walk { max_tests; max_len; seed }, _ ->
        Cq_learner.Equivalence.random_walk
          ~prng:(Cq_util.Prng.of_int seed)
          ~max_tests ~max_len oracle
  in
  (* Counterexample verification (noise hardening): a transient measurement
     flip during conformance testing fabricates a counterexample the
     learner cannot process (no genuine distinguishing suffix exists).
     Re-execute the candidate fresh — repairing the prefix cache in
     passing — and only hand the learner a disagreement that reproduces;
     a spurious one costs a bounded re-run of the (mostly cached) suite. *)
  let find_cex =
    if retries = 0 then find_cex
    else fun h ->
      let rec verified budget =
        match find_cex h with
        | None -> None
        | Some w ->
            if refresh_word w <> Cq_automata.Mealy.run h w then Some w
            else if budget = 0 then None
            else verified (budget - 1)
      in
      verified retries
  in
  let (result : _ Cq_learner.Lstar.result), seconds =
    Cq_util.Clock.time (fun () ->
        Cq_learner.Lstar.learn ~max_states ?max_row_cache ~oracle ~find_cex ())
  in
  {
    machine = result.machine;
    states = Cq_automata.Mealy.n_states result.machine;
    seconds;
    rounds = result.rounds;
    suffixes = result.suffixes_added;
    member_queries = mstats.Cq_learner.Moracle.queries;
    member_symbols = mstats.Cq_learner.Moracle.symbols;
    cache_queries = cache_stats.Cq_cache.Oracle.queries;
    cache_accesses = cache_stats.Cq_cache.Oracle.block_accesses;
    cache_batches = cache_stats.Cq_cache.Oracle.batches;
    accesses_saved = cache_stats.Cq_cache.Oracle.accesses_saved;
    memo_overflows = cache_stats.Cq_cache.Oracle.memo_overflows;
    row_cache_overflows = result.row_cache_overflows;
    domains;
    identified = (if identify then Cq_policy.Zoo.identify result.machine else []);
    timed_loads =
      (let dev_loads, _ = dev_snapshot () in
       cache_stats.Cq_cache.Oracle.timed_loads + (dev_loads - dev_loads0));
    vote_runs =
      (let _, dev_votes = dev_snapshot () in
       cache_stats.Cq_cache.Oracle.vote_runs + (dev_votes - dev_votes0));
    transient_flips =
      cache_stats.Cq_cache.Oracle.transient_flips
      + mstats.Cq_learner.Moracle.conflicts;
    retry_attempts = cache_stats.Cq_cache.Oracle.retry_attempts;
  }

(* Case study §6: learn a policy from a software-simulated cache.  The
   simulated oracle is trivially reproducible, so the Parallel engine's
   per-domain factory comes for free. *)
let learn_simulated ?equivalence ?engine ?check_hits ?max_memo_entries
    ?max_row_cache ?max_states ?identify policy =
  learn_from_cache ?equivalence ?engine
    ~cache_factory:(fun () -> Cq_cache.Oracle.of_policy policy)
    ?check_hits ?max_memo_entries ?max_row_cache ?max_states ?identify
    (Cq_cache.Oracle.of_policy policy)

(* Sanity check used in tests and experiments: the learned machine must be
   trace-equivalent to the (warm-started) ground-truth policy machine. *)
let verify_against report policy =
  Cq_automata.Mealy.equivalent report.machine (Cq_policy.Policy.to_mealy policy)
