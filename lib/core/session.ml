(* Durable learning sessions: versioned on-disk snapshots of learning
   progress.

   A snapshot carries everything a resumed run needs to reproduce the
   crashed run *exactly*:

   - the membership oracle's prefix-trie contents (every (word, outputs)
     pair the hardware ever answered) — on resume the trie is preloaded
     and the learner replays deterministically, with known queries served
     locally at zero hardware cost;
   - the L* observation table (E, S, cached rows) — rows are a pure
     function of the oracle, so re-seeding the row cache skips
     recomputation without changing what is learned;
   - run metadata: the PRNG seed (reset discovery must re-derive the same
     reset sequence) and the backend's calibration state (a resumed run
     must classify latencies exactly like the crashed one).

   File format: a fixed header — magic, one version byte, the MD5 digest
   of the payload — followed by a [Marshal]ed {!snapshot}.  The digest
   catches truncation and bit rot before [Marshal.from_string] can
   misbehave on them; the version byte rejects snapshots from
   incompatible builds.  Writes go through {!Cq_util.Atomic_file}
   (tmp + fsync + rename), so a crash mid-write leaves the previous
   snapshot intact — readers never observe a torn file. *)

exception Corrupt of string

let magic = "CQSNAP"
let version = 1

(* magic + version byte + 16-byte MD5 digest *)
let header_len = String.length magic + 1 + 16

type meta = {
  version : int;  (* mirrors the header byte, for programmatic checks *)
  label : string;
  created : float; (* Unix time the snapshot was written *)
  queries : int; (* hardware queries answered when it was written *)
  seed : int option;
  calibration : Cq_cachequery.Backend.calibration option;
}

type 'o snapshot = {
  meta : meta;
  knowledge : 'o Cq_learner.Moracle.knowledge;
  table : 'o Cq_learner.Lstar.table_state option;
}

let make_meta ?(label = "") ?seed ?calibration ~queries () =
  { version; label; created = Cq_util.Clock.now (); queries; seed; calibration }

let encode snap =
  let payload = Marshal.to_string snap [] in
  let buf = Buffer.create (header_len + String.length payload) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_string buf (Digest.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let save ~path snap =
  let encoded = encode snap in
  (fun run ->
    if Cq_util.Trace.enabled () then
      Cq_util.Trace.with_span ~cat:"session"
        ~args:[ ("bytes", string_of_int (String.length encoded)) ]
        "session.save" run
    else run ())
  @@ fun () -> Cq_util.Atomic_file.write ~path encoded

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let decode ~path s =
  let mlen = String.length magic in
  if String.length s < header_len then
    corrupt "%s: truncated snapshot (%d bytes, header needs %d)" path
      (String.length s) header_len;
  if String.sub s 0 mlen <> magic then
    corrupt "%s: not a CacheQuery snapshot (bad magic)" path;
  let v = Char.code s.[mlen] in
  if v <> version then
    corrupt "%s: snapshot format version %d, this build reads version %d" path
      v version;
  let digest = String.sub s (mlen + 1) 16 in
  let payload = String.sub s header_len (String.length s - header_len) in
  if Digest.string payload <> digest then
    corrupt "%s: snapshot digest mismatch (truncated or corrupted payload)"
      path;
  match (Marshal.from_string payload 0 : _ snapshot) with
  | snap -> snap
  | exception (Failure _ | Invalid_argument _) ->
      corrupt "%s: snapshot payload does not unmarshal" path

let load ~path =
  match Cq_util.Atomic_file.read_opt ~path with
  | None -> corrupt "%s: no such snapshot" path
  | Some s ->
      (fun run ->
        if Cq_util.Trace.enabled () then
          Cq_util.Trace.with_span ~cat:"session"
            ~args:[ ("bytes", string_of_int (String.length s)) ]
            "session.load" run
        else run ())
      @@ fun () -> decode ~path s

let load_opt ~path =
  match Cq_util.Atomic_file.read_opt ~path with
  | None -> None
  | Some s -> Some (decode ~path s)

let pp_meta ppf m =
  Fmt.pf ppf "%s%d queries, seed %s, threshold %s"
    (if m.label = "" then "" else m.label ^ ": ")
    m.queries
    (match m.seed with Some s -> string_of_int s | None -> "-")
    (match m.calibration with
    | Some c -> string_of_int c.Cq_cachequery.Backend.cal_threshold ^ "c"
    | None -> "-")
