(* Case study §7: learning replacement policies from (simulated) hardware.

   This driver reproduces the Table 4 workflow for one cache set:
   build a CacheQuery backend on the target set, calibrate the latency
   threshold, discover a reset sequence, learn through Polca + L*, and
   identify the resulting automaton against the policy zoo. *)

type outcome =
  | Learned of {
      report : Learn.report;
      reset : Cq_cachequery.Frontend.reset;
      threshold : int;
    }
  | Partial of {
      failure : Learn.failure;
      hypothesis : Cq_policy.Types.output Cq_automata.Mealy.t option;
      snapshot : string option;
      reset : Cq_cachequery.Frontend.reset option;
      member_queries : int;
      seconds : float;
    }
  | Failed of { reason : string; reset : Cq_cachequery.Frontend.reset option }

type run = {
  cpu : string;
  level : Cq_hwsim.Cpu_model.level;
  slice : int;
  set : int;
  assoc : int; (* effective associativity (CAT-reduced if requested) *)
  cat : bool;
  outcome : outcome;
  timed_loads : int; (* physical timed loads issued by the whole workflow *)
  recalibrations : int; (* drift-triggered threshold recalibrations *)
}

let pp_outcome ppf = function
  | Learned { report; reset; threshold } ->
      Fmt.pf ppf "learned %d states (reset %s, threshold %dc): %s" report.Learn.states
        (Cq_cachequery.Frontend.reset_to_string reset)
        threshold
        (match report.Learn.identified with
        | [] -> "previously undocumented policy"
        | l -> String.concat ", " l)
  | Partial { failure; hypothesis; snapshot; _ } ->
      Fmt.pf ppf "partial (%a)" Learn.pp_failure failure;
      (match hypothesis with
      | Some h ->
          Fmt.pf ppf ", last hypothesis: %d states" (Cq_automata.Mealy.n_states h)
      | None -> ());
      (match snapshot with
      | Some p -> Fmt.pf ppf ", resume from %s" p
      | None -> ())
  | Failed { reason; _ } -> Fmt.pf ppf "failed: %s" reason

(* Voting escalation used by the retry backoff: once a flip slipped
   through the current voting setting, raise the cap (sticky — the
   environment has proven noisier than assumed).  Escalates into adaptive
   voting so the extra repetitions are only paid for disputed accesses. *)
let escalate_voting = function
  | Cq_cachequery.Frontend.Fixed 1 -> Cq_cachequery.Frontend.Adaptive { max = 3 }
  | Cq_cachequery.Frontend.Fixed n ->
      Cq_cachequery.Frontend.Adaptive { max = min 15 (n + 2) }
  | Cq_cachequery.Frontend.Adaptive { max } ->
      Cq_cachequery.Frontend.Adaptive { max = min 15 (max + 2) }

let level_to_string = function
  | Cq_hwsim.Cpu_model.L1 -> "L1"
  | Cq_hwsim.Cpu_model.L2 -> "L2"
  | Cq_hwsim.Cpu_model.L3 -> "L3"

let learn_set ?(seed = 42) ?cat_ways ?(slice = 0) ?(set = 0) ?(repetitions = 1)
    ?voting ?(retries = 3) ?equivalence ?check_hits ?(max_states = 100_000)
    ?validate ?quotient ?(reset_trials = 24) ?metrics ?snapshot ?resume ?deadline
    ?query_budget ?probe ?(supervise_retries = 2) machine level =
  Cq_util.Trace.with_span ~cat:"hardware" "hardware.learn_set" @@ fun () ->
  (* One registry spans the whole stack: backend, frontend and the
     learning loop all register their series here, so the "backend." /
     "frontend." device counters land next to "oracle." / "member." /
     "learn." in a single export. *)
  let metrics =
    match metrics with Some r -> r | None -> Cq_util.Metrics.create ()
  in
  let model = Cq_hwsim.Machine.model machine in
  (match cat_ways with
  | Some ways -> Cq_hwsim.Machine.set_cat_ways machine ways
  | None -> ());
  (* Resuming?  Load the snapshot's metadata up front: the crashed run's
     PRNG seed must drive reset discovery again (same candidate order,
     same validation traces → same reset sequence) and its calibration
     state replaces a fresh measurement (same latency classification). *)
  let resumed_meta =
    match resume with
    | None -> None
    | Some path ->
        let snap : Cq_policy.Types.output Session.snapshot =
          Session.load ~path
        in
        Some snap.Session.meta
  in
  let seed =
    match resumed_meta with
    | Some { Session.seed = Some s; _ } -> s
    | _ -> seed
  in
  let backend =
    Cq_cachequery.Backend.create ~metrics machine
      { Cq_cachequery.Backend.level; slice; set }
  in
  let threshold =
    match resumed_meta with
    | Some { Session.calibration = Some cal; _ } ->
        Cq_cachequery.Backend.restore_calibration backend cal;
        cal.Cq_cachequery.Backend.cal_threshold
    | _ ->
        let t, _, _ = Cq_cachequery.Backend.calibrate backend in
        t
  in
  let frontend =
    Cq_cachequery.Frontend.create ~repetitions ?voting ~metrics backend
  in
  let assoc = Cq_cachequery.Frontend.assoc frontend in
  let prng = Cq_util.Prng.of_int seed in
  (* One wall clock for the whole workflow: reset discovery and learning
     draw down the same deadline (Cq_util.Clock), mirroring the synthesis
     search's budget handling. *)
  let dl = Cq_util.Clock.deadline_of deadline in
  (* Retry backoff: the answer that raised Non_deterministic may sit
     corrupted in the frontend memo, where a plain re-run would just read
     it back — drop the memo, and escalate voting so the re-run is also
     less likely to flip again. *)
  let on_retry _k =
    Cq_cachequery.Frontend.clear_memo frontend;
    Cq_cachequery.Frontend.set_voting frontend
      (escalate_voting (Cq_cachequery.Frontend.voting frontend))
  in
  let label =
    Printf.sprintf "%s %s slice %d set %d" model.Cq_hwsim.Cpu_model.name
      (level_to_string level) slice set
  in
  let snapshot_meta () =
    Session.make_meta ~label ~seed
      ~calibration:(Cq_cachequery.Backend.calibration backend)
      ~queries:0 ()
  in
  let outcome =
    match
      Cq_util.Trace.with_span ~cat:"hardware" "hardware.reset_discovery"
        (fun () -> Reset.find ~trials:reset_trials ~deadline:dl ~prng frontend)
    with
    | None when Cq_util.Clock.expired dl ->
        Partial
          {
            failure =
              Learn.Budget_exhausted
                "wall-clock deadline exceeded during reset discovery";
            hypothesis = None;
            snapshot = None;
            reset = None;
            member_queries = 0;
            seconds = 0.;
          }
    | None ->
        Failed
          {
            reason =
              "no deterministic reset sequence found (non-deterministic set \
               behaviour)";
            reset = None;
          }
    | Some reset ->
        let oracle = Cq_cachequery.Frontend.oracle frontend in
        (* Supervisor: run the learner; a [Transient] failure (a noise
           flip that survived voting and retries) gets a bounded number of
           fresh attempts with escalated voting, each resuming from the
           latest snapshot so already-paid queries are not re-measured.
           The other failure classes are structural — retrying verbatim
           cannot help — and surface as a [Partial] report carrying the
           last hypothesis and the snapshot path. *)
        let finish_partial (p : Learn.partial) =
          match p.Learn.failure with
          | Learn.Transient reason -> Failed { reason; reset = Some reset }
          | failure ->
              Partial
                {
                  failure;
                  hypothesis = p.Learn.hypothesis;
                  snapshot = p.Learn.snapshot;
                  reset = Some reset;
                  member_queries = p.Learn.member_queries;
                  seconds = p.Learn.seconds;
                }
        in
        (* The retry state threads the resume snapshot forward: each
           attempt restarts from the latest snapshot so already-paid
           hardware queries are not re-measured.  [Backoff.immediate]
           keeps the loop structure without sleeping — the backend is
           local, waiting buys nothing. *)
        let supervised =
          Cq_util.Backoff.retry ~policy:Cq_util.Backoff.immediate
            ~attempts:(supervise_retries + 1) ~init:(resume, None)
            (fun ~attempt:_ (resume, _) ->
              match
                Learn.run ?equivalence ?check_hits ~memoize:false ~max_states
                  ?validate ?quotient ~retries ~on_retry
                  ~device_stats:(Cq_cachequery.Frontend.stats frontend)
                  ~metrics ?snapshot ?resume ~snapshot_meta ~deadline:dl
                  ?query_budget ?probe oracle
              with
              | Learn.Complete report ->
                  `Done (Learned { report; reset; threshold })
              | Learn.Partial p -> (
                  match p.Learn.failure with
                  (* [Invalid] retries like [Transient]: an automaton that
                     violates the policy axioms was built from flipped
                     measurements, and escalated voting can repair it.
                     The other classes are structural — retrying verbatim
                     cannot help. *)
                  | Learn.Transient _ | Learn.Invalid _ ->
                      on_retry 0;
                      let resume =
                        match p.Learn.snapshot with
                        | Some _ as s -> s
                        | None -> resume
                      in
                      `Retry (resume, Some p)
                  | _ -> `Done (finish_partial p)))
        in
        (match supervised with
        | Ok outcome -> outcome
        | Error (_, Some p) -> finish_partial p
        | Error (_, None) ->
            (* unreachable: `Retry always carries the partial *)
            Failed { reason = "supervisor retried nothing"; reset = Some reset })
  in
  {
    cpu = model.Cq_hwsim.Cpu_model.name;
    level;
    slice;
    set;
    assoc;
    cat = cat_ways <> None;
    outcome;
    timed_loads = Cq_cachequery.Backend.timed_loads backend;
    recalibrations = Cq_cachequery.Backend.recalibrations backend;
  }

(* [run] is [learn_set] under the supervision-era name; both stay. *)
let run = learn_set

(* Leader-A sets of a CPU's L3 (the learnable ones), per the Appendix B
   index formulas baked into the CPU model. *)
let l3_leader_sets ?(slice = 0) model =
  let spec = model.Cq_hwsim.Cpu_model.l3 in
  match spec.Cq_hwsim.Cpu_model.policy with
  | Cq_hwsim.Cpu_model.Fixed _ -> []
  | Cq_hwsim.Cpu_model.Adaptive { leader_a; _ } ->
      List.filter
        (fun set -> leader_a ~slice ~set)
        (List.init spec.Cq_hwsim.Cpu_model.sets_per_slice (fun i -> i))
