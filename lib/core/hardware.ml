(* Case study §7: learning replacement policies from (simulated) hardware.

   This driver reproduces the Table 4 workflow for one cache set:
   build a CacheQuery backend on the target set, calibrate the latency
   threshold, discover a reset sequence, learn through Polca + L*, and
   identify the resulting automaton against the policy zoo. *)

type outcome =
  | Learned of {
      report : Learn.report;
      reset : Cq_cachequery.Frontend.reset;
      threshold : int;
    }
  | Failed of { reason : string; reset : Cq_cachequery.Frontend.reset option }

type run = {
  cpu : string;
  level : Cq_hwsim.Cpu_model.level;
  slice : int;
  set : int;
  assoc : int; (* effective associativity (CAT-reduced if requested) *)
  cat : bool;
  outcome : outcome;
  timed_loads : int; (* physical timed loads issued by the whole workflow *)
  recalibrations : int; (* drift-triggered threshold recalibrations *)
}

let pp_outcome ppf = function
  | Learned { report; reset; threshold } ->
      Fmt.pf ppf "learned %d states (reset %s, threshold %dc): %s" report.Learn.states
        (Cq_cachequery.Frontend.reset_to_string reset)
        threshold
        (match report.Learn.identified with
        | [] -> "previously undocumented policy"
        | l -> String.concat ", " l)
  | Failed { reason; _ } -> Fmt.pf ppf "failed: %s" reason

(* Voting escalation used by the retry backoff: once a flip slipped
   through the current voting setting, raise the cap (sticky — the
   environment has proven noisier than assumed).  Escalates into adaptive
   voting so the extra repetitions are only paid for disputed accesses. *)
let escalate_voting = function
  | Cq_cachequery.Frontend.Fixed 1 -> Cq_cachequery.Frontend.Adaptive { max = 3 }
  | Cq_cachequery.Frontend.Fixed n ->
      Cq_cachequery.Frontend.Adaptive { max = min 15 (n + 2) }
  | Cq_cachequery.Frontend.Adaptive { max } ->
      Cq_cachequery.Frontend.Adaptive { max = min 15 (max + 2) }

let learn_set ?(seed = 42) ?cat_ways ?(slice = 0) ?(set = 0) ?(repetitions = 1)
    ?voting ?(retries = 3) ?equivalence ?check_hits ?(max_states = 100_000)
    ?(reset_trials = 24) machine level =
  let model = Cq_hwsim.Machine.model machine in
  (match cat_ways with
  | Some ways -> Cq_hwsim.Machine.set_cat_ways machine ways
  | None -> ());
  let backend =
    Cq_cachequery.Backend.create machine
      { Cq_cachequery.Backend.level; slice; set }
  in
  let threshold, _, _ = Cq_cachequery.Backend.calibrate backend in
  let frontend =
    Cq_cachequery.Frontend.create ~repetitions ?voting backend
  in
  let assoc = Cq_cachequery.Frontend.assoc frontend in
  let prng = Cq_util.Prng.of_int seed in
  (* Retry backoff: the answer that raised Non_deterministic may sit
     corrupted in the frontend memo, where a plain re-run would just read
     it back — drop the memo, and escalate voting so the re-run is also
     less likely to flip again. *)
  let on_retry _k =
    Cq_cachequery.Frontend.clear_memo frontend;
    Cq_cachequery.Frontend.set_voting frontend
      (escalate_voting (Cq_cachequery.Frontend.voting frontend))
  in
  let outcome =
    match Reset.find ~trials:reset_trials ~prng frontend with
    | None ->
        Failed
          {
            reason =
              "no deterministic reset sequence found (non-deterministic set \
               behaviour)";
            reset = None;
          }
    | Some reset -> (
        let oracle = Cq_cachequery.Frontend.oracle frontend in
        match
          Learn.learn_from_cache ?equivalence ?check_hits ~memoize:false
            ~max_states ~retries ~on_retry
            ~device_stats:(Cq_cachequery.Frontend.stats frontend)
            oracle
        with
        | report -> Learned { report; reset; threshold }
        | exception Cq_learner.Lstar.Diverged msg ->
            Failed { reason = "learning diverged: " ^ msg; reset = Some reset }
        | exception Polca.Non_deterministic msg ->
            Failed { reason = "non-deterministic responses: " ^ msg; reset = Some reset }
        | exception Cq_learner.Moracle.Inconsistent msg ->
            Failed { reason = "non-deterministic responses: " ^ msg; reset = Some reset })
  in
  {
    cpu = model.Cq_hwsim.Cpu_model.name;
    level;
    slice;
    set;
    assoc;
    cat = cat_ways <> None;
    outcome;
    timed_loads = Cq_cachequery.Backend.timed_loads backend;
    recalibrations = Cq_cachequery.Backend.recalibrations backend;
  }

(* Leader-A sets of a CPU's L3 (the learnable ones), per the Appendix B
   index formulas baked into the CPU model. *)
let l3_leader_sets ?(slice = 0) model =
  let spec = model.Cq_hwsim.Cpu_model.l3 in
  match spec.Cq_hwsim.Cpu_model.policy with
  | Cq_hwsim.Cpu_model.Fixed _ -> []
  | Cq_hwsim.Cpu_model.Adaptive { leader_a; _ } ->
      List.filter
        (fun set -> leader_a ~slice ~set)
        (List.init spec.Cq_hwsim.Cpu_model.sets_per_slice (fun i -> i))
