(* Polca (Algorithm 1): a membership oracle for the replacement policy,
   built on top of a cache oracle.

   The policy alphabet talks about cache *lines* (Ln(i), Evct); the cache
   only accepts *blocks*.  Polca translates between the two by tracking the
   cache content cc: Ln(i) maps to the block currently stored in line i;
   Evct maps to a fresh block never used before.  A miss's victim line is
   recovered by [find_evicted]: replay the block trace extended with each
   previously-cached block and see which one now misses.

   The resulting oracle answers *output queries* (input word over the
   policy alphabet -> output word), which is exactly what the Mealy-machine
   learner consumes; Theorem 3.1's trace-membership oracle is the
   derived [member] function. *)

type t = {
  cache : Cq_cache.Oracle.t;
  check_hits : bool;
      (* Algorithm 1 probes the cache even for Ln(i) inputs whose result is
         a foregone conclusion (the block is present by construction).
         Those probes detect nondeterminism — e.g. a broken reset sequence
         — at the cost of extra queries; disabling them is the ablation
         discussed in the EXPERIMENTS notes. *)
  batch_probes : bool;
      (* Prefix-share the probes of a word instead of replaying each from
         reset.  When the cache exposes its device primitives
         (Oracle.ops), the whole word runs as one session: every logical
         probe is answered by the single access extending the live trace,
         and the [find_evicted] fan-out is a checkpoint/restore scan at
         the trace tip.  Otherwise the fan-out alone is sent as one
         [query_batch] (trie-shared for oracles that support it).
         Disabling restores the per-probe reset-and-replay of the paper's
         Algorithm 1 — the sequential engine baseline. *)
  retries : int;
      (* On Non_deterministic, re-run the offending word up to this many
         extra times before giving up: a transient latency flip (noise)
         will not repeat, a structural problem (broken reset sequence,
         unsound interface) will.  0 restores fail-fast. *)
  backoff : (int -> unit) option;
      (* Called before retry k (1-based) — the hook where the hardware
         layer clears suspect memo entries and escalates voting. *)
  stats : Cq_cache.Oracle.stats option;
      (* Session-mode probes bypass the cache oracle's query path, so the
         counting wrapper cannot see them; Polca accounts them here
         instead (logical cost per probe, physical accesses, savings).
         Retries are accounted here too ([retry_attempts],
         [transient_flips]). *)
}

exception Non_deterministic of string

let create ?(check_hits = true) ?(batch_probes = true) ?(retries = 0) ?backoff
    ?stats cache =
  if retries < 0 then invalid_arg "Polca.create: retries must be >= 0";
  { cache; check_hits; batch_probes; retries; backoff; stats }

let assoc t = t.cache.Cq_cache.Oracle.assoc

let n_inputs t = Cq_policy.Types.n_inputs ~assoc:(assoc t)

(* Outcome of the last access of a block trace. *)
let probe_last t blocks =
  match List.rev (t.cache.Cq_cache.Oracle.query blocks) with
  | last :: _ -> last
  | [] -> invalid_arg "Polca.probe_last: empty query"

(* Which line was evicted by the last block of [trace]?  Probe the trace
   extended with each currently-tracked block; the one that misses is the
   victim (Algorithm 1's findEvicted).

   With [batch_probes] the [assoc] probe traces go to the cache as one
   batch — they share the whole trace prefix, which a prefix-sharing
   executor replays once.  Without it, scan sequentially and stop at the
   first miss. *)
let find_evicted t trace cc =
  let n = Array.length cc in
  if t.batch_probes then begin
    let probes =
      List.init n (fun i -> List.rev (cc.(i) :: trace))
    in
    let answers = t.cache.Cq_cache.Oracle.query_batch probes in
    let rec first_miss i = function
      | [] ->
          raise
            (Non_deterministic
               "find_evicted: no tracked block misses after an observed miss")
      | outcomes :: rest -> (
          match List.rev outcomes with
          | Cq_cache.Cache_set.Miss :: _ -> i
          | _ -> first_miss (i + 1) rest)
    in
    first_miss 0 answers
  end
  else
    let rec go i =
      if i >= n then
        raise
          (Non_deterministic
             "find_evicted: no tracked block misses after an observed miss")
      else
        match probe_last t (List.rev (cc.(i) :: trace)) with
        | Cq_cache.Cache_set.Miss -> i
        | Cq_cache.Cache_set.Hit -> go (i + 1)
    in
    go 0

(* Session mode: run the whole word against the live device.  The word's
   probe set is a degenerate trie — one path (the trace) with a fan of
   [find_evicted] probes at each Evct — so instead of materialising the
   probes and replaying their shared prefix, extend the path one access at
   a time and scan each fan under checkpoint/restore at the trace tip.
   A word of length L with e evictions costs L + Σ scan_i physical
   accesses instead of the O(L²) replay cost of Algorithm 1 as written.
   Outcomes are identical to replay whenever the device is deterministic
   from reset — the property reset validation establishes, and the same
   assumption the query memo already rests on. *)
let run_session t (ops : (Cq_cache.Block.t, Cq_cache.Cache_set.result) Cq_cache.Batch.ops)
    word =
  let n = assoc t in
  let cc = Array.copy t.cache.Cq_cache.Oracle.initial_content in
  let next_fresh = ref n in
  let depth = ref 0 in (* |trace| so far *)
  (* Honest accounting: logical cost = what per-probe replay would have
     paid for the probes actually issued; physical = accesses performed. *)
  let probes = ref 0 and logical = ref 0 and physical = ref 0 in
  let access b =
    incr physical;
    ops.Cq_cache.Batch.access b
  in
  ops.Cq_cache.Batch.reset ();
  let outputs =
    List.map
      (fun input ->
        match Cq_policy.Types.input_of_int ~assoc:n input with
        | Cq_policy.Types.Line i ->
            let b = cc.(i) in
            incr depth;
            let r = access b in
            (* The access both advances the policy state and observes the
               outcome, so the paper's hit probe is free here; honour the
               check_hits ablation by only *charging* for it (and only
               raising) when enabled. *)
            if t.check_hits then begin
              incr probes;
              logical := !logical + !depth;
              match r with
              | Cq_cache.Cache_set.Hit -> ()
              | Cq_cache.Cache_set.Miss ->
                  raise
                    (Non_deterministic
                       "tracked block missed: reset sequence or cache \
                        interface is unsound")
            end;
            None
        | Cq_policy.Types.Evct ->
            let b = Cq_cache.Block.of_index !next_fresh in
            incr next_fresh;
            incr depth;
            incr probes;
            logical := !logical + !depth;
            (match access b with
            | Cq_cache.Cache_set.Miss -> ()
            | Cq_cache.Cache_set.Hit ->
                raise
                  (Non_deterministic "fresh block hit: cache interface is unsound"));
            (* findEvicted: scan the tracked blocks at the trace tip,
               restoring the checkpoint after every probe (including the
               final miss, so the main trace continues from here).  Same
               short-circuit order as the replay scan. *)
            let restore = ops.Cq_cache.Batch.checkpoint () in
            let rec scan i =
              if i >= n then
                raise
                  (Non_deterministic
                     "find_evicted: no tracked block misses after an \
                      observed miss")
              else begin
                incr probes;
                logical := !logical + !depth + 1;
                let r = access cc.(i) in
                restore ();
                match r with
                | Cq_cache.Cache_set.Miss -> i
                | Cq_cache.Cache_set.Hit -> scan (i + 1)
              end
            in
            let victim = scan 0 in
            cc.(victim) <- b;
            Some victim)
      word
  in
  (match t.stats with
  | None -> ()
  | Some s ->
      Cq_util.Metrics.incr s.Cq_cache.Oracle.batches;
      Cq_util.Metrics.add s.Cq_cache.Oracle.batched_queries !probes;
      Cq_util.Metrics.add s.Cq_cache.Oracle.queries !probes;
      Cq_util.Metrics.add s.Cq_cache.Oracle.block_accesses !logical;
      Cq_util.Metrics.add s.Cq_cache.Oracle.accesses_saved
        (!logical - !physical);
      Cq_util.Metrics.observe s.Cq_cache.Oracle.batch_depth
        (float_of_int !probes));
  outputs

(* Answer an output query by per-probe replay: the policy outputs along
   [word] (a word over the flattened input alphabet: 0..n-1 = Ln(i),
   n = Evct), every probe re-executed from reset through the oracle's
   query path — Algorithm 1 exactly as written. *)
let run_replay t word =
  let n = assoc t in
  let cc = Array.copy t.cache.Cq_cache.Oracle.initial_content in
  (* Fresh blocks for Evct inputs, disjoint from cc0 and deterministic for
     a given query (so the query memo works). *)
  let next_fresh = ref n in
  let trace = ref [] (* reversed block trace so far *) in
  let outputs =
    List.map
      (fun input ->
        match Cq_policy.Types.input_of_int ~assoc:n input with
        | Cq_policy.Types.Line i ->
            let b = cc.(i) in
            trace := b :: !trace;
            if t.check_hits then begin
              match probe_last t (List.rev !trace) with
              | Cq_cache.Cache_set.Hit -> ()
              | Cq_cache.Cache_set.Miss ->
                  raise
                    (Non_deterministic
                       "tracked block missed: reset sequence or cache \
                        interface is unsound")
            end;
            None
        | Cq_policy.Types.Evct ->
            let b = Cq_cache.Block.of_index !next_fresh in
            incr next_fresh;
            trace := b :: !trace;
            (match probe_last t (List.rev !trace) with
            | Cq_cache.Cache_set.Miss -> ()
            | Cq_cache.Cache_set.Hit ->
                raise
                  (Non_deterministic
                     "fresh block hit: cache interface is unsound"));
            let victim = find_evicted t !trace cc in
            cc.(victim) <- b;
            Some victim)
      word
  in
  outputs

(* Dispatch: session mode whenever the cache exposes its device primitives
   and batching is on; otherwise per-probe replay. *)
let run_once t word =
  (fun run ->
    if Cq_util.Trace.enabled () then
      Cq_util.Trace.with_span ~cat:"polca"
        ~args:[ ("len", string_of_int (List.length word)) ]
        "polca.word" run
    else run ())
  @@ fun () ->
  match (if t.batch_probes then t.cache.Cq_cache.Oracle.ops else None) with
  | Some ops -> run_session t ops word
  | None -> run_replay t word

(* Bounded retry around Non_deterministic: a transient measurement flip
   (an outlier latency that survived voting) will not repeat when the word
   is re-executed from reset, whereas structural nondeterminism — a broken
   reset sequence, an unsound interface — fails on every attempt and is
   re-raised with the retry history attached. *)
let run t word =
  if t.retries = 0 then run_once t word
  else
    let rec attempt k history =
      match run_once t word with
      | outputs ->
          if k > 0 then begin
            match t.stats with
            | Some s -> Cq_util.Metrics.incr s.Cq_cache.Oracle.transient_flips
            | None -> ()
          end;
          outputs
      | exception Non_deterministic msg ->
          if k >= t.retries then
            raise
              (Non_deterministic
                 (Printf.sprintf
                    "%s (persisted after %d retries; attempts: %s)" msg k
                    (String.concat " | " (List.rev (msg :: history)))))
          else begin
            (match t.stats with
            | Some s -> Cq_util.Metrics.incr s.Cq_cache.Oracle.retry_attempts
            | None -> ());
            (match t.backoff with Some f -> f (k + 1) | None -> ());
            attempt (k + 1) (msg :: history)
          end
    in
    attempt 0 []

(* The membership oracle consumed by the learner.  Words of a batch are
   adaptive (each probe depends on previous outcomes), so the batch maps
   over [run]; the prefix sharing happens below, in the [find_evicted]
   fan-out and the cache-level executor. *)
let moracle t =
  Cq_learner.Moracle.make ~n_inputs:(n_inputs t)
    ~query_batch:(List.map (run t))
    (run t)

(* Theorem 3.1: trace membership.  [member t tr] holds iff the input/output
   trace [tr] belongs to the policy's trace semantics. *)
let member t tr =
  let inputs =
    List.map (fun (i, _) -> Cq_policy.Types.input_to_int ~assoc:(assoc t) i) tr
  in
  let expected = List.map snd tr in
  match run t inputs with
  | outputs -> outputs = expected
  | exception Non_deterministic _ -> false
