(** Durable learning sessions: versioned on-disk snapshots of learning
    progress, written atomically so a crash at any instant leaves a
    loadable file behind.

    A snapshot carries the membership oracle's prefix-trie contents, the
    L* observation table and the run metadata (PRNG seed, calibration
    state).  Resuming preloads the trie and replays the learner
    deterministically: every previously answered query is served locally,
    so the resumed run reaches the crash point at zero hardware cost and
    then continues — producing the {e identical} automaton a crash-free
    run would have produced. *)

exception Corrupt of string
(** The file is not a loadable snapshot: missing, truncated, wrong magic,
    incompatible format version, digest mismatch, or an undecodable
    payload.  The message says which. *)

val version : int
(** Current snapshot format version (written into the header; {!load}
    rejects files written by other versions). *)

type meta = {
  version : int;  (** format version the snapshot was written with *)
  label : string;  (** human-readable run label ("" when unset) *)
  created : float;  (** Unix time of the write *)
  queries : int;  (** hardware queries answered when it was written *)
  seed : int option;  (** PRNG seed of the run (reset discovery replay) *)
  calibration : Cq_cachequery.Backend.calibration option;
      (** backend calibration state, restored instead of re-measuring *)
}

type 'o snapshot = {
  meta : meta;
  knowledge : 'o Cq_learner.Moracle.knowledge;  (** prefix-trie dump *)
  table : 'o Cq_learner.Lstar.table_state option;
      (** observation table at snapshot time *)
}

val make_meta :
  ?label:string ->
  ?seed:int ->
  ?calibration:Cq_cachequery.Backend.calibration ->
  queries:int ->
  unit ->
  meta

val save : path:string -> 'o snapshot -> unit
(** Serialize (magic + version + MD5 digest + [Marshal] payload) and write
    atomically: tmp sibling, fsync, rename.  Readers never observe a torn
    file; a crash mid-write leaves the previous snapshot intact. *)

val load : path:string -> 'o snapshot
(** Read and verify a snapshot.  @raise Corrupt on any damage (see
    {!exception-Corrupt}). *)

val load_opt : path:string -> 'o snapshot option
(** [None] when the file does not exist; still @raise Corrupt when it
    exists but is damaged — a damaged snapshot is an error to surface, not
    an absence to paper over. *)

val pp_meta : Format.formatter -> meta -> unit
