(** Reset-sequence discovery and validation (§7.1 of the paper).

    Polca needs every query to start from one fixed cache-set state, but
    establishing that state requires knowledge of the policy being
    learned.  The paper resolves the bootstrap empirically: wrong reset
    sequences make equal query prefixes produce different outputs.  [find]
    automates exactly that. *)

val candidates : int -> Cq_cachequery.Frontend.reset list
(** Candidate reset sequences for a given associativity, in priority
    order: Flush+Refill, the paper's manual sequences ([@ @],
    [D C B A @]), then flush-prefixed and repeated variants. *)

val validate :
  ?trials:int ->
  ?max_len:int ->
  ?deadline:Cq_util.Clock.deadline ->
  prng:Cq_util.Prng.t ->
  Cq_cachequery.Frontend.t ->
  bool
(** Determinism check under the frontend's current reset sequence: random
    block traces run twice must agree, and outputs must be
    prefix-consistent.  Temporarily disables the query memo.  A candidate
    whose trials cannot finish before [deadline] fails validation rather
    than passing half-checked. *)

val find :
  ?trials:int ->
  ?max_len:int ->
  ?deadline:Cq_util.Clock.deadline ->
  prng:Cq_util.Prng.t ->
  Cq_cachequery.Frontend.t ->
  Cq_cachequery.Frontend.reset option
(** Try the candidates in order and configure the frontend with the first
    that validates; [None] when the set behaves nondeterministically under
    all of them (e.g. follower sets, Haswell's noisy leaders) or when
    [deadline] expires first (callers distinguish the two by checking the
    deadline). *)
