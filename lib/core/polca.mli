(** Polca (Algorithm 1 of the paper): a membership oracle for the
    replacement policy, built on top of a cache oracle.

    Polca translates the policy alphabet (cache lines) into the cache
    alphabet (memory blocks) by tracking the cache content: [Ln(i)] maps to
    the block currently in line [i], [Evct] to a fresh block, and a miss's
    victim line is recovered by probing the trace extended with each
    tracked block ([findEvicted]). *)

type t

exception Non_deterministic of string
(** Raised when the cache's answers are inconsistent with a deterministic
    policy over the assumed initial content — the symptom of a broken
    reset sequence or noisy measurements (§7.1). *)

val create :
  ?check_hits:bool ->
  ?batch_probes:bool ->
  ?retries:int ->
  ?backoff:(int -> unit) ->
  ?stats:Cq_cache.Oracle.stats ->
  Cq_cache.Oracle.t ->
  t
(** [check_hits] (default [true]) probes the cache even for accesses that
    must hit by construction, exactly as Algorithm 1 is written; those
    probes only serve to detect nondeterminism and can be disabled for a
    ~2x cheaper oracle (see the ablation in EXPERIMENTS.md).

    [batch_probes] (default [true]) prefix-shares the probes of each word.
    When the cache exposes its device primitives ({!Cq_cache.Oracle.t.ops})
    the whole word runs as one live session: each logical probe is answered
    by the single access extending the trace, and the [findEvicted] fan-out
    becomes a checkpoint/restore scan at the trace tip — a word of length L
    costs O(L + scans) device accesses instead of the O(L²) of per-probe
    replay.  Without [ops], the fan-out alone is sent as one [query_batch].
    Disable to restore per-probe reset-and-replay (the sequential engine).

    [retries] (default 0) bounds a retry loop around {!Non_deterministic}:
    the offending word is re-executed from reset up to [retries] extra
    times, distinguishing transient measurement flips (the retry succeeds;
    counted in [stats.transient_flips]) from structural nondeterminism
    such as a broken reset sequence (every attempt fails; re-raised with
    the retry history in the message).  [backoff] is invoked before retry
    [k] (1-based) — the hook where the hardware layer clears suspect memo
    entries and escalates voting.

    [stats] receives the accounting for session-mode probes, which bypass
    the cache oracle's query path and are therefore invisible to
    {!Cq_cache.Oracle.counting}: logical per-probe cost in
    [block_accesses], physical accesses saved in [accesses_saved], one
    batch per word.  Retries land in [retry_attempts] /
    [transient_flips]. *)

val assoc : t -> int
val n_inputs : t -> int

val run : t -> int list -> Cq_policy.Types.output list
(** Output query: the policy's outputs along a word over the flattened
    input alphabet (0..n-1 = Ln(i), n = Evct). *)

val moracle : t -> Cq_policy.Types.output Cq_learner.Moracle.t
(** The membership oracle consumed by the learner. *)

val member : t -> (Cq_policy.Types.input * Cq_policy.Types.output) list -> bool
(** Theorem 3.1: trace membership in the policy semantics ⟦P⟧. *)
