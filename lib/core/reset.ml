(* Reset-sequence discovery and validation (§7.1).

   Polca assumes every query starts from one fixed cache-set state, but on
   hardware that state must be (re-)established by a reset sequence — and
   finding one requires knowledge of the very policy being learned.  The
   paper resolves the bootstrap empirically: a wrong reset sequence makes
   equal query prefixes produce different outputs, which is detectable.

   [find] tries a list of candidate sequences (Flush+Refill first, then the
   manual sequences the paper reports in Table 4, then heavier variants)
   and returns the first one under which the cache behaves deterministically
   and consistently on a battery of random block traces. *)

let at = Cq_mbl.Ast.At

(* 'D C B A @' generalised: the first [assoc] blocks in reverse order,
   then the '@' fill. *)
let reverse_fill assoc =
  let blocks =
    List.rev_map
      (fun b -> Cq_mbl.Ast.Block (Cq_cache.Block.to_string b))
      (Cq_cache.Block.first assoc)
  in
  Cq_mbl.Ast.Seq (blocks @ [ at ])

let candidates assoc : Cq_cachequery.Frontend.reset list =
  [
    Cq_cachequery.Frontend.Flush_refill;
    Cq_cachequery.Frontend.Sequence (Cq_mbl.Ast.Seq [ at; at ]);
    Cq_cachequery.Frontend.Sequence (reverse_fill assoc);
    Cq_cachequery.Frontend.Flush_then (Cq_mbl.Ast.Seq [ at; at ]);
    Cq_cachequery.Frontend.Flush_then (reverse_fill assoc);
    Cq_cachequery.Frontend.Sequence (Cq_mbl.Ast.Power (Cq_mbl.Ast.Seq [ at; at ], 2));
    Cq_cachequery.Frontend.Flush_then
      (Cq_mbl.Ast.Seq [ reverse_fill assoc; reverse_fill assoc ]);
    Cq_cachequery.Frontend.Flush_then (Cq_mbl.Ast.Power (Cq_mbl.Ast.Seq [ at; at ], 3));
  ]

(* Random block trace over the learning alphabet: the initial blocks plus a
   few fresh ones, as Polca's probes would produce. *)
let random_trace prng assoc len =
  List.init len (fun _ -> Cq_cache.Block.of_index (Cq_util.Prng.int prng (assoc + 3)))

(* Determinism check: every query, repeated, must give identical answers,
   and answers must be prefix-consistent (outputs of a prefix of a query
   are a prefix of the outputs). *)
let validate ?(trials = 24) ?(max_len = 24)
    ?(deadline = Cq_util.Clock.no_deadline) ~prng frontend =
  let assoc = Cq_cachequery.Frontend.assoc frontend in
  let oracle = Cq_cachequery.Frontend.oracle frontend in
  Cq_cachequery.Frontend.set_memo frontend false;
  let ok = ref true in
  let t = ref 0 in
  while !ok && !t < trials do
    (* A candidate that cannot finish its trials before the deadline is
       not validated — fail it rather than accept it half-checked. *)
    if Cq_util.Clock.expired deadline then ok := false
    else begin
    let len = 2 + Cq_util.Prng.int prng (max_len - 2) in
    let trace = random_trace prng assoc len in
    let r1 = oracle.Cq_cache.Oracle.query trace in
    let r2 = oracle.Cq_cache.Oracle.query trace in
    if r1 <> r2 then ok := false
    else begin
      (* prefix consistency *)
      let cut = 1 + Cq_util.Prng.int prng (len - 1) in
      let prefix = List.filteri (fun i _ -> i < cut) trace in
      let rp = oracle.Cq_cache.Oracle.query prefix in
      let r1p = List.filteri (fun i _ -> i < cut) r1 in
      if rp <> r1p then ok := false
    end;
    incr t
    end
  done;
  Cq_cachequery.Frontend.set_memo frontend true;
  Cq_cachequery.Frontend.clear_memo frontend;
  !ok

(* Try candidates in order; configure the frontend with the first reset
   sequence that validates. *)
let find ?(trials = 24) ?(max_len = 24) ?(deadline = Cq_util.Clock.no_deadline)
    ~prng frontend =
  let assoc = Cq_cachequery.Frontend.assoc frontend in
  let rec go = function
    | [] -> None
    | _ when Cq_util.Clock.expired deadline -> None
    | reset :: rest ->
        Cq_cachequery.Frontend.set_reset frontend reset;
        Cq_cachequery.Frontend.clear_memo frontend;
        if validate ~trials ~max_len ~deadline ~prng frontend then Some reset
        else go rest
  in
  go (candidates assoc)
