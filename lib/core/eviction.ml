(* Computing optimal eviction strategies from learned policy models.

   The paper's security discussion (§10) motivates exactly this use of the
   learned automata: "detailed policy models, such as the ones we provide,
   enable one to systematically compute optimal eviction strategies, and to
   unveil new sophisticated cache attacks" (cf. Rowhammer.js, which had to
   *test thousands* of candidate strategies instead).

   Setting: an attacker shares a cache set with a victim block sitting in
   line [target].  The attacker can touch its own cached lines (inputs
   [Ln(i)], i <> target) and insert fresh blocks (input [Evct]); it wants
   the policy to evict the victim's line.  Given the policy automaton:

   - [shortest ~target m state] is the provably shortest attacker input
     word, from a known control state, whose final [Evct] kicks out
     [target] (BFS over the automaton);
   - [universal ~target m] is a single word that evicts [target] from
     *every* control state (the attacker usually does not know the state) —
     built greedily by chaining per-state shortest strategies over the
     shrinking set of surviving states;
   - [eviction_rate ~target m word] scores an arbitrary strategy: the
     fraction of control states from which it evicts the target (the
     "eviction rate" of the Rowhammer.js literature). *)

type strategy = {
  word : int list; (* over the flattened policy alphabet *)
  length : int;
  accesses : int; (* Ln inputs (touches of attacker-cached lines) *)
  misses : int; (* Evct inputs (fresh-block insertions) *)
}

let strategy_of_word assoc word =
  {
    word;
    length = List.length word;
    accesses = List.length (List.filter (fun i -> i < assoc) word);
    misses = List.length (List.filter (fun i -> i = assoc) word);
  }

let pp_strategy ~assoc ppf s =
  Fmt.pf ppf "%s  (%d accesses, %d misses)"
    (String.concat " "
       (List.map
          (fun i ->
            if i = assoc then "miss"
            else Printf.sprintf "Ln(%d)" i)
          s.word))
    s.accesses s.misses

(* Does one step evict the target?  Only [Evct] transitions whose output
   names the target line count. *)
let evicts_target ~assoc ~target m state input =
  input = assoc && Cq_automata.Mealy.output m state input = Some target

(* Attacker-legal inputs: everything except touching the victim's line. *)
let legal_inputs ~assoc ~target =
  List.filter (fun i -> i <> target) (List.init (assoc + 1) Fun.id)

(* Shortest eviction word from a known control state (BFS). *)
let shortest ~target m state =
  let assoc = Cq_automata.Mealy.n_inputs m - 1 in
  if target < 0 || target >= assoc then invalid_arg "Eviction.shortest: bad target";
  let inputs = legal_inputs ~assoc ~target in
  let seen = Hashtbl.create 97 in
  let queue = Queue.create () in
  Hashtbl.add seen state (); (* cq-lint: allow hashtbl-add: first insertion into a fresh table *)
  Queue.add (state, []) queue;
  let result = ref None in
  (try
     while not (Queue.is_empty queue) do
       let s, path = Queue.take queue in
       List.iter
         (fun i ->
           if evicts_target ~assoc ~target m s i then begin
             result := Some (List.rev (i :: path));
             raise Exit
           end;
           let s' = Cq_automata.Mealy.next_state m s i in
           if not (Hashtbl.mem seen s') then begin
             Hashtbl.add seen s' (); (* cq-lint: allow hashtbl-add: guarded by the mem test above *)
             Queue.add (s', i :: path) queue
           end)
         inputs
     done
   with Exit -> ());
  Option.map (strategy_of_word assoc) !result

(* Advance a set of "surviving" states through a word, dropping the states
   in which the target got evicted along the way. *)
let survivors ~assoc ~target m states word =
  List.filter_map
    (fun s ->
      let rec go s = function
        | [] -> Some s
        | i :: rest ->
            if evicts_target ~assoc ~target m s i then None
            else go (Cq_automata.Mealy.next_state m s i) rest
      in
      go s word)
    states

(* A single word evicting the target from every control state: repeatedly
   extend with the shortest strategy of one surviving state.  Each round
   eliminates at least that state, so at most [n_states] rounds. *)
let universal ~target m =
  let assoc = Cq_automata.Mealy.n_inputs m - 1 in
  let all_states = List.init (Cq_automata.Mealy.n_states m) Fun.id in
  let rec go word states rounds =
    match states with
    | [] -> Some (strategy_of_word assoc word)
    | s :: _ ->
        if rounds > Cq_automata.Mealy.n_states m then None
        else (
          match shortest ~target m s with
          | None -> None (* target not evictable from s at all *)
          | Some step ->
              let word' = word @ step.word in
              go word' (survivors ~assoc ~target m states step.word) (rounds + 1))
  in
  go [] all_states 0

(* Fraction of control states from which [word] evicts the target. *)
let eviction_rate ~target m word =
  let assoc = Cq_automata.Mealy.n_inputs m - 1 in
  let n = Cq_automata.Mealy.n_states m in
  let surviving = survivors ~assoc ~target m (List.init n Fun.id) word in
  float_of_int (n - List.length surviving) /. float_of_int n

(* Summary for a policy: per-line shortest strategies (from the initial
   state) and the universal strategy, as one record per line. *)
type summary = {
  line : int;
  from_init : strategy option;
  from_any : strategy option;
}

let analyze_policy policy =
  let m = Cq_policy.Policy.to_mealy policy in
  let assoc = Cq_policy.Policy.assoc policy in
  List.init assoc (fun line ->
      {
        line;
        from_init = shortest ~target:line m (Cq_automata.Mealy.init m);
        from_any = universal ~target:line m;
      })
