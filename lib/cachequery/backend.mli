(** The CacheQuery backend — the role of the paper's Linux kernel module
    (§4.2/§4.3): address selection, cache filtering, code "generation"
    (timed load sequences on the simulated machine), latency calibration
    and hit/miss classification for one target cache set. *)

type target = {
  level : Cq_hwsim.Cpu_model.level;
  slice : int;
  set : int;
}

type t

val create :
  ?disable_prefetchers:bool ->
  ?metrics:Cq_util.Metrics.t ->
  Cq_hwsim.Machine.t ->
  target ->
  t
(** Attach to a target set: select congruent address pools and build the
    non-interfering eviction sets used for cache filtering.  Disables the
    machine's prefetchers by default, as the real tool does.  [metrics]
    receives the backend's counters ([backend.timed_loads],
    [backend.filter_loads], [backend.recalibrations]); default is a
    private registry readable through the accessors below. *)

val machine : t -> Cq_hwsim.Machine.t
val target : t -> target

val threshold : t -> int
(** Current hit/miss latency threshold (cycles). *)

val timed_loads : t -> int
val filter_loads : t -> int

val margin : t -> int
(** Half-width (cycles) of the suspicious latency band around the
    threshold: readings at most [threshold - margin] are confident hits,
    readings within [margin] of the threshold feed the drift detector. *)

val recalibrations : t -> int
(** Drift-triggered recalibrations performed so far. *)

val recalibrate_due : t -> bool
(** Whether the drift detector has requested a recalibration (honoured by
    {!maybe_recalibrate} at the next reset boundary). *)

val addr_of_block : t -> Cq_cache.Block.t -> int
(** The physical address backing an abstract block (allocated on first
    use, always congruent with the target set). *)

val timed_load : t -> Cq_cache.Block.t -> int
(** One profiled load of a block, followed by the filtering sweep that
    keeps levels above the target out of the way; returns measured
    cycles. *)

val classify : t -> int -> Cq_cache.Cache_set.result
(** Cycles -> Hit/Miss at the target level, via the threshold.  Also feeds
    the drift detector: when too many classified latencies crowd the
    threshold (the populations drifted since calibration), a recalibration
    is flagged for {!maybe_recalibrate}. *)

val confident_hit : t -> int -> bool
(** [cycles <= threshold - margin]: noise sources only add latency, so a
    reading this low cannot be a disguised miss and a single sample
    suffices (the voting layer's fast path). *)

val confident_miss : t -> int -> bool
(** Clearly above the threshold yet inside the next-level latency
    population (below the miss ceiling): cannot be an outlier-spiked hit —
    spikes overshoot the level gap — so a single sample suffices. *)

val miss_ceiling : t -> int
(** Upper bound of the confident-miss band (refined by calibration). *)

val settle : ?loads:int -> t -> unit
(** Issue untimed loads to a non-interfering address so a transient
    common-mode noise burst can expire between vote re-measurements. *)

val flush_block : t -> Cq_cache.Block.t -> unit
val flush_all_known : t -> unit
(** clflush everything this backend ever directed at the target set (the
    building block of the Flush+Refill reset). *)

val run_query : t -> Cq_mbl.Expand.query -> Cq_cache.Cache_set.result list
(** Execute an expanded MBL query; returns outcomes of profiled accesses. *)

val run_query_timed :
  t -> Cq_mbl.Expand.query -> (Cq_cache.Cache_set.result * int) list
(** As [run_query] but with raw cycle counts (§7.2 measurements). *)

val calibrate : ?samples:int -> t -> int * int list * int list
(** Measure known-hit and known-miss latency populations at the target
    level and set the threshold between their medians (and the margin to a
    quarter of their separation); returns
    [(threshold, hit_samples, miss_samples)]. *)

type calibration = {
  cal_threshold : int;
  cal_margin : int;
  cal_miss_ceiling : int;
  cal_ewma_hit : float;
  cal_ewma_miss : float;
}
(** The portable calibration state: threshold, margin, miss ceiling and
    the drift estimator's population centres.  Marshal-safe — learning
    sessions persist it in snapshots so a resumed run classifies exactly
    like the crashed one without re-measuring. *)

val calibration : t -> calibration
(** Snapshot the current calibration state. *)

val restore_calibration : t -> calibration -> unit
(** Restore a previously captured calibration state (in place of a fresh
    {!calibrate}); also resets the drift-detector window. *)

val maybe_recalibrate : ?samples:int -> t -> bool
(** Run {!calibrate} if the drift detector requested it; returns whether a
    recalibration ran.  Only call at a reset boundary — calibration sweeps
    the target set and would corrupt a query in flight. *)
