(** The CacheQuery frontend (§4.2 of the paper): MBL expansion, reset
    sequences, repetition with majority voting, the LevelDB-style query
    memo, and the cache-oracle view that Polca consumes. *)

type reset =
  | No_reset
  | Flush_refill  (** clflush everything, then access ['@'] *)
  | Sequence of Cq_mbl.Ast.t  (** e.g. [@ @] or [D C B A @] *)
  | Flush_then of Cq_mbl.Ast.t  (** clflush everything, then the sequence *)

val reset_to_string : reset -> string

type voting =
  | Fixed of int  (** always this many repetitions; [Fixed 1] = no voting *)
  | Adaptive of { max : int }
      (** early-stopping vote: stop re-measuring once the
          majority-of-[max] outcome is decided for every profiled
          position; never exceed [max] repetitions *)

(** Repetition counts other than 1 must be odd — an even cap can tie, and
    any fixed tie-break silently biases the vote.  Constructors and
    setters raise [Invalid_argument] on even counts. *)

val voting_to_string : voting -> string

type t

val create :
  ?reset:reset ->
  ?repetitions:int ->
  ?voting:voting ->
  ?max_memo_entries:int ->
  ?metrics:Cq_util.Metrics.t ->
  Backend.t ->
  t
(** [voting] takes precedence over [repetitions] (which is shorthand for
    [Fixed n]).  [max_memo_entries] bounds the query memo with
    clear-on-overflow semantics (clears recorded in
    [stats.memo_overflows]).  [metrics] receives the frontend's counters
    and histograms under the ["frontend."] prefix; default is a private
    registry readable through {!stats}. *)

val backend : t -> Backend.t

val assoc : t -> int
(** Effective associativity of the target level (CAT-aware). *)

val stats : t -> Cq_cache.Oracle.stats
(** Under voting, [block_accesses] and [timed_loads] count *actual*
    executions including vote re-measurements; [vote_runs] isolates the
    re-measurement overhead. *)

val set_reset : t -> reset -> unit
val reset_sequence : t -> reset

val set_voting : t -> voting -> unit
val voting : t -> voting

val set_repetitions : t -> int -> unit
(** Shorthand for [set_voting t (Fixed n)]. *)

val max_repetitions : t -> int
(** The voting cap: [n] for [Fixed n], [max] for [Adaptive]. *)

val set_memo : t -> bool -> unit
val clear_memo : t -> unit

val memo_size : t -> int
(** Number of memoized queries ([Hashtbl.length] of the memo table). *)

val check :
  t ->
  string ->
  (Cq_analysis.Mbl_check.summary, Cq_analysis.Mbl_check.diagnostic) result
(** Statically analyse an MBL expression at the target's associativity —
    exact expansion cardinality, footprint and profiled-access counts, or
    a typed rejection — without expanding or executing anything.  Raises
    [Cq_mbl.Parser.Parse_error] on syntax errors. *)

val expand : t -> string -> Cq_mbl.Expand.query list
(** Parse and expand an MBL expression at the target's associativity,
    after the static simplification pre-pass (see
    {!Cq_analysis.Mbl_check.simplify}; the query list is unchanged by
    it). *)

val run_mbl :
  t -> string -> (Cq_mbl.Expand.query * Cq_cache.Cache_set.result list) list
(** Run an MBL expression: each expanded query executes from reset, with
    whole-query majority voting per the voting discipline; profiled
    accesses' outcomes are returned. *)

val oracle : t -> Cq_cache.Oracle.t
(** The cache oracle Polca talks to: every access profiled, queries
    memoized.  The batched path and the session-mode [ops] stay available
    at every voting setting — voting happens inside the access primitive,
    re-running only disputed accesses from a pre-access machine
    checkpoint. *)
