(* The CacheQuery backend — the role played by the paper's Linux kernel
   module.  Given a target cache set (level, slice, set index) on a
   simulated machine, it:

   - selects congruent physical addresses and maps abstract blocks to them
     (the paper's per-level memory pools);
   - keeps higher cache levels out of the way by accessing non-interfering
     eviction sets after every load (cache filtering, §4.3);
   - executes queries as sequences of timed loads / clflushes and
     classifies each profiled load as a hit or miss at the target level via
     a calibrated latency threshold;
   - disables prefetchers and runs in a low-noise configuration, with
     repetition and majority voting left to the frontend. *)

type target = {
  level : Cq_hwsim.Cpu_model.level;
  slice : int;
  set : int;
}

type t = {
  machine : Cq_hwsim.Machine.t;
  target : target;
  (* block -> physical address, lazily extended *)
  block_addr : (Cq_cache.Block.t, int) Hashtbl.t;
  mutable pool : int list; (* unassigned congruent addresses *)
  mutable pool_cursor : int; (* line index where enumeration resumes *)
  mutable threshold : int; (* latency <= threshold ==> hit at target level *)
  (* Addresses used to evict the target blocks from levels above the
     target; chosen congruent at the higher level but non-interfering at
     the target level and below. *)
  filter_sets : (Cq_hwsim.Cpu_model.level * int list) list;
  (* Sweep that evicts a block from the target level itself (same target
     set, non-interfering below); used by calibration to observe
     "miss at target, hit at next level" latencies.  Empty for L3, where
     a plain flush yields the memory-latency miss population. *)
  calib_sweep : int list;
  mutable calib_dirty : bool; (* calibration touched the target set *)
  (* Registry-backed load/recalibration accounting (Cq_util.Metrics): the
     report fields and a --metrics export read the same cells. *)
  timed_loads : Cq_util.Metrics.counter;
  filter_loads : Cq_util.Metrics.counter;
  (* Noise layer (§4.3 hardening): [margin] is the half-width of the
     "suspicious" latency band around the threshold.  A latency at most
     [threshold - margin] is a confident hit (outlier spikes only push
     latencies *up*, so low readings are trustworthy); latencies inside
     the band feed the drift detector below. *)
  mutable margin : int;
  (* Drift detector: over a sliding window of classifications, count how
     many fell within [margin] of the threshold.  When the crowded
     fraction exceeds [drift_fraction] the hit/miss populations have
     drifted towards the threshold and a recalibration is requested; the
     frontend honours it at the next reset boundary (recalibrating
     mid-query would perturb the state under measurement). *)
  mutable window_classified : int;
  mutable window_near : int;
  (* Direct drift estimator: exponential moving averages of the observed
     hit and miss latency populations (outlier-range readings excluded).
     Noise sources shift both populations together, so when the EWMA
     midpoint departs from the calibrated threshold by more than half the
     margin, the populations have drifted and the threshold is going
     stale — request a recalibration long before misclassifications set
     in.  (The window counters above remain as a coarser backstop that
     also catches variance growth.) *)
  mutable ewma_hit : float;
  mutable ewma_miss : float;
  mutable recalibrate_due : bool;
  recalibrations : Cq_util.Metrics.counter;
  (* Upper bound of the confident-miss band: a latency above
     [threshold + margin] but at most [miss_ceiling] sits inside the
     next-level population and cannot be an outlier-spiked hit (spikes add
     far more than the level gap), so a single sample suffices.  Beyond the
     ceiling the reading is suspicious — an interrupt-style spike on either
     population — and must be voted. *)
  mutable miss_ceiling : int;
  (* A non-interfering address (different set at every level) used to let
     transient common-mode noise bursts expire between vote re-measurements
     without touching the state under measurement. *)
  settle_addr : int;
}

(* Window length / crowding fraction for the drift detector.  256 profiled
   loads is a handful of queries; >25% of them inside the margin band never
   happens when the populations are where calibration left them. *)
let drift_window = 256
let drift_fraction = 0.25

(* EWMA smoothing for the population trackers.  1/alpha ~ 100 samples:
   enough smoothing that jitter cannot fire the detector spuriously
   (midpoint sigma ~ 0.08 cycles at jitter sigma 1.5), short enough that
   the estimate lags real drift by a fraction of a cycle. *)
let ewma_alpha = 0.01

let machine t = t.machine
let target t = t.target
let threshold t = t.threshold
let timed_loads t = Cq_util.Metrics.value t.timed_loads
let filter_loads t = Cq_util.Metrics.value t.filter_loads
let margin t = t.margin
let miss_ceiling t = t.miss_ceiling
let recalibrations t = Cq_util.Metrics.value t.recalibrations
let recalibrate_due t = t.recalibrate_due

let line_size t = (Cq_hwsim.Machine.model t.machine).Cq_hwsim.Cpu_model.line_size

(* Levels strictly above (closer to the core than) the target level. *)
let levels_above = function
  | Cq_hwsim.Cpu_model.L1 -> []
  | Cq_hwsim.Cpu_model.L2 -> [ Cq_hwsim.Cpu_model.L1 ]
  | Cq_hwsim.Cpu_model.L3 -> [ Cq_hwsim.Cpu_model.L1; Cq_hwsim.Cpu_model.L2 ]

(* Build, for each level above the target, an eviction set: addresses that
   are congruent with the target's image at that level but map to a
   *different* set at the target level (and, for L1 filtering under an L3
   target, also a different L2 set), so that accessing them cannot disturb
   the state under measurement.  Their own L3 sets are also kept distinct
   from the target's to avoid inclusive back-invalidation. *)
let build_filter_sets machine (target : target) =
  let sample_addr =
    List.hd
      (Cq_hwsim.Machine.congruent_addresses machine target.level
         ~slice:target.slice ~set:target.set 1)
  in
  List.map
    (fun above ->
      let a_slice, a_set = Cq_hwsim.Machine.map_addr machine above sample_addr in
      let spec =
        Cq_hwsim.Cpu_model.spec (Cq_hwsim.Machine.model machine) above
      in
      let non_interfering addr =
        let t_slice, t_set =
          Cq_hwsim.Machine.map_addr machine target.level addr
        in
        not (t_slice = target.slice && t_set = target.set)
        &&
        (* never fight the inclusive L3 set of the target's blocks *)
        match target.level with
        | Cq_hwsim.Cpu_model.L3 -> true
        | _ ->
            let l3_slice, l3_set =
              Cq_hwsim.Machine.map_addr machine Cq_hwsim.Cpu_model.L3 addr
            in
            let t3_slice, t3_set =
              Cq_hwsim.Machine.map_addr machine Cq_hwsim.Cpu_model.L3 sample_addr
            in
            not (l3_slice = t3_slice && l3_set = t3_set)
      in
      (* Twice the associativity thrashes any of the deterministic policies
         we model out of the level. *)
      let addrs =
        Cq_hwsim.Machine.congruent_addresses machine above ~slice:a_slice
          ~set:a_set ~filter:non_interfering
          (2 * spec.Cq_hwsim.Cpu_model.assoc)
      in
      (above, addrs))
    (levels_above target.level)

(* Addresses in the *target* set itself whose L3 (or L2) images differ from
   the sample's, so sweeping them evicts a block from the target level
   without perturbing deeper levels' copies of it. *)
let build_calib_sweep machine (target : target) =
  let model = Cq_hwsim.Machine.model machine in
  let spec = Cq_hwsim.Cpu_model.spec model target.level in
  match target.level with
  | Cq_hwsim.Cpu_model.L3 -> []
  | (Cq_hwsim.Cpu_model.L1 | Cq_hwsim.Cpu_model.L2) as level ->
      let sample =
        List.hd
          (Cq_hwsim.Machine.congruent_addresses machine level
             ~slice:target.slice ~set:target.set 1)
      in
      let next =
        match level with
        | Cq_hwsim.Cpu_model.L1 -> Cq_hwsim.Cpu_model.L2
        | _ -> Cq_hwsim.Cpu_model.L3
      in
      let next_slice, next_set = Cq_hwsim.Machine.map_addr machine next sample in
      let l3_slice, l3_set =
        Cq_hwsim.Machine.map_addr machine Cq_hwsim.Cpu_model.L3 sample
      in
      let filter addr =
        let ns, nt = Cq_hwsim.Machine.map_addr machine next addr in
        let ts, tt =
          Cq_hwsim.Machine.map_addr machine Cq_hwsim.Cpu_model.L3 addr
        in
        (not (ns = next_slice && nt = next_set))
        && not (ts = l3_slice && tt = l3_set)
      in
      Cq_hwsim.Machine.congruent_addresses machine level ~slice:target.slice
        ~set:target.set ~filter
        (2 * spec.Cq_hwsim.Cpu_model.assoc)

(* Model-derived margin: a quarter of the gap between the target level's
   hit latency and the next level's, mirroring how [calibrate] derives the
   margin from the measured medians. *)
let default_margin machine level =
  let model = Cq_hwsim.Machine.model machine in
  let gap =
    match level with
    | Cq_hwsim.Cpu_model.L1 ->
        model.Cq_hwsim.Cpu_model.l2.hit_latency
        - model.Cq_hwsim.Cpu_model.l1.hit_latency
    | Cq_hwsim.Cpu_model.L2 ->
        model.Cq_hwsim.Cpu_model.l3.hit_latency
        - model.Cq_hwsim.Cpu_model.l2.hit_latency
    | Cq_hwsim.Cpu_model.L3 ->
        model.Cq_hwsim.Cpu_model.memory_latency
        - model.Cq_hwsim.Cpu_model.l3.hit_latency
  in
  max 1 (gap / 4)

(* The latency a miss is served at: the next level's hit latency (memory
   for the last level). *)
let next_level_latency machine level =
  let model = Cq_hwsim.Machine.model machine in
  match level with
  | Cq_hwsim.Cpu_model.L1 -> model.Cq_hwsim.Cpu_model.l2.hit_latency
  | Cq_hwsim.Cpu_model.L2 -> model.Cq_hwsim.Cpu_model.l3.hit_latency
  | Cq_hwsim.Cpu_model.L3 -> model.Cq_hwsim.Cpu_model.memory_latency

let default_threshold machine level =
  let model = Cq_hwsim.Machine.model machine in
  match level with
  | Cq_hwsim.Cpu_model.L1 ->
      (model.Cq_hwsim.Cpu_model.l1.hit_latency
      + model.Cq_hwsim.Cpu_model.l2.hit_latency)
      / 2
  | Cq_hwsim.Cpu_model.L2 ->
      (model.Cq_hwsim.Cpu_model.l2.hit_latency
      + model.Cq_hwsim.Cpu_model.l3.hit_latency)
      / 2
  | Cq_hwsim.Cpu_model.L3 ->
      (model.Cq_hwsim.Cpu_model.l3.hit_latency
      + model.Cq_hwsim.Cpu_model.memory_latency)
      / 2

let create ?(disable_prefetchers = true) ?metrics machine (target : target) =
  let model = Cq_hwsim.Machine.model machine in
  let registry =
    match metrics with Some r -> r | None -> Cq_util.Metrics.create ()
  in
  let spec = Cq_hwsim.Cpu_model.spec model target.level in
  if target.slice < 0 || target.slice >= spec.Cq_hwsim.Cpu_model.slices then
    invalid_arg "Backend.create: slice out of range";
  if target.set < 0 || target.set >= spec.Cq_hwsim.Cpu_model.sets_per_slice then
    invalid_arg "Backend.create: set out of range";
  if disable_prefetchers then Cq_hwsim.Machine.set_prefetchers machine false;
  let sample_addr =
    List.hd
      (Cq_hwsim.Machine.congruent_addresses machine target.level
         ~slice:target.slice ~set:target.set 1)
  in
  let threshold = default_threshold machine target.level in
  let next_latency = next_level_latency machine target.level in
  {
    machine;
    target;
    block_addr = Hashtbl.create 64;
    pool = [];
    pool_cursor = 0;
    (* model-derived default; refined by [calibrate] *)
    threshold;
    filter_sets = build_filter_sets machine target;
    calib_sweep = build_calib_sweep machine target;
    calib_dirty = false;
    timed_loads = Cq_util.Metrics.counter registry "backend.timed_loads";
    filter_loads = Cq_util.Metrics.counter registry "backend.filter_loads";
    margin = default_margin machine target.level;
    window_classified = 0;
    window_near = 0;
    (* model-derived population centres; re-seeded by [calibrate] *)
    ewma_hit = float_of_int ((2 * threshold) - next_latency);
    ewma_miss = float_of_int next_latency;
    recalibrate_due = false;
    recalibrations = Cq_util.Metrics.counter registry "backend.recalibrations";
    (* mirrors the [calibrate] update with model medians *)
    miss_ceiling = (2 * next_latency) - threshold;
    (* one line further: a different set index at every cache level, so
       loading it never disturbs the target set *)
    settle_addr =
      sample_addr
      + (Cq_hwsim.Machine.model machine).Cq_hwsim.Cpu_model.line_size;
  }

(* Address of a block, allocating a fresh congruent address on first use. *)
let rec addr_of_block t block =
  match Hashtbl.find_opt t.block_addr block with
  | Some a -> a
  | None -> (
      match t.pool with
      | a :: rest ->
          t.pool <- rest;
          Hashtbl.add t.block_addr block a; (* cq-lint: allow hashtbl-add: find_opt miss *)
          a
      | [] ->
          (* The calibration sweep draws from the same congruent stream;
             block addresses must never alias it, or sweeping would touch
             the blocks under measurement. *)
          let not_in_sweep a = not (List.mem a t.calib_sweep) in
          let fresh =
            Cq_hwsim.Machine.congruent_addresses t.machine t.target.level
              ~slice:t.target.slice ~set:t.target.set ~start:t.pool_cursor
              ~filter:not_in_sweep 32
          in
          (match List.rev fresh with
          | last :: _ ->
              (* Resume enumeration just past the last stride step used. *)
              let model = Cq_hwsim.Machine.model t.machine in
              let spec = Cq_hwsim.Cpu_model.spec model t.target.level in
              let stride = spec.Cq_hwsim.Cpu_model.sets_per_slice * line_size t in
              t.pool_cursor <- ((last - (t.target.set * line_size t)) / stride) + 1
          | [] -> ());
          t.pool <- fresh;
          addr_of_block t block)

(* Cache filtering: push the just-accessed data out of the levels above the
   target by sweeping the pre-computed non-interfering eviction sets. *)
let filter_higher_levels t =
  List.iter
    (fun (_, addrs) ->
      List.iter
        (fun a ->
          Cq_util.Metrics.incr t.filter_loads;
          ignore (Cq_hwsim.Machine.load t.machine a))
        addrs)
    t.filter_sets

(* One timed, filtered load of a block; returns the measured cycles. *)
let timed_load t block =
  let addr = addr_of_block t block in
  (* For L2/L3 targets the block must not be served by a higher level. *)
  let cycles = Cq_hwsim.Machine.load t.machine addr in
  Cq_util.Metrics.incr t.timed_loads;
  filter_higher_levels t;
  cycles

let classify t cycles =
  (* Feed the population trackers (outlier-range readings excluded: a
     spiked latency says nothing about where the population sits). *)
  if cycles <= t.threshold then
    t.ewma_hit <- t.ewma_hit +. (ewma_alpha *. (float_of_int cycles -. t.ewma_hit))
  else if cycles <= t.miss_ceiling then
    t.ewma_miss <-
      t.ewma_miss +. (ewma_alpha *. (float_of_int cycles -. t.ewma_miss));
  let midpoint = (t.ewma_hit +. t.ewma_miss) /. 2.0 in
  if Float.abs (midpoint -. float_of_int t.threshold) > float_of_int t.margin /. 2.0
  then t.recalibrate_due <- true;
  (* Coarser backstop: latencies crowding the threshold mean the
     populations have moved (or widened) since calibration. *)
  t.window_classified <- t.window_classified + 1;
  if abs (cycles - t.threshold) <= t.margin then
    t.window_near <- t.window_near + 1;
  if t.window_classified >= drift_window then begin
    if
      float_of_int t.window_near
      > drift_fraction *. float_of_int t.window_classified
    then t.recalibrate_due <- true;
    t.window_classified <- 0;
    t.window_near <- 0
  end;
  if cycles <= t.threshold then Cq_cache.Cache_set.Hit else Cq_cache.Cache_set.Miss

(* A latency this far below the threshold cannot be a disguised miss:
   simulated (and real) noise sources — jitter, interrupt outliers, bursts,
   drift — only *add* cycles, so the frontend's voting layer may accept a
   single confident-hit sample without re-measuring. *)
let confident_hit t cycles = cycles <= t.threshold - t.margin

(* A latency clearly above the threshold but inside the next-level
   population is a confident miss: an outlier-spiked *hit* would land far
   beyond the ceiling (spikes add much more than the level gap), so the
   only reading that needs a vote on the miss side is one above the
   ceiling.  Only sound when spikes are large relative to the gap — which
   is what interrupt/SMI-style outliers look like. *)
let confident_miss t cycles =
  cycles > t.threshold + t.margin && cycles <= t.miss_ceiling

(* Let transient common-mode noise (an interrupt-storm burst) expire
   between vote re-measurements: issue untimed loads to a non-interfering
   address (different set at every level).  Without this, consecutive
   re-measurements of a disputed access can all land inside the same burst
   and outvote the truth. *)
let settle ?(loads = 8) t =
  for _ = 1 to loads do
    Cq_util.Metrics.incr t.filter_loads;
    ignore (Cq_hwsim.Machine.load t.machine t.settle_addr)
  done

let flush_block t block =
  let addr = addr_of_block t block in
  Cq_hwsim.Machine.clflush t.machine addr

(* Flush every address this backend has ever directed at the target set —
   assigned block addresses, the unassigned remainder of the pool, and the
   calibration sweep.  This is the building block of the Flush+Refill
   reset: afterwards the target set holds no valid line. *)
let flush_all_known t =
  Cq_util.Trace.with_span ~cat:"backend" "backend.flush" @@ fun () ->
  Hashtbl.iter (fun _ addr -> Cq_hwsim.Machine.clflush t.machine addr) t.block_addr;
  (* The unassigned pool has never been accessed, so it cannot be cached.
     The calibration sweep only needs flushing once after calibration. *)
  if t.calib_dirty then begin
    List.iter (Cq_hwsim.Machine.clflush t.machine) t.calib_sweep;
    t.calib_dirty <- false
  end

(* Execute one concrete query (an expanded MBL query): perform each
   operation in order and report hit/miss for the profiled ones. *)
let run_query t (q : Cq_mbl.Expand.query) =
  List.filter_map
    (fun (el : Cq_mbl.Expand.element) ->
      match el.tag with
      | Some Cq_mbl.Ast.Flush ->
          flush_block t el.block;
          None
      | Some Cq_mbl.Ast.Profile ->
          let cycles = timed_load t el.block in
          Some (classify t cycles)
      | None ->
          ignore (timed_load t el.block);
          None)
    q

(* As [run_query], but also returns raw cycle counts of profiled loads
   (used by the §7.2 cost experiment and by calibration diagnostics). *)
let run_query_timed t (q : Cq_mbl.Expand.query) =
  List.filter_map
    (fun (el : Cq_mbl.Expand.element) ->
      match el.tag with
      | Some Cq_mbl.Ast.Flush ->
          flush_block t el.block;
          None
      | Some Cq_mbl.Ast.Profile ->
          let cycles = timed_load t el.block in
          Some (classify t cycles, cycles)
      | None ->
          ignore (timed_load t el.block);
          None)
    q

(* Calibration: build latency samples for "hit at target level" and "served
   by the next level" and place the threshold between the two populations
   (Otsu).  Uses scratch blocks far away from the learning alphabet. *)
let calibrate ?(samples = 64) t =
  Cq_util.Trace.with_span ~cat:"backend" "backend.calibrate" @@ fun () ->
  t.calib_dirty <- true;
  let scratch i = Cq_cache.Block.aux (90_000 + i) in
  let hit_samples = ref [] and miss_samples = ref [] in
  for i = 0 to samples - 1 do
    let b = scratch i in
    (* First touch: fills the whole hierarchy. *)
    ignore (timed_load t b);
    (* Second touch after filtering: served by the target level. *)
    let hit_cycles = timed_load t b in
    hit_samples := hit_cycles :: !hit_samples;
    (* Evict from the target level only (keeping the next level's copy),
       or flush entirely when the target is the last level: the re-touch
       then samples the closest "miss" population the learner will see. *)
    (match t.calib_sweep with
    | [] -> flush_block t b
    | sweep ->
        List.iter (fun a -> ignore (Cq_hwsim.Machine.load t.machine a)) sweep;
        List.iter
          (fun a -> ignore (Cq_hwsim.Machine.load t.machine a))
          (List.rev sweep));
    let miss_cycles = timed_load t b in
    miss_samples := miss_cycles :: !miss_samples
  done;
  (* Medians are robust against interrupt/TLB-style outlier spikes, which
     would otherwise dominate a variance-based split like Otsu's. *)
  let med xs = Cq_util.Stats.median (List.map float_of_int xs) in
  let hit_med = med !hit_samples and miss_med = med !miss_samples in
  if miss_med > hit_med +. 1.0 then begin
    t.threshold <- int_of_float (Float.round ((hit_med +. miss_med) /. 2.0));
    t.margin <-
      max 1 (int_of_float (Float.round ((miss_med -. hit_med) /. 4.0)));
    t.miss_ceiling <- (2 * int_of_float (Float.round miss_med)) - t.threshold;
    (* Re-seed the drift estimator on the freshly measured populations. *)
    t.ewma_hit <- hit_med;
    t.ewma_miss <- miss_med
  end;
  (* else: populations indistinguishable; keep the model-derived default *)
  (t.threshold, !hit_samples, !miss_samples)

(* Portable calibration state, for session snapshots: a resumed run
   restores it instead of re-measuring, so it classifies exactly like the
   crashed one. *)
type calibration = {
  cal_threshold : int;
  cal_margin : int;
  cal_miss_ceiling : int;
  cal_ewma_hit : float;
  cal_ewma_miss : float;
}

let calibration t =
  {
    cal_threshold = t.threshold;
    cal_margin = t.margin;
    cal_miss_ceiling = t.miss_ceiling;
    cal_ewma_hit = t.ewma_hit;
    cal_ewma_miss = t.ewma_miss;
  }

let restore_calibration t cal =
  t.threshold <- cal.cal_threshold;
  t.margin <- cal.cal_margin;
  t.miss_ceiling <- cal.cal_miss_ceiling;
  t.ewma_hit <- cal.cal_ewma_hit;
  t.ewma_miss <- cal.cal_ewma_miss;
  t.window_classified <- 0;
  t.window_near <- 0;
  t.recalibrate_due <- false

(* Honour a pending drift-triggered recalibration.  Must only be called at
   a reset boundary: calibration sweeps the target set, so running it
   mid-query would corrupt the state under measurement.  Returns whether a
   recalibration ran. *)
let maybe_recalibrate ?samples t =
  if not t.recalibrate_due then false
  else begin
    t.recalibrate_due <- false;
    t.window_classified <- 0;
    t.window_near <- 0;
    Cq_util.Trace.instant ~cat:"backend" "backend.recalibrate";
    ignore (calibrate ?samples t);
    Cq_util.Metrics.incr t.recalibrations;
    true
  end
