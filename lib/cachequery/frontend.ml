(* The CacheQuery frontend (§4.2): expands MBL expressions, executes them
   through the backend with a configurable reset sequence and repetition
   count, memoizes query responses (the role LevelDB plays in the paper's
   implementation), and exposes the cache-oracle interface that Polca
   consumes. *)

type reset =
  | No_reset
  | Flush_refill (* clflush everything, then access '@' *)
  | Sequence of Cq_mbl.Ast.t (* e.g. '@ @' or 'D C B A @' *)
  | Flush_then of Cq_mbl.Ast.t (* clflush everything, then run the query *)

let reset_to_string = function
  | No_reset -> "none"
  | Flush_refill -> "F+R"
  | Sequence ast -> Cq_mbl.Ast.to_string ast
  | Flush_then ast -> "F+ " ^ Cq_mbl.Ast.to_string ast

type t = {
  backend : Backend.t;
  assoc : int; (* effective associativity of the target level *)
  mutable reset : reset;
  mutable repetitions : int;
  mutable memo_enabled : bool;
  memo :
    (Cq_cache.Block.t list Cq_util.Deep.t, Cq_cache.Cache_set.result list)
    Hashtbl.t;
  stats : Cq_cache.Oracle.stats;
}

let create ?(reset = Flush_refill) ?(repetitions = 1) backend =
  let machine = Backend.machine backend in
  let target = Backend.target backend in
  {
    backend;
    assoc = Cq_hwsim.Machine.effective_assoc machine target.Backend.level;
    reset;
    repetitions;
    memo_enabled = true;
    memo = Hashtbl.create 8192;
    stats = Cq_cache.Oracle.fresh_stats ();
  }

let backend t = t.backend
let assoc t = t.assoc
let stats t = t.stats
let set_reset t reset = t.reset <- reset
let reset_sequence t = t.reset
let set_repetitions t n =
  if n < 1 then invalid_arg "Frontend.set_repetitions: need >= 1";
  t.repetitions <- n

let set_memo t enabled = t.memo_enabled <- enabled
let clear_memo t = Hashtbl.reset t.memo

(* Expand an MBL expression at the target's associativity. *)
let expand t input = Cq_mbl.Expand.expand_string ~assoc:t.assoc input

let run_reset_ast t ast =
  match Cq_mbl.Expand.expand ~assoc:t.assoc ast with
  | [ q ] -> ignore (Backend.run_query t.backend q)
  | _ -> invalid_arg "Frontend: reset sequence must expand to a single query"

let apply_reset t =
  match t.reset with
  | No_reset -> ()
  | Flush_refill ->
      Backend.flush_all_known t.backend;
      run_reset_ast t Cq_mbl.Ast.At
  | Sequence ast -> run_reset_ast t ast
  | Flush_then ast ->
      Backend.flush_all_known t.backend;
      run_reset_ast t ast

(* Execute one expanded query: reset, run, and majority-vote over
   [repetitions] independent executions (each from reset). *)
let run_expanded t (q : Cq_mbl.Expand.query) =
  let one () =
    apply_reset t;
    Backend.run_query t.backend q
  in
  if t.repetitions = 1 then one ()
  else begin
    let runs = List.init t.repetitions (fun _ -> one ()) in
    match runs with
    | [] -> assert false
    | first :: _ ->
        List.mapi
          (fun i _ ->
            let hits =
              List.fold_left
                (fun acc run ->
                  if Cq_cache.Cache_set.result_is_hit (List.nth run i) then
                    acc + 1
                  else acc)
                0 runs
            in
            if 2 * hits > t.repetitions then Cq_cache.Cache_set.Hit
            else Cq_cache.Cache_set.Miss)
          first
  end

(* Run an MBL expression; returns each expanded query with the hit/miss
   outcomes of its profiled accesses. *)
let run_mbl t input =
  List.map (fun q -> (q, run_expanded t q)) (expand t input)

(* --- Oracle view (what Polca talks to) -------------------------------- *)

(* A Polca query accesses a sequence of blocks, profiling every access. *)
let query_blocks t blocks =
  let key = Cq_util.Deep.pack blocks in
  let cached = if t.memo_enabled then Hashtbl.find_opt t.memo key else None in
  match cached with
  | Some r ->
      t.stats.Cq_cache.Oracle.memo_hits <- t.stats.Cq_cache.Oracle.memo_hits + 1;
      r
  | None ->
      t.stats.Cq_cache.Oracle.queries <- t.stats.Cq_cache.Oracle.queries + 1;
      t.stats.Cq_cache.Oracle.block_accesses <-
        t.stats.Cq_cache.Oracle.block_accesses + List.length blocks;
      let q =
        List.map
          (fun b ->
            { Cq_mbl.Expand.block = b; tag = Some Cq_mbl.Ast.Profile })
          blocks
      in
      let r = run_expanded t q in
      if t.memo_enabled then Hashtbl.add t.memo key r;
      r

(* The device primitives behind the batch executor: reset via the
   configured reset sequence, a single classified load, and a whole-machine
   checkpoint.  Also handed to Polca (Oracle.ops) for session-mode
   execution. *)
let batch_ops t =
  let machine = Backend.machine t.backend in
  {
    Cq_cache.Batch.reset = (fun () -> apply_reset t);
    access =
      (fun b -> Backend.classify t.backend (Backend.timed_load t.backend b));
    checkpoint = (fun () -> Cq_hwsim.Machine.checkpoint machine);
  }

(* Batched Polca queries with prefix sharing: reset once, fold the batch
   into a trie, and walk it DFS with machine checkpoints at branch points
   (Machine.checkpoint) instead of a reset-and-replay per query.  Valid
   under the same assumption the memo table already relies on — a
   validated reset sequence makes query outcomes deterministic — so it is
   only used at repetitions = 1 (majority voting over noisy hardware
   re-executes whole queries and falls back to the sequential path). *)
let query_blocks_batch t batches =
  if t.repetitions <> 1 then List.map (query_blocks t) batches
  else begin
    let keyed = List.map (fun q -> (Cq_util.Deep.pack q, q)) batches in
    (* Deduplicated memo misses, in batch order. *)
    let missing = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (key, q) ->
        let known = t.memo_enabled && Hashtbl.mem t.memo key in
        if (not known) && not (Hashtbl.mem missing key) then begin
          Hashtbl.add missing key ();
          order := q :: !order
        end)
      keyed;
    let todo = List.rev !order in
    let fresh = Hashtbl.create 16 in
    (if todo <> [] then begin
       (* Assign block addresses in batch order, so the block->address map
          is independent of the trie traversal order and matches what
          sequential execution would have produced. *)
       List.iter
         (List.iter (fun b -> ignore (Backend.addr_of_block t.backend b)))
         todo;
       let naive, shared = Cq_cache.Batch.plan_cost todo in
       t.stats.Cq_cache.Oracle.batches <- t.stats.Cq_cache.Oracle.batches + 1;
       t.stats.Cq_cache.Oracle.batched_queries <-
         t.stats.Cq_cache.Oracle.batched_queries + List.length todo;
       t.stats.Cq_cache.Oracle.queries <-
         t.stats.Cq_cache.Oracle.queries + List.length todo;
       t.stats.Cq_cache.Oracle.block_accesses <-
         t.stats.Cq_cache.Oracle.block_accesses + naive;
       t.stats.Cq_cache.Oracle.accesses_saved <-
         t.stats.Cq_cache.Oracle.accesses_saved + (naive - shared);
       let answers = Cq_cache.Batch.run (batch_ops t) todo in
       List.iter2
         (fun q r ->
           let key = Cq_util.Deep.pack q in
           Hashtbl.replace fresh key r;
           if t.memo_enabled then Hashtbl.add t.memo key r)
         todo answers
     end);
    List.map
      (fun (key, q) ->
        match Hashtbl.find_opt fresh key with
        | Some r -> r
        | None -> (
            match
              if t.memo_enabled then Hashtbl.find_opt t.memo key else None
            with
            | Some r ->
                t.stats.Cq_cache.Oracle.memo_hits <-
                  t.stats.Cq_cache.Oracle.memo_hits + 1;
                r
            | None -> query_blocks t q))
      keyed
  end

let oracle t =
  {
    Cq_cache.Oracle.assoc = t.assoc;
    initial_content = Array.of_list (Cq_cache.Block.first t.assoc);
    query = query_blocks t;
    query_batch = query_blocks_batch t;
    prefix_sharing = t.repetitions = 1;
    ops = (if t.repetitions = 1 then Some (batch_ops t) else None);
  }
