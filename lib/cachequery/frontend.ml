(* The CacheQuery frontend (§4.2): expands MBL expressions, executes them
   through the backend with a configurable reset sequence and majority
   voting, memoizes query responses (the role LevelDB plays in the paper's
   implementation), and exposes the cache-oracle interface that Polca
   consumes. *)

type reset =
  | No_reset
  | Flush_refill (* clflush everything, then access '@' *)
  | Sequence of Cq_mbl.Ast.t (* e.g. '@ @' or 'D C B A @' *)
  | Flush_then of Cq_mbl.Ast.t (* clflush everything, then run the query *)

let reset_to_string = function
  | No_reset -> "none"
  | Flush_refill -> "F+R"
  | Sequence ast -> Cq_mbl.Ast.to_string ast
  | Flush_then ast -> "F+ " ^ Cq_mbl.Ast.to_string ast

(* Majority voting discipline.  Repetition counts must be odd: an even cap
   can tie, and any fixed tie-break silently biases the vote (the old code
   defaulted ties to Miss). *)
type voting =
  | Fixed of int (* always this many repetitions; 1 disables voting *)
  | Adaptive of { max : int }
      (* stop re-measuring as soon as the majority-of-[max] outcome is
         decided for every profiled position; never exceed [max] *)

let validate_voting = function
  | Fixed n ->
      if n < 1 then invalid_arg "Frontend: repetitions must be >= 1";
      if n <> 1 && n mod 2 = 0 then
        invalid_arg "Frontend: repetitions must be odd (even counts can tie)"
  | Adaptive { max } ->
      if max < 1 then invalid_arg "Frontend: max repetitions must be >= 1";
      if max <> 1 && max mod 2 = 0 then
        invalid_arg
          "Frontend: max repetitions must be odd (even counts can tie)"

let voting_to_string = function
  | Fixed n -> Printf.sprintf "fixed %d" n
  | Adaptive { max } -> Printf.sprintf "adaptive <= %d" max

type t = {
  backend : Backend.t;
  assoc : int; (* effective associativity of the target level *)
  mutable reset : reset;
  mutable voting : voting;
  mutable memo_enabled : bool;
  max_memo_entries : int option; (* clear-on-overflow bound *)
  memo :
    (Cq_cache.Block.t list Cq_util.Deep.t, Cq_cache.Cache_set.result list)
    Hashtbl.t;
  stats : Cq_cache.Oracle.stats;
  metrics : Cq_util.Metrics.t option; (* for the static-analysis counters *)
}

let create ?(reset = Flush_refill) ?repetitions ?voting ?max_memo_entries
    ?metrics backend =
  let voting =
    match (voting, repetitions) with
    | Some v, _ -> v
    | None, Some n -> Fixed n
    | None, None -> Fixed 1
  in
  validate_voting voting;
  (match max_memo_entries with
  | Some n when n < 1 ->
      invalid_arg "Frontend.create: max_memo_entries must be >= 1"
  | _ -> ());
  let machine = Backend.machine backend in
  let target = Backend.target backend in
  {
    backend;
    assoc = Cq_hwsim.Machine.effective_assoc machine target.Backend.level;
    reset;
    voting;
    memo_enabled = true;
    max_memo_entries;
    memo = Hashtbl.create 8192;
    (* The frontend is the pipeline's *device* layer; distinct prefix so
       it can share a registry with the learn-level oracle wrappers. *)
    stats = Cq_cache.Oracle.fresh_stats ?registry:metrics ~prefix:"frontend" ();
    metrics;
  }

let backend t = t.backend
let assoc t = t.assoc
let stats t = t.stats
let set_reset t reset = t.reset <- reset
let reset_sequence t = t.reset

let set_voting t v =
  validate_voting v;
  t.voting <- v

let voting t = t.voting

let set_repetitions t n = set_voting t (Fixed n)

let max_repetitions t =
  match t.voting with Fixed n -> n | Adaptive { max } -> max

let set_memo t enabled = t.memo_enabled <- enabled
let clear_memo t = Hashtbl.reset t.memo
let memo_size t = Hashtbl.length t.memo

(* Store a memo binding.  [Hashtbl.replace], not [add]: re-inserting the
   same key (races between the batch path and the sequential fallback, or
   re-population after an overflow clear) must not pile up duplicate
   bindings that distort [Hashtbl.length] and shadow on removal. *)
let memo_store t key r =
  (match t.max_memo_entries with
  | Some n when Hashtbl.length t.memo >= n && not (Hashtbl.mem t.memo key) ->
      Hashtbl.reset t.memo;
      Cq_util.Metrics.incr t.stats.Cq_cache.Oracle.memo_overflows
  | _ -> ());
  Hashtbl.replace t.memo key r

(* Statically analyse an MBL expression against the target's
   associativity, without expanding or executing anything. *)
let check t input =
  Cq_analysis.Mbl_check.check_string ?registry:t.metrics ~assoc:t.assoc input

(* Expand an MBL expression at the target's associativity.  The static
   simplifier runs first: it flattens the AST when that provably preserves
   the expansion (identical query list), and passes rejected or delicate
   programs through untouched — so this raises exactly the
   [Expansion_error]s it always did. *)
let expand t input =
  let ast = Cq_mbl.Parser.parse input in
  let ast = Cq_analysis.Mbl_check.simplify ~assoc:t.assoc ast in
  Cq_mbl.Expand.expand ~assoc:t.assoc ast

let run_reset_ast t ast =
  match Cq_mbl.Expand.expand ~assoc:t.assoc ast with
  | [ q ] -> ignore (Backend.run_query t.backend q)
  | _ -> invalid_arg "Frontend: reset sequence must expand to a single query"

let apply_reset t =
  Cq_util.Trace.with_span ~cat:"frontend" "frontend.reset" @@ fun () ->
  (* A reset boundary is the only safe point to honour a drift-triggered
     recalibration: calibration sweeps the target set, and the flushing
     resets below wipe its traces before the next query starts.  Non-flush
     resets cannot clean up after a sweep, so the request stays pending. *)
  (match t.reset with
  | Flush_refill | Flush_then _ ->
      ignore (Backend.maybe_recalibrate t.backend : bool)
  | No_reset | Sequence _ -> ());
  match t.reset with
  | No_reset -> ()
  | Flush_refill ->
      Backend.flush_all_known t.backend;
      run_reset_ast t Cq_mbl.Ast.At
  | Sequence ast -> run_reset_ast t ast
  | Flush_then ast ->
      Backend.flush_all_known t.backend;
      run_reset_ast t ast

(* Execute one expanded query: reset, run, and majority-vote over whole-
   query re-executions.  Returns the voted outcomes and the number of runs
   actually executed.  Votes are tallied with one pass per run over
   per-position counters (the old code was O(L²): [List.nth run i] inside
   [List.mapi]).  Under [Adaptive] voting a position is decided once its
   leader holds a strict majority of the cap — no sequence of further runs
   can overturn it — and execution stops when every position is decided. *)
let run_expanded_counted t (q : Cq_mbl.Expand.query) =
  let one () =
    apply_reset t;
    Backend.run_query t.backend q
  in
  match t.voting with
  | Fixed 1 | Adaptive { max = 1 } -> (one (), 1)
  | (Fixed cap | Adaptive { max = cap }) as v ->
      let first = one () in
      let len = List.length first in
      let hits = Array.make len 0 in
      let tally run =
        List.iteri
          (fun i r ->
            if Cq_cache.Cache_set.result_is_hit r then hits.(i) <- hits.(i) + 1)
          run
      in
      tally first;
      let runs = ref 1 in
      let decided i =
        2 * hits.(i) > cap || 2 * (!runs - hits.(i)) > cap
      in
      let all_decided () =
        match v with
        | Fixed _ -> false (* fixed voting always runs the full cap *)
        | Adaptive _ ->
            let ok = ref true in
            for i = 0 to len - 1 do
              if not (decided i) then ok := false
            done;
            !ok
      in
      while !runs < cap && not (all_decided ()) do
        tally (one ());
        incr runs
      done;
      ( List.init len (fun i ->
            if 2 * hits.(i) > cap then Cq_cache.Cache_set.Hit
            else Cq_cache.Cache_set.Miss),
        !runs )

let run_expanded t q = fst (run_expanded_counted t q)

(* Run an MBL expression; returns each expanded query with the hit/miss
   outcomes of its profiled accesses. *)
let run_mbl t input =
  List.map (fun q -> (q, run_expanded t q)) (expand t input)

(* --- Oracle view (what Polca talks to) -------------------------------- *)

(* One voted access — the primitive that keeps session mode alive under
   voting.  Instead of replaying whole queries per repetition, take a
   machine checkpoint *before* the access and re-run only this access when
   its outcome is disputed.  [rewind_noise:false] restores the
   architectural state but lets the measurement-noise stream advance, so
   re-measurements draw independent noise (re-measuring under replayed
   noise would reproduce the same corrupted latency [max]-fold).  State
   transitions are latency-independent, so the post-access state is the
   same whichever sample ran last.

   Fast paths: noise only *adds* cycles, so a single sample far below the
   threshold ([Backend.confident_hit]) — or inside the next-level latency
   population ([Backend.confident_miss]) — is accepted without
   re-measuring; only readings crowding the threshold or beyond the miss
   ceiling (potential outlier spikes) are voted.  This is where adaptive
   voting wins most of its timed loads back.  Between re-measurements,
   [Backend.settle] lets common-mode noise bursts expire so consecutive
   samples of a disputed access cannot all land inside one burst. *)
let voted_access t b =
  match t.voting with
  | Fixed 1 | Adaptive { max = 1 } ->
      Backend.classify t.backend (Backend.timed_load t.backend b)
  | (Fixed cap | Adaptive { max = cap }) as v ->
      let adaptive = match v with Adaptive _ -> true | Fixed _ -> false in
      let machine = Backend.machine t.backend in
      let restore =
        Cq_hwsim.Machine.checkpoint ~rewind_noise:false machine
      in
      let cycles = Backend.timed_load t.backend b in
      if
        adaptive
        && (Backend.confident_hit t.backend cycles
           || Backend.confident_miss t.backend cycles)
      then
        (* still classify: the drift detector must see this latency *)
        Backend.classify t.backend cycles
      else begin
        let hits = ref 0 and runs = ref 1 in
        let sample cycles =
          if
            Cq_cache.Cache_set.result_is_hit
              (Backend.classify t.backend cycles)
          then incr hits
        in
        sample cycles;
        let decided () =
          adaptive && (2 * !hits > cap || 2 * (!runs - !hits) > cap)
        in
        while !runs < cap && not (decided ()) do
          restore ();
          Backend.settle t.backend;
          Cq_util.Metrics.incr t.stats.Cq_cache.Oracle.vote_runs;
          sample (Backend.timed_load t.backend b);
          incr runs
        done;
        Cq_util.Metrics.observe t.stats.Cq_cache.Oracle.vote_escalations
          (float_of_int !runs);
        if 2 * !hits > cap then Cq_cache.Cache_set.Hit
        else Cq_cache.Cache_set.Miss
      end

(* The device primitives behind the batch executor: reset via the
   configured reset sequence, a single voted access, and a whole-machine
   checkpoint.  Also handed to Polca (Oracle.ops) for session-mode
   execution — voting now happens *inside* [access], so session mode and
   prefix sharing stay enabled at any repetition setting. *)
let batch_ops t =
  let machine = Backend.machine t.backend in
  {
    Cq_cache.Batch.reset = (fun () -> apply_reset t);
    access = (fun b -> voted_access t b);
    checkpoint = (fun () -> Cq_hwsim.Machine.checkpoint machine);
  }

(* A Polca query accesses a sequence of blocks, profiling every access.
   Executed through the voted-access primitive (reset once, then one voted
   access per block) rather than whole-query replay. *)
let query_blocks t blocks =
  let key = Cq_util.Deep.pack blocks in
  let cached = if t.memo_enabled then Hashtbl.find_opt t.memo key else None in
  match cached with
  | Some r ->
      Cq_util.Metrics.incr t.stats.Cq_cache.Oracle.memo_hits;
      r
  | None ->
      (fun run ->
        if Cq_util.Trace.enabled () then
          Cq_util.Trace.with_span ~cat:"frontend"
            ~args:[ ("blocks", string_of_int (List.length blocks)) ]
            "frontend.query" run
        else run ())
      @@ fun () ->
      Cq_util.Metrics.incr t.stats.Cq_cache.Oracle.queries;
      let loads0 = Backend.timed_loads t.backend in
      let votes0 = Cq_util.Metrics.value t.stats.Cq_cache.Oracle.vote_runs in
      apply_reset t;
      let r = List.map (voted_access t) blocks in
      (* Count *actual* executed accesses (base run + vote re-measurements),
         not the logical per-query length: with repetitions > 1 the old
         accounting made every cost column lie. *)
      Cq_util.Metrics.add t.stats.Cq_cache.Oracle.block_accesses
        (List.length blocks
        + (Cq_util.Metrics.value t.stats.Cq_cache.Oracle.vote_runs - votes0));
      Cq_util.Metrics.add t.stats.Cq_cache.Oracle.timed_loads
        (Backend.timed_loads t.backend - loads0);
      if t.memo_enabled then memo_store t key r;
      r

(* Batched Polca queries with prefix sharing: reset once, fold the batch
   into a trie, and walk it DFS with machine checkpoints at branch points
   (Machine.checkpoint) instead of a reset-and-replay per query.  Valid
   under the same assumption the memo table already relies on — a
   validated reset sequence makes query outcomes deterministic — and,
   since voting moved inside the access primitive, at *any* repetition
   setting (disputed accesses re-run from a pre-access checkpoint; the
   trie structure is unaffected). *)
let query_blocks_batch t batches =
  let keyed = List.map (fun q -> (Cq_util.Deep.pack q, q)) batches in
  (* Deduplicated memo misses, in batch order. *)
  let missing = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (key, q) ->
      let known = t.memo_enabled && Hashtbl.mem t.memo key in
      if (not known) && not (Hashtbl.mem missing key) then begin
        Hashtbl.replace missing key ();
        order := q :: !order
      end)
    keyed;
  let todo = List.rev !order in
  let fresh = Hashtbl.create 16 in
  (if todo <> [] then begin
     (fun run ->
       if Cq_util.Trace.enabled () then
         Cq_util.Trace.with_span ~cat:"frontend"
           ~args:[ ("queries", string_of_int (List.length todo)) ]
           "frontend.batch" run
       else run ())
     @@ fun () ->
     (* Assign block addresses in batch order, so the block->address map
        is independent of the trie traversal order and matches what
        sequential execution would have produced. *)
     List.iter
       (List.iter (fun b -> ignore (Backend.addr_of_block t.backend b)))
       todo;
     let naive, shared = Cq_cache.Batch.plan_cost todo in
     Cq_util.Metrics.incr t.stats.Cq_cache.Oracle.batches;
     Cq_util.Metrics.add t.stats.Cq_cache.Oracle.batched_queries
       (List.length todo);
     Cq_util.Metrics.add t.stats.Cq_cache.Oracle.queries (List.length todo);
     Cq_util.Metrics.add t.stats.Cq_cache.Oracle.accesses_saved
       (naive - shared);
     Cq_util.Metrics.observe t.stats.Cq_cache.Oracle.batch_depth
       (float_of_int (List.length todo));
     let loads0 = Backend.timed_loads t.backend in
     let votes0 = Cq_util.Metrics.value t.stats.Cq_cache.Oracle.vote_runs in
     let answers = Cq_cache.Batch.run (batch_ops t) todo in
     (* Actual executed accesses: the shared trie walk plus whatever the
        voting layer re-measured. *)
     Cq_util.Metrics.add t.stats.Cq_cache.Oracle.block_accesses
       (shared
       + (Cq_util.Metrics.value t.stats.Cq_cache.Oracle.vote_runs - votes0));
     Cq_util.Metrics.add t.stats.Cq_cache.Oracle.timed_loads
       (Backend.timed_loads t.backend - loads0);
     List.iter2
       (fun q r ->
         let key = Cq_util.Deep.pack q in
         Hashtbl.replace fresh key r;
         if t.memo_enabled then memo_store t key r)
       todo answers
   end);
  List.map
    (fun (key, q) ->
      match Hashtbl.find_opt fresh key with
      | Some r -> r
      | None -> (
          match
            if t.memo_enabled then Hashtbl.find_opt t.memo key else None
          with
          | Some r ->
              Cq_util.Metrics.incr t.stats.Cq_cache.Oracle.memo_hits;
              r
          | None -> query_blocks t q))
    keyed

let oracle t =
  {
    Cq_cache.Oracle.assoc = t.assoc;
    initial_content = Array.of_list (Cq_cache.Block.first t.assoc);
    query = query_blocks t;
    query_batch = query_blocks_batch t;
    (* Voting lives inside the access primitive now, so the batched path
       and session mode stay available at every repetition setting. *)
    prefix_sharing = true;
    ops = Some (batch_ops t);
  }
