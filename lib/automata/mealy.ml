(* Deterministic finite-state Mealy machines over a dense integer input
   alphabet [0 .. n_inputs-1] and a polymorphic output alphabet.

   Replacement policies (Def. 2.1 of the paper) are Mealy machines with
   inputs {Ln(0), ..., Ln(n-1), Evct}; the learner produces machines in this
   representation and the synthesiser validates candidate programs against
   them.  Keeping inputs dense lets us store transitions as flat arrays. *)

type 'o t = {
  n_states : int;
  init : int;
  n_inputs : int;
  next : int array array; (* next.(s).(i) : successor state *)
  out : 'o array array;   (* out.(s).(i)  : emitted output *)
}

let n_states t = t.n_states
let n_inputs t = t.n_inputs
let init t = t.init

let check_valid t =
  if t.n_states <= 0 then invalid_arg "Mealy: empty state set";
  if t.n_inputs <= 0 then invalid_arg "Mealy: empty input alphabet";
  if t.init < 0 || t.init >= t.n_states then invalid_arg "Mealy: bad initial state";
  if Array.length t.next <> t.n_states || Array.length t.out <> t.n_states then
    invalid_arg "Mealy: transition table size mismatch";
  Array.iteri
    (fun s row ->
      if Array.length row <> t.n_inputs || Array.length t.out.(s) <> t.n_inputs then
        invalid_arg "Mealy: transition row size mismatch";
      Array.iter
        (fun s' ->
          if s' < 0 || s' >= t.n_states then invalid_arg "Mealy: dangling transition")
        row)
    t.next

let make ~init ~n_inputs ~next ~out =
  let t = { n_states = Array.length next; init; n_inputs; next; out } in
  check_valid t;
  t

let step t s i =
  if i < 0 || i >= t.n_inputs then invalid_arg "Mealy.step: input out of range";
  (t.next.(s).(i), t.out.(s).(i))

let next_state t s i = fst (step t s i)
let output t s i = snd (step t s i)

let run_from t s word =
  let state = ref s in
  List.map
    (fun i ->
      let s', o = step t !state i in
      state := s';
      o)
    word

let run t word = run_from t t.init word

let state_after t word = List.fold_left (fun s i -> next_state t s i) t.init word

(* --- Compiled evaluation -------------------------------------------------

   Conformance testing and counterexample processing evaluate the *same*
   hypothesis on millions of words.  [step] pays an input bounds check, two
   nested array indirections, and a tuple allocation per symbol; [run]
   additionally allocates the output list.  Compiling the hypothesis once
   flattens both tables into single [s * k + i]-indexed vectors — [Bytes]
   when every state id fits a byte, an int array otherwise — and the
   walkers below touch them with unsafe reads after one predictable
   per-symbol range check on the input.  No allocation on the agree/reject
   paths. *)

type transitions =
  | Narrow of Bytes.t    (* n_states <= 256: one byte per successor *)
  | Wide of int array

type 'o compiled = {
  c_states : int;
  c_k : int;
  c_init : int;
  c_next : transitions; (* successor of (s, i) at index s * c_k + i *)
  c_out : 'o array;     (* output of (s, i) at index s * c_k + i *)
  c_code : int array;   (* dictionary code of [c_out.(idx)] *)
  c_dict : 'o array;    (* distinct outputs; [c_dict.(code)] decodes *)
}

let compile t =
  let n = t.n_states and k = t.n_inputs in
  let size = n * k in
  let c_next =
    if n <= 256 then begin
      let b = Bytes.create size in
      for s = 0 to n - 1 do
        let row = t.next.(s) in
        for i = 0 to k - 1 do
          Bytes.unsafe_set b ((s * k) + i) (Char.unsafe_chr row.(i))
        done
      done;
      Narrow b
    end
    else begin
      let a = Array.make size 0 in
      for s = 0 to n - 1 do
        let row = t.next.(s) in
        for i = 0 to k - 1 do
          Array.unsafe_set a ((s * k) + i) row.(i)
        done
      done;
      Wide a
    end
  in
  let c_out = Array.make size t.out.(0).(0) in
  for s = 0 to n - 1 do
    let row = t.out.(s) in
    for i = 0 to k - 1 do
      Array.unsafe_set c_out ((s * k) + i) row.(i)
    done
  done;
  (* Output dictionary: assign each distinct output a small int code so
     the hot walkers below can compare outputs with int equality instead
     of polymorphic [caml_equal].  The alphabet of outputs is tiny (cache
     line labels), so a linear scan per table entry is fine here — this
     runs once per compile, not per evaluation. *)
  let dict = ref [] and n_dict = ref 0 in
  let c_code =
    Array.map
      (fun o ->
        let rec find c = function
          | [] ->
              dict := o :: !dict;
              incr n_dict;
              !n_dict - 1
          | o' :: rest -> if o' = o then c else find (c - 1) rest
        in
        find (!n_dict - 1) !dict)
      c_out
  in
  let c_dict = Array.make (max 1 !n_dict) t.out.(0).(0) in
  List.iteri (fun j o -> c_dict.(!n_dict - 1 - j) <- o) !dict;
  { c_states = n; c_k = k; c_init = t.init; c_next; c_out; c_code; c_dict }

let compiled_n_states c = c.c_states
let compiled_n_inputs c = c.c_k
let compiled_init c = c.c_init

let bad_input () = invalid_arg "Mealy.compiled: input out of range"

(* cq-lint: hot-loop — the walkers below run once per conformance-suite
   word (millions of calls per learn); per-symbol allocation is a bug. *)

let compiled_state_after_from c s word =
  let k = c.c_k in
  match c.c_next with
  | Narrow b ->
      let rec go s = function
        | [] -> s
        | i :: w ->
            if i < 0 || i >= k then bad_input ();
            go (Char.code (Bytes.unsafe_get b ((s * k) + i))) w
      in
      go s word
  | Wide a ->
      let rec go s = function
        | [] -> s
        | i :: w ->
            if i < 0 || i >= k then bad_input ();
            go (Array.unsafe_get a ((s * k) + i)) w
      in
      go s word

let compiled_state_after c word = compiled_state_after_from c c.c_init word

(* [agrees_from c s word expected]: does the machine, started in [s], emit
   exactly [expected] on [word]?  Stops at the first mismatch; allocates
   nothing. *)
let agrees_from c s word expected =
  let k = c.c_k and out = c.c_out in
  match c.c_next with
  | Narrow b ->
      let rec go s word exp =
        match (word, exp) with
        | [], [] -> true
        | i :: w, o :: os ->
            if i < 0 || i >= k then bad_input ();
            let idx = (s * k) + i in
            Array.unsafe_get out idx = o
            && go (Char.code (Bytes.unsafe_get b idx)) w os
        | _ -> false
      in
      go s word expected
  | Wide a ->
      let rec go s word exp =
        match (word, exp) with
        | [], [] -> true
        | i :: w, o :: os ->
            if i < 0 || i >= k then bad_input ();
            let idx = (s * k) + i in
            Array.unsafe_get out idx = o
            && go (Array.unsafe_get a idx) w os
        | _ -> false
      in
      go s word expected

let agrees c word expected = agrees_from c c.c_init word expected

(* Pre-encoded comparison: callers that evaluate the same recorded trace
   many times (Rivest–Schapire's binary search, counterexample
   re-processing across refinements) encode the expected outputs into
   dictionary codes once, then every evaluation is an int-only walk. *)

let encode_output c o =
  let d = c.c_dict in
  let n = Array.length d in
  let rec find i = if i >= n then -1 else if d.(i) = o then i else find (i + 1) in
  find 0

let encode_outputs c expected =
  (* Outputs the machine can never emit encode to -1, a code no table
     entry carries, so [agrees_codes] rejects them without a special
     case. *)
  (* cq-lint: allow hot-loop-alloc — encoding runs once per trace, not per evaluation *)
  Array.of_list (List.map (encode_output c) expected)

let agrees_codes_from c s word codes =
  let k = c.c_k and code = c.c_code in
  let m = Array.length codes in
  match c.c_next with
  | Narrow b ->
      let rec go s j = function
        | [] -> j = m
        | i :: w ->
            if i < 0 || i >= k then bad_input ();
            j < m
            &&
            let idx = (s * k) + i in
            Array.unsafe_get code idx = Array.unsafe_get codes j
            && go (Char.code (Bytes.unsafe_get b idx)) (j + 1) w
      in
      go s 0 word
  | Wide a ->
      let rec go s j = function
        | [] -> j = m
        | i :: w ->
            if i < 0 || i >= k then bad_input ();
            j < m
            &&
            let idx = (s * k) + i in
            Array.unsafe_get code idx = Array.unsafe_get codes j
            && go (Array.unsafe_get a idx) (j + 1) w
      in
      go s 0 word

let agrees_codes c word codes = agrees_codes_from c c.c_init word codes

(* Fully pre-encoded trace: the word is packed into an int array with
   inputs range-checked once at encode time, so the walk is a pure
   array loop — no list pointer-chasing and no per-symbol bounds test. *)
type trace = { t_word : int array; t_codes : int array }

let encode_trace c word expected =
  let k = c.c_k in
  let t_word = Array.of_list word in
  (* cq-lint: allow hot-loop-alloc — encoding runs once per trace, not per evaluation *)
  Array.iter (fun i -> if i < 0 || i >= k then bad_input ()) t_word;
  { t_word; t_codes = encode_outputs c expected }

let agrees_trace_from c s tr =
  let k = c.c_k and code = c.c_code in
  let w = tr.t_word and codes = tr.t_codes in
  let n = Array.length w in
  Array.length codes = n
  &&
  match c.c_next with
  | Narrow b ->
      let rec go s j =
        j >= n
        ||
        let idx = (s * k) + Array.unsafe_get w j in
        Array.unsafe_get code idx = Array.unsafe_get codes j
        && go (Char.code (Bytes.unsafe_get b idx)) (j + 1)
      in
      go s 0
  | Wide a ->
      let rec go s j =
        j >= n
        ||
        let idx = (s * k) + Array.unsafe_get w j in
        Array.unsafe_get code idx = Array.unsafe_get codes j
        && go (Array.unsafe_get a idx) (j + 1)
      in
      go s 0

let agrees_trace c tr = agrees_trace_from c c.c_init tr

(* Index of the first position where the machine's output differs from
   [expected] (or where one sequence ends early); [None] when they agree
   over the whole word. *)
let first_disagreement c word expected =
  let k = c.c_k and out = c.c_out in
  let next =
    match c.c_next with
    (* cq-lint: allow hot-loop-alloc — one closure per call, not per symbol *)
    | Narrow b -> fun idx -> Char.code (Bytes.unsafe_get b idx)
    (* cq-lint: allow hot-loop-alloc — one closure per call, not per symbol *)
    | Wide a -> fun idx -> Array.unsafe_get a idx
  in
  let rec go n s word exp =
    match (word, exp) with
    | [], [] -> None
    | i :: w, o :: os ->
        if i < 0 || i >= k then bad_input ();
        let idx = (s * k) + i in
        if Array.unsafe_get out idx <> o then Some n
        else go (n + 1) (next idx) w os
    | _ -> Some n
  in
  go 0 c.c_init word expected

let compiled_run_from c s word =
  let k = c.c_k and out = c.c_out in
  let next =
    match c.c_next with
    (* cq-lint: allow hot-loop-alloc — one closure per call, not per symbol *)
    | Narrow b -> fun idx -> Char.code (Bytes.unsafe_get b idx)
    (* cq-lint: allow hot-loop-alloc — one closure per call, not per symbol *)
    | Wide a -> fun idx -> Array.unsafe_get a idx
  in
  let state = ref s in
  (* cq-lint: allow hot-loop-alloc — the output list is the result *)
  List.map
    (* cq-lint: allow hot-loop-alloc — the output list is the result *)
    (fun i ->
      if i < 0 || i >= k then bad_input ();
      let idx = (!state * k) + i in
      state := next idx;
      Array.unsafe_get out idx)
    word

let compiled_run c word = compiled_run_from c c.c_init word

(* Streaming stepper: a compiled machine plus a mutable cursor.  The
   replay engine interleaves its own cache bookkeeping between automaton
   steps, so the whole-trace walkers above don't fit; this exposes the
   same unsafe table walk one input at a time.  Outputs are returned by
   physical sharing from [c_out]/[c_dict] — nothing allocates per step. *)

type 'o stepper = { sc : 'o compiled; mutable s : int }

let stepper ?state c =
  let s = match state with None -> c.c_init | Some s -> s in
  if s < 0 || s >= c.c_states then
    invalid_arg "Mealy.stepper: state out of range";
  { sc = c; s }

let stepper_state st = st.s

let stepper_reset ?state st =
  let s = match state with None -> st.sc.c_init | Some s -> s in
  if s < 0 || s >= st.sc.c_states then
    invalid_arg "Mealy.stepper_reset: state out of range";
  st.s <- s

let stepper_step st i =
  let c = st.sc in
  let k = c.c_k in
  if i < 0 || i >= k then bad_input ();
  let idx = (st.s * k) + i in
  (match c.c_next with
  | Narrow b -> st.s <- Char.code (Bytes.unsafe_get b idx)
  | Wide a -> st.s <- Array.unsafe_get a idx);
  Array.unsafe_get c.c_out idx

let stepper_step_code st i =
  let c = st.sc in
  let k = c.c_k in
  if i < 0 || i >= k then bad_input ();
  let idx = (st.s * k) + i in
  (match c.c_next with
  | Narrow b -> st.s <- Char.code (Bytes.unsafe_get b idx)
  | Wide a -> st.s <- Array.unsafe_get a idx);
  Array.unsafe_get c.c_code idx

let decode_output c code =
  if code < 0 || code >= Array.length c.c_dict then
    invalid_arg "Mealy.decode_output: bad code";
  c.c_dict.(code)

(* cq-lint: end hot-loop *)

(* Enumerate the reachable part of an implicit machine given by a step
   function over arbitrary (immutable, structurally comparable) states.
   This is how concrete policy implementations are turned into explicit
   automata for ground-truth state counts and equivalence checking. *)
let of_fun ~init ~n_inputs ~step ~max_states =
  let exception Too_many_states in
  let index : ('s Cq_util.Deep.t, int) Hashtbl.t = Hashtbl.create 97 in
  let by_id : (int, 's) Hashtbl.t = Hashtbl.create 97 in
  let count = ref 0 in
  let intern s =
    let key = Cq_util.Deep.pack s in
    match Hashtbl.find_opt index key with
    | Some id -> id
    | None ->
        if !count >= max_states then raise Too_many_states;
        let id = !count in
        incr count;
        (* cq-lint: allow hashtbl-add: fresh key (find_opt miss) and fresh id *)
        Hashtbl.add index key id;
        (* cq-lint: allow hashtbl-add: fresh id from the counter *)
        Hashtbl.add by_id id s;
        id
  in
  let _ = intern init in
  let rows_next = ref [] and rows_out = ref [] in
  (* Worklist BFS: process states in id order; new states get fresh ids, so
     the numbering is the deterministic BFS order from the initial state. *)
  let processed = ref 0 in
  (try
     while !processed < !count do
       let s = Hashtbl.find by_id !processed in
       let nrow = Array.make n_inputs 0 in
       let orow = ref [] in
       for i = 0 to n_inputs - 1 do
         let s', o = step s i in
         nrow.(i) <- intern s';
         orow := o :: !orow
       done;
       rows_next := nrow :: !rows_next;
       rows_out := Array.of_list (List.rev !orow) :: !rows_out;
       incr processed
     done
   with Too_many_states ->
     failwith (Printf.sprintf "Mealy.of_fun: more than %d reachable states" max_states));
  let next = Array.of_list (List.rev !rows_next) in
  let out = Array.of_list (List.rev !rows_out) in
  make ~init:0 ~n_inputs ~next ~out

(* Moore-style partition refinement adapted to Mealy machines: the initial
   partition groups states with identical output rows, then blocks are split
   until successor blocks stabilise.  O(k * n^2) worst case, plenty for the
   sizes in this repository (tens of thousands of states). *)
let minimize t =
  let n = t.n_states and k = t.n_inputs in
  let block = Array.make n 0 in
  (* Initial partition by output signature. *)
  let sig_index = Hashtbl.create 97 in
  let n_blocks = ref 0 in
  for s = 0 to n - 1 do
    let key = Cq_util.Deep.pack (Array.to_list t.out.(s)) in
    match Hashtbl.find_opt sig_index key with
    | Some b -> block.(s) <- b
    | None ->
        Hashtbl.add sig_index key !n_blocks; (* cq-lint: allow hashtbl-add: find_opt miss *)
        block.(s) <- !n_blocks;
        incr n_blocks
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    let split_index = Hashtbl.create 97 in
    let new_block = Array.make n 0 in
    let next_id = ref 0 in
    for s = 0 to n - 1 do
      let key =
        Cq_util.Deep.pack
          ( block.(s),
            Array.to_list (Array.init k (fun i -> block.(t.next.(s).(i)))) )
      in
      match Hashtbl.find_opt split_index key with
      | Some b -> new_block.(s) <- b
      | None ->
          Hashtbl.add split_index key !next_id; (* cq-lint: allow hashtbl-add: find_opt miss *)
          new_block.(s) <- !next_id;
          incr next_id
    done;
    if !next_id <> !n_blocks then begin
      changed := true;
      n_blocks := !next_id;
      Array.blit new_block 0 block 0 n
    end
  done;
  (* Rebuild over blocks, renumbering so the initial block is reachable-first
     (BFS order) for a canonical result on connected machines. *)
  let nb = !n_blocks in
  let repr = Array.make nb (-1) in
  for s = n - 1 downto 0 do
    repr.(block.(s)) <- s
  done;
  let order = Array.make nb (-1) in
  let pos = Array.make nb (-1) in
  let queue = Queue.create () in
  let count = ref 0 in
  let visit b =
    if pos.(b) = -1 then begin
      pos.(b) <- !count;
      order.(!count) <- b;
      incr count;
      Queue.add b queue
    end
  in
  visit block.(t.init);
  while not (Queue.is_empty queue) do
    let b = Queue.take queue in
    let s = repr.(b) in
    for i = 0 to k - 1 do
      visit block.(t.next.(s).(i))
    done
  done;
  let reach = !count in
  let next = Array.init reach (fun bi ->
      let s = repr.(order.(bi)) in
      Array.init k (fun i -> pos.(block.(t.next.(s).(i)))))
  in
  let out = Array.init reach (fun bi ->
      let s = repr.(order.(bi)) in
      Array.copy t.out.(s))
  in
  make ~init:0 ~n_inputs:k ~next ~out

(* Shortest word distinguishing two machines (or two states of the same
   machine), via BFS over the synchronous product.  Returns [None] when the
   machines are trace-equivalent. *)
let find_counterexample ?(from_a = None) ?(from_b = None) a b =
  if a.n_inputs <> b.n_inputs then
    invalid_arg "Mealy.find_counterexample: input alphabets differ";
  let k = a.n_inputs in
  let start = (Option.value from_a ~default:a.init, Option.value from_b ~default:b.init) in
  let seen = Hashtbl.create 997 in
  let queue = Queue.create () in
  Hashtbl.add seen start (); (* cq-lint: allow hashtbl-add: first insertion into a fresh table *)
  Queue.add (start, []) queue;
  let result = ref None in
  (try
     while not (Queue.is_empty queue) do
       let (sa, sb), path = Queue.take queue in
       for i = 0 to k - 1 do
         let sa', oa = step a sa i in
         let sb', ob = step b sb i in
         if oa <> ob then begin
           result := Some (List.rev (i :: path));
           raise Exit
         end;
         let st = (sa', sb') in
         if not (Hashtbl.mem seen st) then begin
           Hashtbl.add seen st (); (* cq-lint: allow hashtbl-add: guarded by the mem test above *)
           Queue.add (st, i :: path) queue
         end
       done
     done
   with Exit -> ());
  !result

let equivalent a b = Option.is_none (find_counterexample a b)

(* Canonical form: minimize, then states are already BFS-numbered from the
   initial state by [minimize], so equal canonical machines are isomorphic. *)
let canonicalize t = minimize t

let isomorphic a b =
  let ca = canonicalize a and cb = canonicalize b in
  ca.n_states = cb.n_states && ca.next = cb.next && ca.out = cb.out

(* Access sequences: for each reachable state, a shortest input word reaching
   it from the initial state (BFS).  Used by the Wp-method. *)
let access_sequences t =
  let acc = Array.make t.n_states None in
  acc.(t.init) <- Some [];
  let queue = Queue.create () in
  Queue.add t.init queue;
  while not (Queue.is_empty queue) do
    let s = Queue.take queue in
    let path = Option.get acc.(s) in
    for i = 0 to t.n_inputs - 1 do
      let s' = t.next.(s).(i) in
      if acc.(s') = None then begin
        acc.(s') <- Some (path @ [ i ]);
        Queue.add s' queue
      end
    done
  done;
  acc

let pp ?(pp_input = Fmt.int) ~pp_output ppf t =
  Fmt.pf ppf "@[<v>Mealy machine: %d states, %d inputs, init %d@," t.n_states
    t.n_inputs t.init;
  for s = 0 to t.n_states - 1 do
    for i = 0 to t.n_inputs - 1 do
      Fmt.pf ppf "  %d --%a/%a--> %d@," s pp_input i pp_output t.out.(s).(i)
        t.next.(s).(i)
    done
  done;
  Fmt.pf ppf "@]"

let to_dot ?(name = "mealy") ~input_label ~output_label t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  Buffer.add_string buf
    (Printf.sprintf "  __start [shape=point]; __start -> s%d;\n" t.init);
  for s = 0 to t.n_states - 1 do
    Buffer.add_string buf (Printf.sprintf "  s%d [shape=circle,label=\"%d\"];\n" s s)
  done;
  for s = 0 to t.n_states - 1 do
    for i = 0 to t.n_inputs - 1 do
      Buffer.add_string buf
        (Printf.sprintf "  s%d -> s%d [label=\"%s/%s\"];\n" s t.next.(s).(i)
           (input_label i)
           (output_label t.out.(s).(i)))
    done
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Invert [to_dot]: good enough for round-tripping our own exports (and
   hand-edited copies that keep the shape).  Node declarations are
   ignored; structure comes from the __start arrow and the labelled
   edges.  The parse is line-based because the exporter is. *)
let of_dot ~input_of_label ~output_of_label text =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let strip s = String.trim s in
  (* "s12" -> Some 12 *)
  let state_of tok =
    let tok = strip tok in
    if String.length tok >= 2 && tok.[0] = 's' then
      int_of_string_opt (String.sub tok 1 (String.length tok - 1))
    else None
  in
  let lines = String.split_on_char '\n' text in
  let init = ref (-1) in
  let edges = ref [] (* (src, dst, input, output) *) in
  let parse_error = ref None in
  List.iteri
    (fun idx line ->
      if !parse_error = None then
        let lno = idx + 1 in
        let line = strip line in
        let has_sub needle =
          let nl = String.length line and nn = String.length needle in
          let rec at i = i + nn <= nl && (String.sub line i nn = needle || at (i + 1)) in
          at 0
        in
        let index_of needle =
          let nl = String.length line and nn = String.length needle in
          let rec at i =
            if i + nn > nl then None
            else if String.sub line i nn = needle then Some i
            else at (i + 1)
          in
          at 0
        in
        if has_sub "__start ->" then begin
          match index_of "__start ->" with
          | Some i -> (
              let rest = String.sub line (i + 10) (String.length line - i - 10) in
              let rest =
                match String.index_opt rest ';' with
                | Some j -> String.sub rest 0 j
                | None -> rest
              in
              match state_of rest with
              | Some s -> init := s
              | None -> parse_error := Some (Printf.sprintf "line %d: bad __start target" lno))
          | None -> ()
        end
        else
          match (index_of "->", index_of "[label=\"") with
          | Some arrow, Some lab ->
              let src = String.sub line 0 arrow in
              let dst = String.sub line (arrow + 2) (lab - arrow - 2) in
              let rest = String.sub line (lab + 8) (String.length line - lab - 8) in
              (match String.index_opt rest '"' with
              | None ->
                  parse_error := Some (Printf.sprintf "line %d: unterminated label" lno)
              | Some close -> (
                  let label = String.sub rest 0 close in
                  match String.index_opt label '/' with
                  | None ->
                      parse_error :=
                        Some (Printf.sprintf "line %d: label %S lacks in/out separator" lno label)
                  | Some slash -> (
                      let in_lab = String.sub label 0 slash in
                      let out_lab =
                        String.sub label (slash + 1) (String.length label - slash - 1)
                      in
                      match (state_of src, state_of dst) with
                      | Some s, Some d -> (
                          match (input_of_label in_lab, output_of_label out_lab) with
                          | Some i, Some o -> edges := (s, d, i, o) :: !edges
                          | None, _ ->
                              parse_error :=
                                Some (Printf.sprintf "line %d: bad input label %S" lno in_lab)
                          | _, None ->
                              parse_error :=
                                Some (Printf.sprintf "line %d: bad output label %S" lno out_lab))
                      | _ ->
                          parse_error :=
                            Some (Printf.sprintf "line %d: edge between non-state nodes" lno))))
          | _ -> ())
    lines;
  match !parse_error with
  | Some m -> Error m
  | None -> (
      match !edges with
      | [] -> err "no transitions found"
      | edges ->
          if !init < 0 then err "no __start arrow (initial state unknown)"
          else
            let n_states =
              List.fold_left (fun m (s, d, _, _) -> max m (max s d)) (-1) edges + 1
            in
            let n_inputs =
              List.fold_left (fun m (_, _, i, _) -> max m i) (-1) edges + 1
            in
            if !init >= n_states then err "initial state has no transitions"
            else
              let next = Array.make_matrix n_states n_inputs (-1) in
              let out = Array.make_matrix n_states n_inputs None in
              let dup = ref None in
              List.iter
                (fun (s, d, i, o) ->
                  if next.(s).(i) >= 0 && !dup = None then
                    dup := Some (Printf.sprintf "duplicate edge from s%d on input %d" s i);
                  next.(s).(i) <- d;
                  out.(s).(i) <- Some o)
                edges;
              (match !dup with
              | Some m -> Error m
              | None ->
                  let missing = ref None in
                  Array.iteri
                    (fun s row ->
                      Array.iteri
                        (fun i d ->
                          if d < 0 && !missing = None then
                            missing :=
                              Some (Printf.sprintf "state s%d lacks a transition on input %d" s i))
                        row)
                    next;
                  (match !missing with
                  | Some m -> Error m
                  | None ->
                      let out = Array.map (Array.map Option.get) out in
                      (match make ~init:!init ~n_inputs ~next ~out with
                      | t -> Ok t
                      | exception Invalid_argument m -> Error m))))
