(** Deterministic Mealy machines over a dense integer input alphabet.

    Replacement policies (Definition 2.1 in the paper) are Mealy machines
    with inputs [{Ln(0), ..., Ln(n-1), Evct}]; the automata produced by the
    learner and consumed by the synthesiser all use this representation.
    States and inputs are integers ([0 ..]); outputs are polymorphic. *)

type 'o t

val make :
  init:int -> n_inputs:int -> next:int array array -> out:'o array array -> 'o t
(** [make ~init ~n_inputs ~next ~out] builds a machine from explicit tables.
    Raises [Invalid_argument] on malformed tables. *)

val n_states : 'o t -> int
val n_inputs : 'o t -> int
val init : 'o t -> int

val step : 'o t -> int -> int -> int * 'o
(** [step t s i] is the successor state and output for input [i] in state
    [s]. Raises [Invalid_argument] when [i] is out of range. *)

val next_state : 'o t -> int -> int -> int
val output : 'o t -> int -> int -> 'o

val run : 'o t -> int list -> 'o list
(** Output word for an input word from the initial state. *)

val run_from : 'o t -> int -> int list -> 'o list
val state_after : 'o t -> int list -> int

(** {2 Compiled evaluation}

    Conformance testing evaluates one fixed hypothesis on millions of
    words.  [compile] flattens the transition/output tables into
    preallocated one-dimensional vectors ([Bytes] when every state id fits
    a byte) built once per hypothesis; the walkers below are
    allocation-free on the agree/reject paths and are the evaluators the
    equivalence oracles and the learner's counterexample processing use. *)

type 'o compiled

val compile : 'o t -> 'o compiled

val compiled_n_states : 'o compiled -> int
val compiled_n_inputs : 'o compiled -> int
val compiled_init : 'o compiled -> int

val agrees : 'o compiled -> int list -> 'o list -> bool
(** [agrees c word expected] is [run c word = expected], evaluated without
    allocating and stopping at the first mismatch. *)

val agrees_from : 'o compiled -> int -> int list -> 'o list -> bool
(** [agrees_from c s word expected] is [agrees] started in state [s]. *)

val encode_outputs : 'o compiled -> 'o list -> int array
(** Translate an expected-output sequence into [c]'s output-dictionary
    codes.  Outputs the machine can never emit encode to [-1] and fail
    every comparison.  Encode once per recorded trace, then evaluate it
    repeatedly with {!agrees_codes} — the walk compares ints only, never
    touching the polymorphic structural equality that dominates
    {!agrees} on short outputs. *)

val agrees_codes : 'o compiled -> int list -> int array -> bool
(** [agrees_codes c word codes] is [agrees c word expected] where
    [codes = encode_outputs c expected], evaluated with int comparisons
    only and no allocation. *)

val agrees_codes_from : 'o compiled -> int -> int list -> int array -> bool
(** [agrees_codes_from c s word codes] is [agrees_codes] started in
    state [s]. *)

type trace
(** A fully pre-encoded (word, expected outputs) pair: the word packed
    into a range-checked int array, the outputs into dictionary codes.
    Build once per recorded trace with {!encode_trace}; each
    {!agrees_trace} evaluation is then a pure int-array walk. *)

val encode_trace : 'o compiled -> int list -> 'o list -> trace
(** [encode_trace c word expected] pre-encodes a trace against [c]'s
    output dictionary.  Raises [Invalid_argument] if an input symbol is
    out of range — the walkers skip per-symbol bounds tests. *)

val agrees_trace : 'o compiled -> trace -> bool
(** [agrees_trace c tr] is [agrees] on the pre-encoded trace, with int
    comparisons only, no allocation, and no per-symbol bounds checks. *)

val agrees_trace_from : 'o compiled -> int -> trace -> bool
(** [agrees_trace_from c s tr] is {!agrees_trace} started in state [s]. *)

val first_disagreement : 'o compiled -> int list -> 'o list -> int option
(** Index of the first position where the machine's output differs from
    [expected] (or where one sequence ends early), [None] if none. *)

val compiled_state_after : 'o compiled -> int list -> int
val compiled_state_after_from : 'o compiled -> int -> int list -> int
val compiled_run : 'o compiled -> int list -> 'o list
val compiled_run_from : 'o compiled -> int -> int list -> 'o list

(** {2 Streaming compiled stepper}

    The agree/reject walkers above answer one question per whole trace.
    Replay workloads need the machine's output {e per access}, millions of
    times, while interleaving their own bookkeeping (tag updates, miss
    attribution) between steps.  A {!stepper} is a compiled machine plus a
    mutable current state: each {!stepper_step} advances by one input and
    returns the output {e from the compiled table} — a physically shared
    value, so the walk allocates nothing per access. *)

type 'o stepper

val stepper : ?state:int -> 'o compiled -> 'o stepper
(** A fresh stepper positioned at [state] (default the initial state).
    Raises [Invalid_argument] on an out-of-range state.  Steppers are
    cheap; the compiled tables are shared, never copied. *)

val stepper_state : 'o stepper -> int
(** The current control state. *)

val stepper_reset : ?state:int -> 'o stepper -> unit
(** Reposition at [state] (default the initial state). *)

val stepper_step : 'o stepper -> int -> 'o
(** Advance by one input and return the emitted output (shared with the
    compiled table — no allocation).  Raises [Invalid_argument] when the
    input is out of range. *)

val stepper_step_code : 'o stepper -> int -> int
(** As {!stepper_step} but returns the output's dictionary code (an int
    comparison key); decode with {!decode_output}. *)

val decode_output : 'o compiled -> int -> 'o
(** The output behind a dictionary code ({!stepper_step_code},
    {!encode_outputs}).  Raises [Invalid_argument] on a bad code. *)

val of_fun :
  init:'s -> n_inputs:int -> step:('s -> int -> 's * 'o) -> max_states:int -> 'o t
(** Explicit reachable-state enumeration of an implicit machine. States of
    the implicit machine must be immutable and structurally comparable.
    The result numbers states in BFS order from the initial state. Fails if
    more than [max_states] states are reachable. *)

val minimize : 'o t -> 'o t
(** Minimal trace-equivalent machine, restricted to reachable states and
    numbered in BFS order (hence canonical for a given behaviour). *)

val find_counterexample :
  ?from_a:int option -> ?from_b:int option -> 'o t -> 'o t -> int list option
(** Shortest input word on which the two machines produce different outputs,
    or [None] when trace-equivalent. *)

val equivalent : 'o t -> 'o t -> bool
val canonicalize : 'o t -> 'o t
val isomorphic : 'o t -> 'o t -> bool

val access_sequences : 'o t -> int list option array
(** For each state, a shortest input word reaching it from the initial state
    ([None] for unreachable states). *)

val pp :
  ?pp_input:(Format.formatter -> int -> unit) ->
  pp_output:(Format.formatter -> 'o -> unit) ->
  Format.formatter ->
  'o t ->
  unit

val to_dot :
  ?name:string ->
  input_label:(int -> string) ->
  output_label:('o -> string) ->
  'o t ->
  string

val of_dot :
  input_of_label:(string -> int option) ->
  output_of_label:(string -> 'o option) ->
  string ->
  ('o t, string) result
(** Parse a machine from the DOT text {!to_dot} emits (node names [sN],
    a [__start] arrow marking the initial state, one ["in/out"]-labelled
    edge per transition).  The label parsers invert the exporter's
    [input_label]/[output_label]; a label either rejects ([None]) or
    yields the dense input index / output value.  The machine must be
    complete — every state needs exactly one edge per input index — and
    input indices must form [0 .. k-1].  Errors name the offending
    line. *)
