(** The cache-semantics oracle consumed by Polca (the paper's ⟦C⟧).

    A query is a block trace executed from the cache's fixed initial
    configuration; the oracle returns the outcome of every access.  The
    software-simulated cache (§6 of the paper) and CacheQuery over
    hardware (§7) both implement this interface.

    [query_batch] answers several independent queries at once; oracles
    built by {!of_cache_set} execute batches through the prefix-sharing
    trie executor ({!Batch}), making a batch cost O(trie edges) block
    accesses instead of O(Σ |qᵢ|). *)

type t = {
  assoc : int;
  initial_content : Block.t array;  (** cc0, known to Polca *)
  query : Block.t list -> Cache_set.result list;
  query_batch : Block.t list list -> Cache_set.result list list;
  prefix_sharing : bool;
      (** whether [query_batch] shares prefixes (drives the accesses-saved
          accounting in {!counting}) *)
  ops : (Block.t, Cache_set.result) Batch.ops option;
      (** the device primitives behind the executor, for consumers that
          drive their own adaptive prefix-sharing plans (Polca's session
          mode).  [None] when unsupported: the sequential ablation, noise
          wrappers that need whole-query replay, hardware oracles with
          repetitions > 1. *)
}

type stats = {
  queries : Cq_util.Metrics.counter;
  block_accesses : Cq_util.Metrics.counter;
  memo_hits : Cq_util.Metrics.counter;
  batches : Cq_util.Metrics.counter;  (** [query_batch] calls *)
  batched_queries : Cq_util.Metrics.counter;
      (** queries carried by those batches *)
  accesses_saved : Cq_util.Metrics.counter;
      (** block accesses avoided by prefix sharing, relative to naive
          per-query replay of the same batches *)
  memo_overflows : Cq_util.Metrics.counter;  (** bounded memo table clears *)
  timed_loads : Cq_util.Metrics.counter;
      (** physical timed loads issued (hardware backends; counts every
          repetition, unlike the logical [block_accesses]) *)
  vote_runs : Cq_util.Metrics.counter;
      (** extra query/access executions spent on majority voting *)
  transient_flips : Cq_util.Metrics.counter;
      (** [Polca.Non_deterministic] words that a retry absorbed *)
  retry_attempts : Cq_util.Metrics.counter;
      (** word re-executions issued by the bounded-retry layer *)
  batch_depth : Cq_util.Metrics.histogram;
      (** queries carried per batch (trie fan-in / session probe count) *)
  vote_escalations : Cq_util.Metrics.histogram;
      (** runs spent per voted access that entered the voting loop *)
}
(** Registry-backed accounting: every field is a named metric
    ({!Cq_util.Metrics}), so report fields and registry exports cannot
    disagree. *)

val fresh_stats : ?registry:Cq_util.Metrics.t -> ?prefix:string -> unit -> stats
(** Stats whose fields are registered as ["<prefix>.<field>"] (default
    prefix ["oracle"]) in [registry] (default: a fresh private registry).
    Two stats records sharing a registry must use distinct prefixes. *)

val sequential_batch :
  (Block.t list -> Cache_set.result list) ->
  Block.t list list ->
  Cache_set.result list list
(** Correct [query_batch] fallback for oracles without batch support. *)

val of_cache_set : Cache_set.t -> t
val of_policy : ?initial_content:Block.t array -> Cq_policy.Policy.t -> t

val sequential : t -> t
(** Replace batch execution with naive per-query replay — the sequential
    baseline of the engine benchmark. *)

val counting : stats -> t -> t
(** Count queries and accesses into [stats].  [block_accesses] counts the
    logical (per-query) cost even for batches; the prefix-sharing win is
    recorded separately in [accesses_saved]. *)

val memoized : ?stats:stats -> ?max_entries:int -> t -> t
(** Memoize whole queries (the role LevelDB plays in the paper's frontend).
    Sound because every query starts from the reset state.  [max_entries]
    bounds the table: on overflow it is cleared (recorded in
    [stats.memo_overflows]) so long learning runs cannot grow the memo
    without limit. *)

val noisy : prng:Cq_util.Prng.t -> p:float -> t -> t
(** Flip each individual outcome with probability [p] (fault injection). *)

val majority : reps:int -> t -> t
(** Majority vote over [reps] repetitions of each query.  [reps] must be
    odd: even counts can tie, and a fixed tie-break would silently bias
    the vote.  Raises [Invalid_argument] otherwise. *)
