(** The cache-semantics oracle consumed by Polca (the paper's ⟦C⟧).

    A query is a block trace executed from the cache's fixed initial
    configuration; the oracle returns the outcome of every access.  The
    software-simulated cache (§6 of the paper) and CacheQuery over
    hardware (§7) both implement this interface.

    [query_batch] answers several independent queries at once; oracles
    built by {!of_cache_set} execute batches through the prefix-sharing
    trie executor ({!Batch}), making a batch cost O(trie edges) block
    accesses instead of O(Σ |qᵢ|). *)

type t = {
  assoc : int;
  initial_content : Block.t array;  (** cc0, known to Polca *)
  query : Block.t list -> Cache_set.result list;
  query_batch : Block.t list list -> Cache_set.result list list;
  prefix_sharing : bool;
      (** whether [query_batch] shares prefixes (drives the accesses-saved
          accounting in {!counting}) *)
  ops : (Block.t, Cache_set.result) Batch.ops option;
      (** the device primitives behind the executor, for consumers that
          drive their own adaptive prefix-sharing plans (Polca's session
          mode).  [None] when unsupported: the sequential ablation, noise
          wrappers that need whole-query replay, hardware oracles with
          repetitions > 1. *)
}

type stats = {
  mutable queries : int;
  mutable block_accesses : int;
  mutable memo_hits : int;
  mutable batches : int;  (** [query_batch] calls *)
  mutable batched_queries : int;  (** queries carried by those batches *)
  mutable accesses_saved : int;
      (** block accesses avoided by prefix sharing, relative to naive
          per-query replay of the same batches *)
  mutable memo_overflows : int;  (** bounded memo table clears *)
  mutable timed_loads : int;
      (** physical timed loads issued (hardware backends; counts every
          repetition, unlike the logical [block_accesses]) *)
  mutable vote_runs : int;
      (** extra query/access executions spent on majority voting *)
  mutable transient_flips : int;
      (** [Polca.Non_deterministic] words that a retry absorbed *)
  mutable retry_attempts : int;
      (** word re-executions issued by the bounded-retry layer *)
}

val fresh_stats : unit -> stats

val sequential_batch :
  (Block.t list -> Cache_set.result list) ->
  Block.t list list ->
  Cache_set.result list list
(** Correct [query_batch] fallback for oracles without batch support. *)

val of_cache_set : Cache_set.t -> t
val of_policy : ?initial_content:Block.t array -> Cq_policy.Policy.t -> t

val sequential : t -> t
(** Replace batch execution with naive per-query replay — the sequential
    baseline of the engine benchmark. *)

val counting : stats -> t -> t
(** Count queries and accesses into [stats].  [block_accesses] counts the
    logical (per-query) cost even for batches; the prefix-sharing win is
    recorded separately in [accesses_saved]. *)

val memoized : ?stats:stats -> ?max_entries:int -> t -> t
(** Memoize whole queries (the role LevelDB plays in the paper's frontend).
    Sound because every query starts from the reset state.  [max_entries]
    bounds the table: on overflow it is cleared (recorded in
    [stats.memo_overflows]) so long learning runs cannot grow the memo
    without limit. *)

val noisy : prng:Cq_util.Prng.t -> p:float -> t -> t
(** Flip each individual outcome with probability [p] (fault injection). *)

val majority : reps:int -> t -> t
(** Majority vote over [reps] repetitions of each query.  [reps] must be
    odd: even counts can tie, and a fixed tie-break would silently bias
    the vote.  Raises [Invalid_argument] otherwise. *)
