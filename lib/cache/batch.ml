(* The prefix-sharing batch executor.

   A batch of queries with shared prefixes — the shape Polca's findEvicted
   fan-out and the L* observation table produce — is folded into a trie
   and executed depth-first: each trie edge is one real block access, and
   branch points are handled by snapshotting the cache state and restoring
   it between children instead of replaying the prefix from reset.  A
   batch of N queries then costs O(trie edges) accesses instead of
   O(Σ |qᵢ|), which is the §5 batching idea pushed below the memo table.

   The executor is generic in the backing device: it only needs reset,
   a single-access step, and a checkpoint primitive returning a restore
   thunk.  [Cq_cache.Oracle.of_cache_set] instantiates it over the
   software-simulated set; the CacheQuery frontend instantiates it over
   the full hardware simulator.  Results are byte-identical to sequential
   per-query execution whenever the device is deterministic from reset —
   exactly the property reset discovery validates. *)

type ('k, 'r) ops = {
  reset : unit -> unit;  (* bring the device to the fixed initial state *)
  access : 'k -> 'r;  (* one access, returning its observation *)
  checkpoint : unit -> unit -> unit;  (* capture state; thunk restores it *)
}

(* Children are kept in insertion (batch) order so execution order — and
   with it any access-counting telemetry — is deterministic. *)
type ('k, 'r) node = {
  mutable children : ('k * ('k, 'r) node) list;  (* reversed *)
  mutable ends_here : int list;  (* indices of queries ending at this node *)
}

let new_node () = { children = []; ends_here = [] }

let build queries =
  let root = new_node () in
  List.iteri
    (fun qi blocks ->
      let node = ref root in
      List.iter
        (fun b ->
          let child =
            match List.assoc_opt b !node.children with
            | Some c -> c
            | None ->
                let c = new_node () in
                !node.children <- (b, c) :: !node.children;
                c
          in
          node := child)
        blocks;
      !node.ends_here <- qi :: !node.ends_here)
    queries;
  root

(* Number of trie edges = block accesses a prefix-sharing execution
   performs, vs. the naive replay cost Σ |qᵢ|.  Exposed so oracle
   statistics can report the accesses saved by sharing. *)
let plan_cost queries =
  let root = build queries in
  let rec edges node =
    List.fold_left (fun acc (_, c) -> acc + 1 + edges c) 0 node.children
  in
  let naive = List.fold_left (fun acc q -> acc + List.length q) 0 queries in
  (naive, edges root)

let run_trie ops queries =
  let root = build queries in
  let n = List.length queries in
  let results = Array.make n [] in
  let rec visit node rev_outcomes =
    List.iter (fun qi -> results.(qi) <- List.rev rev_outcomes) node.ends_here;
    let rec each = function
      | [] -> ()
      | [ (b, child) ] ->
          (* Last child: nothing left to return to, skip the checkpoint. *)
          let r = ops.access b in
          visit child (r :: rev_outcomes)
      | (b, child) :: rest ->
          let restore = ops.checkpoint () in
          let r = ops.access b in
          visit child (r :: rev_outcomes);
          restore ();
          each rest
    in
    each (List.rev node.children)
  in
  ops.reset ();
  visit root [];
  Array.to_list results

let run ops queries =
  if Cq_util.Trace.enabled () then
    Cq_util.Trace.with_span ~cat:"batch"
      ~args:[ ("queries", string_of_int (List.length queries)) ]
      "batch.run"
      (fun () -> run_trie ops queries)
  else run_trie ops queries
