(** The prefix-sharing batch executor: fold a batch of queries into a trie
    and execute it DFS with state checkpoint/restore at branch points, so
    a batch costs O(trie edges) device accesses instead of O(Σ |qᵢ|).

    Generic in the backing device ([Cache_set], the hwsim machine via the
    CacheQuery frontend, ...); results match sequential per-query
    execution whenever the device is deterministic from reset. *)

type ('k, 'r) ops = {
  reset : unit -> unit;  (** bring the device to its fixed initial state *)
  access : 'k -> 'r;  (** one access, returning its observation *)
  checkpoint : unit -> unit -> unit;
      (** capture the device state; the returned thunk restores it *)
}

val run : ('k, 'r) ops -> 'k list list -> 'r list list
(** Execute a batch; the i-th result list belongs to the i-th query. *)

val plan_cost : 'k list list -> int * int
(** [(naive, shared)] access counts of a batch: naive per-query replay
    (Σ |qᵢ|) vs. prefix-sharing execution (trie edges). *)
