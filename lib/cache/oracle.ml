(* The cache-semantics oracle consumed by Polca (the paper's ⟦C⟧).

   A query is a sequence of block accesses executed from the cache's fixed
   initial configuration; the oracle returns the hit/miss outcome of every
   access.  Both the software-simulated cache (§6) and CacheQuery over
   hardware (§7) implement this interface, which is exactly what makes
   Polca agnostic to where the cache lives.

   [query_batch] answers several independent queries at once.  Oracles
   built by [of_cache_set] execute batches through the prefix-sharing trie
   executor (see Batch); [sequential] degrades a batch to per-query replay
   (the ablation baseline), and any hand-rolled oracle can start from
   [sequential_batch] as a correct fallback. *)

type t = {
  assoc : int;
  initial_content : Block.t array; (* cc0, known to Polca *)
  query : Block.t list -> Cache_set.result list;
  query_batch : Block.t list list -> Cache_set.result list list;
  prefix_sharing : bool;
      (* whether [query_batch] executes through a prefix-sharing trie;
         drives the accesses-saved accounting in [counting] *)
  ops : (Block.t, Cache_set.result) Batch.ops option;
      (* direct access to the device primitives behind the executor
         (reset / single access / checkpoint).  Consumers that build their
         own adaptive prefix-sharing plans — Polca's session mode — drive
         these directly instead of materialising per-query block lists.
         [None] when the device cannot support it (sequential ablation,
         noise models that need whole-query replay, hardware with
         repetitions > 1). *)
}

(* Registry-backed accounting (Cq_util.Metrics): each field is a named
   counter, so legacy report fields and their metrics-registry
   counterparts are the same cells, and one registry shared across the
   pipeline layers exports the whole run at once. *)
type stats = {
  queries : Cq_util.Metrics.counter; (* oracle queries issued *)
  block_accesses : Cq_util.Metrics.counter; (* total blocks across queries *)
  memo_hits : Cq_util.Metrics.counter; (* queries answered from the memo *)
  batches : Cq_util.Metrics.counter; (* query_batch calls *)
  batched_queries : Cq_util.Metrics.counter; (* queries carried by batches *)
  accesses_saved : Cq_util.Metrics.counter; (* avoided by prefix sharing *)
  memo_overflows : Cq_util.Metrics.counter; (* bounded memo table clears *)
  (* Noise-layer accounting: *)
  timed_loads : Cq_util.Metrics.counter; (* physical timed loads (hardware) *)
  vote_runs : Cq_util.Metrics.counter; (* extra runs spent on voting *)
  transient_flips : Cq_util.Metrics.counter; (* ND words absorbed by retry *)
  retry_attempts : Cq_util.Metrics.counter; (* word re-executions issued *)
  (* Per-span distributions: *)
  batch_depth : Cq_util.Metrics.histogram;
      (* queries carried per batch (trie fan-in / session probe count) *)
  vote_escalations : Cq_util.Metrics.histogram;
      (* runs spent per voted access that entered the voting loop *)
}

let fresh_stats ?registry ?(prefix = "oracle") () =
  let r =
    match registry with Some r -> r | None -> Cq_util.Metrics.create ()
  in
  let c field = Cq_util.Metrics.counter r (prefix ^ "." ^ field) in
  {
    queries = c "queries";
    block_accesses = c "block_accesses";
    memo_hits = c "memo_hits";
    batches = c "batches";
    batched_queries = c "batched_queries";
    accesses_saved = c "accesses_saved";
    memo_overflows = c "memo_overflows";
    timed_loads = c "timed_loads";
    vote_runs = c "vote_runs";
    transient_flips = c "transient_flips";
    retry_attempts = c "retry_attempts";
    batch_depth =
      Cq_util.Metrics.histogram ~buckets:16 r (prefix ^ ".batch_depth");
    vote_escalations =
      Cq_util.Metrics.histogram ~buckets:8 r (prefix ^ ".vote_escalations");
  }

(* A correct [query_batch] for oracles without native batch support. *)
let sequential_batch query batch = List.map query batch

let of_cache_set set =
  let ops =
    {
      Batch.reset = (fun () -> Cache_set.reset set);
      access = Cache_set.access set;
      checkpoint =
        (fun () ->
          let s = Cache_set.snapshot set in
          fun () -> Cache_set.restore s);
    }
  in
  {
    assoc = Cache_set.assoc set;
    initial_content = Cache_set.initial_content set;
    query = Cache_set.run_from_reset set;
    query_batch = Batch.run ops;
    prefix_sharing = true;
    ops = Some ops;
  }

let of_policy ?initial_content policy =
  of_cache_set (Cache_set.create ?initial_content policy)

(* Replace batch execution with naive per-query replay — the sequential
   baseline of the engine benchmark. *)
let sequential t =
  {
    t with
    query_batch = sequential_batch t.query;
    prefix_sharing = false;
    ops = None;
  }

let counting stats t =
  {
    t with
    query =
      (fun blocks ->
        Cq_util.Metrics.incr stats.queries;
        Cq_util.Metrics.add stats.block_accesses (List.length blocks);
        t.query blocks);
    query_batch =
      (fun batch ->
        let n = List.length batch in
        Cq_util.Metrics.incr stats.batches;
        Cq_util.Metrics.add stats.batched_queries n;
        Cq_util.Metrics.add stats.queries n;
        Cq_util.Metrics.observe stats.batch_depth (float_of_int n);
        let naive, shared = Batch.plan_cost batch in
        (* [block_accesses] stays the logical (per-query) cost so numbers
           remain comparable with the paper's query counts; the sharing
           win is reported separately. *)
        Cq_util.Metrics.add stats.block_accesses naive;
        if t.prefix_sharing then
          Cq_util.Metrics.add stats.accesses_saved (naive - shared);
        t.query_batch batch);
  }

(* Memoization table over whole queries — the role LevelDB plays in the
   CacheQuery frontend.  Sound because queries always start from the reset
   state, so equal block sequences yield equal results.  [max_entries]
   bounds the table with clear-on-overflow semantics (recorded in
   [stats.memo_overflows]) so unbounded learning runs cannot grow the memo
   without limit. *)
let memoized ?stats ?max_entries t =
  (* Keys are block traces with long shared prefixes: pack them with a deep
     hash or the table degenerates into one bucket. *)
  let table : (Block.t list Cq_util.Deep.t, Cache_set.result list) Hashtbl.t =
    Hashtbl.create 4096
  in
  (match max_entries with
  | Some n when n < 1 -> invalid_arg "Oracle.memoized: max_entries must be >= 1"
  | _ -> ());
  let note_memo_hit () =
    match stats with Some s -> Cq_util.Metrics.incr s.memo_hits | None -> ()
  in
  let store key r =
    (match max_entries with
    | Some n when Hashtbl.length table >= n ->
        Hashtbl.reset table;
        (match stats with
        | Some s -> Cq_util.Metrics.incr s.memo_overflows
        | None -> ())
    | _ -> ());
    (* [replace], not [add]: re-storing a key (a query recomputed after an
       overflow reset, or re-executed through the batch path) must not
       stack a second binding under the first. *)
    Hashtbl.replace table key r
  in
  {
    t with
    query =
      (fun blocks ->
        let key = Cq_util.Deep.pack blocks in
        match Hashtbl.find_opt table key with
        | Some r ->
            note_memo_hit ();
            r
        | None ->
            let r = t.query blocks in
            store key r;
            r);
    query_batch =
      (fun batch ->
        (* Serve memo hits locally; forward the (deduplicated) misses as
           one batch and fill the table from its results. *)
        let keyed = List.map (fun q -> (Cq_util.Deep.pack q, q)) batch in
        let missing = Hashtbl.create 16 in
        let order = ref [] in
        List.iter
          (fun (key, q) ->
            if (not (Hashtbl.mem table key)) && not (Hashtbl.mem missing key)
            then begin
              Hashtbl.replace missing key ();
              order := q :: !order
            end)
          keyed;
        let todo = List.rev !order in
        (if todo <> [] then
           let answers = t.query_batch todo in
           List.iter2
             (fun q r -> store (Cq_util.Deep.pack q) r)
             todo answers);
        List.map
          (fun (key, _) ->
            match Hashtbl.find_opt table key with
            | Some r ->
                if not (Hashtbl.mem missing key) then note_memo_hit ();
                r
            | None ->
                (* The table was cleared by an overflow while this batch
                   was being filled: fall back to a direct query. *)
                t.query (Cq_util.Deep.unpack key))
          keyed);
  }

(* Artificial misclassification noise: each individual hit/miss outcome is
   flipped with probability [p].  Used to stress-test the majority-vote
   denoising in CacheQuery and the failure modes discussed in §9. *)
let noisy ~prng ~p t =
  let flip results =
    List.map
      (fun r ->
        if Cq_util.Prng.bool prng p then
          match r with Cache_set.Hit -> Cache_set.Miss | Cache_set.Miss -> Cache_set.Hit
        else r)
      results
  in
  {
    t with
    query = (fun blocks -> flip (t.query blocks));
    query_batch = (fun batch -> List.map flip (t.query_batch batch));
    (* Per-outcome noise consumes PRNG draws in query order; session-style
       checkpointed execution would desynchronise the stream, so force
       consumers back onto the query paths. *)
    ops = None;
  }

(* Majority vote over [reps] repetitions of the query — the denoising the
   CacheQuery backend applies when executing generated code several times. *)
let majority ~reps t =
  if reps < 1 then invalid_arg "Oracle.majority: reps must be >= 1";
  if reps mod 2 = 0 then
    (* An even repetition count can tie, and any fixed tie-break silently
       biases the vote (the old code defaulted ties to Miss). *)
    invalid_arg "Oracle.majority: reps must be odd";
  let vote runs =
    match runs with
    | [] -> assert false
    | first :: _ ->
        (* One pass per run over per-position hit counters, instead of the
           former O(L²) [List.nth run i] inside [List.mapi]. *)
        let len = List.length first in
        let hits = Array.make len 0 in
        List.iter
          (fun run ->
            List.iteri
              (fun i r ->
                if Cache_set.result_is_hit r then hits.(i) <- hits.(i) + 1)
              run)
          runs;
        List.init len (fun i ->
            if 2 * hits.(i) > reps then Cache_set.Hit else Cache_set.Miss)
  in
  {
    t with
    query = (fun blocks -> vote (List.init reps (fun _ -> t.query blocks)));
    query_batch =
      (fun batch ->
        let runs = List.init reps (fun _ -> t.query_batch batch) in
        List.mapi (fun i _ -> vote (List.map (fun run -> List.nth run i) runs)) batch);
    (* Majority voting re-executes whole queries; single-access session
       semantics cannot express that. *)
    ops = None;
  }
