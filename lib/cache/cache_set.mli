(** A single n-way cache set induced by a replacement policy — the labelled
    transition system of Definition 2.3 / Figure 2 of the paper.

    The structure is mutable (it models a device); [reset] restores the
    exact initial configuration, which is what query-based learning
    requires. *)

type result = Hit | Miss

val result_is_hit : result -> bool
val pp_result : Format.formatter -> result -> unit

type t

val create : ?initial_content:Block.t array -> Cq_policy.Policy.t -> t
(** [create policy] builds a full cache set whose content is the first
    [assoc] blocks (A, B, C, ...) in lines 0, 1, 2, ...; the policy starts
    in its initial control state.  [initial_content] overrides the blocks
    (must fill the set, without repetition). *)

val assoc : t -> int

val initial_content : t -> Block.t array
(** The cc0 the set resets to. *)

val content : t -> Block.t array
(** Current content (test/debug introspection; the learner never uses it). *)

val accesses : t -> int
(** Total block accesses served since creation. *)

val reset : t -> unit
(** Restore the initial content and policy control state. *)

type snapshot

val snapshot : t -> snapshot
(** Capture the current configuration (content + policy control state).
    A snapshot is tied to the set it was taken from. *)

val restore : snapshot -> unit
(** Return the originating set to the captured configuration.  Accesses
    performed in between are not forgotten by the {!accesses} counter
    (it counts work performed, not logical position). *)

val access : t -> Block.t -> result
(** One access, following the Hit/Miss rules of Figure 2. *)

val access_seq : t -> Block.t list -> result list

val run_from_reset : t -> Block.t list -> result list
(** [reset] then [access_seq] — the trace semantics ⟦C⟧ on one query. *)
