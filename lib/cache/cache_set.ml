(* A single n-way cache set induced by a replacement policy — the labelled
   transition system of Definition 2.3 / Figure 2.

   The cache stores blocks in lines; the policy sees only line indices
   [Ln(i)] and eviction requests [Evct], never the blocks themselves (the
   data-independence that Polca exploits).  A [Hit] on line [i] forwards
   [Ln(i)] to the policy; a [Miss] asks the policy for a victim line with
   [Evct] and installs the block there.

   The structure is mutable (it models a device) but [reset] restores the
   exact initial configuration, which is what learning requires. *)

type result = Hit | Miss

let result_is_hit = function Hit -> true | Miss -> false

let pp_result ppf r = Fmt.string ppf (match r with Hit -> "Hit" | Miss -> "Miss")

type t =
  | Set : {
      assoc : int;
      initial_content : Block.t array;
      mutable content : Block.t array;
      policy_init : 's;
      mutable policy_state : 's;
      policy_step : 's -> Cq_policy.Types.input -> 's * Cq_policy.Types.output;
      mutable accesses : int; (* total block accesses served since creation *)
    }
      -> t

let create ?initial_content policy =
  let (Cq_policy.Policy.Policy p) = policy in
  let assoc = p.assoc in
  let initial_content =
    match initial_content with
    | Some blocks ->
        if Array.length blocks <> assoc then
          invalid_arg "Cache_set.create: initial content must fill the set";
        let sorted = Array.to_list blocks |> List.sort_uniq Block.compare in
        if List.length sorted <> assoc then
          invalid_arg "Cache_set.create: initial content has repeated blocks";
        Array.copy blocks
    | None -> Array.of_list (Block.first assoc)
  in
  Set
    {
      assoc;
      initial_content;
      content = Array.copy initial_content;
      policy_init = p.init;
      policy_state = p.init;
      policy_step = p.step;
      accesses = 0;
    }

let assoc (Set c) = c.assoc
let initial_content (Set c) = Array.copy c.initial_content
let content (Set c) = Array.copy c.content
let accesses (Set c) = c.accesses

let reset (Set c) =
  c.content <- Array.copy c.initial_content;
  c.policy_state <- c.policy_init

(* Snapshot/restore of the full configuration (content + policy control
   state), the primitive behind the prefix-sharing batch executor: a trie
   of queries is walked DFS, restoring the branch point instead of
   replaying the shared prefix.  Policy states are immutable values (see
   cq_policy), so capturing the value is a complete snapshot.  The closure
   ties the snapshot to its set, which sidesteps the existential policy
   state type. *)
type snapshot = unit -> unit

let snapshot (Set c) =
  let content = Array.copy c.content in
  let policy_state = c.policy_state in
  fun () ->
    Array.blit content 0 c.content 0 (Array.length content);
    c.policy_state <- policy_state

let restore (s : snapshot) = s ()

let find_line (Set c) block =
  let found = ref None in
  Array.iteri
    (fun i b -> if !found = None && Block.equal b block then found := Some i)
    c.content;
  !found

(* Figure 2: the Hit and Miss rules. *)
let access (Set c as t) block =
  c.accesses <- c.accesses + 1;
  match find_line t block with
  | Some i ->
      let s', out = c.policy_step c.policy_state (Cq_policy.Types.Line i) in
      (match out with
      | None -> ()
      | Some _ -> invalid_arg "Cache_set.access: policy evicted on a hit");
      c.policy_state <- s';
      Hit
  | None ->
      let s', out = c.policy_step c.policy_state Cq_policy.Types.Evct in
      let victim =
        match out with
        | Some i when i >= 0 && i < c.assoc -> i
        | _ -> invalid_arg "Cache_set.access: policy returned no victim on a miss"
      in
      c.content.(victim) <- block;
      c.policy_state <- s';
      Miss

let access_seq t blocks = List.map (access t) blocks

(* Flush: empty the set is not expressible in the Def 2.3 model (content is
   always full); hardware reset via clflush is modelled in cq_hwsim.  Here
   [reload] re-runs an access sequence from the initial configuration. *)
let run_from_reset t blocks =
  reset t;
  access_seq t blocks
