(* Template-based synthesis of policy explanations (§5, §8).

   Sketch solves the constraint φP with an SMT-backed counterexample-guided
   search over the template's holes.  We implement the same search
   enumeratively: candidate programs are drawn from the generator grammars
   (bounded ages, bounded branch counts), screened against a growing test
   suite of input/output traces of the learned machine (cheap, fail-fast),
   and survivors are validated by an exact bisimulation check — our
   decision procedure for φP, i.e. for ⟦P⟧ = ⟦Prg⟧.  A validated program
   is therefore correct by construction (the paper's soundness argument
   carries over directly).

   The search is staged to keep the candidate stream tractable:
   1. (init, evict, insert, normalize) tuples are screened against the
      machine's miss-only behaviour (Evct^k traces), which does not involve
      promotion at all;
   2. surviving tuples are paired with every promotion rule and screened
      against the full test suite;
   3. survivors of the screen get the exact check; failures contribute a
      new distinguishing trace to the test suite (CEGIS). *)

type outcome =
  | Found of Rules.program
  | Not_expressible (* search space exhausted *)
  | Timeout

type report = {
  outcome : outcome;
  template : string; (* "Simple" or "Extended" *)
  candidates_tried : int;
  seconds : float;
}

(* --- Candidate spaces ---------------------------------------------------- *)

let ages = List.init (Rules.max_age + 1) (fun i -> i)

let conds : Rules.cond list =
  Rules.Always
  :: List.concat_map (fun k -> [ Rules.Eq k; Rules.Gt k; Rules.Lt k ]) ages

let conds2 : Rules.cond2 list =
  [ Rules.O_always; Rules.O_lt_self; Rules.O_gt_self; Rules.O_ne_self ]
  @ List.map (fun k -> Rules.O_eq k) ages

let upds : Rules.upd list =
  List.map (fun k -> Rules.Const k) ages @ [ Rules.Keep; Rules.Inc; Rules.Dec ]

(* Promotion rules: one unconditional branch, or a two-branch decision list
   (New2 style), optionally with an others-update.  Ordered simplest
   first. *)
let promotes ?(with_others = true) ~extended () =
  let single =
    List.map (fun u -> [ (Rules.Always, u) ]) upds
  in
  let double =
    List.concat_map
      (fun c1 ->
        if c1 = Rules.Always then []
        else
          List.concat_map
            (fun u1 ->
              List.concat_map
                (fun c2 ->
                  List.filter_map
                    (fun u2 ->
                      if c2 = Rules.Always && u1 = u2 then None
                      else Some [ (c1, u1); (c2, u2) ])
                    upds)
                [ Rules.Always; Rules.Gt 1; Rules.Lt 2 ])
            upds)
      conds
  in
  let selves = single @ if extended then double else [] in
  let others =
    None
    ::
    (if with_others then
       List.concat_map (fun c -> List.map (fun u -> Some (c, u)) upds) conds2
     else [])
  in
  (* others = None first: most policies don't touch the other lines. *)
  List.concat_map
    (fun o -> List.map (fun s -> { Rules.p_self = s; p_others = o }) selves)
    others

let evicts : Rules.evict list =
  List.map (fun k -> Rules.First_with_age k) ages
  @ [ Rules.First_max; Rules.First_min ]

let inserts =
  let others =
    None
    :: List.concat_map
         (fun c -> List.map (fun u -> Some (c, u)) upds)
         [ Rules.O_always; Rules.O_lt_self; Rules.O_gt_self ]
  in
  List.concat_map
    (fun o -> List.map (fun s -> { Rules.i_self = s; i_others = o }) upds)
    others

let norm_actions ~extended =
  if not extended then [ Rules.N_nop ]
  else
    [
      Rules.N_nop;
      Rules.N_aging { except_touched = false };
      Rules.N_aging { except_touched = true };
    ]
    @ List.concat_map
        (fun full ->
          List.filter_map
            (fun reset_to ->
              if reset_to = full then None
              else Some (Rules.N_reset_full { full; reset_to }))
            ages)
        [ 1; Rules.max_age ]

let normalizes ~extended =
  let actions = norm_actions ~extended in
  let pre_actions =
    (* [except_touched] is meaningless before a miss (no touched line). *)
    List.filter
      (function Rules.N_aging { except_touched = true } -> false | _ -> true)
      actions
  in
  List.concat_map
    (fun pre ->
      List.map
        (fun touched -> { Rules.n_touched = touched; n_pre_miss = pre })
        actions)
    pre_actions

(* Initial age vectors, likeliest first: constant vectors, then vectors
   that are constant except one line (New1's {3,3,3,0}), then everything
   else. *)
let inits assoc =
  let all = ref [] in
  let rec enum prefix = function
    | 0 -> all := Array.of_list (List.rev prefix) :: !all
    | k -> List.iter (fun a -> enum (a :: prefix) (k - 1)) ages
  in
  enum [] assoc;
  (* Constant vectors first (highest constants leading: aging policies
     start "everything distant"), then near-constant ones like New1's
     {3,3,3,0}, then the rest. *)
  let score v =
    let distinct = List.sort_uniq compare (Array.to_list v) in
    let shape = match List.length distinct with 1 -> 0 | 2 -> 1 | _ -> 2 in
    (shape, -v.(0))
  in
  List.stable_sort (fun a b -> compare (score a) (score b)) !all

(* --- Checking ------------------------------------------------------------ *)

(* Exact check: bisimulation between the learned machine and the program.
   Returns None on success or a distinguishing input word. *)
let check_exact machine prog =
  let assoc = Cq_automata.Mealy.n_inputs machine - 1 in
  let seen = Hashtbl.create 997 in
  let exception Cex of int list in
  let rec go mstate pstate path depth =
    let key = (mstate, Array.to_list pstate) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key (); (* cq-lint: allow hashtbl-add: guarded by the mem test above *)
      for i = 0 to assoc do
        let mnext, mout = Cq_automata.Mealy.step machine mstate i in
        let presult =
          if i < assoc then
            match Rules.hit prog pstate i with
            | s -> Some (s, None)
            | exception Rules.Stuck -> None
          else
            match Rules.miss prog pstate with
            | s, v -> Some (s, Some v)
            | exception Rules.Stuck -> None
        in
        match presult with
        | None -> raise (Cex (List.rev (i :: path)))
        | Some (pnext, pout) ->
            if pout <> mout then raise (Cex (List.rev (i :: path)))
            else go mnext pnext (i :: path) (depth + 1)
      done
    end
  in
  match go (Cq_automata.Mealy.init machine) prog.Rules.init [] 0 with
  | () -> None
  | exception Cex w -> Some w

(* Cheap screen: does the program reproduce the machine's outputs on a
   fixed trace?  The expected outputs are precomputed once per trace. *)
let passes_trace ~assoc prog (word, expected) =
  let rec go state word expected =
    match (word, expected) with
    | [], [] -> true
    | i :: ws, o :: os -> (
        if i < assoc then
          match Rules.hit prog state i with
          | s -> o = None && go s ws os
          | exception Rules.Stuck -> false
        else
          match Rules.miss prog state with
          | s, v -> o = Some v && go s ws os
          | exception Rules.Stuck -> false)
    | _ -> false
  in
  go prog.Rules.init word expected

(* --- The search ----------------------------------------------------------- *)

let synthesize_with ?(with_others = true) ~extended ?(deadline = infinity)
    machine =
  let assoc = Cq_automata.Mealy.n_inputs machine - 1 in
  let t0 = Cq_util.Clock.mono () in
  let tried = ref 0 in
  (* One deadline representation across the code base (Cq_util.Clock):
     the same abstraction bounds the learning supervisor and reset
     discovery. *)
  let dl = Cq_util.Clock.after deadline in
  let timeout () = Cq_util.Clock.expired dl in
  (* Test suite (CEGIS): seeded with miss-heavy and short mixed traces.
     Expected outputs are precomputed so that screening a candidate is a
     pure program run. *)
  let evct = assoc in
  let suite = ref [] in
  let add_trace w = suite := (w, Cq_automata.Mealy.run machine w) :: !suite in
  add_trace (List.init (3 * assoc) (fun _ -> evct));
  for i = 0 to assoc - 1 do
    add_trace [ evct; i; evct; evct; i; evct; i; i; evct ];
    add_trace [ i; evct; i; evct ]
  done;
  add_trace (List.concat (List.init assoc (fun i -> [ i; evct ])));
  let miss_trace =
    let w = List.init (4 * assoc) (fun _ -> evct) in
    (w, Cq_automata.Mealy.run machine w)
  in
  let exception Done of Rules.program in
  let exception Timed_out in
  let promotes = promotes ~with_others ~extended () in
  let normalizes = normalizes ~extended in
  let nop_promote = { Rules.p_self = [ (Rules.Always, Rules.Keep) ]; p_others = None } in
  try
    List.iter
      (fun init ->
        if timeout () then raise Timed_out;
        List.iter
          (fun evict ->
            List.iter
              (fun insert ->
                List.iter
                  (fun normalize ->
                    (* Stage 1: miss-only behaviour (promotion-free). *)
                    let skeleton =
                      {
                        Rules.init;
                        promote = nop_promote;
                        evict;
                        insert;
                        normalize;
                      }
                    in
                    if passes_trace ~assoc skeleton miss_trace then
                      (* Stage 2: full candidates over this skeleton. *)
                      List.iter
                        (fun promote ->
                          incr tried;
                          if !tried land 0xFFF = 0 && timeout () then
                            raise Timed_out;
                          let prog = { skeleton with Rules.promote } in
                          if List.for_all (passes_trace ~assoc prog) !suite
                          then
                            match check_exact machine prog with
                            | None -> raise (Done prog)
                            | Some cex -> add_trace cex)
                        promotes)
                  normalizes)
              inserts)
          evicts)
      (inits assoc);
    {
      outcome = Not_expressible;
      template = (if extended then "Extended" else "Simple");
      candidates_tried = !tried;
      seconds = Cq_util.Clock.mono () -. t0;
    }
  with
  | Done prog ->
      {
        outcome = Found prog;
        template = (if extended then "Extended" else "Simple");
        candidates_tried = !tried;
        seconds = Cq_util.Clock.mono () -. t0;
      }
  | Timed_out ->
      {
        outcome = Timeout;
        template = (if extended then "Extended" else "Simple");
        candidates_tried = !tried;
        seconds = Cq_util.Clock.mono () -. t0;
      }

(* The paper's workflow (§8.1): try the Simple template first, fall back to
   the Extended one.  The Extended search runs in two phases — promotion
   rules without cross-line updates first (every Extended-template policy
   in the paper's evaluation lives there), then the full grammar. *)
let synthesize ?(deadline = infinity) machine =
  let dl = Cq_util.Clock.after deadline in
  let phases =
    [ (false, true); (true, false); (true, true) ]
    (* (extended, with_others) — Simple always keeps the full grammar,
       since LRU-style policies need cross-line promotion updates. *)
  in
  let rec go spent tried = function
    | [] ->
        {
          outcome = Not_expressible;
          template = "Extended";
          candidates_tried = tried;
          seconds = spent;
        }
    | (extended, with_others) :: rest ->
        let remaining = Cq_util.Clock.remaining_or dl infinity in
        let r =
          synthesize_with ~with_others ~extended ~deadline:remaining machine
        in
        let spent = spent +. r.seconds in
        let tried = tried + r.candidates_tried in
        (match r.outcome with
        | Found _ -> { r with seconds = spent; candidates_tried = tried }
        | Timeout when rest = [] || remaining <= 0.0 ->
            { r with outcome = Timeout; seconds = spent; candidates_tried = tried }
        | _ -> go spent tried rest)
  in
  go 0.0 0 phases
