(* The client side of the cachequeryd protocol: blocking calls over one
   connection, with typed errors re-raised from the daemon's replies.

   Resilience is opt-in: a client built with [~retry] owns a dialer (not
   just a socket) and heals connection failures transparently —
   jittered-exponential reconnect via [Cq_util.Backoff], idempotency
   keys stamped on the mutating verbs (session.create / learn.start) so
   a retry across a daemon failover replays instead of double-creating,
   and event streams that resubscribe from the last seen sequence
   number.  Without [~retry] the behaviour is the historical one: a
   single connection, first failure raises. *)

type retry = {
  attempts : int;
  policy : Cq_util.Backoff.policy;
  sleep : float -> unit;
  seed : int;
}

let retry ?(attempts = 5) ?policy ?(sleep = Unix.sleepf) ?(seed = 0) () =
  if attempts < 1 then invalid_arg "Client.retry: attempts must be >= 1";
  let policy =
    match policy with
    | Some p -> p
    | None ->
        (* Decorrelated jitter so a daemon restart does not synchronise
           every client into a reconnect storm. *)
        Cq_util.Backoff.policy ~base:0.02 ~cap:1.0 ()
  in
  { attempts; policy; sleep; seed }

type t = {
  m : Mutex.t;
  dial : (unit -> Unix.file_descr) option; (* None: wrapped fd, no redial *)
  retry : retry option;
  mutable fd : Unix.file_descr option;
  mutable next_id : int;
  mutable was_connected : bool;
  mutable reconnects : int;
  mutable request_retries : int;
  mutable idem_seq : int;
  idem_prefix : string;
}

exception Error of { kind : string; message : string }

let protocol_error message = raise (Error { kind = "protocol"; message })

let ignore_sigpipe () =
  (* A daemon dying mid-call must raise EPIPE from the write, not kill
     the client process with SIGPIPE. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* Distinguishes client instances born in the same process at the same
   millisecond — pid + time alone collide across concurrent clients, and
   colliding prefixes would replay one client's idempotent creates to
   another. *)
let instance_counter = Atomic.make 0

let make ?retry ~dial fd =
  ignore_sigpipe ();
  {
    m = Mutex.create ();
    dial;
    retry;
    fd;
    next_id = 1;
    was_connected = fd <> None;
    reconnects = 0;
    request_retries = 0;
    idem_seq = 0;
    (* Unique across client processes, restarts, and instances: pid,
       wall-clock millis at construction ([Clock.now] is the sanctioned
       wall-clock read), and a per-process instance counter. *)
    idem_prefix =
      Printf.sprintf "%d-%x-%d" (Unix.getpid ())
        (int_of_float (Cq_util.Clock.now () *. 1000.) land 0xFFFFFF)
        (Atomic.fetch_and_add instance_counter 1);
  }

let dial_unix path () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
        protocol_error (Printf.sprintf "cannot resolve %S" host)
    | h -> h.Unix.h_addr_list.(0)
    | exception Not_found ->
        protocol_error (Printf.sprintf "cannot resolve %S" host))

let dial_tcp host port () =
  let addr = resolve host in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

(* Establish (or re-establish) the connection; call with [t.m] held.
   With retry, connect attempts back off with jitter; without, one
   attempt raises as it always did. *)
let ensure t =
  match t.fd with
  | Some fd -> fd
  | None -> (
      let dial =
        match t.dial with
        | Some d -> d
        | None -> protocol_error "connection closed (wrapped fd, no redial)"
      in
      let connected fd =
        if t.was_connected then t.reconnects <- t.reconnects + 1;
        t.was_connected <- true;
        t.fd <- Some fd;
        fd
      in
      match t.retry with
      | None -> connected (dial ())
      | Some r -> (
          match
            Cq_util.Backoff.retry ~sleep:r.sleep ~seed:r.seed ~policy:r.policy
              ~attempts:r.attempts ~init:None
              (fun ~attempt:_ _ ->
                match dial () with
                | fd -> `Done fd
                | exception (Unix.Unix_error _ as e) -> `Retry (Some e))
          with
          | Ok fd -> connected fd
          | Error (Some e) -> raise e
          | Error None -> protocol_error "connect retry loop yielded nothing"))

let drop t =
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None

let connect_fd fd = make ~dial:None (Some fd)

let connect_unix ?retry path =
  let t = make ?retry ~dial:(Some (dial_unix path)) None in
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) (fun () -> ignore (ensure t));
  t

let connect_tcp ?retry host port =
  let t = make ?retry ~dial:(Some (dial_tcp host port)) None in
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) (fun () -> ignore (ensure t));
  t

let close c =
  Mutex.lock c.m;
  drop c;
  Mutex.unlock c.m

let reconnects c = c.reconnects
let request_retries c = c.request_retries

let read_doc fd =
  match Protocol.read_frame fd with
  | Protocol.Frame payload -> (
      match Json.parse payload with
      | doc -> doc
      | exception Json.Parse_error msg ->
          protocol_error ("unparseable reply: " ^ msg))
  | Protocol.Eof -> protocol_error "daemon closed the connection"
  | Protocol.Bad err -> protocol_error (Protocol.frame_error_to_string err)

let check_reply doc =
  match Json.member "ok" doc with
  | Some (Json.Bool true) -> doc
  | Some (Json.Bool false) ->
      let kind, message =
        match Json.member "error" doc with
        | Some err ->
            ( Option.value ~default:"error" (Json.mem_str "kind" err),
              Option.value ~default:"" (Json.mem_str "message" err) )
        | None -> ("error", "malformed error reply")
      in
      raise (Error { kind; message })
  | _ -> protocol_error "reply lacks an \"ok\" field"

let send_request t fd ?params verb =
  let id = t.next_id in
  t.next_id <- id + 1;
  let fields =
    [ ("verb", Json.String verb); ("id", Json.Int id) ]
    @ match params with Some p -> [ ("params", p) ] | None -> []
  in
  Protocol.send fd (Json.Obj fields)

(* One request/reply exchange on the live connection; [t.m] held. *)
let exchange t ?params verb =
  let fd = ensure t in
  send_request t fd ?params verb;
  check_reply (read_doc fd)

let is_conn_failure = function
  | Unix.Unix_error _ | Error { kind = "protocol"; _ } -> true
  (* An injected torn write leaves this side's stream desynchronised,
     exactly like a real mid-frame disconnect: drop and redial. *)
  | Cq_util.Faults.Injected _ -> true
  | _ -> false

(* The retrying call core.  Connection failures drop the socket and — for
   [retryable] verbs on a retry-enabled client — redial and resend.
   Typed [busy]/[degraded] rejections are transient by construction
   (load shedding, a breaker cooling down) and retry the same way.
   Everything else raises immediately. *)
let call_core ~retryable t ?params verb =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      match t.retry with
      | None -> exchange t ?params verb
      | Some r -> (
          match
            Cq_util.Backoff.retry ~sleep:r.sleep ~seed:r.seed ~policy:r.policy
              ~attempts:r.attempts ~init:None
              (fun ~attempt:_ _ ->
                match exchange t ?params verb with
                | doc -> `Done doc
                | exception e ->
                    if is_conn_failure e then begin
                      drop t;
                      if retryable then begin
                        t.request_retries <- t.request_retries + 1;
                        `Retry (Some e)
                      end
                      else raise e
                    end
                    else (
                      match e with
                      | Error { kind = "busy" | "degraded"; _ } when retryable
                        ->
                          t.request_retries <- t.request_retries + 1;
                          `Retry (Some e)
                      | e -> raise e))
          with
          | Ok doc -> doc
          | Error (Some e) -> raise e
          | Error None -> protocol_error "retry loop yielded nothing"))

let call c ?params verb = call_core ~retryable:true c ?params verb

let is_end doc = Json.mem_str "type" doc = Some "end"

let stream_once t ?params verb f =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      let fd = ensure t in
      send_request t fd ?params verb;
      let reply = check_reply (read_doc fd) in
      let rec drain () =
        let doc = read_doc fd in
        if is_end doc then ()
        else begin
          f doc;
          drain ()
        end
      in
      drain ();
      reply)

let stream c ?params verb f = stream_once c ?params verb f

(* --- convenience wrappers --- *)

let ping c = call c "ping"
let health c = call c "health"

let opt_field name = function Some v -> [ (name, v) ] | None -> []

let session_of reply =
  match Json.mem_int "session" reply with
  | Some sid -> sid
  | None -> protocol_error "reply lacks a session id"

(* Mutating verbs get an idempotency key whenever retry is enabled, so a
   resend after a mid-reply disconnect replays the original success
   server-side instead of double-creating. *)
let idem_field c =
  match c.retry with
  | None -> []
  | Some _ ->
      c.idem_seq <- c.idem_seq + 1;
      [ ("idem", Json.String (Printf.sprintf "%s-%d" c.idem_prefix c.idem_seq)) ]

let create_sim c ?name ?query_budget ~policy ~assoc () =
  let params =
    Json.Obj
      ([
         ( "target",
           Json.Obj
             [
               ("kind", Json.String "sim");
               ("policy", Json.String policy);
               ("assoc", Json.Int assoc);
             ] );
       ]
      @ opt_field "name" (Option.map (fun n -> Json.String n) name)
      @ opt_field "query_budget"
          (Option.map (fun b -> Json.Int b) query_budget)
      @ idem_field c)
  in
  session_of (call c ~params "session.create")

let create_hw c ?name ?query_budget ?(seed = 42) ?(noise = "quiet") ~cpu
    ~level ~set () =
  let params =
    Json.Obj
      ([
         ( "target",
           Json.Obj
             [
               ("kind", Json.String "hw");
               ("cpu", Json.String cpu);
               ("level", Json.String level);
               ("set", Json.Int set);
               ("seed", Json.Int seed);
               ("noise", Json.String noise);
             ] );
       ]
      @ opt_field "name" (Option.map (fun n -> Json.String n) name)
      @ opt_field "query_budget"
          (Option.map (fun b -> Json.Int b) query_budget)
      @ idem_field c)
  in
  session_of (call c ~params "session.create")

let learn_start c ?resume ?kill_after_queries ?query_budget sid =
  let params =
    Json.Obj
      ([ ("session", Json.Int sid) ]
      @ opt_field "resume" (Option.map (fun b -> Json.Bool b) resume)
      @ opt_field "kill_after_queries"
          (Option.map (fun n -> Json.Int n) kill_after_queries)
      @ opt_field "query_budget"
          (Option.map (fun n -> Json.Int n) query_budget)
      @ idem_field c)
  in
  ignore (call c ~params "learn.start")

let learn_wait c ?timeout_s sid =
  let params =
    Json.Obj
      ([ ("session", Json.Int sid) ]
      @ opt_field "timeout_s" (Option.map (fun s -> Json.Float s) timeout_s))
  in
  call c ~params "learn.wait"

let learn_cancel c sid =
  ignore (call c ~params:(Json.Obj [ ("session", Json.Int sid) ]) "learn.cancel")

let attach c sid =
  call c ~params:(Json.Obj [ ("session", Json.Int sid) ]) "session.attach"

let status c sid =
  call c ~params:(Json.Obj [ ("session", Json.Int sid) ]) "learn.status"

let result c ?(dot = false) sid =
  call c
    ~params:(Json.Obj [ ("session", Json.Int sid); ("dot", Json.Bool dot) ])
    "session.result"

(* A membership query re-executes on the hardware and charges the session
   budget, so it is deliberately NOT resent on a connection failure — the
   caller decides whether double-charging is acceptable. *)
let query_sim c sid word =
  let reply =
    call_core ~retryable:false c
      ~params:
        (Json.Obj [ ("session", Json.Int sid); ("word", Json.of_int_list word) ])
      "query"
  in
  match Json.mem_list "outputs" reply with
  | Some outputs ->
      List.map
        (fun o -> Option.value ~default:"?" (Json.to_str o))
        outputs
  | None -> protocol_error "query reply lacks \"outputs\""

let query_mbl c sid mbl =
  call_core ~retryable:false c
    ~params:(Json.Obj [ ("session", Json.Int sid); ("mbl", Json.String mbl) ])
    "query"

(* Replay is read-only and budget-free server-side, so unlike membership
   queries it is safe to resend after a connection failure. *)
let replay c ?source ~spec sid =
  let params =
    Json.Obj
      ([ ("session", Json.Int sid); ("spec", Json.String spec) ]
      @ opt_field "source" (Option.map (fun s -> Json.String s) source))
  in
  call c ~params "replay"

(* Analysis is likewise read-only and budget-free, hence resendable. *)
let analyze c ?source sid =
  let params =
    Json.Obj
      ([ ("session", Json.Int sid) ]
      @ opt_field "source" (Option.map (fun s -> Json.String s) source))
  in
  call c ~params "analyze"

(* Event stream with transparent resume: remember the last sequence seen
   and resubscribe from there after a reconnect, so a daemon bounce costs
   neither duplicates nor gaps. *)
let events c ?(from = 0) ?(follow = true) sid f =
  let next = ref from in
  let params () =
    Json.Obj
      [
        ("session", Json.Int sid);
        ("from", Json.Int !next);
        ("follow", Json.Bool follow);
      ]
  in
  let handle doc =
    (match Json.mem_int "seq" doc with
    | Some s -> next := s + 1
    | None -> ());
    f doc
  in
  match c.retry with
  | None -> stream_once c ~params:(params ()) "events" handle
  | Some r -> (
      match
        Cq_util.Backoff.retry ~sleep:r.sleep ~seed:r.seed ~policy:r.policy
          ~attempts:r.attempts ~init:None
          (fun ~attempt:_ _ ->
            match stream_once c ~params:(params ()) "events" handle with
            | reply -> `Done reply
            | exception e when is_conn_failure e ->
                Mutex.lock c.m;
                drop c;
                c.request_retries <- c.request_retries + 1;
                Mutex.unlock c.m;
                `Retry (Some e))
      with
      | Ok reply -> reply
      | Error (Some e) -> raise e
      | Error None -> protocol_error "event retry loop yielded nothing")

let shutdown c =
  try ignore (call_core ~retryable:false c "shutdown")
  with Error { kind = "protocol"; _ } | Unix.Unix_error _ -> ()
