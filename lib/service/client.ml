(* The client side of the cachequeryd protocol: blocking calls over one
   connection, with typed errors re-raised from the daemon's replies. *)

type t = { fd : Unix.file_descr; m : Mutex.t; mutable next_id : int }

exception Error of { kind : string; message : string }

let protocol_error message = raise (Error { kind = "protocol"; message })

let connect_fd fd =
  (* A daemon dying mid-call must raise EPIPE from the write, not kill
     the client process with SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  { fd; m = Mutex.create (); next_id = 1 }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  connect_fd fd

let connect_tcp host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          protocol_error (Printf.sprintf "cannot resolve %S" host)
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found ->
          protocol_error (Printf.sprintf "cannot resolve %S" host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  connect_fd fd

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let read_doc c =
  match Protocol.read_frame c.fd with
  | Protocol.Frame payload -> (
      match Json.parse payload with
      | doc -> doc
      | exception Json.Parse_error msg ->
          protocol_error ("unparseable reply: " ^ msg))
  | Protocol.Eof -> protocol_error "daemon closed the connection"
  | Protocol.Bad err -> protocol_error (Protocol.frame_error_to_string err)

let check_reply doc =
  match Json.member "ok" doc with
  | Some (Json.Bool true) -> doc
  | Some (Json.Bool false) ->
      let kind, message =
        match Json.member "error" doc with
        | Some err ->
            ( Option.value ~default:"error" (Json.mem_str "kind" err),
              Option.value ~default:"" (Json.mem_str "message" err) )
        | None -> ("error", "malformed error reply")
      in
      raise (Error { kind; message })
  | _ -> protocol_error "reply lacks an \"ok\" field"

let send_request c ?params verb =
  let id = c.next_id in
  c.next_id <- id + 1;
  let fields =
    [ ("verb", Json.String verb); ("id", Json.Int id) ]
    @ match params with Some p -> [ ("params", p) ] | None -> []
  in
  Protocol.send c.fd (Json.Obj fields)

let call c ?params verb =
  Mutex.lock c.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.m)
    (fun () ->
      send_request c ?params verb;
      check_reply (read_doc c))

let is_end doc = Json.mem_str "type" doc = Some "end"

let stream c ?params verb f =
  Mutex.lock c.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.m)
    (fun () ->
      send_request c ?params verb;
      let reply = check_reply (read_doc c) in
      let rec drain () =
        let doc = read_doc c in
        if is_end doc then ()
        else begin
          f doc;
          drain ()
        end
      in
      drain ();
      reply)

(* --- convenience wrappers --- *)

let ping c = call c "ping"

let opt_field name = function Some v -> [ (name, v) ] | None -> []

let session_of reply =
  match Json.mem_int "session" reply with
  | Some sid -> sid
  | None -> protocol_error "reply lacks a session id"

let create_sim c ?name ?query_budget ~policy ~assoc () =
  let params =
    Json.Obj
      ([
         ( "target",
           Json.Obj
             [
               ("kind", Json.String "sim");
               ("policy", Json.String policy);
               ("assoc", Json.Int assoc);
             ] );
       ]
      @ opt_field "name" (Option.map (fun n -> Json.String n) name)
      @ opt_field "query_budget"
          (Option.map (fun b -> Json.Int b) query_budget))
  in
  session_of (call c ~params "session.create")

let create_hw c ?name ?query_budget ?(seed = 42) ?(noise = false) ~cpu ~level
    ~set () =
  let params =
    Json.Obj
      ([
         ( "target",
           Json.Obj
             [
               ("kind", Json.String "hw");
               ("cpu", Json.String cpu);
               ("level", Json.String level);
               ("set", Json.Int set);
               ("seed", Json.Int seed);
               ("noise", Json.Bool noise);
             ] );
       ]
      @ opt_field "name" (Option.map (fun n -> Json.String n) name)
      @ opt_field "query_budget"
          (Option.map (fun b -> Json.Int b) query_budget))
  in
  session_of (call c ~params "session.create")

let learn_start c ?resume ?kill_after_queries ?query_budget sid =
  let params =
    Json.Obj
      ([ ("session", Json.Int sid) ]
      @ opt_field "resume" (Option.map (fun b -> Json.Bool b) resume)
      @ opt_field "kill_after_queries"
          (Option.map (fun n -> Json.Int n) kill_after_queries)
      @ opt_field "query_budget"
          (Option.map (fun n -> Json.Int n) query_budget))
  in
  ignore (call c ~params "learn.start")

let learn_wait c ?timeout_s sid =
  let params =
    Json.Obj
      ([ ("session", Json.Int sid) ]
      @ opt_field "timeout_s" (Option.map (fun s -> Json.Float s) timeout_s))
  in
  call c ~params "learn.wait"

let learn_cancel c sid =
  ignore (call c ~params:(Json.Obj [ ("session", Json.Int sid) ]) "learn.cancel")

let status c sid =
  call c ~params:(Json.Obj [ ("session", Json.Int sid) ]) "learn.status"

let result c ?(dot = false) sid =
  call c
    ~params:(Json.Obj [ ("session", Json.Int sid); ("dot", Json.Bool dot) ])
    "session.result"

let query_sim c sid word =
  let reply =
    call c
      ~params:
        (Json.Obj [ ("session", Json.Int sid); ("word", Json.of_int_list word) ])
      "query"
  in
  match Json.mem_list "outputs" reply with
  | Some outputs ->
      List.map
        (fun o -> Option.value ~default:"?" (Json.to_str o))
        outputs
  | None -> protocol_error "query reply lacks \"outputs\""

let query_mbl c sid mbl =
  call c
    ~params:(Json.Obj [ ("session", Json.Int sid); ("mbl", Json.String mbl) ])
    "query"

let shutdown c =
  try ignore (call c "shutdown")
  with Error { kind = "protocol"; _ } | Unix.Unix_error _ -> ()
