(* cachequeryd's engine: sessions, the fair hardware token, the worker
   pool, and the request dispatcher.

   Threading model (threads.posix, one domain): each listener has an
   accept thread, each connection a handler thread, and learns run on a
   fixed pool of worker threads consuming a bounded queue.  All shared
   state — the session table, the learn queue, per-session learn state —
   is guarded by one server mutex [t.m]; the hardware token has its own
   lock so waiting for hardware never holds the server lock.  Each learn
   is single-threaded and deterministic: concurrency lives only between
   sessions, which is why an interleaved learn still produces the solo
   run's automaton (asserted in test_service). *)

module Clock = Cq_util.Clock
module Metrics = Cq_util.Metrics
module Trace = Cq_util.Trace
module Learn = Cq_core.Learn

(* Control-flow exceptions raised from the learner's [probe] hook.  They
   are outside the supervisor's failure taxonomy, so [Learn.run] writes a
   final snapshot and re-raises them to the worker (see learn_core's
   exception path) — exactly the failover contract. *)
exception Cancelled
exception Worker_killed (* fault injection: simulate a dead worker *)
exception Draining (* graceful shutdown parked the learn *)

(* The hardware token: FIFO turnstile serialising access to the (one)
   measurement device.  A learn holds a ticket from one top-level oracle
   query to the next probe call, where it yields — release then
   re-acquire — so contending sessions hand the device around in strict
   arrival order, at query granularity.  Ad-hoc membership queries
   acquire around a single query.  Tickets (not session ids) are the
   holder identity: one session may legitimately wait twice (a learn and
   a concurrent membership query). *)
module Gate = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    waiting : int Queue.t;
    mutable holder : int option;
    mutable next_ticket : int;
    acquires : Metrics.counter;
    contended : Metrics.counter;
    wait_seconds : Metrics.histogram;
  }

  let create registry =
    {
      m = Mutex.create ();
      c = Condition.create ();
      waiting = Queue.create ();
      holder = None;
      next_ticket = 0;
      acquires = Metrics.counter registry "service.gate.acquires";
      contended = Metrics.counter registry "service.gate.contended";
      wait_seconds =
        Metrics.histogram ~buckets:16 ~start:0.0001 ~base:4.0 registry
          "service.gate.wait_seconds";
    }

  let acquire t =
    Mutex.lock t.m;
    let ticket = t.next_ticket in
    t.next_ticket <- ticket + 1;
    Queue.push ticket t.waiting;
    Metrics.incr t.acquires;
    let t0 = Clock.mono () in
    let contended = ref false in
    while not (t.holder = None && Queue.peek t.waiting = ticket) do
      contended := true;
      Condition.wait t.c t.m
    done;
    ignore (Queue.pop t.waiting);
    t.holder <- Some ticket;
    if !contended then begin
      Metrics.incr t.contended;
      Metrics.observe t.wait_seconds (Clock.mono () -. t0)
    end;
    Mutex.unlock t.m;
    ticket

  let release t ticket =
    Mutex.lock t.m;
    if t.holder = Some ticket then begin
      t.holder <- None;
      Condition.broadcast t.c
    end;
    Mutex.unlock t.m

  (* The learn-loop handoff point: give every waiter its turn, then get
     back in line. *)
  let yield t ticket =
    release t ticket;
    acquire t

  (* Queue depth for the health verb: holders + waiters. *)
  let depth t =
    Mutex.lock t.m;
    let n =
      Queue.length t.waiting + match t.holder with Some _ -> 1 | None -> 0
    in
    Mutex.unlock t.m;
    n
end

type target =
  | Sim of { policy : string; assoc : int }
  | Hw of {
      cpu : string;
      level : Cq_hwsim.Cpu_model.level;
      slice : int;
      set : int;
      seed : int;
      noise : string; (* hwsim noise preset: quiet/default/burst/drift *)
    }

(* The PR-2 noise presets, addressable over the wire: chaos schedules
   pick a backend-degradation profile by name. *)
let noise_preset_of_name = function
  | "quiet" -> Some Cq_hwsim.Machine.quiet_noise
  | "default" -> Some Cq_hwsim.Machine.default_noise
  | "burst" -> Some Cq_hwsim.Machine.burst_noise
  | "drift" -> Some Cq_hwsim.Machine.drift_noise
  | _ -> None

let target_json = function
  | Sim { policy; assoc } ->
      Json.Obj
        [
          ("kind", Json.String "sim");
          ("policy", Json.String policy);
          ("assoc", Json.Int assoc);
        ]
  | Hw { cpu; level; slice; set; seed; noise } ->
      Json.Obj
        [
          ("kind", Json.String "hw");
          ("cpu", Json.String cpu);
          ("level", Json.String (Cq_hwsim.Cpu_model.level_to_string level));
          ("slice", Json.Int slice);
          ("set", Json.Int set);
          ("seed", Json.Int seed);
          ("noise", Json.String noise);
        ]

type learn_state =
  | Idle
  | Queued
  | Running of { queries : int; started : float (* mono *) }
  | Done of {
      digest : string;
      states : int;
      member_queries : int;
      seconds : float;
      identified : string list;
    }
  | Failed of { kind : string; detail : string; snapshot : string option }

let state_name = function
  | Idle -> "idle"
  | Queued -> "queued"
  | Running _ -> "running"
  | Done _ -> "done"
  | Failed _ -> "failed"

type session = {
  sid : int;
  name : string;
  target : target;
  snapshot_path : string;
  budget : int option; (* lifetime hardware-query budget *)
  mutable queries_used : int;
  mutable refs : int;
  mutable state : learn_state;
  mutable cancel_requested : bool;
  (* options for the next learn, set by learn.start *)
  mutable learn_resume : bool;
  mutable kill_after : int option;
  mutable learn_budget : int option;
  (* learned artefacts *)
  mutable machine : Cq_policy.Types.output Cq_automata.Mealy.t option;
  mutable learned_assoc : int option;
  (* lazily built membership-query engines *)
  mutable sim_polca : Cq_core.Polca.t option;
  mutable hw_frontend : Cq_cachequery.Frontend.t option;
  (* bounded recent-events ring, newest first *)
  mutable events : (int * (string * Json.t) list) list;
  mutable next_seq : int;
  mutable last_progress : int;
}

type config = {
  socket_path : string;
  tcp : (string * int) option;
  workers : int;
  state_dir : string;
  max_inflight : int;
  snapshot_every : int;
  progress_every : int;
  breaker_threshold : int; (* consecutive learn failures before tripping *)
  breaker_cooldown : float; (* seconds open before a half-open probe *)
}

let config ?tcp ?(workers = 2) ?(max_inflight = 8) ?(snapshot_every = 500)
    ?(progress_every = 512) ?(breaker_threshold = 5) ?(breaker_cooldown = 2.0)
    ~state_dir socket_path =
  {
    socket_path;
    tcp;
    workers;
    state_dir;
    max_inflight;
    snapshot_every;
    progress_every;
    breaker_threshold;
    breaker_cooldown;
  }

type t = {
  cfg : config;
  m : Mutex.t;
  work_available : Condition.t;
  changed : Condition.t; (* any session state transition *)
  sessions : (int, session) Hashtbl.t;
  queue : int Queue.t; (* sids with state Queued *)
  mutable inflight : int; (* queued + running learns *)
  mutable next_sid : int;
  mutable stopping : bool;
  mutable stop_started : bool;
  mutable stopped_flag : bool;
  mutable stop_requested : bool;
  mutable listeners : Unix.file_descr list;
  mutable threads : Thread.t list; (* accept + worker threads *)
  mutable conns : (Unix.file_descr * Thread.t) list;
  devices : (string, Cq_hwsim.Machine.t) Hashtbl.t;
  gate : Gate.t;
  breaker : Cq_util.Breaker.t;
  (* Idempotency-key replay cache: success replies of mutating verbs
     (session.create, learn.start), keyed by the client-chosen "idem"
     string, so a retry across a reconnect returns the original reply
     instead of double-creating.  Bounded FIFO; failures are never
     cached (the client should genuinely retry those). *)
  idem : (string, (string * Json.t) list) Hashtbl.t;
  idem_order : string Queue.t;
  registry : Metrics.t;
  started_at : float; (* mono *)
  c_connections : Metrics.counter;
  c_requests : Metrics.counter;
  c_protocol_errors : Metrics.counter;
  c_busy : Metrics.counter;
  c_degraded : Metrics.counter;
  c_idem_replays : Metrics.counter;
  c_snapshot_degraded : Metrics.counter;
  c_learns_started : Metrics.counter;
  c_learns_done : Metrics.counter;
  c_learns_failed : Metrics.counter;
  c_events : Metrics.counter;
  h_request_seconds : Metrics.histogram;
}

let create ?metrics cfg =
  let registry =
    match metrics with Some r -> r | None -> Metrics.create ()
  in
  (if not (Sys.file_exists cfg.state_dir) then
     try Unix.mkdir cfg.state_dir 0o755 with Unix.Unix_error _ -> ());
  {
    cfg;
    m = Mutex.create ();
    work_available = Condition.create ();
    changed = Condition.create ();
    sessions = Hashtbl.create 16;
    queue = Queue.create ();
    inflight = 0;
    next_sid = 1;
    stopping = false;
    stop_started = false;
    stopped_flag = false;
    stop_requested = false;
    listeners = [];
    threads = [];
    conns = [];
    devices = Hashtbl.create 4;
    gate = Gate.create registry;
    breaker =
      Cq_util.Breaker.create ~failure_threshold:cfg.breaker_threshold
        ~cooldown:cfg.breaker_cooldown ();
    idem = Hashtbl.create 16;
    idem_order = Queue.create ();
    registry;
    started_at = Clock.mono ();
    c_connections = Metrics.counter registry "service.connections";
    c_requests = Metrics.counter registry "service.requests";
    c_protocol_errors = Metrics.counter registry "service.protocol_errors";
    c_busy = Metrics.counter registry "service.busy_rejections";
    c_degraded = Metrics.counter registry "service.degraded_rejections";
    c_idem_replays = Metrics.counter registry "service.idem_replays";
    c_snapshot_degraded = Metrics.counter registry "service.snapshot_degraded";
    c_learns_started = Metrics.counter registry "service.learns_started";
    c_learns_done = Metrics.counter registry "service.learns_done";
    c_learns_failed = Metrics.counter registry "service.learns_failed";
    c_events = Metrics.counter registry "service.events";
    h_request_seconds =
      Metrics.histogram ~buckets:20 ~start:0.0001 ~base:4.0 registry
        "service.request_seconds";
  }

let metrics t = t.registry

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* --- events (call with [t.m] held) --- *)

let max_events = 256

let publish_locked t s ty extra =
  let seq = s.next_seq in
  s.next_seq <- seq + 1;
  let fields =
    ("type", Json.String ty)
    :: ("session", Json.Int s.sid)
    :: ("seq", Json.Int seq)
    :: extra
  in
  s.events <-
    (let l = (seq, fields) :: s.events in
     if List.length l > max_events then List.filteri (fun i _ -> i < max_events) l
     else l);
  Metrics.incr t.c_events;
  Trace.instant ~cat:"service"
    ~args:[ ("session", string_of_int s.sid) ]
    ("service.event." ^ ty);
  Condition.broadcast t.changed

(* --- session helpers --- *)

let digest_of_machine m = Digest.to_hex (Digest.string (Marshal.to_string m []))

let failure_kind = function
  | Learn.Transient _ -> "transient"
  | Learn.Diverged _ -> "diverged"
  | Learn.Budget_exhausted _ -> "budget_exhausted"
  | Learn.Worker_lost _ -> "worker_lost"
  | Learn.Invalid _ -> "invalid"

let session_json s =
  let base =
    [
      ("session", Json.Int s.sid);
      ("name", Json.String s.name);
      ("target", target_json s.target);
      ("state", Json.String (state_name s.state));
      ("queries_used", Json.Int s.queries_used);
      ( "budget",
        match s.budget with Some b -> Json.Int b | None -> Json.Null );
      ("refs", Json.Int s.refs);
      ("snapshot", Json.String s.snapshot_path);
      ("snapshot_exists", Json.Bool (Sys.file_exists s.snapshot_path));
    ]
  in
  let state_fields =
    match s.state with
    | Running { queries; started } ->
        [
          ("queries", Json.Int queries);
          ("running_seconds", Json.Float (Clock.mono () -. started));
        ]
    | Done { digest; states; member_queries; seconds; identified } ->
        [
          ("digest", Json.String digest);
          ("states", Json.Int states);
          ("member_queries", Json.Int member_queries);
          ("seconds", Json.Float seconds);
          ( "identified",
            Json.List (List.map (fun n -> Json.String n) identified) );
        ]
    | Failed { kind; detail; snapshot } ->
        [
          ("failure", Json.String kind);
          ("detail", Json.String detail);
          ( "failure_snapshot",
            match snapshot with Some p -> Json.String p | None -> Json.Null );
        ]
    | Idle | Queued -> []
  in
  Json.Obj (base @ state_fields)

let find_session t params =
  match Json.mem_int "session" params with
  | None -> Error "missing integer \"session\" field"
  | Some sid -> (
      match Hashtbl.find_opt t.sessions sid with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "unknown session %d" sid))

let remaining_budget s =
  match s.budget with
  | None -> None
  | Some b -> Some (max 0 (b - s.queries_used))

(* The machine registry: hardware sessions naming the same CPU/seed/noise
   share one simulated machine, which is what makes the fair-scheduling
   question real — their queries interleave on shared state, serialised
   by the gate at top-level-query granularity. *)
let device t cpu seed noise =
  let key = Printf.sprintf "%s:%d:%s" cpu seed noise in
  match Hashtbl.find_opt t.devices key with
  | Some m -> m
  | None ->
      let model =
        match Cq_hwsim.Cpu_model.by_name cpu with
        | Some m -> m
        | None -> failwith ("unknown CPU " ^ cpu)
      in
      let noise_cfg =
        match noise_preset_of_name noise with
        | Some cfg -> cfg
        | None -> failwith ("unknown noise preset " ^ noise)
      in
      let machine =
        Cq_hwsim.Machine.create ~seed:(Int64.of_int seed) ~noise:noise_cfg
          model
      in
      Hashtbl.replace t.devices key machine;
      machine

(* --- idempotency-key replay (call without [t.m] held) --- *)

let max_idem_entries = 256

let idem_find t key = locked t (fun () -> Hashtbl.find_opt t.idem key)

let idem_store t key fields =
  locked t (fun () ->
      if not (Hashtbl.mem t.idem key) then begin
        Hashtbl.replace t.idem key fields;
        Queue.push key t.idem_order;
        if Queue.length t.idem_order > max_idem_entries then begin
          let oldest = Queue.pop t.idem_order in
          Hashtbl.remove t.idem oldest
        end
      end)

(* --- the learn worker --- *)

type learn_result =
  | R_done of Learn.report
  | R_failed of Learn.failure * string option * int (* member queries *)

let run_learn t s =
  let spill_path = s.snapshot_path ^ ".spill" in
  let resume =
    if not s.learn_resume then None
    else if Sys.file_exists s.snapshot_path then Some s.snapshot_path
    else if Sys.file_exists spill_path then Some spill_path
    else None
  in
  let query_budget =
    match (remaining_budget s, s.learn_budget) with
    | None, b | b, None -> b
    | Some a, Some b -> Some (min a b)
  in
  (* A failed snapshot write degrades the session — typed warning event,
     re-route to the spill path — it never kills the learn. *)
  let snapshot =
    Learn.snapshot_policy ~every_queries:t.cfg.snapshot_every ~spill:spill_path
      ~on_degraded:(fun msg ->
        Metrics.incr t.c_snapshot_degraded;
        locked t (fun () ->
            publish_locked t s "snapshot_degraded"
              [ ("detail", Json.String msg) ]))
      s.snapshot_path
  in
  (* The historical kill_after_queries hook, now expressed as a fault
     schedule: a per-learn registry armed with [Reach k] on the worker
     kill site.  The daemon-wide ambient registry (--faults) can arm the
     same site to kill arbitrary learns. *)
  let kill_reg = Cq_util.Faults.create () in
  (match s.kill_after with
  | Some k ->
      Cq_util.Faults.arm kill_reg ~site:"service.worker.kill"
        (Cq_util.Faults.Reach k)
  | None -> ());
  (* Backend-probe chaos: an armed "hw.noise.burst" site flips the shared
     machine to the burst preset for one top-level query, restoring the
     session's configured preset at the next probe — the PR-2 noise model
     as an injectable fault. *)
  let burst_machine =
    match s.target with
    | Hw { cpu; seed; noise; _ } -> (
        match noise_preset_of_name noise with
        | Some cfg -> Some (device t cpu seed noise, cfg)
        | None -> None)
    | Sim _ -> None
  in
  let burst_active = ref false in
  let last_queries = ref 0 in
  let ticket = ref (Gate.acquire t.gate) in
  let probe q =
    last_queries := q;
    (match burst_machine with
    | Some (machine, configured) ->
        if !burst_active then begin
          Cq_hwsim.Machine.set_noise machine configured;
          burst_active := false
        end;
        if Cq_util.Faults.ambient_fire "hw.noise.burst" then begin
          Cq_hwsim.Machine.set_noise machine Cq_hwsim.Machine.burst_noise;
          burst_active := true
        end
    | None -> ());
    let raise_now =
      locked t (fun () ->
          (match s.state with
          | Running { queries; started } when q > queries ->
              s.state <- Running { queries = q; started };
              if q - s.last_progress >= t.cfg.progress_every then begin
                s.last_progress <- q;
                publish_locked t s "progress" [ ("queries", Json.Int q) ]
              end
          | _ -> ());
          if t.stopping then Some Draining
          else if s.cancel_requested then Some Cancelled
          else if
            Cq_util.Faults.fire ~n:q kill_reg "service.worker.kill"
            || Cq_util.Faults.ambient_fire ~n:q "service.worker.kill"
          then Some Worker_killed
          else None)
    in
    (match raise_now with Some e -> raise e | None -> ());
    (* Hand the hardware token around: FIFO across sessions, one
       top-level query per turn. *)
    ticket := Gate.yield t.gate !ticket
  in
  let result =
    match
      Fun.protect
        ~finally:(fun () ->
          (* The machine is shared across sessions: never leak an active
             burst past this learn's lifetime. *)
          (match burst_machine with
          | Some (machine, configured) when !burst_active ->
              Cq_hwsim.Machine.set_noise machine configured;
              burst_active := false
          | _ -> ());
          Gate.release t.gate !ticket)
        (fun () ->
          match s.target with
          | Sim { policy; assoc } -> (
              let p = Cq_policy.Zoo.make_exn ~name:policy ~assoc in
              match
                Learn.run_simulated ~identify:false ~snapshot ?resume
                  ?query_budget ~probe p
              with
              | Learn.Complete report -> R_done report
              | Learn.Partial p ->
                  R_failed (p.Learn.failure, p.Learn.snapshot, p.Learn.member_queries))
          | Hw { cpu; level; slice; set; seed; noise } -> (
              let machine = device t cpu seed noise in
              let run =
                Cq_core.Hardware.learn_set ~seed ~slice ~set ~check_hits:false
                  ~snapshot ?resume ?query_budget ~probe machine level
              in
              s.learned_assoc <- Some run.Cq_core.Hardware.assoc;
              match run.Cq_core.Hardware.outcome with
              | Cq_core.Hardware.Learned { report; _ } -> R_done report
              | Cq_core.Hardware.Partial
                  { failure; snapshot; member_queries; _ } ->
                  R_failed (failure, snapshot, member_queries)
              | Cq_core.Hardware.Failed { reason; _ } ->
                  R_failed (Learn.Transient reason, None, 0)))
    with
    | r -> Ok r
    | exception e -> Error e
  in
  let snapshot_if_exists () =
    if Sys.file_exists s.snapshot_path then Some s.snapshot_path
    else if Sys.file_exists spill_path then Some spill_path
    else None
  in
  (* Feed the breaker: only outcomes that say something about backend
     health count.  Budget exhaustion, divergence and cancellation are
     the caller's (or the policy's) doing, not the backend's — they
     release a held half-open probe without moving the state. *)
  (match result with
  | Ok (R_done _) -> Cq_util.Breaker.success t.breaker
  | Ok (R_failed (failure, _, _)) -> (
      match failure with
      | Learn.Transient _ | Learn.Worker_lost _ | Learn.Invalid _ ->
          Cq_util.Breaker.failure t.breaker
      | Learn.Budget_exhausted _ | Learn.Diverged _ ->
          Cq_util.Breaker.abandon t.breaker)
  | Error (Cancelled | Draining) -> Cq_util.Breaker.abandon t.breaker
  | Error _ -> Cq_util.Breaker.failure t.breaker);
  locked t (fun () ->
      (match result with
      | Ok (R_done report) ->
          s.queries_used <- s.queries_used + report.Learn.member_queries;
          s.machine <- Some report.Learn.machine;
          (match s.target with
          | Sim { assoc; _ } -> s.learned_assoc <- Some assoc
          | Hw _ -> ());
          let digest = digest_of_machine report.Learn.machine in
          s.state <-
            Done
              {
                digest;
                states = report.Learn.states;
                member_queries = report.Learn.member_queries;
                seconds = report.Learn.seconds;
                identified = report.Learn.identified;
              };
          Metrics.incr t.c_learns_done;
          publish_locked t s "done"
            [
              ("digest", Json.String digest);
              ("states", Json.Int report.Learn.states);
            ]
      | Ok (R_failed (failure, snap, member_queries)) ->
          s.queries_used <- s.queries_used + member_queries;
          let kind = failure_kind failure in
          let detail = Fmt.str "%a" Learn.pp_failure failure in
          s.state <- Failed { kind; detail; snapshot = snap };
          Metrics.incr t.c_learns_failed;
          publish_locked t s "failed" [ ("failure", Json.String kind) ]
      | Error e ->
          s.queries_used <- s.queries_used + !last_queries;
          let kind, detail =
            match e with
            | Cancelled -> ("cancelled", "cancelled by client request")
            | Worker_killed -> ("worker_killed", "worker died mid-learn")
            | Draining -> ("interrupted", "daemon shut down mid-learn")
            | e -> ("error", Printexc.to_string e)
          in
          s.state <- Failed { kind; detail; snapshot = snapshot_if_exists () };
          Metrics.incr t.c_learns_failed;
          publish_locked t s "failed" [ ("failure", Json.String kind) ]);
      s.cancel_requested <- false;
      t.inflight <- t.inflight - 1;
      Condition.broadcast t.changed)

let worker_loop t =
  let rec next () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.work_available t.m
    done;
    if t.stopping then begin
      Mutex.unlock t.m;
      ()
    end
    else begin
      let sid = Queue.pop t.queue in
      match Hashtbl.find_opt t.sessions sid with
      | None ->
          t.inflight <- t.inflight - 1;
          Mutex.unlock t.m;
          next ()
      | Some s ->
          s.state <- Running { queries = 0; started = Clock.mono () };
          s.last_progress <- 0;
          publish_locked t s "started" [];
          Mutex.unlock t.m;
          run_learn t s;
          next ()
    end
  in
  next ()

(* --- request dispatch --- *)

let reply fd ?id fields = Protocol.send fd (Protocol.ok ?id fields)
let reply_error fd ?id ~kind msg = Protocol.send fd (Protocol.error ?id ~kind msg)

let parse_level s =
  match String.uppercase_ascii s with
  | "L1" -> Some Cq_hwsim.Cpu_model.L1
  | "L2" -> Some Cq_hwsim.Cpu_model.L2
  | "L3" -> Some Cq_hwsim.Cpu_model.L3
  | _ -> None

let parse_target params =
  match Json.member "target" params with
  | None -> Error "missing \"target\" object"
  | Some target -> (
      match Json.mem_str "kind" target with
      | Some "sim" | Some "policy" -> (
          let assoc = Option.value ~default:4 (Json.mem_int "assoc" target) in
          match Json.mem_str "policy" target with
          | None -> Error "sim target lacks a \"policy\" field"
          | Some policy -> (
              match Cq_policy.Zoo.make ~name:policy ~assoc with
              | Error msg -> Error msg
              | Ok _ -> Ok (Sim { policy; assoc })))
      | Some "hw" -> (
          let cpu = Option.value ~default:"skylake" (Json.mem_str "cpu" target) in
          match Cq_hwsim.Cpu_model.by_name cpu with
          | None -> Error (Printf.sprintf "unknown CPU %S" cpu)
          | Some _ -> (
              match
                parse_level
                  (Option.value ~default:"L1" (Json.mem_str "level" target))
              with
              | None -> Error "level must be L1, L2 or L3"
              | Some level -> (
                  (* "noise" accepts a preset name; booleans are kept for
                     protocol-1 clients (false = quiet, true = default). *)
                  let noise =
                    match Json.member "noise" target with
                    | None -> Ok "quiet"
                    | Some (Json.Bool b) -> Ok (if b then "default" else "quiet")
                    | Some (Json.String s) -> (
                        match noise_preset_of_name s with
                        | Some _ -> Ok s
                        | None ->
                            Error
                              (Printf.sprintf
                                 "unknown noise preset %S (quiet, default, \
                                  burst, drift)"
                                 s))
                    | Some _ ->
                        Error "noise must be a bool or a preset name string"
                  in
                  match noise with
                  | Error _ as e -> e
                  | Ok noise ->
                      Ok
                        (Hw
                           {
                             cpu;
                             level;
                             slice =
                               Option.value ~default:0
                                 (Json.mem_int "slice" target);
                             set =
                               Option.value ~default:0
                                 (Json.mem_int "set" target);
                             seed =
                               Option.value ~default:42
                                 (Json.mem_int "seed" target);
                             noise;
                           }))))
      | Some k -> Error (Printf.sprintf "unknown target kind %S" k)
      | None -> Error "target lacks a \"kind\" field")

let sanitize_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    name

let v_session_create t fd id params =
  let idem = Json.mem_str "idem" params in
  match Option.bind idem (idem_find t) with
  | Some fields ->
      (* A retried create after a reconnect: replay the original success
         instead of double-creating the session. *)
      Metrics.incr t.c_idem_replays;
      reply fd ~id fields
  | None -> (
      match parse_target params with
      | Error msg -> reply_error fd ~id ~kind:"bad_request" msg
      | Ok target ->
      let result =
        locked t (fun () ->
            if t.stopping then Error ("shutting_down", "daemon is shutting down")
            else begin
              let sid = t.next_sid in
              t.next_sid <- sid + 1;
              let name =
                match Json.mem_str "name" params with
                | Some n -> sanitize_name n
                | None -> Printf.sprintf "session-%d" sid
              in
              let clash =
                Hashtbl.fold
                  (fun _ s acc -> acc || s.name = name)
                  t.sessions false
              in
              if clash then
                Error
                  ( "bad_request",
                    Printf.sprintf "session name %S already in use" name )
              else begin
                let s =
                  {
                    sid;
                    name;
                    target;
                    snapshot_path =
                      Filename.concat t.cfg.state_dir (name ^ ".snap");
                    budget = Json.mem_int "query_budget" params;
                    queries_used = 0;
                    refs = 1;
                    state = Idle;
                    cancel_requested = false;
                    learn_resume = false;
                    kill_after = None;
                    learn_budget = None;
                    machine = None;
                    learned_assoc =
                      (match target with
                      | Sim { assoc; _ } -> Some assoc
                      | Hw _ -> None);
                    sim_polca = None;
                    hw_frontend = None;
                    events = [];
                    next_seq = 0;
                    last_progress = 0;
                  }
                in
                Hashtbl.replace t.sessions sid s;
                publish_locked t s "created" [];
                Ok s
              end
            end)
      in
      match result with
      | Error (kind, msg) -> reply_error fd ~id ~kind msg
      | Ok s ->
          let fields =
            [
              ("session", Json.Int s.sid);
              ("name", Json.String s.name);
              ("snapshot", Json.String s.snapshot_path);
            ]
          in
          (match idem with
          | Some key -> idem_store t key fields
          | None -> ());
          reply fd ~id fields)

let v_learn_start t fd id params =
  let idem = Json.mem_str "idem" params in
  match Option.bind idem (idem_find t) with
  | Some fields ->
      (* Retried across a daemon failover: the learn was already queued
         by the original request — replay, don't double-start. *)
      Metrics.incr t.c_idem_replays;
      reply fd ~id fields
  | None -> (
      let result =
        locked t (fun () ->
            match find_session t params with
            | Error msg -> Error ("unknown_session", msg)
            | Ok s -> (
                if t.stopping then
                  Error ("shutting_down", "daemon is shutting down")
                else
                  match s.state with
                  | Queued | Running _ ->
                      Metrics.incr t.c_busy;
                      Error
                        ("busy", "a learn is already in progress on this session")
                  | Idle | Done _ | Failed _ ->
                      if t.inflight >= t.cfg.max_inflight then begin
                        Metrics.incr t.c_busy;
                        Error
                          ( "busy",
                            Printf.sprintf
                              "server at capacity (%d learns in flight)"
                              t.inflight )
                      end
                      else if remaining_budget s = Some 0 then
                        Error
                          ( "budget_exhausted",
                            Printf.sprintf "session budget of %d queries spent"
                              (Option.value ~default:0 s.budget) )
                      else if not (Cq_util.Breaker.allow t.breaker) then begin
                        (* Load shedding: the backend keeps failing — a
                           fast typed rejection beats a slot in a queue
                           that cannot drain. *)
                        Metrics.incr t.c_degraded;
                        Error
                          ( "degraded",
                            "hardware backend degraded (circuit breaker \
                             open); retry after the cooldown" )
                      end
                      else begin
                        s.learn_resume <-
                          Option.value ~default:false
                            (Json.mem_bool "resume" params);
                        s.kill_after <- Json.mem_int "kill_after_queries" params;
                        s.learn_budget <- Json.mem_int "query_budget" params;
                        s.cancel_requested <- false;
                        s.state <- Queued;
                        t.inflight <- t.inflight + 1;
                        Metrics.incr t.c_learns_started;
                        Queue.push s.sid t.queue;
                        publish_locked t s "queued" [];
                        Condition.signal t.work_available;
                        Ok s.sid
                      end))
      in
      match result with
      | Error (kind, msg) -> reply_error fd ~id ~kind msg
      | Ok sid ->
          let fields =
            [ ("session", Json.Int sid); ("state", Json.String "queued") ]
          in
          (match idem with
          | Some key -> idem_store t key fields
          | None -> ());
          reply fd ~id fields)

let v_learn_cancel t fd id params =
  let result =
    locked t (fun () ->
        match find_session t params with
        | Error msg -> Error ("unknown_session", msg)
        | Ok s -> (
            match s.state with
            | Running _ ->
                s.cancel_requested <- true;
                Ok "cancelling"
            | Queued ->
                (* Never started: pull it out of the queue directly. *)
                let keep = Queue.create () in
                Queue.iter
                  (fun sid -> if sid <> s.sid then Queue.push sid keep)
                  t.queue;
                Queue.clear t.queue;
                Queue.transfer keep t.queue;
                t.inflight <- t.inflight - 1;
                s.state <-
                  Failed
                    {
                      kind = "cancelled";
                      detail = "cancelled before starting";
                      snapshot = None;
                    };
                publish_locked t s "failed"
                  [ ("failure", Json.String "cancelled") ];
                Ok "cancelled"
            | Idle | Done _ | Failed _ ->
                Error ("bad_request", "no learn in progress")))
  in
  match result with
  | Error (kind, msg) -> reply_error fd ~id ~kind msg
  | Ok state -> reply fd ~id [ ("state", Json.String state) ]

let v_learn_wait t fd id params =
  let timeout = Json.member "timeout_s" params in
  let timeout = Option.bind timeout Json.to_float in
  let deadline =
    match timeout with Some s -> Clock.after s | None -> Clock.no_deadline
  in
  let rec wait () =
    let status =
      locked t (fun () ->
          match find_session t params with
          | Error msg -> Some (Error ("unknown_session", msg))
          | Ok s -> (
              match s.state with
              | Done _ | Failed _ | Idle -> Some (Ok (session_json s, false))
              | Queued | Running _ ->
                  if t.stopping then Some (Ok (session_json s, false))
                  else if Clock.expired deadline then
                    Some (Ok (session_json s, true))
                  else None))
    in
    match status with
    | Some r -> r
    | None ->
        Thread.delay 0.02;
        wait ()
  in
  match wait () with
  | Error (kind, msg) -> reply_error fd ~id ~kind msg
  | Ok (json, timed_out) ->
      let fields =
        match json with Json.Obj f -> f | other -> [ ("status", other) ]
      in
      reply fd ~id (fields @ [ ("timed_out", Json.Bool timed_out) ])

let v_session_result t fd id params =
  let want_dot = Option.value ~default:false (Json.mem_bool "dot" params) in
  let result =
    locked t (fun () ->
        match find_session t params with
        | Error msg -> Error ("unknown_session", msg)
        | Ok s -> (
            match (s.state, s.machine) with
            | Done d, Some m -> Ok (d.digest, d.states, m, s.learned_assoc)
            | _ -> Error ("no_result", "session has no completed learn")))
  in
  match result with
  | Error (kind, msg) -> reply_error fd ~id ~kind msg
  | Ok (digest, states, m, assoc) ->
      let dot =
        if want_dot then
          let assoc =
            match assoc with
            | Some a -> a
            | None -> Cq_automata.Mealy.n_inputs m - 1
          in
          [
            ( "dot",
              Json.String
                (Cq_automata.Mealy.to_dot
                   ~input_label:(Cq_policy.Types.input_label ~assoc)
                   ~output_label:Cq_policy.Types.output_label m) );
          ]
        else []
      in
      reply fd ~id
        ([ ("digest", Json.String digest); ("states", Json.Int states) ] @ dot)

(* Membership queries: one hardware interaction under the gate, counted
   against the session budget. *)
let v_query t fd id params =
  let checked =
    locked t (fun () ->
        match find_session t params with
        | Error msg -> Error ("unknown_session", msg)
        | Ok s ->
            if remaining_budget s = Some 0 then
              Error
                ( "budget_exhausted",
                  Printf.sprintf "session budget of %d queries spent"
                    (Option.value ~default:0 s.budget) )
            else Ok s)
  in
  match checked with
  | Error (kind, msg) -> reply_error fd ~id ~kind msg
  | Ok s -> (
      match s.target with
      | Sim { policy; assoc } -> (
          match Option.bind (Json.member "word" params) Json.int_list with
          | None ->
              reply_error fd ~id ~kind:"bad_request"
                "sim query needs a \"word\" list of integers"
          | Some word ->
              let n = assoc + 1 in
              if List.exists (fun i -> i < 0 || i >= n) word then
                reply_error fd ~id ~kind:"bad_request"
                  (Printf.sprintf "word symbols must be in 0..%d" (n - 1))
              else begin
                let ticket = Gate.acquire t.gate in
                let outputs =
                  Fun.protect
                    ~finally:(fun () -> Gate.release t.gate ticket)
                    (fun () ->
                      let polca =
                        match s.sim_polca with
                        | Some p -> p
                        | None ->
                            let p =
                              Cq_core.Polca.create ~check_hits:false
                                (Cq_cache.Oracle.of_policy
                                   (Cq_policy.Zoo.make_exn ~name:policy ~assoc))
                            in
                            s.sim_polca <- Some p;
                            p
                      in
                      Cq_core.Polca.run polca word)
                in
                locked t (fun () -> s.queries_used <- s.queries_used + 1);
                reply fd ~id
                  [
                    ( "outputs",
                      Json.List
                        (List.map
                           (fun o ->
                             Json.String (Cq_policy.Types.output_label o))
                           outputs) );
                  ]
              end)
      | Hw { cpu; level; slice; set; seed; noise } -> (
          match Json.mem_str "mbl" params with
          | None ->
              reply_error fd ~id ~kind:"bad_request"
                "hw query needs an \"mbl\" expression string"
          | Some mbl -> (
              let ticket = Gate.acquire t.gate in
              match
                Fun.protect
                  ~finally:(fun () -> Gate.release t.gate ticket)
                  (fun () ->
                    let frontend =
                      match s.hw_frontend with
                      | Some f -> f
                      | None ->
                          let machine = device t cpu seed noise in
                          let backend =
                            Cq_cachequery.Backend.create machine
                              { Cq_cachequery.Backend.level; slice; set }
                          in
                          ignore (Cq_cachequery.Backend.calibrate backend);
                          let f = Cq_cachequery.Frontend.create backend in
                          s.hw_frontend <- Some f;
                          f
                    in
                    Cq_cachequery.Frontend.run_mbl frontend mbl)
              with
              | results ->
                  locked t (fun () ->
                      s.queries_used <- s.queries_used + List.length results);
                  reply fd ~id
                    [
                      ( "results",
                        Json.List
                          (List.map
                             (fun (q, rs) ->
                               Json.Obj
                                 [
                                   ( "query",
                                     Json.String
                                       (Cq_mbl.Expand.query_to_string q) );
                                   ( "outcomes",
                                     Json.List
                                       (List.map
                                          (fun r ->
                                            Json.String
                                              (match r with
                                              | Cq_cache.Cache_set.Hit -> "Hit"
                                              | Cq_cache.Cache_set.Miss ->
                                                  "Miss"))
                                          rs) );
                                 ])
                             results) );
                    ]
              | exception e ->
                  reply_error fd ~id ~kind:"bad_request"
                    (Printexc.to_string e))))

(* Workload replay served by the daemon: evaluate a trace spec against
   the session's policy (or its learned machine, once a learn is done)
   and the Belady-OPT bound.  One gate turn covers the whole trace —
   replay is a read-only evaluation, not a hardware interaction, so it
   does not charge the query budget. *)
let v_replay t fd id params =
  let checked =
    locked t (fun () ->
        match find_session t params with
        | Error msg -> Error ("unknown_session", msg)
        | Ok s -> Ok s)
  in
  match checked with
  | Error (kind, msg) -> reply_error fd ~id ~kind msg
  | Ok s -> (
      match s.target with
      | Hw _ ->
          reply_error fd ~id ~kind:"bad_request"
            "replay serves simulated sessions only"
      | Sim { policy; assoc } -> (
          match Json.mem_str "spec" params with
          | None ->
              reply_error fd ~id ~kind:"bad_request"
                (Printf.sprintf "replay needs a \"spec\" string (%s)"
                   Cq_workload.Trace.spec_syntax)
          | Some spec -> (
              match Cq_workload.Trace.of_spec ~assoc spec with
              | Error msg -> reply_error fd ~id ~kind:"bad_request" msg
              | Ok tr -> (
                  let source =
                    Option.value ~default:"auto" (Json.mem_str "source" params)
                  in
                  let machine = locked t (fun () -> s.machine) in
                  match (source, machine) with
                  | "learned", None ->
                      reply_error fd ~id ~kind:"bad_request"
                        "session has no learned machine yet"
                  | (("auto" | "learned" | "policy") as source), _ ->
                      let blocks = tr.Cq_workload.Trace.blocks in
                      let use_learned =
                        source <> "policy" && machine <> None
                      in
                      let ticket = Gate.acquire t.gate in
                      let outcome =
                        Fun.protect
                          ~finally:(fun () -> Gate.release t.gate ticket)
                          (fun () ->
                            if use_learned then
                              let m = Option.get machine in
                              Cq_workload.Replay.compiled
                                (Cq_automata.Mealy.compile m)
                                blocks
                            else
                              Cq_workload.Replay.policy
                                (Cq_policy.Zoo.make_exn ~name:policy ~assoc)
                                blocks)
                      in
                      let opt = Cq_workload.Opt.replay ~assoc blocks in
                      reply fd ~id
                        [
                          ("spec", Json.String tr.Cq_workload.Trace.spec);
                          ("trace", Json.String tr.Cq_workload.Trace.label);
                          ( "source",
                            Json.String
                              (if use_learned then "learned" else "policy") );
                          ("accesses", Json.Int (Array.length blocks));
                          ("hits", Json.Int outcome.Cq_workload.Replay.hits);
                          ( "misses",
                            Json.Int outcome.Cq_workload.Replay.misses );
                          ( "hit_rate",
                            Json.Float (Cq_workload.Replay.hit_rate outcome)
                          );
                          ( "opt_hits",
                            Json.Int opt.Cq_workload.Replay.hits );
                          ( "opt_hit_rate",
                            Json.Float (Cq_workload.Replay.hit_rate opt) );
                        ]
                  | _ ->
                      reply_error fd ~id ~kind:"bad_request"
                        "source must be \"auto\", \"policy\" or \"learned\""))))

(* Static security analysis served by the daemon: run Cq_analysis.Attack
   over the session's policy automaton (or its learned machine, once a
   learn is done), dynamically verify every synthesized sequence against
   the replay paths and hwsim, and reply with the attack-cost and
   leakage summary.  Like replay: read-only, one gate turn, no query
   budget charged. *)
let v_analyze t fd id params =
  let checked =
    locked t (fun () ->
        match find_session t params with
        | Error msg -> Error ("unknown_session", msg)
        | Ok s -> Ok s)
  in
  match checked with
  | Error (kind, msg) -> reply_error fd ~id ~kind msg
  | Ok s -> (
      match s.target with
      | Hw _ ->
          reply_error fd ~id ~kind:"bad_request"
            "analyze serves simulated sessions only"
      | Sim { policy; assoc } -> (
          let source =
            Option.value ~default:"auto" (Json.mem_str "source" params)
          in
          let machine = locked t (fun () -> s.machine) in
          match (source, machine) with
          | "learned", None ->
              reply_error fd ~id ~kind:"bad_request"
                "session has no learned machine yet"
          | (("auto" | "learned" | "policy") as source), _ -> (
              let use_learned = source <> "policy" && machine <> None in
              let p = Cq_policy.Zoo.make_exn ~name:policy ~assoc in
              let ticket = Gate.acquire t.gate in
              let outcome =
                Fun.protect
                  ~finally:(fun () -> Gate.release t.gate ticket)
                  (fun () ->
                    let report =
                      if use_learned then
                        Cq_analysis.Attack.analyze ~name:policy
                          (Option.get machine)
                      else Cq_analysis.Attack.analyze_policy p
                    in
                    let verified =
                      match
                        ( Cq_analysis.Attack.verify p report,
                          Cq_analysis.Attack.verify_hwsim p report )
                      with
                      | Ok (), Ok () -> Ok ()
                      | Error e, _ | _, Error e -> Error e
                    in
                    (report, verified))
              in
              match outcome with
              | report, Ok () ->
                  let module A = Cq_analysis.Attack in
                  let l = report.A.leakage in
                  reply fd ~id
                    ([
                       ( "source",
                         Json.String
                           (if use_learned then "learned" else "policy") );
                       ("policy", Json.String policy);
                       ("assoc", Json.Int report.A.assoc);
                       ("states", Json.Int report.A.states);
                       ( "eviction_set_size",
                         Json.Int report.A.eviction_set_size );
                       ("eviction_length", Json.Int report.A.eviction_length);
                       ("probe_classes", Json.Int l.A.probe_classes);
                       ( "evicted_information",
                         Json.Float l.A.evicted_information );
                       ("absorbed_noise", Json.Int l.A.absorbed_noise);
                       ( "residual_information",
                         Json.Float l.A.residual_information );
                       ("verified", Json.Int 1);
                     ]
                    @
                    match report.A.stealthy with
                    | None -> [ ("stealthy", Json.Null) ]
                    | Some st ->
                        [
                          ( "stealthy_length",
                            Json.Int
                              (List.length st.A.setup
                              + List.length st.A.body) );
                          ("stealthy_repeatable", Json.Bool st.A.repeatable);
                        ])
              | _, Error msg ->
                  reply_error fd ~id ~kind:"internal"
                    ("synthesized sequence failed dynamic verification: "
                    ^ msg))
          | _ ->
              reply_error fd ~id ~kind:"bad_request"
                "source must be \"auto\", \"policy\" or \"learned\""))

let v_events t fd id params =
  let from = Option.value ~default:0 (Json.mem_int "from" params) in
  let follow = Option.value ~default:true (Json.mem_bool "follow" params) in
  let sid =
    locked t (fun () ->
        match find_session t params with
        | Error msg -> Error ("unknown_session", msg)
        | Ok s -> Ok s.sid)
  in
  match sid with
  | Error (kind, msg) -> reply_error fd ~id ~kind msg
  | Ok sid ->
      reply fd ~id [ ("subscribed", Json.Int sid) ];
      let next = ref from in
      let rec stream () =
        let batch, finished =
          locked t (fun () ->
              match Hashtbl.find_opt t.sessions sid with
              | None -> ([], true)
              | Some s ->
                  let fresh =
                    List.filter (fun (seq, _) -> seq >= !next) s.events
                    |> List.sort (fun (a, _) (b, _) -> compare a b)
                  in
                  let terminal =
                    match s.state with
                    | Done _ | Failed _ | Idle -> true
                    | Queued | Running _ -> false
                  in
                  (fresh, (terminal && not follow) || terminal))
        in
        List.iter
          (fun (seq, fields) ->
            next := seq + 1;
            Protocol.send fd (Protocol.event fields))
          batch;
        let stop_now =
          locked t (fun () -> t.stopping)
          || (finished && batch = [])
          || not follow
        in
        if stop_now then
          Protocol.send fd (Protocol.event [ ("type", Json.String "end") ])
        else begin
          Thread.delay 0.02;
          stream ()
        end
      in
      stream ()

(* Liveness + degradation in one reply: gate depth (hardware contention),
   inflight vs capacity, breaker state, snapshot-disk headroom, and the
   armed fault sites (so a chaos run can audit its own schedule). *)
let v_health t fd id =
  let gate_depth = Gate.depth t.gate in
  let sessions, inflight, stopping =
    locked t (fun () -> (Hashtbl.length t.sessions, t.inflight, t.stopping))
  in
  let breaker = Cq_util.Breaker.state t.breaker in
  let degraded = breaker <> Cq_util.Breaker.Closed || stopping in
  let fault_sites =
    match Cq_util.Faults.ambient () with
    | None -> Json.Null
    | Some f ->
        Json.List
          (List.map
             (fun (site, hits, fires) ->
               Json.Obj
                 [
                   ("site", Json.String site);
                   ("hits", Json.Int hits);
                   ("fires", Json.Int fires);
                 ])
             (Cq_util.Faults.counts f))
  in
  reply fd ~id
    [
      ("status", Json.String (if degraded then "degraded" else "ok"));
      ("breaker", Json.String (Cq_util.Breaker.state_to_string breaker));
      ("breaker_trips", Json.Int (Cq_util.Breaker.trips t.breaker));
      ("breaker_rejections", Json.Int (Cq_util.Breaker.rejections t.breaker));
      ("gate_depth", Json.Int gate_depth);
      ("inflight", Json.Int inflight);
      ("max_inflight", Json.Int t.cfg.max_inflight);
      ("sessions", Json.Int sessions);
      ("stopping", Json.Bool stopping);
      ("uptime_seconds", Json.Float (Clock.mono () -. t.started_at));
      ("state_dir", Json.String t.cfg.state_dir);
      ( "disk_free_bytes",
        match Cq_util.Disk.free_bytes t.cfg.state_dir with
        | Some b -> Json.Int (Int64.to_int b)
        | None -> Json.Null );
      ("fault_sites", fault_sites);
    ]

let v_stats t fd id =
  let sessions, inflight =
    locked t (fun () -> (Hashtbl.length t.sessions, t.inflight))
  in
  let metrics_json =
    match Json.parse_opt (Metrics.to_json t.registry) with
    | Some j -> j
    | None -> Json.Null
  in
  reply fd ~id
    [
      ("sessions", Json.Int sessions);
      ("inflight", Json.Int inflight);
      ("uptime_seconds", Json.Float (Clock.mono () -. t.started_at));
      ("metrics", metrics_json);
    ]

let dispatch t fd { Protocol.id; verb; params } =
  match verb with
  | "hello" | "ping" ->
      reply fd ~id
        [ ("server", Json.String "cachequeryd"); ("protocol", Json.Int 1) ]
  | "session.create" -> v_session_create t fd id params
  | "session.attach" -> (
      match
        locked t (fun () ->
            match find_session t params with
            | Error msg -> Error msg
            | Ok s ->
                s.refs <- s.refs + 1;
                Ok (session_json s))
      with
      | Error msg -> reply_error fd ~id ~kind:"unknown_session" msg
      | Ok json -> (
          match json with
          | Json.Obj fields -> reply fd ~id fields
          | other -> reply fd ~id [ ("status", other) ]))
  | "session.detach" -> (
      match
        locked t (fun () ->
            match find_session t params with
            | Error msg -> Error msg
            | Ok s ->
                s.refs <- max 0 (s.refs - 1);
                Ok s.refs)
      with
      | Error msg -> reply_error fd ~id ~kind:"unknown_session" msg
      | Ok refs -> reply fd ~id [ ("refs", Json.Int refs) ])
  | "session.list" ->
      let sessions =
        locked t (fun () ->
            Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions []
            |> List.sort (fun a b -> compare a.sid b.sid)
            |> List.map session_json)
      in
      reply fd ~id [ ("sessions", Json.List sessions) ]
  | "session.drop" -> (
      match
        locked t (fun () ->
            match find_session t params with
            | Error msg -> Error ("unknown_session", msg)
            | Ok s -> (
                match s.state with
                | Queued | Running _ ->
                    Error ("busy", "session has a learn in progress")
                | Idle | Done _ | Failed _ ->
                    Hashtbl.remove t.sessions s.sid;
                    Ok s.sid))
      with
      | Error (kind, msg) -> reply_error fd ~id ~kind msg
      | Ok sid -> reply fd ~id [ ("dropped", Json.Int sid) ])
  | "session.status" | "learn.status" -> (
      match locked t (fun () ->
          match find_session t params with
          | Error msg -> Error msg
          | Ok s -> Ok (session_json s))
      with
      | Error msg -> reply_error fd ~id ~kind:"unknown_session" msg
      | Ok (Json.Obj fields) -> reply fd ~id fields
      | Ok other -> reply fd ~id [ ("status", other) ])
  | "learn.start" -> v_learn_start t fd id params
  | "learn.cancel" -> v_learn_cancel t fd id params
  | "learn.wait" -> v_learn_wait t fd id params
  | "session.result" -> v_session_result t fd id params
  | "query" -> v_query t fd id params
  | "replay" -> v_replay t fd id params
  | "analyze" -> v_analyze t fd id params
  | "events" -> v_events t fd id params
  | "stats" -> v_stats t fd id
  | "health" -> v_health t fd id
  | "shutdown" ->
      reply fd ~id [ ("stopping", Json.Bool true) ];
      t.stop_requested <- true;
      Condition.broadcast t.changed
  | verb ->
      reply_error fd ~id ~kind:"unknown_verb"
        (Printf.sprintf "unknown verb %S" verb)

(* --- connections --- *)

(* Wait until [fd] is readable, checking the stop flag so idle
   connections do not pin the shutdown join. *)
let rec wait_readable t fd =
  if t.stopping then `Stop
  else
    match Unix.select [ fd ] [] [] 0.25 with
    | [], _, _ -> wait_readable t fd
    | _ -> `Ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable t fd
    | exception Unix.Unix_error (_, _, _) -> `Stop

let handle_conn t fd =
  Metrics.incr t.c_connections;
  let rec loop () =
    match wait_readable t fd with
    | `Stop -> ()
    | `Ready -> (
        match Protocol.read_frame fd with
        | Protocol.Eof -> ()
        | Protocol.Bad err ->
            Metrics.incr t.c_protocol_errors;
            (try
               Protocol.send fd
                 (Protocol.error ~kind:"bad_frame"
                    (Protocol.frame_error_to_string err))
             with _ -> ());
            (* The stream is desynchronised — drop the connection. *)
            ()
        | Protocol.Frame payload ->
            Metrics.incr t.c_requests;
            let t0 = Clock.mono () in
            (match Json.parse payload with
            | exception Json.Parse_error msg ->
                Metrics.incr t.c_protocol_errors;
                Protocol.send fd (Protocol.error ~kind:"bad_json" msg)
            | doc -> (
                match Protocol.request_of_json doc with
                | Error msg ->
                    Metrics.incr t.c_protocol_errors;
                    Protocol.send fd (Protocol.error ~kind:"bad_request" msg)
                | Ok req -> (
                    try
                      Trace.with_span ~cat:"service" ("service." ^ req.verb)
                        (fun () -> dispatch t fd req)
                    with
                    | Unix.Unix_error _ as e -> raise e
                    (* A torn write left a partial frame on the wire; an
                       error reply appended to it would be read as frame
                       payload and wedge the peer.  Drop the connection —
                       the peer sees Truncated/Eof and reconnects. *)
                    | Cq_util.Faults.Injected _ as e -> raise e
                    | e ->
                        reply_error fd ~id:req.Protocol.id ~kind:"error"
                          (Printexc.to_string e))));
            Metrics.observe t.h_request_seconds (Clock.mono () -. t0);
            loop ())
  in
  (try loop () with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  locked t (fun () ->
      t.conns <- List.filter (fun (fd', _) -> fd' <> fd) t.conns)

let accept_loop t lfd =
  let rec loop () =
    if t.stopping then ()
    else
      match Unix.select [ lfd ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept lfd with
          | fd, _ ->
              if t.stopping then (try Unix.close fd with _ -> ())
              else begin
                let th = Thread.create (fun () -> handle_conn t fd) () in
                locked t (fun () -> t.conns <- (fd, th) :: t.conns);
                loop ()
              end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception Unix.Unix_error (_, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (_, _, _) -> ()
  in
  loop ()

(* --- lifecycle --- *)

let bind_unix path =
  if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fd

let bind_tcp addr port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
  Unix.listen fd 16;
  fd

let start t =
  (* A peer closing its socket mid-write must surface as EPIPE on the
     offending connection (handled per-connection above), not deliver a
     process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listeners =
    bind_unix t.cfg.socket_path
    ::
    (match t.cfg.tcp with
    | Some (addr, port) -> [ bind_tcp addr port ]
    | None -> [])
  in
  t.listeners <- listeners;
  let acceptors =
    List.map (fun lfd -> Thread.create (fun () -> accept_loop t lfd) ()) listeners
  in
  let workers =
    List.init t.cfg.workers (fun _ -> Thread.create (fun () -> worker_loop t) ())
  in
  t.threads <- acceptors @ workers

let stopped t = t.stopped_flag

let request_stop t = t.stop_requested <- true

let stop t =
  let proceed =
    locked t (fun () ->
        if t.stop_started then false
        else begin
          t.stop_started <- true;
          t.stopping <- true;
          (* Queued-but-not-started learns will never run: park them so
             clients see a terminal state (their snapshots, if any, still
             resume). *)
          Queue.iter
            (fun sid ->
              match Hashtbl.find_opt t.sessions sid with
              | Some s when s.state = Queued ->
                  s.state <-
                    Failed
                      {
                        kind = "interrupted";
                        detail = "daemon shut down before the learn started";
                        snapshot =
                          (if Sys.file_exists s.snapshot_path then
                             Some s.snapshot_path
                           else None);
                      };
                  t.inflight <- t.inflight - 1;
                  publish_locked t s "failed"
                    [ ("failure", Json.String "interrupted") ]
              | _ -> ())
            t.queue;
          Queue.clear t.queue;
          Condition.broadcast t.work_available;
          Condition.broadcast t.changed;
          true
        end)
  in
  if not proceed then
    while not t.stopped_flag do
      Thread.delay 0.02
    done
  else begin
    (* Running learns hit [Draining] at their next probe, write a final
       snapshot and park as [interrupted]; workers then drain.  Accept
       loops notice the flag within their select timeout. *)
    List.iter
      (fun lfd -> try Unix.close lfd with Unix.Unix_error _ -> ())
      t.listeners;
    List.iter (fun th -> Thread.join th) t.threads;
    (* Nudge connection handlers off any blocking read, then join. *)
    let conns = locked t (fun () -> t.conns) in
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, th) -> Thread.join th) conns;
    (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
    t.stopped_flag <- true
  end

let run t =
  start t;
  while not t.stop_requested do
    Thread.delay 0.1
  done;
  stop t
