(** A minimal JSON tree for the service protocol.

    The repository deliberately has no JSON dependency — the metrics and
    trace exporters hand-roll their output through
    {!Cq_util.Metrics.json_string}.  The daemon additionally needs to
    {e read} JSON (requests arrive as JSON frames), so this module adds
    the smallest recursive-descent parser that round-trips with those
    exporters.  Integers are kept distinct from floats so session ids and
    query counts survive a round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} on malformed input; the message carries a byte
    offset. *)

val parse : string -> t
(** Parse one JSON document.  Trailing non-whitespace input is an error
    (frames carry exactly one document). *)

val parse_opt : string -> t option

val to_string : t -> string
(** Compact (single-line) serialization; strings are escaped exactly like
    the metrics exporter's. *)

val pp : Format.formatter -> t -> unit

(** {1 Accessors}

    All partial accessors return [option]; [member] on a non-object is
    [None] (absent and wrong-shape look the same to the protocol layer,
    which answers [bad_request] either way). *)

val member : string -> t -> t option
val to_int : t -> int option
(** [Int n] and integral [Float]s both convert. *)

val to_float : t -> float option
val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option

val mem_str : string -> t -> string option
val mem_int : string -> t -> int option
val mem_bool : string -> t -> bool option
val mem_list : string -> t -> t list option

val of_int_list : int list -> t
val int_list : t -> int list option
(** [Some] only if the value is a list of integers. *)
