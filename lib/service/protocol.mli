(** The cachequeryd wire protocol: length-prefixed JSON frames.

    Every message — request, reply, streamed event — is one frame: a
    4-byte big-endian payload length followed by that many bytes of JSON.
    The length is bounded by {!max_frame}; a peer announcing more (or a
    negative length, which can only arise from garbage) is answered with
    a typed [bad_frame] error and disconnected, never crashed on.

    Requests are objects [{"verb": ..., "id"?: ..., "params"?: {...}}].
    Replies echo the request's [id] and carry ["ok": true] plus
    verb-specific fields, or ["ok": false] with an ["error"] object
    [{"kind": ..., "message": ...}].  Error kinds are closed — see
    {!section-kinds}. *)

val max_frame : int
(** Maximum payload bytes per frame (4 MiB). *)

type frame_error =
  | Bad_magic of int  (** declared length is negative — garbage prefix *)
  | Oversized of int  (** declared length exceeds {!max_frame} *)
  | Truncated of { declared : int; got : int }
      (** the peer closed the connection mid-frame *)

val frame_error_to_string : frame_error -> string

type read_result = Frame of string | Eof | Bad of frame_error

val read_frame : Unix.file_descr -> read_result
(** Read one frame.  [Eof] is a clean close {e between} frames; a close
    inside a frame is [Bad (Truncated _)].  Retries [EINTR]; any other
    [Unix_error] surfaces as [Eof] (the connection is gone either way). *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame.  Raises [Invalid_argument] if the payload exceeds
    {!max_frame}; [Unix_error]s (peer gone) propagate to the caller. *)

(** {1 Requests} *)

type request = {
  id : Json.t;  (** echoed verbatim in the reply; [Null] if absent *)
  verb : string;
  params : Json.t;  (** [Null] if absent *)
}

val request_of_json : Json.t -> (request, string) result

(** {1:kinds Replies}

    Error kinds the daemon emits: [bad_frame], [bad_json], [bad_request],
    [unknown_verb], [unknown_session], [busy], [budget_exhausted],
    [no_result], [shutting_down], [error] (internal). *)

val ok : ?id:Json.t -> (string * Json.t) list -> Json.t
(** [{"ok": true, "id": id, ...fields}]. *)

val error : ?id:Json.t -> kind:string -> string -> Json.t
(** [{"ok": false, "id": id, "error": {"kind": kind, "message": msg}}]. *)

val event : (string * Json.t) list -> Json.t
(** A streamed event frame: [{"event": true, ...fields}] — distinguished
    from replies by the absence of ["ok"]. *)

val send : Unix.file_descr -> Json.t -> unit
(** [write_frame] of the serialized document. *)

val error_kind : Json.t -> string option
(** [Some kind] if the document is an error reply. *)
