(** cq-client: the client side of the cachequeryd protocol.

    A synchronous wrapper: one {!call} sends a frame and blocks on the
    reply (the daemon answers requests on a connection in order).  Error
    replies raise {!Error} with the daemon's typed kind, so tests and
    scripts can match on ["busy"] / ["budget_exhausted"] / ... without
    string-scraping messages.

    Resilience is opt-in via {!retry}.  A client connected with
    [~retry] owns its dialer and transparently heals connection
    failures: requests that hit a dead socket (or a typed ["busy"] /
    ["degraded"] rejection) redial with jittered-exponential backoff and
    resend; the mutating verbs ([session.create], [learn.start]) carry
    auto-generated idempotency keys so a resend across a daemon
    failover replays the original success instead of double-creating;
    and {!events} resubscribes from the last sequence number it saw, so
    a daemon bounce costs neither duplicate nor dropped events.
    Membership queries are the exception: they charge the session's
    query budget server-side, so they are never resent automatically. *)

type t

type retry
(** Reconnect/retry configuration — see {!val-retry}. *)

val retry :
  ?attempts:int ->
  ?policy:Cq_util.Backoff.policy ->
  ?sleep:(float -> unit) ->
  ?seed:int ->
  unit ->
  retry
(** Defaults: 5 attempts per operation, decorrelated-jitter backoff
    (base 20 ms, cap 1 s), [Unix.sleepf].  Inject [sleep] and [seed] in
    tests for deterministic, wall-clock-free retries. *)

exception Error of { kind : string; message : string }
(** A [{"ok": false}] reply, or a framing failure ([kind] = ["protocol"])
    — e.g. the daemon closed the connection mid-reply. *)

val connect_unix : ?retry:retry -> string -> t
val connect_tcp : ?retry:retry -> string -> int -> t

val connect_fd : Unix.file_descr -> t
(** Wrap an already-connected descriptor.  No dialer: such a client
    cannot reconnect, and a connection failure raises immediately. *)

val close : t -> unit

val reconnects : t -> int
(** Successful re-dials after a lost connection (0 without [~retry]). *)

val request_retries : t -> int
(** Requests resent after a connection failure or typed
    ["busy"]/["degraded"] shedding (0 without [~retry]). *)

val call : t -> ?params:Json.t -> string -> Json.t
(** [call c verb] sends one request and returns the [ok] reply document.
    Raises {!Error} on an error reply.  With [~retry], connection
    failures and ["busy"]/["degraded"] rejections are retried with
    backoff before the last error is re-raised. *)

val stream : t -> ?params:Json.t -> string -> (Json.t -> unit) -> Json.t
(** [stream c verb f] — for streaming verbs (["events"]): sends the
    request, returns the initial [ok] reply after feeding every streamed
    event frame to [f], until the terminal [{"type": "end"}] frame
    (exclusive).  Note the reply is read {e first}, then the stream.
    No automatic resume at this layer — use {!events} for that. *)

(** {1 Convenience wrappers} *)

val ping : t -> Json.t

val health : t -> Json.t
(** The daemon's [health] document: overall status, circuit-breaker
    state/trips/rejections, gate depth, inflight learns, snapshot-disk
    headroom, armed fault sites. *)

val create_sim :
  t -> ?name:string -> ?query_budget:int -> policy:string -> assoc:int -> unit -> int
(** Returns the new session id. *)

val create_hw :
  t ->
  ?name:string ->
  ?query_budget:int ->
  ?seed:int ->
  ?noise:string ->
  cpu:string ->
  level:string ->
  set:int ->
  unit ->
  int
(** [noise] names a hwsim preset: ["quiet"] (default), ["default"],
    ["burst"], ["drift"]. *)

val learn_start :
  t -> ?resume:bool -> ?kill_after_queries:int -> ?query_budget:int -> int -> unit

val learn_wait : t -> ?timeout_s:float -> int -> Json.t
(** Block until the session's learn reaches a terminal state (or the
    timeout); returns the status document. *)

val learn_cancel : t -> int -> unit

val attach : t -> int -> Json.t
(** Re-attach to an existing session (e.g. after a reconnect); returns
    its status document. *)

val status : t -> int -> Json.t

val result : t -> ?dot:bool -> int -> Json.t
(** The completed learn's [{digest; states; dot?}]; raises {!Error}
    [no_result] otherwise. *)

val query_sim : t -> int -> int list -> string list
(** Membership query on a sim session: outputs as labels (["⊥"] / line
    indices), one per input symbol.  Never auto-resent: a query spends
    session budget server-side, so a retry could double-charge. *)

val query_mbl : t -> int -> string -> Json.t
(** MBL query on a hw session; returns the reply document.  Never
    auto-resent (see {!query_sim}). *)

val replay : t -> ?source:string -> spec:string -> int -> Json.t
(** [replay c ~spec sid] evaluates a workload trace spec on a sim
    session, returning the reply document [{spec; trace; source;
    accesses; hits; misses; hit_rate; opt_hits; opt_hit_rate}].
    [source] is ["auto"] (default: the learned machine when one exists,
    else the policy), ["policy"], or ["learned"].  Replay is read-only
    and does not charge the query budget. *)

val analyze : t -> ?source:string -> int -> Json.t
(** [analyze c sid] runs the static security analysis
    ({!Cq_analysis.Attack}) over a sim session's policy automaton — the
    learned machine when one exists and [source] permits — with every
    synthesized sequence dynamically verified server-side.  Returns the
    reply document [{source; policy; assoc; states; eviction_set_size;
    eviction_length; probe_classes; evicted_information; absorbed_noise;
    residual_information; verified; stealthy_length?;
    stealthy_repeatable?}].  [source] as in {!replay}.  Read-only,
    budget-free. *)

val events : t -> ?from:int -> ?follow:bool -> int -> (Json.t -> unit) -> Json.t
(** [events c sid f] subscribes to the session's event stream, feeding
    each event document to [f].  With [~retry], a connection failure
    mid-stream reconnects and resubscribes from the last sequence seen
    (tracked via each event's ["seq"] field), resuming without
    duplicates.  [follow] defaults to [true]. *)

val shutdown : t -> unit
(** Ask the daemon to stop; tolerates the connection dying right after. *)
