(** cq-client: the client side of the cachequeryd protocol.

    A thin, synchronous wrapper: one {!call} sends a frame and blocks on
    the reply (the daemon answers requests on a connection in order).
    Error replies raise {!Error} with the daemon's typed kind, so tests
    and scripts can match on ["busy"] / ["budget_exhausted"] / ... without
    string-scraping messages. *)

type t

exception Error of { kind : string; message : string }
(** A [{"ok": false}] reply, or a framing failure ([kind] = ["protocol"])
    — e.g. the daemon closed the connection mid-reply. *)

val connect_unix : string -> t
val connect_tcp : string -> int -> t
val close : t -> unit

val call : t -> ?params:Json.t -> string -> Json.t
(** [call c verb] sends one request and returns the [ok] reply document.
    Raises {!Error} on an error reply. *)

val stream : t -> ?params:Json.t -> string -> (Json.t -> unit) -> Json.t
(** [stream c verb f] — for streaming verbs (["events"]): sends the
    request, returns the initial [ok] reply after feeding every streamed
    event frame to [f], until the terminal [{"type": "end"}] frame
    (exclusive).  Note the reply is read {e first}, then the stream. *)

(** {1 Convenience wrappers} *)

val ping : t -> Json.t

val create_sim :
  t -> ?name:string -> ?query_budget:int -> policy:string -> assoc:int -> unit -> int
(** Returns the new session id. *)

val create_hw :
  t ->
  ?name:string ->
  ?query_budget:int ->
  ?seed:int ->
  ?noise:bool ->
  cpu:string ->
  level:string ->
  set:int ->
  unit ->
  int

val learn_start :
  t -> ?resume:bool -> ?kill_after_queries:int -> ?query_budget:int -> int -> unit

val learn_wait : t -> ?timeout_s:float -> int -> Json.t
(** Block until the session's learn reaches a terminal state (or the
    timeout); returns the status document. *)

val learn_cancel : t -> int -> unit
val status : t -> int -> Json.t

val result : t -> ?dot:bool -> int -> Json.t
(** The completed learn's [{digest; states; dot?}]; raises {!Error}
    [no_result] otherwise. *)

val query_sim : t -> int -> int list -> string list
(** Membership query on a sim session: outputs as labels (["⊥"] / line
    indices), one per input symbol. *)

val query_mbl : t -> int -> string -> Json.t
(** MBL query on a hw session; returns the reply document. *)

val shutdown : t -> unit
(** Ask the daemon to stop; tolerates the connection dying right after. *)
