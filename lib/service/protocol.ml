(* Length-prefixed JSON framing for cachequeryd.

   The frame reader is the daemon's first line of defence: it must turn
   every malformed prefix a client can send — garbage bytes, an absurd
   length, a connection dropped mid-frame — into a typed error the
   server can answer and log, never an exception that unwinds a
   connection thread.  The framing fuzzer in test_service drives exactly
   these paths. *)

let max_frame = 4 * 1024 * 1024

type frame_error =
  | Bad_magic of int
  | Oversized of int
  | Truncated of { declared : int; got : int }

let frame_error_to_string = function
  | Bad_magic n -> Printf.sprintf "negative frame length %d (garbage prefix)" n
  | Oversized n ->
      Printf.sprintf "frame length %d exceeds the %d-byte maximum" n max_frame
  | Truncated { declared; got } ->
      Printf.sprintf "connection closed %d bytes into a %d-byte frame" got
        declared

type read_result = Frame of string | Eof | Bad of frame_error

(* Read exactly [n] bytes; [Ok 0 <= got < n] means EOF cut the read
   short.  EINTR retries; other errors read as a dead peer. *)
let really_read fd buf n =
  let rec go off =
    if off >= n then n
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> off
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> off
  in
  go 0

let read_frame fd =
  let hdr = Bytes.create 4 in
  match really_read fd hdr 4 with
  | 0 -> Eof
  (* A partial length prefix: the peer died inside the 4-byte header. *)
  | k when k < 4 -> Bad (Truncated { declared = 4; got = k })
  | _ ->
      let len =
        (Char.code (Bytes.get hdr 0) lsl 24)
        lor (Char.code (Bytes.get hdr 1) lsl 16)
        lor (Char.code (Bytes.get hdr 2) lsl 8)
        lor Char.code (Bytes.get hdr 3)
      in
      (* Interpret the 32-bit field as signed so 0xFFFFFFFF reads as -1,
         not 4 GiB: a negative length can only be garbage. *)
      let len = if len land 0x80000000 <> 0 then len - (1 lsl 32) else len in
      if len < 0 then Bad (Bad_magic len)
      else if len > max_frame then Bad (Oversized len)
      else begin
        (* Chaos seam: a bounded stall between header and payload — the
           shape of a peer wedged mid-frame — exercising reader-side
           patience without ever hanging the connection thread. *)
        if Cq_util.Faults.ambient_fire "frame.read.stall" then
          Unix.sleepf 0.05;
        let payload = Bytes.create len in
        let got = really_read fd payload len in
        if got < len then Bad (Truncated { declared = len; got })
        else Frame (Bytes.unsafe_to_string payload)
      end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then
    invalid_arg
      (Printf.sprintf "Protocol.write_frame: %d-byte payload exceeds max_frame"
         len);
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set buf 3 (Char.chr (len land 0xFF));
  Bytes.blit_string payload 0 buf 4 len;
  let total = 4 + len in
  let rec go limit off =
    if off < limit then
      match Unix.write fd buf off (limit - off) with
      | k -> go limit (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go limit off
  in
  (* Chaos seam: a torn write emits a strict prefix of the frame and then
     fails like a dropped peer would — the reader ends up with a typed
     [Truncated], the writer with an injected exception. *)
  if Cq_util.Faults.ambient_fire "frame.write.torn" then begin
    go (max 1 (total / 2)) 0;
    raise
      (Cq_util.Faults.Injected
         { site = "frame.write.torn"; detail = "frame write torn mid-payload" })
  end
  else go total 0

type request = { id : Json.t; verb : string; params : Json.t }

let request_of_json j =
  match j with
  | Json.Obj _ -> (
      match Json.mem_str "verb" j with
      | None -> Error "request object lacks a string \"verb\" field"
      | Some verb ->
          let id = Option.value ~default:Json.Null (Json.member "id" j) in
          let params =
            Option.value ~default:Json.Null (Json.member "params" j)
          in
          Ok { id; verb; params })
  | _ -> Error "request is not a JSON object"

let with_id id fields =
  match id with
  | None | Some Json.Null -> fields
  | Some id -> ("id", id) :: fields

let ok ?id fields = Json.Obj (("ok", Json.Bool true) :: with_id id fields)

let error ?id ~kind message =
  Json.Obj
    (("ok", Json.Bool false)
    :: with_id id
         [
           ( "error",
             Json.Obj
               [ ("kind", Json.String kind); ("message", Json.String message) ]
           );
         ])

let event fields = Json.Obj (("event", Json.Bool true) :: fields)

let send fd doc = write_frame fd (Json.to_string doc)

let error_kind j =
  match Json.member "error" j with
  | Some err -> Json.mem_str "kind" err
  | None -> None
