(* Minimal JSON: the service protocol's wire format.  The printer matches
   the metrics/trace exporters' conventions (compact, Metrics.json_string
   escaping); the parser is a plain recursive-descent over the frame
   payload, with byte offsets in error messages so a garbled client frame
   is diagnosable from the [bad_json] reply alone. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg =
  raise (Parse_error (Printf.sprintf "byte %d: %s" pos msg))

(* --- printing --- *)

let rec print buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (Cq_util.Metrics.json_float f)
  | String s -> Buffer.add_string buf (Cq_util.Metrics.json_string s)
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          print buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Cq_util.Metrics.json_string k);
          Buffer.add_char buf ':';
          print buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print buf v;
  Buffer.contents buf

let pp ppf v = Fmt.string ppf (to_string v)

(* --- parsing --- *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail st.pos (Printf.sprintf "expected %C, found %C" c c')
  | None -> fail st.pos (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then (
    st.pos <- st.pos + n;
    value)
  else fail st.pos (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st.pos "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if st.pos >= String.length st.src then fail st.pos "unterminated escape";
        let e = st.src.[st.pos] in
        st.pos <- st.pos + 1;
        match e with
        | '"' -> Buffer.add_char buf '"'; go ()
        | '\\' -> Buffer.add_char buf '\\'; go ()
        | '/' -> Buffer.add_char buf '/'; go ()
        | 'b' -> Buffer.add_char buf '\b'; go ()
        | 'f' -> Buffer.add_char buf '\012'; go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 'r' -> Buffer.add_char buf '\r'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'u' ->
            if st.pos + 4 > String.length st.src then
              fail st.pos "truncated \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st.pos "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            (* UTF-8 encode the code point (BMP only; surrogate pairs are
               not combined — the exporters never emit them). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then (
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
            else (
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))));
            go ()
        | c -> fail (st.pos - 1) (Printf.sprintf "bad escape \\%C" c))
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail start (Printf.sprintf "bad number %S" text))

let rec parse_value st depth =
  if depth > 64 then fail st.pos "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then (
        st.pos <- st.pos + 1;
        List [])
      else
        let rec items acc =
          let v = parse_value st (depth + 1) in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List (List.rev (v :: acc))
          | _ -> fail st.pos "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then (
        st.pos <- st.pos + 1;
        Obj [])
      else
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st (depth + 1) in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields (kv :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev (kv :: acc))
          | _ -> fail st.pos "expected ',' or '}'"
        in
        fields []
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected %C" c)

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st 0 in
  skip_ws st;
  if st.pos <> String.length src then fail st.pos "trailing input after document";
  v

let parse_opt src = try Some (parse src) with Parse_error _ -> None

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f && Float.abs f <= 1e15 ->
      Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None

let bind o f = match o with Some v -> f v | None -> None
let mem_str key j = bind (member key j) to_str
let mem_int key j = bind (member key j) to_int
let mem_bool key j = bind (member key j) to_bool
let mem_list key j = bind (member key j) to_list

let of_int_list l = List (List.map (fun n -> Int n) l)

let int_list j =
  bind (to_list j) (fun items ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | x :: rest -> ( match to_int x with
          | Some n -> go (n :: acc) rest
          | None -> None)
      in
      go [] items)
