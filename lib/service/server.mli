(** cachequeryd: learning-as-a-service on top of the PR-3 durable
    sessions.

    One daemon owns the (simulated) measurement hardware and serves
    concurrent clients over {!Protocol} frames on a Unix-domain socket
    (optionally also TCP).  Clients create {e sessions} — one learning
    target each — and drive them with membership queries and long-running
    learn jobs.  The daemon provides what the one-shot CLIs cannot:

    - {b fair hardware time}: every hardware interaction (a learn's
      top-level oracle queries, ad-hoc membership queries) passes through
      a FIFO hardware token that is re-acquired before each query, so N
      concurrent sessions interleave at query granularity instead of one
      learn monopolising the device;
    - {b budgets and backpressure}: per-session cumulative query budgets
      ([budget_exhausted] once spent), a bounded learn queue ([busy] when
      full), and typed protocol errors for every malformed frame;
    - {b failover}: learns snapshot on the PR-3 cadence and once more on
      any failure, so a session killed mid-learn (worker death, cancel,
      daemon shutdown) resumes from its snapshot — on another worker or
      another daemon over the same state directory — and produces the
      byte-identical automaton.

    Learning runs on a pool of worker threads.  Each learn is
    single-threaded and deterministic; concurrency lives between
    sessions, so a learn interleaved with others still yields the same
    automaton as a solo run — asserted in test_service. *)

type config = {
  socket_path : string;
  tcp : (string * int) option;  (** bind address, port *)
  workers : int;
  state_dir : string;  (** session snapshots live here *)
  max_inflight : int;  (** queued + running learns before [busy] *)
  snapshot_every : int;  (** snapshot cadence in hardware queries *)
  progress_every : int;  (** progress event cadence in hardware queries *)
  breaker_threshold : int;
      (** consecutive backend-attributable learn failures before the
          circuit breaker trips to [degraded] load shedding *)
  breaker_cooldown : float;
      (** seconds the breaker stays open before admitting one probe *)
}

val config :
  ?tcp:string * int ->
  ?workers:int ->
  ?max_inflight:int ->
  ?snapshot_every:int ->
  ?progress_every:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:float ->
  state_dir:string ->
  string ->
  config
(** [config ~state_dir socket_path] with defaults: no TCP, 2 workers,
    [max_inflight] 8, [snapshot_every] 500, [progress_every] 512,
    [breaker_threshold] 5, [breaker_cooldown] 2.0. *)

type t

val create : ?metrics:Cq_util.Metrics.t -> config -> t
(** Create a server (no sockets yet).  [metrics] receives the
    ["service."] series; default is a private registry. *)

val metrics : t -> Cq_util.Metrics.t

val start : t -> unit
(** Bind the socket(s) and spawn the accept and worker threads.  Raises
    [Unix_error] if binding fails (stale Unix sockets are unlinked
    first). *)

val stop : t -> unit
(** Graceful shutdown, idempotent: stop accepting, let in-flight learns
    reach their next probe (where they snapshot and park as
    [interrupted]), drain connections, join every thread, unlink the
    socket.  A subsequent daemon over the same [state_dir] resumes the
    parked sessions byte-identically. *)

val stopped : t -> bool

val request_stop : t -> unit
(** Flag the server for shutdown without blocking — safe to call from a
    signal handler; {!run}'s loop (or any {!wait} caller) performs the
    actual {!stop}. *)

val run : t -> unit
(** [start] + block until {!request_stop} (or a ["shutdown"] request)
    arrives, then [stop].  Returns once shutdown completes. *)
