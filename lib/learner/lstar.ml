(* Active learning of Mealy machines: Angluin's L* in its Mealy variant
   (Niese), with Rivest–Schapire counterexample processing.

   The learner maintains a reduced observation table:
   - S: access words, one per discovered state, with pairwise distinct rows;
   - E: distinguishing suffixes, always containing every single-input word
     (so transition outputs can be read off the table directly);
   - row(u): for each e in E, the output word the system produces for the
     suffix e after executing u.

   Counterexamples from the equivalence oracle are processed by binary
   search (Rivest–Schapire), adding a single distinguishing suffix to E per
   round, which keeps the table narrow even for machines with thousands of
   states. *)

type 'o result = {
  machine : 'o Cq_automata.Mealy.t;
  rounds : int;
  suffixes_added : int;
  row_cache_overflows : int;
}

(* What the learner had achieved when the table failed to stabilise —
   enough for a supervisor (or a scripted campaign) to decide between
   "retry with a bigger budget" and "give up". *)
type divergence = {
  reason : string;
  states : int; (* representatives discovered so far *)
  queries : int; (* membership queries this learn issued *)
  elapsed : float; (* seconds since the learn started *)
}

exception Diverged of divergence

let pp_divergence ppf d =
  Fmt.pf ppf "%s (%d states, %d queries, %a)" d.reason d.states d.queries
    Cq_util.Clock.pp_duration d.elapsed

(* The serializable view of the observation table: E, S and the cached
   rows.  Sessions persist it in snapshots; on resume the rows re-seed the
   row cache (they are a pure function of the oracle, so seeding never
   changes what is learned — it only skips recomputation). *)
type 'o table_state = {
  suffixes : int list list; (* E *)
  reps : int list array; (* S *)
  rows : (int list * 'o list list) list;
}

let learn ?(max_states = 1_000_000) ?max_row_cache ?expose_table ?seed_rows
    ?on_hypothesis ~(oracle : 'o Moracle.t)
    ~(find_cex : 'o Cq_automata.Mealy.t -> int list option) () =
  let k = oracle.Moracle.n_inputs in
  if k < 1 then invalid_arg "Lstar.learn: empty input alphabet";
  let t0 = Cq_util.Clock.now () in
  (* Count the membership queries this learn issues, for the divergence
     payload (the conformance suite's queries go through [find_cex] and
     are not ours to count). *)
  let queries = ref 0 in
  let oracle =
    {
      oracle with
      Moracle.query =
        (fun w ->
          incr queries;
          oracle.Moracle.query w);
      query_batch =
        (fun ws ->
          queries := !queries + List.length ws;
          oracle.Moracle.query_batch ws);
    }
  in
  (* E always contains the singleton suffixes, in input order. *)
  let suffixes : int list list ref = ref (List.init k (fun i -> [ i ])) in
  let suffixes_added = ref 0 in
  let rounds = ref 0 in

  (* The output word of suffix [e] after access word [u]. *)
  let suffix_outputs u e =
    let outputs = oracle.Moracle.query (u @ e) in
    let drop = List.length u in
    List.filteri (fun i _ -> i >= drop) outputs
  in
  (* Row cache: rows of the same word are requested many times (closure
     checks, hypothesis construction).  E only ever grows by appending, so
     a cached row is extended in place with the missing columns instead of
     being recomputed.  [max_row_cache] bounds the table with
     clear-on-overflow semantics (dropped rows are recomputed on demand);
     overflows are reported in the result. *)
  (match max_row_cache with
  | Some n when n < 1 -> invalid_arg "Lstar.learn: max_row_cache must be >= 1"
  | _ -> ());
  let row_cache : (int list Cq_util.Deep.t, 'o list list) Hashtbl.t =
    Hashtbl.create 4096
  in
  (* Rows restored from a session snapshot.  They may carry more columns
     than the current E (they were taken against the crash-time E, which a
     deterministic replay re-derives suffix by suffix); [row] truncates to
     the live column count, so a seeded row is indistinguishable from a
     recomputed one. *)
  (match seed_rows with
  | Some rows ->
      List.iter
        (fun (u, r) -> Hashtbl.replace row_cache (Cq_util.Deep.pack u) r)
        rows
  | None -> ());
  let row_cache_overflows = ref 0 in
  let store_row key r =
    (match max_row_cache with
    | Some n
      when (not (Hashtbl.mem row_cache key)) && Hashtbl.length row_cache >= n
      ->
        Hashtbl.reset row_cache;
        incr row_cache_overflows
    | _ -> ());
    Hashtbl.replace row_cache key r
  in
  let row u =
    let key = Cq_util.Deep.pack u in
    let n_suffixes = List.length !suffixes in
    match Hashtbl.find_opt row_cache key with
    | Some r when List.length r = n_suffixes -> r
    | Some r when List.length r > n_suffixes ->
        (* Seeded from a snapshot taken against a larger E. *)
        List.filteri (fun i _ -> i < n_suffixes) r
    | cached ->
        let have = match cached with Some r -> List.length r | None -> 0 in
        let missing =
          List.filteri (fun i _ -> i >= have) !suffixes
          |> List.map (suffix_outputs u)
        in
        let r = (match cached with Some r -> r | None -> []) @ missing in
        store_row key r;
        r
  in
  (* Batch-complete the rows of [us] with a single oracle batch: collect
     every missing (access word, suffix) cell, issue one [query_batch] —
     which the layers below prefix-share — and extend the cached rows with
     the answers.  [row] then serves the closure pass from the cache. *)
  let fill_rows us =
    let n_suffixes = List.length !suffixes in
    let seen = Hashtbl.create 64 in
    let todo =
      List.filter_map
        (fun u ->
          let key = Cq_util.Deep.pack u in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key (); (* cq-lint: allow hashtbl-add: guarded by the mem test above *)
            let have =
              match Hashtbl.find_opt row_cache key with
              | Some r -> List.length r
              | None -> 0
            in
            if have >= n_suffixes then None else Some (u, key, have)
          end)
        us
    in
    let words =
      List.concat_map
        (fun (u, _, have) ->
          List.filteri (fun i _ -> i >= have) !suffixes
          |> List.map (fun e -> u @ e))
        todo
    in
    if words <> [] then begin
      let answers = ref (oracle.Moracle.query_batch words) in
      let take () =
        match !answers with
        | a :: rest ->
            answers := rest;
            a
        | [] -> assert false
      in
      List.iter
        (fun (u, key, have) ->
          let drop = List.length u in
          let cols =
            List.filteri (fun i _ -> i >= have) !suffixes
            |> List.map (fun _ ->
                   List.filteri (fun i _ -> i >= drop) (take ()))
          in
          let existing =
            match Hashtbl.find_opt row_cache key with
            | Some r -> r
            | None -> []
          in
          (* An overflow clear while this batch was filling may have
             dropped the head columns; skip the store and let [row]
             recompute the full row on demand. *)
          if List.length existing = have then store_row key (existing @ cols))
        todo;
      assert (!answers = [])
    end
  in

  (* S: representatives (access words) with pairwise distinct rows. *)
  let reps : int list array ref = ref [||] in
  let rep_rows : ('o list list Cq_util.Deep.t, int) Hashtbl.t = Hashtbl.create 97 in

  let diverge reason =
    raise
      (Diverged
         {
           reason;
           states = Array.length !reps;
           queries = !queries;
           elapsed = Cq_util.Clock.now () -. t0;
         })
  in
  (* Hand the caller a live view of the observation table for session
     snapshots.  The getter copies mutable pieces, so a snapshot taken
     between oracle queries is a consistent value. *)
  (match expose_table with
  | Some f ->
      f (fun () ->
          {
            suffixes = !suffixes;
            reps = Array.copy !reps;
            rows =
              Hashtbl.fold
                (fun key r acc -> (Cq_util.Deep.unpack key, r) :: acc)
                row_cache [];
          })
  | None -> ());

  let add_rep u r =
    let idx = Array.length !reps in
    if idx >= max_states then diverge "state budget exhausted";
    reps := Array.append !reps [| u |];
    (* cq-lint: allow hashtbl-add: callers only add representatives for unseen rows *)
    Hashtbl.add rep_rows (Cq_util.Deep.pack r) idx;
    idx
  in

  let rebuild_table () =
    Hashtbl.reset rep_rows;
    let old = !reps in
    reps := [||];
    (* Prefetch the new column of every representative in one batch. *)
    fill_rows (Array.to_list old);
    Array.iter
      (fun u ->
        let r = row u in
        (* Distinct representatives may collapse after E changes only if the
           oracle is inconsistent; with a growing E rows can only get finer,
           so a collision indicates divergence. *)
        if Hashtbl.mem rep_rows (Cq_util.Deep.pack r) then
          diverge "representative rows collapsed"
        else ignore (add_rep u r))
      old
  in

  (* Close the table: every one-step extension of a representative must have
     the row of some representative.  A single pass over the growing
     representative array suffices: appended representatives are themselves
     processed before the loop ends. *)
  let close () =
    let s = ref 0 in
    while !s < Array.length !reps do
      (* One BFS wave at a time: batch-fill the rows of every one-step
         extension of the current frontier before classifying them, so the
         whole wave goes to the oracle as a single prefix-shared batch. *)
      let hi = Array.length !reps in
      let wave = ref [] in
      for idx = hi - 1 downto !s do
        for i = k - 1 downto 0 do
          wave := (!reps.(idx) @ [ i ]) :: !wave
        done
      done;
      fill_rows !wave;
      while !s < hi do
        let u = !reps.(!s) in
        for i = 0 to k - 1 do
          let r = row (u @ [ i ]) in
          if not (Hashtbl.mem rep_rows (Cq_util.Deep.pack r)) then
            ignore (add_rep (u @ [ i ]) r)
        done;
        incr s
      done
    done
  in

  let build_hypothesis () =
    let n = Array.length !reps in
    let next = Array.make_matrix n k 0 in
    (* Outputs: entry of suffix [i] (singleton suffixes are the first k
       columns of the table, in input order). *)
    let out =
      Array.init n (fun s ->
          let u = !reps.(s) in
          Array.init k (fun i ->
              match suffix_outputs u [ i ] with
              | [ o ] -> o
              | _ -> assert false))
    in
    for s = 0 to n - 1 do
      let u = !reps.(s) in
      for i = 0 to k - 1 do
        let r = row (u @ [ i ]) in
        match Hashtbl.find_opt rep_rows (Cq_util.Deep.pack r) with
        | Some s' -> next.(s).(i) <- s'
        | None -> assert false (* table is closed *)
      done
    done;
    Cq_automata.Mealy.make ~init:0 ~n_inputs:k ~next ~out
  in

  (* Rivest–Schapire: find a distinguishing suffix from counterexample [w]
     and add it to E. *)
  let process_cex hyp w =
    (* Truncate w at the first output mismatch. *)
    let o_out = oracle.Moracle.query w in
    let h_out = Cq_automata.Mealy.run hyp w in
    let rec first_diff i os hs =
      match (os, hs) with
      | o :: os', h :: hs' -> if o <> h then Some i else first_diff (i + 1) os' hs'
      | _ -> None
    in
    match first_diff 0 o_out h_out with
    | None -> false (* not actually a counterexample *)
    | Some idx ->
        let w = List.filteri (fun i _ -> i <= idx) w in
        let m = List.length w in
        let prefix j = List.filteri (fun i _ -> i < j) w in
        let suffix_from j = List.filteri (fun i _ -> i >= j) w in
        let access j =
          !reps.(Cq_automata.Mealy.state_after hyp (prefix j))
        in
        (* A(j): the oracle agrees with the hypothesis when the length-j
           prefix is replaced by the access word of the state it reaches. *)
        let agrees j =
          let a = access j in
          let v = suffix_from j in
          let o = suffix_outputs a v in
          let h =
            Cq_automata.Mealy.run_from hyp
              (Cq_automata.Mealy.state_after hyp (prefix j))
              v
          in
          o = h
        in
        (* A(0) = false (genuine cex), A(m) = true (empty suffix).  Binary
           search for a crossing ¬A(j) ∧ A(j+1). *)
        let lo = ref 0 and hi = ref m in
        (* invariant: ¬A(lo), A(hi) *)
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if agrees mid then hi := mid else lo := mid
        done;
        let j = !lo in
        let v = suffix_from (j + 1) in
        if v = [] then diverge "empty distinguishing suffix";
        if List.mem v !suffixes then
          diverge "distinguishing suffix already in E"
        else begin
          suffixes := !suffixes @ [ v ];
          incr suffixes_added;
          true
        end
  in

  (* Main loop.  A counterexample is re-processed against every refined
     hypothesis until the hypothesis agrees with it; only then do we pay
     for another conformance-testing round. *)
  ignore (add_rep [] (row []));
  close ();
  let result = ref None in
  let pending = ref None in
  while !result = None do
    let hyp = build_hypothesis () in
    (match on_hypothesis with Some f -> f hyp | None -> ());
    let progressed =
      match !pending with
      | Some w when process_cex hyp w ->
          rebuild_table ();
          close ();
          true
      | _ ->
          pending := None;
          false
    in
    if not progressed then begin
      incr rounds;
      match find_cex hyp with
      | None -> result := Some hyp
      | Some w ->
          if not (process_cex hyp w) then
            diverge "equivalence oracle returned a spurious counterexample";
          pending := Some w;
          rebuild_table ();
          close ()
    end
  done;
  match !result with
  | Some machine ->
      {
        machine;
        rounds = !rounds;
        suffixes_added = !suffixes_added;
        row_cache_overflows = !row_cache_overflows;
      }
  | None -> assert false
