(* Active learning of Mealy machines: Angluin's L* in its Mealy variant
   (Niese), with Rivest–Schapire counterexample processing.

   The learner maintains a reduced observation table:
   - S: access words, one per discovered state, with pairwise distinct rows;
   - E: distinguishing suffixes, always containing every single-input word
     (so transition outputs can be read off the table directly);
   - row(u): for each e in E, the output word the system produces for the
     suffix e after executing u.

   Counterexamples from the equivalence oracle are processed by binary
   search (Rivest–Schapire), adding a single distinguishing suffix to E per
   round, which keeps the table narrow even for machines with thousands of
   states. *)

type 'o result = {
  machine : 'o Cq_automata.Mealy.t;
  rounds : int;
  suffixes_added : int;
  row_cache_overflows : int;
  quotient : Quotient.stats option;
      (* merge statistics and witness when learning ran in quotient mode *)
}

(* The quotient decomposition of the current hypothesis, published to the
   conformance layer: representative states ([is_rep_state]) carry the
   full test suite, aliased states a spot-check (their behavior is the
   verified image of their representative's). *)
type quotient_view = { is_rep_state : bool array }

(* What the learner had achieved when the table failed to stabilise —
   enough for a supervisor (or a scripted campaign) to decide between
   "retry with a bigger budget" and "give up". *)
type divergence = {
  reason : string;
  states : int; (* representatives discovered so far *)
  queries : int; (* membership queries this learn issued *)
  elapsed : float; (* seconds since the learn started *)
}

exception Diverged of divergence

(* Internal: the quotient unfolding exceeded its state budget, usually
   because a wrong alias made the frame group explode.  Caught by the
   hypothesis builder, which repairs the table by un-aliasing the most
   recently derived alias edge and retrying. *)
exception Unfold_budget

let pp_divergence ppf d =
  Fmt.pf ppf "%s (%d states, %d queries, %a)" d.reason d.states d.queries
    Cq_util.Clock.pp_duration d.elapsed

(* The serializable view of the observation table: E, S and the cached
   rows.  Sessions persist it in snapshots; on resume the rows re-seed the
   row cache (they are a pure function of the oracle, so seeding never
   changes what is learned — it only skips recomputation). *)
type 'o table_state = {
  suffixes : int list list; (* E *)
  reps : int list array; (* S *)
  rows : (int list * 'o list list) list;
}

let learn ?(max_states = 1_000_000) ?max_row_cache ?expose_table ?seed_rows
    ?on_hypothesis ?(quotient : 'o Quotient.action option) ?on_quotient_view
    ~(oracle : 'o Moracle.t)
    ~(find_cex : 'o Cq_automata.Mealy.t -> int list option) () =
  let k = oracle.Moracle.n_inputs in
  if k < 1 then invalid_arg "Lstar.learn: empty input alphabet";
  (match quotient with
  | Some a ->
      if not (List.for_all (fun i -> i >= 0 && i < k) a.Quotient.sweep) then
        invalid_arg "Lstar.learn: quotient sweep uses inputs outside the alphabet"
  | None -> ());
  let t0 = Cq_util.Clock.mono () in
  (* Count the membership queries this learn issues, for the divergence
     payload (the conformance suite's queries go through [find_cex] and
     are not ours to count). *)
  let queries = ref 0 in
  let oracle =
    {
      oracle with
      Moracle.query =
        (fun w ->
          incr queries;
          oracle.Moracle.query w);
      query_batch =
        (fun ws ->
          queries := !queries + List.length ws;
          oracle.Moracle.query_batch ws);
    }
  in
  (* E always contains the singleton suffixes, in input order.  In quotient
     mode the signature suffix (the eviction sweep) comes right after, at
     column [k] — both blocks are stable because E only grows by
     appending, so the sweep entry of any row can be read off by index. *)
  let suffixes : int list list ref =
    ref
      (List.init k (fun i -> [ i ])
      @ match quotient with Some a -> [ a.Quotient.sweep ] | None -> [])
  in
  let sweep_col = k in
  let suffixes_added = ref 0 in
  let rounds = ref 0 in

  (* The output word of suffix [e] after access word [u]. *)
  let suffix_outputs u e =
    let outputs = oracle.Moracle.query (u @ e) in
    let drop = List.length u in
    List.filteri (fun i _ -> i >= drop) outputs
  in
  (* Row cache: rows of the same word are requested many times (closure
     checks, hypothesis construction).  E only ever grows by appending, so
     a cached row is extended in place with the missing columns instead of
     being recomputed.  [max_row_cache] bounds the table with
     clear-on-overflow semantics (dropped rows are recomputed on demand);
     overflows are reported in the result. *)
  (match max_row_cache with
  | Some n when n < 1 -> invalid_arg "Lstar.learn: max_row_cache must be >= 1"
  | _ -> ());
  let row_cache : (int list Cq_util.Deep.t, 'o list list) Hashtbl.t =
    Hashtbl.create 4096
  in
  (* Rows restored from a session snapshot.  They may carry more columns
     than the current E (they were taken against the crash-time E, which a
     deterministic replay re-derives suffix by suffix); [row] truncates to
     the live column count, so a seeded row is indistinguishable from a
     recomputed one. *)
  (match seed_rows with
  | Some rows ->
      List.iter
        (fun (u, r) -> Hashtbl.replace row_cache (Cq_util.Deep.pack u) r)
        rows
  | None -> ());
  let row_cache_overflows = ref 0 in
  let store_row key r =
    (match max_row_cache with
    | Some n
      when (not (Hashtbl.mem row_cache key)) && Hashtbl.length row_cache >= n
      ->
        Hashtbl.reset row_cache;
        incr row_cache_overflows
    | _ -> ());
    Hashtbl.replace row_cache key r
  in
  let row u =
    let key = Cq_util.Deep.pack u in
    let n_suffixes = List.length !suffixes in
    match Hashtbl.find_opt row_cache key with
    | Some r when List.length r = n_suffixes -> r
    | Some r when List.length r > n_suffixes ->
        (* Seeded from a snapshot taken against a larger E. *)
        List.filteri (fun i _ -> i < n_suffixes) r
    | cached ->
        let have = match cached with Some r -> List.length r | None -> 0 in
        let missing =
          List.filteri (fun i _ -> i >= have) !suffixes
          |> List.map (suffix_outputs u)
        in
        let r = (match cached with Some r -> r | None -> []) @ missing in
        store_row key r;
        r
  in
  (* Batch-complete the rows of [us] with a single oracle batch: collect
     every missing (access word, suffix) cell, issue one [query_batch] —
     which the layers below prefix-share — and extend the cached rows with
     the answers.  [row] then serves the closure pass from the cache. *)
  let fill_rows us =
    let n_suffixes = List.length !suffixes in
    let seen = Hashtbl.create 64 in
    let todo =
      List.filter_map
        (fun u ->
          let key = Cq_util.Deep.pack u in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key (); (* cq-lint: allow hashtbl-add: guarded by the mem test above *)
            let have =
              match Hashtbl.find_opt row_cache key with
              | Some r -> List.length r
              | None -> 0
            in
            if have >= n_suffixes then None else Some (u, key, have)
          end)
        us
    in
    let words =
      List.concat_map
        (fun (u, _, have) ->
          List.filteri (fun i _ -> i >= have) !suffixes
          |> List.map (fun e -> u @ e))
        todo
    in
    if words <> [] then begin
      let answers = ref (oracle.Moracle.query_batch words) in
      let take () =
        match !answers with
        | a :: rest ->
            answers := rest;
            a
        | [] -> assert false
      in
      List.iter
        (fun (u, key, have) ->
          let drop = List.length u in
          let cols =
            List.filteri (fun i _ -> i >= have) !suffixes
            |> List.map (fun _ ->
                   List.filteri (fun i _ -> i >= drop) (take ()))
          in
          let existing =
            match Hashtbl.find_opt row_cache key with
            | Some r -> r
            | None -> []
          in
          (* An overflow clear while this batch was filling may have
             dropped the head columns; skip the store and let [row]
             recompute the full row on demand. *)
          if List.length existing = have then store_row key (existing @ cols))
        todo;
      assert (!answers = [])
    end
  in

  (* S: representatives (access words) with pairwise distinct rows. *)
  let reps : int list array ref = ref [||] in
  let rep_rows : ('o list list Cq_util.Deep.t, int) Hashtbl.t = Hashtbl.create 97 in

  (* Quotient mode: alias edges.  An extension whose row is a verified
     relabeling of representative [t]'s row is recorded here as
     [(t, witness)] instead of becoming a representative; the hypothesis
     unfolds these edges.  Aliases are derived against the current E, so
     they are wiped (and re-derived by the next [close]) whenever E
     grows.  [sig_buckets] indexes representatives by the orbit-constant
     key of their sweep signature, so a candidate merge only ever
     compares rows that could possibly be relabelings. *)
  let alias_rows : ('o list list Cq_util.Deep.t, int * int array) Hashtbl.t =
    Hashtbl.create 97
  in
  (* Creation-order log of alias edges: (row key, edge word, row).  A wrong
     alias can make the hypothesis unfolding's frame group explode — the
     composed witness permutations generate far more (rep, frame) pairs
     than the true machine has states.  When the unfolding trips its state
     budget we pop the most recently derived alias, promote its edge word
     to a representative, and rebuild; each pop strictly grows the
     representative set, so the retry loop terminates.  Wiped together
     with [alias_rows]. *)
  let alias_log : ('o list list Cq_util.Deep.t * int list * 'o list list) list ref
      =
    ref []
  in
  let sig_buckets : (string, int list ref) Hashtbl.t = Hashtbl.create 97 in
  let alias_attempts = ref 0 in
  let alias_queries = ref 0 in
  let max_alias_candidates = 8 in

  let diverge reason =
    raise
      (Diverged
         {
           reason;
           states = Array.length !reps;
           queries = !queries;
           elapsed = Cq_util.Clock.mono () -. t0;
         })
  in
  (* Hand the caller a live view of the observation table for session
     snapshots.  The getter copies mutable pieces, so a snapshot taken
     between oracle queries is a consistent value. *)
  (match expose_table with
  | Some f ->
      f (fun () ->
          {
            suffixes = !suffixes;
            reps = Array.copy !reps;
            rows =
              Hashtbl.fold
                (fun key r acc -> (Cq_util.Deep.unpack key, r) :: acc)
                row_cache [];
          })
  | None -> ());

  let add_rep u r =
    let idx = Array.length !reps in
    if idx >= max_states then diverge "state budget exhausted";
    reps := Array.append !reps [| u |];
    (* cq-lint: allow hashtbl-add: callers only add representatives for unseen rows *)
    Hashtbl.add rep_rows (Cq_util.Deep.pack r) idx;
    (match quotient with
    | Some a ->
        let key = a.Quotient.signature_key (List.nth r sweep_col) in
        (match Hashtbl.find_opt sig_buckets key with
        | Some bucket -> bucket := idx :: !bucket
        (* cq-lint: allow hashtbl-add: guarded by the find_opt above *)
        | None -> Hashtbl.add sig_buckets key (ref [ idx ]))
    | None -> ());
    idx
  in

  (* Can row [r] be merged into an existing representative?  Candidates
     come from the signature bucket; for each, the sweep signatures pin a
     unique witness permutation [p], which is then verified column by
     column: for every suffix [e], the system's answer after the
     extension must be the [p]-image of the representative's answer after
     [p^-1 e].  The verification words share the representative's access
     word as prefix, so the whole check is one prefix-shared batch.  A
     verified merge is still only a hypothesis about the suffixes E has
     not seen yet — conformance testing arbitrates, and a counterexample
     grows E, which wipes and re-derives every alias. *)
  let try_alias x r =
    match quotient with
    | None -> None
    | Some a ->
        let sig_row = List.nth r sweep_col in
        (match Hashtbl.find_opt sig_buckets (a.Quotient.signature_key sig_row) with
        | None -> None
        | Some bucket ->
            let attempt t =
              let u_t = !reps.(t) in
              let sig_rep = List.nth (row u_t) sweep_col in
              match a.Quotient.derive sig_rep sig_row with
              | None -> None
              | Some p when Quotient.is_identity p ->
                  (* Identity witness means equal rows, which [rep_rows]
                     would already have caught. *)
                  None
              | Some p ->
                  incr alias_attempts;
                  let inv = Quotient.invert p in
                  let words =
                    List.map
                      (fun e -> u_t @ List.map (a.Quotient.map_input inv) e)
                      !suffixes
                  in
                  alias_queries := !alias_queries + List.length words;
                  let answers = oracle.Moracle.query_batch words in
                  let drop = List.length u_t in
                  let ok =
                    List.for_all2
                      (fun entry answer ->
                        let tail =
                          List.filteri (fun i _ -> i >= drop) answer
                        in
                        List.length tail = List.length entry
                        && List.for_all2
                             (fun x y -> a.Quotient.map_output p y = x)
                             entry tail)
                      r answers
                  in
                  if not ok then None
                  else begin
                    (* Depth-1 confirmation.  The sweep signature of a
                       single state can underdetermine the witness when
                       the sweep does not name every line (PLRU at
                       assoc 12 is the first zoo member where this
                       bites): [derive] then guesses the unpinned part
                       of [p], the guess survives the row check above,
                       and the wrong alias later makes the unfolding's
                       frame group explode.  Confirm [p] one step
                       deeper: for every input [i], the sweep signature
                       of the extension's [i]-successor must be the
                       [p]-image of the representative's
                       [p^-1 i]-successor's sweep.  Both sides are
                       prefix-shared batches. *)
                    let sweep = a.Quotient.sweep in
                    let inputs = List.init k (fun i -> i) in
                    let ext_words =
                      List.map (fun i -> x @ (i :: sweep)) inputs
                    in
                    let rep_words =
                      List.map
                        (fun i ->
                          u_t
                          @ List.map
                              (a.Quotient.map_input inv)
                              (i :: sweep))
                        inputs
                    in
                    alias_queries := !alias_queries + (2 * k);
                    let ext_ans = oracle.Moracle.query_batch ext_words in
                    let rep_ans = oracle.Moracle.query_batch rep_words in
                    let drop_x = List.length x in
                    let confirmed =
                      List.for_all2
                        (fun ea ra ->
                          let et =
                            List.filteri (fun i _ -> i >= drop_x) ea
                          in
                          let rt =
                            List.filteri (fun i _ -> i >= drop) ra
                          in
                          List.length et = List.length rt
                          && List.for_all2
                               (fun x y -> a.Quotient.map_output p y = x)
                               et rt)
                        ext_ans rep_ans
                    in
                    if confirmed then Some (t, p) else None
                  end
            in
            let rec first n = function
              | [] -> None
              | _ when n <= 0 -> None
              | t :: rest -> (
                  match attempt t with
                  | Some _ as hit -> hit
                  | None -> first (n - 1) rest)
            in
            first max_alias_candidates !bucket)
  in

  let rebuild_table () =
    Hashtbl.reset rep_rows;
    Hashtbl.reset alias_rows;
    alias_log := [];
    Hashtbl.reset sig_buckets;
    let old = !reps in
    reps := [||];
    (* Prefetch the new column of every representative in one batch. *)
    fill_rows (Array.to_list old);
    Array.iter
      (fun u ->
        let r = row u in
        (* Distinct representatives may collapse after E changes only if the
           oracle is inconsistent; with a growing E rows can only get finer,
           so a collision indicates divergence. *)
        if Hashtbl.mem rep_rows (Cq_util.Deep.pack r) then
          diverge "representative rows collapsed"
        else ignore (add_rep u r))
      old
  in

  (* Close the table: every one-step extension of a representative must have
     the row of some representative.  A single pass over the growing
     representative array suffices: appended representatives are themselves
     processed before the loop ends. *)
  let close () =
    let s = ref 0 in
    while !s < Array.length !reps do
      (* One BFS wave at a time: batch-fill the rows of every one-step
         extension of the current frontier before classifying them, so the
         whole wave goes to the oracle as a single prefix-shared batch. *)
      let hi = Array.length !reps in
      let wave = ref [] in
      for idx = hi - 1 downto !s do
        for i = k - 1 downto 0 do
          wave := (!reps.(idx) @ [ i ]) :: !wave
        done
      done;
      fill_rows !wave;
      while !s < hi do
        let u = !reps.(!s) in
        for i = 0 to k - 1 do
          let r = row (u @ [ i ]) in
          let key = Cq_util.Deep.pack r in
          if
            (not (Hashtbl.mem rep_rows key))
            && not (Hashtbl.mem alias_rows key)
          then begin
            match try_alias (u @ [ i ]) r with
            | Some (t, p) ->
                (* cq-lint: allow hashtbl-add: guarded by the mem test above *)
                Hashtbl.add alias_rows key (t, p);
                alias_log := (key, u @ [ i ], r) :: !alias_log
            | None -> ignore (add_rep (u @ [ i ]) r)
          end
        done;
        incr s
      done
    done
  in

  (* Access word and witness frame of every hypothesis state, refreshed by
     each [build_hypothesis].  In direct mode states are representatives
     and these are just [!reps] / identities; in quotient mode they come
     from the unfolding below and feed Rivest–Schapire. *)
  let hyp_access : int list array ref = ref [||] in
  let hyp_perm : int array array ref = ref [||] in
  let hyp_rep : int array ref = ref [||] in
  let last_qstats : Quotient.stats option ref = ref None in

  (* Singleton output of representative [t] on input [i], read off the
     first k table columns. *)
  let rep_out t i =
    match List.nth (row !reps.(t)) i with
    | [ o ] -> o
    | _ -> assert false
  in

  let build_hypothesis_direct () =
    let n = Array.length !reps in
    let next = Array.make_matrix n k 0 in
    (* Outputs: entry of suffix [i] (singleton suffixes are the first k
       columns of the table, in input order). *)
    let out =
      Array.init n (fun s ->
          let u = !reps.(s) in
          Array.init k (fun i ->
              match suffix_outputs u [ i ] with
              | [ o ] -> o
              | _ -> assert false))
    in
    for s = 0 to n - 1 do
      let u = !reps.(s) in
      for i = 0 to k - 1 do
        let r = row (u @ [ i ]) in
        match Hashtbl.find_opt rep_rows (Cq_util.Deep.pack r) with
        | Some s' -> next.(s).(i) <- s'
        | None -> assert false (* table is closed *)
      done
    done;
    hyp_access := !reps;
    hyp_perm := [||];
    Cq_automata.Mealy.make ~init:0 ~n_inputs:k ~next ~out
  in

  (* Quotient mode: the table describes a permutation-labeled quotient
     machine — per representative [t] and input [j], either a direct edge
     to [t'] or an alias edge to [(t', p)] claiming the target behaves as
     [t'] conjugated by [p].  The hypothesis is its unfolding: states are
     the reachable pairs (t, pi), with

       delta((t, pi), i)  =  (t', pi)        if edge(t, pi^-1 i) direct
                          =  (t', pi . p)    if edge(t, pi^-1 i) aliased by p
       out((t, pi), i)    =  pi(out_t(pi^-1 i))

     Each unfolded state keeps its BFS access word (for Rivest–Schapire)
     and its frame pi (for the suffix pull-back fallback and the witness
     triples handed to Automaton_check). *)
  let build_hypothesis_quotient a =
    let nreps = Array.length !reps in
    (* Per-representative transitions in quotient form. *)
    let qnext =
      Array.init nreps (fun t ->
          Array.init k (fun j ->
              let r = row (!reps.(t) @ [ j ]) in
              let key = Cq_util.Deep.pack r in
              match Hashtbl.find_opt rep_rows key with
              | Some t' -> (t', None)
              | None -> (
                  match Hashtbl.find_opt alias_rows key with
                  | Some (t', p) -> (t', Some p)
                  | None -> assert false (* table is closed *))))
    in
    let index : (int list Cq_util.Deep.t, int) Hashtbl.t =
      Hashtbl.create 1024
    in
    let info : (int, int * int array * int list) Hashtbl.t =
      Hashtbl.create 1024
    in
    let n = ref 0 in
    let intern t p acc =
      let key = Cq_util.Deep.pack (t :: Array.to_list p) in
      match Hashtbl.find_opt index key with
      | Some i -> i
      | None ->
          let i = !n in
          if i >= max_states then raise Unfold_budget;
          incr n;
          (* Identity-frame states are exactly the table's representatives;
             use their table-verified access words (Rivest–Schapire's
             repairs reason about rows, so its access words must be the
             ones the table classified).  Other frames only exist in the
             unfolding, so the BFS word is the best available. *)
          let acc = if Quotient.is_identity p then !reps.(t) else acc in
          (* cq-lint: allow hashtbl-add: guarded by the find_opt above *)
          Hashtbl.add index key i;
          (* cq-lint: allow hashtbl-add: i is fresh *)
          Hashtbl.add info i (t, p, acc);
          i
    in
    let next_rows : (int, int array) Hashtbl.t = Hashtbl.create 1024 in
    let out_rows : (int, 'o array) Hashtbl.t = Hashtbl.create 1024 in
    ignore (intern 0 (Quotient.identity a.Quotient.assoc) []);
    let i = ref 0 in
    while !i < !n do
      let t, p, acc = Hashtbl.find info !i in
      let inv = Quotient.invert p in
      let nr =
        Array.init k (fun ii ->
            let j = a.Quotient.map_input inv ii in
            let t', po = qnext.(t).(j) in
            let p' =
              match po with None -> p | Some q -> Quotient.compose p q
            in
            intern t' p' (acc @ [ ii ]))
      in
      let orow =
        Array.init k (fun ii ->
            let j = a.Quotient.map_input inv ii in
            a.Quotient.map_output p (rep_out t j))
      in
      Hashtbl.replace next_rows !i nr;
      Hashtbl.replace out_rows !i orow;
      incr i
    done;
    let nn = !n in
    let next = Array.init nn (fun s -> Hashtbl.find next_rows s) in
    let out = Array.init nn (fun s -> Hashtbl.find out_rows s) in
    hyp_access :=
      Array.init nn (fun s ->
          let _, _, acc = Hashtbl.find info s in
          acc);
    hyp_perm :=
      Array.init nn (fun s ->
          let _, p, _ = Hashtbl.find info s in
          p);
    hyp_rep :=
      Array.init nn (fun s ->
          let t, _, _ = Hashtbl.find info s in
          t);
    let is_rep = Array.init nn (fun s -> Quotient.is_identity !hyp_perm.(s)) in
    (* Witness triples for Automaton_check: state [s] = (t, pi) with a
       non-identity frame behaves as the anchor state (t, id) conjugated
       by pi — when that anchor was itself reached.  A bounded sample
       keeps the anchored product walks affordable downstream. *)
    let witness = ref [] in
    let n_witness = ref 0 in
    (try
       for s = nn - 1 downto 0 do
         let t, p, _ = Hashtbl.find info s in
         if not (Quotient.is_identity p) then begin
           let anchor =
             Hashtbl.find_opt index
               (Cq_util.Deep.pack
                  (t :: Array.to_list (Quotient.identity a.Quotient.assoc)))
           in
           match anchor with
           | Some s0 ->
               witness := (s, s0, Quotient.perm_to_list p) :: !witness;
               incr n_witness;
               if !n_witness >= 48 then raise Exit
           | None -> ()
         end
       done
     with Exit -> ());
    last_qstats :=
      Some
        {
          Quotient.reps = nreps;
          states = nn;
          aliases = Hashtbl.length alias_rows;
          alias_attempts = !alias_attempts;
          alias_queries = !alias_queries;
          witness = !witness;
        };
    (match on_quotient_view with
    | Some f -> f { is_rep_state = is_rep }
    | None -> ());
    Cq_automata.Mealy.make ~init:0 ~n_inputs:k ~next ~out
  in

  let build_hypothesis () =
    match quotient with
    | None -> build_hypothesis_direct ()
    | Some a ->
        (* Frame-group guard.  Every frame of the unfolding is a product
           of alias witness permutations along some path, so the
           unfolding has at most |reps| x |G| states, where G is the
           subgroup of S_assoc generated by the witnesses.  A wrong
           alias whose witness lands outside the policy's true symmetry
           group makes |G| explode toward assoc! — and the unfolding
           with it.  Before paying for an unfolding, close G with an
           early exit at [max_states / |reps|]: if the closure
           overflows, the first alias (in creation order) whose witness
           pushed it past the cap is the suspect — promote its edge word
           to a representative, re-close the table and retry.  Each
           promotion strictly grows the representative set (and
           [add_rep] enforces the state budget on representatives), so
           this terminates. *)
        let perm_key (p : int array) =
          let b = Bytes.create (Array.length p) in
          Array.iteri (fun i v -> Bytes.unsafe_set b i (Char.unsafe_chr v)) p;
          Bytes.unsafe_to_string b
        in
        (* Aliases still present, oldest first, paired with their
           witnesses.  [alias_log] is a pure creation-order record;
           entries whose key a split already removed are skipped. *)
        let live_aliases () =
          List.rev
            (List.filter_map
               (fun ((key, _, _) as entry) ->
                 match Hashtbl.find_opt alias_rows key with
                 | Some (_, p) -> Some (entry, p)
                 | None -> None)
               !alias_log)
        in
        (* Is the subgroup generated by the first [upto] witnesses of
           size at most [cap]?  BFS from the identity, right-multiplying
           by generators (a finite set of products closes into the
           subgroup without explicit inverses), bailing out as soon as
           the cap is crossed. *)
        let closure_fits aliases upto cap =
          let seen = Hashtbl.create 1024 in
          let idp = Quotient.identity a.Quotient.assoc in
          Hashtbl.replace seen (perm_key idp) ();
          let n_seen = ref 1 in
          let frontier = Queue.create () in
          Queue.add idp frontier;
          let gens = Array.init upto (fun i -> snd aliases.(i)) in
          try
            while not (Queue.is_empty frontier) do
              let x = Queue.pop frontier in
              Array.iter
                (fun g ->
                  let y = Quotient.compose x g in
                  let ky = perm_key y in
                  if not (Hashtbl.mem seen ky) then begin
                    Hashtbl.replace seen ky ();
                    incr n_seen;
                    if !n_seen > cap then raise Exit;
                    Queue.add y frontier
                  end)
                gens
            done;
            true
          with Exit -> false
        in
        let group_culprit () =
          let aliases = Array.of_list (live_aliases ()) in
          let n = Array.length aliases in
          if n = 0 then None
          else begin
            let cap = max 1 (max_states / max 1 (Array.length !reps)) in
            if closure_fits aliases n cap then None
            else begin
              (* Binary-search the shortest creation-order prefix whose
                 closure overflows.  Its last witness is the pivot: the
                 true symmetry group absorbs its own elements, so the
                 first generator that makes the closure jump past the
                 cap is (almost always) the one outside it.  Promoting a
                 pivotal good alias is possible but merely costs queries;
                 the retry loop stays sound either way. *)
              let lo = ref 1 and hi = ref n in
              while !lo < !hi do
                let mid = (!lo + !hi) / 2 in
                if closure_fits aliases mid cap then lo := mid + 1
                else hi := mid
              done;
              let entry, _ = aliases.(!lo - 1) in
              Some entry
            end
          end
        in
        let promote (key, u, r) =
          Hashtbl.remove alias_rows key;
          ignore (add_rep u r);
          close ()
        in
        let rec attempt () =
          match group_culprit () with
          | Some entry ->
              if Sys.getenv_opt "CQ_DEBUG_QUOTIENT" <> None then
                Printf.eprintf "[frame-group] reps=%d aliases=%d: promoting\n%!"
                  (Array.length !reps) (Hashtbl.length alias_rows);
              promote entry;
              attempt ()
          | None -> (
              (* The guard bounds the unfolding by |reps| x cap <=
                 max_states, so the budget below should be unreachable;
                 kept as a fallback in case the bound is ever loosened. *)
              try build_hypothesis_quotient a
              with Unfold_budget -> (
                match List.rev (live_aliases ()) with
                | [] -> diverge "state budget exhausted (unfolding)"
                | (entry, _) :: _ ->
                    promote entry;
                    attempt ()))
        in
        attempt ()
  in

  (* Rivest–Schapire: find a distinguishing suffix from counterexample [w]
     and add it to E. *)
  let process_cex hyp w =
    (* The binary search below evaluates the hypothesis on O(log |w|)
       suffixes; compile it once and use the allocation-free walkers. *)
    let chyp = Cq_automata.Mealy.compile hyp in
    (* Truncate w at the first output mismatch. *)
    let o_out = oracle.Moracle.query w in
    match Cq_automata.Mealy.first_disagreement chyp w o_out with
    | None -> false (* not actually a counterexample *)
    | Some idx ->
        let w = List.filteri (fun i _ -> i <= idx) w in
        let m = List.length w in
        let prefix j = List.filteri (fun i _ -> i < j) w in
        let suffix_from j = List.filteri (fun i _ -> i >= j) w in
        let state_at j = Cq_automata.Mealy.compiled_state_after chyp (prefix j) in
        let access j = !hyp_access.(state_at j) in
        (* A(j): the oracle agrees with the hypothesis when the length-j
           prefix is replaced by the access word of the state it reaches. *)
        let agrees j =
          let a = access j in
          let v = suffix_from j in
          let o = suffix_outputs a v in
          Cq_automata.Mealy.agrees_from chyp (state_at j) v o
        in
        (* A(0) = false (genuine cex), A(m) = true (empty suffix).  Binary
           search for a crossing ¬A(j) ∧ A(j+1). *)
        let lo = ref 0 and hi = ref m in
        (* invariant: ¬A(lo), A(hi) *)
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if agrees mid then hi := mid else lo := mid
        done;
        let j = !lo in
        let v = suffix_from (j + 1) in
        let add_suffix v' =
          if List.mem v' !suffixes then false
          else begin
            suffixes := !suffixes @ [ v' ];
            incr suffixes_added;
            true
          end
        in
        (* Quotient-mode repair when suffixes cannot refine the table: a
           wrong merge that is consistent with every available suffix
           (the composite frame of an unfolded state is never verified
           directly, only single alias edges are).  Force-split the first
           suspect alias on the counterexample path — the crossing edge,
           then the access words around it, then the rest of the path —
           into a real representative.  Representatives only grow, so
           this makes strict progress and cannot loop; honest merges
           elsewhere survive. *)
        let split_aliases () =
          match quotient with
          | None -> false
          | Some a ->
              (* The alias keys live in the representative's frame, so
                 each path step (state (t, pi), input i) maps to the
                 rep-frame edge word reps(t) @ [pi^-1 i]. *)
              let edge jj =
                let s = state_at jj in
                if s >= Array.length !hyp_rep then None
                else
                  let t = !hyp_rep.(s) in
                  let inv = Quotient.invert !hyp_perm.(s) in
                  Some (!reps.(t) @ [ a.Quotient.map_input inv (List.nth w jj) ])
              in
              let candidates =
                List.filter_map edge (j :: List.init m Fun.id)
              in
              let rec go = function
                | [] -> false
                | x :: rest ->
                    let r = row x in
                    let key = Cq_util.Deep.pack r in
                    if Hashtbl.mem alias_rows key then begin
                      Hashtbl.remove alias_rows key;
                      ignore (add_rep x r);
                      true
                    end
                    else go rest
              in
              go candidates
        in
        if v = [] then
          (* The outputs themselves disagree at the crossing: in direct
             mode that is oracle inconsistency; in quotient mode it is a
             wrong composite frame mislabeling an edge output. *)
          if split_aliases () then true
          else diverge "empty distinguishing suffix"
        else if add_suffix v then true
        else begin
          (* The crossing may expose a wrong alias whose composite frame
             E never verified directly; pulling the suffix back into the
             representative's frame turns it into a column the next alias
             re-derivation does check. *)
          let pulled =
            match quotient with
            | None -> []
            | Some a ->
                List.filter_map
                  (fun s ->
                    if s < Array.length !hyp_perm then
                      let inv = Quotient.invert !hyp_perm.(s) in
                      Some (List.map (a.Quotient.map_input inv) v)
                    else None)
                  [ state_at (j + 1); state_at j ]
          in
          if List.exists add_suffix pulled then true
          else if split_aliases () then true
          else diverge "distinguishing suffix already in E"
        end
  in

  (* Main loop.  A counterexample is re-processed against every refined
     hypothesis until the hypothesis agrees with it; only then do we pay
     for another conformance-testing round. *)
  ignore (add_rep [] (row []));
  close ();
  let result = ref None in
  let pending = ref None in
  while !result = None do
    let hyp = build_hypothesis () in
    (match on_hypothesis with Some f -> f hyp | None -> ());
    let progressed =
      match !pending with
      | Some w when process_cex hyp w ->
          rebuild_table ();
          close ();
          true
      | _ ->
          pending := None;
          false
    in
    if not progressed then begin
      incr rounds;
      match find_cex hyp with
      | None -> result := Some hyp
      | Some w ->
          if not (process_cex hyp w) then
            diverge "equivalence oracle returned a spurious counterexample";
          pending := Some w;
          rebuild_table ();
          close ()
    end
  done;
  match !result with
  | Some machine ->
      let machine, qstats =
        match (quotient, !last_qstats) with
        | Some _, Some st ->
            (* The unfolding can in principle duplicate a state whose
               residual happens to be self-symmetric (the conformance
               oracle cannot separate behaviorally equal states).  The
               machine is still correct; minimize it so downstream
               minimality checks hold, and drop the witness if state
               indices moved. *)
            let mmin = Cq_automata.Mealy.minimize machine in
            if Cq_automata.Mealy.n_states mmin < Cq_automata.Mealy.n_states machine
            then
              ( mmin,
                Some
                  {
                    st with
                    Quotient.states = Cq_automata.Mealy.n_states mmin;
                    witness = [];
                  } )
            else (machine, Some st)
        | _ -> (machine, None)
      in
      {
        machine;
        rounds = !rounds;
        suffixes_added = !suffixes_added;
        row_cache_overflows = !row_cache_overflows;
        quotient = qstats;
      }
  | None -> assert false
