(** Symmetry-quotient support for state-level learning collapse.

    A replacement policy treats lines interchangeably as a {e family},
    but the one machine the learner observes starts from the state its
    reset establishes, and that state fixes a line ordering — so no zoo
    policy has a nontrivial query-level symmetry from its initial state
    (the answer function [w -> M(w)] cannot be canonicalized soundly).
    What survives the reset is state-level conjugacy: distinct states of
    the learned machine are relabelings of one another (all [n!] LRU
    recency stacks; the tree-automorphism orbits of PLRU's masks).

    The learner exploits this by {e aliasing}: a one-step extension
    whose row is a verified relabeling of an existing representative's
    row is recorded as (representative, witness permutation) instead of
    becoming a new representative, and the hypothesis is the unfolding
    of the resulting permutation-labeled quotient machine.  Merges are
    verified against the current suffix set, re-derived whenever it
    grows, and arbitrated by conformance testing.

    This module supplies the permutation action for a given output type
    (the table machinery itself lives in {!Lstar} behind its
    [?quotient] parameter) plus the statistics a quotient learn
    reports.  Words are over the flattened policy alphabet: lines
    [0 .. assoc-1], Evct = [assoc]; outputs are [int option]. *)

(** {1 Permutations} *)

val identity : int -> int array
val is_identity : int array -> bool
val invert : int array -> int array

val compose : int array -> int array -> int array
(** [compose f g] is "apply [g], then [f]". *)

val perm_to_list : int array -> int list

(** {1 The relabeling action} *)

type 'o action = {
  assoc : int;
  map_input : int array -> int -> int;  (** permutation acting on inputs *)
  map_output : int array -> 'o -> 'o;  (** permutation acting on outputs *)
  derive : 'o list -> 'o list -> int array option;
      (** [derive sig_rep sig_row] proposes the witness [p] with
          [map_output p]-image of [sig_rep] equal to [sig_row], or
          [None] when no permutation fits. *)
  signature_key : 'o list -> string;
      (** Orbit-constant fingerprint of a signature, used to bucket
          candidate representatives. *)
  sweep : int list;  (** the signature suffix appended to the table's E *)
}

val policy_action : assoc:int -> int option action
(** The action for the policy alphabet: [Ln(i)] permuted, [Evct] fixed,
    outputs renamed.  The signature suffix is the eviction sweep
    [Evct^assoc], which pins candidate witnesses pointwise on every
    line it names (all of them, for LRU and FIFO). *)

val canonical_signature : 'o action -> 'o list -> string
(** Canonical form of a signature under line relabeling (first-occurrence
    renaming): invariant on orbits, distinct across them up to sweep
    shape.  This is [signature_key]. *)

(** {1 Reporting} *)

type stats = {
  reps : int;  (** representatives the table explored *)
  states : int;  (** states of the unfolded hypothesis *)
  aliases : int;  (** alias edges in the final table *)
  alias_attempts : int;  (** candidate merges tried *)
  alias_queries : int;  (** membership queries spent verifying merges *)
  witness : (int * int * int list) list;
      (** per surviving merge: state [s] of the final machine behaves as
          state [s0] conjugated by the permutation — re-validated by
          [Automaton_check] with anchored product walks *)
}

val collapse : stats -> float
(** [states /. reps] — the state-collapse factor the quotient won. *)

val pp : Format.formatter -> stats -> unit
