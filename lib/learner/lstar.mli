(** Active learning of Mealy machines: L* (Angluin/Niese) with
    Rivest–Schapire counterexample processing — the role LearnLib plays in
    the paper (§3.1/§3.4). *)

type 'o result = {
  machine : 'o Cq_automata.Mealy.t;
  rounds : int;  (** equivalence queries issued *)
  suffixes_added : int;  (** distinguishing suffixes added to E *)
  row_cache_overflows : int;
      (** times the bounded row cache was cleared (see [max_row_cache]) *)
  quotient : Quotient.stats option;
      (** merge statistics and symmetry witness when the learn ran in
          quotient mode (see [quotient] below) *)
}

type quotient_view = { is_rep_state : bool array }
(** The quotient decomposition of the current hypothesis, published via
    [on_quotient_view]: representative states deserve the full
    conformance suite, aliased states a spot-check — their behavior is
    by construction the verified image of their representative's. *)

type divergence = {
  reason : string;
  states : int;  (** representatives discovered when learning gave up *)
  queries : int;  (** membership queries this learn issued *)
  elapsed : float;  (** seconds since the learn started *)
}
(** What the learner had achieved when the table failed to stabilise —
    enough for a supervisor to decide between "retry with a bigger budget"
    and "give up". *)

exception Diverged of divergence
(** The observation table could not be stabilised: the system under
    learning is nondeterministic, the equivalence oracle returned a
    spurious counterexample, or the state budget was exhausted. *)

val pp_divergence : Format.formatter -> divergence -> unit

type 'o table_state = {
  suffixes : int list list;  (** E, in insertion order *)
  reps : int list array;  (** S: one access word per discovered state *)
  rows : (int list * 'o list list) list;  (** cached observation rows *)
}
(** A serializable view of the observation table, for session snapshots.
    On resume, [rows] re-seed the learner's row cache via [seed_rows] —
    rows are a pure function of the oracle, so seeding never changes what
    is learned, it only skips recomputation. *)

val learn :
  ?max_states:int ->
  ?max_row_cache:int ->
  ?expose_table:((unit -> 'o table_state) -> unit) ->
  ?seed_rows:(int list * 'o list list) list ->
  ?on_hypothesis:('o Cq_automata.Mealy.t -> unit) ->
  ?quotient:'o Quotient.action ->
  ?on_quotient_view:(quotient_view -> unit) ->
  oracle:'o Moracle.t ->
  find_cex:('o Cq_automata.Mealy.t -> int list option) ->
  unit ->
  'o result
(** Learn the machine behind [oracle].  [find_cex] is the equivalence
    oracle (e.g. {!Equivalence.w_method}); learning terminates when it
    returns [None].  [max_states] (default 1,000,000) bounds the number of
    discovered states.  [max_row_cache] bounds the observation-table row
    cache: when the bound is hit the cache is cleared (rows are recomputed
    on demand, typically served by the oracle-level prefix cache) and the
    overflow is counted in the result.  The missing cells of each closure
    wave are requested through [oracle.query_batch], so the layers below
    can prefix-share the induced traces.

    [expose_table] is called once, early, with a getter that returns a
    consistent copy of the live observation table — the session layer
    captures it for snapshots.  [seed_rows] pre-populates the row cache
    from a snapshot (rows longer than the current E are truncated).
    [on_hypothesis] observes every intermediate hypothesis before it is
    submitted to the equivalence oracle — supervisors keep the latest one
    for [Partial] reports.

    [quotient] switches the table to symmetry-quotient mode: the
    signature suffix ([Quotient.sweep]) is appended to the initial E, a
    one-step extension whose row is a verified relabeling of an existing
    representative's row becomes an alias edge instead of a new
    representative (collapsing the up-to-[assoc!] symmetric copies of
    each state into one), and each hypothesis is the unfolding of the
    permutation-labeled quotient machine.  Merges are re-derived whenever
    E grows and arbitrated by conformance testing.  [on_quotient_view]
    observes the rep/alias decomposition of each hypothesis so the
    conformance layer can focus its suite on representative states. *)
