(** Active learning of Mealy machines: L* (Angluin/Niese) with
    Rivest–Schapire counterexample processing — the role LearnLib plays in
    the paper (§3.1/§3.4). *)

type 'o result = {
  machine : 'o Cq_automata.Mealy.t;
  rounds : int;  (** equivalence queries issued *)
  suffixes_added : int;  (** distinguishing suffixes added to E *)
  row_cache_overflows : int;
      (** times the bounded row cache was cleared (see [max_row_cache]) *)
}

exception Diverged of string
(** The observation table could not be stabilised: the system under
    learning is nondeterministic, the equivalence oracle returned a
    spurious counterexample, or the state budget was exhausted. *)

val learn :
  ?max_states:int ->
  ?max_row_cache:int ->
  oracle:'o Moracle.t ->
  find_cex:('o Cq_automata.Mealy.t -> int list option) ->
  unit ->
  'o result
(** Learn the machine behind [oracle].  [find_cex] is the equivalence
    oracle (e.g. {!Equivalence.w_method}); learning terminates when it
    returns [None].  [max_states] (default 1,000,000) bounds the number of
    discovered states.  [max_row_cache] bounds the observation-table row
    cache: when the bound is hit the cache is cleared (rows are recomputed
    on demand, typically served by the oracle-level prefix cache) and the
    overflow is counted in the result.  The missing cells of each closure
    wave are requested through [oracle.query_batch], so the layers below
    can prefix-share the induced traces. *)
