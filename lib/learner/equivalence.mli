(** Equivalence oracles: conformance-testing approximations of the
    teacher's equivalence query (§3.3 of the paper).

    The W-method suite with depth [k] is [(|H| + k)]-complete, yielding
    the guarantee of Theorem 3.3 / Corollary 3.4: if the suite passes, the
    system under learning is equivalent to the hypothesis or has more than
    [|H| + k] states. *)

type 'o t = 'o Cq_automata.Mealy.t -> int list option
(** An equivalence oracle maps a hypothesis to a counterexample word, or
    [None] when no disagreement is found. *)

val characterization_set : 'o Cq_automata.Mealy.t -> int list list
(** A set of input words separating every pair of states of a minimal
    machine.  Raises [Invalid_argument] on non-minimal machines. *)

val words_of_length : int -> int -> int list Seq.t
(** [words_of_length n_inputs len]: all input words of length [len],
    lexicographic, lazily. *)

val words_up_to : int -> int -> int list Seq.t
(** [words_up_to n_inputs k]: all input words of length [<= k], shortest
    first (including the empty word), as a lazy (re-traversable)
    sequence — the O(n_inputs^k) middle layer of a test suite is never
    materialised. *)

val w_method_suite : depth:int -> 'o Cq_automata.Mealy.t -> int list Seq.t
(** The (|H|+depth)-complete test suite, lazily. *)

val w_method : ?depth:int -> 'o Moracle.t -> 'o t
(** Conformance testing with the W-method; [depth] defaults to 1 (the
    paper's k). *)

val identification_sets :
  'o Cq_automata.Mealy.t -> int list list -> int list list array
(** Per-state identification sets: for each state, a subset of the given
    characterization set distinguishing it from every other state. *)

val wp_method_suite : depth:int -> 'o Cq_automata.Mealy.t -> int list Seq.t
(** The Wp-method suite [Fujiwara et al. 1991] — the suite the paper's
    implementation uses; same (|H|+depth)-completeness as the W-method
    with (usually far) fewer symbols. *)

val wp_method : ?depth:int -> 'o Moracle.t -> 'o t

val wp_quotient_suite :
  depth:int ->
  is_rep:(int -> bool) ->
  sweep:int list ->
  'o Cq_automata.Mealy.t ->
  int list Seq.t
(** Focused suite for a quotient-learned hypothesis: representative
    states ([is_rep]) get full Wp-style phases whose distinguishers are
    the eviction [sweep] (which fingerprints a state's line frame) plus
    shortest separators of representative pairs; aliased states get a
    spot-check (access word [.] sweep, and access word [.] input [.]
    sweep per transition).  Cost scales with states x inputs instead of
    states^2, trading the (|H|+depth)-completeness bound for a budget
    that stays within the direct learner's at larger associativity —
    wrong merges still surface because the sweep pins the exact frame
    each merge asserted. *)

val wp_quotient :
  ?depth:int -> is_rep:(int -> bool) -> sweep:int list -> 'o Moracle.t -> 'o t

val suite_symbols : int list Seq.t -> int
(** Total input symbols in a suite (the W-vs-Wp ablation metric). *)

val pooled :
  ?chunk:int ->
  suite:('o Cq_automata.Mealy.t -> int list Seq.t) ->
  'o Moracle.t Cq_util.Pool.t ->
  'o t
(** Run a conformance-test suite through a domain pool: in-order chunks of
    [chunk] (default 512) words, one pool-sized round in flight at a time,
    each worker testing against its own private oracle from the pool's
    factory.  Returns the same counterexample as sequential execution
    (first failing word in suite order); a failing round only overshoots
    by the chunks already in flight. *)

val w_method_pooled :
  ?depth:int -> ?chunk:int -> 'o Moracle.t Cq_util.Pool.t -> 'o t

val wp_method_pooled :
  ?depth:int -> ?chunk:int -> 'o Moracle.t Cq_util.Pool.t -> 'o t

val random_walk :
  prng:Cq_util.Prng.t -> ?max_tests:int -> ?max_len:int -> 'o Moracle.t -> 'o t
(** The cheaper random-testing heuristic the paper mentions (§6). *)

val perfect : 'o Cq_automata.Mealy.t -> 'o t
(** Exact equivalence against a known ground truth (tests/ablations). *)
