(** Membership oracle for Mealy-machine learning: answers output queries
    (input word -> output word from the fixed initial state of the system
    under learning).  Polca implements this interface over a cache
    (Algorithm 1 of the paper).

    [query_batch] answers several independent words at once, letting the
    layers below batch and prefix-share the induced block traces. *)

type 'o t = {
  n_inputs : int;
  query : int list -> 'o list;
  query_batch : int list list -> 'o list list;
}

exception Inconsistent of string
(** Raised by {!cached} when the underlying system returns conflicting
    outputs for the same input word and arbitration (if enabled) could not
    resolve the conflict — the system looks genuinely nondeterministic. *)

val make :
  ?query_batch:(int list list -> 'o list list) ->
  n_inputs:int ->
  (int list -> 'o list) ->
  'o t
(** Build an oracle; without [query_batch] a sequential fallback
    ([List.map query]) is derived, so plain oracles keep working. *)

type stats = {
  queries : Cq_util.Metrics.counter;
      (** queries reaching the underlying system *)
  symbols : Cq_util.Metrics.counter;
  cache_hits : Cq_util.Metrics.counter;
      (** queries answered by the prefix cache *)
  batches : Cq_util.Metrics.counter;
      (** [query_batch] calls reaching the system *)
  conflicts : Cq_util.Metrics.counter;
      (** prefix-cache conflicts observed (each one is a transient
          measurement flip somewhere, unless it escalates to
          {!Inconsistent}) *)
  latency : Cq_util.Metrics.histogram;
      (** seconds per membership query/batch reaching the system *)
}
(** Registry-backed accounting ({!Cq_util.Metrics}). *)

val fresh_stats : ?registry:Cq_util.Metrics.t -> ?prefix:string -> unit -> stats
(** Stats registered as ["<prefix>.<field>"] (default prefix ["member"])
    in [registry] (default: a fresh private registry). *)

val counting : stats -> 'o t -> 'o t

val cached : ?stats:stats -> ?conflict_retries:int -> 'o t -> 'o t
(** Prefix-tree cache: a query whose whole path is known is answered
    locally; batches forward only the (deduplicated) unknown words.

    When the underlying system returns outputs for a word that conflict
    with a cached prefix, the word is re-executed up to [conflict_retries]
    times (default 0) to arbitrate: a fresh run agreeing with the cache
    exonerates it (the conflicting run carried a transient measurement
    flip); two fresh runs agreeing with each other outvote the single
    cached execution, whose entry is overwritten.  Conflicts that persist
    raise {!Inconsistent} — the system looks genuinely nondeterministic. *)

val cached_refresh :
  ?stats:stats -> ?conflict_retries:int -> 'o t -> 'o t * (int list -> 'o list)
(** As {!cached}, but also returns a [refresh] handle that bypasses the
    cache: it re-executes a word on the underlying system (until two
    consecutive runs agree, bounded by [conflict_retries]), overwrites the
    cached path with the fresh answer and returns it.  Callers use it to
    repair entries they suspect of holding a transient measurement flip —
    e.g. before trusting a counterexample from conformance testing. *)

type 'o knowledge
(** A portable dump of a prefix-trie cache's contents (the maximal known
    (word, outputs) paths).  Marshal-safe: sessions persist it in
    snapshots and feed it back through [preload] on resume, after which
    every previously answered query is served locally — the foundation of
    crash-resumable learning. *)

val knowledge_size : 'o knowledge -> int
(** Number of maximal paths in the dump. *)

type 'o handle = {
  refresh : int list -> 'o list;  (** as returned by {!cached_refresh} *)
  export : unit -> 'o knowledge;  (** dump the trie's current contents *)
  preload : 'o knowledge -> unit;
      (** seed the trie from a dump (overwrites overlapping paths) *)
}

val cached_session :
  ?stats:stats -> ?conflict_retries:int -> 'o t -> 'o t * 'o handle
(** As {!cached_refresh}, but the handle also exposes the trie for
    session snapshot / resume. *)

val of_mealy : 'o Cq_automata.Mealy.t -> 'o t
(** Oracle backed by an explicit machine (ground truth in tests). *)
