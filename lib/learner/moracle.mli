(** Membership oracle for Mealy-machine learning: answers output queries
    (input word -> output word from the fixed initial state of the system
    under learning).  Polca implements this interface over a cache
    (Algorithm 1 of the paper).

    [query_batch] answers several independent words at once, letting the
    layers below batch and prefix-share the induced block traces. *)

type 'o t = {
  n_inputs : int;
  query : int list -> 'o list;
  query_batch : int list list -> 'o list list;
}

val make :
  ?query_batch:(int list list -> 'o list list) ->
  n_inputs:int ->
  (int list -> 'o list) ->
  'o t
(** Build an oracle; without [query_batch] a sequential fallback
    ([List.map query]) is derived, so plain oracles keep working. *)

type stats = {
  mutable queries : int;  (** queries reaching the underlying system *)
  mutable symbols : int;
  mutable cache_hits : int;  (** queries answered by the prefix cache *)
  mutable batches : int;  (** [query_batch] calls reaching the system *)
}

val fresh_stats : unit -> stats

val counting : stats -> 'o t -> 'o t

val cached : ?stats:stats -> 'o t -> 'o t
(** Prefix-tree cache: a query whose whole path is known is answered
    locally; batches forward only the (deduplicated) unknown words.
    Raises [Failure _] when the underlying system returns inconsistent
    outputs for the same word (nondeterminism detection). *)

val of_mealy : 'o Cq_automata.Mealy.t -> 'o t
(** Oracle backed by an explicit machine (ground truth in tests). *)
