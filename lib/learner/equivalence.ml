(* Equivalence oracles: approximations of the teacher's equivalence query
   by conformance testing (§3.3).

   The main oracle is the W-method with depth parameter [k]: its test suite
   is (|H| + k)-complete, giving the guarantee of Theorem 3.3 / Corollary
   3.4 — if the suite passes, the true machine is equivalent to the
   hypothesis or has more than |H| + k states.

   A random-walk oracle is provided as the cheaper heuristic alternative
   the paper mentions, and a "perfect" oracle (ground truth available) is
   used in tests and ablations. *)

type 'o t = 'o Cq_automata.Mealy.t -> int list option

(* Characterization set: a set of input words separating every pair of
   states of [m].  Built incrementally: while two states are unseparated,
   find a shortest distinguishing word via product BFS and add it. *)
let characterization_set m =
  let n = Cq_automata.Mealy.n_states m in
  let w = ref [] in
  let signature s =
    List.map (fun word -> Cq_automata.Mealy.run_from m s word) !w
  in
  (* Pairs of states no input word separates.  An honest L* hypothesis has
     none (rows are distinct), but a transient measurement flip can corrupt
     a table cell into distinguishing two rows whose machine states are
     equivalent.  Aborting here would kill the whole learn; instead leave
     such pairs unseparated — the conformance suite built from the partial
     set still exercises the corrupt hypothesis and surfaces a
     counterexample, which lets the learner repair its table. *)
  let unseparable : (int * int, unit) Hashtbl.t = Hashtbl.create 4 in
  let finished = ref false in
  while not !finished do
    let groups : ('a, int) Hashtbl.t = Hashtbl.create 97 in
    let clash = ref None in
    (* Find two states with equal signatures (ignoring unseparable pairs). *)
    let s = ref 0 in
    while !clash = None && !s < n do
      let sg = Cq_util.Deep.pack (signature !s) in
      (match Hashtbl.find_opt groups sg with
      | Some s' ->
          if not (Hashtbl.mem unseparable (s', !s)) then clash := Some (s', !s)
      | None -> Hashtbl.add groups sg !s); (* cq-lint: allow hashtbl-add: find_opt miss *)
      incr s
    done;
    match !clash with
    | None -> finished := true
    | Some (p, q) -> (
        match
          Cq_automata.Mealy.find_counterexample ~from_a:(Some p)
            ~from_b:(Some q) m m
        with
        | Some word -> w := word :: !w
        | None -> Hashtbl.replace unseparable (p, q) ())
  done;
  !w

(* All input words of length [len], lexicographic. *)
let words_of_length n_inputs len =
  let rec go len =
    if len = 0 then Seq.return []
    else
      Seq.concat_map
        (fun w -> Seq.init n_inputs (fun i -> w @ [ i ]))
        (go (len - 1))
  in
  go len

(* All input words of length <= k, shortest first, lazily: suites built on
   top of this never materialise the O(n_inputs^k) middle layer, and a
   conformance-testing round that fails early only pays for the prefix it
   actually walked. *)
let words_up_to n_inputs k =
  Seq.concat (Seq.init (k + 1) (fun len -> words_of_length n_inputs len))

(* W-method test suite for hypothesis [h] with depth [k]:
   { access(s) · i · m · w  |  s state, i input, m ∈ I^{<=k}, w ∈ W ∪ {ε} }.
   Returned lazily as a Seq so the caller can stop at the first failure. *)
let w_method_suite ~depth h =
  let n_inputs = Cq_automata.Mealy.n_inputs h in
  let access = Cq_automata.Mealy.access_sequences h in
  let w_set = [] :: characterization_set h in
  let middles = words_up_to n_inputs depth in
  let states = List.init (Cq_automata.Mealy.n_states h) (fun s -> s) in
  (* Order tests roughly by length: iterate middles outermost (they grow),
     then states, inputs, and suffixes. *)
  middles
  |> Seq.concat_map (fun m ->
         List.to_seq states
         |> Seq.concat_map (fun s ->
                let acc = Option.value (access.(s)) ~default:[] in
                Seq.init n_inputs (fun i ->
                    List.to_seq w_set |> Seq.map (fun w -> acc @ (i :: m) @ w))
                |> Seq.concat))

(* Run a test word against the oracle and the (compiled) hypothesis.  The
   hypothesis is compiled once per conformance round — [Mealy.agrees]
   walks the flattened tables without allocating, where [Mealy.run] paid a
   tuple and an output-list cell per symbol. *)
let run_test (oracle : 'o Moracle.t) compiled word =
  not (Cq_automata.Mealy.agrees compiled word (oracle.Moracle.query word))

let w_method ?(depth = 1) (oracle : 'o Moracle.t) : 'o t =
 fun h ->
  let suite = w_method_suite ~depth h in
  let c = Cq_automata.Mealy.compile h in
  Seq.find (fun word -> run_test oracle c word) suite


(* The Wp-method [Fujiwara et al. 1991], the suite the paper actually uses
   (§3.4): phase 1 tests the state cover against the full characterization
   set W; phase 2 tests the transition cover against the *state
   identification set* W_s of the state each test word reaches — a subset
   of W sufficient to tell s apart from every other state.  Same
   (|H|+k)-completeness as the W-method, usually far fewer symbols. *)

(* For each state, a minimal-ish subset of W distinguishing it from every
   other state: greedily pick words that split off the remaining
   confusable states. *)
let identification_sets m w_set =
  let n = Cq_automata.Mealy.n_states m in
  let response s w = Cq_automata.Mealy.run_from m s w in
  Array.init n (fun s ->
      let confusable = ref (List.filter (fun t -> t <> s) (List.init n Fun.id)) in
      let chosen = ref [] in
      List.iter
        (fun w ->
          if !confusable <> [] then begin
            let rs = response s w in
            let still = List.filter (fun t -> response t w = rs) !confusable in
            if List.length still < List.length !confusable then begin
              chosen := w :: !chosen;
              confusable := still
            end
          end)
        w_set;
      (* W separates every separable pair; states that survive are
         genuinely equivalent in a corrupt (non-minimal) hypothesis — see
         [characterization_set] — and no identification word can help. *)
      List.rev !chosen)

let wp_method_suite ~depth h =
  let n_inputs = Cq_automata.Mealy.n_inputs h in
  let access = Cq_automata.Mealy.access_sequences h in
  let w_set = characterization_set h in
  let w_all = [] :: w_set in
  let wp = identification_sets h w_set in
  let middles = words_up_to n_inputs depth in
  let states = List.init (Cq_automata.Mealy.n_states h) (fun s -> s) in
  let phase1 =
    (* state cover x I^{<=k} x (W ∪ {ε}) *)
    List.to_seq states
    |> Seq.concat_map (fun s ->
           let acc = Option.value access.(s) ~default:[] in
           middles
           |> Seq.concat_map (fun m ->
                  List.to_seq w_all |> Seq.map (fun w -> acc @ m @ w)))
  in
  let phase2 =
    (* transition cover x I^{<=k} x Wp(reached state) *)
    List.to_seq states
    |> Seq.concat_map (fun s ->
           let acc = Option.value access.(s) ~default:[] in
           Seq.init n_inputs (fun i ->
               middles
               |> Seq.concat_map (fun m ->
                      let reached =
                        Cq_automata.Mealy.state_after h (acc @ (i :: m))
                      in
                      let ws = match wp.(reached) with [] -> [ [] ] | ws -> ws in
                      List.to_seq ws |> Seq.map (fun w -> acc @ (i :: m) @ w)))
           |> Seq.concat)
  in
  Seq.append phase1 phase2

(* --- Focused suite for quotient-learned hypotheses ---------------------- *)

(* Shortest distinguishing words for the pairs of [subset] only — the
   representative states of a quotient hypothesis.  Same tolerance for
   unseparable pairs as [characterization_set]. *)
let characterization_set_on m subset =
  let w = ref [] in
  let signature s =
    List.map (fun word -> Cq_automata.Mealy.run_from m s word) !w
  in
  let unseparable : (int * int, unit) Hashtbl.t = Hashtbl.create 4 in
  let finished = ref false in
  while not !finished do
    let groups : ('a, int) Hashtbl.t = Hashtbl.create 97 in
    let clash = ref None in
    List.iter
      (fun s ->
        if !clash = None then begin
          let sg = Cq_util.Deep.pack (signature s) in
          match Hashtbl.find_opt groups sg with
          | Some s' ->
              if not (Hashtbl.mem unseparable (s', s)) then clash := Some (s', s)
          | None -> Hashtbl.add groups sg s (* cq-lint: allow hashtbl-add: find_opt miss *)
        end)
      subset;
    match !clash with
    | None -> finished := true
    | Some (p, q) -> (
        match
          Cq_automata.Mealy.find_counterexample ~from_a:(Some p)
            ~from_b:(Some q) m m
        with
        | Some word -> w := word :: !w
        | None -> Hashtbl.replace unseparable (p, q) ())
  done;
  !w

(* Conformance suite for a quotient-learned hypothesis.  A full Wp suite
   over the unfolded machine defeats the point of the quotient: its cost
   scales with the |assoc|!-sized orbit closure, and [identification_sets]
   alone is quadratic in states.  Instead the suite trusts the structure
   the table verified and spends accordingly:

   - representative states (frame = identity) get the full treatment:
     state cover and transition cover x I^{<=depth} x distinguishers,
     where the distinguishers are the sweep (which fingerprints a state's
     line frame) plus shortest separators for representative pairs;
   - aliased states get a spot-check: access word . sweep confirms the
     state's claimed frame, access word . input . sweep each outgoing
     transition's output and target frame.

   This trades the (|H|+k)-completeness bound for a suite whose size
   scales with states x inputs instead of states^2 — wrong merges still
   surface (the sweep pins the frame the merge asserted), and the learned
   machine is re-validated independently by Automaton_check and policy
   identification. *)
let wp_quotient_suite ~depth ~is_rep ~sweep h =
  let n_inputs = Cq_automata.Mealy.n_inputs h in
  let n = Cq_automata.Mealy.n_states h in
  let access = Cq_automata.Mealy.access_sequences h in
  let acc s = Option.value access.(s) ~default:[] in
  let states = List.init n Fun.id in
  let rep_states = List.filter is_rep states in
  let aliased = List.filter (fun s -> not (is_rep s)) states in
  let w_set = sweep :: characterization_set_on h rep_states in
  let w_all = [] :: w_set in
  (* Per-representative identification sets (the "p" of Wp): the subset
     of W a given representative actually needs to be told apart from
     the other representatives.  Transitions landing on an aliased state
     are identified by the sweep alone — it fingerprints the state's
     frame, which is exactly what the alias asserted. *)
  let wp =
    let tbl = Hashtbl.create 64 in
    let response s w = Cq_automata.Mealy.run_from h s w in
    List.iter
      (fun s ->
        let confusable = ref (List.filter (fun t -> t <> s) rep_states) in
        let chosen = ref [] in
        List.iter
          (fun w ->
            if !confusable <> [] then begin
              let rs = response s w in
              let still =
                List.filter (fun t -> response t w = rs) !confusable
              in
              if List.length still < List.length !confusable then begin
                chosen := w :: !chosen;
                confusable := still
              end
            end)
          w_set;
        Hashtbl.replace tbl s (List.rev !chosen))
      rep_states;
    tbl
  in
  let middles = words_up_to n_inputs depth in
  let phase1 =
    List.to_seq rep_states
    |> Seq.concat_map (fun s ->
           middles
           |> Seq.concat_map (fun m ->
                  List.to_seq w_all |> Seq.map (fun w -> acc s @ m @ w)))
  in
  let phase2 =
    List.to_seq rep_states
    |> Seq.concat_map (fun s ->
           Seq.init n_inputs (fun i ->
               middles
               |> Seq.concat_map (fun m ->
                      let prefix = acc s @ (i :: m) in
                      let reached = Cq_automata.Mealy.state_after h prefix in
                      let ws =
                        if is_rep reached then
                          match Hashtbl.find_opt wp reached with
                          | Some [] | None -> [ [] ]
                          | Some ws -> ws
                        else [ sweep ]
                      in
                      List.to_seq ws |> Seq.map (fun w -> prefix @ w)))
           |> Seq.concat)
  in
  let spot =
    (* Every aliased state has its claimed frame confirmed.  Outgoing
       transitions are the frame-conjugates of the representative's
       (all of which phase2 tests in full), so per-transition spots only
       guard the conjugation itself: they run in full while affordable,
       and fall back to a deterministic 1-in-4 sample of the aliased
       states once the unfolding is large enough that full spots would
       scale with the orbit closure instead of the quotient. *)
    let full_spots = List.length aliased * n_inputs <= 8192 in
    List.to_seq (List.mapi (fun j s -> (j, s)) aliased)
    |> Seq.concat_map (fun (j, s) ->
           if full_spots || j mod 4 = 0 then
             Seq.cons
               (acc s @ sweep)
               (Seq.init n_inputs (fun i -> acc s @ (i :: sweep)))
           else Seq.return (acc s @ sweep))
  in
  Seq.append phase1 (Seq.append phase2 spot)

let wp_quotient ?(depth = 1) ~is_rep ~sweep (oracle : 'o Moracle.t) : 'o t =
 fun h ->
  (* While the unfolding is small, completeness is affordable — and the
     two suites catch different wrong machines.  The full Wp suite is
     (|H|+depth)-complete, which bites when a wrong merge still unfolds
     to at least the true machine's size (LIP); the focused suite's
     sweep distinguishers catch under-sized hypotheses whose state count
     voids that bound (BIP's 6-state impostor).  Run both when small;
     for unfoldings big enough that the full suite would scale with the
     orbit closure, the focused suite alone carries the test. *)
  let small =
    Cq_automata.Mealy.n_states h * Cq_automata.Mealy.n_inputs h <= 512
  in
  let focused = wp_quotient_suite ~depth ~is_rep ~sweep h in
  let suite =
    if small then Seq.append focused (wp_method_suite ~depth h) else focused
  in
  let c = Cq_automata.Mealy.compile h in
  Seq.find (fun word -> run_test oracle c word) suite

(* Random walks: [max_tests] random words of length up to [max_len]. *)
let random_walk ~prng ?(max_tests = 10_000) ?(max_len = 30)
    (oracle : 'o Moracle.t) : 'o t =
 fun h ->
  let n_inputs = oracle.Moracle.n_inputs in
  let c = Cq_automata.Mealy.compile h in
  let rec go t =
    if t >= max_tests then None
    else
      let len = 1 + Cq_util.Prng.int prng max_len in
      let word = List.init len (fun _ -> Cq_util.Prng.int prng n_inputs) in
      if run_test oracle c word then Some word else go (t + 1)
  in
  go 0

(* Ground truth available: exact equivalence via product BFS. *)
let perfect (truth : 'o Cq_automata.Mealy.t) : 'o t =
 fun h -> Cq_automata.Mealy.find_counterexample truth h
let wp_method ?(depth = 1) (oracle : 'o Moracle.t) : 'o t =
 fun h ->
  let suite = wp_method_suite ~depth h in
  let c = Cq_automata.Mealy.compile h in
  Seq.find (fun word -> run_test oracle c word) suite

(* Total number of input symbols in a suite — the cost metric for the
   W-vs-Wp ablation. *)
let suite_symbols suite =
  Seq.fold_left (fun acc w -> acc + List.length w) 0 suite

(* --- Pooled conformance testing ---------------------------------------- *)

(* Split off up to [n] chunks of [chunk] words from a suite.  Chunks keep
   suite order, so "first failing word of the earliest failing chunk" is
   exactly the word sequential execution would have found first. *)
let take_chunks n chunk seq =
  let rec take_chunk k seq acc =
    if k = 0 then (List.rev acc, seq)
    else
      match seq () with
      | Seq.Nil -> (List.rev acc, Seq.empty)
      | Seq.Cons (w, rest) -> take_chunk (k - 1) rest (w :: acc)
  in
  let rec go n seq acc =
    if n = 0 then (List.rev acc, seq)
    else
      let c, rest = take_chunk chunk seq [] in
      if c = [] then (List.rev acc, rest) else go (n - 1) rest (c :: acc)
  in
  go n seq []

(* Conformance testing through a domain pool: the suite is cut into
   in-order chunks, one round of [Pool.size] chunks is fanned out at a
   time (each worker querying its own private oracle), and the round's
   results are scanned in suite order.  A failing round stops the scan, so
   the returned counterexample is identical to the sequential one; the
   only overshoot is the tail of the round already in flight. *)
let pooled ?(chunk = 512) ~suite (pool : 'o Moracle.t Cq_util.Pool.t) : 'o t =
 fun h ->
  if chunk < 1 then invalid_arg "Equivalence.pooled: chunk must be >= 1";
  (* The compiled hypothesis is immutable, so sharing it read-only across
     the pool's domains is safe. *)
  let c = Cq_automata.Mealy.compile h in
  let rec rounds seq =
    let chunks, rest = take_chunks (Cq_util.Pool.size pool) chunk seq in
    if chunks = [] then None
    else
      let results =
        Cq_util.Pool.map_list pool
          (fun oracle words ->
            List.find_opt (fun w -> run_test oracle c w) words)
          chunks
      in
      match List.find_map Fun.id results with
      | Some cex -> Some cex
      | None -> rounds rest
  in
  rounds (suite h)

let w_method_pooled ?(depth = 1) ?chunk pool =
  pooled ?chunk ~suite:(w_method_suite ~depth) pool

let wp_method_pooled ?(depth = 1) ?chunk pool =
  pooled ?chunk ~suite:(wp_method_suite ~depth) pool
