(* Equivalence oracles: approximations of the teacher's equivalence query
   by conformance testing (§3.3).

   The main oracle is the W-method with depth parameter [k]: its test suite
   is (|H| + k)-complete, giving the guarantee of Theorem 3.3 / Corollary
   3.4 — if the suite passes, the true machine is equivalent to the
   hypothesis or has more than |H| + k states.

   A random-walk oracle is provided as the cheaper heuristic alternative
   the paper mentions, and a "perfect" oracle (ground truth available) is
   used in tests and ablations. *)

type 'o t = 'o Cq_automata.Mealy.t -> int list option

(* Characterization set: a set of input words separating every pair of
   states of [m].  Built incrementally: while two states are unseparated,
   find a shortest distinguishing word via product BFS and add it. *)
let characterization_set m =
  let n = Cq_automata.Mealy.n_states m in
  let w = ref [] in
  let signature s =
    List.map (fun word -> Cq_automata.Mealy.run_from m s word) !w
  in
  (* Pairs of states no input word separates.  An honest L* hypothesis has
     none (rows are distinct), but a transient measurement flip can corrupt
     a table cell into distinguishing two rows whose machine states are
     equivalent.  Aborting here would kill the whole learn; instead leave
     such pairs unseparated — the conformance suite built from the partial
     set still exercises the corrupt hypothesis and surfaces a
     counterexample, which lets the learner repair its table. *)
  let unseparable : (int * int, unit) Hashtbl.t = Hashtbl.create 4 in
  let finished = ref false in
  while not !finished do
    let groups : ('a, int) Hashtbl.t = Hashtbl.create 97 in
    let clash = ref None in
    (* Find two states with equal signatures (ignoring unseparable pairs). *)
    let s = ref 0 in
    while !clash = None && !s < n do
      let sg = Cq_util.Deep.pack (signature !s) in
      (match Hashtbl.find_opt groups sg with
      | Some s' ->
          if not (Hashtbl.mem unseparable (s', !s)) then clash := Some (s', !s)
      | None -> Hashtbl.add groups sg !s); (* cq-lint: allow hashtbl-add: find_opt miss *)
      incr s
    done;
    match !clash with
    | None -> finished := true
    | Some (p, q) -> (
        match
          Cq_automata.Mealy.find_counterexample ~from_a:(Some p)
            ~from_b:(Some q) m m
        with
        | Some word -> w := word :: !w
        | None -> Hashtbl.replace unseparable (p, q) ())
  done;
  !w

(* All input words of length [len], lexicographic. *)
let words_of_length n_inputs len =
  let rec go len =
    if len = 0 then Seq.return []
    else
      Seq.concat_map
        (fun w -> Seq.init n_inputs (fun i -> w @ [ i ]))
        (go (len - 1))
  in
  go len

(* All input words of length <= k, shortest first, lazily: suites built on
   top of this never materialise the O(n_inputs^k) middle layer, and a
   conformance-testing round that fails early only pays for the prefix it
   actually walked. *)
let words_up_to n_inputs k =
  Seq.concat (Seq.init (k + 1) (fun len -> words_of_length n_inputs len))

(* W-method test suite for hypothesis [h] with depth [k]:
   { access(s) · i · m · w  |  s state, i input, m ∈ I^{<=k}, w ∈ W ∪ {ε} }.
   Returned lazily as a Seq so the caller can stop at the first failure. *)
let w_method_suite ~depth h =
  let n_inputs = Cq_automata.Mealy.n_inputs h in
  let access = Cq_automata.Mealy.access_sequences h in
  let w_set = [] :: characterization_set h in
  let middles = words_up_to n_inputs depth in
  let states = List.init (Cq_automata.Mealy.n_states h) (fun s -> s) in
  (* Order tests roughly by length: iterate middles outermost (they grow),
     then states, inputs, and suffixes. *)
  middles
  |> Seq.concat_map (fun m ->
         List.to_seq states
         |> Seq.concat_map (fun s ->
                let acc = Option.value (access.(s)) ~default:[] in
                Seq.init n_inputs (fun i ->
                    List.to_seq w_set |> Seq.map (fun w -> acc @ (i :: m) @ w))
                |> Seq.concat))

(* Run a test word against the oracle and the hypothesis. *)
let run_test (oracle : 'o Moracle.t) h word =
  let o = oracle.Moracle.query word in
  let hh = Cq_automata.Mealy.run h word in
  o <> hh

let w_method ?(depth = 1) (oracle : 'o Moracle.t) : 'o t =
 fun h ->
  let suite = w_method_suite ~depth h in
  Seq.find (fun word -> run_test oracle h word) suite


(* The Wp-method [Fujiwara et al. 1991], the suite the paper actually uses
   (§3.4): phase 1 tests the state cover against the full characterization
   set W; phase 2 tests the transition cover against the *state
   identification set* W_s of the state each test word reaches — a subset
   of W sufficient to tell s apart from every other state.  Same
   (|H|+k)-completeness as the W-method, usually far fewer symbols. *)

(* For each state, a minimal-ish subset of W distinguishing it from every
   other state: greedily pick words that split off the remaining
   confusable states. *)
let identification_sets m w_set =
  let n = Cq_automata.Mealy.n_states m in
  let response s w = Cq_automata.Mealy.run_from m s w in
  Array.init n (fun s ->
      let confusable = ref (List.filter (fun t -> t <> s) (List.init n Fun.id)) in
      let chosen = ref [] in
      List.iter
        (fun w ->
          if !confusable <> [] then begin
            let rs = response s w in
            let still = List.filter (fun t -> response t w = rs) !confusable in
            if List.length still < List.length !confusable then begin
              chosen := w :: !chosen;
              confusable := still
            end
          end)
        w_set;
      (* W separates every separable pair; states that survive are
         genuinely equivalent in a corrupt (non-minimal) hypothesis — see
         [characterization_set] — and no identification word can help. *)
      List.rev !chosen)

let wp_method_suite ~depth h =
  let n_inputs = Cq_automata.Mealy.n_inputs h in
  let access = Cq_automata.Mealy.access_sequences h in
  let w_set = characterization_set h in
  let w_all = [] :: w_set in
  let wp = identification_sets h w_set in
  let middles = words_up_to n_inputs depth in
  let states = List.init (Cq_automata.Mealy.n_states h) (fun s -> s) in
  let phase1 =
    (* state cover x I^{<=k} x (W ∪ {ε}) *)
    List.to_seq states
    |> Seq.concat_map (fun s ->
           let acc = Option.value access.(s) ~default:[] in
           middles
           |> Seq.concat_map (fun m ->
                  List.to_seq w_all |> Seq.map (fun w -> acc @ m @ w)))
  in
  let phase2 =
    (* transition cover x I^{<=k} x Wp(reached state) *)
    List.to_seq states
    |> Seq.concat_map (fun s ->
           let acc = Option.value access.(s) ~default:[] in
           Seq.init n_inputs (fun i ->
               middles
               |> Seq.concat_map (fun m ->
                      let reached =
                        Cq_automata.Mealy.state_after h (acc @ (i :: m))
                      in
                      let ws = match wp.(reached) with [] -> [ [] ] | ws -> ws in
                      List.to_seq ws |> Seq.map (fun w -> acc @ (i :: m) @ w)))
           |> Seq.concat)
  in
  Seq.append phase1 phase2

(* Random walks: [max_tests] random words of length up to [max_len]. *)
let random_walk ~prng ?(max_tests = 10_000) ?(max_len = 30)
    (oracle : 'o Moracle.t) : 'o t =
 fun h ->
  let n_inputs = oracle.Moracle.n_inputs in
  let rec go t =
    if t >= max_tests then None
    else
      let len = 1 + Cq_util.Prng.int prng max_len in
      let word = List.init len (fun _ -> Cq_util.Prng.int prng n_inputs) in
      if run_test oracle h word then Some word else go (t + 1)
  in
  go 0

(* Ground truth available: exact equivalence via product BFS. *)
let perfect (truth : 'o Cq_automata.Mealy.t) : 'o t =
 fun h -> Cq_automata.Mealy.find_counterexample truth h
let wp_method ?(depth = 1) (oracle : 'o Moracle.t) : 'o t =
 fun h ->
  let suite = wp_method_suite ~depth h in
  Seq.find (fun word -> run_test oracle h word) suite

(* Total number of input symbols in a suite — the cost metric for the
   W-vs-Wp ablation. *)
let suite_symbols suite =
  Seq.fold_left (fun acc w -> acc + List.length w) 0 suite

(* --- Pooled conformance testing ---------------------------------------- *)

(* Split off up to [n] chunks of [chunk] words from a suite.  Chunks keep
   suite order, so "first failing word of the earliest failing chunk" is
   exactly the word sequential execution would have found first. *)
let take_chunks n chunk seq =
  let rec take_chunk k seq acc =
    if k = 0 then (List.rev acc, seq)
    else
      match seq () with
      | Seq.Nil -> (List.rev acc, Seq.empty)
      | Seq.Cons (w, rest) -> take_chunk (k - 1) rest (w :: acc)
  in
  let rec go n seq acc =
    if n = 0 then (List.rev acc, seq)
    else
      let c, rest = take_chunk chunk seq [] in
      if c = [] then (List.rev acc, rest) else go (n - 1) rest (c :: acc)
  in
  go n seq []

(* Conformance testing through a domain pool: the suite is cut into
   in-order chunks, one round of [Pool.size] chunks is fanned out at a
   time (each worker querying its own private oracle), and the round's
   results are scanned in suite order.  A failing round stops the scan, so
   the returned counterexample is identical to the sequential one; the
   only overshoot is the tail of the round already in flight. *)
let pooled ?(chunk = 512) ~suite (pool : 'o Moracle.t Cq_util.Pool.t) : 'o t =
 fun h ->
  if chunk < 1 then invalid_arg "Equivalence.pooled: chunk must be >= 1";
  let rec rounds seq =
    let chunks, rest = take_chunks (Cq_util.Pool.size pool) chunk seq in
    if chunks = [] then None
    else
      let results =
        Cq_util.Pool.map_list pool
          (fun oracle words ->
            List.find_opt (fun w -> run_test oracle h w) words)
          chunks
      in
      match List.find_map Fun.id results with
      | Some cex -> Some cex
      | None -> rounds rest
  in
  rounds (suite h)

let w_method_pooled ?(depth = 1) ?chunk pool =
  pooled ?chunk ~suite:(w_method_suite ~depth) pool

let wp_method_pooled ?(depth = 1) ?chunk pool =
  pooled ?chunk ~suite:(wp_method_suite ~depth) pool
