(* Symmetry-quotient support for the learner: collapse the up-to-assoc!
   relabeled copies of each observation-table state into one
   representative.

   Replacement policies treat cache lines interchangeably *as a family*:
   the machine reached from a different reset ordering is the original
   conjugated by a line permutation (see Automaton_check's "up to reset
   order" tier).  But the machine the learner observes starts from the
   one state its reset establishes, and that state fixes a line ordering
   — LRU's initial recency stack, FIFO's pointer, PLRU's all-zero mask.
   No zoo policy has a nontrivial symmetry *from its initial state*
   (PLRU has no state invariant under any tree automorphism at all:
   conjugating by a subtree swap flips the swapped node's bit), so a
   sound query-level quotient — answer M(w) by canonicalizing w and
   mapping the answer back through the witness — would collapse nothing.

   The symmetry that does survive the reset lives one level up: distinct
   *states* of the learned machine are conjugates of each other.  Every
   LRU state is some relabeling of every other; PLRU's 2^(n-1) masks
   fall into orbits of its tree-automorphism group.  So the quotient
   acts on the observation table: when a one-step extension's row is a
   verified relabeling of an existing representative's row, the learner
   records an alias edge (representative, witness permutation) instead
   of a new representative, and the hypothesis is the unfolding of that
   permutation-labeled quotient machine.  Aliases are hypotheses like
   any other: they are checked against the table's suffix set when
   formed, re-derived from scratch whenever the suffix set grows, and
   arbitrated by conformance testing — a wrong merge surfaces as a
   counterexample whose distinguishing suffix splits it.

   This module holds the pieces that know what a line permutation does:
   the action on inputs and outputs, deriving a candidate witness from
   eviction-sweep signatures, and the canonical signature key used to
   bucket candidate representatives.  Lstar holds the table machinery. *)

(* --- permutations (arrays mapping index -> image) ---------------------- *)

let identity n = Array.init n Fun.id

let is_identity p =
  let n = Array.length p in
  let rec go i = i >= n || (p.(i) = i && go (i + 1)) in
  go 0

let invert p =
  let n = Array.length p in
  let inv = Array.make n 0 in
  for i = 0 to n - 1 do
    inv.(p.(i)) <- i
  done;
  inv

(* [compose f g] is "apply g, then f". *)
let compose f g = Array.init (Array.length f) (fun i -> f.(g.(i)))

let perm_to_list = Array.to_list

(* --- the action of a line permutation on the learning alphabet --------- *)

(* Everything the table machinery needs, packaged per output type so
   Lstar stays generic in ['o].  [map_input]/[map_output] apply a
   permutation; [derive] proposes the unique witness consistent with two
   signature rows (or [None]); [signature_key] is constant on relabeling
   orbits of signatures, so representatives can be bucketed by it and a
   candidate merge only compares rows that could possibly match;
   [sweep] is the signature suffix itself. *)
type 'o action = {
  assoc : int;
  map_input : int array -> int -> int;
  map_output : int array -> 'o -> 'o;
  derive : 'o list -> 'o list -> int array option;
  signature_key : 'o list -> string;
  sweep : int list;
}

(* The policy alphabet: inputs 0..assoc-1 are Ln(i) (permuted), input
   [assoc] is Evct (fixed); outputs are [int option] naming the evicted
   line.  The signature suffix is Evct^assoc — an eviction sweep.  From
   any state it names lines in policy order (for LRU and FIFO it
   enumerates all of them), so a candidate witness mapping one sweep
   onto another is pinned pointwise; lines the sweep misses are
   completed in increasing order, and a wrong completion simply fails
   verification against the suffix set. *)
let policy_action ~assoc =
  if assoc < 2 then invalid_arg "Quotient.policy_action: assoc must be >= 2";
  let map_input p i = if i >= assoc then i else p.(i) in
  let map_output p = Option.map (fun l -> p.(l)) in
  let derive sig_rep sig_row =
    if List.length sig_rep <> List.length sig_row then None
    else begin
      let perm = Array.make assoc (-1) in
      let taken = Array.make assoc false in
      let ok = ref true in
      List.iter2
        (fun a b ->
          match (a, b) with
          | None, None -> ()
          | Some x, Some y ->
              if x < 0 || x >= assoc || y < 0 || y >= assoc then ok := false
              else if perm.(x) = -1 then begin
                if taken.(y) then ok := false
                else begin
                  perm.(x) <- y;
                  taken.(y) <- true
                end
              end
              else if perm.(x) <> y then ok := false
          | _ -> ok := false)
        sig_rep sig_row;
      if not !ok then None
      else begin
        (* Complete on lines the sweep never named, in increasing order. *)
        let free = ref [] in
        for y = assoc - 1 downto 0 do
          if not taken.(y) then free := y :: !free
        done;
        for x = 0 to assoc - 1 do
          if perm.(x) = -1 then begin
            match !free with
            | y :: rest ->
                perm.(x) <- y;
                free := rest
            | [] -> ok := false
          end
        done;
        if !ok then Some perm else None
      end
    end
  in
  (* First-occurrence canonicalization of a signature: rename each line
     to its order of first appearance.  Two signatures related by a line
     relabeling canonicalize identically, so the key is orbit-constant. *)
  let signature_key outs =
    let seen = Array.make assoc (-1) in
    let next = ref 0 in
    let buf = Buffer.create (2 * assoc) in
    List.iter
      (fun o ->
        (match o with
        | None -> Buffer.add_char buf '.'
        | Some l when l >= 0 && l < assoc ->
            if seen.(l) = -1 then begin
              seen.(l) <- !next;
              incr next
            end;
            Buffer.add_char buf (Char.chr (Char.code 'a' + seen.(l)))
        | Some _ -> Buffer.add_char buf '?');
        Buffer.add_char buf ';')
      outs;
    Buffer.contents buf
  in
  {
    assoc;
    map_input;
    map_output;
    derive;
    signature_key;
    sweep = List.init assoc (fun _ -> assoc);
  }

(* Canonical form of a signature under line relabeling — the orbit
   fingerprint behind the representative buckets.  Exposed for the
   property tests. *)
let canonical_signature action outs = action.signature_key outs

(* --- what a quotient learn reports ------------------------------------- *)

(* [witness] certifies the merges baked into the *final* machine: each
   [(s, s0, perm)] claims that state [s] behaves as state [s0]
   conjugated by [perm] — exactly what Automaton_check re-validates
   with an anchored product walk (state indices refer to the returned
   machine). *)
type stats = {
  reps : int;  (* representatives the table actually explored *)
  states : int;  (* states of the unfolded hypothesis *)
  aliases : int;  (* alias edges recorded in the final table *)
  alias_attempts : int;  (* candidate merges tried *)
  alias_queries : int;  (* membership queries spent verifying merges *)
  witness : (int * int * int list) list;
}

let collapse s =
  if s.reps <= 0 then 1.0 else float_of_int s.states /. float_of_int s.reps

let pp ppf s =
  Fmt.pf ppf
    "%d state(s) from %d representative(s) (%.1fx collapse, %d alias(es), %d \
     merge attempt(s), %d verification queries)"
    s.states s.reps (collapse s) s.aliases s.alias_attempts s.alias_queries
