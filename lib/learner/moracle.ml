(* Membership oracle for Mealy-machine learning: answers *output queries*,
   i.e. maps an input word to the output word produced from the (fixed)
   initial state of the system under learning.

   This is the interface between the L* learner and Polca: Polca implements
   [query] by translating policy inputs into cache probes (Algorithm 1).

   [query_batch] answers several independent words at once.  The learner
   collects the missing observation-table cells of a closure round and
   fills them with one batch, which lets the layers below (Polca, the
   cache oracle) batch and prefix-share the induced block traces. *)

type 'o t = {
  n_inputs : int;
  query : int list -> 'o list;
  query_batch : int list list -> 'o list list;
}

exception Inconsistent of string

(* Smart constructor: derives the sequential [query_batch] fallback. *)
let make ?query_batch ~n_inputs query =
  {
    n_inputs;
    query;
    query_batch =
      (match query_batch with Some qb -> qb | None -> List.map query);
  }

(* Registry-backed accounting: fields are named counters in a
   Cq_util.Metrics registry, plus a latency histogram over the
   membership queries that actually reach the system under learning. *)
type stats = {
  queries : Cq_util.Metrics.counter; (* queries reaching the system *)
  symbols : Cq_util.Metrics.counter; (* total input symbols of those *)
  cache_hits : Cq_util.Metrics.counter; (* answered by the prefix cache *)
  batches : Cq_util.Metrics.counter; (* query_batch calls reaching it *)
  conflicts : Cq_util.Metrics.counter; (* prefix-cache conflicts arbitrated *)
  latency : Cq_util.Metrics.histogram;
      (* seconds per membership query/batch reaching the system *)
}

let fresh_stats ?registry ?(prefix = "member") () =
  let r =
    match registry with Some r -> r | None -> Cq_util.Metrics.create ()
  in
  let c field = Cq_util.Metrics.counter r (prefix ^ "." ^ field) in
  {
    queries = c "queries";
    symbols = c "symbols";
    cache_hits = c "cache_hits";
    batches = c "batches";
    conflicts = c "conflicts";
    (* 1 µs .. ~1 h in factor-2 buckets *)
    latency =
      Cq_util.Metrics.histogram ~buckets:32 ~start:1e-6 r
        (prefix ^ ".latency_seconds");
  }

let counting stats t =
  {
    t with
    query =
      (fun w ->
        Cq_util.Metrics.incr stats.queries;
        Cq_util.Metrics.add stats.symbols (List.length w);
        let r, seconds = Cq_util.Clock.time (fun () -> t.query w) in
        Cq_util.Metrics.observe stats.latency seconds;
        r);
    query_batch =
      (fun ws ->
        Cq_util.Metrics.incr stats.batches;
        Cq_util.Metrics.add stats.queries (List.length ws);
        Cq_util.Metrics.add stats.symbols
          (List.fold_left (fun a w -> a + List.length w) 0 ws);
        let r, seconds = Cq_util.Clock.time (fun () -> t.query_batch ws) in
        Cq_util.Metrics.observe stats.latency seconds;
        r);
  }

(* Prefix-tree cache.  Output queries are prefix-closed (the outputs of a
   prefix are a prefix of the outputs), so a trie lets us answer any query
   whose whole path is known, and to extend partial knowledge cheaply. *)
module Trie = struct
  type 'o node = {
    mutable out : 'o option; (* output on the edge leading here *)
    children : (int, 'o node) Hashtbl.t;
  }

  let create () = { out = None; children = Hashtbl.create 4 }

  let rec lookup node = function
    | [] -> Some []
    | i :: rest -> (
        match Hashtbl.find_opt node.children i with
        | None -> None
        | Some child -> (
            match child.out with
            | None -> None
            | Some o -> (
                match lookup child rest with
                | None -> None
                | Some os -> Some (o :: os))))

  let insert node word outputs =
    let rec go node word outputs =
      match (word, outputs) with
      | [], [] -> ()
      | i :: wrest, o :: orest ->
          let child =
            match Hashtbl.find_opt node.children i with
            | Some c -> c
            | None ->
                let c = create () in
                Hashtbl.add node.children i c; (* cq-lint: allow hashtbl-add: find_opt miss *)
                c
          in
          (match child.out with
          | None -> child.out <- Some o
          | Some o' ->
              if o' <> o then
                raise
                  (Inconsistent
                     "Moracle: inconsistent outputs for the same input word \
                      (the system under learning is nondeterministic)"));
          go child wrest orest
      | _ -> invalid_arg "Moracle.Trie.insert: length mismatch"
    in
    go node word outputs

  (* Overwrite the outputs along [word] unconditionally — used when
     arbitration decided a previously cached answer was the corrupt one. *)
  let insert_force node word outputs =
    let rec go node word outputs =
      match (word, outputs) with
      | [], [] -> ()
      | i :: wrest, o :: orest ->
          let child =
            match Hashtbl.find_opt node.children i with
            | Some c -> c
            | None ->
                let c = create () in
                Hashtbl.add node.children i c; (* cq-lint: allow hashtbl-add: find_opt miss *)
                c
          in
          child.out <- Some o;
          go child wrest orest
      | _ -> invalid_arg "Moracle.Trie.insert_force: length mismatch"
    in
    go node word outputs

  (* Maximal known paths: the trie is prefix-closed (every non-root node
     carries an output), so the root-to-leaf words reconstruct the entire
     trie under [insert_force].  This is the session-snapshot dump. *)
  let export root =
    let acc = ref [] in
    let n = ref 0 in
    let rec go node rev_word rev_out =
      if Hashtbl.length node.children = 0 then begin
        if rev_word <> [] then begin
          acc := (List.rev rev_word, List.rev rev_out) :: !acc;
          incr n
        end
      end
      else
        Hashtbl.iter
          (fun i child ->
            match child.out with
            | Some o -> go child (i :: rev_word) (o :: rev_out)
            | None -> () (* unreachable for tries built by insert *))
          node.children
    in
    go root [] [];
    !acc
end

(* The portable form of a prefix-trie's contents: maximal (word, outputs)
   paths.  Abstract in the interface; sessions Marshal it into snapshots
   and feed it back through [preload] on resume. *)
type 'o knowledge = (int list * 'o list) list

let knowledge_size k = List.length k

type 'o handle = {
  refresh : int list -> 'o list;
  export : unit -> 'o knowledge;
  preload : 'o knowledge -> unit;
}

let cached_session ?stats ?(conflict_retries = 0) t =
  if conflict_retries < 0 then
    invalid_arg "Moracle.cached: conflict_retries must be >= 0";
  let root = Trie.create () in
  let note_hit () =
    match stats with Some s -> Cq_util.Metrics.incr s.cache_hits | None -> ()
  in
  let note_conflict () =
    match stats with Some s -> Cq_util.Metrics.incr s.conflicts | None -> ()
  in
  let check_length w outputs =
    if List.length outputs <> List.length w then
      failwith "Moracle: output word length mismatch"
  in
  (* [outputs] for [w] conflicted with a cached prefix.  One of the two
     executions carried a transient measurement flip; arbitrate by
     re-executing.  A fresh run that agrees with the trie exonerates the
     cache (insert succeeds); two fresh runs agreeing with each other
     outvote the single cached execution, which is overwritten.  Only a
     system that keeps answering differently is reported nondeterministic. *)
  let arbitrate w first_outputs msg =
    note_conflict ();
    if conflict_retries = 0 then raise (Inconsistent msg);
    let rec go k prev =
      if k > conflict_retries then
        raise
          (Inconsistent
             (Printf.sprintf "%s (persisted through %d re-executions)" msg
                conflict_retries))
      else begin
        let outputs = t.query w in
        check_length w outputs;
        match Trie.insert root w outputs with
        | () -> outputs
        | exception Inconsistent _ ->
            if prev = outputs then begin
              Trie.insert_force root w outputs;
              outputs
            end
            else go (k + 1) outputs
      end
    in
    go 1 first_outputs
  in
  (* Bypass the cache: re-execute [w] on the system (until two consecutive
     runs agree, bounded by [conflict_retries]) and overwrite the cached
     path with the fresh answer.  This is how a caller who *suspects* a
     cached entry (e.g. a counterexample that may stem from a transient
     measurement flip) repairs the cache and gets a trustworthy answer. *)
  let refresh w =
    let rec settle k prev =
      let outputs = t.query w in
      check_length w outputs;
      if prev = Some outputs || k >= conflict_retries then outputs
      else settle (k + 1) (Some outputs)
    in
    let outputs = settle 0 None in
    (match Trie.lookup root w with
    | Some old when old <> outputs -> note_conflict ()
    | _ -> ());
    Trie.insert_force root w outputs;
    outputs
  in
  (* [preload]: trust the snapshot unconditionally — it was digested at
     write time, and on resume the trie is empty anyway.  [insert_force]
     keeps a later entry authoritative if paths overlap. *)
  let preload knowledge =
    List.iter (fun (w, outputs) -> Trie.insert_force root w outputs) knowledge
  in
  let export () = Trie.export root in
  ( {
      t with
      query =
      (fun w ->
        match Trie.lookup root w with
        | Some outputs ->
            note_hit ();
            outputs
        | None -> (
            let outputs = t.query w in
            check_length w outputs;
            match Trie.insert root w outputs with
            | () -> outputs
            | exception Inconsistent msg -> arbitrate w outputs msg));
    query_batch =
      (fun ws ->
        (* Serve known words from the trie; forward the deduplicated rest
           as one batch and grow the trie from its answers.  Duplicates
           and prefix-of-another-miss words resolve from the trie after
           insertion. *)
        let missing = Hashtbl.create 16 in
        let order = ref [] in
        List.iter
          (fun w ->
            if Trie.lookup root w = None then begin
              let key = Cq_util.Deep.pack w in
              if not (Hashtbl.mem missing key) then begin
                Hashtbl.replace missing key ();
                order := w :: !order
              end
            end)
          ws;
        let todo = List.rev !order in
        (if todo <> [] then
           let answers = t.query_batch todo in
           List.iter2
             (fun w outputs ->
               check_length w outputs;
               match Trie.insert root w outputs with
               | () -> ()
               | exception Inconsistent msg -> ignore (arbitrate w outputs msg))
             todo answers);
        List.map
          (fun w ->
            match Trie.lookup root w with
            | Some outputs ->
                if not (Hashtbl.mem missing (Cq_util.Deep.pack w)) then
                  note_hit ();
                outputs
            | None -> assert false (* just inserted *))
          ws);
    },
    { refresh; export; preload } )

let cached_refresh ?stats ?conflict_retries t =
  let oracle, handle = cached_session ?stats ?conflict_retries t in
  (oracle, handle.refresh)

let cached ?stats ?conflict_retries t =
  fst (cached_refresh ?stats ?conflict_retries t)

(* Oracle backed by an explicit Mealy machine — ground truth in tests and
   the "perfect teacher" ablation. *)
let of_mealy m =
  make ~n_inputs:(Cq_automata.Mealy.n_inputs m) (Cq_automata.Mealy.run m)
