(* Learning a replacement policy from "hardware" (§7).

   The target is the L1 cache of a simulated Intel i5-6500 (Skylake) with
   realistic measurement noise enabled.  CacheQuery handles address
   selection, cache filtering and latency thresholding; Polca turns the
   timed loads into a membership oracle; L* with W-method conformance
   testing learns the automaton; and the result is identified against the
   policy zoo — rediscovering that Intel L1 caches run tree-PLRU
   (128 control states at associativity 8, cf. Table 4).

   Run with:  dune exec examples/learn_hardware.exe *)

let () =
  let machine =
    Cq_hwsim.Machine.create
      ~noise:Cq_hwsim.Machine.default_noise (* gaussian jitter + outliers *)
      Cq_hwsim.Cpu_model.skylake
  in
  Fmt.pr "%a@." Cq_hwsim.Cpu_model.pp_specs (Cq_hwsim.Machine.model machine);
  Fmt.pr "Learning the L1 policy of set 12 from timing measurements...@.";
  let run =
    Cq_core.Hardware.learn_set machine Cq_hwsim.Cpu_model.L1 ~set:12
      ~repetitions:5 (* majority vote against the noise *)
      ~check_hits:false
  in
  Fmt.pr "outcome: %a@." Cq_core.Hardware.pp_outcome run.Cq_core.Hardware.outcome;
  match run.Cq_core.Hardware.outcome with
  | Cq_core.Hardware.Learned { report; _ } ->
      Fmt.pr "%a@." Cq_core.Learn.pp_report report
  | Cq_core.Hardware.Partial { failure; _ } ->
      exit (Cq_core.Learn.failure_exit_code failure)
  | Cq_core.Hardware.Failed _ -> exit 1
