(* A tour of MemBlockLang (§4.1 / Appendix A).

   Shows how MBL expressions expand into sets of concrete queries, and what
   a simulated Skylake L1 cache set answers for each — including the
   eviction-probing query of Example 4.1 and the thrashing probe of
   Appendix B.

   Run with:  dune exec examples/mbl_playground.exe
   With [--check], the example programs are not executed but validated by
   the static checker (Cq_analysis.Mbl_check) instead — CI runs this mode
   to keep the examples well-formed. *)

(* (associativity, program) pairs shown in the expansion tour *)
let expansion_programs =
  [
    (4, "@ X _?") (* Example 4.1: fill, miss, probe who was evicted *);
    (4, "(A B C D)[E F]");
    (2, "(A B C)3");
    (4, "{A B, C} D?");
    (4, "@ M a M?");
  ]

(* programs run against the simulated Skylake L1 set (associativity 8) *)
let l1_programs =
  [
    "@ (@)?" (* fill then reprobe: all hits *);
    "@ X _?" (* who does X evict? (PLRU: way 0 = block A) *);
    "@ X? X?" (* a fresh block misses, then hits *);
    "(A B)4 C D E F G H I _?" (* pin A/B by re-touching, then probe *);
  ]

let show_expansion assoc input =
  Fmt.pr "  %-22s (assoc %d) expands to:@." input assoc;
  List.iter
    (fun q -> Fmt.pr "    %s@." (Cq_mbl.Expand.query_to_string q))
    (Cq_mbl.Expand.expand_string ~assoc input);
  Fmt.pr "@."

(* [--check]: validate every example without expanding or executing it. *)
let check_all () =
  let l1_assoc = Cq_hwsim.Cpu_model.skylake.Cq_hwsim.Cpu_model.l1.Cq_hwsim.Cpu_model.assoc in
  let programs =
    expansion_programs @ List.map (fun p -> (l1_assoc, p)) l1_programs
  in
  let failed =
    List.fold_left
      (fun failed (assoc, input) ->
        match Cq_analysis.Mbl_check.check_string ~assoc input with
        | Ok s ->
            Fmt.pr "ok   %-28s %a@." input Cq_analysis.Mbl_check.pp_summary s;
            failed
        | Error d ->
            Fmt.pr "FAIL %-28s %s@." input
              (Cq_analysis.Mbl_check.diagnostic_to_string d);
            failed + 1
        | exception Cq_mbl.Parser.Parse_error msg ->
            Fmt.pr "FAIL %-28s parse error: %s@." input msg;
            failed + 1)
      0 programs
  in
  if failed > 0 then (
    Fmt.epr "%d example program(s) failed the static check@." failed;
    exit 1)

let tour () =
  Fmt.pr "--- Macro expansion ---------------------------------------@.";
  List.iter (fun (assoc, p) -> show_expansion assoc p) expansion_programs;

  (* the Appendix B thrashing probe *)
  Fmt.pr "--- Against a simulated Skylake L1 set --------------------@.";
  let machine =
    Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise
      Cq_hwsim.Cpu_model.skylake
  in
  let backend =
    Cq_cachequery.Backend.create machine
      { Cq_cachequery.Backend.level = Cq_hwsim.Cpu_model.L1; slice = 0; set = 3 }
  in
  let threshold, _, _ = Cq_cachequery.Backend.calibrate backend in
  Fmt.pr "calibrated hit/miss threshold: %d cycles@." threshold;
  let frontend = Cq_cachequery.Frontend.create backend in
  List.iter
    (fun input ->
      Fmt.pr "@.query: %s@." input;
      List.iter
        (fun (q, rs) ->
          Fmt.pr "  %-28s -> %s@."
            (Cq_mbl.Expand.query_to_string q)
            (String.concat " "
               (List.map
                  (fun r ->
                    if Cq_cache.Cache_set.result_is_hit r then "Hit" else "Miss")
                  rs)))
        (Cq_cachequery.Frontend.run_mbl frontend input))
    l1_programs

let () =
  match Sys.argv with
  | [| _; "--check" |] -> check_all ()
  | [| _ |] -> tour ()
  | _ ->
      Fmt.epr "usage: %s [--check]@." Sys.argv.(0);
      exit 2
