(* Tests for cq_cache: blocks, the cache LTS of Definition 2.3 / Figure 2,
   Proposition 3.2, and the oracle combinators. *)

module B = Cq_cache.Block
module CS = Cq_cache.Cache_set
module O = Cq_cache.Oracle

let cres = Alcotest.testable CS.pp_result ( = )

let test_block_names () =
  Alcotest.(check string) "A" "A" (B.to_string (B.of_index 0));
  Alcotest.(check string) "Z" "Z" (B.to_string (B.of_index 25));
  Alcotest.(check string) "AA" "AA" (B.to_string (B.of_index 26));
  Alcotest.(check string) "AB" "AB" (B.to_string (B.of_index 27));
  Alcotest.(check int) "roundtrip AB" 27 (B.index (B.of_string "AB"));
  Alcotest.(check string) "aux a" "a" (B.to_string (B.aux 0));
  Alcotest.(check int) "aux roundtrip" (B.index (B.aux 3)) (B.index (B.of_string "d"));
  Alcotest.(check bool) "aux disjoint" true (B.is_aux (B.of_string "m"));
  Alcotest.check_raises "bad name" (Invalid_argument "Block.of_string: bad character '1'")
    (fun () -> ignore (B.of_string "A1"))

let test_block_first () =
  Alcotest.(check (list string)) "first 3" [ "A"; "B"; "C" ]
    (List.map B.to_string (B.first 3))

let lru2_set () = CS.create (Cq_policy.Lru.make 2)

let test_hit_miss_rules () =
  (* Example 2.4: initial content A,B with LRU. *)
  let set = lru2_set () in
  Alcotest.(check cres) "B hits" CS.Hit (CS.access set (B.of_index 1));
  Alcotest.(check cres) "A hits" CS.Hit (CS.access set (B.of_index 0));
  Alcotest.(check cres) "C misses" CS.Miss (CS.access set (B.of_index 2));
  (* C replaced B (the LRU line after touching B then A): content {A, C}. *)
  Alcotest.(check cres) "A still cached" CS.Hit (CS.access set (B.of_index 0));
  Alcotest.(check cres) "B gone" CS.Miss (CS.access set (B.of_index 1))

let test_miss_updates_correct_line () =
  let set = lru2_set () in
  ignore (CS.access set (B.of_index 2));
  (* LRU of [A, B] with no touches: line 1 (B) ... initial recency makes
     line 1 the least recent. *)
  let content = Array.map B.to_string (CS.content set) in
  Alcotest.(check (array string)) "C replaced B" [| "A"; "C" |] content

let test_reset () =
  let set = lru2_set () in
  ignore (CS.access_seq set (B.first 2 @ [ B.of_index 5 ]));
  CS.reset set;
  Alcotest.(check (array string)) "content restored" [| "A"; "B" |]
    (Array.map B.to_string (CS.content set));
  Alcotest.(check cres) "A hits again" CS.Hit (CS.access set (B.of_index 0))

let test_initial_content_validation () =
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Cache_set.create: initial content must fill the set")
    (fun () ->
      ignore (CS.create ~initial_content:[| B.of_index 0 |] (Cq_policy.Lru.make 2)));
  Alcotest.check_raises "repeated blocks"
    (Invalid_argument "Cache_set.create: initial content has repeated blocks")
    (fun () ->
      ignore
        (CS.create
           ~initial_content:[| B.of_index 0; B.of_index 0 |]
           (Cq_policy.Lru.make 2)))

let test_accesses_counter () =
  let set = lru2_set () in
  ignore (CS.access_seq set (B.first 2));
  Alcotest.(check int) "2 accesses" 2 (CS.accesses set)

(* Proposition 3.2: different policies induce caches with different trace
   semantics (given same cc0 and associativity). *)
let test_proposition_3_2 () =
  let trace p blocks = CS.run_from_reset (CS.create p) blocks in
  let blocks =
    List.map B.of_index [ 4; 0; 5; 0; 1; 2; 3; 0; 1 ]
  in
  let lru = trace (Cq_policy.Lru.make 4) blocks in
  let fifo = trace (Cq_policy.Fifo.make 4) blocks in
  Alcotest.(check bool) "LRU cache <> FIFO cache" false (lru = fifo);
  (* And equivalent policies induce equal traces. *)
  let lru' = trace (Cq_policy.Lru.make 4) blocks in
  Alcotest.(check (list cres)) "same policy, same trace" lru lru'

(* --- Oracle combinators -------------------------------------------------- *)

let test_counting () =
  let stats = O.fresh_stats () in
  let o = O.counting stats (O.of_policy (Cq_policy.Lru.make 2)) in
  ignore (o.O.query (B.first 2));
  ignore (o.O.query [ B.of_index 4 ]);
  Alcotest.(check int) "queries" 2 (Cq_util.Metrics.value stats.O.queries);
  Alcotest.(check int) "accesses" 3 (Cq_util.Metrics.value stats.O.block_accesses)

let test_memoized_consistent () =
  let stats = O.fresh_stats () in
  let raw = O.of_policy (Cq_policy.Newpol.make_new1 4) in
  let memo = O.memoized ~stats (O.of_policy (Cq_policy.Newpol.make_new1 4)) in
  let q = List.map B.of_index [ 5; 0; 6; 1; 5; 2; 7 ] in
  let r1 = memo.O.query q in
  let r2 = memo.O.query q in
  Alcotest.(check (list cres)) "matches raw" (raw.O.query q) r1;
  Alcotest.(check (list cres)) "memo stable" r1 r2;
  Alcotest.(check int) "one memo hit" 1 (Cq_util.Metrics.value stats.O.memo_hits)

let test_noisy_majority () =
  let prng = Cq_util.Prng.create 7L in
  let clean = O.of_policy (Cq_policy.Lru.make 2) in
  let noisy = O.noisy ~prng ~p:0.15 (O.of_policy (Cq_policy.Lru.make 2)) in
  let voted = O.majority ~reps:15 noisy in
  let q = List.map B.of_index [ 0; 4; 1; 4; 0 ] in
  Alcotest.(check (list cres)) "majority denoises" (clean.O.query q) (voted.O.query q)

let test_majority_validation () =
  Alcotest.check_raises "reps >= 1" (Invalid_argument "Oracle.majority: reps must be >= 1")
    (fun () -> ignore (O.majority ~reps:0 (O.of_policy (Cq_policy.Lru.make 2))));
  (* Even counts can tie, and any fixed tie-break silently biases the vote. *)
  Alcotest.check_raises "even reps rejected"
    (Invalid_argument "Oracle.majority: reps must be odd") (fun () ->
      ignore (O.majority ~reps:4 (O.of_policy (Cq_policy.Lru.make 2))))

(* --- qcheck --------------------------------------------------------------- *)

let arb_blocks =
  QCheck.make QCheck.Gen.(list_size (1 -- 16) (map B.of_index (0 -- 7)))

let prop_cache_agrees_with_policy_machine =
  (* The cache's hit/miss trace must match what the policy's Mealy machine
     predicts through the Figure 2 rules (cross-validation of Cache_set
     against an independent reconstruction). *)
  QCheck.Test.make ~name:"cache trace matches policy semantics" ~count:300
    arb_blocks (fun blocks ->
      let policy = Cq_policy.Newpol.make_new2 4 in
      let set = CS.create policy in
      let actual = CS.run_from_reset set blocks in
      (* Independent model: simulate with Policy.run bookkeeping. *)
      let (Cq_policy.Policy.Policy p) = policy in
      let cc = Array.of_list (B.first 4) in
      let state = ref p.init in
      let expected =
        List.map
          (fun b ->
            let line = ref None in
            Array.iteri (fun i x -> if B.equal x b && !line = None then line := Some i) cc;
            match !line with
            | Some i ->
                let s', _ = p.step !state (Cq_policy.Types.Line i) in
                state := s';
                CS.Hit
            | None ->
                let s', out = p.step !state Cq_policy.Types.Evct in
                state := s';
                (match out with
                | Some v -> cc.(v) <- b
                | None -> failwith "no victim");
                CS.Miss)
          blocks
      in
      actual = expected)

let prop_memoized_transparent =
  QCheck.Test.make ~name:"memoized oracle is transparent" ~count:200 arb_blocks
    (fun blocks ->
      let raw = O.of_policy (Cq_policy.Srrip.make Cq_policy.Srrip.Hit_priority 4) in
      let memo = O.memoized (O.of_policy (Cq_policy.Srrip.make Cq_policy.Srrip.Hit_priority 4)) in
      memo.O.query blocks = raw.O.query blocks)

let prop_fresh_blocks_miss =
  QCheck.Test.make ~name:"a never-seen block always misses" ~count:200
    arb_blocks (fun blocks ->
      let o = O.of_policy (Cq_policy.Lru.make 4) in
      let fresh = B.of_index 99 in
      match List.rev (o.O.query (blocks @ [ fresh ])) with
      | last :: _ -> last = CS.Miss
      | [] -> false)

(* PR-7 regression for the memo's miss table: each pending key is bound
   once ([Hashtbl.replace]); a batch with duplicate queries reaches the
   inner oracle deduplicated, and a repeat batch is answered entirely
   from the memo. *)
let test_memoized_batch_dedup () =
  let stats = O.fresh_stats () in
  let memo = O.memoized (O.counting stats (O.of_policy (Cq_policy.Lru.make 4))) in
  let q1 = List.map B.of_index [ 0; 4; 1 ] in
  let q2 = List.map B.of_index [ 2; 5 ] in
  (match memo.O.query_batch [ q1; q2; q1; q1; q2 ] with
  | [ a; b; a'; a''; b' ] ->
      Alcotest.(check bool) "duplicates answered identically" true
        (a = a' && a = a'' && b = b')
  | _ -> Alcotest.fail "expected five answers");
  Alcotest.(check int) "inner oracle saw each distinct query once" 2
    (Cq_util.Metrics.value stats.O.batched_queries);
  ignore (memo.O.query_batch [ q1; q2; q1 ]);
  Alcotest.(check int) "repeat batch fully memoized" 2
    (Cq_util.Metrics.value stats.O.batched_queries)

let suite =
  ( "cache",
    [
      Alcotest.test_case "block names" `Quick test_block_names;
      Alcotest.test_case "block first" `Quick test_block_first;
      Alcotest.test_case "hit/miss rules (Example 2.4)" `Quick test_hit_miss_rules;
      Alcotest.test_case "miss updates correct line" `Quick test_miss_updates_correct_line;
      Alcotest.test_case "reset" `Quick test_reset;
      Alcotest.test_case "initial content validation" `Quick test_initial_content_validation;
      Alcotest.test_case "access counter" `Quick test_accesses_counter;
      Alcotest.test_case "Proposition 3.2" `Quick test_proposition_3_2;
      Alcotest.test_case "counting oracle" `Quick test_counting;
      Alcotest.test_case "memo batch dedup" `Quick test_memoized_batch_dedup;
      Alcotest.test_case "memoized oracle" `Quick test_memoized_consistent;
      Alcotest.test_case "noisy + majority" `Quick test_noisy_majority;
      Alcotest.test_case "majority validation" `Quick test_majority_validation;
      QCheck_alcotest.to_alcotest prop_cache_agrees_with_policy_machine;
      QCheck_alcotest.to_alcotest prop_memoized_transparent;
      QCheck_alcotest.to_alcotest prop_fresh_blocks_miss;
    ] )
