(* Tests for cq_service: JSON round-trips, frame-level fuzzing (typed
   errors, never a crash), and an in-process daemon exercised end to end —
   concurrent learns identical to solo runs, budget exhaustion, fault
   injection with byte-identical resume, and graceful-stop failover onto a
   second server over the same state directory.

   Everything runs under the test cwd (_build/default/test): socket paths
   and state directories are relative, never /tmp. *)

module Json = Cq_service.Json
module Protocol = Cq_service.Protocol
module Server = Cq_service.Server
module Client = Cq_service.Client
module Learn = Cq_core.Learn

(* --- scratch directories (cwd-relative, unique per test) --- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir = Printf.sprintf "svc-scratch-%d-%d" (Unix.getpid ()) !n in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let with_server ?(workers = 2) ?(max_inflight = 8) ?(snapshot_every = 50)
    ?state_dir f =
  let dir = match state_dir with Some d -> d | None -> fresh_dir () in
  let socket = Filename.concat dir "d.sock" in
  let cfg =
    Server.config ~workers ~max_inflight ~snapshot_every ~progress_every:64
      ~state_dir:dir socket
  in
  let server = Server.create cfg in
  Server.start server;
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server socket dir)

let with_client socket f =
  let c = Client.connect_unix socket in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let str_field name doc =
  match Json.mem_str name doc with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "reply lacks %S" name)

(* Solo (daemon-less) learns use exactly the daemon's settings, so the
   digests must agree byte for byte. *)
let solo_digest =
  let memo = Hashtbl.create 4 in
  fun ~policy ~assoc ->
    let key = (policy, assoc) in
    match Hashtbl.find_opt memo key with
    | Some d -> d
    | None ->
        let p = Cq_policy.Zoo.make_exn ~name:policy ~assoc in
        let report = Learn.learn_simulated ~identify:false p in
        let d =
          Digest.to_hex
            (Digest.string (Marshal.to_string report.Learn.machine []))
        in
        Hashtbl.replace memo key d;
        d

(* --- JSON --- *)

let test_json_roundtrip () =
  let docs =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 1.5;
      Json.String "a \"quoted\" line\nwith\ttabs and \xe2\x8a\xa5";
      Json.List [ Json.Int 1; Json.Null; Json.String "" ];
      Json.Obj
        [
          ("empty", Json.Obj []);
          ("nested", Json.List [ Json.Obj [ ("k", Json.Bool false) ] ]);
        ];
    ]
  in
  List.iter
    (fun doc ->
      let s = Json.to_string doc in
      Alcotest.(check bool)
        (Printf.sprintf "round-trips %s" s)
        true
        (Json.parse s = doc))
    docs

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
      | exception Json.Parse_error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

(* --- framing over a socketpair --- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let header_of_len n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.to_string b

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payload = "{\"verb\":\"ping\",\"id\":1}" in
      Protocol.write_frame a payload;
      Protocol.write_frame a "";
      (match Protocol.read_frame b with
      | Protocol.Frame got ->
          Alcotest.(check string) "payload survives" payload got
      | _ -> Alcotest.fail "expected a frame");
      (match Protocol.read_frame b with
      | Protocol.Frame "" -> ()
      | _ -> Alcotest.fail "empty frame survives");
      Unix.close a;
      match Protocol.read_frame b with
      | Protocol.Eof -> ()
      | _ -> Alcotest.fail "clean close reads as Eof")

let test_frame_typed_errors () =
  (* Negative length prefix (0xFFFFFFFF) → Bad_magic. *)
  with_socketpair (fun a b ->
      write_all a "\xff\xff\xff\xff";
      match Protocol.read_frame b with
      | Protocol.Bad (Protocol.Bad_magic _) -> ()
      | _ -> Alcotest.fail "negative length must be Bad_magic");
  (* Declared size over the cap → Oversized, with the declared size. *)
  with_socketpair (fun a b ->
      write_all a (header_of_len (Protocol.max_frame + 1));
      match Protocol.read_frame b with
      | Protocol.Bad (Protocol.Oversized n) ->
          Alcotest.(check int) "declared size" (Protocol.max_frame + 1) n
      | _ -> Alcotest.fail "oversized must be Oversized");
  (* Short payload then close → Truncated. *)
  with_socketpair (fun a b ->
      write_all a (header_of_len 10 ^ "abc");
      Unix.close a;
      match Protocol.read_frame b with
      | Protocol.Bad (Protocol.Truncated { declared = 10; got = 3 }) -> ()
      | _ -> Alcotest.fail "short payload must be Truncated");
  (* Partial header then close → Truncated too, never an exception. *)
  with_socketpair (fun a b ->
      write_all a "\x00\x00";
      Unix.close a;
      match Protocol.read_frame b with
      | Protocol.Bad (Protocol.Truncated _) -> ()
      | _ -> Alcotest.fail "partial header must be Truncated")

(* A reader thread with a deadline: the framing contract is "typed result
   or Eof, promptly" — a hung read_frame must fail the test, not wedge the
   whole suite. *)
let read_frame_with_deadline ?(seconds = 10.0) fd =
  let result = ref None in
  let th = Thread.create (fun () -> result := Some (Protocol.read_frame fd)) () in
  let deadline = Cq_util.Clock.after seconds in
  let rec wait () =
    if !result <> None then ()
    else if Cq_util.Clock.expired deadline then ()
    else begin
      Thread.delay 0.005;
      wait ()
    end
  in
  wait ();
  match !result with
  | Some r ->
      Thread.join th;
      r
  | None -> Alcotest.fail "read_frame hung past the deadline"

let test_frame_byte_at_a_time () =
  (* A writer dribbling one byte per write (worst-case TCP segmentation):
     the reader must reassemble every frame intact, never misframe. *)
  with_socketpair (fun a b ->
      let payloads =
        [ "{\"verb\":\"ping\",\"id\":1}"; ""; String.make 300 'x' ]
      in
      let feeder =
        Thread.create
          (fun () ->
            List.iter
              (fun p ->
                let wire = header_of_len (String.length p) ^ p in
                String.iter
                  (fun ch ->
                    write_all a (String.make 1 ch);
                    Thread.yield ())
                  wire)
              payloads;
            Unix.close a)
          ()
      in
      List.iter
        (fun expected ->
          match read_frame_with_deadline b with
          | Protocol.Frame got ->
              Alcotest.(check string) "reassembled intact" expected got
          | _ -> Alcotest.fail "expected a frame")
        payloads;
      (match read_frame_with_deadline b with
      | Protocol.Eof -> ()
      | _ -> Alcotest.fail "clean close after dribble reads as Eof");
      Thread.join feeder)

let test_frame_torn_at_every_boundary () =
  (* Tear one frame at every possible byte boundary: each prefix must read
     back as a typed Truncated (or Eof for the empty prefix) — never an
     exception, never a hang. *)
  let payload = "{\"verb\":\"learn.start\",\"id\":7}" in
  let wire = header_of_len (String.length payload) ^ payload in
  for cut = 0 to String.length wire - 1 do
    with_socketpair (fun a b ->
        write_all a (String.sub wire 0 cut);
        Unix.close a;
        match read_frame_with_deadline b with
        | Protocol.Eof when cut = 0 -> ()
        | Protocol.Bad (Protocol.Truncated _) when cut > 0 -> ()
        | other ->
            Alcotest.fail
              (Printf.sprintf "cut at %d: unexpected %s" cut
                 (match other with
                 | Protocol.Frame _ -> "Frame"
                 | Protocol.Eof -> "Eof"
                 | Protocol.Bad e -> Protocol.frame_error_to_string e)))
  done

let test_frame_torn_write_fault_site () =
  (* The injected torn write must write a strict prefix: the peer sees a
     typed Truncated once the writer closes, and the writer itself gets
     the typed Injected exception to act on. *)
  let t = Cq_util.Faults.create () in
  Cq_util.Faults.arm t ~site:"frame.write.torn" (Cq_util.Faults.Nth 1);
  with_socketpair (fun a b ->
      Cq_util.Faults.with_ambient t (fun () ->
          match Protocol.write_frame a "0123456789abcdef" with
          | () -> Alcotest.fail "armed torn write must raise"
          | exception Cq_util.Faults.Injected { site = "frame.write.torn"; _ }
            ->
              ());
      Unix.close a;
      match read_frame_with_deadline b with
      | Protocol.Bad (Protocol.Truncated _) | Protocol.Eof -> ()
      | Protocol.Frame _ -> Alcotest.fail "torn write delivered a whole frame"
      | Protocol.Bad e ->
          Alcotest.fail ("unexpected " ^ Protocol.frame_error_to_string e))

(* --- the daemon under garbage input --- *)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let read_reply_kind fd =
  match Protocol.read_frame fd with
  | Protocol.Frame payload -> (
      let doc = Json.parse payload in
      match Json.member "error" doc with
      | Some err -> Option.value ~default:"?" (Json.mem_str "kind" err)
      | None -> "ok")
  | Protocol.Eof -> "eof"
  | Protocol.Bad _ -> Alcotest.fail "daemon sent a malformed frame"

let test_fuzzed_frames_never_crash () =
  with_server (fun _server socket _dir ->
      (* Garbage length prefix: typed bad_frame reply, connection dropped. *)
      let fd = raw_connect socket in
      write_all fd "\xde\xad\xbe\xef";
      Alcotest.(check string) "bad magic" "bad_frame" (read_reply_kind fd);
      Unix.close fd;
      (* Oversized declaration: same. *)
      let fd = raw_connect socket in
      write_all fd (header_of_len (Protocol.max_frame * 2));
      Alcotest.(check string) "oversized" "bad_frame" (read_reply_kind fd);
      Unix.close fd;
      (* Truncated frame: the daemon just drops the connection. *)
      let fd = raw_connect socket in
      write_all fd (header_of_len 64 ^ "only a few bytes");
      Unix.close fd;
      (* Well-framed garbage payloads keep the connection alive with typed
         errors: unparseable → bad_json, non-request JSON → bad_request,
         unknown verb → unknown_verb — all on the SAME connection. *)
      let fd = raw_connect socket in
      Protocol.write_frame fd "\x01\x02 not json";
      Alcotest.(check string) "garbage payload" "bad_json" (read_reply_kind fd);
      Protocol.write_frame fd "[1,2,3]";
      Alcotest.(check string) "non-object" "bad_request" (read_reply_kind fd);
      Protocol.write_frame fd "{\"verb\":\"no.such.verb\",\"id\":9}";
      Alcotest.(check string) "unknown verb" "unknown_verb" (read_reply_kind fd);
      Protocol.write_frame fd "{\"verb\":\"ping\",\"id\":10}";
      Alcotest.(check string) "still serving" "ok" (read_reply_kind fd);
      Unix.close fd;
      (* Deterministic pseudo-random fuzz: every frame gets either a typed
         error reply or a dropped connection — never a crash. *)
      let state = ref 123456789 in
      let rand n =
        state := (!state * 1103515245) + 12345;
        abs !state mod n
      in
      for _ = 1 to 40 do
        let fd = raw_connect socket in
        let len = rand 48 in
        let payload = String.init len (fun _ -> Char.chr (rand 256)) in
        (match rand 3 with
        | 0 ->
            (* Valid framing, junk body: a complete frame always gets a
               reply (typed error for junk), so read it. *)
            Protocol.write_frame fd payload;
            (match Protocol.read_frame fd with
            | Protocol.Frame _ | Protocol.Eof | Protocol.Bad _ -> ()
            | exception Unix.Unix_error _ -> ())
        | 1 ->
            (* Incomplete frame: the daemon is rightly still waiting for
               the rest, so expect no reply — just hang up on it. *)
            write_all fd
              (String.sub (header_of_len 40 ^ payload) 0 (4 + (len mod 5)))
        | _ -> write_all fd payload (* raw junk, junk header — hang up *));
        Unix.close fd
      done;
      (* The daemon survived all of it. *)
      with_client socket (fun c -> ignore (Client.ping c)))

(* --- sessions, queries, learning --- *)

let test_membership_queries () =
  with_server (fun _server socket _dir ->
      with_client socket (fun c ->
          let sid = Client.create_sim c ~policy:"LRU" ~assoc:2 () in
          let word = [ 0; 2; 1; 2; 0 ] in
          let got = Client.query_sim c sid word in
          let expected =
            let p = Cq_policy.Zoo.make_exn ~name:"LRU" ~assoc:2 in
            let polca =
              Cq_core.Polca.create ~check_hits:false
                (Cq_cache.Oracle.of_policy p)
            in
            List.map Cq_policy.Types.output_label (Cq_core.Polca.run polca word)
          in
          Alcotest.(check (list string)) "outputs match ground truth" expected got;
          (* Out-of-alphabet symbols are a typed bad_request. *)
          (match Client.query_sim c sid [ 0; 7 ] with
          | _ -> Alcotest.fail "out-of-alphabet word must be rejected"
          | exception Client.Error { kind = "bad_request"; _ } -> ());
          (* Unknown session is typed too. *)
          match Client.query_sim c (sid + 999) [ 0 ] with
          | _ -> Alcotest.fail "unknown session must be rejected"
          | exception Client.Error { kind = "unknown_session"; _ } -> ()))

let test_concurrent_learns_match_solo () =
  with_server (fun _server socket _dir ->
      with_client socket (fun c1 ->
          with_client socket (fun c2 ->
              let s1 = Client.create_sim c1 ~policy:"LRU" ~assoc:4 () in
              let s2 = Client.create_sim c2 ~policy:"FIFO" ~assoc:4 () in
              (* Both queued before either is awaited: the two learns share
                 the hardware gate concurrently. *)
              Client.learn_start c1 s1;
              Client.learn_start c2 s2;
              let r1 = Client.learn_wait c1 ~timeout_s:120.0 s1 in
              let r2 = Client.learn_wait c2 ~timeout_s:120.0 s2 in
              Alcotest.(check string) "lru done" "done" (str_field "state" r1);
              Alcotest.(check string) "fifo done" "done" (str_field "state" r2);
              let d1 = str_field "digest" r1 and d2 = str_field "digest" r2 in
              Alcotest.(check string)
                "lru digest identical to solo"
                (solo_digest ~policy:"LRU" ~assoc:4)
                d1;
              Alcotest.(check string)
                "fifo digest identical to solo"
                (solo_digest ~policy:"FIFO" ~assoc:4)
                d2;
              Alcotest.(check bool) "distinct policies differ" true (d1 <> d2);
              (* session.result serves the digest (and DOT on demand). *)
              let res = Client.result c1 ~dot:true s1 in
              Alcotest.(check string) "result digest" d1 (str_field "digest" res);
              Alcotest.(check bool)
                "dot present" true
                (match Json.mem_str "dot" res with
                | Some dot ->
                    String.length dot > 0
                    && String.sub dot 0 7 = "digraph"
                | None -> false))))

let test_budget_exhaustion () =
  with_server (fun _server socket _dir ->
      with_client socket (fun c ->
          (* Budget 0: both learning and querying answer budget_exhausted. *)
          let broke = Client.create_sim c ~policy:"LRU" ~assoc:4 ~query_budget:0 () in
          (match Client.learn_start c broke with
          | _ -> Alcotest.fail "budget-0 learn must be refused"
          | exception Client.Error { kind = "budget_exhausted"; _ } -> ());
          (match Client.query_sim c broke [ 0 ] with
          | _ -> Alcotest.fail "budget-0 query must be refused"
          | exception Client.Error { kind = "budget_exhausted"; _ } -> ());
          (* A small budget trips mid-learn and surfaces as the typed
             Budget_exhausted failure, not a hang or a crash. *)
          let tight = Client.create_sim c ~policy:"LRU" ~assoc:4 ~query_budget:50 () in
          Client.learn_start c tight;
          let st = Client.learn_wait c ~timeout_s:60.0 tight in
          Alcotest.(check string) "failed" "failed" (str_field "state" st);
          Alcotest.(check string)
            "typed failure" "budget_exhausted" (str_field "failure" st)))

let test_kill_worker_and_resume () =
  with_server ~snapshot_every:25 (fun _server socket _dir ->
      with_client socket (fun c ->
          let sid =
            Client.create_sim c ~policy:"LRU" ~assoc:4 ~name:"killme" ()
          in
          (* Fault injection: the worker dies after 120 hardware queries —
             long after the first snapshot at 25. *)
          Client.learn_start c ~kill_after_queries:120 sid;
          let st = Client.learn_wait c ~timeout_s:60.0 sid in
          Alcotest.(check string) "failed" "failed" (str_field "state" st);
          Alcotest.(check string)
            "worker killed" "worker_killed" (str_field "failure" st);
          let status = Client.status c sid in
          Alcotest.(check bool)
            "snapshot written" true
            (Json.mem_bool "snapshot_exists" status = Some true);
          (* Resume on another worker: the finished automaton must be
             byte-identical to an uninterrupted solo learn. *)
          Client.learn_start c ~resume:true sid;
          let st = Client.learn_wait c ~timeout_s:120.0 sid in
          Alcotest.(check string) "resumed to done" "done" (str_field "state" st);
          Alcotest.(check string)
            "resume digest byte-identical to solo"
            (solo_digest ~policy:"LRU" ~assoc:4)
            (str_field "digest" st)))

let test_graceful_stop_failover () =
  let dir = fresh_dir () in
  (* First daemon: start a learn, then stop mid-flight.  Graceful stop
     parks the learn at its next probe with a final snapshot. *)
  with_server ~state_dir:dir ~snapshot_every:20 (fun server socket _dir ->
      with_client socket (fun c ->
          let sid =
            Client.create_sim c ~policy:"PLRU" ~assoc:4 ~name:"failover" ()
          in
          Client.learn_start c sid;
          (* Give the worker a moment to get into the learn proper. *)
          let deadline = Cq_util.Clock.after 10.0 in
          let rec spin () =
            if Cq_util.Clock.expired deadline then ()
            else
              let st = Client.status c sid in
              match Json.mem_str "state" st with
              | Some "running"
                when (match Json.mem_int "queries" st with
                     | Some q -> q > 0
                     | None -> false) ->
                  ()
              | Some ("done" | "failed") -> ()
              | _ ->
                  Thread.delay 0.01;
                  spin ()
          in
          spin ();
          Server.stop server));
  (* Second daemon over the same state directory: a same-named session
     resumes from the parked snapshot and completes identically to an
     uninterrupted run. *)
  with_server ~state_dir:dir (fun _server socket _dir ->
      with_client socket (fun c ->
          let sid =
            Client.create_sim c ~policy:"PLRU" ~assoc:4 ~name:"failover" ()
          in
          Client.learn_start c ~resume:true sid;
          let st = Client.learn_wait c ~timeout_s:120.0 sid in
          Alcotest.(check string) "done after failover" "done" (str_field "state" st);
          Alcotest.(check string)
            "failover digest byte-identical to solo"
            (solo_digest ~policy:"PLRU" ~assoc:4)
            (str_field "digest" st)))

let test_busy_and_cancel () =
  with_server ~workers:1 ~max_inflight:1 (fun _server socket _dir ->
      with_client socket (fun c ->
          let a = Client.create_sim c ~policy:"LRU" ~assoc:4 () in
          let b = Client.create_sim c ~policy:"FIFO" ~assoc:4 () in
          Client.learn_start c a;
          (* One learn in flight and max_inflight = 1: more work is refused
             with the typed busy reply (backpressure, not queue growth). *)
          (match Client.learn_start c b with
          | _ -> Alcotest.fail "second learn must be refused"
          | exception Client.Error { kind = "busy"; _ } -> ());
          (match Client.learn_start c a with
          | _ -> Alcotest.fail "re-learning a busy session must be refused"
          | exception Client.Error { kind = "busy"; _ } -> ());
          Client.learn_cancel c a;
          let st = Client.learn_wait c ~timeout_s:60.0 a in
          (* Cancellation can race completion of a fast learn; either way
             the session reaches a terminal state and frees the slot. *)
          (match (str_field "state" st, Json.mem_str "failure" st) with
          | "failed", Some "cancelled" | "done", None -> ()
          | state, failure ->
              Alcotest.fail
                (Printf.sprintf "unexpected terminal state %s/%s" state
                   (Option.value ~default:"-" failure)));
          Client.learn_start c b;
          let st = Client.learn_wait c ~timeout_s:120.0 b in
          Alcotest.(check string) "slot freed" "done" (str_field "state" st)))

let test_events_stream () =
  with_server (fun _server socket _dir ->
      with_client socket (fun c ->
          let sid = Client.create_sim c ~policy:"LRU" ~assoc:2 () in
          Client.learn_start c sid;
          let seen = ref [] in
          let _reply =
            Client.stream c
              ~params:(Json.Obj [ ("session", Json.Int sid) ])
              "events"
              (fun ev ->
                match Json.mem_str "type" ev with
                | Some ty -> seen := ty :: !seen
                | None -> ())
          in
          let seen = List.rev !seen in
          Alcotest.(check bool)
            "saw the lifecycle" true
            (List.mem "queued" seen && List.mem "started" seen
            && List.mem "done" seen)))

let test_hw_session_mbl () =
  with_server (fun _server socket _dir ->
      with_client socket (fun c ->
          let sid =
            Client.create_hw c ~cpu:"skylake" ~level:"L1" ~set:0 ()
          in
          (* '@ A A?' — after a reset, access A and probe it: a hit. *)
          let reply = Client.query_mbl c sid "@ A A?" in
          match Json.mem_list "results" reply with
          | Some (_ :: _ as results) ->
              List.iter
                (fun r ->
                  match Json.member "outcomes" r with
                  | Some (Json.List outcomes) ->
                      List.iter
                        (fun o ->
                          Alcotest.(check string)
                            "probe hits" "Hit"
                            (Option.value ~default:"?" (Json.to_str o)))
                        outcomes
                  | _ -> Alcotest.fail "result lacks outcomes")
                results
          | _ -> Alcotest.fail "hw query returned no results"))

(* --- signal-driven shutdown of the real binaries --- *)

let wait_for path =
  let deadline = Cq_util.Clock.after 15.0 in
  let rec go () =
    if Sys.file_exists path then true
    else if Cq_util.Clock.expired deadline then false
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let test_sigterm_flushes_observability () =
  (* The cachequery REPL with --trace/--metrics, killed by SIGTERM, must
     still write both artefacts (the PR-7 shutdown fix) and exit 143. *)
  let exe = "../bin/cachequery_cli.exe" in
  let trace_f = "sig-flush-trace.json" and metrics_f = "sig-flush-metrics.json" in
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ trace_f; metrics_f ];
  let stdin_r, stdin_w = Unix.pipe () in
  let pid =
    Unix.create_process exe
      [| exe; "--trace"; trace_f; "--metrics"; metrics_f |]
      stdin_r Unix.stdout Unix.stderr
  in
  Unix.close stdin_r;
  Thread.delay 0.4;
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  Unix.close stdin_w;
  (match status with
  | Unix.WEXITED 143 -> ()
  | Unix.WEXITED n -> Alcotest.fail (Printf.sprintf "exit %d, wanted 143" n)
  | _ -> Alcotest.fail "killed uncleanly — the handler did not run");
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " written") true (Sys.file_exists f);
      let ic = open_in_bin f in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      match Json.parse body with
      | _ -> ()
      | exception Json.Parse_error msg ->
          Alcotest.fail (Printf.sprintf "%s is not valid JSON: %s" f msg))
    [ trace_f; metrics_f ]

let test_daemon_binary_graceful_sigterm () =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "daemon.sock" in
  let metrics_f = Filename.concat dir "metrics.json" in
  let exe = "../bin/cachequeryd_cli.exe" in
  let pid =
    Unix.create_process exe
      [|
        exe; "--socket"; socket; "--state-dir"; dir; "--workers"; "1";
        "--metrics"; metrics_f;
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  Alcotest.(check bool) "daemon came up" true (wait_for socket);
  with_client socket (fun c ->
      ignore (Client.ping c);
      let sid = Client.create_sim c ~policy:"LRU" ~assoc:2 () in
      Client.learn_start c sid;
      let st = Client.learn_wait c ~timeout_s:60.0 sid in
      Alcotest.(check string) "learned over the wire" "done" (str_field "state" st));
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.fail (Printf.sprintf "exit %d, wanted 0" n)
  | _ -> Alcotest.fail "daemon killed uncleanly");
  Alcotest.(check bool) "metrics flushed" true (Sys.file_exists metrics_f)

let suite =
  ( "service",
    [
      Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
      Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
      Alcotest.test_case "frame typed errors" `Quick test_frame_typed_errors;
      Alcotest.test_case "frame byte-at-a-time reassembly" `Quick
        test_frame_byte_at_a_time;
      Alcotest.test_case "frame torn at every boundary" `Quick
        test_frame_torn_at_every_boundary;
      Alcotest.test_case "frame torn-write fault site" `Quick
        test_frame_torn_write_fault_site;
      Alcotest.test_case "fuzzed frames never crash the daemon" `Quick
        test_fuzzed_frames_never_crash;
      Alcotest.test_case "membership queries" `Quick test_membership_queries;
      Alcotest.test_case "concurrent learns match solo" `Slow
        test_concurrent_learns_match_solo;
      Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
      Alcotest.test_case "kill worker, resume byte-identical" `Slow
        test_kill_worker_and_resume;
      Alcotest.test_case "graceful stop + failover" `Slow
        test_graceful_stop_failover;
      Alcotest.test_case "busy backpressure and cancel" `Quick
        test_busy_and_cancel;
      Alcotest.test_case "events stream" `Quick test_events_stream;
      Alcotest.test_case "hw session MBL query" `Quick test_hw_session_mbl;
      Alcotest.test_case "SIGTERM flushes trace+metrics" `Quick
        test_sigterm_flushes_observability;
      Alcotest.test_case "daemon graceful SIGTERM" `Quick
        test_daemon_binary_graceful_sigterm;
    ] )
