(* Tests for cq_util: PRNG determinism and distributions, streaming
   statistics, thresholding, duration formatting. *)

let test_prng_deterministic () =
  let a = Cq_util.Prng.create 42L and b = Cq_util.Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same seed, same stream" (Cq_util.Prng.next_int64 a)
      (Cq_util.Prng.next_int64 b)
  done

let test_prng_different_seeds () =
  let a = Cq_util.Prng.create 1L and b = Cq_util.Prng.create 2L in
  Alcotest.(check bool)
    "different seeds diverge" false
    (List.init 10 (fun _ -> Cq_util.Prng.next_int64 a)
    = List.init 10 (fun _ -> Cq_util.Prng.next_int64 b))

let test_prng_int_bound_error () =
  let p = Cq_util.Prng.of_int 7 in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Cq_util.Prng.int p 0))

let test_prng_split_independent () =
  let a = Cq_util.Prng.create 42L in
  let b = Cq_util.Prng.split a in
  let xs = List.init 5 (fun _ -> Cq_util.Prng.next_int64 a) in
  let ys = List.init 5 (fun _ -> Cq_util.Prng.next_int64 b) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_prng_pick () =
  let p = Cq_util.Prng.of_int 3 in
  for _ = 1 to 50 do
    let x = Cq_util.Prng.pick p [ 1; 2; 3 ] in
    Alcotest.(check bool) "pick in list" true (List.mem x [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty list" (Invalid_argument "Prng.pick: empty list")
    (fun () -> ignore (Cq_util.Prng.pick p []))

let test_stats_basic () =
  let s = Cq_util.Stats.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 (Cq_util.Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Cq_util.Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Cq_util.Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Cq_util.Stats.max_value s);
  Alcotest.(check (float 1e-9))
    "variance (Bessel)"
    (5.0 /. 3.0)
    (Cq_util.Stats.variance s)

let test_stats_median_percentile () =
  Alcotest.(check (float 1e-9)) "odd median" 3.0 (Cq_util.Stats.median [ 5.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "even median" 2.5 (Cq_util.Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (Cq_util.Stats.percentile [ 1.0; 2.0; 3.0 ] 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 3.0 (Cq_util.Stats.percentile [ 1.0; 2.0; 3.0 ] 100.0);
  Alcotest.(check (float 1e-9)) "p50 = median" 2.0 (Cq_util.Stats.percentile [ 1.0; 2.0; 3.0 ] 50.0)

let test_otsu_bimodal () =
  let lows = List.init 30 (fun i -> 4 + (i mod 3)) in
  let highs = List.init 30 (fun i -> 40 + (i mod 5)) in
  match Cq_util.Stats.otsu_threshold (lows @ highs) with
  | None -> Alcotest.fail "expected a threshold"
  | Some thr ->
      Alcotest.(check bool) "separates populations" true (thr >= 6 && thr < 40)

let test_otsu_degenerate () =
  Alcotest.(check (option int)) "constant sample" None (Cq_util.Stats.otsu_threshold [ 5; 5; 5 ]);
  Alcotest.(check (option int)) "empty" None (Cq_util.Stats.otsu_threshold [])

let test_duration_format () =
  Alcotest.(check string) "seconds" "0 h 0 m 1.50 s" (Cq_util.Clock.to_string 1.5);
  Alcotest.(check string) "hours" "2 h 3 m 4.00 s" (Cq_util.Clock.to_string ((2.0 *. 3600.0) +. (3.0 *. 60.0) +. 4.0))

let test_deep_pack_distributes () =
  (* The motivating regression: Evct^k-style lists share 10+-element
     prefixes; the packed keys must hash differently. *)
  let mk k = List.init 20 (fun i -> if i < 19 then 0 else k) in
  let h1, _ = Cq_util.Deep.pack (mk 1) in
  let h2, _ = Cq_util.Deep.pack (mk 2) in
  Alcotest.(check bool) "deep hash sees the tail" false (h1 = h2);
  Alcotest.(check bool)
    "default hash does not (motivation)" true
    (Hashtbl.hash (mk 1) = Hashtbl.hash (mk 2));
  Alcotest.(check (list int)) "unpack roundtrip" (mk 1) (Cq_util.Deep.unpack (Cq_util.Deep.pack (mk 1)))

(* qcheck properties *)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let p = Cq_util.Prng.of_int seed in
      let x = Cq_util.Prng.int p bound in
      x >= 0 && x < bound)

let prop_float_unit_interval =
  QCheck.Test.make ~name:"Prng.float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let p = Cq_util.Prng.of_int seed in
      let x = Cq_util.Prng.float p in
      x >= 0.0 && x < 1.0)

let prop_median_bounded =
  QCheck.Test.make ~name:"median between min and max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let m = Cq_util.Stats.median xs in
      let lo = List.fold_left min infinity xs in
      let hi = List.fold_left max neg_infinity xs in
      m >= lo && m <= hi)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Cq_util.Prng.shuffle_in_place (Cq_util.Prng.of_int seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"Welford mean matches naive mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Cq_util.Stats.of_list xs in
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Cq_util.Stats.mean s -. naive) < 1e-6)

(* PR-7 regressions: deadlines ride the monotonic clock (a mocked NTP
   step on the wall clock must not fire or starve them), and the duration
   printer carries centisecond rounding into minutes/hours. *)

let test_duration_carry () =
  Alcotest.(check string) "3599.999 carries to the hour" "1 h 0 m 0.00 s"
    (Cq_util.Clock.to_string 3599.999);
  Alcotest.(check string) "59.999 carries to the minute" "0 h 1 m 0.00 s"
    (Cq_util.Clock.to_string 59.999);
  Alcotest.(check string) "59.994 rounds down" "0 h 0 m 59.99 s"
    (Cq_util.Clock.to_string 59.994);
  Alcotest.(check string) "exact hour" "1 h 0 m 0.00 s"
    (Cq_util.Clock.to_string 3600.0);
  Alcotest.(check string) "negative spans" "-" (Cq_util.Clock.to_string (-1.0))

let test_deadline_ignores_wall_steps () =
  let d = Cq_util.Clock.after 5.0 in
  Fun.protect
    ~finally:(fun () -> Cq_util.Clock.set_wall_skew_for_tests 0.0)
    (fun () ->
      Cq_util.Clock.set_wall_skew_for_tests 3600.0;
      Alcotest.(check bool) "forward NTP step does not expire it" false
        (Cq_util.Clock.expired d);
      (match Cq_util.Clock.remaining d with
      | None -> Alcotest.fail "bounded deadline must report remaining time"
      | Some r ->
          Alcotest.(check bool) "remaining unaffected by the step" true
            (r > 4.0 && r <= 5.0));
      Cq_util.Clock.set_wall_skew_for_tests (-3600.0);
      Alcotest.(check bool) "backward step does not expire it either" false
        (Cq_util.Clock.expired d))

let test_mono_advances () =
  let t0 = Cq_util.Clock.mono () in
  let d = Cq_util.Clock.after 0.0 in
  while Cq_util.Clock.mono () -. t0 < 0.01 do
    ignore (Sys.opaque_identity 0)
  done;
  Alcotest.(check bool) "mono advances" true (Cq_util.Clock.mono () > t0);
  Alcotest.(check bool) "zero-length deadline expires" true
    (Cq_util.Clock.expired d)

let suite =
  ( "util",
    [
      Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
      Alcotest.test_case "prng seeds differ" `Quick test_prng_different_seeds;
      Alcotest.test_case "prng bound error" `Quick test_prng_int_bound_error;
      Alcotest.test_case "prng split" `Quick test_prng_split_independent;
      Alcotest.test_case "prng pick" `Quick test_prng_pick;
      Alcotest.test_case "stats basic" `Quick test_stats_basic;
      Alcotest.test_case "stats median/percentile" `Quick test_stats_median_percentile;
      Alcotest.test_case "otsu bimodal" `Quick test_otsu_bimodal;
      Alcotest.test_case "otsu degenerate" `Quick test_otsu_degenerate;
      Alcotest.test_case "duration format" `Quick test_duration_format;
      Alcotest.test_case "duration carry" `Quick test_duration_carry;
      Alcotest.test_case "deadline ignores wall steps" `Quick
        test_deadline_ignores_wall_steps;
      Alcotest.test_case "mono advances" `Quick test_mono_advances;
      Alcotest.test_case "deep hash packing" `Quick test_deep_pack_distributes;
      QCheck_alcotest.to_alcotest prop_int_in_bounds;
      QCheck_alcotest.to_alcotest prop_float_unit_interval;
      QCheck_alcotest.to_alcotest prop_median_bounded;
      QCheck_alcotest.to_alcotest prop_shuffle_permutation;
      QCheck_alcotest.to_alcotest prop_welford_matches_naive;
    ] )
