(* Tests for durable learning sessions (Session + the Learn/Hardware resume
   plumbing): snapshot round-trips, rejection of damaged files, and the
   headline property — a run killed at an arbitrary query count and resumed
   from its snapshot produces the *identical* automaton a crash-free run
   would have produced. *)

module Session = Cq_core.Session
module Learn = Cq_core.Learn
module Moracle = Cq_learner.Moracle

let temp_snap () = Filename.temp_file "cq_test_session" ".snap"

let with_temp f =
  let path = temp_snap () in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* Byte-identical structure, not just trace equivalence. *)
let same_machine a b =
  Cq_automata.Mealy.equivalent a b
  && Marshal.to_string a [] = Marshal.to_string b []

(* --- Round-trip ---------------------------------------------------------- *)

let sample_calibration =
  {
    Cq_cachequery.Backend.cal_threshold = 140;
    cal_margin = 12;
    cal_miss_ceiling = 400;
    cal_ewma_hit = 80.5;
    cal_ewma_miss = 210.25;
  }

let sample_snapshot () =
  let policy = Cq_policy.Zoo.make_exn ~name:"LRU" ~assoc:4 in
  let oracle = Moracle.of_mealy (Cq_policy.Policy.to_mealy policy) in
  let cached, handle = Moracle.cached_session oracle in
  ignore (cached.Moracle.query [ 0; 1; 2 ]);
  ignore (cached.Moracle.query [ 3; 0; 1; 0 ]);
  let table =
    {
      Cq_learner.Lstar.suffixes = [ [ 0 ]; [ 1; 0 ] ];
      reps = [| []; [ 0 ] |];
      rows = [];
    }
  in
  {
    Session.meta =
      Session.make_meta ~label:"roundtrip" ~seed:42
        ~calibration:sample_calibration ~queries:17 ();
    knowledge = handle.Moracle.export ();
    table = Some table;
  }

let test_roundtrip () =
  with_temp (fun path ->
      let snap = sample_snapshot () in
      Session.save ~path snap;
      let snap' = Session.load ~path in
      let m = snap.Session.meta and m' = snap'.Session.meta in
      Alcotest.(check int) "version" Session.version m'.Session.version;
      Alcotest.(check string) "label" m.Session.label m'.Session.label;
      Alcotest.(check int) "queries" m.Session.queries m'.Session.queries;
      Alcotest.(check (option int)) "seed" m.Session.seed m'.Session.seed;
      (match m'.Session.calibration with
      | None -> Alcotest.fail "calibration lost in the round-trip"
      | Some c ->
          Alcotest.(check int) "threshold"
            sample_calibration.Cq_cachequery.Backend.cal_threshold
            c.Cq_cachequery.Backend.cal_threshold;
          Alcotest.(check (float 0.0)) "ewma hit"
            sample_calibration.Cq_cachequery.Backend.cal_ewma_hit
            c.Cq_cachequery.Backend.cal_ewma_hit);
      Alcotest.(check int) "knowledge size"
        (Moracle.knowledge_size snap.Session.knowledge)
        (Moracle.knowledge_size snap'.Session.knowledge);
      match snap'.Session.table with
      | None -> Alcotest.fail "table lost in the round-trip"
      | Some t ->
          Alcotest.(check (list (list int)))
            "suffixes" [ [ 0 ]; [ 1; 0 ] ]
            t.Cq_learner.Lstar.suffixes)

let test_load_opt_missing () =
  Alcotest.(check bool)
    "load_opt on a missing path" true
    (Session.load_opt ~path:"/nonexistent/cq_no_such_snapshot" = None)

(* --- Damage rejection ----------------------------------------------------- *)

let expect_corrupt label path =
  match Session.load ~path with
  | _ -> Alcotest.fail (label ^ ": damaged snapshot was accepted")
  | exception Session.Corrupt _ -> ()

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let test_rejects_damage () =
  with_temp (fun path ->
      Session.save ~path (sample_snapshot ());
      let good = read_file path in
      (* Missing file. *)
      expect_corrupt "missing" "/nonexistent/cq_no_such_snapshot";
      (* Empty and truncated files (a non-atomic writer's torn output). *)
      write_file path "";
      expect_corrupt "empty" path;
      write_file path (String.sub good 0 (String.length good / 2));
      expect_corrupt "truncated" path;
      write_file path (String.sub good 0 10);
      expect_corrupt "shorter than the header" path;
      (* Wrong magic: some other file format. *)
      let other = Bytes.of_string good in
      Bytes.set other 0 'X';
      write_file path (Bytes.to_string other);
      expect_corrupt "wrong magic" path;
      (* Version mismatch: a snapshot from a future format. *)
      let vers = Bytes.of_string good in
      Bytes.set vers 6 (Char.chr (Session.version + 1));
      write_file path (Bytes.to_string vers);
      expect_corrupt "version mismatch" path;
      (* Payload bit-flip: the digest must catch silent corruption. *)
      let flipped = Bytes.of_string good in
      let i = String.length good - 3 in
      Bytes.set flipped i (Char.chr (Char.code good.[i] lxor 0x40));
      write_file path (Bytes.to_string flipped);
      expect_corrupt "payload bit-flip" path;
      (* And the pristine bytes still load. *)
      write_file path good;
      ignore (Session.load ~path : Cq_policy.Types.output Session.snapshot))

(* --- Crash / resume determinism (simulated oracle) ------------------------ *)

(* Kill a software-simulated learning run with an unclassified exception
   raised from the fault-injection probe at a randomized query count; the
   failure handler must leave a final snapshot behind, and resuming from it
   must replay to the identical automaton. *)
let test_probe_crash_resume_simulated () =
  let policy = Cq_policy.Zoo.make_exn ~name:"PLRU" ~assoc:4 in
  let baseline = Learn.learn_simulated ~identify:false policy in
  let total = baseline.Learn.member_queries in
  let rng = Random.State.make [| 0xC0FFEE |] in
  List.iter
    (fun trial ->
      with_temp (fun path ->
          let kill_at = 1 + Random.State.int rng (max 1 (total * 3 / 4)) in
          let crashed =
            match
              Learn.learn_simulated ~identify:false
                ~snapshot:(Learn.snapshot_policy ~every_queries:25 path)
                ~probe:(fun q -> if q >= kill_at then raise Exit)
                policy
            with
            | _ -> false
            | exception Exit -> true
          in
          Alcotest.(check bool)
            (Printf.sprintf "trial %d: probe killed the run (at %d/%d)" trial
               kill_at total)
            true crashed;
          let resumed =
            Learn.learn_simulated ~identify:false ~resume:path policy
          in
          Alcotest.(check int)
            (Printf.sprintf "trial %d: same state count" trial)
            baseline.Learn.states resumed.Learn.states;
          Alcotest.(check bool)
            (Printf.sprintf "trial %d: identical automaton" trial)
            true
            (same_machine baseline.Learn.machine resumed.Learn.machine)))
    [ 1; 2 ]

(* --- Crash / resume determinism (simulated hardware) ---------------------- *)

(* The ISSUE's headline scenario: learning Haswell L1 through the full
   CacheQuery stack, killed mid-run at randomized query counts by the query
   budget (a clean Partial with a final snapshot), then resumed — the
   resumed run must restore the PRNG seed and the calibration record from
   the snapshot and finish with the identical automaton. *)
let test_kill_resume_hardware () =
  let model = Cq_hwsim.Cpu_model.haswell in
  let fresh () =
    Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise model
  in
  let base_run =
    Cq_core.Hardware.learn_set ~check_hits:false (fresh ())
      Cq_hwsim.Cpu_model.L1
  in
  let base =
    match base_run.Cq_core.Hardware.outcome with
    | Cq_core.Hardware.Learned { report; _ } -> report
    | Cq_core.Hardware.Partial { failure; _ } ->
        Alcotest.fail (Fmt.str "baseline partial: %a" Learn.pp_failure failure)
    | Cq_core.Hardware.Failed { reason; _ } ->
        Alcotest.fail ("baseline failed: " ^ reason)
  in
  let total = base.Learn.member_queries in
  let rng = Random.State.make [| 0xDECAF |] in
  List.iter
    (fun trial ->
      with_temp (fun path ->
          let budget = 1 + Random.State.int rng (max 1 (total * 3 / 4)) in
          let crash_run =
            Cq_core.Hardware.learn_set ~check_hits:false
              ~snapshot:(Learn.snapshot_policy ~every_queries:50 path)
              ~query_budget:budget (fresh ()) Cq_hwsim.Cpu_model.L1
          in
          let resume_from =
            match crash_run.Cq_core.Hardware.outcome with
            | Cq_core.Hardware.Partial
                {
                  failure = Learn.Budget_exhausted _;
                  snapshot = Some s;
                  _;
                } ->
                s
            | Cq_core.Hardware.Partial { failure; _ } ->
                Alcotest.fail
                  (Fmt.str "trial %d: unexpected failure %a" trial
                     Learn.pp_failure failure)
            | _ ->
                Alcotest.fail
                  (Printf.sprintf
                     "trial %d: budget %d (of %d) did not stop the run" trial
                     budget total)
          in
          let resume_run =
            Cq_core.Hardware.learn_set ~check_hits:false ~resume:resume_from
              (fresh ()) Cq_hwsim.Cpu_model.L1
          in
          match resume_run.Cq_core.Hardware.outcome with
          | Cq_core.Hardware.Learned { report; _ } ->
              Alcotest.(check int)
                (Printf.sprintf "trial %d: same state count" trial)
                base.Learn.states report.Learn.states;
              Alcotest.(check bool)
                (Printf.sprintf "trial %d: identical automaton" trial)
                true
                (same_machine base.Learn.machine report.Learn.machine)
          | Cq_core.Hardware.Partial { failure; _ } ->
              Alcotest.fail
                (Fmt.str "trial %d: resume partial: %a" trial Learn.pp_failure
                   failure)
          | Cq_core.Hardware.Failed { reason; _ } ->
              Alcotest.fail
                (Printf.sprintf "trial %d: resume failed: %s" trial reason)))
    [ 1; 2 ]

(* --- Failure taxonomy ------------------------------------------------------ *)

let test_exit_codes () =
  let d =
    {
      Cq_learner.Lstar.reason = "r";
      states = 1;
      queries = 2;
      elapsed = 0.1;
    }
  in
  List.iter
    (fun (failure, code) ->
      Alcotest.(check int) "exit code" code (Learn.failure_exit_code failure))
    [
      (Learn.Transient "t", 10);
      (Learn.Diverged d, 11);
      (Learn.Budget_exhausted "b", 12);
      (Learn.Worker_lost "w", 13);
    ]

(* Deadline supervision converts a runaway run into Budget_exhausted with a
   snapshot, instead of an open-ended hang. *)
let test_deadline_trips () =
  with_temp (fun path ->
      let policy = Cq_policy.Zoo.make_exn ~name:"PLRU" ~assoc:8 in
      match
        Learn.run_simulated ~identify:false
          ~snapshot:(Learn.snapshot_policy ~every_queries:10 path)
          ~deadline:(Cq_util.Clock.after 0.0) policy
      with
      | Learn.Complete _ -> Alcotest.fail "a 0-second deadline never tripped"
      | Learn.Partial p -> (
          (match p.Learn.failure with
          | Learn.Budget_exhausted _ -> ()
          | f ->
              Alcotest.fail
                (Fmt.str "expected Budget_exhausted, got %a" Learn.pp_failure f));
          match p.Learn.snapshot with
          | Some s -> Alcotest.(check bool) "snapshot exists" true (Sys.file_exists s)
          | None -> Alcotest.fail "no final snapshot on the way down"))

let suite =
  ( "session",
    [
      Alcotest.test_case "snapshot round-trip" `Quick test_roundtrip;
      Alcotest.test_case "load_opt on missing file" `Quick test_load_opt_missing;
      Alcotest.test_case "rejects damaged snapshots" `Quick test_rejects_damage;
      Alcotest.test_case "probe crash + resume (simulated)" `Quick
        test_probe_crash_resume_simulated;
      Alcotest.test_case "kill + resume (Haswell L1)" `Quick
        test_kill_resume_hardware;
      Alcotest.test_case "failure exit codes" `Quick test_exit_codes;
      Alcotest.test_case "deadline trips to Partial" `Quick test_deadline_trips;
    ] )
