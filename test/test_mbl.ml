(* Tests for cq_mbl: lexer/parser, the formal expansion semantics of
   Appendix A, the paper's examples, and pretty-printing round trips. *)

module A = Cq_mbl.Ast
module E = Cq_mbl.Expand

let expand ?assoc:(n = 4) s =
  List.map E.query_to_string (E.expand_string ~assoc:n s)

let check_expansion ?assoc name input expected =
  Alcotest.(check (list string)) name expected (expand ?assoc input)

let test_example_4_1 () =
  (* '@ X _?' for associativity 4 (Example 4.1). *)
  check_expansion "Example 4.1" "@ X _?"
    [ "A B C D X A?"; "A B C D X B?"; "A B C D X C?"; "A B C D X D?" ]

let test_at_macro () =
  check_expansion ~assoc:8 "@ at 8" "@" [ "A B C D E F G H" ];
  check_expansion ~assoc:2 "@ at 2" "@" [ "A B" ]

let test_wildcard () =
  check_expansion ~assoc:3 "wildcard" "_" [ "A"; "B"; "C" ]

let test_extension () =
  check_expansion "extension" "(A B C D)[E F]" [ "A B C D E"; "A B C D F" ];
  (* Extension collects distinct blocks of the inner expansion. *)
  check_expansion "extension dedup" "(A)[B B]" [ "A B" ]

let test_power () =
  check_expansion ~assoc:2 "power" "(A B C)3" [ "A B C A B C A B C" ];
  check_expansion ~assoc:2 "power caret" "(A B)^2" [ "A B A B" ];
  check_expansion ~assoc:2 "power zero" "X (A)0 Y" [ "X Y" ]

let test_tags () =
  check_expansion "group profile" "(A B)?" [ "A? B?" ];
  check_expansion "flush tag" "A! B" [ "A! B" ];
  check_expansion "tag distributes over set" "{A, B}? C" [ "A? C"; "B? C" ]

let test_sets () =
  check_expansion "set" "{A B, C} D" [ "A B D"; "C D" ];
  check_expansion "nested set" "{A, {B, C}} X" [ "A X"; "B X"; "C X" ]

let test_aux_blocks () =
  (* Appendix B's thrashing query: lowercase 'a' is never captured by '@'. *)
  check_expansion "thrash probe" "@ M a M?" [ "A B C D M a M?" ]

let test_double_tag_rejected () =
  Alcotest.check_raises "double tagging"
    (E.Expansion_error "tag applied to an already-tagged query") (fun () ->
      ignore (E.expand_string ~assoc:4 "(A?)?"))

let test_expansion_guard () =
  match E.expand_string ~max_queries:8 ~assoc:4 "_ _ _" with
  | _ -> Alcotest.fail "guard not applied"
  | exception E.Expansion_error _ -> ()

let test_parse_errors () =
  let bad input =
    match Cq_mbl.Parser.parse_result input with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" input)
  in
  bad "";
  bad "(A B";
  bad "{A, }";
  bad "A )";
  bad "^3";
  bad "A # B"

let test_parse_structure () =
  (match Cq_mbl.Parser.parse "@ X _?" with
  | A.Seq [ A.At; A.Block "X"; A.Tagged (A.Wildcard, A.Profile) ] -> ()
  | other ->
      Alcotest.fail (Printf.sprintf "unexpected AST: %s" (A.to_string other)));
  match Cq_mbl.Parser.parse "(A B C D)[E F]" with
  | A.Extend (A.Seq _, A.Seq _) -> ()
  | other -> Alcotest.fail (Printf.sprintf "unexpected AST: %s" (A.to_string other))

let test_profiled_indices () =
  let q = List.hd (E.expand_string ~assoc:4 "A B? C D?") in
  Alcotest.(check (list int)) "profiled positions" [ 1; 3 ] (E.profiled_indices q);
  Alcotest.(check (list string)) "blocks" [ "A"; "B"; "C"; "D" ]
    (List.map Cq_cache.Block.to_string (E.blocks q))

(* --- Corner cases ---------------------------------------------------- *)

let test_empty_corner_cases () =
  (* The concrete syntax rejects emptiness everywhere... *)
  List.iter
    (fun input ->
      match Cq_mbl.Parser.parse_result input with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" input))
    [ "()"; "{}"; "(A)[]"; "(A)[{}]"; "{A, {}}" ];
  (* ...while AST-level emptiness has well-defined semantics: an empty
     concatenation (and a zero power) is one empty query, an empty set
     (and extension by one — the empty block list) is zero queries. *)
  let count ast = List.length (E.expand ~assoc:2 ast) in
  Alcotest.(check int) "Seq [] is one empty query" 1 (count (A.Seq []));
  Alcotest.(check int) "zero power is one empty query" 1 (count (A.Power (A.At, 0)));
  Alcotest.(check int) "Set [] is zero queries" 0 (count (A.Set []));
  Alcotest.(check int) "empty block list is zero queries" 0
    (count (A.Extend (A.Block "A", A.Set [])));
  check_expansion ~assoc:2 "extension of the empty query" "[A]" [ "A" ]

let test_nested_at_macros () =
  (* '@' under every combinator, including '@' extended by the blocks of
     its own expansion. *)
  check_expansion ~assoc:2 "@ extended by @" "(@)[@]" [ "A B A"; "A B B" ];
  check_expansion ~assoc:2 "doubly-nested extension" "((@)[@])[@]"
    [ "A B A A"; "A B A B"; "A B B A"; "A B B B" ];
  check_expansion ~assoc:2 "@ powered" "@2" [ "A B A B" ];
  check_expansion ~assoc:2 "@ in sets" "{@, _}" [ "A B"; "A"; "B" ];
  check_expansion ~assoc:2 "tag distributes into @" "@ (@)?" [ "A B A? B?" ]

(* --- Parser fuzzing -------------------------------------------------- *)

(* Random byte mutations of valid programs: [parse_result] must return
   [Ok] or the typed [Error] — the parser never escapes with any other
   exception (array bounds, [Failure] from int_of_string, stack
   overflow...), whatever bytes it is fed. *)

let fuzz_corpus =
  [
    "@ X _?";
    "(A B C D)[E F]";
    "{A B, C} D";
    "(A B)^2 {X, Y}? Z!";
    "@ M a M? (_)3";
    "((A)[B C])2 {@, _} W!";
  ]

let mutate prng s =
  let n = String.length s in
  let structural =
    [ '('; ')'; '['; ']'; '{'; '}'; ','; '?'; '!'; '@'; '_'; '^'; ' '; '0'; '9' ]
  in
  let random_byte () =
    if Cq_util.Prng.bool prng 0.5 then Cq_util.Prng.pick prng structural
    else Char.chr (Cq_util.Prng.int prng 256)
  in
  match Cq_util.Prng.int prng 3 with
  | 0 when n > 0 ->
      let i = Cq_util.Prng.int prng n in
      String.mapi (fun j c -> if j = i then random_byte () else c) s
  | 1 when n > 0 ->
      let i = Cq_util.Prng.int prng n in
      String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1)
  | _ ->
      let i = Cq_util.Prng.int prng (n + 1) in
      String.sub s 0 i ^ String.make 1 (random_byte ()) ^ String.sub s i (n - i)

let check_parse_never_crashes candidate =
  match Cq_mbl.Parser.parse_result candidate with
  | Ok _ | Error _ -> ()
  | exception e ->
      Alcotest.fail
        (Printf.sprintf "parser escaped with %s on %S" (Printexc.to_string e)
           candidate)

let test_parser_fuzz_mutations () =
  let prng = Cq_util.Prng.of_int 0xfab1e in
  List.iter
    (fun seed ->
      let current = ref seed in
      for _ = 1 to 500 do
        (* A random walk from the seed, so damage accumulates: half the
           mutations apply to the previous variant, half restart. *)
        let base = if Cq_util.Prng.bool prng 0.5 then seed else !current in
        let candidate = mutate prng base in
        current := candidate;
        check_parse_never_crashes candidate
      done)
    fuzz_corpus

let test_parser_fuzz_raw_bytes () =
  let prng = Cq_util.Prng.of_int 0xdead5 in
  for _ = 1 to 2000 do
    let len = Cq_util.Prng.int prng 48 in
    check_parse_never_crashes
      (String.init len (fun _ -> Char.chr (Cq_util.Prng.int prng 256)))
  done

(* --- qcheck --------------------------------------------------------------- *)

(* Random AST generator (untagged leaves to keep tagging well-formed). *)
let gen_ast =
  QCheck.Gen.(
    sized_size (0 -- 8) @@ fix (fun self n ->
        let block = map (fun i -> A.Block (Cq_cache.Block.to_string (Cq_cache.Block.of_index i))) (0 -- 8) in
        if n <= 1 then oneof [ block; return A.At; return A.Wildcard ]
        else
          frequency
            [
              (3, block);
              (1, return A.At);
              (1, return A.Wildcard);
              (2, map (fun l -> A.Seq l) (list_size (2 -- 3) (self (n / 3))));
              (1, map (fun l -> A.Set l) (list_size (2 -- 3) (self (n / 3))));
              (1, map (fun e -> A.Power (e, 2)) (self (n / 2)));
              (1, map2 (fun a b -> A.Extend (a, b)) (self (n / 2)) (self (n / 2)));
            ]))

let arb_ast = QCheck.make ~print:A.to_string gen_ast

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"pp/parse roundtrip preserves expansion" ~count:100
    arb_ast (fun ast ->
      let s = A.to_string ast in
      match Cq_mbl.Parser.parse_result s with
      | Error _ -> false
      | Ok ast' -> (
          (* ASTs need not be structurally equal (Seq nesting), but their
             expansions must coincide. *)
          match
            ( E.expand ~max_queries:4096 ~assoc:4 ast,
              E.expand ~max_queries:4096 ~assoc:4 ast' )
          with
          | a, b -> a = b
          | exception E.Expansion_error _ -> true))

let prop_seq_concat_sizes =
  QCheck.Test.make ~name:"|s1 s2| = |s1| * |s2|" ~count:100
    QCheck.(pair arb_ast arb_ast)
    (fun (a, b) ->
      match
        ( E.expand ~max_queries:20_000 ~assoc:4 a,
          E.expand ~max_queries:20_000 ~assoc:4 b,
          E.expand ~max_queries:20_000 ~assoc:4 (A.Seq [ a; b ]) )
      with
      | qa, qb, qs -> List.length qs = List.length qa * List.length qb
      | exception E.Expansion_error _ -> true)

let prop_power_is_repeated_concat =
  QCheck.Test.make ~name:"(s)^2 = s o s" ~count:100 arb_ast (fun a ->
      match
        ( E.expand ~max_queries:20_000 ~assoc:4 (A.Power (a, 2)),
          E.expand ~max_queries:20_000 ~assoc:4 (A.Seq [ a; a ]) )
      with
      | p, s -> p = s
      | exception E.Expansion_error _ -> true)

let suite =
  ( "mbl",
    [
      Alcotest.test_case "Example 4.1" `Quick test_example_4_1;
      Alcotest.test_case "@ macro" `Quick test_at_macro;
      Alcotest.test_case "wildcard" `Quick test_wildcard;
      Alcotest.test_case "extension" `Quick test_extension;
      Alcotest.test_case "power" `Quick test_power;
      Alcotest.test_case "tags" `Quick test_tags;
      Alcotest.test_case "sets" `Quick test_sets;
      Alcotest.test_case "aux blocks" `Quick test_aux_blocks;
      Alcotest.test_case "double tag rejected" `Quick test_double_tag_rejected;
      Alcotest.test_case "expansion guard" `Quick test_expansion_guard;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "parse structure" `Quick test_parse_structure;
      Alcotest.test_case "profiled indices" `Quick test_profiled_indices;
      Alcotest.test_case "empty corner cases" `Quick test_empty_corner_cases;
      Alcotest.test_case "nested @ macros" `Quick test_nested_at_macros;
      Alcotest.test_case "parser fuzz (mutations)" `Quick test_parser_fuzz_mutations;
      Alcotest.test_case "parser fuzz (raw bytes)" `Quick test_parser_fuzz_raw_bytes;
      QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
      QCheck_alcotest.to_alcotest prop_seq_concat_sizes;
      QCheck_alcotest.to_alcotest prop_power_is_repeated_concat;
    ] )
