(* Integration tests for cq_core: reset-sequence discovery and validation,
   the hardware-learning driver on the toy CPU, and leader-set detection.
   This module is also the test-suite entry point. *)

module M = Cq_hwsim.Machine
module CM = Cq_hwsim.Cpu_model
module FE = Cq_cachequery.Frontend
module BE = Cq_cachequery.Backend

let quiet model = M.create ~noise:M.quiet_noise model

let frontend_for machine level set =
  let be = BE.create machine { BE.level; slice = 0; set } in
  ignore (BE.calibrate be);
  FE.create be

let test_reset_candidates_cover_paper () =
  let cands = Cq_core.Reset.candidates 4 in
  let strings = List.map FE.reset_to_string cands in
  Alcotest.(check bool) "includes F+R" true (List.mem "F+R" strings);
  Alcotest.(check bool) "includes @ @" true (List.mem "@ @" strings);
  Alcotest.(check bool) "includes D C B A @" true (List.mem "D C B A @" strings)

let test_validate_rejects_no_reset () =
  (* Without a reset sequence, the toy L1 keeps state across queries. *)
  let fe = frontend_for (quiet CM.toy) CM.L1 0 in
  FE.set_reset fe FE.No_reset;
  Alcotest.(check bool) "No_reset is nondeterministic" false
    (Cq_core.Reset.validate ~prng:(Cq_util.Prng.of_int 1) fe)

let test_validate_accepts_fr_on_plru () =
  let fe = frontend_for (quiet CM.toy) CM.L1 0 in
  FE.set_reset fe FE.Flush_refill;
  Alcotest.(check bool) "F+R deterministic on toy L1" true
    (Cq_core.Reset.validate ~prng:(Cq_util.Prng.of_int 1) fe)

let test_find_reset_l1_vs_l2 () =
  (* Toy L1 (PLRU, fills touch the policy): F+R works.
     Toy L2 (New1, fills do NOT touch the policy): F+R must be rejected
     and a touch-based reset found instead. *)
  let fe1 = frontend_for (quiet CM.toy) CM.L1 1 in
  (match Cq_core.Reset.find ~prng:(Cq_util.Prng.of_int 2) fe1 with
  | Some FE.Flush_refill -> ()
  | Some r -> Alcotest.fail ("expected F+R, got " ^ FE.reset_to_string r)
  | None -> Alcotest.fail "no reset found for toy L1");
  let fe2 = frontend_for (quiet CM.toy) CM.L2 1 in
  match Cq_core.Reset.find ~prng:(Cq_util.Prng.of_int 2) fe2 with
  | Some FE.Flush_refill -> Alcotest.fail "F+R cannot reset toy L2 (stale ages)"
  | Some _ -> ()
  | None -> Alcotest.fail "no reset found for toy L2"

let test_learn_set_toy_l3_follower_learns_active_policy () =
  (* In isolation, a follower set behaves like whichever fixed policy the
     PSEL counter currently selects (the paper's followers look
     nondeterministic only because background activity keeps moving the
     duel).  Learning it must therefore succeed and identify *some* zoo
     policy; adaptivity itself is detected by the scan test below. *)
  let machine = quiet CM.toy in
  let run =
    Cq_core.Hardware.learn_set machine CM.L3 ~set:1 ~max_states:400
      ~reset_trials:40
  in
  match run.Cq_core.Hardware.outcome with
  | Cq_core.Hardware.Failed { reason; _ } ->
      Alcotest.fail ("follower learning failed: " ^ reason)
  | Cq_core.Hardware.Partial { failure; _ } ->
      Alcotest.fail
        (Fmt.str "follower learning partial: %a" Cq_core.Learn.pp_failure
           failure)
  | Cq_core.Hardware.Learned { report; _ } ->
      Alcotest.(check bool) "identified as a fixed policy" true
        (report.Cq_core.Learn.identified <> [])

let test_learn_set_state_budget_failure () =
  (* Exhausting the state budget is a [Diverged] failure, surfaced as a
     [Partial] outcome carrying the divergence details. *)
  let machine = quiet CM.toy in
  let run = Cq_core.Hardware.learn_set machine CM.L3 ~set:8 ~max_states:4 in
  match run.Cq_core.Hardware.outcome with
  | Cq_core.Hardware.Partial
      { failure = Cq_core.Learn.Diverged d; member_queries; _ } ->
      Alcotest.(check bool) "budget reason" true
        (d.Cq_learner.Lstar.reason = "state budget exhausted");
      Alcotest.(check bool) "states at the cap" true
        (d.Cq_learner.Lstar.states >= 4);
      Alcotest.(check bool) "queries were counted" true (member_queries > 0)
  | Cq_core.Hardware.Partial { failure; _ } ->
      Alcotest.fail
        (Fmt.str "wrong failure class: %a" Cq_core.Learn.pp_failure failure)
  | Cq_core.Hardware.Failed { reason; _ } ->
      Alcotest.fail ("expected Partial, got Failed: " ^ reason)
  | Cq_core.Hardware.Learned _ -> Alcotest.fail "8-state PLRU fit in 4 states?"

let test_l3_leader_sets_listing () =
  let sets = Cq_core.Hardware.l3_leader_sets CM.skylake in
  Alcotest.(check int) "16 vulnerable leaders per slice" 16 (List.length sets);
  Alcotest.(check bool) "0 and 33 lead the list" true
    (match sets with 0 :: 33 :: _ -> true | _ -> false)

let test_leader_scan_toy () =
  (* Toy L3: leaders at set mod 8 = 0 (vulnerable, PLRU) and mod 8 = 4
     (resistant, LIP). *)
  let machine = quiet CM.toy in
  let sets = List.init 16 Fun.id in
  let results = Cq_core.Leader_sets.scan machine sets in
  let class_of s =
    (List.find (fun r -> r.Cq_core.Leader_sets.set = s) results)
      .Cq_core.Leader_sets.classification
  in
  Alcotest.(check bool) "set 0 vulnerable leader" true
    (class_of 0 = Cq_core.Leader_sets.Fixed_vulnerable);
  Alcotest.(check bool) "set 8 vulnerable leader" true
    (class_of 8 = Cq_core.Leader_sets.Fixed_vulnerable);
  let detected, expected = Cq_core.Leader_sets.check_against_model CM.toy results in
  Alcotest.(check (list int)) "formula recovered" expected detected

let test_pp_outcome () =
  let s =
    Fmt.str "%a" Cq_core.Hardware.pp_outcome
      (Cq_core.Hardware.Failed { reason = "nope"; reset = None })
  in
  Alcotest.(check string) "failure rendering" "failed: nope" s

let suite =
  ( "core",
    [
      Alcotest.test_case "reset candidates" `Quick test_reset_candidates_cover_paper;
      Alcotest.test_case "validate rejects No_reset" `Quick test_validate_rejects_no_reset;
      Alcotest.test_case "validate accepts F+R (PLRU)" `Quick test_validate_accepts_fr_on_plru;
      Alcotest.test_case "reset discovery L1 vs L2" `Quick test_find_reset_l1_vs_l2;
      Alcotest.test_case "follower learns active policy" `Quick
        test_learn_set_toy_l3_follower_learns_active_policy;
      Alcotest.test_case "state budget failure" `Quick test_learn_set_state_budget_failure;
      Alcotest.test_case "leader set listing" `Quick test_l3_leader_sets_listing;
      Alcotest.test_case "leader scan (toy)" `Quick test_leader_scan_toy;
      Alcotest.test_case "outcome rendering" `Quick test_pp_outcome;
    ] )

let () =
  Alcotest.run "cachequery"
    [
      Test_util.suite;
      Test_resilience.suite;
      Test_mealy.suite;
      Test_policy.suite;
      Test_cache.suite;
      Test_mbl.suite;
      Test_hwsim.suite;
      Test_cachequery.suite;
      Test_learner.suite;
      Test_polca.suite;
      Test_engine.suite;
      Test_synth.suite;
      Test_eviction.suite;
      Test_noise.suite;
      Test_session.suite;
      Test_trace.suite;
      Test_prop.suite;
      Test_analysis.suite;
      Test_service.suite;
      Test_workload.suite;
      Test_attack.suite;
      suite;
    ]
